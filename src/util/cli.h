/**
 * @file
 * A tiny command-line flag parser for the bench and example binaries.
 *
 * Supported syntax: `--name=value`, `--name value`, and bare boolean
 * flags `--name`. Every binary in bench/ accepts `--help`, `--seed=N`
 * and experiment-specific flags through this parser.
 */

#ifndef HIERMEANS_UTIL_CLI_H
#define HIERMEANS_UTIL_CLI_H

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace hiermeans {
namespace util {

/** Parsed command line: named flags plus positional arguments. */
class CommandLine
{
  public:
    /**
     * Parse argv. Unrecognized tokens that do not start with `--` become
     * positional arguments. Throws InvalidArgument on `--name=` misuse.
     */
    static CommandLine parse(int argc, const char *const *argv);

    /** Parse from a vector (useful in tests). */
    static CommandLine parse(const std::vector<std::string> &args);

    /** Program name (argv[0]) if available. */
    const std::string &program() const { return program_; }

    /** True when `--name` or `--name=...` was present. */
    bool has(const std::string &name) const;

    /** String value of a flag, or @p fallback when absent. */
    std::string getString(const std::string &name,
                          const std::string &fallback) const;

    /** Integer value of a flag; throws on malformed numbers. */
    std::int64_t getInt(const std::string &name, std::int64_t fallback) const;

    /** Double value of a flag; throws on malformed numbers. */
    double getDouble(const std::string &name, double fallback) const;

    /**
     * Boolean value: `--name`, `--name=true/1/yes/on` are true,
     * `--name=false/0/no/off` false. Throws otherwise.
     */
    bool getBool(const std::string &name, bool fallback) const;

    /** Positional (non-flag) arguments in order. */
    const std::vector<std::string> &positional() const { return positional_; }

  private:
    std::string program_;
    std::map<std::string, std::string> flags_;
    std::vector<std::string> positional_;
};

} // namespace util
} // namespace hiermeans

#endif // HIERMEANS_UTIL_CLI_H
