#include "src/util/csv.h"

#include <ostream>
#include <sstream>

#include "src/util/error.h"

namespace hiermeans {
namespace util {

std::string
csvEscape(const std::string &field)
{
    const bool needs_quotes =
        field.find_first_of(",\"\r\n") != std::string::npos;
    if (!needs_quotes)
        return field;
    std::string out = "\"";
    for (char c : field) {
        if (c == '"')
            out += "\"\"";
        else
            out += c;
    }
    out += '"';
    return out;
}

std::string
writeCsv(const CsvDocument &doc)
{
    std::ostringstream oss;
    writeCsv(oss, doc);
    return oss.str();
}

void
writeCsv(std::ostream &os, const CsvDocument &doc)
{
    for (const auto &row : doc.rows) {
        for (std::size_t i = 0; i < row.size(); ++i) {
            if (i > 0)
                os << ',';
            os << csvEscape(row[i]);
        }
        os << '\n';
    }
}

CsvDocument
parseCsv(const std::string &text)
{
    CsvDocument doc;
    std::vector<std::string> row;
    std::string field;
    bool in_quotes = false;
    bool field_started = false;
    bool row_started = false;

    auto end_field = [&]() {
        row.push_back(field);
        field.clear();
        field_started = false;
    };
    auto end_row = [&]() {
        end_field();
        doc.rows.push_back(row);
        row.clear();
        row_started = false;
    };

    for (std::size_t i = 0; i < text.size(); ++i) {
        const char c = text[i];
        if (in_quotes) {
            if (c == '"') {
                if (i + 1 < text.size() && text[i + 1] == '"') {
                    field += '"';
                    ++i;
                } else {
                    in_quotes = false;
                }
            } else {
                field += c;
            }
            continue;
        }
        switch (c) {
          case '"':
            in_quotes = true;
            field_started = true;
            row_started = true;
            break;
          case ',':
            end_field();
            row_started = true;
            break;
          case '\r':
            // Swallow; the following \n (if any) terminates the row.
            break;
          case '\n':
            end_row();
            break;
          default:
            field += c;
            field_started = true;
            row_started = true;
            break;
        }
    }
    HM_REQUIRE(!in_quotes, "unterminated quoted CSV field");
    if (row_started || field_started || !row.empty())
        end_row();
    return doc;
}

} // namespace util
} // namespace hiermeans
