/**
 * @file
 * Minimal CSV reading/writing for exporting experiment results.
 *
 * The dialect is RFC-4180-ish: comma separated, double-quote quoting,
 * embedded quotes doubled. This is enough to round-trip every table the
 * bench harness emits; it is not a general-purpose CSV parser.
 */

#ifndef HIERMEANS_UTIL_CSV_H
#define HIERMEANS_UTIL_CSV_H

#include <iosfwd>
#include <string>
#include <vector>

namespace hiermeans {
namespace util {

/** One parsed CSV document: rows of string fields. */
struct CsvDocument
{
    std::vector<std::vector<std::string>> rows;

    /** Number of rows. */
    std::size_t size() const { return rows.size(); }
    bool empty() const { return rows.empty(); }
};

/** Quote a single field if it needs quoting. */
std::string csvEscape(const std::string &field);

/** Serialize rows to CSV text. */
std::string writeCsv(const CsvDocument &doc);

/** Serialize rows to a stream. */
void writeCsv(std::ostream &os, const CsvDocument &doc);

/**
 * Parse CSV text into rows. Handles quoted fields, doubled quotes and
 * both \n and \r\n line endings. Throws InvalidArgument on an unclosed
 * quoted field.
 */
CsvDocument parseCsv(const std::string &text);

} // namespace util
} // namespace hiermeans

#endif // HIERMEANS_UTIL_CSV_H
