#include "src/util/error.h"

#include <sstream>

namespace hiermeans {
namespace detail {

std::string
checkMessage(const char *cond, const char *file, int line,
             const std::string &extra)
{
    std::ostringstream oss;
    oss << extra << " [check `" << cond << "` failed at " << file << ":"
        << line << "]";
    return oss.str();
}

} // namespace detail
} // namespace hiermeans
