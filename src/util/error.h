/**
 * @file
 * Error types and checking macros used across the hiermeans library.
 *
 * Two categories of failures, following the fatal-vs-panic convention:
 *  - InvalidArgument / DomainError: the caller handed us something the
 *    API contract forbids (user error). Thrown as recoverable exceptions.
 *  - InternalError: an invariant of the library itself broke (our bug).
 */

#ifndef HIERMEANS_UTIL_ERROR_H
#define HIERMEANS_UTIL_ERROR_H

#include <sstream>
#include <stdexcept>
#include <string>

namespace hiermeans {

/** Base class for all hiermeans exceptions. */
class Error : public std::runtime_error
{
  public:
    explicit Error(const std::string &what_arg)
        : std::runtime_error(what_arg)
    {}
};

/** Thrown when a caller violates an API precondition. */
class InvalidArgument : public Error
{
  public:
    explicit InvalidArgument(const std::string &what_arg)
        : Error("invalid argument: " + what_arg)
    {}
};

/**
 * Thrown when input data is structurally valid but numerically outside
 * the domain of the requested operation (e.g. a non-positive score fed
 * to a geometric mean).
 */
class DomainError : public Error
{
  public:
    explicit DomainError(const std::string &what_arg)
        : Error("domain error: " + what_arg)
    {}
};

/** Thrown when an internal library invariant is violated (a bug in us). */
class InternalError : public Error
{
  public:
    explicit InternalError(const std::string &what_arg)
        : Error("internal error: " + what_arg)
    {}
};

namespace detail {

/** Builds the exception message for the HM_* macros below. */
std::string checkMessage(const char *cond, const char *file, int line,
                         const std::string &extra);

} // namespace detail

} // namespace hiermeans

/**
 * Precondition check: throws hiermeans::InvalidArgument when @p cond is
 * false. @p msg is a streamable expression, e.g.
 * `HM_REQUIRE(k > 0, "k must be positive, got " << k);`
 */
#define HM_REQUIRE(cond, msg)                                               \
    do {                                                                    \
        if (!(cond)) {                                                      \
            std::ostringstream hm_require_oss_;                            \
            hm_require_oss_ << msg;                                        \
            throw ::hiermeans::InvalidArgument(                             \
                ::hiermeans::detail::checkMessage(#cond, __FILE__,          \
                                                  __LINE__,                 \
                                                  hm_require_oss_.str())); \
        }                                                                   \
    } while (false)

/** Domain check: throws hiermeans::DomainError when @p cond is false. */
#define HM_DOMAIN_CHECK(cond, msg)                                          \
    do {                                                                    \
        if (!(cond)) {                                                      \
            std::ostringstream hm_domain_oss_;                             \
            hm_domain_oss_ << msg;                                         \
            throw ::hiermeans::DomainError(                                 \
                ::hiermeans::detail::checkMessage(#cond, __FILE__,          \
                                                  __LINE__,                 \
                                                  hm_domain_oss_.str()));  \
        }                                                                   \
    } while (false)

/** Invariant check: throws hiermeans::InternalError when @p cond fails. */
#define HM_ASSERT(cond, msg)                                                \
    do {                                                                    \
        if (!(cond)) {                                                      \
            std::ostringstream hm_assert_oss_;                             \
            hm_assert_oss_ << msg;                                         \
            throw ::hiermeans::InternalError(                               \
                ::hiermeans::detail::checkMessage(#cond, __FILE__,          \
                                                  __LINE__,                 \
                                                  hm_assert_oss_.str())); \
        }                                                                   \
    } while (false)

#endif // HIERMEANS_UTIL_ERROR_H
