#include "src/util/fault.h"

#include <cstdlib>
#include <map>
#include <mutex>

#include "src/util/error.h"
#include "src/util/rng.h"
#include "src/util/str.h"

namespace hiermeans {
namespace fault {

namespace {

struct Trigger
{
    enum class Mode
    {
        Once,
        Always,
        Nth,
        EveryNth,
        FirstN,
        Probability
    };

    Mode mode = Mode::Once;
    std::uint64_t n = 1;      ///< Nth / EveryNth / FirstN operand.
    double probability = 0.0; ///< Probability operand.
    double param = 0.0;       ///< optional `@param` payload.
    std::string spec;         ///< the original fragment, for report().
};

struct Point
{
    Trigger trigger;
    std::uint64_t hits = 0;
    std::uint64_t fires = 0;
};

struct Registry
{
    std::mutex mutex;
    std::map<std::string, Point> points;
    std::vector<std::string> order; ///< spec order, for report().
    std::string spec;
    std::uint64_t seed = 0;
};

Registry &
registry()
{
    static Registry instance;
    return instance;
}

/** FNV-1a of the point name, to salt the per-hit probability hash. */
std::uint64_t
hashName(const std::string &name)
{
    std::uint64_t h = 0xcbf29ce484222325ULL;
    for (const char c : name) {
        h ^= static_cast<unsigned char>(c);
        h *= 0x100000001b3ULL;
    }
    return h;
}

/** Parse one `point=trigger[@param]` fragment into the registry. */
void
parseFragment(Registry &reg, const std::string &fragment)
{
    const std::size_t eq = fragment.find('=');
    HM_REQUIRE(eq != std::string::npos && eq > 0,
               "fault spec fragment `" << fragment
                                       << "` is not point=trigger");
    const std::string point = str::trim(fragment.substr(0, eq));
    std::string rest = str::trim(fragment.substr(eq + 1));
    HM_REQUIRE(!rest.empty(),
               "fault spec for `" << point << "` has no trigger");

    Trigger trigger;
    trigger.spec = rest;
    const std::size_t at = rest.find('@');
    if (at != std::string::npos) {
        try {
            trigger.param = std::stod(rest.substr(at + 1));
        } catch (...) {
            throw InvalidArgument("fault spec `" + fragment +
                                  "`: malformed @param");
        }
        rest = rest.substr(0, at);
    }

    const std::size_t colon = rest.find(':');
    const std::string mode =
        colon == std::string::npos ? rest : rest.substr(0, colon);
    const std::string operand =
        colon == std::string::npos ? "" : rest.substr(colon + 1);

    const auto need_int = [&](const char *what) {
        try {
            const long long value = std::stoll(operand);
            HM_REQUIRE(value >= 1, "fault spec `"
                                       << fragment << "`: " << what
                                       << " must be >= 1");
            return static_cast<std::uint64_t>(value);
        } catch (const Error &) {
            throw;
        } catch (...) {
            throw InvalidArgument("fault spec `" + fragment +
                                  "`: malformed " + what);
        }
    };

    if (mode == "once" && operand.empty()) {
        trigger.mode = Trigger::Mode::Once;
    } else if (mode == "always" && operand.empty()) {
        trigger.mode = Trigger::Mode::Always;
    } else if (mode == "nth") {
        trigger.mode = Trigger::Mode::Nth;
        trigger.n = need_int("nth operand");
    } else if (mode == "every") {
        trigger.mode = Trigger::Mode::EveryNth;
        trigger.n = need_int("every operand");
    } else if (mode == "first") {
        trigger.mode = Trigger::Mode::FirstN;
        trigger.n = need_int("first operand");
    } else if (mode == "p") {
        try {
            trigger.probability = std::stod(operand);
        } catch (...) {
            throw InvalidArgument("fault spec `" + fragment +
                                  "`: malformed probability");
        }
        HM_REQUIRE(trigger.probability >= 0.0 &&
                       trigger.probability <= 1.0,
                   "fault spec `" << fragment
                                  << "`: probability outside [0, 1]");
        trigger.mode = Trigger::Mode::Probability;
    } else {
        throw InvalidArgument("fault spec `" + fragment +
                              "`: unknown trigger `" + rest + "`");
    }

    HM_REQUIRE(reg.points.find(point) == reg.points.end(),
               "fault spec names point `" << point << "` twice");
    reg.points[point].trigger = trigger;
    reg.order.push_back(point);
}

} // namespace

namespace detail {

std::atomic<bool> armed{false};

bool
evaluate(const char *point, double *param)
{
    Registry &reg = registry();
    std::lock_guard<std::mutex> lock(reg.mutex);
    const auto it = reg.points.find(point);
    if (it == reg.points.end())
        return false;

    Point &p = it->second;
    const std::uint64_t hit_index = ++p.hits; // 1-based.

    bool fires = false;
    switch (p.trigger.mode) {
    case Trigger::Mode::Once:
        fires = hit_index == 1;
        break;
    case Trigger::Mode::Always:
        fires = true;
        break;
    case Trigger::Mode::Nth:
        fires = hit_index == p.trigger.n;
        break;
    case Trigger::Mode::EveryNth:
        fires = hit_index % p.trigger.n == 0;
        break;
    case Trigger::Mode::FirstN:
        fires = hit_index <= p.trigger.n;
        break;
    case Trigger::Mode::Probability: {
        // Stateless per-hit draw: hashing (seed, point, hit index)
        // makes the firing set independent of thread interleaving.
        rng::SplitMix64 mix(reg.seed ^ hashName(it->first) ^
                            (hit_index * 0x9e3779b97f4a7c15ULL));
        const double u =
            static_cast<double>(mix.next() >> 11) * 0x1.0p-53;
        fires = u < p.trigger.probability;
        break;
    }
    }

    if (fires) {
        ++p.fires;
        if (param != nullptr)
            *param = p.trigger.param;
    }
    return fires;
}

} // namespace detail

void
configure(const std::string &spec, std::uint64_t seed)
{
    Registry &reg = registry();
    std::lock_guard<std::mutex> lock(reg.mutex);
    reg.points.clear();
    reg.order.clear();
    reg.spec.clear();
    reg.seed = seed;
    for (const std::string &raw : str::split(spec, ',')) {
        const std::string fragment = str::trim(raw);
        if (fragment.empty())
            continue;
        parseFragment(reg, fragment);
        if (!reg.spec.empty())
            reg.spec += ",";
        reg.spec += fragment;
    }
    detail::armed.store(!reg.points.empty(),
                        std::memory_order_relaxed);
}

void
configureFromEnv()
{
    const char *spec = std::getenv("HIERMEANS_FAULTS");
    if (spec == nullptr || *spec == '\0')
        return;
    std::uint64_t seed = 0;
    if (const char *seed_text = std::getenv("HIERMEANS_FAULT_SEED")) {
        try {
            seed = std::stoull(seed_text);
        } catch (...) {
            throw InvalidArgument(
                std::string("HIERMEANS_FAULT_SEED `") + seed_text +
                "` is not an integer");
        }
    }
    configure(spec, seed);
}

void
reset()
{
    configure("", 0);
}

std::string
activeSpec()
{
    Registry &reg = registry();
    std::lock_guard<std::mutex> lock(reg.mutex);
    return reg.spec;
}

std::uint64_t
activeSeed()
{
    Registry &reg = registry();
    std::lock_guard<std::mutex> lock(reg.mutex);
    return reg.seed;
}

std::vector<PointReport>
report()
{
    Registry &reg = registry();
    std::lock_guard<std::mutex> lock(reg.mutex);
    std::vector<PointReport> out;
    out.reserve(reg.order.size());
    for (const std::string &name : reg.order) {
        const Point &p = reg.points.at(name);
        PointReport entry;
        entry.point = name;
        entry.trigger = p.trigger.spec;
        entry.hits = p.hits;
        entry.fires = p.fires;
        out.push_back(std::move(entry));
    }
    return out;
}

} // namespace fault
} // namespace hiermeans
