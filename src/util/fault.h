/**
 * @file
 * Seeded, deterministic fault injection for robustness testing.
 *
 * Production code marks *fault points* — named places where the real
 * world can fail (a short write, a reset connection, a cache insert
 * that dies) — with the HM_FAULT macros. A disarmed process pays one
 * relaxed atomic load per point; configuring a schedule (via the
 * HIERMEANS_FAULTS environment variable, a `--faults=` flag, or
 * `fault::configure` in tests) arms exactly the named points. Building
 * with -DHIERMEANS_FAULT_INJECTION=OFF compiles every point to a
 * constant `false` — zero cost, no branches.
 *
 * Schedules are deterministic: triggers are keyed to the per-point hit
 * counter, and probabilistic triggers hash (seed, point, hit index)
 * through SplitMix64, so the *set* of firing hit indices depends only
 * on the configured seed — never on thread interleaving or wall time.
 * The chaos harness leans on this to replay identical fault schedules.
 *
 * Spec grammar (comma-separated):
 *   point=once          fire on the 1st hit only
 *   point=always        fire on every hit
 *   point=nth:K         fire on the Kth hit only (1-based)
 *   point=every:K       fire on every Kth hit (K, 2K, ...)
 *   point=first:K       fire on hits 1..K
 *   point=p:0.25        fire each hit with probability 0.25 (seeded)
 * Any trigger may carry a site-specific parameter: `engine.stall=
 * nth:3@250` fires on the 3rd hit with parameter 250 (milliseconds for
 * that particular point).
 */

#ifndef HIERMEANS_UTIL_FAULT_H
#define HIERMEANS_UTIL_FAULT_H

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

namespace hiermeans {
namespace fault {

/**
 * Arm the schedule described by @p spec (see the grammar above) with
 * @p seed driving probabilistic triggers. Replaces any previous
 * schedule and resets all hit counters. An empty spec disarms.
 * Throws InvalidArgument on a malformed spec.
 */
void configure(const std::string &spec, std::uint64_t seed = 0);

/**
 * Arm from the HIERMEANS_FAULTS / HIERMEANS_FAULT_SEED environment
 * variables; a no-op when HIERMEANS_FAULTS is unset or empty.
 */
void configureFromEnv();

/** Disarm every point and reset all counters. */
void reset();

/** The canonical armed spec ("" when disarmed) — for logs/reports. */
std::string activeSpec();

/** The seed the active schedule was armed with. */
std::uint64_t activeSeed();

/** Hit/fire tallies for one armed point (diagnostics, not replay). */
struct PointReport
{
    std::string point;
    std::string trigger;     ///< the spec fragment, e.g. "nth:3@250".
    std::uint64_t hits = 0;  ///< times the point was reached.
    std::uint64_t fires = 0; ///< times it actually fired.
};

/** Tallies for every armed point, in spec order. */
std::vector<PointReport> report();

namespace detail {

/** True when any point is armed; the macro's fast-path gate. */
extern std::atomic<bool> armed;

/** Slow path: count a hit on @p point and decide whether it fires.
 *  When it fires and @p param is non-null, the trigger's `@param`
 *  value (0.0 if none) is stored through it. */
bool evaluate(const char *point, double *param);

} // namespace detail

/**
 * Count a hit on @p point and return whether the armed trigger fires.
 * Near-zero cost while disarmed. Prefer the HM_FAULT macros, which
 * compile away entirely under -DHIERMEANS_FAULT_INJECTION=OFF.
 */
inline bool
hit(const char *point, double *param = nullptr)
{
    if (!detail::armed.load(std::memory_order_relaxed))
        return false;
    return detail::evaluate(point, param);
}

} // namespace fault
} // namespace hiermeans

#if defined(HIERMEANS_NO_FAULT_INJECTION)
#define HM_FAULT(point) (false)
#define HM_FAULT_PARAM(point, param_lvalue) (false)
#else
/** True when the named fault point fires now. */
#define HM_FAULT(point) (::hiermeans::fault::hit(point))
/** Like HM_FAULT, but also stores the trigger's `@param` value. */
#define HM_FAULT_PARAM(point, param_lvalue)                                 \
    (::hiermeans::fault::hit(point, &(param_lvalue)))
#endif

#endif // HIERMEANS_UTIL_FAULT_H
