#include "src/util/file.h"

#include <fstream>
#include <sstream>

#include "src/util/error.h"
#include "src/util/fault.h"

namespace hiermeans {
namespace util {

std::string
readFile(const std::string &path)
{
    HM_REQUIRE(!HM_FAULT("file.read"),
               "cannot open `" << path << "` (injected)");
    std::ifstream in(path, std::ios::binary);
    HM_REQUIRE(in.good(), "cannot open `" << path << "`");
    std::ostringstream oss;
    oss << in.rdbuf();
    return oss.str();
}

void
writeFile(const std::string &path, const std::string &content)
{
    HM_REQUIRE(!HM_FAULT("file.write"),
               "cannot write `" << path << "` (injected)");
    std::ofstream out(path, std::ios::binary);
    HM_REQUIRE(out.good(), "cannot write `" << path << "`");
    out << content;
    out.flush();
    HM_REQUIRE(out.good(), "write to `" << path << "` failed");
}

} // namespace util
} // namespace hiermeans
