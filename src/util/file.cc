#include "src/util/file.h"

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <fstream>
#include <sstream>

#include <dirent.h>
#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include "src/util/error.h"
#include "src/util/fault.h"

namespace hiermeans {
namespace util {

std::string
readFile(const std::string &path)
{
    HM_REQUIRE(!HM_FAULT("file.read"),
               "cannot open `" << path << "` (injected)");
    std::ifstream in(path, std::ios::binary);
    HM_REQUIRE(in.good(), "cannot open `" << path << "`");
    std::ostringstream oss;
    oss << in.rdbuf();
    return oss.str();
}

void
writeFile(const std::string &path, const std::string &content)
{
    HM_REQUIRE(!HM_FAULT("file.write"),
               "cannot write `" << path << "` (injected)");
    std::ofstream out(path, std::ios::binary);
    HM_REQUIRE(out.good(), "cannot write `" << path << "`");
    out << content;
    out.flush();
    HM_REQUIRE(out.good(), "write to `" << path << "` failed");
}

void
writeFileAtomic(const std::string &path, const std::string &content,
                bool sync)
{
    const std::string tmp = path + ".tmp";
    if (HM_FAULT("file.write.atomic")) {
        ::unlink(tmp.c_str());
        throw InvalidArgument("cannot write `" + path +
                              "` atomically (injected)");
    }

    const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC,
                          0644);
    HM_REQUIRE(fd >= 0, "cannot open `" << tmp
                                        << "`: " << std::strerror(errno));
    std::size_t written = 0;
    while (written < content.size()) {
        const ssize_t n = ::write(fd, content.data() + written,
                                  content.size() - written);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            const int err = errno;
            ::close(fd);
            ::unlink(tmp.c_str());
            throw InvalidArgument("write to `" + tmp +
                                  "` failed: " + std::strerror(err));
        }
        written += static_cast<std::size_t>(n);
    }
    if (sync && ::fsync(fd) != 0) {
        const int err = errno;
        ::close(fd);
        ::unlink(tmp.c_str());
        throw InvalidArgument("fsync of `" + tmp +
                              "` failed: " + std::strerror(err));
    }
    ::close(fd);
    if (::rename(tmp.c_str(), path.c_str()) != 0) {
        const int err = errno;
        ::unlink(tmp.c_str());
        throw InvalidArgument("rename `" + tmp + "` -> `" + path +
                              "` failed: " + std::strerror(err));
    }
}

bool
fileExists(const std::string &path)
{
    struct stat st;
    return ::stat(path.c_str(), &st) == 0;
}

std::size_t
fileSize(const std::string &path)
{
    struct stat st;
    HM_REQUIRE(::stat(path.c_str(), &st) == 0,
               "cannot stat `" << path
                               << "`: " << std::strerror(errno));
    return static_cast<std::size_t>(st.st_size);
}

void
removeFile(const std::string &path)
{
    if (::unlink(path.c_str()) != 0 && errno != ENOENT)
        throw InvalidArgument("cannot remove `" + path +
                              "`: " + std::strerror(errno));
}

void
ensureDir(const std::string &path)
{
    if (::mkdir(path.c_str(), 0755) == 0)
        return;
    HM_REQUIRE(errno == EEXIST, "cannot create directory `"
                                    << path << "`: "
                                    << std::strerror(errno));
    struct stat st;
    HM_REQUIRE(::stat(path.c_str(), &st) == 0 && S_ISDIR(st.st_mode),
               "`" << path << "` exists but is not a directory");
}

std::vector<std::string>
listDir(const std::string &path)
{
    DIR *dir = ::opendir(path.c_str());
    HM_REQUIRE(dir != nullptr, "cannot read directory `"
                                   << path << "`: "
                                   << std::strerror(errno));
    std::vector<std::string> names;
    while (struct dirent *entry = ::readdir(dir)) {
        const std::string name = entry->d_name;
        if (name == "." || name == "..")
            continue;
        struct stat st;
        if (::stat((path + "/" + name).c_str(), &st) == 0 &&
            S_ISREG(st.st_mode))
            names.push_back(name);
    }
    ::closedir(dir);
    std::sort(names.begin(), names.end());
    return names;
}

} // namespace util
} // namespace hiermeans
