#include "src/util/file.h"

#include <fstream>
#include <sstream>

#include "src/util/error.h"

namespace hiermeans {
namespace util {

std::string
readFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    HM_REQUIRE(in.good(), "cannot open `" << path << "`");
    std::ostringstream oss;
    oss << in.rdbuf();
    return oss.str();
}

void
writeFile(const std::string &path, const std::string &content)
{
    std::ofstream out(path, std::ios::binary);
    HM_REQUIRE(out.good(), "cannot write `" << path << "`");
    out << content;
    out.flush();
    HM_REQUIRE(out.good(), "write to `" << path << "` failed");
}

} // namespace util
} // namespace hiermeans
