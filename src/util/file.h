/**
 * @file
 * Whole-file I/O helpers shared by the CLI tools and examples.
 *
 * Every binary that slurps a CSV or writes a report used to carry its
 * own four-line `readFile`; these helpers centralize the open-check
 * (HM_REQUIRE with the offending path in the message) so failures read
 * identically everywhere.
 */

#ifndef HIERMEANS_UTIL_FILE_H
#define HIERMEANS_UTIL_FILE_H

#include <string>

namespace hiermeans {
namespace util {

/**
 * Read an entire file into a string (binary mode, no newline
 * translation). Throws InvalidArgument when the file cannot be opened.
 */
std::string readFile(const std::string &path);

/**
 * Write @p content to @p path (binary mode), replacing any existing
 * file. Throws InvalidArgument when the file cannot be opened or the
 * write fails.
 */
void writeFile(const std::string &path, const std::string &content);

} // namespace util
} // namespace hiermeans

#endif // HIERMEANS_UTIL_FILE_H
