/**
 * @file
 * Whole-file I/O helpers shared by the CLI tools and examples.
 *
 * Every binary that slurps a CSV or writes a report used to carry its
 * own four-line `readFile`; these helpers centralize the open-check
 * (HM_REQUIRE with the offending path in the message) so failures read
 * identically everywhere.
 */

#ifndef HIERMEANS_UTIL_FILE_H
#define HIERMEANS_UTIL_FILE_H

#include <cstddef>
#include <string>
#include <vector>

namespace hiermeans {
namespace util {

/**
 * Read an entire file into a string (binary mode, no newline
 * translation). Throws InvalidArgument when the file cannot be opened.
 */
std::string readFile(const std::string &path);

/**
 * Write @p content to @p path (binary mode), replacing any existing
 * file. Throws InvalidArgument when the file cannot be opened or the
 * write fails.
 *
 * NOT crash-safe: a crash mid-write leaves a torn file. State that
 * must survive crashes goes through writeFileAtomic instead.
 */
void writeFile(const std::string &path, const std::string &content);

/**
 * Crash-safe replacement write: @p content goes to `<path>.tmp`,
 * is optionally fsync'd (@p sync), and the temp file is rename()d
 * over @p path — so readers observe either the old file or the new
 * one, never a torn mix. Throws InvalidArgument on any failure (the
 * temp file is removed on the error path).
 */
void writeFileAtomic(const std::string &path, const std::string &content,
                     bool sync = true);

/** True when @p path exists (any file type). */
bool fileExists(const std::string &path);

/** Size of the regular file at @p path in bytes; throws when absent. */
std::size_t fileSize(const std::string &path);

/** Delete @p path; quietly succeeds when it does not exist. */
void removeFile(const std::string &path);

/**
 * Create directory @p path (one level; parents must exist). A no-op
 * when it already exists; throws when creation fails or @p path
 * exists but is not a directory.
 */
void ensureDir(const std::string &path);

/** Names (not paths) of regular files in @p path, sorted ascending.
 *  Throws InvalidArgument when the directory cannot be read. */
std::vector<std::string> listDir(const std::string &path);

} // namespace util
} // namespace hiermeans

#endif // HIERMEANS_UTIL_FILE_H
