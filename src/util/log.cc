#include "src/util/log.h"

#include <iostream>

#include "src/util/error.h"
#include "src/util/str.h"

namespace hiermeans {
namespace log {

namespace {

Level global_level = Level::Warn;
std::ostream *global_stream = nullptr;

std::ostream &
stream()
{
    return global_stream != nullptr ? *global_stream : std::clog;
}

} // namespace

const char *
levelName(Level level)
{
    switch (level) {
      case Level::Silent:
        return "silent";
      case Level::Error:
        return "error";
      case Level::Warn:
        return "warn";
      case Level::Info:
        return "info";
      case Level::Debug:
        return "debug";
    }
    return "unknown";
}

Level
parseLevel(const std::string &name)
{
    const std::string lower = str::toLower(name);
    if (lower == "silent")
        return Level::Silent;
    if (lower == "error")
        return Level::Error;
    if (lower == "warn" || lower == "warning")
        return Level::Warn;
    if (lower == "info")
        return Level::Info;
    if (lower == "debug")
        return Level::Debug;
    throw InvalidArgument("unknown log level `" + name + "`");
}

void
setLevel(Level level)
{
    global_level = level;
}

Level
level()
{
    return global_level;
}

void
setStream(std::ostream *os)
{
    global_stream = os;
}

void
write(Level msg_level, const std::string &message)
{
    if (msg_level == Level::Silent ||
        static_cast<int>(msg_level) > static_cast<int>(global_level)) {
        return;
    }
    stream() << "[" << levelName(msg_level) << "] " << message << "\n";
}

} // namespace log
} // namespace hiermeans
