/**
 * @file
 * A minimal leveled logger.
 *
 * Experiments and the pipeline emit progress via this logger; tests set
 * the level to Silent. The logger is intentionally a process-wide
 * singleton — experiment binaries are single-threaded drivers, and a
 * global keeps the call sites terse.
 */

#ifndef HIERMEANS_UTIL_LOG_H
#define HIERMEANS_UTIL_LOG_H

#include <iosfwd>
#include <sstream>
#include <string>

namespace hiermeans {
namespace log {

/** Severity levels, most severe first. */
enum class Level { Silent = 0, Error, Warn, Info, Debug };

/** Name of a level ("error", "warn", ...). */
const char *levelName(Level level);

/** Parse a level name; throws InvalidArgument on unknown names. */
Level parseLevel(const std::string &name);

/** Set the global log level (default: Warn). */
void setLevel(Level level);

/** Current global log level. */
Level level();

/** Redirect output (default: std::clog). Pass nullptr to restore. */
void setStream(std::ostream *os);

/** Emit one message at @p level if enabled. */
void write(Level level, const std::string &message);

namespace detail {

/** RAII line builder behind the HM_LOG macro. */
class LineBuilder
{
  public:
    explicit LineBuilder(Level level) : level_(level) {}
    ~LineBuilder() { write(level_, oss_.str()); }

    LineBuilder(const LineBuilder &) = delete;
    LineBuilder &operator=(const LineBuilder &) = delete;

    template <typename T>
    LineBuilder &
    operator<<(const T &value)
    {
        oss_ << value;
        return *this;
    }

  private:
    Level level_;
    std::ostringstream oss_;
};

} // namespace detail
} // namespace log
} // namespace hiermeans

/** Stream-style logging: HM_LOG(Info) << "trained " << n << " steps"; */
#define HM_LOG(level_token)                                                 \
    ::hiermeans::log::detail::LineBuilder(                                  \
        ::hiermeans::log::Level::level_token)

#endif // HIERMEANS_UTIL_LOG_H
