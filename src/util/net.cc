#include "src/util/net.h"

#include <arpa/inet.h>
#include <csignal>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/types.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <mutex>

#include "src/util/error.h"
#include "src/util/fault.h"

namespace hiermeans {
namespace net {

namespace {

[[noreturn]] void
throwErrno(const std::string &what)
{
    throw NetError(NetError::classify(errno),
                   what + ": " + std::strerror(errno));
}

} // namespace

NetError::Kind
NetError::classify(int err)
{
    switch (err) {
    case ECONNREFUSED:
        return Kind::Refused;
    case ECONNRESET:
    case EPIPE:
        return Kind::Reset;
    case ETIMEDOUT:
        return Kind::TimedOut;
    case EHOSTUNREACH:
    case ENETUNREACH:
    case ENETDOWN:
        return Kind::Unreachable;
    default:
        return Kind::Other;
    }
}

const char *
NetError::kindName(Kind kind)
{
    switch (kind) {
    case Kind::Refused:     return "refused";
    case Kind::Reset:       return "reset";
    case Kind::TimedOut:    return "timed_out";
    case Kind::Unreachable: return "unreachable";
    default:                return "other";
    }
}

void
ignoreSigpipe()
{
    static std::once_flag once;
    std::call_once(once, []() { ::signal(SIGPIPE, SIG_IGN); });
}

void
Socket::close()
{
    if (fd_ >= 0) {
        ::close(fd_);
        fd_ = -1;
    }
}

int
Socket::release()
{
    const int fd = fd_;
    fd_ = -1;
    return fd;
}

Socket
listenTcp(std::uint16_t port, int backlog)
{
    Socket sock(::socket(AF_INET, SOCK_STREAM, 0));
    if (!sock.valid())
        throwErrno("socket()");

    const int one = 1;
    if (::setsockopt(sock.fd(), SOL_SOCKET, SO_REUSEADDR, &one,
                     sizeof(one)) != 0)
        throwErrno("setsockopt(SO_REUSEADDR)");

    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_ANY);
    addr.sin_port = htons(port);
    if (::bind(sock.fd(), reinterpret_cast<sockaddr *>(&addr),
               sizeof(addr)) != 0)
        throwErrno("bind(port " + std::to_string(port) + ")");
    if (::listen(sock.fd(), backlog) != 0)
        throwErrno("listen()");
    return sock;
}

std::uint16_t
localPort(int fd)
{
    sockaddr_in addr{};
    socklen_t len = sizeof(addr);
    if (::getsockname(fd, reinterpret_cast<sockaddr *>(&addr), &len) != 0)
        throwErrno("getsockname()");
    return ntohs(addr.sin_port);
}

Socket
connectTcp(const std::string &host, std::uint16_t port)
{
    addrinfo hints{};
    hints.ai_family = AF_INET;
    hints.ai_socktype = SOCK_STREAM;
    addrinfo *results = nullptr;
    const std::string service = std::to_string(port);
    const int rc = ::getaddrinfo(host.c_str(), service.c_str(), &hints,
                                 &results);
    if (rc != 0) {
        throw NetError(NetError::Kind::Unreachable,
                       "cannot resolve host `" + host +
                           "`: " + gai_strerror(rc));
    }

    Socket sock;
    std::string last_error = "no addresses";
    int last_errno = EHOSTUNREACH;
    for (addrinfo *ai = results; ai != nullptr; ai = ai->ai_next) {
        Socket candidate(
            ::socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol));
        if (!candidate.valid()) {
            last_error = std::strerror(errno);
            last_errno = errno;
            continue;
        }
        if (::connect(candidate.fd(), ai->ai_addr, ai->ai_addrlen) == 0) {
            sock = std::move(candidate);
            break;
        }
        last_error = std::strerror(errno);
        last_errno = errno;
    }
    ::freeaddrinfo(results);
    if (!sock.valid()) {
        throw NetError(NetError::classify(last_errno),
                       "cannot connect to " + host + ":" +
                           std::to_string(port) + ": " + last_error);
    }
    return sock;
}

bool
waitReadable(int fd, int timeout_millis)
{
    pollfd pfd{};
    pfd.fd = fd;
    pfd.events = POLLIN;
    const int rc = ::poll(&pfd, 1, timeout_millis);
    if (rc < 0) {
        if (errno == EINTR)
            return false; // caller re-polls; shutdown checks run between.
        throwErrno("poll()");
    }
    return rc > 0 && (pfd.revents & (POLLIN | POLLHUP | POLLERR)) != 0;
}

std::size_t
readSome(int fd, char *buffer, std::size_t capacity)
{
    bool injected_eintr = false;
    for (;;) {
        if (HM_FAULT("net.read.reset"))
            return 0; // injected: the peer is gone.
        if (!injected_eintr && HM_FAULT("net.read.eintr")) {
            injected_eintr = true; // injected: one EINTR-style lap.
            continue;
        }
        const ssize_t n = ::recv(fd, buffer, capacity, 0);
        if (n >= 0)
            return static_cast<std::size_t>(n);
        if (errno == EINTR)
            continue;
        if (errno == ECONNRESET)
            return 0; // the peer is gone; treat like EOF.
        throwErrno("recv()");
    }
}

void
writeAll(int fd, std::string_view data)
{
    std::size_t sent = 0;
    while (sent < data.size()) {
        if (HM_FAULT("net.write.fail")) {
            throw NetError(NetError::Kind::Reset,
                           "send(): injected connection reset");
        }
        std::size_t chunk = data.size() - sent;
        if (chunk > 1 && HM_FAULT("net.write.short"))
            chunk = chunk / 2; // injected short write; the loop retries.
        const ssize_t n = ::send(fd, data.data() + sent, chunk,
                                 MSG_NOSIGNAL);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            throwErrno("send()");
        }
        sent += static_cast<std::size_t>(n);
    }
}

Socket
acceptConnection(int listen_fd)
{
    if (HM_FAULT("net.accept"))
        return Socket(); // injected transient accept failure.
    const int fd = ::accept(listen_fd, nullptr, nullptr);
    if (fd >= 0)
        return Socket(fd);
    if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK ||
        errno == ECONNABORTED)
        return Socket();
    throwErrno("accept()");
}

} // namespace net
} // namespace hiermeans
