/**
 * @file
 * Thin POSIX TCP socket helpers for the serving layer.
 *
 * Dependency-free wrappers (no third-party networking library) with the
 * repo's error convention: every syscall failure throws
 * `hiermeans::Error` carrying the errno text, and file descriptors are
 * owned by a move-only RAII `Socket` so no code path leaks an fd. The
 * server (`src/server`) and the load generator (`tools/hmload`) share
 * these; nothing here knows about HTTP.
 */

#ifndef HIERMEANS_UTIL_NET_H
#define HIERMEANS_UTIL_NET_H

#include <cstdint>
#include <string>
#include <string_view>

#include "src/util/error.h"

namespace hiermeans {
namespace net {

/**
 * A socket-layer failure, classified so callers can distinguish the
 * retryable kinds (refused, reset, timed out) from programming errors.
 * Thrown by every helper below in place of a bare hiermeans::Error.
 */
class NetError : public Error
{
  public:
    enum class Kind
    {
        Refused,     ///< ECONNREFUSED — nothing listening.
        Reset,       ///< ECONNRESET / EPIPE mid-stream.
        TimedOut,    ///< ETIMEDOUT or a caller-imposed deadline.
        Unreachable, ///< EHOSTUNREACH / ENETUNREACH / resolution.
        Other        ///< everything else (EBADF, ENOMEM, ...).
    };

    NetError(Kind kind, const std::string &what_arg)
        : Error(what_arg), kind_(kind)
    {}

    Kind kind() const { return kind_; }

    /** Map an errno value onto the closest Kind. */
    static Kind classify(int err);

    /** Display name ("refused", "reset", ...). */
    static const char *kindName(Kind kind);

  private:
    Kind kind_;
};

/**
 * Ignore SIGPIPE process-wide (idempotent). send() already passes
 * MSG_NOSIGNAL, but a stray write to a dead peer anywhere else must
 * surface as EPIPE, never kill the process.
 */
void ignoreSigpipe();

/** Move-only owner of a socket file descriptor. */
class Socket
{
  public:
    /** An invalid (empty) socket. */
    Socket() = default;

    /** Take ownership of @p fd (-1 allowed: empty socket). */
    explicit Socket(int fd) : fd_(fd) {}

    ~Socket() { close(); }

    Socket(Socket &&other) noexcept : fd_(other.fd_) { other.fd_ = -1; }

    Socket &
    operator=(Socket &&other) noexcept
    {
        if (this != &other) {
            close();
            fd_ = other.fd_;
            other.fd_ = -1;
        }
        return *this;
    }

    Socket(const Socket &) = delete;
    Socket &operator=(const Socket &) = delete;

    int fd() const { return fd_; }
    bool valid() const { return fd_ >= 0; }

    /** Close now (idempotent). */
    void close();

    /** Give up ownership without closing; returns the fd. */
    int release();

  private:
    int fd_ = -1;
};

/**
 * Create a TCP listening socket bound to INADDR_ANY:@p port with
 * SO_REUSEADDR. @p port 0 binds an ephemeral port (read it back with
 * localPort). Throws on any failure.
 */
Socket listenTcp(std::uint16_t port, int backlog = 64);

/** The local port a bound socket ended up on (resolves port 0). */
std::uint16_t localPort(int fd);

/**
 * Blocking TCP connect to @p host:@p port (numeric IPv4 or a name
 * resolvable via getaddrinfo). Throws when the connection fails.
 */
Socket connectTcp(const std::string &host, std::uint16_t port);

/**
 * Wait up to @p timeout_millis for @p fd to become readable.
 * Returns true when readable (or the peer hung up — a subsequent read
 * reports EOF), false on timeout or EINTR.
 */
bool waitReadable(int fd, int timeout_millis);

/**
 * Read up to @p capacity bytes into @p buffer. Returns the byte count,
 * 0 on orderly EOF (connection reset also reads as EOF — the peer is
 * gone either way). Throws on other errors.
 *
 * Fault points: `net.read.reset` (pretend the peer vanished),
 * `net.read.eintr` (take one extra EINTR-style retry lap).
 */
std::size_t readSome(int fd, char *buffer, std::size_t capacity);

/**
 * Write all of @p data, retrying short writes and EINTR; SIGPIPE is
 * suppressed (MSG_NOSIGNAL). Throws NetError when the peer closed
 * (Kind::Reset) or the write fails otherwise.
 *
 * Fault points: `net.write.short` (truncate one send to half and let
 * the retry loop finish the job), `net.write.fail` (simulate the peer
 * resetting mid-write).
 */
void writeAll(int fd, std::string_view data);

/**
 * One connection from a listening socket, after the caller saw it
 * readable. Returns an empty Socket on transient failures (EINTR,
 * the peer vanishing between poll and accept); throws on real errors.
 *
 * Fault point: `net.accept` (pretend the accept was transient).
 */
Socket acceptConnection(int listen_fd);

} // namespace net
} // namespace hiermeans

#endif // HIERMEANS_UTIL_NET_H
