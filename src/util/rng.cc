#include "src/util/rng.h"

#include <cmath>
#include <numbers>

#include "src/util/error.h"

namespace hiermeans {
namespace rng {

namespace {

inline std::uint64_t
rotl(std::uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

std::uint64_t
SplitMix64::next()
{
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

Engine::Engine(std::uint64_t seed_word)
{
    seed(seed_word);
}

void
Engine::seed(std::uint64_t seed_word)
{
    SplitMix64 sm(seed_word);
    for (auto &word : state_)
        word = sm.next();
    // All-zero state is the one forbidden xoshiro state; SplitMix64 cannot
    // produce four consecutive zeros, but guard anyway.
    if (state_[0] == 0 && state_[1] == 0 && state_[2] == 0 && state_[3] == 0)
        state_[0] = 0x9e3779b97f4a7c15ULL;
    hasCachedNormal_ = false;
}

Engine::result_type
Engine::operator()()
{
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;

    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);

    return result;
}

Engine
Engine::split()
{
    // Derive a child seed from two fresh words; xoshiro streams seeded
    // through SplitMix64 from distinct words are effectively independent.
    const std::uint64_t a = (*this)();
    const std::uint64_t b = (*this)();
    return Engine(a ^ rotl(b, 32) ^ 0xd1b54a32d192ed03ULL);
}

double
Engine::uniform()
{
    // 53 high bits -> double in [0, 1).
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
}

double
Engine::uniform(double lo, double hi)
{
    HM_REQUIRE(lo < hi, "uniform(lo, hi) requires lo < hi, got ["
                            << lo << ", " << hi << ")");
    return lo + (hi - lo) * uniform();
}

std::uint64_t
Engine::below(std::uint64_t n)
{
    HM_REQUIRE(n > 0, "below(n) requires n > 0");
    // Lemire-style rejection to avoid modulo bias.
    const std::uint64_t threshold = (0 - n) % n;
    for (;;) {
        const std::uint64_t r = (*this)();
        if (r >= threshold)
            return r % n;
    }
}

std::int64_t
Engine::rangeInclusive(std::int64_t lo, std::int64_t hi)
{
    HM_REQUIRE(lo <= hi, "rangeInclusive requires lo <= hi, got ["
                             << lo << ", " << hi << "]");
    const std::uint64_t span =
        static_cast<std::uint64_t>(hi) - static_cast<std::uint64_t>(lo) + 1;
    if (span == 0) {
        // Full 64-bit range: every word is valid.
        return static_cast<std::int64_t>((*this)());
    }
    return lo + static_cast<std::int64_t>(below(span));
}

double
Engine::normal()
{
    if (hasCachedNormal_) {
        hasCachedNormal_ = false;
        return cachedNormal_;
    }
    // Box-Muller; u1 in (0, 1] so log() is finite.
    double u1 = 1.0 - uniform();
    double u2 = uniform();
    const double radius = std::sqrt(-2.0 * std::log(u1));
    const double angle = 2.0 * std::numbers::pi * u2;
    cachedNormal_ = radius * std::sin(angle);
    hasCachedNormal_ = true;
    return radius * std::cos(angle);
}

double
Engine::normal(double mean, double sigma)
{
    HM_REQUIRE(sigma >= 0.0, "normal() requires sigma >= 0, got " << sigma);
    return mean + sigma * normal();
}

double
Engine::logNormal(double mu, double sigma)
{
    return std::exp(normal(mu, sigma));
}

bool
Engine::bernoulli(double p)
{
    HM_REQUIRE(p >= 0.0 && p <= 1.0,
               "bernoulli() requires p in [0, 1], got " << p);
    return uniform() < p;
}

std::vector<std::size_t>
permutation(Engine &engine, std::size_t n)
{
    std::vector<std::size_t> indices(n);
    for (std::size_t i = 0; i < n; ++i)
        indices[i] = i;
    engine.shuffle(indices);
    return indices;
}

} // namespace rng
} // namespace hiermeans
