/**
 * @file
 * Deterministic pseudo-random number generation.
 *
 * Every stochastic component in hiermeans (SOM training order, synthetic
 * counter noise, k-means seeding, ...) draws from an explicit rng::Engine
 * so that all experiments are reproducible bit-for-bit from a seed. The
 * engine is xoshiro256** seeded through SplitMix64, a combination with
 * well-studied statistical quality and trivially portable semantics
 * (unlike std::default_random_engine, which varies across standard
 * library implementations).
 */

#ifndef HIERMEANS_UTIL_RNG_H
#define HIERMEANS_UTIL_RNG_H

#include <cstdint>
#include <limits>
#include <vector>

namespace hiermeans {
namespace rng {

/**
 * SplitMix64: a tiny 64-bit generator used to expand a single seed word
 * into the 256-bit state of xoshiro256**.
 */
class SplitMix64
{
  public:
    explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

    /** Next 64-bit value. */
    std::uint64_t next();

  private:
    std::uint64_t state_;
};

/**
 * xoshiro256** 1.0 by Blackman and Vigna; public-domain algorithm.
 *
 * Satisfies the C++ UniformRandomBitGenerator concept so it can be used
 * with <random> distributions, though hiermeans uses its own portable
 * distributions below.
 */
class Engine
{
  public:
    using result_type = std::uint64_t;

    /** Construct from a single seed word (expanded via SplitMix64). */
    explicit Engine(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

    static constexpr result_type min() { return 0; }
    static constexpr result_type
    max()
    {
        return std::numeric_limits<result_type>::max();
    }

    /** Next raw 64-bit word. */
    result_type operator()();

    /** Reseed in place, equivalent to constructing a fresh engine. */
    void seed(std::uint64_t seed);

    /**
     * Fork a statistically independent child engine. Used to give each
     * subsystem (SOM, noise, ...) its own stream derived from one master
     * seed so that adding a consumer does not perturb the others.
     */
    Engine split();

    /** Uniform double in [0, 1). */
    double uniform();

    /** Uniform double in [lo, hi). Requires lo < hi. */
    double uniform(double lo, double hi);

    /** Uniform integer in [0, n). Requires n > 0. Unbiased (rejection). */
    std::uint64_t below(std::uint64_t n);

    /** Uniform integer in [lo, hi] inclusive. Requires lo <= hi. */
    std::int64_t rangeInclusive(std::int64_t lo, std::int64_t hi);

    /** Standard normal via Box-Muller (cached second draw). */
    double normal();

    /** Normal with given mean and standard deviation (sigma >= 0). */
    double normal(double mean, double sigma);

    /** Log-normal: exp(normal(mu, sigma)). */
    double logNormal(double mu, double sigma);

    /** Bernoulli draw with probability p in [0, 1]. */
    bool bernoulli(double p);

    /** Fisher-Yates shuffle of @p items. */
    template <typename T>
    void
    shuffle(std::vector<T> &items)
    {
        if (items.size() < 2)
            return;
        for (std::size_t i = items.size() - 1; i > 0; --i) {
            const std::size_t j =
                static_cast<std::size_t>(below(static_cast<std::uint64_t>(
                    i + 1)));
            std::swap(items[i], items[j]);
        }
    }

  private:
    std::uint64_t state_[4];
    double cachedNormal_ = 0.0;
    bool hasCachedNormal_ = false;
};

/** A shuffled index permutation [0, n) drawn from @p engine. */
std::vector<std::size_t> permutation(Engine &engine, std::size_t n);

} // namespace rng
} // namespace hiermeans

#endif // HIERMEANS_UTIL_RNG_H
