#include "src/util/signal.h"

#include <fcntl.h>
#include <poll.h>
#include <signal.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <cstring>
#include <mutex>

#include "src/util/error.h"

namespace hiermeans {
namespace util {

namespace {

std::atomic<bool> g_requested{false};
int g_pipe[2] = {-1, -1};
std::once_flag g_pipe_once;

void
makePipe()
{
    HM_REQUIRE(::pipe(g_pipe) == 0,
               "shutdown pipe: " << std::strerror(errno));
    // The write end must never block inside a signal handler.
    for (const int fd : {g_pipe[0], g_pipe[1]}) {
        const int flags = ::fcntl(fd, F_GETFL);
        ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
    }
}

extern "C" void
onShutdownSignal(int)
{
    g_requested.store(true, std::memory_order_relaxed);
    const char byte = 1;
    // Best effort; the atomic flag is the source of truth.
    [[maybe_unused]] const ssize_t n = ::write(g_pipe[1], &byte, 1);
}

} // namespace

void
installShutdownSignals(std::initializer_list<int> signals)
{
    std::call_once(g_pipe_once, makePipe);
    struct sigaction action
    {};
    action.sa_handler = onShutdownSignal;
    ::sigemptyset(&action.sa_mask);
    action.sa_flags = 0; // interrupt blocking syscalls so loops notice.
    for (const int sig : signals) {
        HM_REQUIRE(::sigaction(sig, &action, nullptr) == 0,
                   "sigaction(" << sig
                                << "): " << std::strerror(errno));
    }
}

bool
shutdownRequested()
{
    return g_requested.load(std::memory_order_relaxed);
}

bool
waitForShutdown(int timeout_millis)
{
    if (shutdownRequested())
        return true;
    std::call_once(g_pipe_once, makePipe);
    pollfd pfd{};
    pfd.fd = g_pipe[0];
    pfd.events = POLLIN;
    ::poll(&pfd, 1, timeout_millis); // EINTR or timeout both fall through.
    return shutdownRequested();
}

void
requestShutdown()
{
    std::call_once(g_pipe_once, makePipe);
    onShutdownSignal(0);
}

void
resetShutdownForTesting()
{
    g_requested.store(false, std::memory_order_relaxed);
    if (g_pipe[0] >= 0) {
        char drain[64];
        while (::read(g_pipe[0], drain, sizeof(drain)) > 0) {
        }
    }
}

} // namespace util
} // namespace hiermeans
