/**
 * @file
 * Async-signal-safe shutdown notification (the self-pipe trick).
 *
 * A daemon cannot do real work inside a signal handler; the handler
 * here only writes one byte to a pipe and sets an atomic flag. Threads
 * either poll `shutdownRequested()` between work items or block in
 * `waitForShutdown()` on the pipe's read end. Process-wide singleton
 * state by design — there is one SIGINT per process.
 */

#ifndef HIERMEANS_UTIL_SIGNAL_H
#define HIERMEANS_UTIL_SIGNAL_H

#include <initializer_list>

namespace hiermeans {
namespace util {

/**
 * Install the shutdown handler for @p signals (e.g. {SIGINT, SIGTERM}).
 * Idempotent per signal; throws on sigaction/pipe failure.
 */
void installShutdownSignals(std::initializer_list<int> signals);

/** True once any installed signal has been delivered. */
bool shutdownRequested();

/**
 * Block up to @p timeout_millis (-1 = forever) for a shutdown signal.
 * Returns shutdownRequested() afterwards.
 */
bool waitForShutdown(int timeout_millis);

/**
 * Trip the shutdown flag programmatically (tests, in-process servers).
 * Safe to call from any thread.
 */
void requestShutdown();

/** Clear the flag again (tests only; not signal-safe). */
void resetShutdownForTesting();

} // namespace util
} // namespace hiermeans

#endif // HIERMEANS_UTIL_SIGNAL_H
