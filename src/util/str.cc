#include "src/util/str.h"

#include <algorithm>
#include <cctype>
#include <cstdio>

#include "src/util/error.h"

namespace hiermeans {
namespace str {

std::string
fixed(double value, int decimals)
{
    HM_REQUIRE(decimals >= 0 && decimals <= 17,
               "decimals must be in [0, 17], got " << decimals);
    char buffer[64];
    std::snprintf(buffer, sizeof(buffer), "%.*f", decimals, value);
    return buffer;
}

std::string
fixedWidth(double value, int decimals, int width)
{
    return padLeft(fixed(value, decimals), static_cast<std::size_t>(
                                               std::max(width, 0)));
}

std::string
padLeft(std::string_view text, std::size_t width)
{
    if (text.size() >= width)
        return std::string(text);
    return std::string(width - text.size(), ' ') + std::string(text);
}

std::string
padRight(std::string_view text, std::size_t width)
{
    if (text.size() >= width)
        return std::string(text);
    return std::string(text) + std::string(width - text.size(), ' ');
}

std::string
center(std::string_view text, std::size_t width)
{
    if (text.size() >= width)
        return std::string(text);
    const std::size_t total = width - text.size();
    const std::size_t left = total / 2;
    return std::string(left, ' ') + std::string(text) +
           std::string(total - left, ' ');
}

std::vector<std::string>
split(std::string_view text, char delim)
{
    std::vector<std::string> parts;
    std::size_t start = 0;
    for (std::size_t i = 0; i <= text.size(); ++i) {
        if (i == text.size() || text[i] == delim) {
            parts.emplace_back(text.substr(start, i - start));
            start = i + 1;
        }
    }
    return parts;
}

std::vector<std::string>
splitWhitespace(std::string_view text)
{
    std::vector<std::string> parts;
    std::size_t i = 0;
    while (i < text.size()) {
        while (i < text.size() && std::isspace(static_cast<unsigned char>(text[i])))
            ++i;
        std::size_t start = i;
        while (i < text.size() && !std::isspace(static_cast<unsigned char>(text[i])))
            ++i;
        if (i > start)
            parts.emplace_back(text.substr(start, i - start));
    }
    return parts;
}

std::string
join(const std::vector<std::string> &parts, std::string_view sep)
{
    std::string out;
    for (std::size_t i = 0; i < parts.size(); ++i) {
        if (i > 0)
            out += sep;
        out += parts[i];
    }
    return out;
}

std::string
trim(std::string_view text)
{
    std::size_t begin = 0;
    std::size_t end = text.size();
    while (begin < end &&
           std::isspace(static_cast<unsigned char>(text[begin])))
        ++begin;
    while (end > begin &&
           std::isspace(static_cast<unsigned char>(text[end - 1])))
        --end;
    return std::string(text.substr(begin, end - begin));
}

std::string
toLower(std::string_view text)
{
    std::string out(text);
    std::transform(out.begin(), out.end(), out.begin(), [](unsigned char c) {
        return static_cast<char>(std::tolower(c));
    });
    return out;
}

bool
startsWith(std::string_view text, std::string_view prefix)
{
    return text.size() >= prefix.size() &&
           text.substr(0, prefix.size()) == prefix;
}

std::string
repeat(char fill, std::size_t n)
{
    return std::string(n, fill);
}

} // namespace str
} // namespace hiermeans
