/**
 * @file
 * Small string and number-formatting helpers shared across the library.
 */

#ifndef HIERMEANS_UTIL_STR_H
#define HIERMEANS_UTIL_STR_H

#include <string>
#include <string_view>
#include <vector>

namespace hiermeans {
namespace str {

/** Format @p value with @p decimals digits after the point. */
std::string fixed(double value, int decimals);

/** Format @p value with @p decimals digits, right-aligned to @p width. */
std::string fixedWidth(double value, int decimals, int width);

/** Left-pad @p text with spaces to at least @p width characters. */
std::string padLeft(std::string_view text, std::size_t width);

/** Right-pad @p text with spaces to at least @p width characters. */
std::string padRight(std::string_view text, std::size_t width);

/** Center @p text within @p width characters (extra space on the right). */
std::string center(std::string_view text, std::size_t width);

/** Split @p text on @p delim; keeps empty fields. */
std::vector<std::string> split(std::string_view text, char delim);

/** Split @p text on runs of ASCII whitespace; no empty fields. */
std::vector<std::string> splitWhitespace(std::string_view text);

/** Join @p parts with @p sep. */
std::string join(const std::vector<std::string> &parts,
                 std::string_view sep);

/** Strip leading and trailing ASCII whitespace. */
std::string trim(std::string_view text);

/** Lower-case an ASCII string. */
std::string toLower(std::string_view text);

/** True when @p text starts with @p prefix. */
bool startsWith(std::string_view text, std::string_view prefix);

/** A horizontal rule of @p n copies of @p fill. */
std::string repeat(char fill, std::size_t n);

} // namespace str
} // namespace hiermeans

#endif // HIERMEANS_UTIL_STR_H
