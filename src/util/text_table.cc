#include "src/util/text_table.h"

#include <algorithm>

#include "src/util/str.h"

namespace hiermeans {
namespace util {

TextTable::TextTable(std::vector<std::string> header)
{
    setHeader(std::move(header));
}

void
TextTable::setHeader(std::vector<std::string> header)
{
    header_ = std::move(header);
}

void
TextTable::setAlignments(std::vector<Align> alignments)
{
    alignments_ = std::move(alignments);
}

void
TextTable::addRow(std::vector<std::string> row)
{
    Row r;
    r.cells = std::move(row);
    rows_.push_back(std::move(r));
    ++numDataRows_;
}

void
TextTable::addSeparator()
{
    Row r;
    r.separator = true;
    rows_.push_back(std::move(r));
}

std::size_t
TextTable::columnCount() const
{
    std::size_t cols = header_.size();
    for (const auto &row : rows_)
        cols = std::max(cols, row.cells.size());
    return cols;
}

std::vector<std::size_t>
TextTable::columnWidths() const
{
    std::vector<std::size_t> widths(columnCount(), 0);
    for (std::size_t i = 0; i < header_.size(); ++i)
        widths[i] = std::max(widths[i], header_[i].size());
    for (const auto &row : rows_) {
        for (std::size_t i = 0; i < row.cells.size(); ++i)
            widths[i] = std::max(widths[i], row.cells[i].size());
    }
    return widths;
}

std::string
TextTable::renderCells(const std::vector<std::string> &cells,
                       const std::vector<std::size_t> &widths) const
{
    std::string line;
    for (std::size_t i = 0; i < widths.size(); ++i) {
        const std::string cell = i < cells.size() ? cells[i] : "";
        const Align align =
            i < alignments_.size()
                ? alignments_[i]
                : (i == 0 ? Align::Left : Align::Right);
        if (i > 0)
            line += "  ";
        line += align == Align::Left ? str::padRight(cell, widths[i])
                                     : str::padLeft(cell, widths[i]);
    }
    // Drop trailing spaces so rendered output diffs cleanly.
    while (!line.empty() && line.back() == ' ')
        line.pop_back();
    line += '\n';
    return line;
}

std::string
TextTable::render() const
{
    const auto widths = columnWidths();
    if (widths.empty())
        return "";

    std::size_t total = 0;
    for (std::size_t w : widths)
        total += w;
    total += 2 * (widths.size() - 1);

    std::string out;
    if (!header_.empty()) {
        out += renderCells(header_, widths);
        out += str::repeat('-', total) + "\n";
    }
    for (const auto &row : rows_) {
        if (row.separator)
            out += str::repeat('-', total) + "\n";
        else
            out += renderCells(row.cells, widths);
    }
    return out;
}

} // namespace util
} // namespace hiermeans
