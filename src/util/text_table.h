/**
 * @file
 * Plain-text table renderer used by the bench harness to print the
 * paper's tables (Table III-VI) and by the report generator.
 */

#ifndef HIERMEANS_UTIL_TEXT_TABLE_H
#define HIERMEANS_UTIL_TEXT_TABLE_H

#include <string>
#include <vector>

namespace hiermeans {
namespace util {

/**
 * A simple column-aligned text table.
 *
 * Usage:
 * @code
 *   TextTable t({"Workload", "A", "B", "ratio(=A/B)"});
 *   t.addRow({"jvm98.201.compress", "4.75", "3.99", "1.19"});
 *   t.addSeparator();
 *   t.addRow({"Geometric Mean", "2.10", "1.94", "1.08"});
 *   std::cout << t.render();
 * @endcode
 */
class TextTable
{
  public:
    /** Horizontal alignment for one column. */
    enum class Align { Left, Right };

    TextTable() = default;

    /** Construct with a header row. */
    explicit TextTable(std::vector<std::string> header);

    /** Set the header row. */
    void setHeader(std::vector<std::string> header);

    /** Set per-column alignment (default: first column left, rest right). */
    void setAlignments(std::vector<Align> alignments);

    /** Append a data row. Rows may vary in width; short rows are padded. */
    void addRow(std::vector<std::string> row);

    /** Append a full-width horizontal separator. */
    void addSeparator();

    /** Number of data rows added so far (separators not counted). */
    std::size_t rowCount() const { return numDataRows_; }

    /** Render the table to a string, one trailing newline per line. */
    std::string render() const;

  private:
    struct Row
    {
        bool separator = false;
        std::vector<std::string> cells;
    };

    std::vector<std::string> header_;
    std::vector<Align> alignments_;
    std::vector<Row> rows_;
    std::size_t numDataRows_ = 0;

    std::size_t columnCount() const;
    std::vector<std::size_t> columnWidths() const;
    std::string renderCells(const std::vector<std::string> &cells,
                            const std::vector<std::size_t> &widths) const;
};

} // namespace util
} // namespace hiermeans

#endif // HIERMEANS_UTIL_TEXT_TABLE_H
