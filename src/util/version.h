/**
 * @file
 * The one shared version constant printed by every CLI front-end.
 *
 * Keep in sync with the `project(... VERSION ...)` declaration in the
 * top-level CMakeLists.txt; tools print it from here so that hmscore,
 * hmbatch, hmserved and hmload can never disagree about their version.
 */

#ifndef HIERMEANS_UTIL_VERSION_H
#define HIERMEANS_UTIL_VERSION_H

namespace hiermeans {
namespace util {

/** Library version, e.g. "1.9.0". */
inline constexpr const char kVersion[] = "1.9.0";

/** Full version string for --help banners: "hiermeans 1.9.0". */
inline constexpr const char kVersionString[] = "hiermeans 1.9.0";

} // namespace util
} // namespace hiermeans

#endif // HIERMEANS_UTIL_VERSION_H
