#include "src/wire/wire.h"

#include <cctype>
#include <cstring>

#include "src/store/record.h"
#include "src/util/error.h"

namespace hiermeans {
namespace wire {

namespace {

constexpr char kMagic[4] = {'H', 'M', 'W', '1'};

void
appendLe32(std::string &out, std::uint32_t value)
{
    out.push_back(static_cast<char>(value & 0xFF));
    out.push_back(static_cast<char>((value >> 8) & 0xFF));
    out.push_back(static_cast<char>((value >> 16) & 0xFF));
    out.push_back(static_cast<char>((value >> 24) & 0xFF));
}

std::uint32_t
readLe32(const char *p)
{
    const auto *u = reinterpret_cast<const unsigned char *>(p);
    return static_cast<std::uint32_t>(u[0]) |
           (static_cast<std::uint32_t>(u[1]) << 8) |
           (static_cast<std::uint32_t>(u[2]) << 16) |
           (static_cast<std::uint32_t>(u[3]) << 24);
}

/** The CRC input: version byte + type byte + payload. */
std::uint32_t
frameCrc(std::uint8_t version, std::uint8_t type,
         std::string_view payload)
{
    char head[2] = {static_cast<char>(version),
                    static_cast<char>(type)};
    std::string checked;
    checked.reserve(sizeof(head) + payload.size());
    checked.append(head, sizeof(head));
    checked.append(payload);
    return store::crc32(checked);
}

void
encodeDocument(store::BinaryWriter &w, const ScoreDocument &doc)
{
    w.str(doc.id);
    w.str(doc.servedBy);
    w.u64(doc.fingerprint);
    w.u64(doc.recommendedK);
    w.f64(doc.ratio);
    w.f64(doc.plainRatio);
    w.f64(doc.wallMillis);
    w.u32(static_cast<std::uint32_t>(doc.rows.size()));
    for (const ScoreRow &row : doc.rows) {
        w.u32(row.k);
        w.f64(row.scoreA);
        w.f64(row.scoreB);
        w.f64(row.ratio);
    }
}

ScoreDocument
decodeDocument(store::BinaryReader &r)
{
    ScoreDocument doc;
    doc.id = r.str();
    doc.servedBy = r.str();
    doc.fingerprint = r.u64();
    doc.recommendedK = r.u64();
    doc.ratio = r.f64();
    doc.plainRatio = r.f64();
    doc.wallMillis = r.f64();
    const std::uint32_t rows = r.u32();
    doc.rows.reserve(rows);
    for (std::uint32_t i = 0; i < rows; ++i) {
        ScoreRow row;
        row.k = r.u32();
        row.scoreA = r.f64();
        row.scoreB = r.f64();
        row.ratio = r.f64();
        doc.rows.push_back(row);
    }
    return doc;
}

/** The single frame of @p body, checked to be of @p expected type. */
Frame
expectFrame(std::string_view body, MessageType expected,
            const char *what)
{
    const Frame frame = decodeSingleFrame(body);
    HM_REQUIRE(frame.type == expected,
               what << ": expected message type "
                    << static_cast<int>(expected) << ", got "
                    << static_cast<int>(frame.type));
    return frame;
}

} // namespace

bool
knownMessageType(std::uint8_t type)
{
    switch (static_cast<MessageType>(type)) {
    case MessageType::ScoreRequest:
    case MessageType::BatchManifest:
    case MessageType::ScoreReport:
    case MessageType::BatchItem:
    case MessageType::ObserveIntake:
        return true;
    }
    return false;
}

std::size_t
decodeFrame(std::string_view data, Frame &frame)
{
    HM_REQUIRE(data.size() >= kFrameOverhead,
               "wire: torn frame header (" << data.size()
                                           << " bytes, need "
                                           << kFrameOverhead << ")");
    HM_REQUIRE(std::memcmp(data.data(), kMagic, sizeof(kMagic)) == 0,
               "wire: bad frame magic (not an "
               "application/x-hiermeans-wire body)");
    const std::uint32_t length = readLe32(data.data() + 4);
    HM_REQUIRE(length <= kMaxPayloadBytes,
               "wire: oversized length prefix (" << length
                                                 << " bytes, cap "
                                                 << kMaxPayloadBytes
                                                 << ")");
    HM_REQUIRE(data.size() >= kFrameOverhead + length,
               "wire: torn frame payload (have "
                   << (data.size() - kFrameOverhead) << " of "
                   << length << " payload bytes)");
    const std::uint32_t expected_crc = readLe32(data.data() + 8);
    const auto version =
        static_cast<std::uint8_t>(data[12]);
    const auto type = static_cast<std::uint8_t>(data[13]);
    const std::string_view payload = data.substr(kFrameOverhead, length);
    HM_REQUIRE(frameCrc(version, type, payload) == expected_crc,
               "wire: frame CRC mismatch");
    HM_REQUIRE(version == kWireVersion,
               "wire: unsupported wire version "
                   << static_cast<int>(version) << " (this codec "
                   << "speaks version "
                   << static_cast<int>(kWireVersion) << ")");
    HM_REQUIRE(knownMessageType(type),
               "wire: unknown message type " << static_cast<int>(type));
    frame.version = version;
    frame.type = static_cast<MessageType>(type);
    frame.payload = payload;
    return kFrameOverhead + length;
}

Frame
decodeSingleFrame(std::string_view data)
{
    Frame frame;
    const std::size_t consumed = decodeFrame(data, frame);
    HM_REQUIRE(consumed == data.size(),
               "wire: " << (data.size() - consumed)
                        << " trailing bytes after the frame");
    return frame;
}

std::string
encodeFrame(MessageType type, std::string_view payload)
{
    std::string frame;
    frame.reserve(kFrameOverhead + payload.size());
    frame.append(kMagic, sizeof(kMagic));
    appendLe32(frame, static_cast<std::uint32_t>(payload.size()));
    appendLe32(frame, frameCrc(kWireVersion,
                               static_cast<std::uint8_t>(type),
                               payload));
    frame.push_back(static_cast<char>(kWireVersion));
    frame.push_back(static_cast<char>(type));
    frame.append(payload);
    return frame;
}

bool
FrameReader::next(Frame &frame)
{
    if (corrupt_ || offset_ >= data_.size())
        return false;
    try {
        offset_ += decodeFrame(data_.substr(offset_), frame);
    } catch (const Error &e) {
        corrupt_ = true;
        corruption_ = e.what();
        return false;
    }
    valid_ = offset_;
    return true;
}

std::string
encodeScoreRequest(std::string_view manifest_line)
{
    store::BinaryWriter w;
    w.str(manifest_line);
    return encodeFrame(MessageType::ScoreRequest, w.bytes());
}

std::string
decodeScoreRequest(std::string_view body)
{
    const Frame frame =
        expectFrame(body, MessageType::ScoreRequest, "score request");
    store::BinaryReader r(frame.payload);
    std::string line = r.str();
    r.expectDone("wire score-request payload");
    return line;
}

std::string
encodeBatchManifest(const std::vector<std::string> &lines)
{
    store::BinaryWriter w;
    w.u32(static_cast<std::uint32_t>(lines.size()));
    for (const std::string &line : lines)
        w.str(line);
    return encodeFrame(MessageType::BatchManifest, w.bytes());
}

BatchView::BatchView(std::string_view body)
{
    const Frame frame =
        expectFrame(body, MessageType::BatchManifest, "batch manifest");
    // Walk the rows by hand so each row stays a view into the frame
    // buffer — BinaryReader::str() would copy.
    const std::string_view payload = frame.payload;
    HM_REQUIRE(payload.size() >= 4,
               "wire: batch manifest payload too short for row count");
    const std::uint32_t count = readLe32(payload.data());
    rows_.reserve(count);
    std::size_t offset = 4;
    for (std::uint32_t i = 0; i < count; ++i) {
        HM_REQUIRE(payload.size() - offset >= 4,
                   "wire: batch row " << (i + 1)
                                      << " length prefix torn");
        const std::uint32_t length = readLe32(payload.data() + offset);
        offset += 4;
        HM_REQUIRE(payload.size() - offset >= length,
                   "wire: batch row " << (i + 1) << " torn (need "
                                      << length << " bytes)");
        rows_.push_back(payload.substr(offset, length));
        offset += length;
    }
    HM_REQUIRE(offset == payload.size(),
               "wire: " << (payload.size() - offset)
                        << " trailing bytes after batch rows");
}

std::string
BatchView::manifestText() const
{
    std::size_t total = 0;
    for (const std::string_view row : rows_)
        total += row.size() + 1;
    std::string text;
    text.reserve(total);
    for (const std::string_view row : rows_) {
        text.append(row);
        text.push_back('\n');
    }
    return text;
}

std::string
encodeScoreReport(const ScoreDocument &doc)
{
    store::BinaryWriter w;
    encodeDocument(w, doc);
    return encodeFrame(MessageType::ScoreReport, w.bytes());
}

ScoreDocument
decodeScoreReport(std::string_view body)
{
    const Frame frame =
        expectFrame(body, MessageType::ScoreReport, "score report");
    store::BinaryReader r(frame.payload);
    ScoreDocument doc = decodeDocument(r);
    r.expectDone("wire score-report payload");
    return doc;
}

std::string
encodeBatchItem(const BatchItem &item)
{
    store::BinaryWriter w;
    w.u32(item.line);
    w.u8(item.ok ? 1 : 0);
    if (item.ok) {
        encodeDocument(w, item.doc);
    } else {
        w.str(item.errorCode);
        w.str(item.error);
        w.u8(item.timedOut ? 1 : 0);
    }
    return encodeFrame(MessageType::BatchItem, w.bytes());
}

BatchItem
decodeBatchItem(const Frame &frame)
{
    HM_REQUIRE(frame.type == MessageType::BatchItem,
               "batch item: expected message type "
                   << static_cast<int>(MessageType::BatchItem)
                   << ", got " << static_cast<int>(frame.type));
    store::BinaryReader r(frame.payload);
    BatchItem item;
    item.line = r.u32();
    item.ok = r.u8() != 0;
    if (item.ok) {
        item.doc = decodeDocument(r);
    } else {
        item.errorCode = r.str();
        item.error = r.str();
        item.timedOut = r.u8() != 0;
    }
    r.expectDone("wire batch-item payload");
    return item;
}

std::string
encodeObservation(const Observation &obs)
{
    store::BinaryWriter w;
    w.f64(obs.ratio);
    w.u8(obs.hasPlain ? 1 : 0);
    w.f64(obs.plainRatio);
    w.str(obs.id);
    return encodeFrame(MessageType::ObserveIntake, w.bytes());
}

Observation
decodeObservation(std::string_view body)
{
    const Frame frame =
        expectFrame(body, MessageType::ObserveIntake, "observation");
    store::BinaryReader r(frame.payload);
    Observation obs;
    obs.ratio = r.f64();
    obs.hasPlain = r.u8() != 0;
    obs.plainRatio = r.f64();
    obs.id = r.str();
    r.expectDone("wire observe payload");
    return obs;
}

std::string
mediaType(std::string_view content_type)
{
    const std::size_t semi = content_type.find(';');
    if (semi != std::string_view::npos)
        content_type = content_type.substr(0, semi);
    std::string type;
    type.reserve(content_type.size());
    for (const char c : content_type) {
        if (std::isspace(static_cast<unsigned char>(c)))
            continue;
        type.push_back(static_cast<char>(
            std::tolower(static_cast<unsigned char>(c))));
    }
    return type;
}

bool
isWireMediaType(std::string_view content_type)
{
    return mediaType(content_type) == kMediaType;
}

Negotiated
negotiateAccept(std::string_view accept_header)
{
    Negotiated result;
    if (accept_header.empty())
        return result;
    bool any_known = false;
    std::size_t start = 0;
    while (start <= accept_header.size()) {
        std::size_t comma = accept_header.find(',', start);
        if (comma == std::string_view::npos)
            comma = accept_header.size();
        const std::string type =
            mediaType(accept_header.substr(start, comma - start));
        start = comma + 1;
        if (type.empty())
            continue;
        if (type == kMediaType) {
            result.format = ResponseFormat::Binary;
            return result;
        }
        if (type == "*/*" || type == "application/*" ||
            type == "text/*" || type == "application/json" ||
            type == "application/x-ndjson" || type == "text/plain")
            any_known = true;
    }
    result.acceptable = any_known;
    return result;
}

const char *
acceptBoth()
{
    return "application/x-hiermeans-wire, application/json";
}

} // namespace wire
} // namespace hiermeans
