/**
 * @file
 * The negotiated binary wire format for the /v1 API surface: a
 * versioned, self-describing, CRC32-framed encoding of score
 * requests, batch manifests, score reports, batch result items and
 * observe intake — the serving-layer twin of the store's record
 * codec (src/store/record.h), sharing its BinaryWriter/BinaryReader
 * canonical little-endian payload encoding and its CRC32.
 *
 * Frame layout (all integers little-endian):
 *
 *   offset  size  field
 *   0       4     magic "HMW1" — per-frame sync marker
 *   4       4     payload length N (u32)
 *   8       4     CRC32 (IEEE, reflected) of version + type + payload
 *   12      1     wire version (kWireVersion)
 *   13      1     message type (MessageType)
 *   14      N     payload (BinaryWriter encoding)
 *
 * A request body is exactly one frame; a binary batch response is a
 * concatenation of BatchItem frames (the binary twin of the NDJSON
 * stream, one frame per manifest line, in line order). The magic +
 * CRC make truncation and corruption detectable frame-by-frame, and
 * the version byte lets the format evolve without breaking old
 * readers: a decoder refuses versions it does not know with a
 * stable error instead of misparsing.
 *
 * Negotiation (transport layer, RFC-ish but deliberately minimal):
 *  - a request body is binary iff `Content-Type:
 *    application/x-hiermeans-wire`; any other unknown type on a
 *    body-carrying request is answered 415 `unsupported_media_type`.
 *  - a response is binary iff the request's `Accept` header names
 *    `application/x-hiermeans-wire` explicitly; wildcards keep the
 *    JSON default. An Accept that matches neither JSON, text nor the
 *    wire type is answered 406 `not_acceptable`.
 *  - error envelopes are always JSON: a client that negotiates
 *    binary must (and ScoringClient does) accept both.
 *
 * Zero-copy: BatchView iterates the rows of a BatchManifest frame as
 * std::string_views into the request buffer, so /v1/batch decodes
 * without a per-row allocation.
 */

#ifndef HIERMEANS_WIRE_WIRE_H
#define HIERMEANS_WIRE_WIRE_H

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace hiermeans {
namespace wire {

/** The negotiated binary media type. */
inline constexpr const char *kMediaType = "application/x-hiermeans-wire";

/** The wire-format version this codec speaks. */
inline constexpr std::uint8_t kWireVersion = 1;

/** Fixed frame overhead in bytes (everything but the payload). */
inline constexpr std::size_t kFrameOverhead = 14;

/** Refuse length prefixes beyond this (64 MiB): a corrupt or hostile
 *  length must not drive a giant allocation before the CRC check. */
inline constexpr std::uint32_t kMaxPayloadBytes = 64u * 1024u * 1024u;

/** Typed frames; values are stable and append-only. */
enum class MessageType : std::uint8_t
{
    ScoreRequest = 1,  ///< one manifest line (POST /v1/score body).
    BatchManifest = 2, ///< a whole manifest (POST /v1/batch body).
    ScoreReport = 3,   ///< one score document (200 response body).
    BatchItem = 4,     ///< one batch line's outcome (response stream).
    ObserveIntake = 5  ///< one external observation (observe body).
};

/** True for types this codec version knows how to decode. */
bool knownMessageType(std::uint8_t type);

/** One decoded frame header; payload views into the source buffer. */
struct Frame
{
    std::uint8_t version = kWireVersion;
    MessageType type = MessageType::ScoreRequest;
    std::string_view payload;
};

/**
 * Decode the frame starting at @p data's first byte. On success
 * @p frame views into @p data and the frame's total size is
 * returned; throws InvalidArgument (with a stable, human-readable
 * reason) on bad magic, an oversized or torn length prefix, a CRC
 * mismatch, an unsupported wire version or an unknown message type.
 */
std::size_t decodeFrame(std::string_view data, Frame &frame);

/**
 * Decode exactly one frame spanning all of @p data (the shape of a
 * request body); throws InvalidArgument on trailing garbage too.
 */
Frame decodeSingleFrame(std::string_view data);

/** Encode one frame around @p payload. */
std::string encodeFrame(MessageType type, std::string_view payload);

/**
 * Walks a concatenation of frames (a binary batch response).
 * Mirrors store::FrameReader: iteration stops at the first torn or
 * corrupt frame, sawCorruption()/corruption() say why.
 */
class FrameReader
{
  public:
    explicit FrameReader(std::string_view data) : data_(data) {}

    /** Decode the next frame into @p frame; false at end-of-valid. */
    bool next(Frame &frame);

    /** Bytes consumed by successfully decoded frames. */
    std::size_t validBytes() const { return valid_; }

    bool sawCorruption() const { return corrupt_; }
    const std::string &corruption() const { return corruption_; }

  private:
    std::string_view data_;
    std::size_t offset_ = 0;
    std::size_t valid_ = 0;
    bool corrupt_ = false;
    std::string corruption_;
};

// --- messages ---------------------------------------------------------

/** ScoreRequest frame: one manifest line. */
std::string encodeScoreRequest(std::string_view manifest_line);

/** Decode a ScoreRequest request body; throws InvalidArgument. */
std::string decodeScoreRequest(std::string_view body);

/** BatchManifest frame from logical manifest lines. */
std::string encodeBatchManifest(const std::vector<std::string> &lines);

/**
 * Zero-copy row iteration over a BatchManifest frame: rows() yields
 * std::string_views aliasing the frame buffer, so a batch decodes
 * without per-row allocation. The view must not outlive the buffer.
 */
class BatchView
{
  public:
    /** Parse @p body (one BatchManifest frame); throws
     *  InvalidArgument on framing or payload errors. */
    explicit BatchView(std::string_view body);

    std::size_t rowCount() const { return rows_.size(); }
    const std::vector<std::string_view> &rows() const { return rows_; }

    /** The rows joined back into manifest text (one allocation) —
     *  what the codec-agnostic handler layer parses. */
    std::string manifestText() const;

  private:
    std::vector<std::string_view> rows_;
};

/** One k-sweep row of a score document. */
struct ScoreRow
{
    std::uint32_t k = 0;
    double scoreA = 0.0;
    double scoreB = 0.0;
    double ratio = 0.0;
};

/**
 * The codec-agnostic score document — the `data` value of a
 * successful /v1/score answer, decoded from either wire format.
 * JSON rendering lives in src/server/wire_json.h (the wire layer
 * cannot depend on the server's JSON helpers).
 */
struct ScoreDocument
{
    std::string id;
    std::string servedBy; ///< "cache" | "dedupe" | "pipeline".
    std::uint64_t fingerprint = 0;
    std::uint64_t recommendedK = 0;
    double ratio = 0.0;
    double plainRatio = 0.0;
    double wallMillis = 0.0;
    std::vector<ScoreRow> rows;
};

/** ScoreReport frame around one document. */
std::string encodeScoreReport(const ScoreDocument &doc);

/** Decode a ScoreReport response body; throws InvalidArgument. */
ScoreDocument decodeScoreReport(std::string_view body);

/** One line's outcome in a binary batch response. */
struct BatchItem
{
    std::uint32_t line = 0; ///< 1-based manifest line number.
    bool ok = false;
    ScoreDocument doc;     ///< set when ok.
    std::string errorCode; ///< stable ApiError code when !ok.
    std::string error;     ///< human-readable message when !ok.
    bool timedOut = false; ///< when !ok: the line's deadline lapsed.
};

/** BatchItem frame (appended to the batch response stream). */
std::string encodeBatchItem(const BatchItem &item);

/** Decode one BatchItem frame's payload (from FrameReader). */
BatchItem decodeBatchItem(const Frame &frame);

/** The codec-agnostic observe-intake body. */
struct Observation
{
    double ratio = 0.0;
    bool hasPlain = false;
    double plainRatio = 0.0;
    std::string id; ///< "" = the caller sent none.
};

/** ObserveIntake frame. */
std::string encodeObservation(const Observation &obs);

/** Decode an ObserveIntake request body; throws InvalidArgument. */
Observation decodeObservation(std::string_view body);

// --- negotiation helpers ----------------------------------------------

/** The media type of @p content_type lower-cased with parameters
 *  (`; charset=...`) and surrounding whitespace stripped. */
std::string mediaType(std::string_view content_type);

/** True when @p content_type names the binary wire type. */
bool isWireMediaType(std::string_view content_type);

/** Response formats a request can negotiate. */
enum class ResponseFormat
{
    Json,  ///< the default: /v1 envelopes (or NDJSON for batch).
    Binary ///< wire frames; chosen only on an explicit Accept.
};

/** An Accept negotiation outcome; !acceptable means answer 406. */
struct Negotiated
{
    bool acceptable = true;
    ResponseFormat format = ResponseFormat::Json;
};

/**
 * Negotiate the response format from an Accept header value: the
 * wire type (named explicitly) selects Binary; JSON, NDJSON, text
 * and wildcard types keep the Json default; a non-empty header
 * matching none of those is not acceptable. An absent/empty header
 * accepts anything.
 */
Negotiated negotiateAccept(std::string_view accept_header);

/** The Accept value a binary-speaking client sends: the wire type
 *  first, JSON second (error envelopes are always JSON). */
const char *acceptBoth();

} // namespace wire
} // namespace hiermeans

#endif // HIERMEANS_WIRE_WIRE_H
