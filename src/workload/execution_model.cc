#include "src/workload/execution_model.h"

#include <array>
#include <algorithm>
#include <cmath>
#include <limits>

#include "src/util/error.h"

namespace hiermeans {
namespace workload {

namespace {

/** Inverse rate row for one machine: 1/r for each of the 5 components. */
std::array<double, 5>
inverseRates(const MachineSpec &machine)
{
    HM_REQUIRE(machine.cpuRate > 0.0 && machine.memRate > 0.0 &&
                   machine.mlatRate > 0.0 && machine.sysRate > 0.0 &&
                   machine.ioRate > 0.0,
               "machine `" << machine.name << "` has a non-positive rate");
    return {1.0 / machine.cpuRate, 1.0 / machine.memRate,
            1.0 / machine.mlatRate, 1.0 / machine.sysRate,
            1.0 / machine.ioRate};
}

/**
 * Solve the dense symmetric system A x = b (n <= 3) by Gaussian
 * elimination with partial pivoting. Returns false when singular.
 */
bool
solveSmall(std::array<std::array<double, 3>, 3> a, std::array<double, 3> &b,
           std::size_t n)
{
    for (std::size_t col = 0; col < n; ++col) {
        std::size_t pivot = col;
        for (std::size_t r = col + 1; r < n; ++r) {
            if (std::abs(a[r][col]) > std::abs(a[pivot][col]))
                pivot = r;
        }
        if (std::abs(a[pivot][col]) < 1e-14)
            return false;
        std::swap(a[col], a[pivot]);
        std::swap(b[col], b[pivot]);
        for (std::size_t r = col + 1; r < n; ++r) {
            const double f = a[r][col] / a[col][col];
            for (std::size_t c = col; c < n; ++c)
                a[r][c] -= f * a[col][c];
            b[r] -= f * b[col];
        }
    }
    for (std::size_t col = n; col-- > 0;) {
        double acc = b[col];
        for (std::size_t c = col + 1; c < n; ++c)
            acc -= a[col][c] * b[c];
        b[col] = acc / a[col][col];
    }
    return true;
}

} // namespace

ExecutionModel::ExecutionModel(double noise_sigma)
    : noiseSigma_(noise_sigma)
{
    HM_REQUIRE(noiseSigma_ >= 0.0, "ExecutionModel: negative noise sigma");
}

double
ExecutionModel::idealTime(const ComponentWork &work,
                          const MachineSpec &machine) const
{
    HM_DOMAIN_CHECK(work.cpu >= 0.0 && work.mem >= 0.0 &&
                        work.mlat >= 0.0 && work.sys >= 0.0 &&
                        work.io >= 0.0,
                    "negative component work");
    const auto inv = inverseRates(machine);
    const double t = work.cpu * inv[0] + work.mem * inv[1] +
                     work.mlat * inv[2] + work.sys * inv[3] +
                     work.io * inv[4];
    HM_DOMAIN_CHECK(t > 0.0, "workload has zero total work");
    return t;
}

double
ExecutionModel::sampleTime(const ComponentWork &work,
                           const MachineSpec &machine,
                           rng::Engine &engine) const
{
    return idealTime(work, machine) * engine.logNormal(0.0, noiseSigma_);
}

std::vector<double>
ExecutionModel::sampleRuns(const ComponentWork &work,
                           const MachineSpec &machine, rng::Engine &engine,
                           std::size_t runs) const
{
    HM_REQUIRE(runs >= 1, "sampleRuns: need at least one run");
    std::vector<double> out;
    out.reserve(runs);
    for (std::size_t i = 0; i < runs; ++i)
        out.push_back(sampleTime(work, machine, engine));
    return out;
}

ComponentWork
ExecutionModel::workFromProfile(const WorkloadProfile &profile)
{
    // A coarse but monotone mapping from profile traits to component
    // seconds at reference unit rates. Scales chosen so typical
    // profiles land in the tens-of-seconds regime the paper's
    // workloads exhibit.
    ComponentWork w;
    w.cpu = 0.5 * profile.workUnits * (1.0 + 0.5 * profile.fpFraction);
    // Memory traffic splits into cache-resident bandwidth and capacity
    // misses depending on how far the working set exceeds a nominal L2.
    const double mem_total = 0.15 * profile.workUnits *
                                 profile.latent[LatentMemoryTraffic] +
                             0.05 * profile.workingSetMb;
    const double spill =
        std::min(1.0, profile.workingSetMb / 64.0); // 64 MB nominal knee
    w.mem = mem_total * (1.0 - spill);
    w.mlat = mem_total * spill;
    w.sys = 0.2 * profile.allocationMbPerSec +
            5.0 * profile.latent[LatentAllocGc] +
            2.0 * profile.latent[LatentCodeChurn];
    w.io = profile.ioShare * 0.4 * profile.workUnits +
           3.0 * profile.latent[LatentIo];
    return w;
}

CalibrationResult
ExecutionModel::calibrateToSpeedups(const MachineSpec &machine_a,
                                    const MachineSpec &machine_b,
                                    const MachineSpec &reference,
                                    double target_speedup_a,
                                    double target_speedup_b,
                                    double ref_time_seconds)
{
    HM_REQUIRE(target_speedup_a > 0.0 && target_speedup_b > 0.0,
               "calibrateToSpeedups: targets must be positive");
    HM_REQUIRE(ref_time_seconds > 0.0,
               "calibrateToSpeedups: reference time must be positive");

    // Rows: reference, A, B; columns: the five components.
    const std::array<std::array<double, 5>, 3> m = {
        inverseRates(reference), inverseRates(machine_a),
        inverseRates(machine_b)};
    const std::array<double, 3> target = {
        ref_time_seconds, ref_time_seconds / target_speedup_a,
        ref_time_seconds / target_speedup_b};

    // Non-negative least squares by subset enumeration: with 3
    // equations, an optimal NNLS solution has at most 3 active
    // components, so trying every component subset of size 1..3 and
    // keeping the best feasible solution is exact.
    double best_residual = std::numeric_limits<double>::infinity();
    std::array<double, 5> best_x = {0.0, 0.0, 0.0, 0.0, 0.0};
    bool found = false;

    for (unsigned mask = 1; mask < 32; ++mask) {
        std::array<std::size_t, 3> cols{};
        std::size_t n = 0;
        bool too_big = false;
        for (std::size_t c = 0; c < 5; ++c) {
            if (!(mask & (1u << c)))
                continue;
            if (n == 3) {
                too_big = true;
                break;
            }
            cols[n++] = c;
        }
        if (too_big)
            continue;

        // Normal equations (M_S^T M_S) x = M_S^T t.
        std::array<std::array<double, 3>, 3> ata{};
        std::array<double, 3> atb{};
        for (std::size_t i = 0; i < n; ++i) {
            for (std::size_t j = 0; j < n; ++j) {
                double acc = 0.0;
                for (std::size_t r = 0; r < 3; ++r)
                    acc += m[r][cols[i]] * m[r][cols[j]];
                ata[i][j] = acc;
            }
            double acc = 0.0;
            for (std::size_t r = 0; r < 3; ++r)
                acc += m[r][cols[i]] * target[r];
            atb[i] = acc;
        }
        std::array<double, 3> x = atb;
        if (!solveSmall(ata, x, n))
            continue;
        bool feasible = true;
        for (std::size_t i = 0; i < n; ++i) {
            if (x[i] < 0.0) {
                feasible = false;
                break;
            }
        }
        if (!feasible)
            continue;

        std::array<double, 5> full = {0.0, 0.0, 0.0, 0.0, 0.0};
        for (std::size_t i = 0; i < n; ++i)
            full[cols[i]] = x[i];
        double residual = 0.0;
        for (std::size_t r = 0; r < 3; ++r) {
            double row = 0.0;
            for (std::size_t c = 0; c < 5; ++c)
                row += m[r][c] * full[c];
            const double diff = row - target[r];
            residual += diff * diff;
        }
        if (residual < best_residual) {
            best_residual = residual;
            best_x = full;
            found = true;
        }
    }
    HM_ASSERT(found, "calibrateToSpeedups: no feasible component mix");

    CalibrationResult result;
    result.work = ComponentWork{best_x[0], best_x[1], best_x[2],
                                best_x[3], best_x[4]};

    ExecutionModel ideal(0.0);
    const double t_ref = ideal.idealTime(result.work, reference);
    result.achievedSpeedupA =
        t_ref / ideal.idealTime(result.work, machine_a);
    result.achievedSpeedupB =
        t_ref / ideal.idealTime(result.work, machine_b);
    result.relativeError = std::max(
        std::abs(result.achievedSpeedupA / target_speedup_a - 1.0),
        std::abs(result.achievedSpeedupB / target_speedup_b - 1.0));
    return result;
}

} // namespace workload
} // namespace hiermeans
