/**
 * @file
 * Synthetic execution-time model.
 *
 * Substitutes for running the Table I workloads on the Table II
 * machines. Each workload is summarized as *component work* — seconds
 * of CPU, memory-hierarchy, JVM-system and I/O demand at the reference
 * machine's unit rates — and a machine executes it additively:
 *
 *   T(workload, machine) = cpu/cpuRate + mem/memRate + mlat/mlatRate
 *                        + sys/sysRate + io/ioRate
 *
 * plus multiplicative log-normal measurement noise per run. Component
 * work can be derived directly from a WorkloadProfile (for synthetic
 * suites) or *calibrated* so the model reproduces published speedups
 * (for the paper suite): calibrateToSpeedups() solves a small
 * non-negative least-squares problem for the component mix that makes
 * the machine-A and machine-B speedups match the targets.
 */

#ifndef HIERMEANS_WORKLOAD_EXECUTION_MODEL_H
#define HIERMEANS_WORKLOAD_EXECUTION_MODEL_H

#include <vector>

#include "src/util/rng.h"
#include "src/workload/machine.h"
#include "src/workload/workload_profile.h"

namespace hiermeans {
namespace workload {

/** Component work of a workload at reference unit rates (seconds). */
struct ComponentWork
{
    double cpu = 0.0;  ///< integer/FP compute.
    double mem = 0.0;  ///< cache-resident memory traffic.
    double mlat = 0.0; ///< capacity-miss dominated memory traffic.
    double sys = 0.0;  ///< JVM/system services (JIT, GC, syscalls).
    double io = 0.0;   ///< I/O and interrupts.

    double total() const { return cpu + mem + mlat + sys + io; }
};

/** Result of a speedup calibration. */
struct CalibrationResult
{
    ComponentWork work;
    double achievedSpeedupA = 0.0;
    double achievedSpeedupB = 0.0;
    /** max(|achievedA/targetA - 1|, |achievedB/targetB - 1|). */
    double relativeError = 0.0;
};

/** The additive-latency machine model. */
class ExecutionModel
{
  public:
    /**
     * Noise level of one run: times are multiplied by
     * exp(N(0, noiseSigma)). The paper averages 10 runs; 0.5 % noise
     * keeps averaged speedups stable to two decimals.
     */
    explicit ExecutionModel(double noise_sigma = 0.005);

    /** Deterministic (noise-free) execution time. */
    double idealTime(const ComponentWork &work,
                     const MachineSpec &machine) const;

    /** One noisy run. */
    double sampleTime(const ComponentWork &work, const MachineSpec &machine,
                      rng::Engine &engine) const;

    /** @p runs noisy runs (the paper uses 10). */
    std::vector<double> sampleRuns(const ComponentWork &work,
                                   const MachineSpec &machine,
                                   rng::Engine &engine,
                                   std::size_t runs) const;

    /**
     * Derive component work straight from profile traits; used for
     * synthetic (non-paper) suites where no published targets exist.
     */
    static ComponentWork workFromProfile(const WorkloadProfile &profile);

    /**
     * Find non-negative component work with reference time
     * @p ref_time_seconds whose speedups on @p machine_a and
     * @p machine_b (vs @p reference) best match the targets. Exact
     * when the targets lie in the cone of the machines' rate columns;
     * otherwise the closest non-negative mix, with the residual
     * reported in CalibrationResult::relativeError.
     */
    static CalibrationResult calibrateToSpeedups(
        const MachineSpec &machine_a, const MachineSpec &machine_b,
        const MachineSpec &reference, double target_speedup_a,
        double target_speedup_b, double ref_time_seconds);

    double noiseSigma() const { return noiseSigma_; }

  private:
    double noiseSigma_;
};

} // namespace workload
} // namespace hiermeans

#endif // HIERMEANS_WORKLOAD_EXECUTION_MODEL_H
