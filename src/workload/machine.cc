#include "src/workload/machine.h"

namespace hiermeans {
namespace workload {

namespace {

MachineSpec
buildMachineA()
{
    MachineSpec m;
    m.name = "A";
    m.cpu = "Dual Intel Xeon CPU 3.00 GHz (HyperThreading disabled)";
    m.clockGhz = 3.0;
    m.l2CacheMb = 2.0;
    m.memoryGb = 2.0;
    m.busMhz = 800.0;
    m.os = "Red Hat Enterprise Linux WS release 4 (2.6.9-34.0.1.ELsmp)";
    m.jvm = "BEA JRockit R26.4.0-jdk1.5.0_06 32 bit Edition";
    // Service rates relative to the reference machine. The Xeon's
    // higher clock and the JRockit JIT dominate compute and JVM
    // services; the 2 MB L2 gives decent cache-resident bandwidth but
    // loses to the reference's 8 MB L2 on capacity misses (mlat); the
    // server chipset's longer interrupt/disk path shows up as a lower
    // I/O rate (this is what lets DaCapo.hsqldb run *slower* on A than
    // on B, as the paper's Table III reports).
    m.cpuRate = 6.6;
    m.memRate = 1.45;
    m.mlatRate = 0.68;
    m.sysRate = 4.5;
    m.ioRate = 0.52;
    m.memoryPressureFactor = 0.9;
    return m;
}

MachineSpec
buildMachineB()
{
    MachineSpec m;
    m.name = "B";
    m.cpu = "Intel Pentium 4 CPU 3.00 GHz (HyperThreading disabled)";
    m.clockGhz = 3.0;
    m.l2CacheMb = 0.5;
    m.memoryGb = 0.5;
    m.busMhz = 800.0;
    m.os = "Red Hat Enterprise Linux WS release 4 (2.6.9-42.0.3.ELsmp)";
    m.jvm = "BEA JRockit R26.4.0-jdk1.5.0_06 32 bit Edition";
    // Same clock as A but a single desktop core: comparable raw compute,
    // a weak memory hierarchy (512 KB L2, 512 MB RAM) that falls behind
    // even the reference machine once the working set spills out of L2,
    // much weaker JVM service throughput (GC has little headroom in
    // 512 MB), but a short desktop I/O path.
    m.cpuRate = 6.15;
    m.memRate = 0.62;
    m.mlatRate = 0.88;
    m.sysRate = 1.7;
    m.ioRate = 1.22;
    m.memoryPressureFactor = 1.5;
    return m;
}

MachineSpec
buildReference()
{
    MachineSpec m;
    m.name = "reference";
    m.cpu = "Sun UltraSPARC III Cu 1.2 GHz";
    m.clockGhz = 1.2;
    m.l2CacheMb = 8.0;
    m.memoryGb = 1.0;
    m.busMhz = 800.0;
    m.os = "Solaris 8";
    m.jvm = "Sun Java HotSpot build 1.5.0_09-b01";
    // The normalization baseline: unit rates by definition.
    m.cpuRate = 1.0;
    m.memRate = 1.0;
    m.mlatRate = 1.0;
    m.sysRate = 1.0;
    m.ioRate = 1.0;
    m.memoryPressureFactor = 1.0;
    return m;
}

} // namespace

const MachineSpec &
machineA()
{
    static const MachineSpec m = buildMachineA();
    return m;
}

const MachineSpec &
machineB()
{
    static const MachineSpec m = buildMachineB();
    return m;
}

const MachineSpec &
referenceMachine()
{
    static const MachineSpec m = buildReference();
    return m;
}

std::vector<MachineSpec>
paperMachines()
{
    return {machineA(), machineB(), referenceMachine()};
}

} // namespace workload
} // namespace hiermeans
