/**
 * @file
 * Machine models for the paper's hardware settings (Table II).
 *
 * A machine is reduced to the handful of parameters that matter for the
 * synthetic execution model and counter synthesizer: component service
 * rates (CPU / memory-hierarchy / JVM-system) plus the raw spec fields
 * we print in reports.
 */

#ifndef HIERMEANS_WORKLOAD_MACHINE_H
#define HIERMEANS_WORKLOAD_MACHINE_H

#include <string>
#include <vector>

namespace hiermeans {
namespace workload {

/** A machine under test (or the reference machine). */
struct MachineSpec
{
    std::string name;    ///< "A", "B" or "reference".
    std::string cpu;     ///< descriptive CPU string from Table II.
    double clockGhz = 1.0;
    double l2CacheMb = 1.0;
    double memoryGb = 1.0;
    double busMhz = 800.0;
    std::string os;
    std::string jvm;

    /**
     * Component service rates, normalized so the reference machine is
     * 1.0 on every component. The execution model charges each
     * workload's component work against these:
     *  - cpuRate: integer/FP compute throughput;
     *  - memRate: cache-resident memory bandwidth (L2 fits);
     *  - mlatRate: large-stride / capacity-miss service rate (where a
     *    big L2 like the reference machine's 8 MB wins);
     *  - sysRate: JVM/system services (JIT, GC, syscalls);
     *  - ioRate: I/O and interrupt path throughput.
     */
    double cpuRate = 1.0;
    double memRate = 1.0;
    double mlatRate = 1.0;
    double sysRate = 1.0;
    double ioRate = 1.0;

    /**
     * How strongly this machine amplifies memory-side latent behavior
     * in the counter synthesizer (small caches/memory push paging and
     * memory-traffic counters up); 1.0 = neutral.
     */
    double memoryPressureFactor = 1.0;
};

/** Machine A: dual Xeon 3.0 GHz, 2 MB L2, 2 GB (Table II). */
const MachineSpec &machineA();

/** Machine B: Pentium 4 3.0 GHz, 512 KB L2, 512 MB (Table II). */
const MachineSpec &machineB();

/** Reference machine: UltraSPARC III Cu 1.2 GHz, 8 MB L2 (Table II). */
const MachineSpec &referenceMachine();

/** {A, B, reference} in that order. */
std::vector<MachineSpec> paperMachines();

} // namespace workload
} // namespace hiermeans

#endif // HIERMEANS_WORKLOAD_MACHINE_H
