#include "src/workload/method_profile.h"

#include <algorithm>
#include <map>

#include "src/util/error.h"
#include "src/util/rng.h"

namespace hiermeans {
namespace workload {

namespace {

/** FNV-1a for stable seed-group streams. */
std::uint64_t
fnv1a(const std::string &text)
{
    std::uint64_t h = 0xcbf29ce484222325ULL;
    for (unsigned char c : text) {
        h ^= c;
        h *= 0x100000001b3ULL;
    }
    return h;
}

std::vector<LibrarySpec>
builtinLibraries()
{
    return {
        {"jdk.core", "java.lang", 160},
        {"codec.lzw", "spec.benchmarks.compress", 30},
        {"rules.engine", "spec.benchmarks.jess", 60},
        {"compiler.frontend", "spec.benchmarks.javac", 80},
        {"codec.audio", "spec.benchmarks.mpegaudio", 40},
        {"graphics.trace", "spec.benchmarks.mtrt", 50},
        {"math.kernel", "jnt.scimark2", 45},
        {"db.sql", "org.hsqldb", 70},
        {"io.jdbc", "java.sql", 35},
        {"chart.render", "org.jfree.chart", 65},
        {"io.pdf", "com.lowagie.text", 40},
        {"xml.parse", "org.apache.xerces", 55},
        {"xml.transform", "org.apache.xalan", 60},
    };
}

/** Synthetic method name c-th of a library. */
std::string
methodName(const LibrarySpec &lib, std::size_t index)
{
    static const char *const kVerbs[] = {"get",  "set",   "compute",
                                         "read", "write", "parse",
                                         "init", "update", "apply",
                                         "visit"};
    const char *verb = kVerbs[index % std::size(kVerbs)];
    return lib.package + ".C" + std::to_string(index / 7) + "." + verb +
           "M" + std::to_string(index);
}

} // namespace

std::size_t
MethodProfile::methodsUsed(std::size_t w) const
{
    HM_REQUIRE(w < bits.rows(), "methodsUsed: workload " << w
                                                         << " out of "
                                                            "range");
    std::size_t count = 0;
    for (std::size_t c = 0; c < bits.cols(); ++c) {
        if (bits(w, c) != 0.0)
            ++count;
    }
    return count;
}

MethodProfileSynthesizer::MethodProfileSynthesizer(
    MethodProfileConfig config)
    : config_(std::move(config)), libraries_(builtinLibraries())
{
    for (const LibrarySpec &lib : config_.extraLibraries) {
        HM_REQUIRE(lib.methods > 0, "library `" << lib.tag
                                                << "` has no methods");
        libraries_.push_back(lib);
    }
}

MethodProfile
MethodProfileSynthesizer::generate(
    const std::vector<WorkloadProfile> &profiles) const
{
    HM_REQUIRE(!profiles.empty(), "MethodProfileSynthesizer: no workloads");

    // Column layout: all library methods first, then per-workload
    // private methods.
    struct LibSlot
    {
        std::size_t offset;
        std::size_t libIndex;
    };
    std::map<std::string, LibSlot> lib_offset;
    std::size_t total = 0;
    for (std::size_t li = 0; li < libraries_.size(); ++li) {
        lib_offset[libraries_[li].tag] = LibSlot{total, li};
        total += libraries_[li].methods;
    }
    std::size_t private_offset = total;
    for (const WorkloadProfile &p : profiles)
        total += p.privateMethods;

    MethodProfile out;
    out.methodNames.reserve(total);
    for (const LibrarySpec &lib : libraries_) {
        for (std::size_t i = 0; i < lib.methods; ++i)
            out.methodNames.push_back(methodName(lib, i));
    }
    for (const WorkloadProfile &p : profiles) {
        for (std::size_t i = 0; i < p.privateMethods; ++i)
            out.methodNames.push_back(p.name + ".App.main" +
                                      std::to_string(i));
    }
    out.bits = linalg::Matrix(profiles.size(), total, 0.0);

    std::size_t private_cursor = private_offset;
    for (std::size_t w = 0; w < profiles.size(); ++w) {
        const WorkloadProfile &profile = profiles[w];
        for (const auto &use : profile.libraries) {
            auto it = lib_offset.find(use.tag);
            HM_REQUIRE(it != lib_offset.end(),
                       "workload `" << profile.name
                                    << "` references unknown library `"
                                    << use.tag << "`");
            HM_REQUIRE(use.coverage >= 0.0 && use.coverage <= 1.0,
                       "workload `" << profile.name << "` has coverage "
                                    << use.coverage << " for `" << use.tag
                                    << "`");
            const LibrarySpec &lib = libraries_[it->second.libIndex];
            // Subset selection is keyed by (seed group, library): two
            // workloads in the same group call the same methods of a
            // shared library.
            rng::Engine engine(config_.seed ^ fnv1a(profile.methodSeedGroup)
                               ^ fnv1a(use.tag));
            for (std::size_t i = 0; i < lib.methods; ++i) {
                if (engine.bernoulli(use.coverage))
                    out.bits(w, it->second.offset + i) = 1.0;
            }
        }
        for (std::size_t i = 0; i < profile.privateMethods; ++i)
            out.bits(w, private_cursor + i) = 1.0;
        private_cursor += profile.privateMethods;
    }
    return out;
}

std::vector<std::size_t>
selectDiscriminatingMethods(const linalg::Matrix &bits)
{
    const std::size_t n = bits.rows();
    std::vector<std::size_t> kept;
    for (std::size_t c = 0; c < bits.cols(); ++c) {
        std::size_t users = 0;
        for (std::size_t w = 0; w < n; ++w) {
            if (bits(w, c) != 0.0)
                ++users;
        }
        if (users >= 2 && users < n)
            kept.push_back(c);
    }
    return kept;
}

} // namespace workload
} // namespace hiermeans
