/**
 * @file
 * Synthetic Java method-utilization profiles.
 *
 * Substitutes for Section IV-C's second characterization: hprof method
 * coverage turned into bit vectors ("when a certain method is called by
 * a workload, the corresponding bit ... is set to 1"). A registry of
 * synthetic libraries (JDK core, the SciMark2 self-contained math
 * kernel library, XML/chart/DB libraries, ...) defines the method
 * universe; each workload selects a subset of every library it is
 * tagged with, plus its own private application methods.
 *
 * Workloads sharing a methodSeedGroup select the *same* subset of a
 * shared library — this models the SciMark2 kernels all exercising the
 * same self-contained math routines, which is why they collapse onto a
 * single SOM cell in Figure 7. This characterization is entirely
 * machine-independent, matching the paper's motivation for it.
 */

#ifndef HIERMEANS_WORKLOAD_METHOD_PROFILE_H
#define HIERMEANS_WORKLOAD_METHOD_PROFILE_H

#include <cstdint>
#include <string>
#include <vector>

#include "src/linalg/matrix.h"
#include "src/workload/workload_profile.h"

namespace hiermeans {
namespace workload {

/** One library in the synthetic method universe. */
struct LibrarySpec
{
    std::string tag;        ///< e.g. "math.kernel".
    std::string package;    ///< e.g. "jnt.scimark2.math".
    std::size_t methods = 0;
};

/** Configuration of the method-profile synthesizer. */
struct MethodProfileConfig
{
    /** Seed for subset selection. */
    std::uint64_t seed = 0xBEEF;

    /**
     * Extra libraries to register besides the built-in registry
     * (the built-ins cover every tag the Table I profiles use).
     */
    std::vector<LibrarySpec> extraLibraries;
};

/** The generated method-utilization data. */
struct MethodProfile
{
    /** Fully qualified method names, column order of `bits`. */
    std::vector<std::string> methodNames;

    /** workloads x methods 0/1 matrix, rows in input profile order. */
    linalg::Matrix bits;

    /** Number of methods workload @p w uses. */
    std::size_t methodsUsed(std::size_t w) const;
};

/** Deterministic method-utilization synthesizer. */
class MethodProfileSynthesizer
{
  public:
    explicit MethodProfileSynthesizer(MethodProfileConfig config = {});

    /** The library registry in effect (built-ins plus extras). */
    const std::vector<LibrarySpec> &libraries() const { return libraries_; }

    /**
     * Generate bit vectors for @p profiles. Throws InvalidArgument if a
     * profile references an unknown library tag.
     */
    MethodProfile generate(
        const std::vector<WorkloadProfile> &profiles) const;

  private:
    MethodProfileConfig config_;
    std::vector<LibrarySpec> libraries_;
};

/**
 * The paper's filtering rule: "We discarded those methods that 1) only
 * one workload used, or 2) all the workloads used". Returns the column
 * indices (into bits) that survive.
 */
std::vector<std::size_t> selectDiscriminatingMethods(
    const linalg::Matrix &bits);

} // namespace workload
} // namespace hiermeans

#endif // HIERMEANS_WORKLOAD_METHOD_PROFILE_H
