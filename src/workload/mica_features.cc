#include "src/workload/mica_features.h"

#include <cmath>

#include "src/util/error.h"
#include "src/util/rng.h"

namespace hiermeans {
namespace workload {

namespace {

std::uint64_t
fnv1a(const std::string &text)
{
    std::uint64_t h = 0xcbf29ce484222325ULL;
    for (unsigned char c : text) {
        h ^= c;
        h *= 0x100000001b3ULL;
    }
    return h;
}

/**
 * Normalize @p shares to sum to 1 (all entries must be >= 0 with a
 * positive total).
 */
void
normalize(std::vector<double> &shares)
{
    double total = 0.0;
    for (double s : shares)
        total += s;
    HM_ASSERT(total > 0.0, "mica: degenerate share vector");
    for (double &s : shares)
        s /= total;
}

/**
 * Geometric-tail histogram over @p buckets with concentration @p decay
 * in (0, 1): small decay = mass concentrated in the first bucket.
 */
std::vector<double>
geometricHistogram(std::size_t buckets, double decay)
{
    std::vector<double> h(buckets);
    double mass = 1.0;
    for (std::size_t i = 0; i < buckets; ++i) {
        h[i] = mass * (1.0 - decay);
        mass *= decay;
    }
    h[buckets - 1] += mass; // fold the tail into the last bucket.
    return h;
}

} // namespace

MicaFeatureSynthesizer::MicaFeatureSynthesizer(MicaConfig config)
    : config_(config)
{
    HM_REQUIRE(config_.ilpBuckets >= 2, "MicaConfig: ilpBuckets >= 2");
    HM_REQUIRE(config_.strideBuckets >= 2,
               "MicaConfig: strideBuckets >= 2");
    HM_REQUIRE(config_.jitterSigma >= 0.0,
               "MicaConfig: negative jitterSigma");
}

std::size_t
MicaFeatureSynthesizer::featureCount() const
{
    // 6 instruction-mix + ilp + 2 stride histograms + 3 branch
    // + 2 footprint.
    return 6 + config_.ilpBuckets + 2 * config_.strideBuckets + 3 + 2;
}

MicaFeatures
MicaFeatureSynthesizer::generate(
    const std::vector<WorkloadProfile> &profiles) const
{
    HM_REQUIRE(!profiles.empty(), "MicaFeatureSynthesizer: no workloads");

    MicaFeatures out;
    out.featureNames = {"imix.load", "imix.store",  "imix.branch",
                        "imix.int",  "imix.fp",     "imix.other"};
    for (std::size_t i = 0; i < config_.ilpBuckets; ++i)
        out.featureNames.push_back("ilp.depdist" + std::to_string(i));
    for (std::size_t i = 0; i < config_.strideBuckets; ++i)
        out.featureNames.push_back("stride.load.pow" + std::to_string(i));
    for (std::size_t i = 0; i < config_.strideBuckets; ++i)
        out.featureNames.push_back("stride.store.pow" +
                                   std::to_string(i));
    out.featureNames.push_back("branch.taken_rate");
    out.featureNames.push_back("branch.transition_rate");
    out.featureNames.push_back("branch.mispredict_proxy");
    out.featureNames.push_back("footprint.blocks32b_log");
    out.featureNames.push_back("footprint.pages4k_log");
    HM_ASSERT(out.featureNames.size() == featureCount(),
              "mica feature layout mismatch");

    out.values = linalg::Matrix(profiles.size(), featureCount(), 0.0);

    for (std::size_t w = 0; w < profiles.size(); ++w) {
        const WorkloadProfile &p = profiles[w];
        // Measurement jitter is keyed by the workload name only — the
        // same workload measures identically regardless of machine.
        rng::Engine engine(config_.seed ^ fnv1a(p.name));

        const double mem = p.latent[LatentMemoryTraffic];
        const double fp = p.fpFraction;
        const double branchy = p.latent[LatentScheduling];
        const double churn = p.latent[LatentCodeChurn];

        // --- instruction mix ---
        std::vector<double> mix = {
            0.18 + 0.22 * mem,              // loads
            0.06 + 0.10 * p.latent[LatentAllocGc], // stores
            0.10 + 0.12 * branchy,          // branches
            0.30 * (1.0 - fp),              // int arithmetic
            0.30 * fp,                      // fp arithmetic
            0.05 + 0.05 * churn,            // other
        };
        normalize(mix);

        // --- ILP: dependency distances; fp kernels expose more ILP
        // (flatter histogram), pointer-chasing code less. ---
        const double ilp_decay = 0.35 + 0.45 * (1.0 - fp) * mem;
        const std::vector<double> ilp =
            geometricHistogram(config_.ilpBuckets,
                               std::min(0.95, ilp_decay));

        // --- strides: dense numeric kernels are unit-stride (mass in
        // bucket 0); irregular memory spreads the histogram. ---
        const double irregular =
            std::min(0.9, 0.2 + 0.6 * mem * (1.0 - fp) +
                              0.3 * p.latent[LatentAllocGc]);
        const std::vector<double> load_stride =
            geometricHistogram(config_.strideBuckets, irregular);
        const std::vector<double> store_stride = geometricHistogram(
            config_.strideBuckets, std::min(0.9, irregular * 0.9));

        // --- branches ---
        const double taken = 0.45 + 0.25 * (1.0 - branchy);
        const double transition = 0.10 + 0.55 * branchy;
        const double mispredict = 0.02 + 0.25 * branchy * (1.0 - fp);

        // --- footprint (log scale) ---
        const double blocks =
            std::log2(p.workingSetMb * 1024.0 * 1024.0 / 32.0);
        const double pages =
            std::log2(p.workingSetMb * 1024.0 * 1024.0 / 4096.0);

        std::size_t col = 0;
        auto emit = [&](double value) {
            const double jitter =
                config_.jitterSigma > 0.0
                    ? engine.normal(0.0, config_.jitterSigma)
                    : 0.0;
            out.values(w, col++) = value * (1.0 + jitter);
        };
        for (double v : mix)
            emit(v);
        for (double v : ilp)
            emit(v);
        for (double v : load_stride)
            emit(v);
        for (double v : store_stride)
            emit(v);
        emit(taken);
        emit(transition);
        emit(mispredict);
        emit(blocks);
        emit(pages);
        HM_ASSERT(col == featureCount(), "mica column count mismatch");
    }
    return out;
}

} // namespace workload
} // namespace hiermeans
