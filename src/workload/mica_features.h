/**
 * @file
 * Microarchitecture-independent characteristics (MICA-style).
 *
 * Sections V-C and VI of the paper point past Java: "By employing
 * other microarchitecture independent workload features, e.g.,
 * instruction mix, memory stride, etc. [5], [6], we expect the
 * workload clusters to appear similar over a variety of machines."
 * This module synthesizes exactly that feature family from the
 * workload profiles — and, being a function of the *program* only, it
 * is identical on every machine by construction, which the ablation
 * bench verifies against the SAR (machine-dependent) characterization.
 *
 * Feature groups, mirroring Hoste & Eeckhout's MICA set:
 *  - instruction mix (loads, stores, branches, int/fp arithmetic);
 *  - ILP proxies (dependency distance distribution);
 *  - memory stride distribution (local/global, load/store);
 *  - branch predictability proxies (transition rate, taken rate);
 *  - working-set proxies (unique blocks touched at 32 B / 4 KB grain).
 */

#ifndef HIERMEANS_WORKLOAD_MICA_FEATURES_H
#define HIERMEANS_WORKLOAD_MICA_FEATURES_H

#include <cstdint>
#include <string>
#include <vector>

#include "src/linalg/matrix.h"
#include "src/workload/workload_profile.h"

namespace hiermeans {
namespace workload {

/** Configuration of the MICA feature synthesizer. */
struct MicaConfig
{
    /** Buckets in the dependency-distance histogram. */
    std::size_t ilpBuckets = 6;
    /** Buckets in each stride histogram (powers of two). */
    std::size_t strideBuckets = 8;
    /**
     * Per-feature deterministic jitter applied per workload — models
     * profiling-tool measurement granularity. Zero means bit-identical
     * features for identical profiles.
     */
    double jitterSigma = 0.01;
    std::uint64_t seed = 0x71CA;
};

/** The synthesized feature panel. */
struct MicaFeatures
{
    std::vector<std::string> featureNames;
    /** workloads x features, rows in input profile order. */
    linalg::Matrix values;
};

/** Deterministic MICA-style feature synthesizer. */
class MicaFeatureSynthesizer
{
  public:
    explicit MicaFeatureSynthesizer(MicaConfig config = {});

    const MicaConfig &config() const { return config_; }

    /**
     * Synthesize the panel for @p profiles. Purely a function of the
     * profiles and the seed — no machine enters, so two calls for
     * different machines are bit-identical (the property the paper
     * wants from architecture-independent characterization).
     */
    MicaFeatures generate(
        const std::vector<WorkloadProfile> &profiles) const;

    /** Number of features per workload for the current config. */
    std::size_t featureCount() const;

  private:
    MicaConfig config_;
};

} // namespace workload
} // namespace hiermeans

#endif // HIERMEANS_WORKLOAD_MICA_FEATURES_H
