#include "src/workload/paper_data.h"

namespace hiermeans {
namespace workload {
namespace paper {

const std::vector<SpeedupRow> &
table3()
{
    static const std::vector<SpeedupRow> rows = {
        {"jvm98.201.compress", 4.75, 3.99, 1.19},
        {"jvm98.202.jess", 5.32, 3.65, 1.46},
        {"jvm98.213.javac", 3.97, 2.37, 1.68},
        {"jvm98.222.mpegaudio", 6.50, 6.11, 1.06},
        {"jvm98.227.mtrt", 2.57, 1.41, 1.82},
        {"SciMark2.FFT", 1.09, 1.07, 1.02},
        {"SciMark2.LU", 1.19, 0.90, 1.32},
        {"SciMark2.MonteCarlo", 0.75, 0.98, 0.76},
        {"SciMark2.SOR", 1.22, 1.31, 0.93},
        {"SciMark2.Sparse", 0.71, 0.90, 0.80},
        {"DaCapo.hsqldb", 1.16, 2.31, 0.50},
        {"DaCapo.chart", 5.12, 2.77, 1.85},
        {"DaCapo.xalan", 1.88, 2.62, 0.71},
    };
    return rows;
}

std::vector<double>
table3SpeedupsA()
{
    std::vector<double> out;
    for (const SpeedupRow &row : table3())
        out.push_back(row.speedupA);
    return out;
}

std::vector<double>
table3SpeedupsB()
{
    std::vector<double> out;
    for (const SpeedupRow &row : table3())
        out.push_back(row.speedupB);
    return out;
}

const std::vector<HgmRow> &
table4()
{
    static const std::vector<HgmRow> rows = {
        {2, 2.58, 2.06, 1.25}, {3, 2.62, 2.18, 1.20},
        {4, 2.89, 2.22, 1.30}, {5, 2.70, 2.24, 1.21},
        {6, 2.77, 2.31, 1.20}, {7, 2.63, 2.40, 1.10},
        {8, 2.34, 2.15, 1.09},
    };
    return rows;
}

const std::vector<HgmRow> &
table5()
{
    static const std::vector<HgmRow> rows = {
        {2, 2.42, 2.12, 1.14}, {3, 2.39, 2.14, 1.11},
        {4, 2.88, 2.42, 1.19}, {5, 2.39, 2.34, 1.02},
        {6, 2.75, 2.64, 1.04}, {7, 2.30, 2.27, 1.01},
        {8, 2.11, 2.10, 1.00},
    };
    return rows;
}

const std::vector<HgmRow> &
table6()
{
    static const std::vector<HgmRow> rows = {
        {2, 2.76, 2.30, 1.20}, {3, 2.65, 2.31, 1.15},
        {4, 2.82, 2.36, 1.20}, {5, 2.59, 2.38, 1.09},
        {6, 2.57, 2.46, 1.05}, {7, 2.75, 2.52, 1.09},
        {8, 2.89, 2.52, 1.15},
    };
    return rows;
}

std::vector<std::vector<std::size_t>>
figure4aFourClusterGroups()
{
    // Paper workload order:
    //  0 compress, 1 jess, 2 javac, 3 mpegaudio, 4 mtrt,
    //  5 FFT, 6 LU, 7 MonteCarlo, 8 SOR, 9 Sparse,
    //  10 hsqldb, 11 chart, 12 xalan.
    return {
        {2},                      // javac, a cluster of its own
        {1, 4},                   // jess + mtrt
        {11, 12},                 // chart + xalan
        {0, 3, 5, 6, 7, 8, 9, 10} // the rest
    };
}

} // namespace paper
} // namespace workload
} // namespace hiermeans
