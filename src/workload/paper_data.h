/**
 * @file
 * Data published in the paper, embedded verbatim.
 *
 * Table III (relative workload speedups on machines A and B) is the
 * input every scoring table in the paper derives from; embedding it
 * lets the bench harness validate the mean arithmetic exactly and lets
 * the execution model calibrate its synthetic run times to the
 * published measurements. Tables IV-VI are embedded for side-by-side
 * paper-vs-measured reporting in EXPERIMENTS.md.
 */

#ifndef HIERMEANS_WORKLOAD_PAPER_DATA_H
#define HIERMEANS_WORKLOAD_PAPER_DATA_H

#include <string>
#include <vector>

namespace hiermeans {
namespace workload {
namespace paper {

/** One Table III row. */
struct SpeedupRow
{
    std::string workload;
    double speedupA = 0.0;
    double speedupB = 0.0;
    double ratio = 0.0; ///< A/B as printed in the paper (2 decimals).
};

/** Table III rows in paper order (13 workloads). */
const std::vector<SpeedupRow> &table3();

/** Speedups on machine A in paper order. */
std::vector<double> table3SpeedupsA();

/** Speedups on machine B in paper order. */
std::vector<double> table3SpeedupsB();

/** Plain geometric means printed at the bottom of Table III. */
inline constexpr double kTable3GeomeanA = 2.10;
inline constexpr double kTable3GeomeanB = 1.94;
inline constexpr double kTable3GeomeanRatio = 1.08;

/** One row of a published HGM table (Tables IV, V, VI). */
struct HgmRow
{
    std::size_t clusters = 0;
    double scoreA = 0.0;
    double scoreB = 0.0;
    double ratio = 0.0;
};

/** Table IV: HGM from machine A SAR-counter clustering, k = 2..8. */
const std::vector<HgmRow> &table4();

/** Table V: HGM from machine B SAR-counter clustering, k = 2..8. */
const std::vector<HgmRow> &table5();

/** Table VI: HGM from Java method-utilization clustering, k = 2..8. */
const std::vector<HgmRow> &table6();

/**
 * The machine A clustering the paper narrates for Figure 4(a): at
 * merging distance 4 the suite splits into 4 clusters — {javac},
 * {jess, mtrt}, {chart, xalan}, and the rest. Indices follow paper
 * workload order. Used for exact-math validation tests.
 */
std::vector<std::vector<std::size_t>> figure4aFourClusterGroups();

} // namespace paper
} // namespace workload
} // namespace hiermeans

#endif // HIERMEANS_WORKLOAD_PAPER_DATA_H
