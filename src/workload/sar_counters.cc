#include "src/workload/sar_counters.h"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "src/util/error.h"
#include "src/util/rng.h"

namespace hiermeans {
namespace workload {

namespace {

/** FNV-1a, used for stable per-machine stream derivation. */
std::uint64_t
fnv1a(const std::string &text)
{
    std::uint64_t h = 0xcbf29ce484222325ULL;
    for (unsigned char c : text) {
        h ^= c;
        h *= 0x100000001b3ULL;
    }
    return h;
}

/** Static layout of one synthetic counter. */
struct CounterSpec
{
    std::string name;
    bool constant = false;
    double offset = 0.0;
    double scale = 1.0;
    /** Mixing weights over the latent behavior axes. */
    std::array<double, kLatentAxes> loading{};
    /** Phase frequency for the within-run drift term. */
    double phaseFreq = 1.0;
};

/** Realistic names for the leading counters; the rest are numbered. */
const char *const kNamedCounters[] = {
    "cpu.user_pct",     "cpu.sys_pct",      "cpu.idle_pct",
    "cpu.iowait_pct",   "proc.cswch_s",     "intr.total_s",
    "mem.kbmemused",    "mem.kbcached",     "mem.kbbuffers",
    "paging.pgfault_s", "paging.majflt_s",  "swap.pswpin_s",
    "swap.pswpout_s",   "io.tps",           "io.rtps",
    "io.wtps",          "io.bread_s",       "io.bwrtn_s",
    "net.rxpck_s",      "net.txpck_s",      "queue.runq_sz",
    "queue.plist_sz",   "load.avg_1",       "load.avg_5",
};

/** Primary latent axis of the named counters above. */
const LatentAxis kNamedAxes[] = {
    LatentCpuUser,   LatentScheduling, LatentCpuUser,   LatentIo,
    LatentScheduling, LatentScheduling, LatentMemoryTraffic,
    LatentMemoryTraffic, LatentMemoryTraffic, LatentPaging,
    LatentPaging,    LatentPaging,     LatentPaging,    LatentIo,
    LatentIo,        LatentIo,         LatentIo,        LatentIo,
    LatentIo,        LatentIo,         LatentScheduling,
    LatentAllocGc,   LatentCpuUser,    LatentCpuUser,
};

std::vector<CounterSpec>
buildCounterSpecs(const SarConfig &config)
{
    rng::Engine engine(config.seed);
    std::vector<CounterSpec> specs;
    specs.reserve(config.counters);

    const std::size_t named =
        std::min(config.counters, std::size(kNamedCounters));

    for (std::size_t i = 0; i < config.counters; ++i) {
        CounterSpec spec;
        LatentAxis primary;
        if (i < named) {
            spec.name = kNamedCounters[i];
            primary = kNamedAxes[i];
        } else {
            spec.name = "sar.counter" + std::to_string(i);
            primary = static_cast<LatentAxis>(engine.below(kLatentAxes));
        }
        // A slice of counters is constant: sizing/configuration values
        // real SAR reports that carry no discriminating information.
        spec.constant =
            i >= named && engine.bernoulli(config.constantFraction);

        spec.offset = engine.uniform(0.0, 20.0);
        spec.scale = engine.logNormal(2.0, 0.8);
        // Integer frequencies: the sine drift averages to exactly zero
        // over the evenly spaced samples, so program phases shape the
        // sample variance without biasing the representative average.
        spec.phaseFreq = 1.0 + static_cast<double>(engine.below(3));
        if (!spec.constant) {
            spec.loading[primary] = engine.uniform(0.6, 1.0);
            // One or two secondary axes with light loadings — real OS
            // counters are correlated mixtures, not pure signals.
            const std::size_t extras = 1 + engine.below(2);
            for (std::size_t e = 0; e < extras; ++e) {
                const auto axis = engine.below(kLatentAxes);
                spec.loading[axis] += engine.uniform(0.05, 0.30);
            }
        }
        specs.push_back(std::move(spec));
    }
    return specs;
}

/**
 * Machine-modulated latent vector.
 *
 * The modulation is deliberately *workload-dependent*, not a uniform
 * per-machine scale (uniform scales cancel in the z-score
 * standardization): paging rises sharply once a workload's resident
 * set approaches the machine's RAM, memory traffic grows when the
 * working set spills out of L2, and GC pressure grows with the
 * allocation rate against available memory. This is what makes the
 * clusterings on machines A and B genuinely different (Section V-B)
 * while small-footprint kernels like SciMark2 stay tight on both.
 */
std::array<double, kLatentAxes>
effectiveLatent(const WorkloadProfile &profile, const MachineSpec &machine)
{
    std::array<double, kLatentAxes> latent = profile.latent;
    const double mem_mb = machine.memoryGb * 1024.0;
    const double resident =
        profile.workingSetMb + 0.5 * profile.allocationMbPerSec;
    const double occupancy = resident / mem_mb;

    // Paging grows sharply once the resident set nears physical memory.
    latent[LatentPaging] +=
        1.5 * std::max(0.0, occupancy - 0.25) *
        machine.memoryPressureFactor;

    // Cache spill: working sets beyond L2 raise observed memory traffic.
    const double spill_ratio = profile.workingSetMb / machine.l2CacheMb;
    if (spill_ratio > 1.0) {
        latent[LatentMemoryTraffic] *=
            1.0 + 0.10 * std::log2(spill_ratio);
    }

    // GC activity scales with allocation pressure against headroom.
    latent[LatentAllocGc] *=
        1.0 + profile.allocationMbPerSec / (mem_mb * 0.25);

    latent[LatentScheduling] *=
        0.5 + 0.5 * machine.memoryPressureFactor;
    const double speed_dip = 1.0 / (0.8 + 0.2 * machine.cpuRate);
    latent[LatentCpuUser] *= 0.6 + 0.4 * speed_dip;
    return latent;
}

} // namespace

linalg::Matrix
SarPanel::averaged() const
{
    HM_REQUIRE(!runs.empty(), "SarPanel::averaged: no runs");
    const std::size_t counters = counterNames.size();
    linalg::Matrix out(runs.size(), counters, 0.0);
    for (std::size_t w = 0; w < runs.size(); ++w) {
        const linalg::Matrix &samples = runs[w].samples;
        HM_REQUIRE(samples.cols() == counters,
                   "SarPanel::averaged: run " << w << " has "
                                              << samples.cols()
                                              << " counters, expected "
                                              << counters);
        for (std::size_t c = 0; c < counters; ++c) {
            double acc = 0.0;
            for (std::size_t s = 0; s < samples.rows(); ++s)
                acc += samples(s, c);
            out(w, c) = acc / static_cast<double>(samples.rows());
        }
    }
    return out;
}

SarCounterSynthesizer::SarCounterSynthesizer(SarConfig config)
    : config_(config)
{
    HM_REQUIRE(config_.counters >= 1, "SarConfig: no counters");
    HM_REQUIRE(config_.samplesPerRun >= 1, "SarConfig: no samples");
    HM_REQUIRE(config_.constantFraction >= 0.0 &&
                   config_.constantFraction < 1.0,
               "SarConfig: constantFraction must be in [0, 1)");
    HM_REQUIRE(config_.noiseSigma >= 0.0, "SarConfig: negative noise");
}

std::vector<std::string>
SarCounterSynthesizer::counterNames() const
{
    std::vector<std::string> names;
    for (const CounterSpec &spec : buildCounterSpecs(config_))
        names.push_back(spec.name);
    return names;
}

SarPanel
SarCounterSynthesizer::collect(const std::vector<WorkloadProfile> &profiles,
                               const MachineSpec &machine) const
{
    HM_REQUIRE(!profiles.empty(), "SarCounterSynthesizer: no workloads");
    const std::vector<CounterSpec> specs = buildCounterSpecs(config_);

    SarPanel panel;
    panel.machine = machine.name;
    for (const CounterSpec &spec : specs)
        panel.counterNames.push_back(spec.name);

    for (const WorkloadProfile &profile : profiles) {
        // One independent, reproducible stream per (machine, workload).
        rng::Engine engine(config_.seed ^ fnv1a(machine.name) ^
                           fnv1a(profile.name));
        const auto latent = effectiveLatent(profile, machine);
        const double phase_offset =
            engine.uniform(0.0, 2.0 * std::numbers::pi);

        SarRun run;
        run.workload = profile.name;
        run.samples =
            linalg::Matrix(config_.samplesPerRun, specs.size(), 0.0);

        // Small multiplicative per-(machine, counter) gain. It mostly
        // cancels in standardization (it is the workload-dependent
        // latent modulation above that differentiates the machines'
        // clusterings) but keeps raw counter magnitudes realistic.
        rng::Engine gain_engine(config_.seed ^ fnv1a(machine.name) ^
                                0x9a17c0deULL);
        std::vector<double> gains(specs.size());
        for (double &g : gains)
            g = gain_engine.logNormal(0.0, 0.25);

        for (std::size_t c = 0; c < specs.size(); ++c) {
            const CounterSpec &spec = specs[c];
            if (spec.constant) {
                for (std::size_t s = 0; s < config_.samplesPerRun; ++s)
                    run.samples(s, c) = spec.offset;
                continue;
            }
            double activity = 0.0;
            for (std::size_t a = 0; a < kLatentAxes; ++a)
                activity += spec.loading[a] * latent[a];
            // Noise and phase drift modulate the activity-driven part
            // only; the offset is a static baseline (idle readings).
            const double dynamic = spec.scale * gains[c] * activity;
            for (std::size_t s = 0; s < config_.samplesPerRun; ++s) {
                const double phase =
                    1.0 + config_.phaseDrift *
                              std::sin(2.0 * std::numbers::pi *
                                           spec.phaseFreq *
                                           static_cast<double>(s) /
                                           static_cast<double>(
                                               config_.samplesPerRun) +
                                       phase_offset);
                run.samples(s, c) =
                    spec.offset +
                    dynamic * phase *
                        engine.logNormal(0.0, config_.noiseSigma);
            }
        }
        panel.runs.push_back(std::move(run));
    }
    return panel;
}

} // namespace workload
} // namespace hiermeans
