/**
 * @file
 * Synthetic SAR (system activity reporter) counter collection.
 *
 * Substitutes for Section IV-C's first characterization: "we used the
 * SAR counters provided by Linux ... a couple hundred counters ...
 * 15 samples were collected for each counter, with an even time
 * interval." Each concrete counter is generated as a mixture of the
 * workload's latent behavior axes (CPU burn, memory traffic, GC, ...),
 * modulated by the machine (a small-memory machine amplifies paging
 * and memory-side activity), with per-sample phase drift and noise.
 * The panel deliberately contains constant and near-duplicate counters
 * so the characterization pipeline has real filtering work to do,
 * exactly as real SAR output does.
 */

#ifndef HIERMEANS_WORKLOAD_SAR_COUNTERS_H
#define HIERMEANS_WORKLOAD_SAR_COUNTERS_H

#include <cstdint>
#include <string>
#include <vector>

#include "src/linalg/matrix.h"
#include "src/workload/machine.h"
#include "src/workload/workload_profile.h"

namespace hiermeans {
namespace workload {

/** Configuration of a synthetic SAR collection run. */
struct SarConfig
{
    /** Number of counters in the panel (the paper: "a couple hundred"). */
    std::size_t counters = 220;

    /** Samples per counter per workload (the paper: 15). */
    std::size_t samplesPerRun = 15;

    /** Fraction of counters that are constant (e.g. sizing counters). */
    double constantFraction = 0.12;

    /** Per-sample multiplicative noise sigma. */
    double noiseSigma = 0.03;

    /** Amplitude of the within-run phase drift (program phases). */
    double phaseDrift = 0.10;

    /** Seed controlling panel layout and all sampling noise. */
    std::uint64_t seed = 0xC0FFEE;
};

/** One workload's collected samples: samplesPerRun x counters. */
struct SarRun
{
    std::string workload;
    linalg::Matrix samples;
};

/** The full panel for one machine. */
struct SarPanel
{
    std::string machine;
    std::vector<std::string> counterNames;
    std::vector<SarRun> runs; ///< one per workload, in input order.

    /**
     * Per-workload average of each counter's samples — the
     * representative value the paper uses as the characteristic
     * vector element. Rows follow runs order.
     */
    linalg::Matrix averaged() const;
};

/** Deterministic SAR counter synthesizer. */
class SarCounterSynthesizer
{
  public:
    explicit SarCounterSynthesizer(SarConfig config = {});

    const SarConfig &config() const { return config_; }

    /**
     * Collect a panel for @p profiles on @p machine. The same seed
     * yields the same counter layout on every machine (as with real
     * SAR, the counter set is fixed by the OS), but sampled values
     * differ per machine because the machine modulates the latent
     * behavior (memoryPressureFactor) and the noise stream differs.
     */
    SarPanel collect(const std::vector<WorkloadProfile> &profiles,
                     const MachineSpec &machine) const;

    /** Names of the counters the panel will contain, in column order. */
    std::vector<std::string> counterNames() const;

  private:
    SarConfig config_;
};

} // namespace workload
} // namespace hiermeans

#endif // HIERMEANS_WORKLOAD_SAR_COUNTERS_H
