#include "src/workload/suite.h"

#include "src/util/error.h"
#include "src/util/log.h"
#include "src/workload/paper_data.h"

namespace hiermeans {
namespace workload {

BenchmarkSuite::BenchmarkSuite(std::vector<WorkloadProfile> profiles,
                               std::vector<ComponentWork> work,
                               std::vector<MachineSpec> machines)
    : profiles_(std::move(profiles)),
      work_(std::move(work)),
      machines_(std::move(machines))
{
    HM_REQUIRE(!profiles_.empty(), "BenchmarkSuite: no workloads");
    HM_REQUIRE(profiles_.size() == work_.size(),
               "BenchmarkSuite: " << profiles_.size() << " profiles vs "
                                  << work_.size() << " work entries");
    HM_REQUIRE(machines_.size() >= 2,
               "BenchmarkSuite: need the reference plus at least one "
               "machine under test");
    referenceIndex(); // validates that exactly one reference exists.
}

BenchmarkSuite
BenchmarkSuite::paperSuite()
{
    const auto &profiles = paperSuiteProfiles();
    const auto &table3 = paper::table3();
    HM_ASSERT(profiles.size() == table3.size(),
              "paper suite/table3 size mismatch");

    std::vector<ComponentWork> work;
    work.reserve(profiles.size());
    for (std::size_t i = 0; i < profiles.size(); ++i) {
        HM_ASSERT(profiles[i].name == table3[i].workload,
                  "paper suite order mismatch at " << i);
        // Reference times vary by workload in reality; 100 s is a
        // representative magnitude and cancels out of every speedup.
        const CalibrationResult cal = ExecutionModel::calibrateToSpeedups(
            machineA(), machineB(), referenceMachine(),
            table3[i].speedupA, table3[i].speedupB, 100.0);
        if (cal.relativeError > 0.02) {
            HM_LOG(Warn) << "calibration residual for "
                         << profiles[i].name << ": "
                         << cal.relativeError;
        }
        work.push_back(cal.work);
    }
    return BenchmarkSuite(profiles, std::move(work), paperMachines());
}

BenchmarkSuite
BenchmarkSuite::fromProfiles(std::vector<WorkloadProfile> profiles,
                             std::vector<MachineSpec> machines)
{
    std::vector<ComponentWork> work;
    work.reserve(profiles.size());
    for (const WorkloadProfile &p : profiles)
        work.push_back(ExecutionModel::workFromProfile(p));
    return BenchmarkSuite(std::move(profiles), std::move(work),
                          std::move(machines));
}

std::vector<std::string>
BenchmarkSuite::workloadNames() const
{
    std::vector<std::string> names;
    names.reserve(profiles_.size());
    for (const WorkloadProfile &p : profiles_)
        names.push_back(p.name);
    return names;
}

std::size_t
BenchmarkSuite::referenceIndex() const
{
    std::size_t index = machines_.size();
    for (std::size_t i = 0; i < machines_.size(); ++i) {
        if (machines_[i].name == "reference") {
            HM_REQUIRE(index == machines_.size(),
                       "BenchmarkSuite: multiple reference machines");
            index = i;
        }
    }
    HM_REQUIRE(index < machines_.size(),
               "BenchmarkSuite: no machine named `reference`");
    return index;
}

scoring::ScoreTable
BenchmarkSuite::run(const RunConfig &config) const
{
    std::vector<std::string> machine_names;
    for (const MachineSpec &m : machines_)
        machine_names.push_back(m.name);

    scoring::ScoreTable table(workloadNames(), machine_names);
    const ExecutionModel model(config.noiseSigma);
    rng::Engine engine(config.seed);

    for (std::size_t w = 0; w < profiles_.size(); ++w) {
        for (std::size_t m = 0; m < machines_.size(); ++m) {
            const std::vector<double> runs = model.sampleRuns(
                work_[w], machines_[m], engine, config.runsPerWorkload);
            table.setRunTimes(w, m, runs);
        }
    }
    return table;
}

} // namespace workload
} // namespace hiermeans
