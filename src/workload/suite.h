/**
 * @file
 * Benchmark suite composition and run orchestration.
 *
 * Ties the substrate together: a BenchmarkSuite owns workload profiles
 * and machine specs, runs every workload the configured number of times
 * on every machine through the ExecutionModel, and produces the
 * scoring::ScoreTable the rest of the pipeline consumes. For the paper
 * suite, component work is calibrated to the published Table III
 * speedups; user-defined suites derive work from their profiles.
 */

#ifndef HIERMEANS_WORKLOAD_SUITE_H
#define HIERMEANS_WORKLOAD_SUITE_H

#include <cstdint>
#include <string>
#include <vector>

#include "src/scoring/score_table.h"
#include "src/workload/execution_model.h"
#include "src/workload/machine.h"
#include "src/workload/workload_profile.h"

namespace hiermeans {
namespace workload {

/** Run configuration (the paper: 10 runs averaged). */
struct RunConfig
{
    std::size_t runsPerWorkload = 10;
    double noiseSigma = 0.005;
    std::uint64_t seed = 0xD1CE;
};

/** A composed benchmark suite bound to a set of machines. */
class BenchmarkSuite
{
  public:
    /**
     * @param profiles the workloads, with per-workload ComponentWork.
     * @param machines machines to run on; exactly one must be named
     *        "reference" (the normalization baseline).
     */
    BenchmarkSuite(std::vector<WorkloadProfile> profiles,
                   std::vector<ComponentWork> work,
                   std::vector<MachineSpec> machines);

    /**
     * The paper's hypothetical SPECjvm2007-like suite (Table I) on the
     * Table II machines, with component work calibrated so ideal
     * speedups equal the published Table III values.
     */
    static BenchmarkSuite paperSuite();

    /**
     * A suite whose component work is derived from profile traits
     * (no calibration targets).
     */
    static BenchmarkSuite fromProfiles(
        std::vector<WorkloadProfile> profiles,
        std::vector<MachineSpec> machines);

    const std::vector<WorkloadProfile> &profiles() const
    {
        return profiles_;
    }
    const std::vector<MachineSpec> &machines() const { return machines_; }
    const std::vector<ComponentWork> &work() const { return work_; }

    /** Workload names in suite order. */
    std::vector<std::string> workloadNames() const;

    /** Index of the reference machine in machines(). */
    std::size_t referenceIndex() const;

    /**
     * Execute every workload @p config.runsPerWorkload times on every
     * machine and return the populated score table.
     */
    scoring::ScoreTable run(const RunConfig &config = {}) const;

  private:
    std::vector<WorkloadProfile> profiles_;
    std::vector<ComponentWork> work_;
    std::vector<MachineSpec> machines_;
};

} // namespace workload
} // namespace hiermeans

#endif // HIERMEANS_WORKLOAD_SUITE_H
