#include "src/workload/workload_profile.h"

#include "src/util/error.h"

namespace hiermeans {
namespace workload {

const char *
suiteOriginName(SuiteOrigin origin)
{
    switch (origin) {
      case SuiteOrigin::SpecJvm98:
        return "SPECjvm98";
      case SuiteOrigin::SciMark2:
        return "SciMark2";
      case SuiteOrigin::DaCapo:
        return "DaCapo";
    }
    return "unknown";
}

namespace {

using Lib = WorkloadProfile::LibraryUse;

WorkloadProfile
make(std::string name, SuiteOrigin origin, std::string description,
     std::array<double, kLatentAxes> latent, std::vector<Lib> libraries,
     std::size_t private_methods, std::string seed_group = "")
{
    WorkloadProfile p;
    p.name = std::move(name);
    p.origin = origin;
    p.description = std::move(description);
    p.latent = latent;
    p.libraries = std::move(libraries);
    p.privateMethods = private_methods;
    p.methodSeedGroup = seed_group.empty() ? p.name : std::move(seed_group);
    return p;
}

std::vector<WorkloadProfile>
buildPaperSuite()
{
    // Latent axes:
    //  {CpuUser, Fp, MemTraffic, AllocGc, Paging, Io, Sched, CodeChurn}
    //
    // Designed per the paper's observations: SPECjvm98 spreads along the
    // CPU-behavior direction (compress/mpegaudio resemble each other;
    // jess/mtrt resemble each other; javac stands apart via code churn),
    // the five SciMark2 kernels are nearly identical numeric kernels,
    // and DaCapo spreads along the memory/GC direction.
    std::vector<WorkloadProfile> suite;

    // ---- SPECjvm98 ----
    {
        WorkloadProfile p = make(
            "jvm98.201.compress", SuiteOrigin::SpecJvm98,
            "Java port of 129.compress (modified Lempel-Ziv, LZW)",
            {0.90, 0.10, 0.50, 0.08, 0.05, 0.10, 0.10, 0.15},
            {Lib{"jdk.core", 0.40}, Lib{"codec.lzw", 0.90}}, 35);
        p.workUnits = 120.0;
        p.fpFraction = 0.05;
        p.workingSetMb = 24.0;
        p.allocationMbPerSec = 2.0;
        suite.push_back(std::move(p));
    }
    {
        WorkloadProfile p = make(
            "jvm98.202.jess", SuiteOrigin::SpecJvm98,
            "Java Expert Shell System solving CLIPS puzzles",
            {0.70, 0.05, 0.35, 0.45, 0.10, 0.05, 0.45, 0.55},
            {Lib{"jdk.core", 0.60}, Lib{"rules.engine", 0.85}}, 60);
        p.workUnits = 90.0;
        p.fpFraction = 0.02;
        p.workingSetMb = 40.0;
        p.allocationMbPerSec = 25.0;
        suite.push_back(std::move(p));
    }
    {
        WorkloadProfile p = make(
            "jvm98.213.javac", SuiteOrigin::SpecJvm98,
            "The Java compiler from JDK 1.0.2",
            {0.60, 0.05, 0.45, 0.55, 0.15, 0.15, 0.40, 0.80},
            {Lib{"jdk.core", 0.75}, Lib{"compiler.frontend", 0.90}}, 80);
        p.workUnits = 80.0;
        p.fpFraction = 0.01;
        p.workingSetMb = 64.0;
        p.allocationMbPerSec = 40.0;
        suite.push_back(std::move(p));
    }
    {
        WorkloadProfile p = make(
            "jvm98.222.mpegaudio", SuiteOrigin::SpecJvm98,
            "MPEG Layer-3 audio decoder",
            {0.92, 0.45, 0.42, 0.06, 0.04, 0.09, 0.12, 0.17},
            {Lib{"jdk.core", 0.35}, Lib{"codec.audio", 0.90}}, 40);
        p.workUnits = 130.0;
        p.fpFraction = 0.45;
        p.workingSetMb = 16.0;
        p.allocationMbPerSec = 1.5;
        suite.push_back(std::move(p));
    }
    {
        WorkloadProfile p = make(
            "jvm98.227.mtrt", SuiteOrigin::SpecJvm98,
            "Multi-threaded raytracer over a dinosaur scene",
            {0.72, 0.28, 0.40, 0.42, 0.10, 0.04, 0.55, 0.45},
            {Lib{"jdk.core", 0.55}, Lib{"graphics.trace", 0.88}}, 55);
        p.workUnits = 70.0;
        p.fpFraction = 0.35;
        p.workingSetMb = 48.0;
        p.allocationMbPerSec = 20.0;
        p.threads = 2;
        suite.push_back(std::move(p));
    }

    // ---- SciMark2: five near-identical numeric kernels sharing one
    //      self-contained math library and one method seed group. ----
    const std::array<double, kLatentAxes> scimark_base = {
        0.85, 0.90, 0.55, 0.03, 0.02, 0.02, 0.08, 0.05};
    auto scimark = [&](const char *name, const char *desc, double mem_delta,
                       double cpu_delta, std::size_t priv) {
        std::array<double, kLatentAxes> latent = scimark_base;
        latent[LatentMemoryTraffic] += mem_delta;
        latent[LatentCpuUser] += cpu_delta;
        WorkloadProfile p = make(
            std::string("SciMark2.") + name, SuiteOrigin::SciMark2, desc,
            latent,
            {Lib{"jdk.core", 0.18}, Lib{"math.kernel", 0.92}}, priv,
            "scimark.kernel");
        p.workUnits = 50.0;
        p.fpFraction = 0.85;
        p.workingSetMb = 4.0;
        p.allocationMbPerSec = 0.5;
        return p;
    };
    suite.push_back(scimark(
        "FFT", "1-D forward FFT of 4K complex numbers", 0.010, 0.000, 4));
    suite.push_back(scimark(
        "LU", "LU factorization of a dense 100x100 matrix", 0.015, 0.005,
        5));
    suite.push_back(scimark(
        "MonteCarlo", "Monte Carlo integration approximating Pi", -0.010,
        0.005, 3));
    suite.push_back(scimark(
        "SOR", "Jacobi successive over-relaxation on a 100x100 grid",
        0.010, -0.003, 4));
    suite.push_back(scimark(
        "Sparse", "Sparse matrix multiply in compressed-row format", 0.020,
        -0.005, 4));

    // ---- DaCapo ----
    {
        WorkloadProfile p = make(
            "DaCapo.hsqldb", SuiteOrigin::DaCapo,
            "JDBCbench-like in-memory banking transactions",
            {0.50, 0.05, 0.70, 0.85, 0.50, 0.45, 0.60, 0.50},
            {Lib{"jdk.core", 0.70}, Lib{"db.sql", 0.85},
             Lib{"io.jdbc", 0.80}},
            70);
        p.workUnits = 60.0;
        p.fpFraction = 0.02;
        p.workingSetMb = 320.0;
        p.allocationMbPerSec = 120.0;
        p.ioShare = 0.15;
        suite.push_back(std::move(p));
    }
    {
        WorkloadProfile p = make(
            "DaCapo.chart", SuiteOrigin::DaCapo,
            "JFreeChart line graphs rendered to PDF",
            {0.65, 0.30, 0.55, 0.65, 0.25, 0.55, 0.35, 0.60},
            {Lib{"jdk.core", 0.65}, Lib{"chart.render", 0.85},
             Lib{"io.pdf", 0.80}},
            65);
        p.workUnits = 75.0;
        p.fpFraction = 0.25;
        p.workingSetMb = 160.0;
        p.allocationMbPerSec = 80.0;
        p.ioShare = 0.10;
        suite.push_back(std::move(p));
    }
    {
        WorkloadProfile p = make(
            "DaCapo.xalan", SuiteOrigin::DaCapo,
            "XML-to-HTML transformation",
            {0.55, 0.05, 0.65, 0.75, 0.35, 0.60, 0.50, 0.55},
            {Lib{"jdk.core", 0.72}, Lib{"xml.parse", 0.85},
             Lib{"xml.transform", 0.88}},
            60);
        p.workUnits = 65.0;
        p.fpFraction = 0.02;
        p.workingSetMb = 200.0;
        p.allocationMbPerSec = 100.0;
        p.ioShare = 0.12;
        suite.push_back(std::move(p));
    }

    return suite;
}

} // namespace

const std::vector<WorkloadProfile> &
paperSuiteProfiles()
{
    static const std::vector<WorkloadProfile> suite = buildPaperSuite();
    return suite;
}

std::vector<std::string>
paperWorkloadNames()
{
    std::vector<std::string> names;
    for (const WorkloadProfile &p : paperSuiteProfiles())
        names.push_back(p.name);
    return names;
}

std::vector<std::size_t>
indicesOfOrigin(SuiteOrigin origin)
{
    std::vector<std::size_t> out;
    const auto &suite = paperSuiteProfiles();
    for (std::size_t i = 0; i < suite.size(); ++i) {
        if (suite[i].origin == origin)
            out.push_back(i);
    }
    return out;
}

} // namespace workload
} // namespace hiermeans
