/**
 * @file
 * Behavioral profiles of the 13 workloads in the paper's hypothetical
 * SPECjvm2007-like suite (Table I).
 *
 * We cannot execute 2007-era JVM workloads, so each workload is modeled
 * by a profile with two facets:
 *
 *  - execution traits (work volume, FP share, working set, allocation
 *    rate, ...) that drive the ExecutionModel's synthetic run times;
 *  - characterization traits: a latent behavior vector that drives the
 *    SAR counter synthesizer, and library-usage tags that drive the
 *    Java method-utilization synthesizer.
 *
 * The latent vectors are constructed to encode the relationships the
 * paper reports: the five SciMark2 kernels are nearly identical pure
 * numeric kernels sharing a self-contained math library, SPECjvm98
 * spreads along a CPU-behavior axis, and DaCapo spreads along a
 * memory/GC axis.
 */

#ifndef HIERMEANS_WORKLOAD_WORKLOAD_PROFILE_H
#define HIERMEANS_WORKLOAD_WORKLOAD_PROFILE_H

#include <array>
#include <string>
#include <vector>

namespace hiermeans {
namespace workload {

/** Origin benchmark suite of a workload (Table I). */
enum class SuiteOrigin { SpecJvm98, SciMark2, DaCapo };

/** Name of a suite origin. */
const char *suiteOriginName(SuiteOrigin origin);

/** Number of latent behavior axes used by the counter synthesizer. */
inline constexpr std::size_t kLatentAxes = 8;

/**
 * Latent behavior axes. Each axis is an abstract intensity in [0, 1]
 * the SAR counter synthesizer mixes into concrete OS counters.
 */
enum LatentAxis : std::size_t
{
    LatentCpuUser = 0,   ///< user-mode CPU burn.
    LatentFpIntensity,   ///< floating-point density.
    LatentMemoryTraffic, ///< cache/memory pressure.
    LatentAllocGc,       ///< allocation rate / GC activity.
    LatentPaging,        ///< page faults / swapping.
    LatentIo,            ///< file/block I/O.
    LatentScheduling,    ///< context switches / interrupts.
    LatentCodeChurn,     ///< JIT / icache working set.
};

/** A complete behavioral model of one workload. */
struct WorkloadProfile
{
    std::string name;        ///< e.g. "jvm98.201.compress".
    SuiteOrigin origin = SuiteOrigin::SpecJvm98;
    std::string description;

    // --- execution traits (drive the ExecutionModel) ---
    double workUnits = 1.0;      ///< abstract compute volume.
    double fpFraction = 0.1;     ///< share of FP operations.
    double workingSetMb = 16.0;  ///< resident data working set.
    double allocationMbPerSec = 1.0; ///< heap churn (GC pressure).
    double ioShare = 0.0;        ///< fraction of time in I/O at unit rate.
    int threads = 1;

    // --- characterization traits ---
    /** Latent behavior intensities, one per LatentAxis, each in [0, 1]. */
    std::array<double, kLatentAxes> latent{};

    /**
     * One library the workload exercises: a tag resolving against the
     * MethodProfileSynthesizer registry plus the fraction of that
     * library's methods the workload touches.
     */
    struct LibraryUse
    {
        std::string tag;
        double coverage = 0.7;
    };

    /** Libraries the workload uses, e.g. {{"jdk.core", 0.5}}. */
    std::vector<LibraryUse> libraries;

    /** Number of workload-private methods (application code). */
    std::size_t privateMethods = 40;

    /**
     * Seed group for method-subset selection. Workloads sharing a group
     * pick the *same* subset of each shared library's methods — the
     * SciMark2 kernels share one group, which is how their bit vectors
     * become identical once private methods are filtered out (they all
     * call the same self-contained math library).
     */
    std::string methodSeedGroup;
};

/**
 * The 13 workloads of Table I, in the paper's order:
 * 5 x SPECjvm98, 5 x SciMark2, 3 x DaCapo.
 */
const std::vector<WorkloadProfile> &paperSuiteProfiles();

/** Names of the Table I workloads in paper order. */
std::vector<std::string> paperWorkloadNames();

/** Indices (into paper order) of the workloads from @p origin. */
std::vector<std::size_t> indicesOfOrigin(SuiteOrigin origin);

} // namespace workload
} // namespace hiermeans

#endif // HIERMEANS_WORKLOAD_WORKLOAD_PROFILE_H
