/**
 * @file
 * Tests for agglomerative hierarchical clustering (Section III-B).
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include <tuple>

#include "src/cluster/agglomerative.h"
#include "src/util/error.h"
#include "src/util/rng.h"

namespace {

using namespace hiermeans::cluster;
using hiermeans::InvalidArgument;
using hiermeans::linalg::Matrix;
using hiermeans::linalg::Vector;
using hiermeans::scoring::Partition;

TEST(AgglomerativeTest, SinglePointYieldsEmptyMergeList)
{
    const Dendrogram d = agglomerate(Matrix::fromRows({{1.0, 2.0}}));
    EXPECT_EQ(d.leafCount(), 1u);
    EXPECT_TRUE(d.merges().empty());
}

TEST(AgglomerativeTest, HandCheckedThreePoints)
{
    // Points on a line at 0, 1, 10: first merge {0,1} at distance 1,
    // then complete linkage joins the pair with 10 at distance 10.
    const Matrix points = Matrix::fromRows({{0.0}, {1.0}, {10.0}});
    const Dendrogram d = agglomerate(points, Linkage::Complete);
    ASSERT_EQ(d.merges().size(), 2u);
    EXPECT_DOUBLE_EQ(d.merges()[0].height, 1.0);
    EXPECT_EQ(d.merges()[0].left, 0u);
    EXPECT_EQ(d.merges()[0].right, 1u);
    EXPECT_DOUBLE_EQ(d.merges()[1].height, 10.0);
    EXPECT_EQ(d.merges()[1].size, 3u);
}

TEST(AgglomerativeTest, SingleVsCompleteDifferOnChains)
{
    // A chain 0 - 2 - 4 - 6: single linkage merges the whole chain at
    // distance 2; complete linkage heights grow with cluster diameter.
    const Matrix points =
        Matrix::fromRows({{0.0}, {2.0}, {4.0}, {6.0}});
    const Dendrogram single = agglomerate(points, Linkage::Single);
    const Dendrogram complete = agglomerate(points, Linkage::Complete);
    EXPECT_DOUBLE_EQ(single.merges().back().height, 2.0);
    EXPECT_DOUBLE_EQ(complete.merges().back().height, 6.0);
}

TEST(AgglomerativeTest, CompleteMatchesBruteForceDefinition)
{
    // d(A, B) = max pairwise distance: verify the final merge height
    // equals the data diameter under complete linkage.
    hiermeans::rng::Engine engine(21);
    std::vector<Vector> rows;
    for (int i = 0; i < 12; ++i)
        rows.push_back({engine.uniform(0.0, 5.0),
                        engine.uniform(0.0, 5.0)});
    const Matrix points = Matrix::fromRows(rows);
    const Dendrogram d = agglomerate(points, Linkage::Complete);

    const Matrix dist = hiermeans::linalg::pairwiseDistances(points);
    double diameter = 0.0;
    for (std::size_t i = 0; i < dist.rows(); ++i)
        for (std::size_t j = i + 1; j < dist.cols(); ++j)
            diameter = std::max(diameter, dist(i, j));
    EXPECT_NEAR(d.merges().back().height, diameter, 1e-9);
}

TEST(AgglomerativeTest, FromDistancesValidation)
{
    Matrix bad(2, 3);
    EXPECT_THROW(agglomerateFromDistances(bad), InvalidArgument);
    Matrix diag(2, 2, 0.0);
    diag(0, 0) = 1.0;
    EXPECT_THROW(agglomerateFromDistances(diag), InvalidArgument);
    Matrix asym(2, 2, 0.0);
    asym(0, 1) = 1.0;
    asym(1, 0) = 2.0;
    EXPECT_THROW(agglomerateFromDistances(asym), InvalidArgument);
    Matrix negative(2, 2, 0.0);
    negative(0, 1) = -1.0;
    negative(1, 0) = -1.0;
    EXPECT_THROW(agglomerateFromDistances(negative), InvalidArgument);
}

TEST(AgglomerativeTest, WardRequiresEuclidean)
{
    const Matrix points = Matrix::fromRows({{0.0}, {1.0}});
    EXPECT_THROW(agglomerate(points, Linkage::Ward,
                             hiermeans::linalg::Metric::Manhattan),
                 InvalidArgument);
    EXPECT_NO_THROW(agglomerate(points, Linkage::Ward));
}

TEST(AgglomerativeTest, DeterministicUnderTies)
{
    // Four corners of a square: every nearest pair is tied. Two runs
    // must produce identical merge lists.
    const Matrix points = Matrix::fromRows(
        {{0.0, 0.0}, {1.0, 0.0}, {0.0, 1.0}, {1.0, 1.0}});
    const Dendrogram a = agglomerate(points);
    const Dendrogram b = agglomerate(points);
    ASSERT_EQ(a.merges().size(), b.merges().size());
    for (std::size_t i = 0; i < a.merges().size(); ++i) {
        EXPECT_EQ(a.merges()[i].left, b.merges()[i].left);
        EXPECT_EQ(a.merges()[i].right, b.merges()[i].right);
        EXPECT_DOUBLE_EQ(a.merges()[i].height, b.merges()[i].height);
    }
}

class LinkageMonotonicityProperty
    : public ::testing::TestWithParam<std::tuple<Linkage, std::uint64_t>>
{
};

TEST_P(LinkageMonotonicityProperty, HeightsNeverDecrease)
{
    const auto [linkage, seed] = GetParam();
    hiermeans::rng::Engine engine(seed);
    const std::size_t n = 4 + engine.below(16);
    std::vector<Vector> rows;
    for (std::size_t i = 0; i < n; ++i)
        rows.push_back({engine.uniform(-3.0, 3.0),
                        engine.uniform(-3.0, 3.0),
                        engine.uniform(-3.0, 3.0)});
    const Dendrogram d = agglomerate(Matrix::fromRows(rows), linkage);
    EXPECT_TRUE(d.heightsMonotone()) << linkageName(linkage);
}

TEST_P(LinkageMonotonicityProperty, EveryCutCountReachable)
{
    const auto [linkage, seed] = GetParam();
    hiermeans::rng::Engine engine(seed ^ 0xF00D);
    const std::size_t n = 3 + engine.below(10);
    std::vector<Vector> rows;
    for (std::size_t i = 0; i < n; ++i)
        rows.push_back({engine.uniform(0.0, 9.0)});
    const Dendrogram d = agglomerate(Matrix::fromRows(rows), linkage);
    for (std::size_t k = 1; k <= n; ++k) {
        const Partition p = d.cutAtCount(k);
        EXPECT_EQ(p.clusterCount(), k);
        EXPECT_EQ(p.size(), n);
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllLinkages, LinkageMonotonicityProperty,
    ::testing::Combine(::testing::Values(Linkage::Single,
                                         Linkage::Complete,
                                         Linkage::Average,
                                         Linkage::Weighted, Linkage::Ward),
                       ::testing::Values(1u, 17u, 4242u)));

} // namespace
