/**
 * @file
 * Golden tests for the /v1 API envelope and its stable error-code
 * table — the wire contract shared by the server (emitting) and
 * client::ScoringClient (parsing). These strings are load-bearing:
 * a change that breaks one of the goldens breaks deployed clients.
 */

#include <gtest/gtest.h>

#include <string>
#include <tuple>
#include <vector>

#include "src/server/api.h"
#include "src/server/json.h"

namespace hiermeans {
namespace server {
namespace {

/** Every code in the wire contract, with its string and status. */
const std::vector<std::tuple<ApiError, const char *, int>> kContract =
    {
        {ApiError::None, "none", 200},
        {ApiError::BadRequest, "bad_request", 400},
        {ApiError::BodyTooLarge, "body_too_large", 413},
        {ApiError::HeadersTooLarge, "headers_too_large", 431},
        {ApiError::InvalidManifest, "invalid_manifest", 400},
        {ApiError::Timeout, "timeout", 504},
        {ApiError::WatchdogTimeout, "watchdog_timeout", 504},
        {ApiError::Overloaded, "overloaded", 503},
        {ApiError::CircuitOpen, "circuit_open", 503},
        {ApiError::Draining, "draining", 503},
        {ApiError::NotFound, "not_found", 404},
        {ApiError::MethodNotAllowed, "method_not_allowed", 405},
        {ApiError::ScoringFailed, "scoring_failed", 422},
        {ApiError::Internal, "internal", 500},
        {ApiError::DeadlineExpired, "deadline_expired", 504},
};

TEST(ApiErrorTest, WireCodesAndStatusesAreStable)
{
    for (const auto &[error, code, status] : kContract) {
        EXPECT_STREQ(apiErrorCode(error), code);
        EXPECT_EQ(apiErrorStatus(error), status)
            << "status drifted for code " << code;
    }
}

TEST(ApiErrorTest, CodesRoundTripThroughParse)
{
    for (const auto &[error, code, status] : kContract)
        EXPECT_EQ(parseApiErrorCode(code), error) << code;
}

TEST(ApiErrorTest, UnknownCodesParseAsInternal)
{
    EXPECT_EQ(parseApiErrorCode("future_code"), ApiError::Internal);
    EXPECT_EQ(parseApiErrorCode(""), ApiError::Internal);
}

TEST(ApiEnvelopeTest, OkEnvelopeGolden)
{
    EXPECT_EQ(okEnvelope("{\"id\":\"run-1\"}", "4f2adeadbeef0001"),
              "{\"ok\":true,\"data\":{\"id\":\"run-1\"},"
              "\"error\":null,\"trace_id\":\"4f2adeadbeef0001\"}");
}

TEST(ApiEnvelopeTest, EmptyTraceIdSerializesAsNull)
{
    // Bit-identical bodies across repeats when tracing is off: the
    // chaos harness and stale-serving tests rely on this.
    EXPECT_EQ(okEnvelope("1", ""),
              "{\"ok\":true,\"data\":1,\"error\":null,"
              "\"trace_id\":null}");
    EXPECT_EQ(errorEnvelope(ApiError::NotFound, "no such trace", ""),
              "{\"ok\":false,\"data\":null,\"error\":{"
              "\"code\":\"not_found\","
              "\"message\":\"no such trace\"},\"trace_id\":null}");
}

TEST(ApiEnvelopeTest, ErrorEnvelopeGolden4xx)
{
    EXPECT_EQ(
        errorEnvelope(ApiError::BadRequest, "expected one line",
                      "abc123"),
        "{\"ok\":false,\"data\":null,\"error\":{"
        "\"code\":\"bad_request\","
        "\"message\":\"expected one line\"},"
        "\"trace_id\":\"abc123\"}");
}

TEST(ApiEnvelopeTest, ErrorEnvelopeGolden5xxWithExtra)
{
    // The degraded/timeout shape: extra error fields splice in after
    // code/message, e.g. the watchdog's timed_out marker.
    EXPECT_EQ(
        errorEnvelope(ApiError::WatchdogTimeout,
                      "watchdog: request exceeded its budget",
                      "abc123", "\"timed_out\":true"),
        "{\"ok\":false,\"data\":null,\"error\":{"
        "\"code\":\"watchdog_timeout\","
        "\"message\":\"watchdog: request exceeded its budget\","
        "\"timed_out\":true},\"trace_id\":\"abc123\"}");
}

TEST(ApiEnvelopeTest, MessagesAreJsonEscaped)
{
    const std::string body = errorEnvelope(
        ApiError::Internal, "quote \" backslash \\ newline \n", "t");
    EXPECT_NE(body.find("\\\""), std::string::npos);
    EXPECT_NE(body.find("\\\\"), std::string::npos);
    EXPECT_NE(body.find("\\n"), std::string::npos);
    // And it must parse back out intact.
    const auto message = json::findString(body, "message");
    ASSERT_TRUE(message.has_value());
    EXPECT_EQ(*message, "quote \" backslash \\ newline \n");
}

TEST(ApiEnvelopeTest, OkResponseWrapsEnvelopeIn200Json)
{
    const HttpResponse response = okResponse("{\"x\":1}", "tid");
    EXPECT_EQ(response.status, 200);
    EXPECT_EQ(response.body,
              okEnvelope("{\"x\":1}", "tid") + "\n");
}

TEST(ApiEnvelopeTest, ErrorResponseUsesConventionalStatus)
{
    for (const auto &[error, code, status] : kContract) {
        if (error == ApiError::None)
            continue;
        const HttpResponse response =
            errorResponse(error, "boom", "tid");
        EXPECT_EQ(response.status, status) << code;
        const auto parsed = json::findString(response.body, "code");
        ASSERT_TRUE(parsed.has_value()) << code;
        EXPECT_EQ(*parsed, code);
    }
}

TEST(ApiEnvelopeTest, ClientCanRecoverTheCodeFromAnyErrorBody)
{
    // What ScoringClient does with a >=400 body: find "code", parse.
    for (const auto &[error, code, status] : kContract) {
        const std::string body =
            errorEnvelope(error, "detail", "trace");
        const auto parsed = json::findString(body, "code");
        ASSERT_TRUE(parsed.has_value());
        EXPECT_EQ(parseApiErrorCode(*parsed), error);
    }
}

} // namespace
} // namespace server
} // namespace hiermeans
