/**
 * @file
 * Tests for the batch-mode SOM training.
 */

#include <gtest/gtest.h>

#include <set>

#include "src/som/som.h"
#include "src/util/error.h"
#include "src/util/rng.h"

namespace {

using hiermeans::InvalidArgument;
using hiermeans::linalg::Matrix;
using hiermeans::linalg::Vector;
using namespace hiermeans::som;

Matrix
twoBlobs()
{
    hiermeans::rng::Engine engine(19);
    std::vector<Vector> rows;
    for (int i = 0; i < 9; ++i)
        rows.push_back({engine.normal(0.0, 0.3),
                        engine.normal(0.0, 0.3)});
    for (int i = 0; i < 9; ++i)
        rows.push_back({engine.normal(12.0, 0.3),
                        engine.normal(12.0, 0.3)});
    return Matrix::fromRows(rows);
}

SomConfig
config()
{
    SomConfig c;
    c.rows = 6;
    c.cols = 6;
    c.steps = 1; // batch training ignores the sequential schedule.
    c.seed = 5;
    return c;
}

TEST(BatchSomTest, EpochReducesQuantizationError)
{
    const Matrix data = twoBlobs();
    auto map = SelfOrganizingMap::initialize(data, config());
    const double before = map.quantizationError(data);
    map.trainBatch(10);
    EXPECT_LT(map.quantizationError(data), before);
}

TEST(BatchSomTest, DeterministicAndOrderIndependent)
{
    const Matrix data = twoBlobs();
    auto a = SelfOrganizingMap::initialize(data, config());
    auto b = SelfOrganizingMap::initialize(data, config());
    a.trainBatch(6);
    b.trainBatch(6);
    EXPECT_TRUE(a.weights().approxEqual(b.weights(), 0.0));

    // Row order must not matter: a reversed copy of the data trains to
    // weights with the same quantization error (batch updates sum over
    // all observations symmetrically).
    std::vector<Vector> reversed_rows;
    for (std::size_t r = data.rows(); r-- > 0;)
        reversed_rows.push_back(data.row(r));
    const Matrix reversed = Matrix::fromRows(reversed_rows);
    auto c = SelfOrganizingMap::initialize(reversed, config());
    c.trainBatch(6);
    EXPECT_NEAR(c.quantizationError(reversed),
                a.quantizationError(data), 1e-9);
}

TEST(BatchSomTest, SeparatesBlobsLikeSequentialTraining)
{
    const Matrix data = twoBlobs();
    auto map = SelfOrganizingMap::initialize(data, config());
    map.trainBatch(12);
    const auto bmus = map.bmuAll(data);
    // No unit shared between the two blobs.
    std::set<std::size_t> first(bmus.begin(), bmus.begin() + 9);
    std::set<std::size_t> second(bmus.begin() + 9, bmus.end());
    for (std::size_t u : first)
        EXPECT_EQ(second.count(u), 0u);
}

TEST(BatchSomTest, SingleEpochWithFixedSigma)
{
    const Matrix data = twoBlobs();
    auto map = SelfOrganizingMap::initialize(data, config());
    EXPECT_NO_THROW(map.batchEpoch(2.0));
    EXPECT_THROW(map.batchEpoch(0.0), InvalidArgument);
    EXPECT_THROW(map.trainBatch(0), InvalidArgument);
}

TEST(BatchSomTest, ConvergesToFixedPoint)
{
    // Repeated epochs at a small fixed sigma converge: weights stop
    // moving once assignments stabilize.
    const Matrix data = twoBlobs();
    auto map = SelfOrganizingMap::initialize(data, config());
    map.trainBatch(8);
    for (int i = 0; i < 5; ++i)
        map.batchEpoch(0.4);
    const Matrix before = map.weights();
    map.batchEpoch(0.4);
    EXPECT_TRUE(map.weights().approxEqual(before, 1e-9));
}

} // namespace
