/**
 * @file
 * Tests for the bootstrap confidence intervals.
 */

#include <gtest/gtest.h>

#include "src/stats/bootstrap.h"
#include "src/stats/means.h"
#include "src/util/error.h"
#include "src/util/rng.h"

namespace {

using namespace hiermeans::stats;
using hiermeans::InvalidArgument;

std::vector<std::vector<double>>
noisyRuns(const std::vector<double> &true_times, double sigma,
          std::size_t runs, std::uint64_t seed)
{
    hiermeans::rng::Engine engine(seed);
    std::vector<std::vector<double>> out;
    for (double t : true_times) {
        std::vector<double> workload_runs;
        for (std::size_t r = 0; r < runs; ++r)
            workload_runs.push_back(t * engine.logNormal(0.0, sigma));
        out.push_back(std::move(workload_runs));
    }
    return out;
}

TEST(BootstrapTest, PointEstimateIsStatisticOfAverages)
{
    const std::vector<std::vector<double>> runs = {
        {1.0, 3.0}, {4.0, 4.0}};
    const BootstrapInterval ci = bootstrapScore(
        runs, [](const std::vector<double> &v) {
            return arithmeticMean(v);
        });
    // Averages are 2 and 4 -> statistic 3.
    EXPECT_DOUBLE_EQ(ci.pointEstimate, 3.0);
}

TEST(BootstrapTest, IntervalBracketsPointEstimate)
{
    const auto runs = noisyRuns({10.0, 20.0, 5.0}, 0.05, 10, 7);
    const BootstrapInterval ci = bootstrapScore(
        runs, [](const std::vector<double> &v) {
            return geometricMean(v);
        });
    EXPECT_LE(ci.lower, ci.pointEstimate);
    EXPECT_GE(ci.upper, ci.pointEstimate);
    EXPECT_GT(ci.lower, 0.0);
}

TEST(BootstrapTest, ZeroNoiseGivesDegenerateInterval)
{
    const auto runs = noisyRuns({10.0, 20.0}, 0.0, 8, 1);
    const BootstrapInterval ci = bootstrapScore(
        runs, [](const std::vector<double> &v) {
            return arithmeticMean(v);
        });
    EXPECT_NEAR(ci.lower, ci.pointEstimate, 1e-12);
    EXPECT_NEAR(ci.upper, ci.pointEstimate, 1e-12);
}

TEST(BootstrapTest, WiderNoiseWidensInterval)
{
    BootstrapConfig config;
    config.seed = 3;
    const auto statistic = [](const std::vector<double> &v) {
        return geometricMean(v);
    };
    const auto narrow_runs = noisyRuns({10.0, 20.0, 5.0}, 0.02, 10, 9);
    const auto wide_runs = noisyRuns({10.0, 20.0, 5.0}, 0.20, 10, 9);
    const double narrow_width =
        bootstrapScore(narrow_runs, statistic, config).upper -
        bootstrapScore(narrow_runs, statistic, config).lower;
    const double wide_width =
        bootstrapScore(wide_runs, statistic, config).upper -
        bootstrapScore(wide_runs, statistic, config).lower;
    EXPECT_GT(wide_width, narrow_width);
}

TEST(BootstrapTest, DeterministicForSeed)
{
    const auto runs = noisyRuns({1.0, 2.0}, 0.1, 6, 11);
    BootstrapConfig config;
    config.seed = 42;
    const auto statistic = [](const std::vector<double> &v) {
        return arithmeticMean(v);
    };
    const BootstrapInterval a = bootstrapScore(runs, statistic, config);
    const BootstrapInterval b = bootstrapScore(runs, statistic, config);
    EXPECT_DOUBLE_EQ(a.lower, b.lower);
    EXPECT_DOUBLE_EQ(a.upper, b.upper);
}

TEST(BootstrapTest, LevelControlsWidth)
{
    const auto runs = noisyRuns({10.0, 20.0, 5.0}, 0.1, 10, 13);
    const auto statistic = [](const std::vector<double> &v) {
        return geometricMean(v);
    };
    BootstrapConfig c50;
    c50.level = 0.5;
    BootstrapConfig c99;
    c99.level = 0.99;
    const BootstrapInterval narrow = bootstrapScore(runs, statistic, c50);
    const BootstrapInterval wide = bootstrapScore(runs, statistic, c99);
    EXPECT_LT(narrow.upper - narrow.lower, wide.upper - wide.lower);
}

TEST(BootstrapTest, Validation)
{
    const auto statistic = [](const std::vector<double> &v) {
        return arithmeticMean(v);
    };
    EXPECT_THROW(bootstrapScore({}, statistic), InvalidArgument);
    EXPECT_THROW(bootstrapScore({{1.0}, {}}, statistic),
                 InvalidArgument);
    BootstrapConfig bad;
    bad.resamples = 5;
    EXPECT_THROW(bootstrapScore({{1.0}}, statistic, bad),
                 InvalidArgument);
    bad = BootstrapConfig{};
    bad.level = 1.0;
    EXPECT_THROW(bootstrapScore({{1.0}}, statistic, bad),
                 InvalidArgument);
}

} // namespace
