/**
 * @file
 * Integration test: the full case study (Section IV-V).
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "src/core/case_study.h"
#include "src/workload/paper_data.h"

namespace {

using namespace hiermeans::core;
using namespace hiermeans::workload;

/** Shared across tests: the case study is deterministic but not free. */
const CaseStudyResult &
paperScores()
{
    static const CaseStudyResult result = runCaseStudy(CaseStudyConfig{});
    return result;
}

TEST(CaseStudyTest, SpeedupsAreThePublishedOnesByDefault)
{
    const CaseStudyResult &r = paperScores();
    const auto a = paper::table3SpeedupsA();
    ASSERT_EQ(r.scoresA.size(), a.size());
    for (std::size_t i = 0; i < a.size(); ++i)
        EXPECT_DOUBLE_EQ(r.scoresA[i], a[i]);
    EXPECT_NEAR(r.plainA, paper::kTable3GeomeanA, 0.005);
    EXPECT_NEAR(r.plainB, paper::kTable3GeomeanB, 0.005);
}

TEST(CaseStudyTest, AllBranchesSweepKTwoToEight)
{
    const CaseStudyResult &r = paperScores();
    for (const CaseStudyBranch *branch :
         {&r.sarMachineA, &r.sarMachineB, &r.methods}) {
        ASSERT_EQ(branch->report.rows.size(), 7u) << branch->label;
        EXPECT_EQ(branch->report.rows.front().clusterCount, 2u);
        EXPECT_EQ(branch->report.rows.back().clusterCount, 8u);
        for (const auto &row : branch->report.rows) {
            EXPECT_GT(row.scoreA, 0.0);
            EXPECT_GT(row.scoreB, 0.0);
        }
    }
}

TEST(CaseStudyTest, SciMarkCoagulatesInEveryBranch)
{
    // The paper's central finding: SciMark2 forms a dense cluster under
    // every characterization.
    const CaseStudyResult &r = paperScores();
    for (const CaseStudyBranch *branch :
         {&r.sarMachineA, &r.sarMachineB, &r.methods}) {
        const GroupRedundancy *scimark = nullptr;
        for (const auto &g : branch->redundancy.groups) {
            if (g.name == "SciMark2")
                scimark = &g;
        }
        ASSERT_NE(scimark, nullptr) << branch->label;
        EXPECT_LT(scimark->coagulation, 0.5) << branch->label;
        EXPECT_TRUE(scimark->coagulated()) << branch->label;
    }
}

TEST(CaseStudyTest, MethodCharacterizationPutsSciMarkOnOneCell)
{
    // Figure 7: the five kernels map to a single SOM cell.
    const CaseStudyResult &r = paperScores();
    const auto sc = indicesOfOrigin(SuiteOrigin::SciMark2);
    const std::size_t first = r.methods.analysis.bmus[sc[0]];
    for (std::size_t i : sc)
        EXPECT_EQ(r.methods.analysis.bmus[i], first);
    // And therefore they are an exclusive cluster at distance 0.
    const GroupRedundancy &g = r.methods.redundancy.groups[1];
    EXPECT_EQ(g.name, "SciMark2");
    EXPECT_TRUE(g.appearsAsExclusiveCluster);
    EXPECT_DOUBLE_EQ(g.connectedAtDistance, 0.0);
    EXPECT_EQ(g.maxSharedCell, 5u);
}

TEST(CaseStudyTest, RatiosConvergeTowardPlainRatioAsKGrows)
{
    // Table IV/V observation: "as the number of clusters increases,
    // the ratio ... converges to the ratio of the plain geometric
    // mean". Check the last row sits closer to the plain ratio than
    // the most deviant row.
    const CaseStudyResult &r = paperScores();
    for (const CaseStudyBranch *branch :
         {&r.sarMachineA, &r.sarMachineB, &r.methods}) {
        const double plain = branch->report.plainRatio;
        double most_deviant = 0.0;
        for (const auto &row : branch->report.rows) {
            most_deviant = std::max(most_deviant,
                                    std::abs(row.ratio - plain));
        }
        const double last =
            std::abs(branch->report.rows.back().ratio - plain);
        EXPECT_LE(last, most_deviant + 1e-12) << branch->label;
    }
}

TEST(CaseStudyTest, SpeedupTableRendersAllWorkloads)
{
    const CaseStudyResult &r = paperScores();
    const std::string table = r.renderSpeedupTable();
    for (const auto &row : paper::table3())
        EXPECT_NE(table.find(row.workload), std::string::npos);
    EXPECT_NE(table.find("Geometric Mean"), std::string::npos);
}

TEST(CaseStudyTest, SimulatedScoresCloseToPaper)
{
    CaseStudyConfig config;
    config.scoreSource = ScoreSource::Simulated;
    const CaseStudyResult r = runCaseStudy(config);
    EXPECT_NEAR(r.plainA, paper::kTable3GeomeanA, 0.03);
    EXPECT_NEAR(r.plainB, paper::kTable3GeomeanB, 0.03);
    const auto a = paper::table3SpeedupsA();
    for (std::size_t i = 0; i < a.size(); ++i)
        EXPECT_NEAR(r.scoresA[i], a[i], 0.03 * a[i]);
}

TEST(CaseStudyTest, RecommendationsInRange)
{
    const CaseStudyResult &r = paperScores();
    for (const CaseStudyBranch *branch :
         {&r.sarMachineA, &r.sarMachineB, &r.methods}) {
        EXPECT_GE(branch->recommendation.recommended, 2u);
        EXPECT_LE(branch->recommendation.recommended, 8u);
    }
}

} // namespace
