/**
 * @file
 * Tests for the characterization stage (Section IV-C data prep).
 */

#include <gtest/gtest.h>

#include <cmath>

#include "src/core/characterization.h"
#include "src/util/error.h"
#include "src/workload/machine.h"
#include "src/workload/workload_profile.h"

namespace {

using namespace hiermeans::core;
using namespace hiermeans::workload;
using hiermeans::InvalidArgument;
using hiermeans::linalg::Matrix;

TEST(CharacterizeRawTest, DropsConstantsAndStandardizes)
{
    const Matrix obs = Matrix::fromRows(
        {{1.0, 5.0, 10.0}, {2.0, 5.0, 20.0}, {3.0, 5.0, 30.0}});
    const CharacteristicVectors cv = characterizeRaw(
        obs, {"w0", "w1", "w2"}, {"f0", "f1", "f2"});
    EXPECT_EQ(cv.features.cols(), 2u);
    EXPECT_EQ(cv.droppedFeatures, 1u);
    EXPECT_EQ(cv.featureNames, (std::vector<std::string>{"f0", "f2"}));
    // Columns are z-scored.
    for (std::size_t c = 0; c < 2; ++c) {
        double mean = 0.0;
        for (std::size_t r = 0; r < 3; ++r)
            mean += cv.features(r, c);
        EXPECT_NEAR(mean, 0.0, 1e-12);
    }
}

TEST(CharacterizeRawTest, Validation)
{
    const Matrix obs = Matrix::fromRows({{1.0}, {2.0}});
    EXPECT_THROW(characterizeRaw(obs, {"w"}, {"f"}), InvalidArgument);
    EXPECT_THROW(characterizeRaw(obs, {"a", "b"}, {}), InvalidArgument);
    const Matrix constant = Matrix::fromRows({{1.0}, {1.0}});
    EXPECT_THROW(characterizeRaw(constant, {"a", "b"}, {"f"}),
                 InvalidArgument);
}

TEST(CharacterizeFromSarTest, EndToEnd)
{
    SarConfig config;
    config.counters = 80;
    const SarCounterSynthesizer synth(config);
    const SarPanel panel =
        synth.collect(paperSuiteProfiles(), machineA());
    const CharacteristicVectors cv = characterizeFromSar(panel);
    EXPECT_EQ(cv.workloadNames.size(), 13u);
    EXPECT_EQ(cv.features.rows(), 13u);
    // Constant counters were dropped.
    EXPECT_GT(cv.droppedFeatures, 0u);
    EXPECT_LT(cv.features.cols(), 80u);
    EXPECT_EQ(cv.features.cols(), cv.featureNames.size());
    // Standardized: every surviving column has |mean| ~ 0.
    for (std::size_t c = 0; c < cv.features.cols(); ++c) {
        double mean = 0.0;
        for (std::size_t r = 0; r < 13; ++r)
            mean += cv.features(r, c);
        EXPECT_NEAR(mean / 13.0, 0.0, 1e-9);
    }
}

TEST(CharacterizeFromMethodsTest, EndToEnd)
{
    const MethodProfileSynthesizer synth;
    const MethodProfile mp = synth.generate(paperSuiteProfiles());
    const CharacteristicVectors cv =
        characterizeFromMethods(mp, paperWorkloadNames());
    EXPECT_EQ(cv.features.rows(), 13u);
    EXPECT_GT(cv.droppedFeatures, 0u);
    // All private methods (one user) and universal methods are gone;
    // the surviving columns must have between 2 and 12 users in the
    // raw bits. Verify via the feature names all being library methods.
    for (const auto &name : cv.featureNames) {
        EXPECT_EQ(name.find("App.main"), std::string::npos)
            << "private method survived: " << name;
    }
}

TEST(CharacterizeFromMethodsTest, Validation)
{
    const MethodProfileSynthesizer synth;
    const MethodProfile mp = synth.generate(paperSuiteProfiles());
    EXPECT_THROW(characterizeFromMethods(mp, {"just-one"}),
                 InvalidArgument);
}

TEST(CharacterizeFromSarTest, EmptyPanelThrows)
{
    SarPanel panel;
    EXPECT_THROW(characterizeFromSar(panel), InvalidArgument);
}

} // namespace
