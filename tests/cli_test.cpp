/**
 * @file
 * Tests for the command-line parser.
 */

#include <gtest/gtest.h>

#include "src/util/cli.h"
#include "src/util/error.h"

namespace {

using hiermeans::InvalidArgument;
using hiermeans::util::CommandLine;

CommandLine
parse(std::initializer_list<const char *> args)
{
    std::vector<std::string> v(args.begin(), args.end());
    return CommandLine::parse(v);
}

TEST(CliTest, EqualsSyntax)
{
    const auto cl = parse({"prog", "--seed=42", "--name=abc"});
    EXPECT_EQ(cl.program(), "prog");
    EXPECT_EQ(cl.getInt("seed", 0), 42);
    EXPECT_EQ(cl.getString("name", ""), "abc");
}

TEST(CliTest, SpaceSyntax)
{
    const auto cl = parse({"prog", "--seed", "42"});
    EXPECT_EQ(cl.getInt("seed", 0), 42);
}

TEST(CliTest, BareBooleanFlag)
{
    const auto cl = parse({"prog", "--verbose"});
    EXPECT_TRUE(cl.has("verbose"));
    EXPECT_TRUE(cl.getBool("verbose", false));
    EXPECT_FALSE(cl.getBool("quiet", false));
}

TEST(CliTest, BooleanValues)
{
    EXPECT_TRUE(parse({"p", "--x=true"}).getBool("x", false));
    EXPECT_TRUE(parse({"p", "--x=YES"}).getBool("x", false));
    EXPECT_TRUE(parse({"p", "--x=1"}).getBool("x", false));
    EXPECT_FALSE(parse({"p", "--x=false"}).getBool("x", true));
    EXPECT_FALSE(parse({"p", "--x=off"}).getBool("x", true));
    EXPECT_THROW(parse({"p", "--x=maybe"}).getBool("x", true),
                 InvalidArgument);
}

TEST(CliTest, DefaultsWhenAbsent)
{
    const auto cl = parse({"prog"});
    EXPECT_EQ(cl.getInt("k", 7), 7);
    EXPECT_DOUBLE_EQ(cl.getDouble("x", 2.5), 2.5);
    EXPECT_EQ(cl.getString("s", "d"), "d");
}

TEST(CliTest, PositionalArguments)
{
    const auto cl = parse({"prog", "input.csv", "--k=3", "out.csv"});
    ASSERT_EQ(cl.positional().size(), 2u);
    EXPECT_EQ(cl.positional()[0], "input.csv");
    EXPECT_EQ(cl.positional()[1], "out.csv");
}

TEST(CliTest, MalformedNumbersThrow)
{
    EXPECT_THROW(parse({"p", "--k=abc"}).getInt("k", 0), InvalidArgument);
    EXPECT_THROW(parse({"p", "--x=1.2.3"}).getDouble("x", 0.0),
                 InvalidArgument);
}

TEST(CliTest, DoubleParsing)
{
    EXPECT_DOUBLE_EQ(parse({"p", "--x=2.5"}).getDouble("x", 0.0), 2.5);
    EXPECT_DOUBLE_EQ(parse({"p", "--x=-1e3"}).getDouble("x", 0.0),
                     -1000.0);
}

TEST(CliTest, BareDoubleDashThrows)
{
    EXPECT_THROW(parse({"p", "--"}), InvalidArgument);
}

TEST(CliTest, FlagFollowedByFlagIsBoolean)
{
    const auto cl = parse({"p", "--a", "--b=1"});
    EXPECT_TRUE(cl.getBool("a", false));
    EXPECT_EQ(cl.getInt("b", 0), 1);
}

TEST(CliTest, DurationBareNumberIsMillis)
{
    EXPECT_DOUBLE_EQ(
        parse({"p", "--t=250"}).getDurationMillis("t", 0.0), 250.0);
    EXPECT_DOUBLE_EQ(
        parse({"p", "--t=0"}).getDurationMillis("t", 7.0), 0.0);
}

TEST(CliTest, DurationSuffixes)
{
    EXPECT_DOUBLE_EQ(
        parse({"p", "--t=250ms"}).getDurationMillis("t", 0.0), 250.0);
    EXPECT_DOUBLE_EQ(
        parse({"p", "--t=2s"}).getDurationMillis("t", 0.0), 2000.0);
    EXPECT_DOUBLE_EQ(
        parse({"p", "--t=1.5s"}).getDurationMillis("t", 0.0), 1500.0);
    EXPECT_DOUBLE_EQ(
        parse({"p", "--t=1m"}).getDurationMillis("t", 0.0), 60000.0);
}

TEST(CliTest, DurationDefaultsWhenAbsent)
{
    EXPECT_DOUBLE_EQ(parse({"p"}).getDurationMillis("t", 123.0), 123.0);
}

TEST(CliTest, DurationMalformedThrows)
{
    EXPECT_THROW(parse({"p", "--t=abc"}).getDurationMillis("t", 0.0),
                 InvalidArgument);
    EXPECT_THROW(parse({"p", "--t=10h"}).getDurationMillis("t", 0.0),
                 InvalidArgument);
    EXPECT_THROW(parse({"p", "--t=2 s"}).getDurationMillis("t", 0.0),
                 InvalidArgument);
    EXPECT_THROW(parse({"p", "--t="}).getDurationMillis("t", 0.0),
                 InvalidArgument);
}

TEST(CliTest, EmptyArgvTolerated)
{
    const auto cl = CommandLine::parse(std::vector<std::string>{});
    EXPECT_EQ(cl.program(), "");
    EXPECT_TRUE(cl.positional().empty());
}

} // namespace
