/**
 * @file
 * Tests for the ASCII dendrogram rendering (Figures 4/6/8 equivalents).
 */

#include <gtest/gtest.h>

#include "src/cluster/agglomerative.h"
#include "src/cluster/render.h"
#include "src/util/error.h"

namespace {

using namespace hiermeans::cluster;
using hiermeans::InvalidArgument;
using hiermeans::linalg::Matrix;

Dendrogram
sample()
{
    std::vector<Merge> merges = {
        {0, 1, 1.0, 2}, {2, 3, 2.0, 2}, {4, 5, 5.0, 4}};
    return Dendrogram(4, std::move(merges));
}

const std::vector<std::string> kNames = {"alpha", "beta", "gamma",
                                         "delta"};

TEST(ClusterRenderTest, TreeShowsAllLeavesAndHeights)
{
    const std::string out = renderTree(sample(), kNames, "Tree");
    for (const auto &name : kNames)
        EXPECT_NE(out.find(name), std::string::npos) << name;
    EXPECT_NE(out.find("[d = 5.00]"), std::string::npos);
    EXPECT_NE(out.find("[d = 1.00]"), std::string::npos);
    EXPECT_NE(out.find("Tree"), std::string::npos);
}

TEST(ClusterRenderTest, SingleLeafTree)
{
    const Dendrogram d(1, {});
    const std::string out = renderTree(d, {"only"}, "T");
    EXPECT_NE(out.find("only"), std::string::npos);
}

TEST(ClusterRenderTest, CutAtDistanceNarration)
{
    const std::string out = renderCutAtDistance(sample(), kNames, 2.0);
    EXPECT_NE(out.find("merging distance 2.00 -> 2 clusters"),
              std::string::npos);
    EXPECT_NE(out.find("{alpha, beta}"), std::string::npos);
    EXPECT_NE(out.find("{gamma, delta}"), std::string::npos);
}

TEST(ClusterRenderTest, CutAtCountNarration)
{
    const std::string out = renderCutAtCount(sample(), kNames, 3);
    EXPECT_NE(out.find("3 clusters"), std::string::npos);
    EXPECT_NE(out.find("{gamma}"), std::string::npos);
}

TEST(ClusterRenderTest, MergeScheduleListsAllMerges)
{
    const std::string out = renderMergeSchedule(sample(), kNames);
    EXPECT_NE(out.find("{alpha} + {beta}"), std::string::npos);
    EXPECT_NE(out.find("{gamma} + {delta}"), std::string::npos);
    EXPECT_NE(out.find("{alpha, beta} + {gamma, delta}"),
              std::string::npos);
}

TEST(ClusterRenderTest, NameCountValidated)
{
    EXPECT_THROW(renderTree(sample(), {"a", "b"}, "T"), InvalidArgument);
    EXPECT_THROW(renderCutAtCount(sample(), {"a"}, 2), InvalidArgument);
    EXPECT_THROW(renderMergeSchedule(sample(), {}), InvalidArgument);
}

} // namespace
