/**
 * @file
 * Tests for consensus clustering across characterizations.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "src/core/consensus.h"
#include "src/util/error.h"

namespace {

using namespace hiermeans::core;
using hiermeans::InvalidArgument;
using hiermeans::scoring::Partition;

TEST(CoAssociationTest, HandComputed)
{
    // Two partitions over 3 items: {0,1}{2} and {0}{1,2}.
    const std::vector<Partition> parts = {
        Partition::fromGroups({{0, 1}, {2}}),
        Partition::fromGroups({{0}, {1, 2}}),
    };
    const auto co = coAssociation(parts);
    EXPECT_DOUBLE_EQ(co(0, 0), 1.0);
    EXPECT_DOUBLE_EQ(co(0, 1), 0.5); // together in one of two.
    EXPECT_DOUBLE_EQ(co(1, 2), 0.5);
    EXPECT_DOUBLE_EQ(co(0, 2), 0.0);
    EXPECT_DOUBLE_EQ(co(2, 0), 0.0); // symmetric.
}

TEST(CoAssociationTest, Validation)
{
    EXPECT_THROW(coAssociation({}), InvalidArgument);
    EXPECT_THROW(coAssociation(
                     {Partition::single(2), Partition::single(3)}),
                 InvalidArgument);
}

TEST(ConsensusTest, IdenticalInputsReproduceThePartition)
{
    const Partition p = Partition::fromGroups({{0, 1, 2}, {3, 4}});
    const ConsensusResult result =
        consensusCluster({p, p, p}, 2, 4);
    EXPECT_DOUBLE_EQ(result.unanimity, 1.0);
    // The consensus cut at k = 2 is exactly p.
    EXPECT_EQ(result.partitions.front(), p);
}

TEST(ConsensusTest, UnanimousPairsNeverSplitBeforeContestedOnes)
{
    // Items 0,1 always together; 2 joins them in only one view.
    const std::vector<Partition> parts = {
        Partition::fromGroups({{0, 1}, {2}, {3}}),
        Partition::fromGroups({{0, 1, 2}, {3}}),
        Partition::fromGroups({{0, 1}, {2, 3}}),
    };
    const ConsensusResult result = consensusCluster(parts, 2, 4);
    // At every consensus cut with k <= 3, 0 and 1 share a cluster.
    for (const Partition &p : result.partitions) {
        if (p.clusterCount() <= 3) {
            EXPECT_EQ(p.label(0), p.label(1)) << p.toString();
        }
    }
}

TEST(ConsensusTest, DisagreementLowersUnanimity)
{
    const std::vector<Partition> parts = {
        Partition::fromGroups({{0, 1}, {2}}),
        Partition::fromGroups({{0}, {1, 2}}),
    };
    const ConsensusResult result = consensusCluster(parts, 1, 3);
    EXPECT_LT(result.unanimity, 1.0);
    EXPECT_GT(result.unanimity, 0.0); // pair (0,2) is unanimous (never).
}

TEST(ConsensusTest, SweepShapesAndValidation)
{
    const Partition p = Partition::fromGroups({{0, 1}, {2, 3}});
    const ConsensusResult result = consensusCluster({p}, 1, 10);
    // Clamped to n = 4.
    EXPECT_EQ(result.partitions.size(), 4u);
    EXPECT_EQ(result.partitions.front().clusterCount(), 1u);
    EXPECT_EQ(result.partitions.back().clusterCount(), 4u);
    EXPECT_THROW(consensusCluster({p}, 3, 2), InvalidArgument);
}

TEST(ConsensusTest, MergesHappenAtDisagreementFractions)
{
    // With three views, co-association values are multiples of 1/3 so
    // merge heights are multiples of 1/3 too.
    const std::vector<Partition> parts = {
        Partition::fromGroups({{0, 1}, {2}, {3}}),
        Partition::fromGroups({{0, 1, 2}, {3}}),
        Partition::fromGroups({{0, 1}, {2, 3}}),
    };
    const ConsensusResult result = consensusCluster(parts, 1, 4);
    for (double h : result.dendrogram.heights()) {
        const double scaled = h * 3.0;
        EXPECT_NEAR(scaled, std::round(scaled), 1e-9) << h;
    }
}

} // namespace
