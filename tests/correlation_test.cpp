/**
 * @file
 * Tests for correlation coefficients.
 */

#include <gtest/gtest.h>

#include "src/stats/correlation.h"
#include "src/util/error.h"

namespace {

using hiermeans::DomainError;
using hiermeans::InvalidArgument;
using hiermeans::stats::pearson;
using hiermeans::stats::spearman;

TEST(PearsonTest, PerfectCorrelation)
{
    EXPECT_NEAR(pearson({1.0, 2.0, 3.0}, {2.0, 4.0, 6.0}), 1.0, 1e-12);
    EXPECT_NEAR(pearson({1.0, 2.0, 3.0}, {6.0, 4.0, 2.0}), -1.0, 1e-12);
}

TEST(PearsonTest, ShiftAndScaleInvariant)
{
    const std::vector<double> x = {1.0, 4.0, 2.0, 8.0};
    const std::vector<double> y = {0.5, 2.5, 1.0, 3.0};
    const double base = pearson(x, y);
    std::vector<double> x2 = x;
    for (double &v : x2)
        v = 3.0 * v + 10.0;
    EXPECT_NEAR(pearson(x2, y), base, 1e-12);
}

TEST(PearsonTest, UncorrelatedNearZero)
{
    // Orthogonal pattern.
    EXPECT_NEAR(pearson({1.0, -1.0, 1.0, -1.0}, {1.0, 1.0, -1.0, -1.0}),
                0.0, 1e-12);
}

TEST(PearsonTest, Validation)
{
    EXPECT_THROW(pearson({1.0}, {1.0}), InvalidArgument);
    EXPECT_THROW(pearson({1.0, 2.0}, {1.0}), InvalidArgument);
    EXPECT_THROW(pearson({1.0, 1.0}, {1.0, 2.0}), DomainError);
}

TEST(SpearmanTest, MonotoneNonlinearIsPerfect)
{
    // y = x^3 is monotone: Spearman 1 even though Pearson < 1.
    const std::vector<double> x = {1.0, 2.0, 3.0, 4.0, 5.0};
    const std::vector<double> y = {1.0, 8.0, 27.0, 64.0, 125.0};
    EXPECT_NEAR(spearman(x, y), 1.0, 1e-12);
    EXPECT_LT(pearson(x, y), 1.0);
}

TEST(SpearmanTest, HandlesTiesViaAverageRanks)
{
    const std::vector<double> x = {1.0, 1.0, 2.0};
    const std::vector<double> y = {3.0, 3.0, 5.0};
    EXPECT_NEAR(spearman(x, y), 1.0, 1e-12);
}

} // namespace
