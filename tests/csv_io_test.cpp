/**
 * @file
 * Tests for the CSV interchange used by the hmscore tool.
 */

#include <gtest/gtest.h>

#include <string>

#include "src/core/csv_io.h"
#include "src/util/csv.h"
#include "src/scoring/score_report.h"
#include "src/util/error.h"
#include "src/workload/workload_profile.h"

namespace {

using namespace hiermeans::core;
using hiermeans::DomainError;
using hiermeans::InvalidArgument;

const char kScores[] =
    "workload,X,Y\n"
    "alpha,2.5,1.5\n"
    "beta,1.2,1.1\n"
    "gamma,0.8,1.4\n";

const char kFeatures[] =
    "workload,ipc,missrate\n"
    "alpha,1.5,0.02\n"
    "beta,0.9,0.15\n"
    "gamma,1.1,0.30\n";

TEST(ScoresCsvTest, ParsesShapeAndValues)
{
    const ScoresCsv s = parseScoresCsv(kScores);
    EXPECT_EQ(s.workloads,
              (std::vector<std::string>{"alpha", "beta", "gamma"}));
    EXPECT_EQ(s.machines, (std::vector<std::string>{"X", "Y"}));
    EXPECT_DOUBLE_EQ(s.scores(0, 0), 2.5);
    EXPECT_DOUBLE_EQ(s.scores(2, 1), 1.4);
}

TEST(ScoresCsvTest, MachineScoresByName)
{
    const ScoresCsv s = parseScoresCsv(kScores);
    EXPECT_EQ(s.machineScores("Y"),
              (std::vector<double>{1.5, 1.1, 1.4}));
    EXPECT_THROW(s.machineScores("Z"), InvalidArgument);
}

TEST(ScoresCsvTest, RejectsBadDocuments)
{
    // Too few rows.
    EXPECT_THROW(parseScoresCsv("workload,X,Y\nw,1,2\n"),
                 InvalidArgument);
    // Ragged row.
    EXPECT_THROW(
        parseScoresCsv("workload,X,Y\na,1,2\nb,3\nc,4,5\n"),
        InvalidArgument);
    // Single machine column.
    EXPECT_THROW(parseScoresCsv("workload,X\na,1\nb,2\n"),
                 InvalidArgument);
    // Duplicate workload.
    EXPECT_THROW(
        parseScoresCsv("workload,X,Y\na,1,2\na,3,4\nc,5,6\n"),
        InvalidArgument);
    // Non-numeric score.
    EXPECT_THROW(
        parseScoresCsv("workload,X,Y\na,1,2\nb,oops,4\nc,5,6\n"),
        InvalidArgument);
    // Non-positive score.
    EXPECT_THROW(
        parseScoresCsv("workload,X,Y\na,1,2\nb,0,4\nc,5,6\n"),
        DomainError);
}

TEST(FeaturesCsvTest, ParsesAndAllowsAnyValues)
{
    const FeaturesCsv f = parseFeaturesCsv(kFeatures);
    EXPECT_EQ(f.features, (std::vector<std::string>{"ipc", "missrate"}));
    EXPECT_DOUBLE_EQ(f.values(1, 1), 0.15);
    // Negative/zero values fine for features.
    EXPECT_NO_THROW(parseFeaturesCsv(
        "workload,f\na,-1.0\nb,0.0\n"));
}

TEST(AlignmentTest, DetectsMismatches)
{
    const ScoresCsv s = parseScoresCsv(kScores);
    const FeaturesCsv f = parseFeaturesCsv(kFeatures);
    EXPECT_NO_THROW(requireAlignedWorkloads(s, f));

    const FeaturesCsv reordered = parseFeaturesCsv(
        "workload,ipc\nbeta,1\nalpha,2\ngamma,3\n");
    EXPECT_THROW(requireAlignedWorkloads(s, reordered),
                 InvalidArgument);
    const FeaturesCsv fewer =
        parseFeaturesCsv("workload,ipc\nalpha,1\nbeta,2\n");
    EXPECT_THROW(requireAlignedWorkloads(s, fewer), InvalidArgument);
}

TEST(ScoreReportCsvTest, RoundTripThroughGenericParser)
{
    using hiermeans::scoring::buildScoreReport;
    using hiermeans::scoring::Partition;
    const std::vector<double> a = {2.0, 4.0, 8.0};
    const std::vector<double> b = {1.0, 2.0, 4.0};
    const auto report = buildScoreReport(
        hiermeans::stats::MeanKind::Geometric, a, b,
        {Partition::fromGroups({{0, 1}, {2}}), Partition::discrete(3)});
    const std::string csv = scoreReportToCsv(report, "X", "Y");
    const auto doc = hiermeans::util::parseCsv(csv);
    ASSERT_EQ(doc.rows.size(), 4u); // header + 2 rows + plain.
    EXPECT_EQ(doc.rows[0][0], "clusters");
    EXPECT_EQ(doc.rows[1][0], "2");
    EXPECT_EQ(doc.rows[3][0], "plain");
    // Ratio column round-trips numerically.
    EXPECT_NEAR(std::stod(doc.rows[1][3]), report.rows[0].ratio, 1e-6);
}

TEST(PartitionCsvTest, RoundTrip)
{
    using hiermeans::scoring::Partition;
    const std::vector<std::string> workloads = {"a", "b", "c", "d"};
    const Partition p = Partition::fromGroups({{0, 2}, {1}, {3}});
    const std::string csv = partitionToCsv(p, workloads);
    const Partition back = parsePartitionCsv(csv, workloads);
    EXPECT_EQ(back, p);
}

TEST(PartitionCsvTest, FileOrderIsFree)
{
    using hiermeans::scoring::Partition;
    const std::string csv =
        "workload,cluster\n"
        "c,7\n"
        "a,7\n"
        "b,3\n";
    const Partition p =
        parsePartitionCsv(csv, {"a", "b", "c"});
    EXPECT_EQ(p, Partition::fromGroups({{0, 2}, {1}}));
}

TEST(PartitionCsvTest, Validation)
{
    const std::vector<std::string> workloads = {"a", "b"};
    // Missing workload.
    EXPECT_THROW(
        parsePartitionCsv("workload,cluster\na,0\n", workloads),
        InvalidArgument);
    // Extra workload.
    EXPECT_THROW(parsePartitionCsv(
                     "workload,cluster\na,0\nb,0\nz,1\n", workloads),
                 InvalidArgument);
    // Duplicate.
    EXPECT_THROW(parsePartitionCsv(
                     "workload,cluster\na,0\na,1\n", workloads),
                 InvalidArgument);
    // Non-integer cluster.
    EXPECT_THROW(parsePartitionCsv(
                     "workload,cluster\na,x\nb,0\n", workloads),
                 InvalidArgument);
    // Negative cluster.
    EXPECT_THROW(parsePartitionCsv(
                     "workload,cluster\na,-1\nb,0\n", workloads),
                 InvalidArgument);
    // Wrong width.
    EXPECT_THROW(parsePartitionCsv(
                     "workload,cluster,extra\na,0,1\nb,0,1\n",
                     workloads),
                 InvalidArgument);
    // Size mismatch against the scoring partition.
    using hiermeans::scoring::Partition;
    EXPECT_THROW(partitionToCsv(Partition::single(3), workloads),
                 InvalidArgument);
}

TEST(PartitionCsvTest, PaperSuiteReferenceDistribution)
{
    // The diagnosed reference distribution for the paper suite
    // round-trips and preserves the SciMark2 cluster.
    using hiermeans::scoring::Partition;
    const auto names = hiermeans::workload::paperWorkloadNames();
    const Partition reference = Partition::fromGroups(
        {{0}, {1}, {2}, {3}, {4}, {5, 6, 7, 8, 9}, {10}, {11}, {12}});
    const Partition back =
        parsePartitionCsv(partitionToCsv(reference, names), names);
    EXPECT_EQ(back, reference);
    EXPECT_EQ(back.members(5),
              (std::vector<std::size_t>{5, 6, 7, 8, 9}));
}

} // namespace
