/**
 * @file
 * Tests for CSV serialization and parsing.
 */

#include <gtest/gtest.h>

#include "src/util/csv.h"
#include "src/util/error.h"

namespace {

using hiermeans::util::CsvDocument;
using hiermeans::util::csvEscape;
using hiermeans::util::parseCsv;
using hiermeans::util::writeCsv;

TEST(CsvTest, EscapeOnlyWhenNeeded)
{
    EXPECT_EQ(csvEscape("plain"), "plain");
    EXPECT_EQ(csvEscape("with,comma"), "\"with,comma\"");
    EXPECT_EQ(csvEscape("with\"quote"), "\"with\"\"quote\"");
    EXPECT_EQ(csvEscape("with\nnewline"), "\"with\nnewline\"");
}

TEST(CsvTest, WriteSimpleDocument)
{
    CsvDocument doc;
    doc.rows = {{"a", "b"}, {"1", "2"}};
    EXPECT_EQ(writeCsv(doc), "a,b\n1,2\n");
}

TEST(CsvTest, ParseSimpleDocument)
{
    const CsvDocument doc = parseCsv("a,b\n1,2\n");
    ASSERT_EQ(doc.size(), 2u);
    EXPECT_EQ(doc.rows[0], (std::vector<std::string>{"a", "b"}));
    EXPECT_EQ(doc.rows[1], (std::vector<std::string>{"1", "2"}));
}

TEST(CsvTest, ParseQuotedFields)
{
    const CsvDocument doc =
        parseCsv("\"x,y\",\"he said \"\"hi\"\"\"\nplain,2\n");
    ASSERT_EQ(doc.size(), 2u);
    EXPECT_EQ(doc.rows[0][0], "x,y");
    EXPECT_EQ(doc.rows[0][1], "he said \"hi\"");
}

TEST(CsvTest, ParseCrLf)
{
    const CsvDocument doc = parseCsv("a,b\r\nc,d\r\n");
    ASSERT_EQ(doc.size(), 2u);
    EXPECT_EQ(doc.rows[1][1], "d");
}

TEST(CsvTest, MissingTrailingNewline)
{
    const CsvDocument doc = parseCsv("a,b\nc,d");
    ASSERT_EQ(doc.size(), 2u);
    EXPECT_EQ(doc.rows[1], (std::vector<std::string>{"c", "d"}));
}

TEST(CsvTest, EmptyFieldsPreserved)
{
    const CsvDocument doc = parseCsv("a,,c\n");
    ASSERT_EQ(doc.size(), 1u);
    EXPECT_EQ(doc.rows[0], (std::vector<std::string>{"a", "", "c"}));
}

TEST(CsvTest, EmptyInputYieldsNoRows)
{
    EXPECT_TRUE(parseCsv("").empty());
}

TEST(CsvTest, UnterminatedQuoteThrows)
{
    EXPECT_THROW(parseCsv("\"open,1\n"), hiermeans::InvalidArgument);
}

TEST(CsvTest, RoundTripWithSpecials)
{
    CsvDocument doc;
    doc.rows = {{"name", "value"},
                {"comma,field", "quote\"field"},
                {"multi\nline", ""}};
    const CsvDocument parsed = parseCsv(writeCsv(doc));
    ASSERT_EQ(parsed.size(), doc.size());
    for (std::size_t r = 0; r < doc.rows.size(); ++r)
        EXPECT_EQ(parsed.rows[r], doc.rows[r]) << "row " << r;
}

} // namespace
