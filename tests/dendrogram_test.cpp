/**
 * @file
 * Tests for the dendrogram structure and its cuts.
 */

#include <gtest/gtest.h>

#include <algorithm>

#include "src/cluster/agglomerative.h"
#include "src/cluster/dendrogram.h"
#include "src/util/error.h"

namespace {

using namespace hiermeans::cluster;
using hiermeans::InvalidArgument;
using hiermeans::linalg::Matrix;
using hiermeans::scoring::Partition;

/**
 * Fixed dendrogram over 4 leaves:
 *   merge 0: leaves 0, 1 at h=1 -> node 4
 *   merge 1: leaves 2, 3 at h=2 -> node 5
 *   merge 2: nodes 4, 5 at h=5 -> node 6
 */
Dendrogram
fixedDendrogram()
{
    std::vector<Merge> merges = {
        {0, 1, 1.0, 2}, {2, 3, 2.0, 2}, {4, 5, 5.0, 4}};
    return Dendrogram(4, std::move(merges));
}

TEST(DendrogramTest, ConstructionValidation)
{
    EXPECT_THROW(Dendrogram(0, {}), InvalidArgument);
    // Wrong merge count.
    EXPECT_THROW(Dendrogram(3, {{0, 1, 1.0, 2}}), InvalidArgument);
    // Self-merge.
    EXPECT_THROW(Dendrogram(2, {{0, 0, 1.0, 2}}), InvalidArgument);
    // Forward reference to a not-yet-created node.
    EXPECT_THROW(Dendrogram(3, {{0, 4, 1.0, 2}, {2, 3, 2.0, 3}}),
                 InvalidArgument);
    // Node consumed twice.
    EXPECT_THROW(Dendrogram(4, {{0, 1, 1.0, 2},
                                {0, 2, 2.0, 2},
                                {3, 5, 3.0, 4}}),
                 InvalidArgument);
    // Negative height.
    EXPECT_THROW(Dendrogram(2, {{0, 1, -1.0, 2}}), InvalidArgument);
    // A single leaf with no merges is valid.
    EXPECT_NO_THROW(Dendrogram(1, {}));
}

TEST(DendrogramTest, LeavesUnder)
{
    const Dendrogram d = fixedDendrogram();
    EXPECT_EQ(d.leavesUnder(0), (std::vector<std::size_t>{0}));
    EXPECT_EQ(d.leavesUnder(4), (std::vector<std::size_t>{0, 1}));
    EXPECT_EQ(d.leavesUnder(6), (std::vector<std::size_t>{0, 1, 2, 3}));
    EXPECT_THROW(d.leavesUnder(7), InvalidArgument);
}

TEST(DendrogramTest, CutAtCount)
{
    const Dendrogram d = fixedDendrogram();
    EXPECT_EQ(d.cutAtCount(1), Partition::single(4));
    EXPECT_EQ(d.cutAtCount(2),
              Partition::fromGroups({{0, 1}, {2, 3}}));
    EXPECT_EQ(d.cutAtCount(3),
              Partition::fromGroups({{0, 1}, {2}, {3}}));
    EXPECT_EQ(d.cutAtCount(4), Partition::discrete(4));
    EXPECT_THROW(d.cutAtCount(0), InvalidArgument);
    EXPECT_THROW(d.cutAtCount(5), InvalidArgument);
}

TEST(DendrogramTest, CutAtDistance)
{
    const Dendrogram d = fixedDendrogram();
    EXPECT_EQ(d.cutAtDistance(0.5), Partition::discrete(4));
    EXPECT_EQ(d.cutAtDistance(1.0),
              Partition::fromGroups({{0, 1}, {2}, {3}}));
    EXPECT_EQ(d.cutAtDistance(2.5),
              Partition::fromGroups({{0, 1}, {2, 3}}));
    EXPECT_EQ(d.cutAtDistance(5.0), Partition::single(4));
    EXPECT_EQ(d.clusterCountAtDistance(1.5), 3u);
}

TEST(DendrogramTest, HeightsAndMonotonicity)
{
    const Dendrogram d = fixedDendrogram();
    EXPECT_EQ(d.heights(), (std::vector<double>{1.0, 2.0, 5.0}));
    EXPECT_TRUE(d.heightsMonotone());

    std::vector<Merge> inverted = {
        {0, 1, 3.0, 2}, {2, 3, 2.0, 2}, {4, 5, 5.0, 4}};
    const Dendrogram bad(4, std::move(inverted));
    EXPECT_FALSE(bad.heightsMonotone());
}

TEST(DendrogramTest, PartitionSweepRange)
{
    const Dendrogram d = fixedDendrogram();
    const auto sweep = d.partitionSweep(2, 8); // clamped to 4.
    ASSERT_EQ(sweep.size(), 3u);
    EXPECT_EQ(sweep[0].clusterCount(), 2u);
    EXPECT_EQ(sweep[2].clusterCount(), 4u);
    EXPECT_THROW(d.partitionSweep(5, 8), InvalidArgument);
}

TEST(DendrogramTest, CopheneticDistances)
{
    const Dendrogram d = fixedDendrogram();
    const Matrix c = d.copheneticDistances();
    EXPECT_DOUBLE_EQ(c(0, 1), 1.0);
    EXPECT_DOUBLE_EQ(c(2, 3), 2.0);
    EXPECT_DOUBLE_EQ(c(0, 2), 5.0);
    EXPECT_DOUBLE_EQ(c(1, 3), 5.0);
    EXPECT_DOUBLE_EQ(c(0, 0), 0.0);
    EXPECT_DOUBLE_EQ(c(2, 0), c(0, 2));
}

TEST(DendrogramTest, CutsNestHierarchically)
{
    // Every cluster at k+1 must be contained in a cluster at k.
    const Matrix points = Matrix::fromRows(
        {{0.0}, {0.5}, {3.0}, {3.2}, {9.0}, {9.4}, {20.0}});
    const Dendrogram d = agglomerate(points);
    for (std::size_t k = 1; k < points.rows(); ++k) {
        const Partition coarse = d.cutAtCount(k);
        const Partition fine = d.cutAtCount(k + 1);
        for (const auto &cluster : fine.groups()) {
            const std::size_t target = coarse.label(cluster.front());
            for (std::size_t member : cluster)
                EXPECT_EQ(coarse.label(member), target);
        }
    }
}

} // namespace
