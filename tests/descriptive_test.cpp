/**
 * @file
 * Tests for descriptive statistics.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "src/stats/descriptive.h"
#include "src/util/error.h"

namespace {

using namespace hiermeans::stats;
using hiermeans::InvalidArgument;

TEST(DescriptiveTest, SummaryHandComputed)
{
    const Summary s = summarize({2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0});
    EXPECT_EQ(s.count, 8u);
    EXPECT_DOUBLE_EQ(s.mean, 5.0);
    EXPECT_NEAR(s.variance, 32.0 / 7.0, 1e-12); // n-1 denominator.
    EXPECT_DOUBLE_EQ(s.min, 2.0);
    EXPECT_DOUBLE_EQ(s.max, 9.0);
    EXPECT_DOUBLE_EQ(s.median, 4.5);
}

TEST(DescriptiveTest, SingleElement)
{
    const Summary s = summarize({3.0});
    EXPECT_DOUBLE_EQ(s.variance, 0.0);
    EXPECT_DOUBLE_EQ(s.median, 3.0);
    EXPECT_THROW(summarize({}), InvalidArgument);
}

TEST(DescriptiveTest, MedianOddEven)
{
    EXPECT_DOUBLE_EQ(median({3.0, 1.0, 2.0}), 2.0);
    EXPECT_DOUBLE_EQ(median({4.0, 1.0, 2.0, 3.0}), 2.5);
}

TEST(DescriptiveTest, QuantileInterpolates)
{
    const std::vector<double> v = {0.0, 10.0};
    EXPECT_DOUBLE_EQ(quantile(v, 0.0), 0.0);
    EXPECT_DOUBLE_EQ(quantile(v, 1.0), 10.0);
    EXPECT_DOUBLE_EQ(quantile(v, 0.25), 2.5);
    EXPECT_DOUBLE_EQ(quantile({5.0}, 0.9), 5.0);
    EXPECT_THROW(quantile(v, 1.5), InvalidArgument);
}

TEST(DescriptiveTest, CoefficientOfVariation)
{
    EXPECT_NEAR(coefficientOfVariation({2.0, 4.0}),
                std::sqrt(2.0) / 3.0, 1e-12);
    EXPECT_THROW(coefficientOfVariation({-1.0, 1.0}), InvalidArgument);
}

TEST(DescriptiveTest, RanksWithoutTies)
{
    EXPECT_EQ(ranks({30.0, 10.0, 20.0}),
              (std::vector<double>{3.0, 1.0, 2.0}));
}

TEST(DescriptiveTest, RanksAverageTies)
{
    // Values 5, 5 occupy ranks 1 and 2 -> each gets 1.5.
    EXPECT_EQ(ranks({5.0, 5.0, 9.0}),
              (std::vector<double>{1.5, 1.5, 3.0}));
}

TEST(DescriptiveTest, SampleVarianceMatchesStddev)
{
    const std::vector<double> v = {1.0, 2.0, 3.0, 4.0};
    EXPECT_NEAR(sampleStddev(v) * sampleStddev(v), sampleVariance(v),
                1e-12);
    EXPECT_DOUBLE_EQ(sampleVariance({7.0}), 0.0);
}

} // namespace
