/**
 * @file
 * Tests for distance metrics.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "src/linalg/distance.h"
#include "src/util/error.h"

namespace {

using namespace hiermeans::linalg;
using hiermeans::InvalidArgument;

TEST(DistanceTest, EuclideanHandComputed)
{
    EXPECT_DOUBLE_EQ(euclidean({0.0, 0.0}, {3.0, 4.0}), 5.0);
    EXPECT_DOUBLE_EQ(squaredEuclidean({0.0, 0.0}, {3.0, 4.0}), 25.0);
    EXPECT_DOUBLE_EQ(euclidean({1.0}, {1.0}), 0.0);
}

TEST(DistanceTest, ManhattanAndChebyshev)
{
    EXPECT_DOUBLE_EQ(manhattan({1.0, -1.0}, {4.0, 3.0}), 7.0);
    EXPECT_DOUBLE_EQ(chebyshev({1.0, -1.0}, {4.0, 3.0}), 4.0);
}

TEST(DistanceTest, CosineCases)
{
    EXPECT_NEAR(cosine({1.0, 0.0}, {0.0, 1.0}), 1.0, 1e-12);
    EXPECT_NEAR(cosine({1.0, 1.0}, {2.0, 2.0}), 0.0, 1e-12);
    EXPECT_NEAR(cosine({1.0, 0.0}, {-1.0, 0.0}), 2.0, 1e-12);
    EXPECT_DOUBLE_EQ(cosine({0.0, 0.0}, {0.0, 0.0}), 0.0);
    EXPECT_DOUBLE_EQ(cosine({0.0, 0.0}, {1.0, 0.0}), 1.0);
}

TEST(DistanceTest, SizeMismatchThrows)
{
    EXPECT_THROW(euclidean({1.0}, {1.0, 2.0}), InvalidArgument);
    EXPECT_THROW(manhattan({1.0}, {1.0, 2.0}), InvalidArgument);
}

TEST(DistanceTest, DispatchAgreesWithDirect)
{
    const Vector a = {1.0, 2.0, 3.0};
    const Vector b = {-1.0, 0.5, 2.0};
    EXPECT_DOUBLE_EQ(distance(Metric::Euclidean, a, b), euclidean(a, b));
    EXPECT_DOUBLE_EQ(distance(Metric::Manhattan, a, b), manhattan(a, b));
    EXPECT_DOUBLE_EQ(distance(Metric::Chebyshev, a, b), chebyshev(a, b));
    EXPECT_DOUBLE_EQ(distance(Metric::Cosine, a, b), cosine(a, b));
    EXPECT_DOUBLE_EQ(distance(Metric::SquaredEuclidean, a, b),
                     squaredEuclidean(a, b));
}

TEST(DistanceTest, MetricNamesRoundTrip)
{
    for (Metric m : {Metric::Euclidean, Metric::SquaredEuclidean,
                     Metric::Manhattan, Metric::Chebyshev,
                     Metric::Cosine}) {
        EXPECT_EQ(parseMetric(metricName(m)), m);
    }
    EXPECT_EQ(parseMetric("L2"), Metric::Euclidean);
    EXPECT_THROW(parseMetric("hamming"), InvalidArgument);
}

TEST(DistanceTest, PairwiseMatrixProperties)
{
    const Matrix points =
        Matrix::fromRows({{0.0, 0.0}, {3.0, 4.0}, {6.0, 8.0}});
    const Matrix d = pairwiseDistances(points);
    EXPECT_EQ(d.rows(), 3u);
    EXPECT_EQ(d.cols(), 3u);
    for (std::size_t i = 0; i < 3; ++i)
        EXPECT_DOUBLE_EQ(d(i, i), 0.0);
    EXPECT_DOUBLE_EQ(d(0, 1), 5.0);
    EXPECT_DOUBLE_EQ(d(1, 0), 5.0);
    EXPECT_DOUBLE_EQ(d(0, 2), 10.0);
}

TEST(DistanceTest, TriangleInequalityForMetricDistances)
{
    const Vector a = {1.0, 2.0}, b = {4.0, -1.0}, c = {-2.0, 0.5};
    for (Metric m : {Metric::Euclidean, Metric::Manhattan,
                     Metric::Chebyshev}) {
        EXPECT_LE(distance(m, a, c),
                  distance(m, a, b) + distance(m, b, c) + 1e-12);
    }
}

} // namespace
