/**
 * Drift metrics and the hysteresis machine: severity classification
 * against both threshold rungs, the churn/stability/QE-ratio math on
 * hand-built codebooks (including the churn-vs-ARI distinction: a
 * relabeled partition churns but stays stable), and every transition
 * of the fresh -> drifting -> stale machine — severe jumps straight
 * up, step-downs need a full calm streak, and a single mild tick
 * resets the streak.
 */

#include <cmath>
#include <gtest/gtest.h>

#include "src/drift/detector.h"
#include "src/drift/online_som.h"
#include "src/util/error.h"

namespace {

using namespace hiermeans;
using namespace hiermeans::drift;
using hiermeans::linalg::Matrix;
using hiermeans::linalg::Vector;

DriftMetrics
metrics(double churn, double stability, double qe_ratio)
{
    DriftMetrics m;
    m.churn = churn;
    m.stability = stability;
    m.qeRatio = qe_ratio;
    m.window = 16;
    return m;
}

TEST(DriftStateTest, NamesRoundTrip)
{
    EXPECT_STREQ(driftStateName(DriftState::Fresh), "fresh");
    EXPECT_STREQ(driftStateName(DriftState::Drifting), "drifting");
    EXPECT_STREQ(driftStateName(DriftState::Stale), "stale");
    EXPECT_EQ(parseDriftState("fresh"), DriftState::Fresh);
    EXPECT_EQ(parseDriftState("drifting"), DriftState::Drifting);
    EXPECT_EQ(parseDriftState("stale"), DriftState::Stale);
    EXPECT_THROW(parseDriftState("frozen"), InvalidArgument);
}

TEST(ClassifySeverityTest, EachMetricTriggersItsRung)
{
    const DriftThresholds t; // 0.25/0.55, 0.7/0.3, 1.6/2.5
    EXPECT_EQ(classifySeverity(metrics(0.0, 1.0, 1.0), t),
              DriftSeverity::Calm);
    // Churn rungs (thresholds are inclusive).
    EXPECT_EQ(classifySeverity(metrics(0.25, 1.0, 1.0), t),
              DriftSeverity::Mild);
    EXPECT_EQ(classifySeverity(metrics(0.55, 1.0, 1.0), t),
              DriftSeverity::Severe);
    // Stability rungs (low ARI is bad).
    EXPECT_EQ(classifySeverity(metrics(0.0, 0.7, 1.0), t),
              DriftSeverity::Mild);
    EXPECT_EQ(classifySeverity(metrics(0.0, 0.3, 1.0), t),
              DriftSeverity::Severe);
    // QE-ratio rungs.
    EXPECT_EQ(classifySeverity(metrics(0.0, 1.0, 1.6), t),
              DriftSeverity::Mild);
    EXPECT_EQ(classifySeverity(metrics(0.0, 1.0, 2.5), t),
              DriftSeverity::Severe);
    // One severe metric dominates two calm ones.
    EXPECT_EQ(classifySeverity(metrics(0.6, 1.0, 1.0), t),
              DriftSeverity::Severe);
    EXPECT_STREQ(driftSeverityName(DriftSeverity::Mild), "mild");
}

TEST(ComputeDriftMetricsTest, IdenticalCodebooksAreCalm)
{
    const Matrix published = Matrix::fromRows({{0.0, 0.0}, {10.0, 10.0}});
    const std::vector<Vector> window = {
        {0.1, 0.2}, {9.8, 10.1}, {0.0, -0.1}, {10.2, 9.9}};
    const double baseline = quantizationError(published, window);
    const DriftMetrics m =
        computeDriftMetrics(published, published, window, baseline);
    EXPECT_EQ(m.window, 4u);
    EXPECT_DOUBLE_EQ(m.churn, 0.0);
    EXPECT_DOUBLE_EQ(m.stability, 1.0);
    EXPECT_NEAR(m.qeRatio, 1.0, 1e-12);
}

TEST(ComputeDriftMetricsTest, RelabeledPartitionChurnsButStaysStable)
{
    // The online codebook is the published one with the unit rows
    // swapped: every observation's BMU index changes (churn 1.0) but
    // the induced grouping is identical, so the ARI stays 1.0 — the
    // two metrics measure genuinely different things.
    const Matrix published = Matrix::fromRows({{0.0, 0.0}, {10.0, 10.0}});
    const Matrix swapped = Matrix::fromRows({{10.0, 10.0}, {0.0, 0.0}});
    const std::vector<Vector> window = {
        {0.1, 0.2}, {9.8, 10.1}, {0.0, -0.1}, {10.2, 9.9}};
    const double baseline = quantizationError(published, window);
    const DriftMetrics m =
        computeDriftMetrics(published, swapped, window, baseline);
    EXPECT_DOUBLE_EQ(m.churn, 1.0);
    EXPECT_DOUBLE_EQ(m.stability, 1.0);
}

TEST(ComputeDriftMetricsTest, MeanShiftInflatesTheQeRatio)
{
    // Published codebook fits data near the origin; the live window
    // has shifted far away. Assignments cannot churn (the online map
    // is the same matrix), but the QE ratio explodes — the early
    // tripwire for a mean shift.
    const Matrix published = Matrix::fromRows({{0.0, 0.0}, {1.0, 1.0}});
    const std::vector<Vector> at_publish = {{0.1, 0.0}, {0.9, 1.1}};
    const std::vector<Vector> shifted = {{8.0, 8.0}, {9.0, 9.0}};
    const double baseline = quantizationError(published, at_publish);
    const DriftMetrics m =
        computeDriftMetrics(published, published, shifted, baseline);
    EXPECT_DOUBLE_EQ(m.churn, 0.0);
    EXPECT_GT(m.qeRatio, 2.5) << "must clear the stale rung";
}

TEST(ComputeDriftMetricsTest, DegenerateWindowsAreHandled)
{
    const Matrix codebook = Matrix::fromRows({{0.0, 0.0}, {1.0, 1.0}});
    // Empty window: identity metrics, nothing to score.
    const DriftMetrics empty =
        computeDriftMetrics(codebook, codebook, {}, 1.0);
    EXPECT_EQ(empty.window, 0u);
    EXPECT_DOUBLE_EQ(empty.churn, 0.0);
    EXPECT_DOUBLE_EQ(empty.qeRatio, 1.0);

    // A zero baseline with zero window error is calm (ratio 1)...
    const std::vector<Vector> exact = {{0.0, 0.0}, {1.0, 1.0}};
    EXPECT_DOUBLE_EQ(
        computeDriftMetrics(codebook, codebook, exact, 0.0).qeRatio, 1.0);
    // ...but any live error over a dead baseline is capped, not inf.
    const std::vector<Vector> off = {{5.0, 5.0}};
    const double capped =
        computeDriftMetrics(codebook, codebook, off, 0.0).qeRatio;
    EXPECT_GT(capped, 1e5);
    EXPECT_TRUE(std::isfinite(capped));
}

TEST(DriftDetectorTest, SevereJumpsStraightToStale)
{
    DriftDetector detector;
    EXPECT_EQ(detector.state(), DriftState::Fresh);
    EXPECT_EQ(detector.tick(metrics(0.9, 0.1, 5.0)), DriftState::Stale);
    EXPECT_EQ(detector.ticks(), 1u);
    EXPECT_EQ(detector.calmStreak(), 0u);
}

TEST(DriftDetectorTest, MildDegradesFreshAndHoldsElsewhere)
{
    DriftDetector detector;
    EXPECT_EQ(detector.tick(metrics(0.3, 1.0, 1.0)),
              DriftState::Drifting);
    // Mild keeps a drifting suite drifting — it never escalates to
    // stale on its own, however long it lasts.
    for (int i = 0; i < 5; ++i)
        EXPECT_EQ(detector.tick(metrics(0.3, 1.0, 1.0)),
                  DriftState::Drifting);
}

TEST(DriftDetectorTest, CalmStreakStepsDownOneLevelAtATime)
{
    DriftThresholds t;
    t.calmTicks = 2;
    DriftDetector detector(t);
    detector.tick(metrics(0.9, 0.1, 5.0)); // -> stale
    const DriftMetrics calm = metrics(0.0, 1.0, 1.0);
    EXPECT_EQ(detector.tick(calm), DriftState::Stale)
        << "one calm tick is not a streak";
    EXPECT_EQ(detector.calmStreak(), 1u);
    EXPECT_EQ(detector.tick(calm), DriftState::Drifting)
        << "a full streak steps down exactly one level";
    EXPECT_EQ(detector.calmStreak(), 0u);
    EXPECT_EQ(detector.tick(calm), DriftState::Drifting);
    EXPECT_EQ(detector.tick(calm), DriftState::Fresh);
    // Fresh stays fresh under calm, streak untouched.
    EXPECT_EQ(detector.tick(calm), DriftState::Fresh);
    EXPECT_EQ(detector.calmStreak(), 0u);
}

TEST(DriftDetectorTest, AMildTickResetsTheCalmStreak)
{
    DriftThresholds t;
    t.calmTicks = 2;
    DriftDetector detector(t);
    detector.tick(metrics(0.9, 0.1, 5.0)); // -> stale
    detector.tick(metrics(0.0, 1.0, 1.0)); // streak 1
    detector.tick(metrics(0.3, 1.0, 1.0)); // mild: streak back to 0
    EXPECT_EQ(detector.state(), DriftState::Stale);
    EXPECT_EQ(detector.calmStreak(), 0u);
    detector.tick(metrics(0.0, 1.0, 1.0));
    EXPECT_EQ(detector.state(), DriftState::Stale)
        << "the interrupted streak must restart from scratch";
}

TEST(DriftDetectorTest, RestoreReinstallsTheMachinePosition)
{
    DriftDetector detector;
    detector.restore(DriftState::Stale, 1, 42);
    EXPECT_EQ(detector.state(), DriftState::Stale);
    EXPECT_EQ(detector.calmStreak(), 1u);
    EXPECT_EQ(detector.ticks(), 42u);
    // The restored streak continues counting: one more calm tick
    // completes the default streak of two.
    EXPECT_EQ(detector.tick(metrics(0.0, 1.0, 1.0)),
              DriftState::Drifting);
    EXPECT_EQ(detector.ticks(), 43u);
}

TEST(DriftDetectorTest, ThresholdsMustKeepTheRungsOrdered)
{
    DriftThresholds churn_flipped;
    churn_flipped.churnStale = 0.1; // below churnDrifting
    EXPECT_THROW(DriftDetector{churn_flipped}, Error);
    DriftThresholds stability_flipped;
    stability_flipped.stabilityStale = 0.9; // above stabilityDrifting
    EXPECT_THROW(DriftDetector{stability_flipped}, Error);
    DriftThresholds qe_flipped;
    qe_flipped.qeStale = 1.0; // below qeDrifting
    EXPECT_THROW(DriftDetector{qe_flipped}, Error);
    DriftThresholds no_streak;
    no_streak.calmTicks = 0;
    EXPECT_THROW(DriftDetector{no_streak}, Error);
}

} // namespace
