/**
 * The streaming SOM behind the drift monitor: deterministic
 * data-driven seeding, the never-zero adaptation floor, exact
 * exportWeights()/restore() round-trips (the bit-identical crash
 * recovery contract), the shared codebook helpers, and — the
 * acceptance bar — convergence: an online map folding the paper's
 * Table III speedup stream one observation at a time must land on a
 * codebook that quantizes the data about as well as a from-scratch
 * batch retrain over the same grid.
 */

#include <cmath>
#include <gtest/gtest.h>

#include "src/drift/online_som.h"
#include "src/linalg/matrix.h"
#include "src/scoring/partition.h"
#include "src/som/som.h"
#include "src/util/error.h"
#include "src/workload/paper_data.h"

namespace {

using namespace hiermeans;
using namespace hiermeans::drift;
using hiermeans::linalg::Matrix;
using hiermeans::linalg::Vector;

OnlineSomConfig
smallConfig()
{
    OnlineSomConfig c;
    c.rows = 2;
    c.cols = 2;
    c.decaySteps = 200;
    return c;
}

/** Table III as a 2-D observation stream: (speedupA, speedupB). */
std::vector<Vector>
paperStream()
{
    const std::vector<double> a = workload::paper::table3SpeedupsA();
    const std::vector<double> b = workload::paper::table3SpeedupsB();
    std::vector<Vector> stream;
    for (std::size_t i = 0; i < a.size(); ++i)
        stream.push_back({a[i], b[i]});
    return stream;
}

TEST(OnlineSomTest, FirstObservationsSeedTheUnitsVerbatim)
{
    OnlineSom map(2, smallConfig());
    EXPECT_FALSE(map.ready());
    EXPECT_EQ(map.observed(), 0u);

    const std::vector<Vector> seeds = {
        {1.0, 2.0}, {3.0, 4.0}, {5.0, 6.0}, {7.0, 8.0}};
    for (std::size_t i = 0; i < seeds.size(); ++i) {
        EXPECT_FALSE(map.ready()) << "not ready before unit " << i;
        map.observe(seeds[i]);
    }
    EXPECT_TRUE(map.ready());
    EXPECT_EQ(map.observed(), 4u);
    for (std::size_t u = 0; u < 4; ++u) {
        EXPECT_DOUBLE_EQ(map.codebook()(u, 0), seeds[u][0]);
        EXPECT_DOUBLE_EQ(map.codebook()(u, 1), seeds[u][1]);
    }

    // The fifth observation is a neighborhood update, not a seed.
    map.observe({100.0, 100.0});
    EXPECT_NE(map.codebook()(0, 0), 100.0);
}

TEST(OnlineSomTest, IdenticalStreamsProduceIdenticalCodebooks)
{
    OnlineSom a(2, smallConfig());
    OnlineSom b(2, smallConfig());
    for (int pass = 0; pass < 10; ++pass)
        for (const Vector &x : paperStream()) {
            a.observe(x);
            b.observe(x);
        }
    EXPECT_EQ(a.exportWeights(), b.exportWeights())
        << "the online update must be deterministic (no RNG)";
}

TEST(OnlineSomTest, AdaptationNeverStops)
{
    // Long past decaySteps the learning rate sits at its floor, not
    // zero: a late mean shift must still move the codebook.
    OnlineSom map(2, smallConfig());
    for (int pass = 0; pass < 50; ++pass) // 650 >> decaySteps=200
        for (const Vector &x : paperStream())
            map.observe(x);
    const std::vector<double> before = map.exportWeights();
    map.observe({50.0, 50.0});
    EXPECT_NE(map.exportWeights(), before)
        << "the schedule floor must keep the map adapting";
}

TEST(OnlineSomTest, RestoreRoundTripsBitIdentically)
{
    OnlineSom live(2, smallConfig());
    for (int pass = 0; pass < 3; ++pass)
        for (const Vector &x : paperStream())
            live.observe(x);

    OnlineSom recovered(2, smallConfig());
    recovered.restore(live.exportWeights(), live.observed());
    EXPECT_TRUE(recovered.ready());
    EXPECT_EQ(recovered.observed(), live.observed());
    EXPECT_EQ(recovered.exportWeights(), live.exportWeights());

    // The schedule position is part of the state: both maps must
    // evolve identically from here on.
    for (const Vector &x : paperStream()) {
        live.observe(x);
        recovered.observe(x);
    }
    EXPECT_EQ(recovered.exportWeights(), live.exportWeights())
        << "restore must reinstall the decay-schedule position too";
}

TEST(OnlineSomTest, RestoreBeforeSeedingCompletesDerivesSeededCount)
{
    OnlineSom half(2, smallConfig());
    half.observe({1.0, 1.0});
    half.observe({2.0, 2.0});
    OnlineSom recovered(2, smallConfig());
    recovered.restore(half.exportWeights(), half.observed());
    EXPECT_FALSE(recovered.ready()) << "2 of 4 units seeded";
    recovered.observe({3.0, 3.0});
    recovered.observe({4.0, 4.0});
    EXPECT_TRUE(recovered.ready());
    EXPECT_DOUBLE_EQ(recovered.codebook()(3, 0), 4.0)
        << "seeding must resume at the next unseeded unit";
}

TEST(OnlineSomTest, InvalidArgumentsThrow)
{
    EXPECT_THROW(OnlineSom(0, smallConfig()), Error);
    OnlineSomConfig flat = smallConfig();
    flat.rows = 0;
    EXPECT_THROW(OnlineSom(2, flat), Error);

    OnlineSom map(2, smallConfig());
    EXPECT_THROW(map.observe({1.0}), Error) << "dimension mismatch";
    EXPECT_THROW(map.restore({1.0, 2.0, 3.0}, 3), Error)
        << "wrong flattened size (needs unitCount * dim = 8)";
}

TEST(CodebookHelpersTest, NearestUnitAssignAllAndQe)
{
    const Matrix codebook = Matrix::fromRows({{0.0, 0.0}, {10.0, 10.0}});
    EXPECT_EQ(nearestUnit(codebook, {1.0, 1.0}), 0u);
    EXPECT_EQ(nearestUnit(codebook, {9.0, 9.0}), 1u);
    EXPECT_EQ(nearestUnit(codebook, {5.0, 5.0}), 0u)
        << "exact ties go to the lowest index";

    const std::vector<Vector> window = {{1.0, 1.0}, {9.0, 9.0}};
    const std::vector<std::size_t> labels = assignAll(codebook, window);
    ASSERT_EQ(labels.size(), 2u);
    EXPECT_EQ(labels[0], 0u);
    EXPECT_EQ(labels[1], 1u);

    // Both window points sit sqrt(2) from their unit.
    EXPECT_NEAR(quantizationError(codebook, window), std::sqrt(2.0),
                1e-12);
    EXPECT_DOUBLE_EQ(quantizationError(codebook, {}), 0.0);
    EXPECT_THROW(nearestUnit(Matrix(), {1.0, 1.0}), Error);
}

TEST(OnlineSomTest, ConvergesToBatchQualityOnPaperData)
{
    // The acceptance bar: stream the Table III speedups through the
    // online rule (several epochs' worth of arrivals) and retrain a
    // batch map of the same 2x2 shape from scratch; the two codebooks
    // must agree — comparable quantization error and an equivalent
    // induced clustering of the 13 workloads.
    const std::vector<Vector> stream = paperStream();
    const Matrix data = Matrix::fromRows(stream);

    OnlineSom online(2, smallConfig());
    for (int pass = 0; pass < 60; ++pass)
        for (const Vector &x : stream)
            online.observe(x);

    som::SomConfig batch_config;
    batch_config.rows = 2;
    batch_config.cols = 2;
    batch_config.steps = 1;
    batch_config.seed = 7;
    auto batch = som::SelfOrganizingMap::initialize(data, batch_config);
    batch.trainBatch(20);

    const double online_qe = online.quantizationError(stream);
    const double batch_qe = batch.quantizationError(data);
    EXPECT_LT(online_qe, batch_qe * 1.5 + 1e-9)
        << "online " << online_qe << " vs batch " << batch_qe;

    // Same grouping of the workloads (ARI over BMU partitions).
    const double ari = scoring::adjustedRandIndex(
        scoring::Partition::fromLabels(assignAll(online.codebook(),
                                                 stream)),
        scoring::Partition::fromLabels(batch.bmuAll(data)));
    EXPECT_GT(ari, 0.6) << "online and batch clusterings must agree";
}

} // namespace
