/**
 * DriftUpdated persistence: the payload codec round-trips every field
 * (codebooks included), replay is latest-wins per suite, the state's
 * canonical encoding carries the drift section, recordDriftState is
 * best-effort under WAL faults — and, the contract the monitor's
 * crash recovery stands on, a SIGKILL-style crash copy replayed
 * through the WAL reproduces the drift state bit-identically.
 */

#include <gtest/gtest.h>
#include <unistd.h>

#include "src/store/state.h"
#include "src/store/store.h"
#include "src/util/fault.h"
#include "src/util/file.h"

namespace {

using namespace hiermeans;
using namespace hiermeans::store;

DriftStateRecord
sample(const std::string &suite, std::uint64_t sequence = 1)
{
    DriftStateRecord record;
    record.sequence = sequence;
    record.suite = suite;
    record.state = 2; // stale
    record.ticks = 7;
    record.observations = 42;
    record.calmStreak = 1;
    record.lastSeenSequence = 40;
    record.churn = 0.625;
    record.stability = 0.41;
    record.qeRatio = 2.75;
    record.metricWindow = 16;
    record.publishedQe = 0.125;
    record.publishedMean = 1.0625;
    record.somRows = 2;
    record.somCols = 2;
    record.dim = 2;
    record.onlineWeights = {1.0, 1.1, 2.0, 2.1, 3.0, 3.1, 4.0, 4.1};
    record.publishedWeights = {1.5, 1.6, 2.5, 2.6, 3.5, 3.6, 4.5, 4.6};
    return record;
}

TEST(DriftRecordCodecTest, PayloadRoundTripsEveryField)
{
    const DriftStateRecord original = sample("nightly");
    Record record;
    record.type = RecordType::DriftUpdated;
    record.payload = encodeDriftUpdated(original);

    StoreState state;
    ASSERT_TRUE(state.apply(record));
    const DriftStateRecord *applied = state.driftState("nightly");
    ASSERT_NE(applied, nullptr);
    EXPECT_EQ(*applied, original)
        << "every field including both codebooks must survive";
    EXPECT_EQ(state.lastSequence(), original.sequence);
    EXPECT_EQ(state.driftState("other"), nullptr);
}

TEST(DriftRecordCodecTest, NeverPublishedCodebookStaysEmpty)
{
    DriftStateRecord original = sample("young", 3);
    original.publishedWeights.clear();
    Record record;
    record.type = RecordType::DriftUpdated;
    record.payload = encodeDriftUpdated(original);
    StoreState state;
    ASSERT_TRUE(state.apply(record));
    ASSERT_NE(state.driftState("young"), nullptr);
    EXPECT_TRUE(state.driftState("young")->publishedWeights.empty());
}

TEST(DriftRecordCodecTest, ReplayIsLatestWinsPerSuite)
{
    StoreState state;
    for (std::uint64_t seq = 1; seq <= 3; ++seq) {
        DriftStateRecord update = sample("nightly", seq);
        update.ticks = seq;
        Record record;
        record.type = RecordType::DriftUpdated;
        record.payload = encodeDriftUpdated(update);
        ASSERT_TRUE(state.apply(record));
    }
    EXPECT_EQ(state.driftStates().size(), 1u);
    EXPECT_EQ(state.driftState("nightly")->ticks, 3u);

    // The idempotence guard holds for drift records too.
    Record stale_replay;
    stale_replay.type = RecordType::DriftUpdated;
    stale_replay.payload = encodeDriftUpdated(sample("nightly", 2));
    state.setBaseline(3);
    EXPECT_FALSE(state.apply(stale_replay));
    EXPECT_EQ(state.driftState("nightly")->ticks, 3u);
}

TEST(DriftRecordCodecTest, DriftSectionIsInTheCanonicalEncoding)
{
    // Two states holding the same final drift image — reached through
    // different apply orders — must encode identically: the drift
    // section is ordered by suite name, not by arrival.
    auto wrap = [](const DriftStateRecord &r) {
        Record record;
        record.type = RecordType::DriftUpdated;
        record.payload = encodeDriftUpdated(r);
        return record;
    };
    StoreState forward;
    ASSERT_TRUE(forward.apply(wrap(sample("alpha", 1))));
    ASSERT_TRUE(forward.apply(wrap(sample("beta", 2))));
    ASSERT_TRUE(forward.apply(wrap(sample("alpha", 3))));
    ASSERT_TRUE(forward.apply(wrap(sample("beta", 4))));

    StoreState backward;
    ASSERT_TRUE(backward.apply(wrap(sample("beta", 2))));
    ASSERT_TRUE(backward.apply(wrap(sample("beta", 4))));
    ASSERT_TRUE(backward.apply(wrap(sample("alpha", 1))));
    ASSERT_TRUE(backward.apply(wrap(sample("alpha", 3))));

    EXPECT_NE(forward.encodeSnapshotBody().find("alpha"),
              std::string::npos)
        << "the drift section must be present in the canonical body";
    EXPECT_EQ(forward.encodeSnapshotBody(),
              backward.encodeSnapshotBody())
        << "equal states must produce equal bytes";
}

class DriftStoreTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        stem_ = "/tmp/hiermeans_drift_store_test_" +
                std::to_string(::getpid());
        wipe(stem_);
        wipe(stem_ + "_crash");
    }

    void
    TearDown() override
    {
        fault::reset();
        wipe(stem_);
        wipe(stem_ + "_crash");
    }

    static void
    wipe(const std::string &dir)
    {
        if (!util::fileExists(dir))
            return;
        for (const std::string &name : util::listDir(dir))
            util::removeFile(dir + "/" + name);
        ::rmdir(dir.c_str());
    }

    /** Byte-for-byte copy of the live data dir — no close(), exactly
     *  what a SIGKILL leaves behind. */
    std::string
    crashCopy() const
    {
        const std::string to = stem_ + "_crash";
        wipe(to);
        util::ensureDir(to);
        for (const std::string &name : util::listDir(stem_))
            util::writeFile(to + "/" + name,
                            util::readFile(stem_ + "/" + name));
        return to;
    }

    StateStore::Config
    config(const std::string &dir) const
    {
        StateStore::Config c;
        c.dataDir = dir;
        c.fsyncEvery = 1;
        c.snapshotEvery = 0;
        return c;
    }

    std::string stem_;
};

TEST_F(DriftStoreTest, RecordAndReadBack)
{
    StateStore store(config(stem_));
    store.open();
    ASSERT_TRUE(store.recordDriftState(sample("nightly")));
    ASSERT_TRUE(store.recordDriftState(sample("weekly")));

    EXPECT_EQ(store.driftStates().size(), 2u);
    const auto nightly = store.driftState("nightly");
    ASSERT_TRUE(nightly.has_value());
    EXPECT_EQ(nightly->ticks, 7u);
    EXPECT_EQ(nightly->onlineWeights.size(), 8u);
    EXPECT_FALSE(store.driftState("nope").has_value());
}

TEST_F(DriftStoreTest, RecordIsBestEffortUnderWalFaults)
{
    StateStore store(config(stem_));
    store.open();
    ASSERT_TRUE(store.recordDriftState(sample("nightly")));
    const std::uint64_t seq = store.lastSequence();

    fault::configure("store.wal.append=once");
    EXPECT_FALSE(store.recordDriftState(sample("dropped")))
        << "a WAL failure must be reported, not thrown";
    EXPECT_EQ(store.lastSequence(), seq);
    EXPECT_EQ(store.metrics().walAppendFailures, 1u);
    EXPECT_FALSE(store.driftState("dropped").has_value());

    EXPECT_TRUE(store.recordDriftState(sample("after")));
    EXPECT_EQ(store.driftStates().size(), 2u);
}

TEST_F(DriftStoreTest, CrashRecoveryIsBitIdentical)
{
    StateStore live(config(stem_));
    live.open();
    live.registerSuite("nightly", "scores=a.csv");
    ASSERT_TRUE(live.recordDriftState(sample("nightly")));
    DriftStateRecord moved = sample("nightly");
    moved.ticks = 8;
    moved.onlineWeights[0] = 9.9;
    ASSERT_TRUE(live.recordDriftState(moved));
    const std::string committed = live.encodeStateBody();

    StateStore recovered(config(crashCopy()));
    const RecoveryInfo info = recovered.open();
    EXPECT_EQ(info.outcome, RecoveryOutcome::Clean);
    EXPECT_FALSE(info.snapshotLoaded);
    EXPECT_EQ(recovered.encodeStateBody(), committed)
        << "WAL replay must reproduce the drift state byte for byte";
    const auto drift = recovered.driftState("nightly");
    ASSERT_TRUE(drift.has_value());
    EXPECT_EQ(drift->ticks, 8u);
    EXPECT_DOUBLE_EQ(drift->onlineWeights[0], 9.9);
}

TEST_F(DriftStoreTest, SnapshotCarriesDriftStateAcrossReopen)
{
    {
        StateStore store(config(stem_));
        store.open();
        ASSERT_TRUE(store.recordDriftState(sample("nightly")));
        store.close(); // final snapshot; WAL truncated.
    }
    EXPECT_EQ(util::fileSize(stem_ + "/wal.log"), 0u);
    StateStore reopened(config(stem_));
    const RecoveryInfo info = reopened.open();
    EXPECT_TRUE(info.snapshotLoaded);
    const auto drift = reopened.driftState("nightly");
    ASSERT_TRUE(drift.has_value());
    EXPECT_EQ(*drift, [] {
        DriftStateRecord expected = sample("nightly");
        expected.sequence = 1;
        return expected;
    }()) << "the snapshot path must preserve every field too";
}

} // namespace
