/**
 * @file
 * Tests for the Jacobi symmetric eigensolver.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "src/linalg/eigen.h"
#include "src/util/error.h"
#include "src/util/rng.h"

namespace {

using hiermeans::InvalidArgument;
using hiermeans::linalg::eigenSymmetric;
using hiermeans::linalg::Matrix;
using hiermeans::linalg::Vector;

TEST(EigenTest, DiagonalMatrix)
{
    Matrix m(3, 3, 0.0);
    m(0, 0) = 1.0;
    m(1, 1) = 5.0;
    m(2, 2) = 3.0;
    const auto eig = eigenSymmetric(m);
    EXPECT_NEAR(eig.values[0], 5.0, 1e-10);
    EXPECT_NEAR(eig.values[1], 3.0, 1e-10);
    EXPECT_NEAR(eig.values[2], 1.0, 1e-10);
}

TEST(EigenTest, KnownTwoByTwo)
{
    // [[2, 1], [1, 2]] has eigenvalues 3 and 1 with eigenvectors
    // (1,1)/sqrt2 and (1,-1)/sqrt2.
    const Matrix m = Matrix::fromRows({{2.0, 1.0}, {1.0, 2.0}});
    const auto eig = eigenSymmetric(m);
    EXPECT_NEAR(eig.values[0], 3.0, 1e-10);
    EXPECT_NEAR(eig.values[1], 1.0, 1e-10);
    EXPECT_NEAR(std::abs(eig.vectors(0, 0)), 1.0 / std::sqrt(2.0), 1e-8);
    EXPECT_NEAR(std::abs(eig.vectors(1, 0)), 1.0 / std::sqrt(2.0), 1e-8);
}

TEST(EigenTest, RejectsNonSquareAndAsymmetric)
{
    EXPECT_THROW(eigenSymmetric(Matrix(2, 3)), InvalidArgument);
    const Matrix asym = Matrix::fromRows({{1.0, 2.0}, {0.0, 1.0}});
    EXPECT_THROW(eigenSymmetric(asym), InvalidArgument);
}

TEST(EigenTest, ReconstructionProperty)
{
    // A = V diag(lambda) V^T must hold for random symmetric matrices.
    hiermeans::rng::Engine engine(7);
    for (int trial = 0; trial < 10; ++trial) {
        const std::size_t n = 2 + engine.below(6);
        Matrix a(n, n);
        for (std::size_t i = 0; i < n; ++i) {
            for (std::size_t j = i; j < n; ++j) {
                a(i, j) = engine.uniform(-2.0, 2.0);
                a(j, i) = a(i, j);
            }
        }
        const auto eig = eigenSymmetric(a);

        Matrix lambda(n, n, 0.0);
        for (std::size_t i = 0; i < n; ++i)
            lambda(i, i) = eig.values[i];
        const Matrix recon = eig.vectors.multiply(lambda).multiply(
            eig.vectors.transposed());
        EXPECT_TRUE(recon.approxEqual(a, 1e-7))
            << "trial " << trial << " n=" << n;
    }
}

TEST(EigenTest, EigenvectorsAreOrthonormal)
{
    hiermeans::rng::Engine engine(13);
    const std::size_t n = 5;
    Matrix a(n, n);
    for (std::size_t i = 0; i < n; ++i) {
        for (std::size_t j = i; j < n; ++j) {
            a(i, j) = engine.uniform(-1.0, 1.0);
            a(j, i) = a(i, j);
        }
    }
    const auto eig = eigenSymmetric(a);
    const Matrix vtv =
        eig.vectors.transposed().multiply(eig.vectors);
    EXPECT_TRUE(vtv.approxEqual(Matrix::identity(n), 1e-8));
}

TEST(EigenTest, ValuesSortedDescending)
{
    hiermeans::rng::Engine engine(17);
    const std::size_t n = 6;
    Matrix a(n, n);
    for (std::size_t i = 0; i < n; ++i) {
        for (std::size_t j = i; j < n; ++j) {
            a(i, j) = engine.uniform(-1.0, 1.0);
            a(j, i) = a(i, j);
        }
    }
    const auto eig = eigenSymmetric(a);
    for (std::size_t i = 1; i < n; ++i)
        EXPECT_GE(eig.values[i - 1], eig.values[i] - 1e-12);
}

TEST(EigenTest, TraceEqualsSumOfEigenvalues)
{
    const Matrix m =
        Matrix::fromRows({{4.0, 1.0, 0.5}, {1.0, 3.0, -1.0},
                          {0.5, -1.0, 2.0}});
    const auto eig = eigenSymmetric(m);
    double sum = 0.0;
    for (double v : eig.values)
        sum += v;
    EXPECT_NEAR(sum, 9.0, 1e-9);
}

} // namespace
