/**
 * @file
 * Engine behaviour under injected faults: a cache insert that dies
 * must not fail the request (and must not wedge the single-flight
 * table), and a task that throws mid-pipeline must be isolated and
 * counted. Runs clean under -DHIERMEANS_SANITIZE=thread.
 */

#include <gtest/gtest.h>

#include <future>
#include <vector>

#include "src/engine/engine.h"
#include "src/util/fault.h"

namespace hiermeans {
namespace engine {
namespace {

ScoreRequest
makeRequest(std::uint64_t variant = 0)
{
    const std::size_t n = 6;
    const std::size_t d = 4;
    ScoreRequest request;
    request.features = linalg::Matrix(n, d);
    for (std::size_t r = 0; r < n; ++r) {
        for (std::size_t c = 0; c < d; ++c) {
            request.features(r, c) =
                static_cast<double>((r * 7 + c * 3 + variant * 11) %
                                    13) +
                0.25 * static_cast<double>(r);
        }
    }
    for (std::size_t r = 0; r < n; ++r) {
        request.workloads.push_back("w" + std::to_string(r));
        request.scoresA.push_back(1.0 + static_cast<double>(r));
        request.scoresB.push_back(
            2.0 + 0.5 * static_cast<double>((r + variant) % n));
    }
    for (std::size_t c = 0; c < d; ++c)
        request.featureNames.push_back("f" + std::to_string(c));
    request.config.kMin = 2;
    request.config.kMax = 4;
    request.config.som.rows = 4;
    request.config.som.cols = 5;
    request.config.som.steps = 200; // keep the tests fast.
    request.seed = 0x5eed + variant;
    return request;
}

class EngineFaultTest : public ::testing::Test
{
  protected:
    void SetUp() override { fault::reset(); }
    void TearDown() override { fault::reset(); }
};

TEST_F(EngineFaultTest, FailedCacheInsertStillServesTheResult)
{
    fault::configure("engine.cache.put=always");
    ScoringEngine engine(ScoringEngine::Config{});
    const ScoreResult result = engine.submit(makeRequest()).get();
    ASSERT_TRUE(result.ok) << result.error;
    EXPECT_FALSE(result.cacheHit);
    const MetricsSnapshot snap = engine.metrics().snapshot();
    EXPECT_EQ(snap.cacheInsertFailures, 1u);
    EXPECT_EQ(snap.failures, 0u)
        << "a dead cache insert is not a request failure";
    EXPECT_EQ(engine.cache().size(), 0u);
}

TEST_F(EngineFaultTest, FailedCacheInsertDoesNotWedgeTheFlightTable)
{
    // The regression this guards: cache_.put throwing used to skip
    // the flight cleanup, so the *next* identical request would wait
    // on a flight that never lands. With the fault always on, every
    // resubmission must execute afresh and return promptly.
    fault::configure("engine.cache.put=always");
    ScoringEngine engine(ScoringEngine::Config{});
    for (int round = 0; round < 3; ++round) {
        const ScoreResult result = engine.submit(makeRequest()).get();
        ASSERT_TRUE(result.ok) << "round " << round << ": "
                               << result.error;
        EXPECT_FALSE(result.cacheHit);
    }
    const MetricsSnapshot snap = engine.metrics().snapshot();
    EXPECT_EQ(snap.executions, 3u);
    EXPECT_EQ(snap.cacheInsertFailures, 3u);
}

TEST_F(EngineFaultTest, ConcurrentTwinsStillCollapseWhenInsertFails)
{
    fault::configure("engine.cache.put=always");
    ScoringEngine::Config config;
    config.threads = 4;
    ScoringEngine engine(config);
    std::vector<std::future<ScoreResult>> futures;
    for (int i = 0; i < 12; ++i)
        futures.push_back(engine.submit(makeRequest()));
    std::size_t ok = 0;
    for (auto &future : futures)
        ok += future.get().ok ? 1 : 0;
    EXPECT_EQ(ok, futures.size());
    const MetricsSnapshot snap = engine.metrics().snapshot();
    EXPECT_EQ(snap.requests, 12u);
    // Nothing is ever cached, so every request either executed or
    // piggybacked on an in-flight twin — and nobody deadlocked.
    EXPECT_EQ(snap.cacheHits, 0u);
    EXPECT_EQ(snap.executions + snap.dedupedInFlight, 12u);
    EXPECT_GE(snap.dedupedInFlight, 1u)
        << "single-flight must still collapse concurrent twins";
}

TEST_F(EngineFaultTest, InjectedTaskFailureIsIsolatedAndCounted)
{
    fault::configure("engine.task=once");
    ScoringEngine engine(ScoringEngine::Config{});
    const ScoreResult failed = engine.submit(makeRequest()).get();
    EXPECT_FALSE(failed.ok);
    EXPECT_NE(failed.error.find("injected"), std::string::npos)
        << failed.error;
    EXPECT_EQ(engine.metrics().snapshot().failures, 1u);

    // `once` has burnt out: the identical request now succeeds, fresh
    // (the failure must not have been cached).
    const ScoreResult retried = engine.submit(makeRequest()).get();
    ASSERT_TRUE(retried.ok) << retried.error;
    EXPECT_FALSE(retried.cacheHit);
}

TEST_F(EngineFaultTest, EveryNthTaskFailureLeavesTheRestAlone)
{
    fault::configure("engine.task=every:2");
    ScoringEngine engine(ScoringEngine::Config{});
    std::size_t ok = 0;
    std::size_t failed = 0;
    for (std::uint64_t variant = 0; variant < 6; ++variant) {
        const ScoreResult result =
            engine.submit(makeRequest(variant)).get();
        result.ok ? ++ok : ++failed;
    }
    EXPECT_EQ(ok, 3u);
    EXPECT_EQ(failed, 3u);
    EXPECT_EQ(engine.metrics().snapshot().failures, 3u);
}

} // namespace
} // namespace engine
} // namespace hiermeans
