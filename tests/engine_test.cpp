/**
 * @file
 * Tests for engine::ScoringEngine: cache hits return bit-identical
 * reports, identical in-flight requests run the pipeline exactly once,
 * failures and timeouts are isolated per request, and the parallel
 * report builders match their serial twins double-for-double.
 */

#include <gtest/gtest.h>

#include <chrono>
#include <future>
#include <thread>

#include "src/core/characterization.h"
#include "src/engine/engine.h"
#include "src/scoring/score_report.h"

namespace hiermeans {
namespace engine {
namespace {

/** A small but non-trivial request; `variant` decorrelates the data. */
ScoreRequest
makeRequest(std::uint64_t variant = 0)
{
    const std::size_t n = 6;
    const std::size_t d = 4;
    ScoreRequest request;
    request.features = linalg::Matrix(n, d);
    for (std::size_t r = 0; r < n; ++r) {
        for (std::size_t c = 0; c < d; ++c) {
            request.features(r, c) =
                static_cast<double>((r * 7 + c * 3 + variant * 11) %
                                    13) +
                0.25 * static_cast<double>(r);
        }
    }
    for (std::size_t r = 0; r < n; ++r) {
        request.workloads.push_back("w" + std::to_string(r));
        request.scoresA.push_back(1.0 + static_cast<double>(r));
        request.scoresB.push_back(
            2.0 + 0.5 * static_cast<double>((r + variant) % n));
    }
    for (std::size_t c = 0; c < d; ++c)
        request.featureNames.push_back("f" + std::to_string(c));
    request.config.kMin = 2;
    request.config.kMax = 4;
    request.config.som.rows = 4;
    request.config.som.cols = 5;
    request.config.som.steps = 200; // keep the tests fast.
    request.seed = 0x5eed + variant;
    return request;
}

void
expectBitIdentical(const scoring::ScoreReport &a,
                   const scoring::ScoreReport &b)
{
    ASSERT_EQ(a.rows.size(), b.rows.size());
    EXPECT_EQ(a.kind, b.kind);
    for (std::size_t i = 0; i < a.rows.size(); ++i) {
        EXPECT_EQ(a.rows[i].clusterCount, b.rows[i].clusterCount);
        EXPECT_TRUE(a.rows[i].partition == b.rows[i].partition);
        // Exact equality on purpose: cached results must be the same
        // doubles, not merely close.
        EXPECT_EQ(a.rows[i].scoreA, b.rows[i].scoreA);
        EXPECT_EQ(a.rows[i].scoreB, b.rows[i].scoreB);
        EXPECT_EQ(a.rows[i].ratio, b.rows[i].ratio);
    }
    EXPECT_EQ(a.plainA, b.plainA);
    EXPECT_EQ(a.plainB, b.plainB);
    EXPECT_EQ(a.plainRatio, b.plainRatio);
}

ScoringEngine::Config
smallEngineConfig(std::size_t threads)
{
    ScoringEngine::Config config;
    config.threads = threads;
    return config;
}

TEST(EngineTest, ExecutesARequestEndToEnd)
{
    ScoringEngine engine(smallEngineConfig(2));
    ScoreRequest request = makeRequest();
    request.id = "first";
    const ScoreResult result = engine.submit(std::move(request)).get();
    ASSERT_TRUE(result.ok) << result.error;
    EXPECT_EQ(result.id, "first");
    EXPECT_FALSE(result.cacheHit);
    EXPECT_FALSE(result.deduped);
    EXPECT_GE(result.report.rows.size(), 3u); // k = 2..4.
    EXPECT_GE(result.recommendedK, 2u);
    ASSERT_NE(result.analysis, nullptr);
    EXPECT_EQ(result.analysis->partitions.size(),
              result.report.rows.size());
}

TEST(EngineTest, CacheHitReturnsBitIdenticalReport)
{
    ScoringEngine engine(smallEngineConfig(2));
    const ScoreResult first = engine.submit(makeRequest()).get();
    ASSERT_TRUE(first.ok) << first.error;

    const ScoreResult second = engine.submit(makeRequest()).get();
    ASSERT_TRUE(second.ok) << second.error;
    EXPECT_TRUE(second.cacheHit);
    EXPECT_EQ(second.fingerprint, first.fingerprint);
    expectBitIdentical(first.report, second.report);
    // The analysis is shared, not recomputed.
    EXPECT_EQ(second.analysis.get(), first.analysis.get());

    const MetricsSnapshot snap = engine.metrics().snapshot();
    EXPECT_EQ(snap.requests, 2u);
    EXPECT_EQ(snap.executions, 1u);
    EXPECT_EQ(snap.cacheHits, 1u);
}

TEST(EngineTest, InFlightDedupeRunsThePipelineOnce)
{
    ScoringEngine engine(smallEngineConfig(1));

    // Block the single worker so both submissions overlap in flight.
    std::promise<void> gate;
    std::shared_future<void> opened = gate.get_future().share();
    auto blocker = engine.pool().submit([opened]() { opened.wait(); });

    ScoreRequest a = makeRequest();
    a.id = "a";
    ScoreRequest b = makeRequest();
    b.id = "b";
    auto future_a = engine.submit(std::move(a));
    auto future_b = engine.submit(std::move(b));
    gate.set_value();
    blocker.get();

    const ScoreResult result_a = future_a.get();
    const ScoreResult result_b = future_b.get();
    ASSERT_TRUE(result_a.ok) << result_a.error;
    ASSERT_TRUE(result_b.ok) << result_b.error;
    EXPECT_EQ(result_a.id, "a");
    EXPECT_EQ(result_b.id, "b");
    EXPECT_FALSE(result_a.deduped);
    EXPECT_TRUE(result_b.deduped);
    expectBitIdentical(result_a.report, result_b.report);

    const MetricsSnapshot snap = engine.metrics().snapshot();
    EXPECT_EQ(snap.requests, 2u);
    EXPECT_EQ(snap.executions, 1u);
    EXPECT_EQ(snap.dedupedInFlight, 1u);
    EXPECT_EQ(snap.cacheHits, 0u);
}

TEST(EngineTest, FailuresAreIsolatedPerRequest)
{
    ScoringEngine engine(smallEngineConfig(2));

    ScoreRequest good_before = makeRequest(1);
    good_before.id = "good-before";
    ScoreRequest bad = makeRequest(2);
    bad.id = "bad";
    bad.scoresA.pop_back(); // size mismatch -> pipeline throws.
    ScoreRequest good_after = makeRequest(3);
    good_after.id = "good-after";

    std::vector<ScoreRequest> batch;
    batch.push_back(std::move(good_before));
    batch.push_back(std::move(bad));
    batch.push_back(std::move(good_after));
    const std::vector<ScoreResult> results =
        engine.runBatch(std::move(batch));

    ASSERT_EQ(results.size(), 3u);
    EXPECT_EQ(results[0].id, "good-before");
    EXPECT_TRUE(results[0].ok) << results[0].error;
    EXPECT_EQ(results[1].id, "bad");
    EXPECT_FALSE(results[1].ok);
    EXPECT_FALSE(results[1].error.empty());
    EXPECT_EQ(results[2].id, "good-after");
    EXPECT_TRUE(results[2].ok) << results[2].error;

    EXPECT_EQ(engine.metrics().snapshot().failures, 1u);
}

TEST(EngineTest, FailedRequestsAreNotCached)
{
    ScoringEngine engine(smallEngineConfig(1));
    ScoreRequest bad = makeRequest();
    bad.scoresA.pop_back();
    const ScoreResult first = engine.submit(bad).get();
    EXPECT_FALSE(first.ok);
    const ScoreResult second = engine.submit(bad).get();
    EXPECT_FALSE(second.ok);
    EXPECT_FALSE(second.cacheHit);
    EXPECT_EQ(engine.metrics().snapshot().executions, 2u);
}

TEST(EngineTest, QueueExpiredRequestsTimeOutWithoutExecuting)
{
    ScoringEngine engine(smallEngineConfig(1));

    // Hold the only worker long enough for the deadline to lapse.
    std::promise<void> gate;
    std::shared_future<void> opened = gate.get_future().share();
    auto blocker = engine.pool().submit([opened]() { opened.wait(); });

    ScoreRequest request = makeRequest();
    request.timeoutMillis = 1.0;
    auto future = engine.submit(std::move(request));
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    gate.set_value();
    blocker.get();

    const ScoreResult result = future.get();
    EXPECT_FALSE(result.ok);
    EXPECT_TRUE(result.timedOut);
    EXPECT_NE(result.error.find("timed out"), std::string::npos)
        << result.error;
    const MetricsSnapshot snap = engine.metrics().snapshot();
    EXPECT_EQ(snap.timeouts, 1u);
    EXPECT_EQ(snap.executions, 0u); // never reached the pipeline.
}

TEST(EngineTest, OverrunningExecutionTimesOutCooperatively)
{
    // A free worker picks the request up well inside the 10 ms
    // deadline, so the queue check passes — but the pipeline (given a
    // deliberately huge SOM step budget) overruns it, and the engine
    // reports a cooperative timeout instead of a result.
    ScoringEngine engine(smallEngineConfig(1));
    ScoreRequest request = makeRequest();
    request.config.som.steps = 200000;
    request.timeoutMillis = 10.0;
    const ScoreResult result = engine.submit(std::move(request)).get();

    EXPECT_FALSE(result.ok);
    EXPECT_TRUE(result.timedOut);
    const MetricsSnapshot snap = engine.metrics().snapshot();
    EXPECT_EQ(snap.timeouts, 1u);
    EXPECT_EQ(snap.executions, 1u); // it ran, then overran.

    // Timed-out results must not poison the cache: the identical
    // request (deadlines are not part of the fingerprint) without a
    // deadline executes fresh and succeeds.
    ScoreRequest retry = makeRequest();
    retry.config.som.steps = 200000;
    const ScoreResult retried = engine.submit(std::move(retry)).get();
    EXPECT_TRUE(retried.ok) << retried.error;
    EXPECT_FALSE(retried.cacheHit);
}

TEST(EngineTest, CacheEvictsUnderPressureAndStaysBounded)
{
    // A cache big enough for ~2 reports: 8 distinct requests must
    // evict most of their predecessors yet every result stays correct.
    ScoringEngine::Config config = smallEngineConfig(2);
    config.cache.maxEntries = 2;
    config.cache.maxBytes = 1024 * 1024;
    ScoringEngine engine(config);

    for (std::uint64_t variant = 0; variant < 8; ++variant) {
        const ScoreResult result =
            engine.submit(makeRequest(variant)).get();
        ASSERT_TRUE(result.ok) << result.error;
    }
    EXPECT_LE(engine.cache().size(), 2u);
    const ResultCache::Stats stats = engine.cache().stats();
    EXPECT_GE(stats.evictions, 6u);

    // The most recent fingerprint survived; an evicted one re-executes
    // and still returns a bit-identical report.
    const ScoreResult recent = engine.submit(makeRequest(7)).get();
    ASSERT_TRUE(recent.ok);
    EXPECT_TRUE(recent.cacheHit);

    const std::uint64_t executions_before =
        engine.metrics().snapshot().executions;
    const ScoreResult evicted = engine.submit(makeRequest(0)).get();
    ASSERT_TRUE(evicted.ok);
    EXPECT_FALSE(evicted.cacheHit);
    EXPECT_EQ(engine.metrics().snapshot().executions,
              executions_before + 1);
}

TEST(EngineTest, IdenticalRequestsAreDeterministicAcrossEngines)
{
    ScoringEngine engine_a(smallEngineConfig(4));
    ScoringEngine engine_b(smallEngineConfig(1));
    const ScoreResult a = engine_a.submit(makeRequest()).get();
    const ScoreResult b = engine_b.submit(makeRequest()).get();
    ASSERT_TRUE(a.ok) << a.error;
    ASSERT_TRUE(b.ok) << b.error;
    EXPECT_EQ(a.fingerprint, b.fingerprint);
    expectBitIdentical(a.report, b.report);
    EXPECT_EQ(a.recommendedK, b.recommendedK);
}

TEST(EngineTest, ParallelScoreReportMatchesSerialBuilder)
{
    const ScoreRequest request = makeRequest();
    const core::CharacteristicVectors vectors = core::characterizeRaw(
        request.features, request.workloads, request.featureNames);
    core::PipelineConfig config = request.config;
    config.som.seed = request.seed;
    const core::ClusterAnalysis analysis =
        core::analyzeClusters(vectors, config);

    const scoring::ScoreReport serial = scoring::buildScoreReport(
        stats::MeanKind::Geometric, request.scoresA, request.scoresB,
        analysis.partitions);

    ThreadPool pool(4);
    const scoring::ScoreReport parallel = buildScoreReportParallel(
        pool, stats::MeanKind::Geometric, request.scoresA,
        request.scoresB, analysis.partitions);
    expectBitIdentical(serial, parallel);
}

TEST(EngineTest, ParallelMultiMachineReportMatchesSerialBuilder)
{
    const ScoreRequest request = makeRequest();
    const core::CharacteristicVectors vectors = core::characterizeRaw(
        request.features, request.workloads, request.featureNames);
    core::PipelineConfig config = request.config;
    config.som.seed = request.seed;
    const core::ClusterAnalysis analysis =
        core::analyzeClusters(vectors, config);

    const std::vector<std::vector<double>> machine_scores = {
        request.scoresA, request.scoresB,
        {3.0, 1.0, 4.0, 1.5, 9.0, 2.6}};
    const std::vector<std::string> labels = {"A", "B", "C"};

    const scoring::MultiMachineReport serial =
        scoring::buildMultiMachineReport(stats::MeanKind::Geometric,
                                         machine_scores, labels,
                                         analysis.partitions);
    ThreadPool pool(3);
    const scoring::MultiMachineReport parallel =
        buildMultiMachineReportParallel(pool,
                                        stats::MeanKind::Geometric,
                                        machine_scores, labels,
                                        analysis.partitions);

    ASSERT_EQ(serial.rows.size(), parallel.rows.size());
    for (std::size_t r = 0; r < serial.rows.size(); ++r) {
        ASSERT_EQ(serial.rows[r].scores.size(),
                  parallel.rows[r].scores.size());
        for (std::size_t m = 0; m < serial.rows[r].scores.size(); ++m) {
            EXPECT_EQ(serial.rows[r].scores[m],
                      parallel.rows[r].scores[m]);
        }
    }
    EXPECT_EQ(serial.plainScores, parallel.plainScores);
    EXPECT_EQ(serial.render(), parallel.render());
}

TEST(EngineTest, ConcurrentMixedBatchCompletes)
{
    // A stress-shaped batch: 24 requests over 6 distinct fingerprints
    // racing on 4 workers — exercises cache, dedupe and flights under
    // real contention (run under TSan via HIERMEANS_SANITIZE=ON).
    ScoringEngine engine(smallEngineConfig(4));
    std::vector<std::future<ScoreResult>> futures;
    for (std::uint64_t round = 0; round < 4; ++round) {
        for (std::uint64_t variant = 0; variant < 6; ++variant) {
            ScoreRequest request = makeRequest(variant);
            request.id = "r" + std::to_string(round) + "v" +
                         std::to_string(variant);
            futures.push_back(engine.submit(std::move(request)));
        }
    }
    std::size_t ok = 0;
    for (auto &future : futures)
        ok += future.get().ok ? 1 : 0;
    EXPECT_EQ(ok, futures.size());

    const MetricsSnapshot snap = engine.metrics().snapshot();
    EXPECT_EQ(snap.requests, 24u);
    // Each distinct fingerprint executed exactly once; the other 18
    // requests were served by the cache or by in-flight dedupe.
    EXPECT_EQ(snap.executions, 6u);
    EXPECT_EQ(snap.cacheHits + snap.dedupedInFlight, 18u);
}

} // namespace
} // namespace engine
} // namespace hiermeans
