/**
 * @file
 * Tests for the error types and check macros.
 */

#include <gtest/gtest.h>

#include <string>

#include "src/util/error.h"

namespace {

using hiermeans::DomainError;
using hiermeans::Error;
using hiermeans::InternalError;
using hiermeans::InvalidArgument;

TEST(ErrorTest, HierarchyIsCatchableAsBase)
{
    EXPECT_THROW(throw InvalidArgument("x"), Error);
    EXPECT_THROW(throw DomainError("x"), Error);
    EXPECT_THROW(throw InternalError("x"), Error);
    EXPECT_THROW(throw Error("x"), std::runtime_error);
}

TEST(ErrorTest, MessagesCarryPrefix)
{
    try {
        throw InvalidArgument("bad k");
    } catch (const Error &e) {
        EXPECT_NE(std::string(e.what()).find("invalid argument"),
                  std::string::npos);
        EXPECT_NE(std::string(e.what()).find("bad k"), std::string::npos);
    }
}

TEST(ErrorTest, RequireMacroPassesAndFails)
{
    EXPECT_NO_THROW(HM_REQUIRE(1 + 1 == 2, "never"));
    EXPECT_THROW(HM_REQUIRE(1 + 1 == 3, "math broke"), InvalidArgument);
}

TEST(ErrorTest, RequireMessageIncludesStreamedValues)
{
    const int k = 42;
    try {
        HM_REQUIRE(k < 0, "k must be negative, got " << k);
        FAIL() << "should have thrown";
    } catch (const InvalidArgument &e) {
        const std::string what = e.what();
        EXPECT_NE(what.find("got 42"), std::string::npos);
        EXPECT_NE(what.find("k < 0"), std::string::npos);
        EXPECT_NE(what.find("error_test.cpp"), std::string::npos);
    }
}

TEST(ErrorTest, DomainCheckThrowsDomainError)
{
    EXPECT_THROW(HM_DOMAIN_CHECK(false, "neg"), DomainError);
    EXPECT_NO_THROW(HM_DOMAIN_CHECK(true, "ok"));
}

TEST(ErrorTest, AssertThrowsInternalError)
{
    EXPECT_THROW(HM_ASSERT(false, "bug"), InternalError);
    EXPECT_NO_THROW(HM_ASSERT(true, "fine"));
}

TEST(ErrorTest, MacroIsSingleStatementInIfElse)
{
    // The do/while(false) idiom must compose with unbraced if/else.
    bool thrown = false;
    if (true)
        HM_DOMAIN_CHECK(true, "x");
    else
        HM_DOMAIN_CHECK(false, "y");
    try {
        if (false)
            HM_REQUIRE(true, "a");
        else
            HM_REQUIRE(false, "b");
    } catch (const InvalidArgument &) {
        thrown = true;
    }
    EXPECT_TRUE(thrown);
}

} // namespace
