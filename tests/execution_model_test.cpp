/**
 * @file
 * Tests for the synthetic execution model and its calibration.
 */

#include <gtest/gtest.h>

#include "src/util/error.h"
#include "src/workload/execution_model.h"
#include "src/workload/paper_data.h"

namespace {

using namespace hiermeans::workload;
using hiermeans::DomainError;
using hiermeans::InvalidArgument;

TEST(ExecutionModelTest, IdealTimeIsAdditive)
{
    const ExecutionModel model(0.0);
    const MachineSpec &ref = referenceMachine();
    ComponentWork w;
    w.cpu = 10.0;
    w.mem = 5.0;
    w.mlat = 2.0;
    w.sys = 3.0;
    w.io = 1.0;
    EXPECT_NEAR(model.idealTime(w, ref), 21.0, 1e-12);
}

TEST(ExecutionModelTest, FasterRatesShortenTime)
{
    const ExecutionModel model(0.0);
    ComponentWork w;
    w.cpu = 100.0;
    EXPECT_LT(model.idealTime(w, machineA()),
              model.idealTime(w, referenceMachine()));
}

TEST(ExecutionModelTest, NoiseIsMultiplicativeAndSeeded)
{
    const ExecutionModel model(0.05);
    ComponentWork w;
    w.cpu = 50.0;
    hiermeans::rng::Engine e1(3), e2(3);
    EXPECT_DOUBLE_EQ(model.sampleTime(w, machineA(), e1),
                     model.sampleTime(w, machineA(), e2));
    // Zero noise reproduces the ideal time exactly.
    const ExecutionModel exact(0.0);
    hiermeans::rng::Engine e3(3);
    EXPECT_DOUBLE_EQ(exact.sampleTime(w, machineA(), e3),
                     exact.idealTime(w, machineA()));
}

TEST(ExecutionModelTest, SampleRunsCountAndPositivity)
{
    const ExecutionModel model(0.01);
    ComponentWork w;
    w.cpu = 10.0;
    hiermeans::rng::Engine engine(5);
    const auto runs = model.sampleRuns(w, machineB(), engine, 10);
    EXPECT_EQ(runs.size(), 10u);
    for (double t : runs)
        EXPECT_GT(t, 0.0);
    EXPECT_THROW(model.sampleRuns(w, machineB(), engine, 0),
                 InvalidArgument);
}

TEST(ExecutionModelTest, Validation)
{
    const ExecutionModel model(0.0);
    ComponentWork w; // all zero -> zero total time.
    EXPECT_THROW(model.idealTime(w, machineA()), DomainError);
    w.cpu = -1.0;
    EXPECT_THROW(model.idealTime(w, machineA()), DomainError);
    EXPECT_THROW(ExecutionModel(-0.1), InvalidArgument);
}

TEST(CalibrationTest, ReproducesEveryTable3RowExactly)
{
    // The headline property of the substrate: for every workload in
    // Table III there is a non-negative component mix whose ideal
    // speedups equal the published values.
    for (const auto &row : paper::table3()) {
        const CalibrationResult cal = ExecutionModel::calibrateToSpeedups(
            machineA(), machineB(), referenceMachine(), row.speedupA,
            row.speedupB, 100.0);
        EXPECT_NEAR(cal.achievedSpeedupA, row.speedupA,
                    0.005 * row.speedupA)
            << row.workload;
        EXPECT_NEAR(cal.achievedSpeedupB, row.speedupB,
                    0.005 * row.speedupB)
            << row.workload;
        EXPECT_LT(cal.relativeError, 0.005) << row.workload;
        EXPECT_GE(cal.work.cpu, 0.0);
        EXPECT_GE(cal.work.mem, 0.0);
        EXPECT_GE(cal.work.mlat, 0.0);
        EXPECT_GE(cal.work.sys, 0.0);
        EXPECT_GE(cal.work.io, 0.0);
    }
}

TEST(CalibrationTest, ReferenceTimeIsRespected)
{
    const CalibrationResult cal = ExecutionModel::calibrateToSpeedups(
        machineA(), machineB(), referenceMachine(), 2.0, 1.5, 60.0);
    const ExecutionModel model(0.0);
    EXPECT_NEAR(model.idealTime(cal.work, referenceMachine()), 60.0,
                0.5);
}

TEST(CalibrationTest, Validation)
{
    EXPECT_THROW(ExecutionModel::calibrateToSpeedups(
                     machineA(), machineB(), referenceMachine(), 0.0,
                     1.0, 100.0),
                 InvalidArgument);
    EXPECT_THROW(ExecutionModel::calibrateToSpeedups(
                     machineA(), machineB(), referenceMachine(), 1.0,
                     1.0, 0.0),
                 InvalidArgument);
}

TEST(WorkFromProfileTest, MonotoneInWorkVolume)
{
    WorkloadProfile p;
    p.workUnits = 10.0;
    p.latent[hiermeans::workload::LatentMemoryTraffic] = 0.5;
    const ComponentWork small = ExecutionModel::workFromProfile(p);
    p.workUnits = 100.0;
    const ComponentWork large = ExecutionModel::workFromProfile(p);
    EXPECT_GT(large.cpu, small.cpu);
    EXPECT_GT(large.total(), small.total());
}

TEST(WorkFromProfileTest, BigWorkingSetsSpillToLatencyComponent)
{
    WorkloadProfile p;
    p.workUnits = 50.0;
    p.latent[hiermeans::workload::LatentMemoryTraffic] = 0.6;
    p.workingSetMb = 4.0;
    const ComponentWork resident = ExecutionModel::workFromProfile(p);
    p.workingSetMb = 256.0;
    const ComponentWork spilled = ExecutionModel::workFromProfile(p);
    EXPECT_GT(spilled.mlat, resident.mlat);
    EXPECT_LT(spilled.mem, spilled.mlat);
}

} // namespace
