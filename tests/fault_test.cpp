/**
 * Tests for the deterministic fault-injection framework: the spec
 * grammar, every trigger mode, the @param payload, seed-stable
 * probabilistic firing, env configuration and the disarmed fast path.
 */

#include <cstdlib>
#include <gtest/gtest.h>
#include <thread>
#include <vector>

#include "src/util/error.h"
#include "src/util/fault.h"

namespace {

using namespace hiermeans;

class FaultTest : public ::testing::Test
{
  protected:
    void SetUp() override { fault::reset(); }
    void TearDown() override { fault::reset(); }
};

TEST_F(FaultTest, DisarmedPointsNeverFire)
{
    for (int i = 0; i < 100; ++i)
        EXPECT_FALSE(HM_FAULT("some.point"));
    EXPECT_EQ(fault::activeSpec(), "");
}

TEST_F(FaultTest, UnnamedPointsStayQuietWhileOthersAreArmed)
{
    fault::configure("a.point=always");
    EXPECT_TRUE(HM_FAULT("a.point"));
    EXPECT_FALSE(HM_FAULT("b.point"));
}

TEST_F(FaultTest, OnceFiresOnFirstHitOnly)
{
    fault::configure("p=once");
    EXPECT_TRUE(HM_FAULT("p"));
    for (int i = 0; i < 10; ++i)
        EXPECT_FALSE(HM_FAULT("p"));
}

TEST_F(FaultTest, AlwaysFiresEveryHit)
{
    fault::configure("p=always");
    for (int i = 0; i < 10; ++i)
        EXPECT_TRUE(HM_FAULT("p"));
}

TEST_F(FaultTest, NthFiresExactlyOnTheNthHit)
{
    fault::configure("p=nth:3");
    EXPECT_FALSE(HM_FAULT("p"));
    EXPECT_FALSE(HM_FAULT("p"));
    EXPECT_TRUE(HM_FAULT("p"));
    EXPECT_FALSE(HM_FAULT("p"));
}

TEST_F(FaultTest, EveryFiresOnMultiples)
{
    fault::configure("p=every:2");
    std::vector<bool> fired;
    for (int i = 0; i < 6; ++i)
        fired.push_back(HM_FAULT("p"));
    EXPECT_EQ(fired, (std::vector<bool>{false, true, false, true,
                                        false, true}));
}

TEST_F(FaultTest, FirstFiresOnTheLeadingHits)
{
    fault::configure("p=first:2");
    EXPECT_TRUE(HM_FAULT("p"));
    EXPECT_TRUE(HM_FAULT("p"));
    EXPECT_FALSE(HM_FAULT("p"));
}

TEST_F(FaultTest, ParamTravelsWithTheTrigger)
{
    fault::configure("stall=nth:2@250.5");
    double param = 0.0;
    EXPECT_FALSE(HM_FAULT_PARAM("stall", param));
    EXPECT_EQ(param, 0.0) << "param must only be set when firing";
    EXPECT_TRUE(HM_FAULT_PARAM("stall", param));
    EXPECT_EQ(param, 250.5);
}

TEST_F(FaultTest, ProbabilityZeroNeverFiresOneAlwaysFires)
{
    fault::configure("never=p:0,ever=p:1", 9);
    for (int i = 0; i < 50; ++i) {
        EXPECT_FALSE(HM_FAULT("never"));
        EXPECT_TRUE(HM_FAULT("ever"));
    }
}

TEST_F(FaultTest, ProbabilisticFiringSetIsSeedStable)
{
    const auto draw = [](std::uint64_t seed) {
        fault::configure("p=p:0.5", seed);
        std::vector<bool> fired;
        for (int i = 0; i < 64; ++i)
            fired.push_back(HM_FAULT("p"));
        return fired;
    };
    const std::vector<bool> first = draw(42);
    const std::vector<bool> second = draw(42);
    const std::vector<bool> other = draw(43);
    EXPECT_EQ(first, second) << "same seed must replay the same set";
    EXPECT_NE(first, other) << "different seed must differ somewhere";
    // Sanity: p=0.5 over 64 draws fires a non-degenerate fraction.
    const auto fires = std::count(first.begin(), first.end(), true);
    EXPECT_GT(fires, 10);
    EXPECT_LT(fires, 54);
}

TEST_F(FaultTest, ProbabilisticFiringSetIgnoresThreadInterleaving)
{
    // The per-hit hash makes hit index -> fires a pure function; the
    // total fire count over N hits is the same no matter how many
    // threads raced to produce them.
    fault::configure("p=p:0.3", 7);
    std::atomic<int> fires{0};
    std::vector<std::thread> threads;
    for (int t = 0; t < 4; ++t) {
        threads.emplace_back([&fires] {
            for (int i = 0; i < 64; ++i)
                if (HM_FAULT("p"))
                    ++fires;
        });
    }
    for (std::thread &thread : threads)
        thread.join();
    const int threaded = fires.load();

    fault::configure("p=p:0.3", 7);
    int serial = 0;
    for (int i = 0; i < 256; ++i)
        if (HM_FAULT("p"))
            ++serial;
    EXPECT_EQ(threaded, serial);
}

TEST_F(FaultTest, ReportCountsHitsAndFires)
{
    fault::configure("a=nth:2@9,b=always");
    (void)HM_FAULT("a");
    (void)HM_FAULT("a");
    (void)HM_FAULT("a");
    (void)HM_FAULT("b");
    const auto points = fault::report();
    ASSERT_EQ(points.size(), 2u);
    EXPECT_EQ(points[0].point, "a");
    EXPECT_EQ(points[0].trigger, "nth:2@9");
    EXPECT_EQ(points[0].hits, 3u);
    EXPECT_EQ(points[0].fires, 1u);
    EXPECT_EQ(points[1].point, "b");
    EXPECT_EQ(points[1].hits, 1u);
    EXPECT_EQ(points[1].fires, 1u);
}

TEST_F(FaultTest, ConfigureReplacesTheActiveSchedule)
{
    fault::configure("a=always");
    EXPECT_TRUE(HM_FAULT("a"));
    fault::configure("b=always");
    EXPECT_FALSE(HM_FAULT("a"));
    EXPECT_TRUE(HM_FAULT("b"));
    EXPECT_EQ(fault::activeSpec(), "b=always");
    fault::reset();
    EXPECT_FALSE(HM_FAULT("b"));
}

TEST_F(FaultTest, ConfigureFromEnvArmsAndSeeds)
{
    ::setenv("HIERMEANS_FAULTS", "env.point=always", 1);
    ::setenv("HIERMEANS_FAULT_SEED", "77", 1);
    fault::configureFromEnv();
    EXPECT_TRUE(HM_FAULT("env.point"));
    EXPECT_EQ(fault::activeSeed(), 77u);
    ::unsetenv("HIERMEANS_FAULTS");
    ::unsetenv("HIERMEANS_FAULT_SEED");
}

TEST_F(FaultTest, ConfigureFromEnvIsANoOpWhenUnset)
{
    ::unsetenv("HIERMEANS_FAULTS");
    fault::configure("keep=always");
    fault::configureFromEnv();
    EXPECT_EQ(fault::activeSpec(), "keep=always")
        << "unset env must not clobber an armed schedule";
}

TEST_F(FaultTest, MalformedSpecsThrowInvalidArgument)
{
    EXPECT_THROW(fault::configure("nodelimiter"), InvalidArgument);
    EXPECT_THROW(fault::configure("p="), InvalidArgument);
    EXPECT_THROW(fault::configure("p=bogus"), InvalidArgument);
    EXPECT_THROW(fault::configure("p=nth:0"), InvalidArgument);
    EXPECT_THROW(fault::configure("p=nth:x"), InvalidArgument);
    EXPECT_THROW(fault::configure("p=p:1.5"), InvalidArgument);
    EXPECT_THROW(fault::configure("p=p:junk"), InvalidArgument);
    EXPECT_THROW(fault::configure("p=nth:1@junk"), InvalidArgument);
    EXPECT_THROW(fault::configure("p=once,p=always"), InvalidArgument)
        << "naming a point twice is a spec bug";
}

} // namespace
