/**
 * @file
 * Tests for the gap statistic.
 */

#include <gtest/gtest.h>

#include "src/cluster/gap_statistic.h"
#include "src/util/error.h"
#include "src/util/rng.h"

namespace {

using namespace hiermeans::cluster;
using hiermeans::InvalidArgument;
using hiermeans::linalg::Matrix;
using hiermeans::linalg::Vector;

Matrix
blobs(std::size_t groups, std::size_t per, std::uint64_t seed)
{
    hiermeans::rng::Engine engine(seed);
    std::vector<Vector> rows;
    for (std::size_t g = 0; g < groups; ++g) {
        const double cx = static_cast<double>(g % 2) * 20.0;
        const double cy = static_cast<double>(g / 2) * 20.0;
        for (std::size_t i = 0; i < per; ++i) {
            rows.push_back({cx + engine.normal(0.0, 0.5),
                            cy + engine.normal(0.0, 0.5)});
        }
    }
    return Matrix::fromRows(rows);
}

TEST(GapStatisticTest, FindsThreePlantedClusters)
{
    GapConfig config;
    config.kMin = 1;
    config.kMax = 6;
    config.seed = 5;
    const GapResult result = gapStatistic(blobs(3, 6, 2), config);
    EXPECT_EQ(result.chosenK, 3u);
}

TEST(GapStatisticTest, FindsTwoPlantedClusters)
{
    GapConfig config;
    config.kMin = 1;
    config.kMax = 5;
    config.seed = 7;
    const GapResult result = gapStatistic(blobs(2, 8, 3), config);
    EXPECT_EQ(result.chosenK, 2u);
}

TEST(GapStatisticTest, PointsShapeAndMonotoneDispersion)
{
    GapConfig config;
    config.kMin = 1;
    config.kMax = 6;
    const GapResult result = gapStatistic(blobs(3, 5, 9), config);
    ASSERT_EQ(result.points.size(), 6u);
    for (std::size_t i = 0; i < result.points.size(); ++i) {
        EXPECT_EQ(result.points[i].k, i + 1);
        EXPECT_GE(result.points[i].standardError, 0.0);
        if (i > 0) {
            // Within-cluster dispersion never grows with k.
            EXPECT_LE(result.points[i].logDispersion,
                      result.points[i - 1].logDispersion + 1e-9);
        }
    }
}

TEST(GapStatisticTest, DeterministicForSeed)
{
    GapConfig config;
    config.seed = 11;
    const GapResult a = gapStatistic(blobs(2, 5, 4), config);
    const GapResult b = gapStatistic(blobs(2, 5, 4), config);
    EXPECT_EQ(a.chosenK, b.chosenK);
    for (std::size_t i = 0; i < a.points.size(); ++i)
        EXPECT_DOUBLE_EQ(a.points[i].gap, b.points[i].gap);
}

TEST(GapStatisticTest, KMaxClampedToPointCount)
{
    GapConfig config;
    config.kMin = 1;
    config.kMax = 50;
    const GapResult result = gapStatistic(blobs(2, 2, 6), config);
    EXPECT_EQ(result.points.back().k, 4u);
}

TEST(GapStatisticTest, Validation)
{
    GapConfig config;
    config.kMin = 0;
    EXPECT_THROW(gapStatistic(blobs(2, 3, 1), config), InvalidArgument);
    config = GapConfig{};
    config.references = 1;
    EXPECT_THROW(gapStatistic(blobs(2, 3, 1), config), InvalidArgument);
    EXPECT_THROW(gapStatistic(Matrix::fromRows({{1.0}}), GapConfig{}),
                 InvalidArgument);
}

} // namespace
