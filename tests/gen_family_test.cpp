/**
 * @file
 * Tests for the synthetic workload-family generators: seed
 * determinism (bit-identical suites), planted-structure invariants,
 * and ground-truth recovery (the full SOM + linkage pipeline must
 * find the planted partition with ARI >= 0.8 on default configs).
 */

#include <gtest/gtest.h>

#include <cmath>

#include "src/core/characterization.h"
#include "src/core/pipeline.h"
#include "src/gen/family.h"
#include "src/gen/manifest.h"
#include "src/gen/registry.h"
#include "src/scoring/partition.h"
#include "src/util/error.h"

namespace {

using namespace hiermeans;
using namespace hiermeans::gen;

const FamilyKind kAllFamilies[] = {
    FamilyKind::BigData,
    FamilyKind::SpecIntHistorical,
    FamilyKind::CorrelatedCluster,
    FamilyKind::HeavyTail,
};

TEST(GenFamilyTest, NamesRoundTrip)
{
    EXPECT_EQ(familyNames().size(), kFamilyCount);
    for (const FamilyKind kind : kAllFamilies) {
        const std::string name = familyName(kind);
        EXPECT_TRUE(isFamilyName(name));
        EXPECT_EQ(familyFromName(name), kind);
        EXPECT_EQ(familyMetricSlot(name), static_cast<std::size_t>(kind));
    }
    EXPECT_FALSE(isFamilyName("nope"));
    EXPECT_EQ(familyMetricSlot("nope"), kFamilyCount);
    EXPECT_THROW(familyFromName("nope"), InvalidArgument);
    EXPECT_EQ(genMetricLabels().size(), kGenMetricSlots);
    EXPECT_EQ(genMetricLabels().back(), "other");
}

TEST(GenFamilyTest, SameSeedBitIdentical)
{
    for (const FamilyKind kind : kAllFamilies) {
        const FamilyConfig config = defaultConfig(kind, 1234);
        const GeneratedSuite a = generateSuite(config);
        const GeneratedSuite b = generateSuite(config);
        SCOPED_TRACE(familyName(kind));
        ASSERT_EQ(a.profiles.size(), b.profiles.size());
        EXPECT_EQ(a.workloadNames(), b.workloadNames());
        EXPECT_TRUE(a.planted == b.planted);
        // Bit-identity, not approximate equality: the rendered
        // artifacts are byte-for-byte equal.
        const SuiteArtifacts ra = renderArtifacts(a, "d");
        const SuiteArtifacts rb = renderArtifacts(b, "d");
        EXPECT_EQ(ra.scoresCsv, rb.scoresCsv);
        EXPECT_EQ(ra.featuresCsv, rb.featuresCsv);
        EXPECT_EQ(ra.truthCsv, rb.truthCsv);
        EXPECT_EQ(ra.manifestText, rb.manifestText);
        EXPECT_EQ(ra.manifestJson, rb.manifestJson);
        EXPECT_EQ(ra.manifestBinary, rb.manifestBinary);
    }
}

TEST(GenFamilyTest, DifferentSeedsDiffer)
{
    for (const FamilyKind kind : kAllFamilies) {
        const GeneratedSuite a = generateSuite(defaultConfig(kind, 1));
        const GeneratedSuite b = generateSuite(defaultConfig(kind, 2));
        SCOPED_TRACE(familyName(kind));
        EXPECT_NE(renderArtifacts(a, "d").scoresCsv,
                  renderArtifacts(b, "d").scoresCsv);
    }
}

TEST(GenFamilyTest, PlantedStructureInvariants)
{
    for (const FamilyKind kind : kAllFamilies) {
        const FamilyConfig config = defaultConfig(kind, 7);
        const GeneratedSuite suite = generateSuite(config);
        SCOPED_TRACE(familyName(kind));
        EXPECT_EQ(suite.profiles.size(), config.workloads);
        EXPECT_EQ(suite.planted.size(), config.workloads);
        EXPECT_EQ(suite.planted.clusterCount(), config.clusters);
        EXPECT_EQ(suite.machines.size(), config.machines);
        EXPECT_EQ(suite.machines[0].name, "ref");
        EXPECT_EQ(suite.features.values.rows(), config.workloads);
        ASSERT_EQ(suite.scores.rows(), config.workloads);
        ASSERT_EQ(suite.scores.cols(), config.machines);
        for (std::size_t w = 0; w < suite.scores.rows(); ++w)
            for (std::size_t m = 0; m < suite.scores.cols(); ++m)
                EXPECT_GT(suite.scores(w, m), 0.0);
        // Workload names are unique (CSV parsers require it).
        auto names = suite.workloadNames();
        std::sort(names.begin(), names.end());
        EXPECT_EQ(std::unique(names.begin(), names.end()), names.end());
    }
}

TEST(GenFamilyTest, HeavyTailBodyDominates)
{
    const GeneratedSuite suite =
        generateSuite(defaultConfig(FamilyKind::HeavyTail, 11));
    const auto sizes = suite.planted.clusterSizes();
    for (std::size_t c = 1; c < sizes.size(); ++c)
        EXPECT_GT(sizes[0], sizes[c]);
}

TEST(GenFamilyTest, RecoversPlantedPartition)
{
    for (const FamilyKind kind : kAllFamilies) {
        const FamilyConfig config =
            defaultConfig(kind, FamilyConfig().seed);
        const GeneratedSuite suite = generateSuite(config);
        SCOPED_TRACE(familyName(kind));

        const core::CharacteristicVectors vectors =
            core::characterizeFromMica(suite.features,
                                       suite.workloadNames());
        core::PipelineConfig pipeline;
        pipeline.autoSizeSom(config.workloads);
        const core::ClusterAnalysis analysis =
            core::analyzeClusters(vectors, pipeline);

        // Judge recovery at the planted k (the sweep covers it:
        // kMin=2 <= clusters <= kMax=8 on default configs).
        const scoring::Partition *recovered = nullptr;
        for (const auto &partition : analysis.partitions)
            if (partition.clusterCount() == config.clusters)
                recovered = &partition;
        ASSERT_NE(recovered, nullptr);
        const double ari = scoring::adjustedRandIndex(*recovered,
                                                      suite.planted);
        EXPECT_GE(ari, 0.8) << "ARI " << ari << " below recovery floor";
    }
}

TEST(GenFamilyTest, InvalidConfigsThrow)
{
    FamilyConfig config;
    config.workloads = 3;
    EXPECT_THROW(generateSuite(config), InvalidArgument);
    config = FamilyConfig();
    config.clusters = 1;
    EXPECT_THROW(generateSuite(config), InvalidArgument);
    config = FamilyConfig();
    config.clusters = config.workloads + 1;
    EXPECT_THROW(generateSuite(config), InvalidArgument);
    config = FamilyConfig();
    config.machines = 1;
    EXPECT_THROW(generateSuite(config), InvalidArgument);
    config = FamilyConfig();
    config.withinJitter = -0.1;
    EXPECT_THROW(generateSuite(config), InvalidArgument);
}

} // namespace
