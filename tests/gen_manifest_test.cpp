/**
 * @file
 * Tests for generated-suite artifact rendering: CSV parse-back and
 * alignment, manifest syntax, text/binary bit-identity through the
 * wire codec, planted-truth round trip, and the deterministic
 * observation schedule.
 */

#include <gtest/gtest.h>

#include "src/core/csv_io.h"
#include "src/engine/manifest.h"
#include "src/gen/manifest.h"
#include "src/gen/observe.h"
#include "src/gen/registry.h"
#include "src/wire/wire.h"

namespace {

using namespace hiermeans;
using namespace hiermeans::gen;

GeneratedSuite
sampleSuite(FamilyKind kind = FamilyKind::BigData)
{
    return generateSuite(defaultConfig(kind, 99));
}

TEST(GenManifestTest, CsvArtifactsParseBackAligned)
{
    const GeneratedSuite suite = sampleSuite();
    const SuiteArtifacts artifacts = renderArtifacts(suite, "/tmp/gen");

    const core::ScoresCsv scores = core::parseScoresCsv(artifacts.scoresCsv);
    const core::FeaturesCsv features =
        core::parseFeaturesCsv(artifacts.featuresCsv);
    core::requireAlignedWorkloads(scores, features);
    EXPECT_EQ(scores.workloads, suite.workloadNames());
    ASSERT_EQ(scores.machines.size(), suite.machines.size());
    EXPECT_EQ(scores.machines[0], "ref");
    // %.17g printing reproduces the exact doubles.
    for (std::size_t w = 0; w < suite.scores.rows(); ++w)
        for (std::size_t m = 0; m < suite.scores.cols(); ++m)
            EXPECT_EQ(scores.scores(w, m), suite.scores(w, m));
    for (std::size_t w = 0; w < suite.features.values.rows(); ++w)
        for (std::size_t f = 0; f < suite.features.values.cols(); ++f)
            EXPECT_EQ(features.values(w, f), suite.features.values(w, f));
}

TEST(GenManifestTest, TruthCsvRoundTripsPlantedPartition)
{
    const GeneratedSuite suite = sampleSuite(FamilyKind::HeavyTail);
    const SuiteArtifacts artifacts = renderArtifacts(suite, ".");
    const scoring::Partition truth =
        core::parsePartitionCsv(artifacts.truthCsv, suite.workloadNames());
    EXPECT_TRUE(truth == suite.planted);
}

TEST(GenManifestTest, ManifestLinesParseAndPointAtArtifacts)
{
    const GeneratedSuite suite = sampleSuite();
    const SuiteArtifacts artifacts = renderArtifacts(suite, "/data/x");
    ASSERT_EQ(artifacts.manifestLines.size(), suite.machines.size() - 1);
    const std::vector<engine::ManifestLine> entries =
        engine::parseManifest(artifacts.manifestText);
    ASSERT_EQ(entries.size(), artifacts.manifestLines.size());
    for (std::size_t i = 0; i < entries.size(); ++i) {
        EXPECT_EQ(entries[i].flags.getString("scores", ""),
                  "/data/x/scores.csv");
        EXPECT_EQ(entries[i].flags.getString("features", ""),
                  "/data/x/features.csv");
        EXPECT_EQ(entries[i].flags.getString("machine-a", ""),
                  suite.machines[i + 1].name);
        EXPECT_EQ(entries[i].flags.getString("machine-b", ""), "ref");
    }
}

TEST(GenManifestTest, BinaryManifestIsBitIdenticalTwin)
{
    for (const std::string &family : familyNames()) {
        const GeneratedSuite suite = generateNamed(family, 5);
        const SuiteArtifacts artifacts = renderArtifacts(suite, "d");
        SCOPED_TRACE(family);
        // Text and binary agree byte-for-byte through the codec —
        // the hmconvert round-trip guarantee.
        const wire::BatchView view(artifacts.manifestBinary);
        EXPECT_EQ(view.manifestText(), artifacts.manifestText);
        EXPECT_EQ(wire::encodeBatchManifest(artifacts.manifestLines),
                  artifacts.manifestBinary);
    }
}

TEST(GenManifestTest, ManifestJsonNamesFamilyAndLines)
{
    const GeneratedSuite suite = sampleSuite(FamilyKind::CorrelatedCluster);
    const SuiteArtifacts artifacts = renderArtifacts(suite, ".");
    EXPECT_NE(artifacts.manifestJson.find("\"family\":\"correlated-cluster\""),
              std::string::npos);
    EXPECT_NE(artifacts.manifestJson.find("\"suite\":\"gen.correlated-cluster\""),
              std::string::npos);
    EXPECT_NE(artifacts.manifestJson.find("machine-a=m1"), std::string::npos);
}

TEST(GenManifestTest, ObservationScheduleIsDeterministicWithKnownShift)
{
    const ObserveConfig config;
    const ObservationSchedule a = generateSchedule(config);
    const ObservationSchedule b = generateSchedule(config);
    ASSERT_EQ(a.observations.size(), config.stationary + config.shifted);
    EXPECT_EQ(a.shiftIndex, config.stationary);
    for (std::size_t i = 0; i < a.observations.size(); ++i) {
        EXPECT_EQ(a.observations[i].ratio, b.observations[i].ratio);
        EXPECT_EQ(a.observations[i].id, b.observations[i].id);
        EXPECT_TRUE(a.observations[i].hasPlain);
        if (i < a.shiftIndex)
            EXPECT_LT(a.observations[i].ratio, 5.0);
        else
            EXPECT_GE(a.observations[i].ratio, config.shiftTarget);
    }
    // Observations encode as wire frames (the observe intake body).
    const std::string frame = wire::encodeObservation(a.observations[0]);
    const wire::Observation back = wire::decodeObservation(frame);
    EXPECT_EQ(back.ratio, a.observations[0].ratio);
    EXPECT_EQ(back.id, a.observations[0].id);
}

} // namespace
