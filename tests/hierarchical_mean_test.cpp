/**
 * @file
 * Unit and property tests for the hierarchical means (Section II).
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <tuple>

#include "src/scoring/hierarchical_mean.h"
#include "src/scoring/partition.h"
#include "src/stats/means.h"
#include "src/util/error.h"
#include "src/util/rng.h"

namespace {

using hiermeans::DomainError;
using hiermeans::scoring::clusterRepresentatives;
using hiermeans::scoring::hierarchicalArithmeticMean;
using hiermeans::scoring::hierarchicalGeometricMean;
using hiermeans::scoring::hierarchicalHarmonicMean;
using hiermeans::scoring::hierarchicalMean;
using hiermeans::scoring::impliedWeights;
using hiermeans::scoring::Partition;
using hiermeans::stats::MeanKind;

TEST(HierarchicalMeanTest, HgmMatchesHandComputedTwoClusters)
{
    // Clusters {4, 9} and {1}: inner GMs are 6 and 1; HGM = sqrt(6).
    const std::vector<double> values = {4.0, 9.0, 1.0};
    const Partition p = Partition::fromGroups({{0, 1}, {2}});
    EXPECT_NEAR(hierarchicalGeometricMean(values, p), std::sqrt(6.0),
                1e-12);
}

TEST(HierarchicalMeanTest, HamMatchesHandComputed)
{
    // Clusters {2, 4} and {10}: inner AMs 3 and 10; HAM = 6.5.
    const std::vector<double> values = {2.0, 4.0, 10.0};
    const Partition p = Partition::fromGroups({{0, 1}, {2}});
    EXPECT_NEAR(hierarchicalArithmeticMean(values, p), 6.5, 1e-12);
}

TEST(HierarchicalMeanTest, HhmMatchesHandComputed)
{
    // Clusters {2, 6} and {4}: inner HMs are 3 and 4.
    // HHM = 2 / (1/3 + 1/4) = 24/7.
    const std::vector<double> values = {2.0, 6.0, 4.0};
    const Partition p = Partition::fromGroups({{0, 1}, {2}});
    EXPECT_NEAR(hierarchicalHarmonicMean(values, p), 24.0 / 7.0, 1e-12);
}

TEST(HierarchicalMeanTest, PaperFormulaNestedRadicals)
{
    // HGM = (prod_i (prod_j X_ij)^(1/n_i))^(1/k) written out explicitly.
    const std::vector<double> values = {1.5, 2.5, 3.5, 4.5, 5.5};
    const Partition p = Partition::fromGroups({{0, 1, 2}, {3, 4}});
    const double inner1 = std::cbrt(1.5 * 2.5 * 3.5);
    const double inner2 = std::sqrt(4.5 * 5.5);
    EXPECT_NEAR(hierarchicalGeometricMean(values, p),
                std::sqrt(inner1 * inner2), 1e-12);
}

TEST(HierarchicalMeanTest, ClusterRepresentativesExposed)
{
    const std::vector<double> values = {4.0, 9.0, 1.0};
    const Partition p = Partition::fromGroups({{0, 1}, {2}});
    const auto reps =
        clusterRepresentatives(MeanKind::Geometric, values, p);
    ASSERT_EQ(reps.size(), 2u);
    EXPECT_NEAR(reps[0], 6.0, 1e-12);
    EXPECT_NEAR(reps[1], 1.0, 1e-12);
}

TEST(HierarchicalMeanTest, RejectsSizeMismatch)
{
    const std::vector<double> values = {1.0, 2.0};
    const Partition p = Partition::single(3);
    EXPECT_THROW(hierarchicalGeometricMean(values, p),
                 hiermeans::InvalidArgument);
}

TEST(HierarchicalMeanTest, GeometricRejectsNonPositiveValues)
{
    const std::vector<double> values = {1.0, -2.0, 3.0};
    const Partition p = Partition::single(3);
    EXPECT_THROW(hierarchicalGeometricMean(values, p), DomainError);
    EXPECT_THROW(hierarchicalHarmonicMean(values, p), DomainError);
    // HAM tolerates negatives.
    EXPECT_NO_THROW(hierarchicalArithmeticMean(values, p));
}

TEST(HierarchicalMeanTest, ImpliedWeightsSumToOne)
{
    const Partition p = Partition::fromGroups({{0, 1, 2}, {3}, {4, 5}});
    const auto weights = impliedWeights(p);
    double sum = 0.0;
    for (double w : weights)
        sum += w;
    EXPECT_NEAR(sum, 1.0, 1e-12);
    // Cluster of 3 -> 1/(3*3); singleton -> 1/3; cluster of 2 -> 1/6.
    EXPECT_NEAR(weights[0], 1.0 / 9.0, 1e-12);
    EXPECT_NEAR(weights[3], 1.0 / 3.0, 1e-12);
    EXPECT_NEAR(weights[4], 1.0 / 6.0, 1e-12);
}

TEST(HierarchicalMeanTest, EqualsWeightedMeanWithImpliedWeights)
{
    // A hierarchical mean is exactly the weighted mean under the
    // implied weights — for all three families.
    const std::vector<double> values = {2.0, 3.0, 5.0, 7.0, 11.0};
    const Partition p = Partition::fromGroups({{0, 2}, {1}, {3, 4}});
    const auto weights = impliedWeights(p);
    for (MeanKind kind : {MeanKind::Arithmetic, MeanKind::Geometric,
                          MeanKind::Harmonic}) {
        EXPECT_NEAR(hierarchicalMean(kind, values, p),
                    hiermeans::stats::weightedMean(kind, values, weights),
                    1e-12)
            << hiermeans::stats::meanKindName(kind);
    }
}

// ---------------------------------------------------------------------
// Property sweeps over random suites.
// ---------------------------------------------------------------------

class HierarchicalMeanProperty
    : public ::testing::TestWithParam<std::tuple<std::uint64_t, int>>
{
  protected:
    void
    SetUp() override
    {
        const auto [seed, size] = GetParam();
        hiermeans::rng::Engine engine(seed);
        n_ = static_cast<std::size_t>(size);
        values_.clear();
        for (std::size_t i = 0; i < n_; ++i)
            values_.push_back(engine.uniform(0.1, 10.0));

        // A random partition with a random number of clusters.
        const std::size_t k = 1 + engine.below(n_);
        std::vector<std::size_t> labels(n_);
        for (std::size_t i = 0; i < n_; ++i)
            labels[i] = i < k ? i : engine.below(k); // all clusters used.
        engine.shuffle(labels);
        partition_ = Partition::fromLabels(labels);
    }

    std::size_t n_ = 0;
    std::vector<double> values_;
    Partition partition_ = Partition::single(1);
};

TEST_P(HierarchicalMeanProperty, DegeneratesToPlainMeanWhenDiscrete)
{
    const Partition discrete = Partition::discrete(n_);
    for (MeanKind kind : {MeanKind::Arithmetic, MeanKind::Geometric,
                          MeanKind::Harmonic}) {
        EXPECT_NEAR(hierarchicalMean(kind, values_, discrete),
                    hiermeans::stats::mean(kind, values_), 1e-10);
    }
}

TEST_P(HierarchicalMeanProperty, DegeneratesToPlainMeanWhenSingle)
{
    const Partition single = Partition::single(n_);
    for (MeanKind kind : {MeanKind::Arithmetic, MeanKind::Geometric,
                          MeanKind::Harmonic}) {
        EXPECT_NEAR(hierarchicalMean(kind, values_, single),
                    hiermeans::stats::mean(kind, values_), 1e-10);
    }
}

TEST_P(HierarchicalMeanProperty, MeanInequalityHmLeGmLeAm)
{
    const double ham =
        hierarchicalMean(MeanKind::Arithmetic, values_, partition_);
    const double hgm =
        hierarchicalMean(MeanKind::Geometric, values_, partition_);
    const double hhm =
        hierarchicalMean(MeanKind::Harmonic, values_, partition_);
    EXPECT_LE(hhm, hgm + 1e-10);
    EXPECT_LE(hgm, ham + 1e-10);
}

TEST_P(HierarchicalMeanProperty, BoundedByExtremeValues)
{
    const double lo = *std::min_element(values_.begin(), values_.end());
    const double hi = *std::max_element(values_.begin(), values_.end());
    for (MeanKind kind : {MeanKind::Arithmetic, MeanKind::Geometric,
                          MeanKind::Harmonic}) {
        const double m = hierarchicalMean(kind, values_, partition_);
        EXPECT_GE(m, lo - 1e-10);
        EXPECT_LE(m, hi + 1e-10);
    }
}

TEST_P(HierarchicalMeanProperty, ScaleEquivariant)
{
    // Multiplying all scores by c multiplies every hierarchical mean
    // by c (the property that makes speedup normalization sound).
    const double c = 3.7;
    std::vector<double> scaled = values_;
    for (double &v : scaled)
        v *= c;
    for (MeanKind kind : {MeanKind::Arithmetic, MeanKind::Geometric,
                          MeanKind::Harmonic}) {
        EXPECT_NEAR(hierarchicalMean(kind, scaled, partition_),
                    c * hierarchicalMean(kind, values_, partition_),
                    1e-8);
    }
}

TEST_P(HierarchicalMeanProperty, InvariantUnderDuplicateInjection)
{
    // Duplicating a workload inside its own cluster never moves the
    // HGM/HAM/HHM: the inner mean of m identical copies is the value
    // itself. This is the redundancy-cancellation core claim.
    hiermeans::rng::Engine engine(std::get<0>(GetParam()) ^ 0xABCD);
    const std::size_t target = engine.below(n_);

    std::vector<double> injected = values_;
    std::vector<std::size_t> labels = partition_.labels();
    for (int copy = 0; copy < 4; ++copy) {
        injected.push_back(values_[target]);
        labels.push_back(partition_.label(target));
    }
    const Partition extended = Partition::fromLabels(labels);
    for (MeanKind kind : {MeanKind::Arithmetic, MeanKind::Geometric,
                          MeanKind::Harmonic}) {
        // Note: exact only when the duplicate equals the cluster's
        // existing member; use a singleton cluster to make it exact.
        const double before = hierarchicalMean(kind, values_, partition_);
        const double after = hierarchicalMean(kind, injected, extended);
        // Duplicates shift the inner mean toward the duplicated value,
        // but the effect is bounded by the cluster's value range; for
        // the all-identical-cluster case tested below it is exactly 0.
        (void)before;
        (void)after;
    }

    // Exact invariance: duplicate every member of one cluster.
    const std::size_t cluster = partition_.label(target);
    std::vector<double> dup_values = values_;
    std::vector<std::size_t> dup_labels = partition_.labels();
    for (std::size_t i = 0; i < n_; ++i) {
        if (partition_.label(i) == cluster) {
            dup_values.push_back(values_[i]);
            dup_labels.push_back(cluster);
        }
    }
    const Partition dup_partition = Partition::fromLabels(dup_labels);
    for (MeanKind kind : {MeanKind::Arithmetic, MeanKind::Geometric,
                          MeanKind::Harmonic}) {
        EXPECT_NEAR(hierarchicalMean(kind, dup_values, dup_partition),
                    hierarchicalMean(kind, values_, partition_), 1e-10)
            << hiermeans::stats::meanKindName(kind);
    }
}

TEST_P(HierarchicalMeanProperty, PermutationInvariant)
{
    hiermeans::rng::Engine engine(std::get<0>(GetParam()) ^ 0x1234);
    const auto perm = hiermeans::rng::permutation(engine, n_);
    std::vector<double> permuted(n_);
    std::vector<std::size_t> permuted_labels(n_);
    for (std::size_t i = 0; i < n_; ++i) {
        permuted[i] = values_[perm[i]];
        permuted_labels[i] = partition_.label(perm[i]);
    }
    const Partition permuted_partition =
        Partition::fromLabels(permuted_labels);
    for (MeanKind kind : {MeanKind::Arithmetic, MeanKind::Geometric,
                          MeanKind::Harmonic}) {
        EXPECT_NEAR(hierarchicalMean(kind, permuted, permuted_partition),
                    hierarchicalMean(kind, values_, partition_), 1e-10);
    }
}

INSTANTIATE_TEST_SUITE_P(
    RandomSuites, HierarchicalMeanProperty,
    ::testing::Combine(::testing::Values(1u, 2u, 3u, 42u, 1337u,
                                         0xDEADu),
                       ::testing::Values(2, 3, 5, 8, 13, 21)));

} // namespace
