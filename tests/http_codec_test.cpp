/** HTTP/1.1 codec tests: incremental parsing, limits, keep-alive. */

#include <gtest/gtest.h>

#include "src/server/http.h"

namespace {

using namespace hiermeans::server;

using State = HttpRequestParser::State;

TEST(HttpRequestParserTest, ParsesSimpleGet)
{
    HttpRequestParser parser;
    ASSERT_EQ(parser.feed("GET /healthz HTTP/1.1\r\n"
                          "Host: localhost\r\n\r\n"),
              State::Ready);
    const HttpRequest &request = parser.request();
    EXPECT_EQ(request.method, "GET");
    EXPECT_EQ(request.target, "/healthz");
    EXPECT_EQ(request.version, "HTTP/1.1");
    EXPECT_EQ(request.header("host", ""), "localhost");
    EXPECT_TRUE(request.body.empty());
    EXPECT_TRUE(request.keepAlive());
}

TEST(HttpRequestParserTest, ParsesBodyWithContentLength)
{
    HttpRequestParser parser;
    ASSERT_EQ(parser.feed("POST /v1/score HTTP/1.1\r\n"
                          "Content-Length: 11\r\n\r\n"
                          "hello world"),
              State::Ready);
    EXPECT_EQ(parser.request().body, "hello world");
}

TEST(HttpRequestParserTest, ByteAtATimeFeedingWorks)
{
    const std::string wire = "POST /v1/score HTTP/1.1\r\n"
                             "Content-Length: 4\r\n\r\nabcd";
    HttpRequestParser parser;
    for (std::size_t i = 0; i + 1 < wire.size(); ++i)
        ASSERT_EQ(parser.feed(wire.substr(i, 1)), State::NeedMore)
            << "byte " << i;
    ASSERT_EQ(parser.feed(wire.substr(wire.size() - 1)), State::Ready);
    EXPECT_EQ(parser.request().body, "abcd");
}

TEST(HttpRequestParserTest, HeaderNamesLowercasedValuesTrimmed)
{
    HttpRequestParser parser;
    ASSERT_EQ(parser.feed("GET / HTTP/1.1\r\n"
                          "X-Custom-Header:   padded value  \r\n\r\n"),
              State::Ready);
    EXPECT_EQ(parser.request().header("x-custom-header", ""),
              "padded value");
}

TEST(HttpRequestParserTest, BareLfLineEndingsAccepted)
{
    HttpRequestParser parser;
    ASSERT_EQ(parser.feed("GET /metrics HTTP/1.1\nHost: x\n\n"),
              State::Ready);
    EXPECT_EQ(parser.request().path(), "/metrics");
}

TEST(HttpRequestParserTest, QueryStringStrippedFromPath)
{
    HttpRequestParser parser;
    ASSERT_EQ(parser.feed("GET /metrics?verbose=1 HTTP/1.1\r\n\r\n"),
              State::Ready);
    EXPECT_EQ(parser.request().target, "/metrics?verbose=1");
    EXPECT_EQ(parser.request().path(), "/metrics");
}

TEST(HttpRequestParserTest, MalformedRequestLineIs400)
{
    HttpRequestParser parser;
    ASSERT_EQ(parser.feed("NOT-HTTP\r\n\r\n"), State::Error);
    EXPECT_EQ(parser.errorStatus(), 400);
}

TEST(HttpRequestParserTest, BadContentLengthIs400)
{
    HttpRequestParser parser;
    ASSERT_EQ(parser.feed("POST / HTTP/1.1\r\n"
                          "Content-Length: banana\r\n\r\n"),
              State::Error);
    EXPECT_EQ(parser.errorStatus(), 400);
}

TEST(HttpRequestParserTest, OversizedBodyIs413)
{
    HttpRequestParser::Limits limits;
    limits.maxBodyBytes = 8;
    HttpRequestParser parser(limits);
    ASSERT_EQ(parser.feed("POST / HTTP/1.1\r\n"
                          "Content-Length: 9\r\n\r\n"),
              State::Error);
    EXPECT_EQ(parser.errorStatus(), 413);
}

TEST(HttpRequestParserTest, OversizedHeaderBlockIs431)
{
    HttpRequestParser::Limits limits;
    limits.maxHeaderBytes = 64;
    HttpRequestParser parser(limits);
    const std::string padding(128, 'x');
    ASSERT_EQ(parser.feed("GET / HTTP/1.1\r\nX-Pad: " + padding +
                          "\r\n\r\n"),
              State::Error);
    EXPECT_EQ(parser.errorStatus(), 431);
}

TEST(HttpRequestParserTest, ConnectionCloseDisablesKeepAlive)
{
    HttpRequestParser parser;
    ASSERT_EQ(parser.feed("GET / HTTP/1.1\r\n"
                          "Connection: close\r\n\r\n"),
              State::Ready);
    EXPECT_FALSE(parser.request().keepAlive());
}

TEST(HttpRequestParserTest, Http10DefaultsToClose)
{
    HttpRequestParser parser;
    ASSERT_EQ(parser.feed("GET / HTTP/1.0\r\n\r\n"), State::Ready);
    EXPECT_FALSE(parser.request().keepAlive());
}

TEST(HttpRequestParserTest, ResetContinuesWithPipelinedRequest)
{
    HttpRequestParser parser;
    ASSERT_EQ(parser.feed("GET /a HTTP/1.1\r\n\r\n"
                          "GET /b HTTP/1.1\r\n\r\n"),
              State::Ready);
    EXPECT_EQ(parser.request().path(), "/a");
    // The second request was already buffered: reset() re-parses it.
    ASSERT_EQ(parser.reset(), State::Ready);
    EXPECT_EQ(parser.request().path(), "/b");
    ASSERT_EQ(parser.reset(), State::NeedMore);
    EXPECT_FALSE(parser.midRequest());
}

TEST(HttpRequestParserTest, MidRequestReportsBufferedBytes)
{
    HttpRequestParser parser;
    EXPECT_FALSE(parser.midRequest());
    ASSERT_EQ(parser.feed("GET /slow HT"), State::NeedMore);
    EXPECT_TRUE(parser.midRequest());
}

TEST(HttpResponseTest, SerializeEmitsContentLengthAndConnection)
{
    HttpResponse response = textResponse(200, "hello");
    const std::string wire = response.serialize();
    EXPECT_NE(wire.find("HTTP/1.1 200 OK\r\n"), std::string::npos);
    EXPECT_NE(wire.find("Content-Length: 5\r\n"), std::string::npos);
    EXPECT_NE(wire.find("Connection: keep-alive\r\n"),
              std::string::npos);
    EXPECT_EQ(wire.substr(wire.size() - 5), "hello");

    response.closeConnection = true;
    EXPECT_NE(response.serialize().find("Connection: close\r\n"),
              std::string::npos);
}

TEST(HttpResponseTest, JsonResponseSetsContentType)
{
    const HttpResponse response = jsonResponse(200, "{}");
    EXPECT_NE(response.serialize().find(
                  "Content-Type: application/json"),
              std::string::npos);
}

TEST(HttpResponseParserTest, RoundTripsSerializedResponse)
{
    HttpResponse response = jsonResponse(503, "{\"error\":\"busy\"}");
    response.set("Retry-After", "1");

    HttpResponseParser parser;
    ASSERT_EQ(parser.feed(response.serialize()),
              HttpResponseParser::State::Ready);
    EXPECT_EQ(parser.response().status, 503);
    EXPECT_EQ(parser.response().header("retry-after", ""), "1");
    EXPECT_EQ(parser.response().body, "{\"error\":\"busy\"}");
}

TEST(HttpResponseParserTest, KeepAliveResetParsesNextResponse)
{
    HttpResponseParser parser;
    const std::string two = textResponse(200, "one").serialize() +
                            textResponse(404, "two").serialize();
    ASSERT_EQ(parser.feed(two), HttpResponseParser::State::Ready);
    EXPECT_EQ(parser.response().body, "one");
    ASSERT_EQ(parser.reset(), HttpResponseParser::State::Ready);
    EXPECT_EQ(parser.response().status, 404);
    EXPECT_EQ(parser.response().body, "two");
}

TEST(StatusReasonTest, KnownAndUnknownCodes)
{
    EXPECT_STREQ(statusReason(200), "OK");
    EXPECT_STREQ(statusReason(503), "Service Unavailable");
    EXPECT_STREQ(statusReason(504), "Gateway Timeout");
    EXPECT_STREQ(statusReason(299), "Unknown");
}

} // namespace
