/**
 * @file
 * Malformed-HTTP regression corpus: raw bytes nobody well-behaved
 * would send — truncated requests, garbage request lines, bogus or
 * oversized Content-Length, NUL bytes, header floods, pipelined junk —
 * fired at a live Server over raw sockets. The contract: the offender
 * gets a 400-class answer (400 / 413 / 431) or a closed connection,
 * the process never crashes, and the very next client is served
 * normally.
 */

#include <cstdlib>
#include <gtest/gtest.h>
#include <memory>
#include <string>
#include <sys/socket.h>

#include "src/server/client.h"
#include "src/server/server.h"
#include "src/util/net.h"

namespace {

using namespace hiermeans;

class HttpMalformedTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        server::Server::Config config;
        config.port = 0;
        config.engine.threads = 1;
        config.connectionThreads = 4;
        config.maxBodyBytes = 4096;
        server_ = std::make_unique<server::Server>(config);
        server_->start();
    }

    void TearDown() override { server_->stop(); }

    /** Send raw bytes, half-close, and drain whatever comes back. */
    std::string
    fire(const std::string &wire) const
    {
        net::Socket socket =
            net::connectTcp("127.0.0.1", server_->port());
        net::writeAll(socket.fd(), wire);
        ::shutdown(socket.fd(), SHUT_WR);
        std::string reply;
        char buffer[4096];
        while (net::waitReadable(socket.fd(), 5000)) {
            std::size_t n = 0;
            try {
                n = net::readSome(socket.fd(), buffer, sizeof(buffer));
            } catch (const Error &) {
                break; // reset counts as closed.
            }
            if (n == 0)
                break;
            reply.append(buffer, n);
        }
        return reply;
    }

    /** The HTTP status of the @p index-th response in a raw reply
     *  stream, or 0 when there is none. */
    static int
    statusAt(const std::string &reply, std::size_t index = 0)
    {
        std::size_t pos = 0;
        for (std::size_t skipped = 0;; ++skipped) {
            pos = reply.find("HTTP/1.1 ", pos);
            if (pos == std::string::npos)
                return 0;
            if (skipped == index)
                break;
            pos += 9;
        }
        return std::atoi(reply.c_str() + pos + 9);
    }

    /** The server must still serve clean requests after the abuse. */
    void
    expectStillServiceable() const
    {
        server::HttpClient c("127.0.0.1", server_->port());
        EXPECT_EQ(c.roundTrip("GET", "/healthz").status, 200);
    }

    std::unique_ptr<server::Server> server_;
};

TEST_F(HttpMalformedTest, GarbageRequestLineIs400)
{
    EXPECT_EQ(statusAt(fire("GARBAGE\r\n\r\n")), 400);
    expectStillServiceable();
}

TEST_F(HttpMalformedTest, RequestLineMissingVersionIs400)
{
    EXPECT_EQ(statusAt(fire("GET /healthz\r\n\r\n")), 400);
    expectStillServiceable();
}

TEST_F(HttpMalformedTest, NonHttpVersionTokenIs400)
{
    EXPECT_EQ(statusAt(fire("GET /healthz SMTP/1.0\r\n\r\n")), 400);
    expectStillServiceable();
}

TEST_F(HttpMalformedTest, HeaderFieldWithoutColonIs400)
{
    EXPECT_EQ(statusAt(fire("GET /healthz HTTP/1.1\r\n"
                            "this header has no colon\r\n\r\n")),
              400);
    expectStillServiceable();
}

TEST_F(HttpMalformedTest, GarbageContentLengthIs400)
{
    EXPECT_EQ(statusAt(fire("POST /v1/score HTTP/1.1\r\n"
                            "Content-Length: banana\r\n\r\n")),
              400);
    EXPECT_EQ(statusAt(fire("POST /v1/score HTTP/1.1\r\n"
                            "Content-Length: -5\r\n\r\n")),
              400);
    expectStillServiceable();
}

TEST_F(HttpMalformedTest, OversizedContentLengthIs413)
{
    // Declared far past maxBodyBytes; rejected from the header alone,
    // before any body bytes arrive.
    EXPECT_EQ(statusAt(fire("POST /v1/score HTTP/1.1\r\n"
                            "Content-Length: 10000000\r\n\r\n")),
              413);
    expectStillServiceable();
}

TEST_F(HttpMalformedTest, MissingContentLengthFailsCleanly)
{
    // No Content-Length on a POST parses as an empty body; the score
    // handler must reject it as malformed, not crash on it.
    const std::string reply = fire("POST /v1/score HTTP/1.1\r\n\r\n"
                                   "scores=x features=y");
    EXPECT_EQ(statusAt(reply), 400);
    expectStillServiceable();
}

TEST_F(HttpMalformedTest, NulBytesInRequestAre400)
{
    std::string wire = "GET /health";
    wire.push_back('\0');
    wire.push_back('\0');
    wire += " HTTP/1.1\r\nX-Junk: a";
    wire.push_back('\0');
    wire += "b\r\n\r\n";
    const std::string reply = fire(wire);
    // Either rejected outright or answered (the NUL-bearing target is
    // simply an unknown path) — never a crash, never a hang.
    const int status = statusAt(reply);
    EXPECT_TRUE(status == 400 || status == 404) << "status " << status;
    expectStillServiceable();
}

TEST_F(HttpMalformedTest, HeaderFloodIs431)
{
    std::string wire = "GET /healthz HTTP/1.1\r\n";
    for (int i = 0; i < 2000; ++i)
        wire += "X-Flood-" + std::to_string(i) + ": aaaaaaaaaa\r\n";
    wire += "\r\n";
    EXPECT_EQ(statusAt(fire(wire)), 431);
    expectStillServiceable();
}

TEST_F(HttpMalformedTest, EndlessHeadersWithoutTerminatorAre431)
{
    // Never sends the blank line; the parser must give up at its
    // header cap instead of buffering forever.
    std::string wire = "GET /healthz HTTP/1.1\r\n";
    while (wire.size() < 64 * 1024)
        wire += "X-Drip: aaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaa\r\n";
    EXPECT_EQ(statusAt(fire(wire)), 431);
    expectStillServiceable();
}

TEST_F(HttpMalformedTest, OversizedGarbageBlobIsRejected)
{
    const std::string blob(128 * 1024, '\xff');
    const int status = statusAt(fire(blob));
    EXPECT_TRUE(status == 400 || status == 431) << "status " << status;
    expectStillServiceable();
}

TEST_F(HttpMalformedTest, TruncatedRequestThenEofJustCloses)
{
    // Half a request then EOF: nothing to answer; the server drops the
    // connection without wedging a worker.
    EXPECT_EQ(fire("POST /v1/score HTTP/1.1\r\nContent-Le"), "");
    EXPECT_EQ(fire("GET /healthz HT"), "");
    expectStillServiceable();
}

TEST_F(HttpMalformedTest, PipelinedJunkAfterAValidRequest)
{
    // A clean GET followed in the same segment by garbage: the first
    // is answered 200, the junk 400, then the connection closes.
    const std::string reply =
        fire("GET /healthz HTTP/1.1\r\n\r\nTOTAL junk\r\n\r\n");
    EXPECT_EQ(statusAt(reply, 0), 200);
    EXPECT_EQ(statusAt(reply, 1), 400);
    expectStillServiceable();
}

TEST_F(HttpMalformedTest, AbuseBarrageLeavesMetricsCoherent)
{
    fire("GARBAGE\r\n\r\n");
    fire("POST /v1/score HTTP/1.1\r\nContent-Length: zzz\r\n\r\n");
    fire("POST /v1/score HTTP/1.1\r\nContent-Length: 10000000\r\n\r\n");
    const auto snapshot = server_->metrics().snapshot(0, 1);
    EXPECT_GE(snapshot.malformed400, 3u);
    expectStillServiceable();
}

} // namespace
