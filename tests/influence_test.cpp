/**
 * @file
 * Tests for leave-one-out workload influence.
 */

#include <gtest/gtest.h>

#include "src/scoring/sensitivity.h"
#include "src/util/error.h"
#include "src/workload/paper_data.h"
#include "src/workload/workload_profile.h"

namespace {

using namespace hiermeans::scoring;
using hiermeans::stats::MeanKind;

TEST(InfluenceTest, HandComputedPlainInfluence)
{
    // Scores {2, 8}, discrete partition: removing workload 0 leaves
    // GM 8 vs full GM 4 -> influence 1.0.
    const std::vector<double> scores = {2.0, 8.0};
    const auto influences = leaveOneOutInfluence(
        MeanKind::Geometric, scores, Partition::discrete(2));
    ASSERT_EQ(influences.size(), 2u);
    EXPECT_DOUBLE_EQ(influences[0].plainWithout, 8.0);
    EXPECT_NEAR(influences[0].plainInfluence, 1.0, 1e-12);
    EXPECT_DOUBLE_EQ(influences[1].plainWithout, 2.0);
    EXPECT_NEAR(influences[1].plainInfluence, 0.5, 1e-12);
}

TEST(InfluenceTest, ClusterMembersHaveLowHierarchicalInfluence)
{
    // Three identical cluster-mates plus one singleton: removing one
    // of the identical members cannot move the hierarchical mean at
    // all, while the plain mean shifts.
    const std::vector<double> scores = {2.0, 2.0, 2.0, 8.0};
    const Partition p = Partition::fromGroups({{0, 1, 2}, {3}});
    const auto influences =
        leaveOneOutInfluence(MeanKind::Geometric, scores, p);
    for (std::size_t w = 0; w < 3; ++w) {
        EXPECT_NEAR(influences[w].hierarchicalInfluence, 0.0, 1e-12)
            << "workload " << w;
        EXPECT_GT(influences[w].plainInfluence, 0.05);
    }
    // The singleton dominates the hierarchical mean instead.
    EXPECT_GT(influences[3].hierarchicalInfluence,
              influences[0].hierarchicalInfluence);
}

TEST(InfluenceTest, SingletonRemovalShrinksK)
{
    // Removing the only member of a cluster must not blow up: the
    // partition simply loses that cluster.
    const std::vector<double> scores = {1.0, 4.0, 9.0};
    const Partition p = Partition::fromGroups({{0, 1}, {2}});
    const auto influences =
        leaveOneOutInfluence(MeanKind::Geometric, scores, p);
    // Removing workload 2 leaves one cluster {1, 4}: HGM = 2.
    EXPECT_NEAR(influences[2].hierarchicalWithout, 2.0, 1e-12);
}

TEST(InfluenceTest, PaperSuiteSciMarkMembersAreLowInfluence)
{
    // With SciMark2 as one cluster, each kernel's leave-one-out
    // influence on the HGM is far below javac's (a singleton).
    using namespace hiermeans::workload;
    const auto scores = paper::table3SpeedupsA();
    const Partition p = Partition::fromGroups({
        {0}, {1}, {2}, {3}, {4}, {5, 6, 7, 8, 9}, {10}, {11}, {12}});
    const auto influences =
        leaveOneOutInfluence(MeanKind::Geometric, scores, p);
    double worst_scimark = 0.0;
    for (std::size_t w = 5; w <= 9; ++w) {
        worst_scimark = std::max(worst_scimark,
                                 influences[w].hierarchicalInfluence);
    }
    EXPECT_LT(worst_scimark, influences[2].hierarchicalInfluence);
}

TEST(InfluenceTest, WorksForAllFamilies)
{
    const std::vector<double> scores = {1.0, 2.0, 3.0};
    for (MeanKind kind : {MeanKind::Arithmetic, MeanKind::Geometric,
                          MeanKind::Harmonic}) {
        const auto influences = leaveOneOutInfluence(
            kind, scores, Partition::single(3));
        EXPECT_EQ(influences.size(), 3u);
        for (const auto &i : influences)
            EXPECT_GE(i.plainInfluence, 0.0);
    }
}

TEST(InfluenceTest, Validation)
{
    EXPECT_THROW(leaveOneOutInfluence(MeanKind::Geometric, {1.0},
                                      Partition::single(1)),
                 hiermeans::InvalidArgument);
    EXPECT_THROW(leaveOneOutInfluence(MeanKind::Geometric, {1.0, 2.0},
                                      Partition::single(3)),
                 hiermeans::InvalidArgument);
}

} // namespace
