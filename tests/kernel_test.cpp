/**
 * @file
 * Tests for the SOM neighborhood kernels (the Figure 2 function).
 */

#include <gtest/gtest.h>

#include <cmath>

#include "src/som/kernel.h"
#include "src/util/error.h"

namespace {

using namespace hiermeans::som;
using hiermeans::InvalidArgument;

TEST(KernelTest, GaussianAtBmuEqualsAlpha)
{
    EXPECT_DOUBLE_EQ(kernelValue(KernelKind::Gaussian, 0.0, 0.5, 2.0),
                     0.5);
}

TEST(KernelTest, GaussianHandComputed)
{
    // h = alpha * exp(-d2 / (2 sigma^2)) with d2 = 8, sigma = 2.
    EXPECT_NEAR(kernelValue(KernelKind::Gaussian, 8.0, 1.0, 2.0),
                std::exp(-1.0), 1e-12);
}

TEST(KernelTest, GaussianMonotoneDecreasingInDistance)
{
    double prev = kernelValue(KernelKind::Gaussian, 0.0, 0.3, 1.5);
    for (double d2 = 0.5; d2 < 20.0; d2 += 0.5) {
        const double h = kernelValue(KernelKind::Gaussian, d2, 0.3, 1.5);
        EXPECT_LT(h, prev);
        prev = h;
    }
}

TEST(KernelTest, GaussianShrinksWithSigma)
{
    // Figure 2: as training progresses sigma decreases and the kernel
    // narrows — at a fixed distance the value drops.
    const double d2 = 4.0;
    double prev = kernelValue(KernelKind::Gaussian, d2, 0.5, 4.0);
    for (double sigma : {3.0, 2.0, 1.0, 0.5}) {
        const double h = kernelValue(KernelKind::Gaussian, d2, 0.5, sigma);
        EXPECT_LT(h, prev);
        prev = h;
    }
}

TEST(KernelTest, BubbleIsHardCutoff)
{
    EXPECT_DOUBLE_EQ(kernelValue(KernelKind::Bubble, 3.9, 0.4, 2.0), 0.4);
    EXPECT_DOUBLE_EQ(kernelValue(KernelKind::Bubble, 4.0, 0.4, 2.0), 0.4);
    EXPECT_DOUBLE_EQ(kernelValue(KernelKind::Bubble, 4.1, 0.4, 2.0), 0.0);
}

TEST(KernelTest, Validation)
{
    EXPECT_THROW(kernelValue(KernelKind::Gaussian, -1.0, 0.5, 1.0),
                 InvalidArgument);
    EXPECT_THROW(kernelValue(KernelKind::Gaussian, 1.0, 0.0, 1.0),
                 InvalidArgument);
    EXPECT_THROW(kernelValue(KernelKind::Gaussian, 1.0, 0.5, 0.0),
                 InvalidArgument);
}

TEST(KernelTest, SupportRadiusBoundsContribution)
{
    const double sigma = 1.7;
    const double threshold = 1e-4;
    const double r =
        kernelSupportRadius(KernelKind::Gaussian, sigma, threshold);
    // Just outside the support, the kernel is below threshold * alpha.
    const double outside =
        kernelValue(KernelKind::Gaussian, (r + 0.01) * (r + 0.01), 1.0,
                    sigma);
    EXPECT_LT(outside, threshold);
    // Just inside, it is above.
    const double inside = kernelValue(KernelKind::Gaussian,
                                      (r - 0.01) * (r - 0.01), 1.0, sigma);
    EXPECT_GT(inside, threshold);
}

TEST(KernelTest, BubbleSupportIsSigma)
{
    EXPECT_DOUBLE_EQ(kernelSupportRadius(KernelKind::Bubble, 2.5), 2.5);
}

TEST(KernelTest, KindNamesRoundTrip)
{
    EXPECT_EQ(parseKernelKind(kernelKindName(KernelKind::Gaussian)),
              KernelKind::Gaussian);
    EXPECT_EQ(parseKernelKind("bubble"), KernelKind::Bubble);
    EXPECT_THROW(parseKernelKind("mexican-hat"), InvalidArgument);
}

} // namespace
