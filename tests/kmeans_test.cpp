/**
 * @file
 * Tests for the k-means baseline.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include <set>

#include "src/cluster/kmeans.h"
#include "src/linalg/distance.h"
#include "src/util/error.h"
#include "src/util/rng.h"

namespace {

using namespace hiermeans::cluster;
using hiermeans::InvalidArgument;
using hiermeans::linalg::Matrix;
using hiermeans::linalg::Vector;

Matrix
threeBlobs()
{
    hiermeans::rng::Engine engine(55);
    std::vector<Vector> rows;
    const double centers[3][2] = {{0.0, 0.0}, {10.0, 0.0}, {0.0, 10.0}};
    for (int c = 0; c < 3; ++c) {
        for (int i = 0; i < 7; ++i) {
            rows.push_back({centers[c][0] + engine.normal(0.0, 0.4),
                            centers[c][1] + engine.normal(0.0, 0.4)});
        }
    }
    return Matrix::fromRows(rows);
}

TEST(KMeansTest, RecoversWellSeparatedBlobs)
{
    KMeansConfig config;
    config.k = 3;
    config.seed = 1;
    const KMeansResult result = kmeans(threeBlobs(), config);
    EXPECT_EQ(result.partition.clusterCount(), 3u);
    // All members of each true blob share a label.
    for (int blob = 0; blob < 3; ++blob) {
        const std::size_t base = result.partition.label(blob * 7);
        for (int i = 1; i < 7; ++i)
            EXPECT_EQ(result.partition.label(blob * 7 + i), base);
    }
}

TEST(KMeansTest, DeterministicForFixedSeed)
{
    KMeansConfig config;
    config.k = 3;
    config.seed = 9;
    const KMeansResult a = kmeans(threeBlobs(), config);
    const KMeansResult b = kmeans(threeBlobs(), config);
    EXPECT_EQ(a.partition, b.partition);
    EXPECT_DOUBLE_EQ(a.inertia, b.inertia);
}

TEST(KMeansTest, InertiaMatchesDefinition)
{
    KMeansConfig config;
    config.k = 2;
    const Matrix points = threeBlobs();
    const KMeansResult r = kmeans(points, config);
    double inertia = 0.0;
    for (std::size_t i = 0; i < points.rows(); ++i) {
        inertia += hiermeans::linalg::squaredEuclidean(
            points.row(i), r.centroids.row(r.partition.label(i)));
    }
    EXPECT_NEAR(r.inertia, inertia, 1e-9);
}

TEST(KMeansTest, MoreClustersNeverIncreaseBestInertia)
{
    const Matrix points = threeBlobs();
    double prev = 1e300;
    for (std::size_t k = 1; k <= 5; ++k) {
        KMeansConfig config;
        config.k = k;
        config.restarts = 8;
        config.seed = 7;
        const KMeansResult r = kmeans(points, config);
        EXPECT_LE(r.inertia, prev + 1e-6) << "k=" << k;
        prev = r.inertia;
    }
}

TEST(KMeansTest, KEqualsNGivesZeroInertia)
{
    const Matrix points =
        Matrix::fromRows({{0.0}, {5.0}, {9.0}});
    KMeansConfig config;
    config.k = 3;
    config.restarts = 4;
    const KMeansResult r = kmeans(points, config);
    EXPECT_NEAR(r.inertia, 0.0, 1e-12);
    EXPECT_TRUE(r.partition.isDiscrete());
}

TEST(KMeansTest, Validation)
{
    const Matrix points = Matrix::fromRows({{0.0}, {1.0}});
    KMeansConfig config;
    config.k = 3;
    EXPECT_THROW(kmeans(points, config), InvalidArgument);
    config.k = 0;
    EXPECT_THROW(kmeans(points, config), InvalidArgument);
    config.k = 1;
    config.restarts = 0;
    EXPECT_THROW(kmeans(points, config), InvalidArgument);
    EXPECT_THROW(kmeans(Matrix(), KMeansConfig{}), InvalidArgument);
}

TEST(KMeansTest, SingleClusterCentroidIsMean)
{
    const Matrix points = Matrix::fromRows({{1.0}, {3.0}, {8.0}});
    KMeansConfig config;
    config.k = 1;
    const KMeansResult r = kmeans(points, config);
    EXPECT_NEAR(r.centroids(0, 0), 4.0, 1e-12);
    EXPECT_TRUE(r.partition.isSingle());
}

} // namespace
