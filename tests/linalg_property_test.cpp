/**
 * @file
 * Property sweeps over the linear-algebra substrate: metric axioms,
 * PCA isometry, standardization idempotence and eigensolver
 * invariants on random inputs.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "src/linalg/distance.h"
#include "src/linalg/eigen.h"
#include "src/linalg/pca.h"
#include "src/linalg/standardize.h"
#include "src/util/rng.h"

namespace {

using namespace hiermeans::linalg;

class LinalgProperty : public ::testing::TestWithParam<std::uint64_t>
{
  protected:
    Matrix
    randomData(std::size_t n, std::size_t d, double scale = 3.0)
    {
        hiermeans::rng::Engine engine(GetParam() ^ (n * 131 + d));
        Matrix m(n, d);
        for (std::size_t r = 0; r < n; ++r)
            for (std::size_t c = 0; c < d; ++c)
                m(r, c) = engine.normal(0.0, scale);
        return m;
    }
};

TEST_P(LinalgProperty, MetricAxiomsOnRandomVectors)
{
    hiermeans::rng::Engine engine(GetParam());
    for (int trial = 0; trial < 25; ++trial) {
        const std::size_t d = 1 + engine.below(8);
        Vector a(d), b(d), c(d);
        for (std::size_t i = 0; i < d; ++i) {
            a[i] = engine.uniform(-5.0, 5.0);
            b[i] = engine.uniform(-5.0, 5.0);
            c[i] = engine.uniform(-5.0, 5.0);
        }
        for (Metric m : {Metric::Euclidean, Metric::Manhattan,
                         Metric::Chebyshev}) {
            // Identity, symmetry, triangle inequality.
            EXPECT_NEAR(distance(m, a, a), 0.0, 1e-12);
            EXPECT_NEAR(distance(m, a, b), distance(m, b, a), 1e-12);
            EXPECT_LE(distance(m, a, c),
                      distance(m, a, b) + distance(m, b, c) + 1e-9);
        }
    }
}

TEST_P(LinalgProperty, MetricOrderingL2BetweenLInfAndL1)
{
    hiermeans::rng::Engine engine(GetParam() ^ 0x0F);
    for (int trial = 0; trial < 25; ++trial) {
        const std::size_t d = 1 + engine.below(10);
        Vector a(d), b(d);
        for (std::size_t i = 0; i < d; ++i) {
            a[i] = engine.uniform(-2.0, 2.0);
            b[i] = engine.uniform(-2.0, 2.0);
        }
        EXPECT_LE(chebyshev(a, b), euclidean(a, b) + 1e-12);
        EXPECT_LE(euclidean(a, b), manhattan(a, b) + 1e-12);
    }
}

TEST_P(LinalgProperty, FullPcaProjectionIsIsometric)
{
    // Projecting onto ALL components is a rotation: pairwise
    // distances are preserved exactly.
    const Matrix data = randomData(12, 5);
    const Pca pca = Pca::fit(data);
    const Matrix projected = pca.projectAll(data, 5);
    const Matrix before = pairwiseDistances(data);
    const Matrix after = pairwiseDistances(projected);
    EXPECT_TRUE(before.approxEqual(after, 1e-7));
}

TEST_P(LinalgProperty, TruncatedPcaNeverExpandsDistances)
{
    const Matrix data = randomData(10, 6);
    const Pca pca = Pca::fit(data);
    const Matrix projected = pca.projectAll(data, 2);
    const Matrix before = pairwiseDistances(data);
    const Matrix after = pairwiseDistances(projected);
    for (std::size_t i = 0; i < before.rows(); ++i)
        for (std::size_t j = i + 1; j < before.cols(); ++j)
            EXPECT_LE(after(i, j), before(i, j) + 1e-7);
}

TEST_P(LinalgProperty, StandardizationIsIdempotent)
{
    const Matrix data = randomData(9, 4);
    const Matrix once = standardizeColumns(data).standardized;
    const Matrix twice = standardizeColumns(once).standardized;
    EXPECT_TRUE(once.approxEqual(twice, 1e-9));
}

TEST_P(LinalgProperty, StandardizationIsShiftScaleInvariant)
{
    // Affine per-column transforms of the input leave z-scores
    // unchanged (up to sign of the scale).
    const Matrix data = randomData(8, 3);
    Matrix transformed = data;
    for (std::size_t c = 0; c < data.cols(); ++c) {
        for (std::size_t r = 0; r < data.rows(); ++r) {
            transformed(r, c) =
                data(r, c) * (2.0 + static_cast<double>(c)) - 7.5;
        }
    }
    const Matrix a = standardizeColumns(data).standardized;
    const Matrix b = standardizeColumns(transformed).standardized;
    EXPECT_TRUE(a.approxEqual(b, 1e-9));
}

TEST_P(LinalgProperty, EigenReconstructionAndOrthogonality)
{
    hiermeans::rng::Engine engine(GetParam() ^ 0xE1);
    const std::size_t n = 3 + engine.below(5);
    Matrix sym(n, n);
    for (std::size_t i = 0; i < n; ++i) {
        for (std::size_t j = i; j < n; ++j) {
            sym(i, j) = engine.uniform(-1.0, 1.0);
            sym(j, i) = sym(i, j);
        }
    }
    const EigenDecomposition eig = eigenSymmetric(sym);
    Matrix lambda(n, n, 0.0);
    for (std::size_t i = 0; i < n; ++i)
        lambda(i, i) = eig.values[i];
    const Matrix recon = eig.vectors.multiply(lambda).multiply(
        eig.vectors.transposed());
    EXPECT_TRUE(recon.approxEqual(sym, 1e-7));
    EXPECT_TRUE(eig.vectors.transposed()
                    .multiply(eig.vectors)
                    .approxEqual(Matrix::identity(n), 1e-8));
}

TEST_P(LinalgProperty, CovarianceIsPositiveSemiDefinite)
{
    const Matrix data = randomData(15, 4);
    const EigenDecomposition eig = eigenSymmetric(covariance(data));
    for (double v : eig.values)
        EXPECT_GE(v, -1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, LinalgProperty,
                         ::testing::Values(2u, 23u, 0xBEEFu, 777u));

} // namespace
