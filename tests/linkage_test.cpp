/**
 * @file
 * Tests for the Lance-Williams linkage coefficients.
 */

#include <gtest/gtest.h>

#include "src/cluster/linkage.h"
#include "src/util/error.h"

namespace {

using namespace hiermeans::cluster;
using hiermeans::InvalidArgument;

TEST(LinkageTest, CompleteEqualsMaxOfDistances)
{
    // Complete linkage via LW must reduce to max(d_ki, d_kj).
    const LanceWilliams lw = lanceWilliams(Linkage::Complete, 3, 2, 4);
    EXPECT_DOUBLE_EQ(updateDistance(lw, 5.0, 9.0, 2.0), 9.0);
    EXPECT_DOUBLE_EQ(updateDistance(lw, 9.0, 5.0, 2.0), 9.0);
    EXPECT_DOUBLE_EQ(updateDistance(lw, 4.0, 4.0, 1.0), 4.0);
}

TEST(LinkageTest, SingleEqualsMinOfDistances)
{
    const LanceWilliams lw = lanceWilliams(Linkage::Single, 3, 2, 4);
    EXPECT_DOUBLE_EQ(updateDistance(lw, 5.0, 9.0, 2.0), 5.0);
    EXPECT_DOUBLE_EQ(updateDistance(lw, 9.0, 5.0, 2.0), 5.0);
}

TEST(LinkageTest, AverageWeightsBySize)
{
    // UPGMA: (n_i d_ki + n_j d_kj) / (n_i + n_j).
    const LanceWilliams lw = lanceWilliams(Linkage::Average, 3, 1, 4);
    EXPECT_DOUBLE_EQ(updateDistance(lw, 4.0, 8.0, 1.0),
                     (3.0 * 4.0 + 1.0 * 8.0) / 4.0);
}

TEST(LinkageTest, WeightedIgnoresSizes)
{
    const LanceWilliams lw = lanceWilliams(Linkage::Weighted, 30, 1, 4);
    EXPECT_DOUBLE_EQ(updateDistance(lw, 4.0, 8.0, 1.0), 6.0);
}

TEST(LinkageTest, WardCoefficients)
{
    const LanceWilliams lw = lanceWilliams(Linkage::Ward, 2, 3, 5);
    EXPECT_DOUBLE_EQ(lw.alphaI, 7.0 / 10.0);
    EXPECT_DOUBLE_EQ(lw.alphaJ, 8.0 / 10.0);
    EXPECT_DOUBLE_EQ(lw.beta, -5.0 / 10.0);
    EXPECT_DOUBLE_EQ(lw.gamma, 0.0);
}

TEST(LinkageTest, EmptyClusterThrows)
{
    EXPECT_THROW(lanceWilliams(Linkage::Complete, 0, 2, 1),
                 InvalidArgument);
}

TEST(LinkageTest, NamesRoundTrip)
{
    for (Linkage l : {Linkage::Single, Linkage::Complete,
                      Linkage::Average, Linkage::Weighted,
                      Linkage::Ward}) {
        EXPECT_EQ(parseLinkage(linkageName(l)), l);
        EXPECT_TRUE(isMonotone(l));
    }
    EXPECT_EQ(parseLinkage("furthest"), Linkage::Complete);
    EXPECT_EQ(parseLinkage("UPGMA"), Linkage::Average);
    EXPECT_THROW(parseLinkage("centroid"), InvalidArgument);
}

} // namespace
