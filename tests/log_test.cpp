/**
 * @file
 * Tests for the leveled logger.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "src/util/error.h"
#include "src/util/log.h"

namespace {

using namespace hiermeans::log;

class LogTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        setStream(&capture_);
        setLevel(Level::Warn);
    }

    void
    TearDown() override
    {
        setStream(nullptr);
        setLevel(Level::Warn);
    }

    std::ostringstream capture_;
};

TEST_F(LogTest, MessagesAtOrAboveLevelAreEmitted)
{
    setLevel(Level::Info);
    HM_LOG(Error) << "boom";
    HM_LOG(Info) << "progress";
    const std::string out = capture_.str();
    EXPECT_NE(out.find("[error] boom"), std::string::npos);
    EXPECT_NE(out.find("[info] progress"), std::string::npos);
}

TEST_F(LogTest, MessagesBelowLevelAreSuppressed)
{
    setLevel(Level::Error);
    HM_LOG(Warn) << "hidden";
    HM_LOG(Debug) << "also hidden";
    EXPECT_TRUE(capture_.str().empty());
}

TEST_F(LogTest, SilentSuppressesEverything)
{
    setLevel(Level::Silent);
    HM_LOG(Error) << "nothing";
    EXPECT_TRUE(capture_.str().empty());
}

TEST_F(LogTest, StreamedValuesAreFormatted)
{
    setLevel(Level::Debug);
    HM_LOG(Debug) << "n = " << 42 << ", x = " << 1.5;
    EXPECT_NE(capture_.str().find("n = 42, x = 1.5"), std::string::npos);
}

TEST_F(LogTest, LevelNamesRoundTrip)
{
    for (Level l : {Level::Silent, Level::Error, Level::Warn, Level::Info,
                    Level::Debug}) {
        EXPECT_EQ(parseLevel(levelName(l)), l);
    }
    EXPECT_EQ(parseLevel("WARNING"), Level::Warn);
    EXPECT_THROW(parseLevel("loud"), hiermeans::InvalidArgument);
}

TEST_F(LogTest, LevelQueryReflectsSetting)
{
    setLevel(Level::Debug);
    EXPECT_EQ(level(), Level::Debug);
}

} // namespace
