/**
 * @file
 * Tests for the Table II machine models.
 */

#include <gtest/gtest.h>

#include "src/workload/machine.h"

namespace {

using namespace hiermeans::workload;

TEST(MachineTest, SpecsMatchTableII)
{
    const MachineSpec &a = machineA();
    EXPECT_EQ(a.name, "A");
    EXPECT_DOUBLE_EQ(a.clockGhz, 3.0);
    EXPECT_DOUBLE_EQ(a.l2CacheMb, 2.0);
    EXPECT_DOUBLE_EQ(a.memoryGb, 2.0);

    const MachineSpec &b = machineB();
    EXPECT_EQ(b.name, "B");
    EXPECT_DOUBLE_EQ(b.l2CacheMb, 0.5);
    EXPECT_DOUBLE_EQ(b.memoryGb, 0.5);

    const MachineSpec &ref = referenceMachine();
    EXPECT_EQ(ref.name, "reference");
    EXPECT_DOUBLE_EQ(ref.clockGhz, 1.2);
    EXPECT_DOUBLE_EQ(ref.l2CacheMb, 8.0);
}

TEST(MachineTest, ReferenceHasUnitRates)
{
    const MachineSpec &ref = referenceMachine();
    EXPECT_DOUBLE_EQ(ref.cpuRate, 1.0);
    EXPECT_DOUBLE_EQ(ref.memRate, 1.0);
    EXPECT_DOUBLE_EQ(ref.mlatRate, 1.0);
    EXPECT_DOUBLE_EQ(ref.sysRate, 1.0);
    EXPECT_DOUBLE_EQ(ref.ioRate, 1.0);
}

TEST(MachineTest, RatesEncodeQualitativeHardware)
{
    const MachineSpec &a = machineA();
    const MachineSpec &b = machineB();
    // Both x86 machines far outrun the 1.2 GHz reference on compute.
    EXPECT_GT(a.cpuRate, 4.0);
    EXPECT_GT(b.cpuRate, 4.0);
    // A (server, JRockit, 2 GB) leads B on JVM services.
    EXPECT_GT(a.sysRate, b.sysRate);
    // B's 512 KB L2 is the weakest cache-resident memory path.
    EXPECT_LT(b.memRate, a.memRate);
    // Both lose to the reference's 8 MB L2 on capacity misses.
    EXPECT_LT(a.mlatRate, 1.0);
    EXPECT_LT(b.mlatRate, 1.0);
    // B's desktop I/O path beats A's server interrupt path.
    EXPECT_GT(b.ioRate, a.ioRate);
}

TEST(MachineTest, PaperMachinesOrderAndCount)
{
    const auto machines = paperMachines();
    ASSERT_EQ(machines.size(), 3u);
    EXPECT_EQ(machines[0].name, "A");
    EXPECT_EQ(machines[1].name, "B");
    EXPECT_EQ(machines[2].name, "reference");
}

TEST(MachineTest, PressureFactorOrdering)
{
    // The 512 MB machine is under the most memory pressure.
    EXPECT_GT(machineB().memoryPressureFactor,
              machineA().memoryPressureFactor);
}

} // namespace
