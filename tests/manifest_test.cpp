/** Shared manifest parsing/building tests (hmbatch + /v1/batch). */

#include <cstdio>
#include <gtest/gtest.h>
#include <unistd.h>

#include "src/engine/manifest.h"
#include "src/util/error.h"
#include "src/util/file.h"

namespace {

using namespace hiermeans;

/** Writes a small scores/features CSV pair; removed on teardown. */
class ManifestTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        const std::string stem =
            "/tmp/hiermeans_manifest_test_" + std::to_string(::getpid());
        scoresPath_ = stem + "_scores.csv";
        featuresPath_ = stem + "_features.csv";
        util::writeFile(scoresPath_, "workload,mA,mB\n"
                                     "w0,1.0,2.0\n"
                                     "w1,2.0,1.0\n"
                                     "w2,1.5,1.5\n"
                                     "w3,3.0,1.0\n"
                                     "w4,1.0,3.0\n"
                                     "w5,2.5,2.5\n");
        util::writeFile(featuresPath_, "workload,f0,f1,f2\n"
                                       "w0,0.1,1.0,-0.5\n"
                                       "w1,0.9,-1.0,0.5\n"
                                       "w2,0.2,0.8,-0.4\n"
                                       "w3,0.8,-0.9,0.6\n"
                                       "w4,-0.7,0.1,1.2\n"
                                       "w5,-0.6,0.2,1.1\n");
    }

    void
    TearDown() override
    {
        std::remove(scoresPath_.c_str());
        std::remove(featuresPath_.c_str());
    }

    /** A valid line with optional extra tokens appended. */
    std::string
    line(const std::string &extra = "") const
    {
        return "scores=" + scoresPath_ + " features=" + featuresPath_ +
               " machine-a=mA machine-b=mB som-steps=100" +
               (extra.empty() ? "" : " " + extra);
    }

    engine::ScoreRequest
    build(const std::string &text,
          const util::CommandLine &defaults =
              util::CommandLine::parse({"test"}))
    {
        const auto lines = engine::parseManifest(text);
        EXPECT_EQ(lines.size(), 1u);
        return engine::buildManifestRequest(lines.at(0), defaults,
                                            csvs_);
    }

    std::string scoresPath_;
    std::string featuresPath_;
    engine::CsvCache csvs_;
};

TEST_F(ManifestTest, SkipsCommentsAndBlankLinesKeepsLineNumbers)
{
    const auto lines = engine::parseManifest("# header comment\n"
                                             "\n"
                                             "a=1 b=2\n"
                                             "   \n"
                                             "# another\n"
                                             "c=3\n");
    ASSERT_EQ(lines.size(), 2u);
    EXPECT_EQ(lines[0].lineNumber, 3u);
    EXPECT_EQ(lines[1].lineNumber, 6u);
    EXPECT_EQ(lines[0].flags.getInt("a", 0), 1);
    EXPECT_EQ(lines[1].flags.getInt("c", 0), 3);
}

TEST_F(ManifestTest, NonKeyValueTokenThrowsWithLineNumber)
{
    try {
        engine::parseManifest("a=1\nbogus-token\n");
        FAIL() << "expected InvalidArgument";
    } catch (const InvalidArgument &e) {
        EXPECT_NE(std::string(e.what()).find("line 2"),
                  std::string::npos);
    }
}

TEST_F(ManifestTest, BuildsRequestFromValidLine)
{
    const engine::ScoreRequest request = build(line("id=req1 seed=7"));
    EXPECT_EQ(request.id, "req1");
    EXPECT_EQ(request.labelA, "mA");
    EXPECT_EQ(request.labelB, "mB");
    EXPECT_EQ(request.workloads.size(), 6u);
    EXPECT_EQ(request.featureNames.size(), 3u);
    EXPECT_EQ(request.seed, 7u);
    EXPECT_EQ(request.config.som.steps, 100u);
}

TEST_F(ManifestTest, DefaultIdIsLineNumber)
{
    const engine::ScoreRequest request = build("# leading comment\n" +
                                               line());
    EXPECT_EQ(request.id, "line2");
}

TEST_F(ManifestTest, MissingRequiredKeysThrow)
{
    EXPECT_THROW(build("features=" + featuresPath_ +
                       " machine-a=mA machine-b=mB"),
                 InvalidArgument);
    EXPECT_THROW(build("scores=" + scoresPath_ +
                       " machine-a=mA machine-b=mB"),
                 InvalidArgument);
    EXPECT_THROW(build("scores=" + scoresPath_ + " features=" +
                       featuresPath_ + " machine-b=mB"),
                 InvalidArgument);
    EXPECT_THROW(build("scores=" + scoresPath_ + " features=" +
                       featuresPath_ + " machine-a=mA"),
                 InvalidArgument);
}

TEST_F(ManifestTest, BadKRangesThrow)
{
    EXPECT_THROW(build(line("kmin=0")), InvalidArgument);
    EXPECT_THROW(build(line("kmin=5 kmax=3")), InvalidArgument);
}

TEST_F(ManifestTest, UnknownLinkageAndMeanThrow)
{
    EXPECT_THROW(build(line("linkage=telepathic")), InvalidArgument);
    EXPECT_THROW(build(line("mean=mode")), InvalidArgument);
}

TEST_F(ManifestTest, UnknownMachineThrows)
{
    EXPECT_THROW(build("scores=" + scoresPath_ + " features=" +
                       featuresPath_ +
                       " machine-a=mZ machine-b=mB som-steps=100"),
                 Error);
}

TEST_F(ManifestTest, PerLineKeysOverrideToolDefaults)
{
    const auto defaults = util::CommandLine::parse(
        {"test", "--kmin=3", "--kmax=4", "--seed=11"});
    // The line carries no kmin/kmax/seed: defaults apply.
    const engine::ScoreRequest from_defaults = build(line(), defaults);
    EXPECT_EQ(from_defaults.config.kMin, 3u);
    EXPECT_EQ(from_defaults.config.kMax, 4u);
    EXPECT_EQ(from_defaults.seed, 11u);
    // The line's own keys win over the defaults.
    const engine::ScoreRequest from_line =
        build(line("kmin=2 kmax=5 seed=99"), defaults);
    EXPECT_EQ(from_line.config.kMin, 2u);
    EXPECT_EQ(from_line.config.kMax, 5u);
    EXPECT_EQ(from_line.seed, 99u);
}

TEST_F(ManifestTest, TimeoutKeyReachesRequest)
{
    EXPECT_EQ(build(line("timeout-ms=250")).timeoutMillis, 250.0);
    EXPECT_EQ(build(line()).timeoutMillis, 0.0);
}

TEST_F(ManifestTest, CsvCacheParsesEachFileOnce)
{
    const core::ScoresCsv &first = csvs_.scoresFor(scoresPath_);
    const core::ScoresCsv &second = csvs_.scoresFor(scoresPath_);
    EXPECT_EQ(&first, &second);
    const core::FeaturesCsv &f1 = csvs_.featuresFor(featuresPath_);
    const core::FeaturesCsv &f2 = csvs_.featuresFor(featuresPath_);
    EXPECT_EQ(&f1, &f2);
}

} // namespace
