/**
 * @file
 * Tests for the dense matrix.
 */

#include <gtest/gtest.h>

#include "src/linalg/matrix.h"
#include "src/util/error.h"

namespace {

using hiermeans::InvalidArgument;
using hiermeans::linalg::covariance;
using hiermeans::linalg::Matrix;
using hiermeans::linalg::Vector;

TEST(MatrixTest, ConstructionAndShape)
{
    const Matrix m(2, 3, 1.5);
    EXPECT_EQ(m.rows(), 2u);
    EXPECT_EQ(m.cols(), 3u);
    EXPECT_FALSE(m.empty());
    EXPECT_DOUBLE_EQ(m(1, 2), 1.5);
    EXPECT_TRUE(Matrix().empty());
}

TEST(MatrixTest, FromRowsValidatesWidths)
{
    const Matrix m = Matrix::fromRows({{1.0, 2.0}, {3.0, 4.0}});
    EXPECT_DOUBLE_EQ(m(1, 0), 3.0);
    EXPECT_THROW(Matrix::fromRows({{1.0}, {1.0, 2.0}}), InvalidArgument);
    EXPECT_TRUE(Matrix::fromRows({}).empty());
}

TEST(MatrixTest, Identity)
{
    const Matrix id = Matrix::identity(3);
    for (std::size_t r = 0; r < 3; ++r)
        for (std::size_t c = 0; c < 3; ++c)
            EXPECT_DOUBLE_EQ(id(r, c), r == c ? 1.0 : 0.0);
}

TEST(MatrixTest, AtBoundsChecked)
{
    Matrix m(2, 2);
    EXPECT_NO_THROW(m.at(1, 1));
    EXPECT_THROW(m.at(2, 0), InvalidArgument);
    EXPECT_THROW(m.at(0, 2), InvalidArgument);
}

TEST(MatrixTest, RowColumnAccess)
{
    const Matrix m = Matrix::fromRows({{1.0, 2.0}, {3.0, 4.0}});
    EXPECT_EQ(m.row(0), (Vector{1.0, 2.0}));
    EXPECT_EQ(m.column(1), (Vector{2.0, 4.0}));
    EXPECT_THROW(m.row(2), InvalidArgument);
    EXPECT_THROW(m.column(2), InvalidArgument);
}

TEST(MatrixTest, SetRow)
{
    Matrix m(2, 2);
    m.setRow(0, {5.0, 6.0});
    EXPECT_EQ(m.row(0), (Vector{5.0, 6.0}));
    EXPECT_THROW(m.setRow(0, {1.0}), InvalidArgument);
    EXPECT_THROW(m.setRow(2, {1.0, 2.0}), InvalidArgument);
}

TEST(MatrixTest, Transpose)
{
    const Matrix m = Matrix::fromRows({{1.0, 2.0, 3.0}, {4.0, 5.0, 6.0}});
    const Matrix t = m.transposed();
    EXPECT_EQ(t.rows(), 3u);
    EXPECT_EQ(t.cols(), 2u);
    EXPECT_DOUBLE_EQ(t(2, 1), 6.0);
    EXPECT_TRUE(t.transposed().approxEqual(m, 0.0));
}

TEST(MatrixTest, MatrixMultiply)
{
    const Matrix a = Matrix::fromRows({{1.0, 2.0}, {3.0, 4.0}});
    const Matrix b = Matrix::fromRows({{5.0, 6.0}, {7.0, 8.0}});
    const Matrix c = a.multiply(b);
    EXPECT_DOUBLE_EQ(c(0, 0), 19.0);
    EXPECT_DOUBLE_EQ(c(0, 1), 22.0);
    EXPECT_DOUBLE_EQ(c(1, 0), 43.0);
    EXPECT_DOUBLE_EQ(c(1, 1), 50.0);
    EXPECT_THROW(a.multiply(Matrix(3, 2)), InvalidArgument);
}

TEST(MatrixTest, MatrixVectorMultiply)
{
    const Matrix a = Matrix::fromRows({{1.0, 2.0}, {3.0, 4.0}});
    EXPECT_EQ(a.multiply(Vector{1.0, 1.0}), (Vector{3.0, 7.0}));
    EXPECT_THROW(a.multiply(Vector{1.0}), InvalidArgument);
}

TEST(MatrixTest, SelectColumnsAndRows)
{
    const Matrix m =
        Matrix::fromRows({{1.0, 2.0, 3.0}, {4.0, 5.0, 6.0}});
    const Matrix cols = m.selectColumns({2, 0});
    EXPECT_EQ(cols.row(0), (Vector{3.0, 1.0}));
    const Matrix rows = m.selectRows({1});
    EXPECT_EQ(rows.row(0), (Vector{4.0, 5.0, 6.0}));
    EXPECT_THROW(m.selectColumns({3}), InvalidArgument);
    EXPECT_THROW(m.selectRows({2}), InvalidArgument);
}

TEST(MatrixTest, ApproxEqual)
{
    const Matrix a = Matrix::fromRows({{1.0, 2.0}});
    Matrix b = a;
    b(0, 1) += 1e-12;
    EXPECT_TRUE(a.approxEqual(b, 1e-9));
    b(0, 1) += 1.0;
    EXPECT_FALSE(a.approxEqual(b, 1e-9));
    EXPECT_FALSE(a.approxEqual(Matrix(1, 3), 1e-9));
}

TEST(MatrixTest, ToStringFormats)
{
    const Matrix m = Matrix::fromRows({{1.0, 2.5}});
    EXPECT_EQ(m.toString(1), "1.0 2.5\n");
}

TEST(CovarianceTest, HandComputed)
{
    // Two variables, three samples.
    const Matrix obs =
        Matrix::fromRows({{1.0, 2.0}, {2.0, 4.0}, {3.0, 6.0}});
    const Matrix cov = covariance(obs);
    EXPECT_NEAR(cov(0, 0), 1.0, 1e-12);       // var(x) = 1.
    EXPECT_NEAR(cov(1, 1), 4.0, 1e-12);       // var(y) = 4.
    EXPECT_NEAR(cov(0, 1), 2.0, 1e-12);       // cov = 2 (y = 2x).
    EXPECT_NEAR(cov(1, 0), cov(0, 1), 1e-12); // symmetric.
}

TEST(CovarianceTest, RequiresTwoSamples)
{
    EXPECT_THROW(covariance(Matrix(1, 2)), InvalidArgument);
}

} // namespace
