/**
 * @file
 * Tests for plain and weighted means.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "src/stats/means.h"
#include "src/util/error.h"
#include "src/util/rng.h"

namespace {

using hiermeans::DomainError;
using hiermeans::InvalidArgument;
using namespace hiermeans::stats;

TEST(MeansTest, ArithmeticBasic)
{
    EXPECT_DOUBLE_EQ(arithmeticMean({2.0, 4.0, 6.0}), 4.0);
    EXPECT_DOUBLE_EQ(arithmeticMean({5.0}), 5.0);
    EXPECT_DOUBLE_EQ(arithmeticMean({-1.0, 1.0}), 0.0);
}

TEST(MeansTest, GeometricBasic)
{
    EXPECT_NEAR(geometricMean({4.0, 9.0}), 6.0, 1e-12);
    EXPECT_NEAR(geometricMean({2.0, 2.0, 2.0}), 2.0, 1e-12);
    EXPECT_NEAR(geometricMean({1.0, 8.0}), std::sqrt(8.0), 1e-12);
}

TEST(MeansTest, HarmonicBasic)
{
    EXPECT_NEAR(harmonicMean({1.0, 1.0}), 1.0, 1e-12);
    // HM(2, 6) = 2 / (1/2 + 1/6) = 3.
    EXPECT_NEAR(harmonicMean({2.0, 6.0}), 3.0, 1e-12);
}

TEST(MeansTest, EmptyInputThrows)
{
    EXPECT_THROW(arithmeticMean({}), InvalidArgument);
    EXPECT_THROW(geometricMean({}), InvalidArgument);
    EXPECT_THROW(harmonicMean({}), InvalidArgument);
}

TEST(MeansTest, NonPositiveDomainErrors)
{
    EXPECT_THROW(geometricMean({1.0, 0.0}), DomainError);
    EXPECT_THROW(geometricMean({1.0, -1.0}), DomainError);
    EXPECT_THROW(harmonicMean({1.0, 0.0}), DomainError);
    EXPECT_NO_THROW(arithmeticMean({1.0, -1.0}));
}

TEST(MeansTest, GeometricIsOverflowSafe)
{
    // Direct multiplication of these would overflow a double; the
    // log-space implementation must not.
    std::vector<double> huge(64, 1e300);
    EXPECT_NEAR(geometricMean(huge) / 1e300, 1.0, 1e-9);
    std::vector<double> tiny(64, 1e-300);
    EXPECT_NEAR(geometricMean(tiny) / 1e-300, 1.0, 1e-9);
}

TEST(MeansTest, DispatchMatchesDirectCalls)
{
    const std::vector<double> v = {1.0, 2.0, 3.0, 4.0};
    EXPECT_DOUBLE_EQ(mean(MeanKind::Arithmetic, v), arithmeticMean(v));
    EXPECT_DOUBLE_EQ(mean(MeanKind::Geometric, v), geometricMean(v));
    EXPECT_DOUBLE_EQ(mean(MeanKind::Harmonic, v), harmonicMean(v));
}

TEST(MeansTest, KindNamesRoundTrip)
{
    for (MeanKind kind : {MeanKind::Arithmetic, MeanKind::Geometric,
                          MeanKind::Harmonic}) {
        EXPECT_EQ(parseMeanKind(meanKindName(kind)), kind);
    }
    EXPECT_EQ(parseMeanKind("GM"), MeanKind::Geometric);
    EXPECT_EQ(parseMeanKind("am"), MeanKind::Arithmetic);
    EXPECT_THROW(parseMeanKind("quadratic"), InvalidArgument);
}

TEST(WeightedMeansTest, UniformWeightsEqualPlainMeans)
{
    const std::vector<double> v = {1.5, 2.5, 3.5};
    const std::vector<double> w = {2.0, 2.0, 2.0};
    EXPECT_NEAR(weightedArithmeticMean(v, w), arithmeticMean(v), 1e-12);
    EXPECT_NEAR(weightedGeometricMean(v, w), geometricMean(v), 1e-12);
    EXPECT_NEAR(weightedHarmonicMean(v, w), harmonicMean(v), 1e-12);
}

TEST(WeightedMeansTest, ZeroWeightIgnoresValue)
{
    const std::vector<double> v = {1.0, 100.0};
    const std::vector<double> w = {1.0, 0.0};
    EXPECT_NEAR(weightedArithmeticMean(v, w), 1.0, 1e-12);
    EXPECT_NEAR(weightedGeometricMean(v, w), 1.0, 1e-12);
    EXPECT_NEAR(weightedHarmonicMean(v, w), 1.0, 1e-12);
}

TEST(WeightedMeansTest, HandComputedValues)
{
    const std::vector<double> v = {2.0, 8.0};
    const std::vector<double> w = {3.0, 1.0};
    EXPECT_NEAR(weightedArithmeticMean(v, w), (6.0 + 8.0) / 4.0, 1e-12);
    // WGM = exp((3 ln2 + ln8)/4) = exp((3 ln2 + 3 ln2)/4) = 2^1.5.
    EXPECT_NEAR(weightedGeometricMean(v, w), std::pow(2.0, 1.5), 1e-12);
    // WHM = 4 / (3/2 + 1/8) = 4 / 1.625.
    EXPECT_NEAR(weightedHarmonicMean(v, w), 4.0 / 1.625, 1e-12);
}

TEST(WeightedMeansTest, InvalidWeightsThrow)
{
    const std::vector<double> v = {1.0, 2.0};
    EXPECT_THROW(weightedArithmeticMean(v, {1.0}), InvalidArgument);
    EXPECT_THROW(weightedArithmeticMean(v, {-1.0, 2.0}), InvalidArgument);
    EXPECT_THROW(weightedArithmeticMean(v, {0.0, 0.0}), InvalidArgument);
}

class MeanInequalityProperty : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(MeanInequalityProperty, HmLeGmLeAm)
{
    hiermeans::rng::Engine engine(GetParam());
    for (int trial = 0; trial < 50; ++trial) {
        const std::size_t n = 1 + engine.below(20);
        std::vector<double> v;
        for (std::size_t i = 0; i < n; ++i)
            v.push_back(engine.uniform(0.01, 100.0));
        const double am = arithmeticMean(v);
        const double gm = geometricMean(v);
        const double hm = harmonicMean(v);
        EXPECT_LE(hm, gm + 1e-9);
        EXPECT_LE(gm, am + 1e-9);
    }
}

TEST_P(MeanInequalityProperty, WeightedMeanBetweenExtremes)
{
    hiermeans::rng::Engine engine(GetParam() ^ 0x77);
    for (int trial = 0; trial < 50; ++trial) {
        const std::size_t n = 2 + engine.below(10);
        std::vector<double> v, w;
        for (std::size_t i = 0; i < n; ++i) {
            v.push_back(engine.uniform(0.1, 50.0));
            w.push_back(engine.uniform(0.0, 5.0));
        }
        w[0] = 1.0; // ensure positive total.
        const double lo = *std::min_element(v.begin(), v.end());
        const double hi = *std::max_element(v.begin(), v.end());
        for (MeanKind kind : {MeanKind::Arithmetic, MeanKind::Geometric,
                              MeanKind::Harmonic}) {
            const double m = weightedMean(kind, v, w);
            EXPECT_GE(m, lo - 1e-9);
            EXPECT_LE(m, hi + 1e-9);
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MeanInequalityProperty,
                         ::testing::Values(1u, 7u, 99u, 2024u));

} // namespace
