/**
 * Three-node loopback cluster, end to end: suites registered through
 * any node land on their ring owner and are readable from every node
 * (writes forwarded, reads 307-redirected and followed by the
 * ClusterClient), /v1/cluster reports membership + health, the
 * follower topology is symmetric, and killing a shard's leader loses
 * no acknowledged write and duplicates none — the promoted follower
 * answers from its durable replica mirror.
 */

#include <cerrno>
#include <gtest/gtest.h>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <unistd.h>
#include <vector>

#include "src/client/cluster_client.h"
#include "src/mesh/runtime.h"
#include "src/server/client.h"
#include "src/server/json.h"
#include "src/server/server.h"
#include "src/util/file.h"

namespace {

using namespace hiermeans;
using Response = server::HttpResponseParser::Response;

class MeshClusterTest : public ::testing::Test
{
  protected:
    static constexpr int kNodes = 3;

    void
    SetUp() override
    {
        stem_ = "/tmp/hiermeans_mesh_cluster_" +
                std::to_string(::getpid());
        // Deterministic per-process ports: parallel ctest shards get
        // distinct pids, so distinct ports.
        base_ = 21000 +
                static_cast<std::uint16_t>((::getpid() * 13) % 20000);
        scoresPath_ = stem_ + "_scores.csv";
        featuresPath_ = stem_ + "_features.csv";
        util::writeFile(scoresPath_, "workload,mA,mB\n"
                                     "w0,1.0,2.0\n"
                                     "w1,2.0,1.0\n"
                                     "w2,1.5,1.5\n"
                                     "w3,3.0,1.0\n"
                                     "w4,1.0,3.0\n"
                                     "w5,2.5,2.5\n");
        util::writeFile(featuresPath_, "workload,f0,f1,f2\n"
                                       "w0,0.1,1.0,-0.5\n"
                                       "w1,0.9,-1.0,0.5\n"
                                       "w2,0.2,0.8,-0.4\n"
                                       "w3,0.8,-0.9,0.6\n"
                                       "w4,-0.7,0.1,1.2\n"
                                       "w5,-0.6,0.2,1.1\n");
        for (int i = 0; i < kNodes; ++i)
            startNode(i);
        waitForHealthyMesh();
    }

    /**
     * The first probe of a starting node can run before its peers
     * listen, marking them down until the next tick revives them —
     * routing assertions need every node to see every peer as ok.
     */
    void
    waitForHealthyMesh()
    {
        for (int attempt = 0; attempt < 100; ++attempt) {
            bool converged = true;
            for (int i = 0; i < kNodes && converged; ++i) {
                server::HttpClient probe("127.0.0.1", portOf(i));
                probe.setReadTimeoutMillis(2000);
                const Response seen =
                    probe.roundTrip("GET", "/v1/cluster");
                converged =
                    seen.status == 200 &&
                    seen.body.find("\"health\":\"down\"") ==
                        std::string::npos &&
                    seen.body.find("\"health\":\"unknown\"") ==
                        std::string::npos;
            }
            if (converged)
                return;
            std::this_thread::sleep_for(
                std::chrono::milliseconds(50));
        }
        FAIL() << "mesh never converged to all-healthy";
    }

    void
    TearDown() override
    {
        for (int i = 0; i < kNodes; ++i)
            stopNode(i);
        std::remove(scoresPath_.c_str());
        std::remove(featuresPath_.c_str());
        for (int i = 0; i < kNodes; ++i)
            wipeTree(dataDir(i));
    }

    static std::string
    idOf(int index)
    {
        return std::string(1, static_cast<char>('a' + index));
    }

    std::string
    dataDir(int index) const
    {
        return stem_ + "_" + idOf(index);
    }

    std::uint16_t
    portOf(int index) const
    {
        return static_cast<std::uint16_t>(base_ + index);
    }

    std::string
    meshText(int index) const
    {
        std::string text = "self = " + idOf(index) +
                           "\nreplicas = 2\nvnodes = 32\n";
        for (int i = 0; i < kNodes; ++i)
            text += "node " + idOf(i) + " 127.0.0.1:" +
                    std::to_string(portOf(i)) + "\n";
        return text;
    }

    void
    startNode(int index)
    {
        mesh::MeshRuntime::Config mesh_config;
        mesh_config.mesh = mesh::parseMeshConfig(meshText(index));
        mesh_config.dataDir = dataDir(index);
        mesh_config.rpcTimeoutMillis = 2000;
        mesh_config.tickMillis = 100; // fast probes for the kill test.
        runtimes_[index] =
            std::make_unique<mesh::MeshRuntime>(mesh_config);

        server::Server::Config config;
        config.port = portOf(index);
        config.engine.threads = 2;
        config.queueDepth = 4;
        config.connectionThreads = 8;
        config.store.dataDir = dataDir(index);
        config.store.snapshotEvery = 0;
        config.cluster = runtimes_[index].get();
        servers_[index] = std::make_unique<server::Server>(config);
        servers_[index]->start();
        runtimes_[index]->start(servers_[index]->store());
    }

    void
    stopNode(int index)
    {
        if (servers_[index] != nullptr)
            servers_[index]->stop();
        if (runtimes_[index] != nullptr)
            runtimes_[index]->stop();
        servers_[index].reset();
        runtimes_[index].reset();
    }

    static void
    wipeTree(const std::string &dir)
    {
        if (!util::fileExists(dir))
            return;
        for (const std::string &name : util::listDir(dir)) {
            const std::string path = dir + "/" + name;
            if (::rmdir(path.c_str()) == 0)
                continue;
            if (errno == ENOTEMPTY || errno == EEXIST) {
                // A replica_<leader> subdirectory: empty it first.
                for (const std::string &inner : util::listDir(path))
                    util::removeFile(path + "/" + inner);
                ::rmdir(path.c_str());
            } else {
                util::removeFile(path);
            }
        }
        ::rmdir(dir.c_str());
    }

    std::string
    manifestLine(const std::string &extra = "") const
    {
        return "scores=" + scoresPath_ + " features=" + featuresPath_ +
               " machine-a=mA machine-b=mB som-steps=150" +
               (extra.empty() ? "" : " " + extra);
    }

    /** Redirect-following client pinned to one node. */
    client::ClusterClient
    clientFor(int index) const
    {
        client::ClusterClient::Config config;
        config.targets = {
            client::ClusterTarget{"127.0.0.1", portOf(index)}};
        config.readTimeoutMillis = 10000;
        return client::ClusterClient(config);
    }

    int
    indexOfNode(const std::string &id) const
    {
        return id[0] - 'a';
    }

    std::string stem_;
    std::uint16_t base_ = 0;
    std::string scoresPath_;
    std::string featuresPath_;
    std::unique_ptr<mesh::MeshRuntime> runtimes_[kNodes];
    std::unique_ptr<server::Server> servers_[kNodes];
};

TEST_F(MeshClusterTest, ClusterEndpointReportsMembership)
{
    for (int i = 0; i < kNodes; ++i) {
        auto c = clientFor(i);
        const client::Outcome outcome = c.cluster();
        ASSERT_TRUE(outcome.ok()) << outcome.error;
        const std::string &body = outcome.response.body;
        EXPECT_EQ(server::json::findString(body, "self"), idOf(i));
        EXPECT_EQ(server::json::findNumber(body, "replicas"), 2.0);
        for (int n = 0; n < kNodes; ++n)
            EXPECT_NE(body.find("\"id\":\"" + idOf(n) + "\""),
                      std::string::npos);
    }
}

TEST_F(MeshClusterTest, FollowerTopologyIsSymmetric)
{
    // Y follows X  <=>  X lists Y as follower; every node computes
    // the same deterministic topology.
    for (int x = 0; x < kNodes; ++x) {
        for (const std::string &follower :
             runtimes_[x]->followers()) {
            const int y = indexOfNode(follower);
            const std::vector<std::string> leaders =
                runtimes_[y]->followedLeaders();
            EXPECT_NE(std::find(leaders.begin(), leaders.end(),
                                idOf(x)),
                      leaders.end())
                << idOf(y) << " should follow " << idOf(x);
        }
        EXPECT_EQ(runtimes_[x]->followers().size(), 1u)
            << "replicas=2 means one follower per leader";
    }
}

TEST_F(MeshClusterTest, SuiteRegisteredAnywhereReadableEverywhere)
{
    // Register through node a regardless of who owns the suite: the
    // write is forwarded to the ring owner.
    auto registrar = clientFor(0);
    const client::Outcome registered = registrar.request(
        "POST", "/v1/suites?name=everywhere",
        manifestLine("seed=5"));
    ASSERT_TRUE(registered.ok()) << registered.response.body;

    // Score it once so the history has an entry.
    const client::Outcome scored =
        registrar.score("suite=everywhere id=seen-run seed=5");
    ASSERT_TRUE(scored.ok()) << scored.response.body;

    // Every node can expand + read it (forwarded or redirected).
    for (int i = 0; i < kNodes; ++i) {
        auto c = clientFor(i);
        const client::Outcome history =
            c.request("GET", "/v1/history?suite=everywhere");
        ASSERT_TRUE(history.ok())
            << "node " << idOf(i) << ": " << history.response.body;
        EXPECT_NE(history.response.body.find("seen-run"),
                  std::string::npos)
            << "node " << idOf(i);
        const client::Outcome rescored = c.score(
            "suite=everywhere id=node-" + idOf(i) + " seed=6");
        EXPECT_TRUE(rescored.ok())
            << "node " << idOf(i) << ": " << rescored.response.body;
    }
}

TEST_F(MeshClusterTest, MisroutedRequestsForwardWritesRedirectReads)
{
    auto registrar = clientFor(0);
    ASSERT_TRUE(registrar
                    .request("POST", "/v1/suites?name=routed",
                             manifestLine("seed=9"))
                    .ok());
    const std::string owner =
        runtimes_[0]->ring().ownerOf("routed");
    const int other = (indexOfNode(owner) + 1) % kNodes;

    // Raw client (no redirect following): a write through the wrong
    // node is forwarded and answers 200 with the router's stamp; a
    // read answers 307 with the owner in Location.
    server::HttpClient raw("127.0.0.1", portOf(other));
    const Response written = raw.roundTrip(
        "POST", "/v1/score", "suite=routed id=misrouted seed=9");
    ASSERT_EQ(written.status, 200) << written.body;
    EXPECT_EQ(written.header("x-hiermeans-routed-to", ""), owner);

    const Response read =
        raw.roundTrip("GET", "/v1/history?suite=routed");
    ASSERT_EQ(read.status, 307);
    const std::string location = read.header("location", "");
    EXPECT_NE(location.find(std::to_string(
                  portOf(indexOfNode(owner)))),
              std::string::npos)
        << location;
}

TEST_F(MeshClusterTest, LeaderKillLosesNoAcknowledgedWrite)
{
    auto registrar = clientFor(0);
    ASSERT_TRUE(registrar
                    .request("POST", "/v1/suites?name=durable",
                             manifestLine("seed=21"))
                    .ok());
    const client::Outcome acked =
        registrar.score("suite=durable id=pre-kill seed=21");
    ASSERT_TRUE(acked.ok()) << acked.response.body;

    // Give the synchronous afterWrite ship a moment, then drop the
    // shard owner.
    const std::string owner =
        runtimes_[0]->ring().ownerOf("durable");
    const int ownerIndex = indexOfNode(owner);
    std::this_thread::sleep_for(std::chrono::milliseconds(300));
    stopNode(ownerIndex);
    // Let the 100ms health probes mark the owner down.
    std::this_thread::sleep_for(std::chrono::milliseconds(600));

    const int survivor = (ownerIndex + 1) % kNodes;
    auto c = clientFor(survivor);
    const client::Outcome after =
        c.score("suite=durable id=post-kill seed=22");
    ASSERT_TRUE(after.ok()) << after.response.body;

    const client::Outcome history =
        c.request("GET", "/v1/history?suite=durable");
    ASSERT_TRUE(history.ok()) << history.response.body;
    const std::string &body = history.response.body;
    EXPECT_NE(body.find("pre-kill"), std::string::npos)
        << "acknowledged write lost: " << body;
    EXPECT_NE(body.find("post-kill"), std::string::npos);
    // No duplicates: each id appears exactly once.
    for (const char *id : {"pre-kill", "post-kill"}) {
        const std::size_t first = body.find(id);
        EXPECT_EQ(body.find(id, first + 1), std::string::npos)
            << id << " duplicated: " << body;
    }
}

} // namespace
