/**
 * Mesh membership file parsing: the happy path (comments, defaults,
 * ordering), the self()/node() accessors, and the rejection paths —
 * every malformed file must fail loudly at startup, not diverge the
 * ring at runtime.
 */

#include <gtest/gtest.h>
#include <string>

#include "src/mesh/config.h"
#include "src/util/error.h"

namespace {

using namespace hiermeans;

const char kGood[] = "# 3-node loopback cluster\n"
                     "self = b\n"
                     "replicas = 2\n"
                     "vnodes = 32\n"
                     "node a 127.0.0.1:8377\n"
                     "node b 127.0.0.1:8378\n"
                     "node c 127.0.0.1:8379\n";

TEST(MeshConfigTest, ParsesFullFile)
{
    const mesh::MeshConfig config = mesh::parseMeshConfig(kGood);
    EXPECT_EQ(config.selfId, "b");
    EXPECT_EQ(config.replicas, 2u);
    EXPECT_EQ(config.vnodes, 32u);
    ASSERT_EQ(config.nodes.size(), 3u);
    EXPECT_EQ(config.nodeIds(),
              (std::vector<std::string>{"a", "b", "c"}));
    EXPECT_EQ(config.self().id, "b");
    EXPECT_EQ(config.self().port, 8378);
    EXPECT_EQ(config.node("c").host, "127.0.0.1");
    EXPECT_EQ(config.node("c").port, 8379);
    EXPECT_THROW(config.node("zz"), Error);
}

TEST(MeshConfigTest, DefaultsApplyWhenDirectivesOmitted)
{
    const mesh::MeshConfig config = mesh::parseMeshConfig(
        "self = a\n"
        "node a 10.0.0.1:9000\n"
        "node b 10.0.0.2:9000\n");
    EXPECT_EQ(config.replicas, 2u);
    EXPECT_EQ(config.vnodes, 64u);
}

TEST(MeshConfigTest, RejectsMalformedFiles)
{
    // Unknown directive.
    EXPECT_THROW(mesh::parseMeshConfig("self = a\n"
                                       "bogus = 1\n"
                                       "node a 127.0.0.1:1\n"
                                       "node b 127.0.0.1:2\n"),
                 Error);
    // Malformed host:port.
    EXPECT_THROW(mesh::parseMeshConfig("self = a\n"
                                       "node a 127.0.0.1\n"
                                       "node b 127.0.0.1:2\n"),
                 Error);
    // Duplicate node id.
    EXPECT_THROW(mesh::parseMeshConfig("self = a\n"
                                       "node a 127.0.0.1:1\n"
                                       "node a 127.0.0.1:2\n"),
                 Error);
    // Missing self.
    EXPECT_THROW(mesh::parseMeshConfig("node a 127.0.0.1:1\n"
                                       "node b 127.0.0.1:2\n"),
                 Error);
    // self names an unknown node.
    EXPECT_THROW(mesh::parseMeshConfig("self = z\n"
                                       "node a 127.0.0.1:1\n"
                                       "node b 127.0.0.1:2\n"),
                 Error);
    // Fewer nodes than replicas.
    EXPECT_THROW(mesh::parseMeshConfig("self = a\n"
                                       "replicas = 3\n"
                                       "node a 127.0.0.1:1\n"
                                       "node b 127.0.0.1:2\n"),
                 Error);
    // Out-of-range numbers.
    EXPECT_THROW(mesh::parseMeshConfig("self = a\n"
                                       "vnodes = 0\n"
                                       "node a 127.0.0.1:1\n"),
                 Error);
    EXPECT_THROW(mesh::parseMeshConfig("self = a\n"
                                       "node a 127.0.0.1:99999\n"),
                 Error);
}

} // namespace
