/**
 * WAL-shipping replication between a leader StateStore and a follower
 * ReplicaStore: tail batches apply and ack durably, duplicate
 * delivery is idempotent, a sequence gap is refused (the leader must
 * resync instead of leaving a hole), catch-up past the in-memory tail
 * goes through a snapshot image, and a replica survives reopen with
 * a state bit-identical to the leader's.
 */

#include <gtest/gtest.h>
#include <memory>
#include <string>
#include <unistd.h>

#include "src/mesh/replica.h"
#include "src/store/store.h"
#include "src/util/error.h"
#include "src/util/file.h"

namespace {

using namespace hiermeans;

class MeshReplicationTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        stem_ = "/tmp/hiermeans_mesh_replication_" +
                std::to_string(::getpid());
        leaderDir_ = stem_ + "_leader";
        replicaDir_ = stem_ + "_replica";
        wipe(leaderDir_);
        wipe(replicaDir_);
    }

    void
    TearDown() override
    {
        wipe(leaderDir_);
        wipe(replicaDir_);
    }

    static void
    wipe(const std::string &dir)
    {
        if (!util::fileExists(dir))
            return;
        for (const std::string &name : util::listDir(dir))
            util::removeFile(dir + "/" + name);
        ::rmdir(dir.c_str());
    }

    std::unique_ptr<store::StateStore>
    openLeader(std::size_t replicationTail = 1024)
    {
        store::StateStore::Config config;
        config.dataDir = leaderDir_;
        config.snapshotEvery = 0;
        config.replicationTail = replicationTail;
        auto leader = std::make_unique<store::StateStore>(config);
        leader->open();
        return leader;
    }

    std::unique_ptr<mesh::ReplicaStore>
    openReplica()
    {
        mesh::ReplicaStore::Config config;
        config.dataDir = replicaDir_;
        auto replica = std::make_unique<mesh::ReplicaStore>(config);
        replica->open();
        return replica;
    }

    static store::ScoreRecord
    score(const std::string &id, const std::string &suite = "")
    {
        store::ScoreRecord record;
        record.suite = suite;
        record.id = id;
        record.fingerprint = 0xfeedULL;
        record.recommendedK = 2;
        record.ratio = 1.25;
        record.plainRatio = 1.5;
        record.wallMillis = 3.0;
        return record;
    }

    std::string stem_;
    std::string leaderDir_;
    std::string replicaDir_;
};

TEST_F(MeshReplicationTest, TailBatchAppliesAndAcksDurably)
{
    auto leader = openLeader();
    leader->registerSuite("nightly", "scores=s.csv features=f.csv "
                                     "machine-a=mA machine-b=mB");
    leader->recordScore(score("run-1", "nightly"));
    leader->recordScore(score("run-2"));
    ASSERT_EQ(leader->lastSequence(), 3u);

    const auto batch = leader->framesSince(0);
    ASSERT_TRUE(batch.has_value());
    EXPECT_EQ(batch->records, 3u);
    EXPECT_EQ(batch->lastSequence, 3u);

    auto replica = openReplica();
    EXPECT_EQ(replica->applyFrames(batch->frames), 3u);
    EXPECT_EQ(replica->lastSequence(), 3u);
    EXPECT_TRUE(replica->resolveSuite("nightly").has_value());
    EXPECT_EQ(replica->history("nightly").size(), 1u);
    // Same committed state, bit for bit.
    EXPECT_EQ(replica->encodeStateBody(), leader->encodeStateBody());
}

TEST_F(MeshReplicationTest, CaughtUpFollowerGetsAnEmptyBatch)
{
    auto leader = openLeader();
    leader->recordScore(score("run-1"));
    const auto batch = leader->framesSince(leader->lastSequence());
    ASSERT_TRUE(batch.has_value());
    EXPECT_EQ(batch->records, 0u);
    EXPECT_TRUE(batch->frames.empty());
    EXPECT_EQ(batch->lastSequence, leader->lastSequence());
}

TEST_F(MeshReplicationTest, DuplicateDeliveryIsIdempotent)
{
    auto leader = openLeader();
    leader->registerSuite("nightly", "scores=s.csv features=f.csv "
                                     "machine-a=mA machine-b=mB");
    leader->recordScore(score("run-1", "nightly"));
    const auto batch = leader->framesSince(0);
    ASSERT_TRUE(batch.has_value());

    auto replica = openReplica();
    EXPECT_EQ(replica->applyFrames(batch->frames), 2u);
    // The leader retries an unacked batch: same frames again.
    EXPECT_EQ(replica->applyFrames(batch->frames), 2u);
    EXPECT_EQ(replica->history("nightly").size(), 1u)
        << "duplicate delivery must not duplicate history";
}

TEST_F(MeshReplicationTest, SequenceGapIsRefused)
{
    auto leader = openLeader();
    leader->recordScore(score("run-1"));
    leader->recordScore(score("run-2"));
    leader->recordScore(score("run-3"));
    // A leader shipping from a stale ack (this replica lost its
    // disk): frames start at 3, the replica is empty.
    const auto gap = leader->framesSince(2);
    ASSERT_TRUE(gap.has_value());
    auto replica = openReplica();
    EXPECT_THROW(replica->applyFrames(gap->frames), Error);
    EXPECT_EQ(replica->lastSequence(), 0u) << "no partial apply";
    // Resync from the true offset succeeds.
    const auto full = leader->framesSince(0);
    ASSERT_TRUE(full.has_value());
    EXPECT_EQ(replica->applyFrames(full->frames), 3u);
}

TEST_F(MeshReplicationTest, CatchUpPastTailUsesSnapshotImage)
{
    auto leader = openLeader(/*replicationTail=*/2);
    leader->registerSuite("nightly", "scores=s.csv features=f.csv "
                                     "machine-a=mA machine-b=mB");
    for (int i = 0; i < 5; ++i)
        leader->recordScore(score("run-" + std::to_string(i),
                                  "nightly"));
    // The tail only holds the newest 2 frames: a from-zero follower
    // cannot be served frames.
    EXPECT_FALSE(leader->framesSince(0).has_value());

    auto replica = openReplica();
    const std::string image = leader->snapshotImage();
    EXPECT_EQ(replica->installSnapshot(image), leader->lastSequence());
    EXPECT_EQ(replica->encodeStateBody(), leader->encodeStateBody());

    // And the tail continues from the install point.
    leader->recordScore(score("run-after", "nightly"));
    const auto tail = leader->framesSince(replica->lastSequence());
    ASSERT_TRUE(tail.has_value());
    EXPECT_EQ(tail->records, 1u);
    EXPECT_EQ(replica->applyFrames(tail->frames),
              leader->lastSequence());
}

TEST_F(MeshReplicationTest, ReplicaSurvivesReopen)
{
    auto leader = openLeader();
    leader->registerSuite("nightly", "scores=s.csv features=f.csv "
                                     "machine-a=mA machine-b=mB");
    leader->recordScore(score("run-1", "nightly"));
    const auto batch = leader->framesSince(0);
    ASSERT_TRUE(batch.has_value());

    auto replica = openReplica();
    replica->applyFrames(batch->frames);
    const std::string before = replica->encodeStateBody();
    replica->close();
    replica.reset();

    auto reopened = openReplica();
    EXPECT_EQ(reopened->lastSequence(), 2u);
    EXPECT_EQ(reopened->encodeStateBody(), before);
    EXPECT_TRUE(reopened->resolveSuite("nightly").has_value());
}

TEST_F(MeshReplicationTest, SnapshotInstallSurvivesReopen)
{
    auto leader = openLeader(/*replicationTail=*/1);
    leader->registerSuite("nightly", "scores=s.csv features=f.csv "
                                     "machine-a=mA machine-b=mB");
    leader->recordScore(score("run-1", "nightly"));

    auto replica = openReplica();
    replica->installSnapshot(leader->snapshotImage());
    const std::uint64_t acked = replica->lastSequence();
    replica->close();
    replica.reset();

    auto reopened = openReplica();
    EXPECT_EQ(reopened->lastSequence(), acked);
    EXPECT_EQ(reopened->encodeStateBody(), leader->encodeStateBody());
}

} // namespace
