/**
 * Consistent-hash ring properties the mesh depends on: deterministic
 * assignment (every node computes the same owners), a roughly uniform
 * key distribution across members, minimal key movement when the
 * membership changes (only keys touching the joining/leaving node
 * move), and coherent replica/successor sets (distinct nodes, owner
 * first, self excluded).
 */

#include <gtest/gtest.h>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "src/mesh/ring.h"
#include "src/util/error.h"

namespace {

using namespace hiermeans;
using mesh::HashRing;

std::vector<std::string>
keys(std::size_t count)
{
    std::vector<std::string> out;
    out.reserve(count);
    for (std::size_t i = 0; i < count; ++i)
        out.push_back("suite-" + std::to_string(i));
    return out;
}

TEST(MeshRingTest, DeterministicAcrossInstances)
{
    const HashRing one({"a", "b", "c"}, 64);
    const HashRing two({"a", "b", "c"}, 64);
    for (const std::string &key : keys(500))
        EXPECT_EQ(one.ownerOf(key), two.ownerOf(key)) << key;
}

TEST(MeshRingTest, Hash64IsStableFnv1a)
{
    // Pinned values: a silent hash change would shuffle every shard
    // in a rolling restart.
    EXPECT_EQ(mesh::hash64(""), 0xcbf29ce484222325ULL);
    EXPECT_EQ(mesh::hash64("a"), 0xaf63dc4c8601ec8cULL);
    EXPECT_EQ(mesh::hash64("hiermeans"), mesh::hash64("hiermeans"));
    EXPECT_NE(mesh::hash64("a#0"), mesh::hash64("a#1"));
}

TEST(MeshRingTest, DistributionIsRoughlyUniform)
{
    const HashRing ring({"a", "b", "c", "d"}, 64);
    std::map<std::string, std::size_t> counts;
    const std::size_t total = 4000;
    for (const std::string &key : keys(total))
        ++counts[ring.ownerOf(key)];
    ASSERT_EQ(counts.size(), 4u) << "every node owns some keys";
    for (const auto &[node, count] : counts) {
        // Expected 1000 per node; 64 vnodes bounds the skew, but the
        // arc lengths are random — only guard against gross imbalance.
        EXPECT_GT(count, total / 20) << node << " underloaded";
        EXPECT_LT(count, total / 2) << node << " overloaded";
    }
}

TEST(MeshRingTest, JoinMovesOnlyKeysTowardTheJoiner)
{
    const HashRing before({"a", "b", "c"}, 64);
    const HashRing after({"a", "b", "c", "d"}, 64);
    std::size_t moved = 0;
    const std::size_t total = 2000;
    for (const std::string &key : keys(total)) {
        const std::string &was = before.ownerOf(key);
        const std::string &now = after.ownerOf(key);
        if (was == now)
            continue;
        ++moved;
        // Minimal rebalance: a key only moves to the new node.
        EXPECT_EQ(now, "d") << key << " moved " << was << "->" << now;
    }
    // d should take roughly a quarter of the space, and nothing else
    // should shuffle.
    EXPECT_GT(moved, total / 10);
    EXPECT_LT(moved, total / 2);
}

TEST(MeshRingTest, LeaveMovesOnlyTheLeaverKeys)
{
    const HashRing before({"a", "b", "c", "d"}, 64);
    const HashRing after({"a", "b", "c"}, 64);
    for (const std::string &key : keys(2000)) {
        if (before.ownerOf(key) != "d")
            EXPECT_EQ(before.ownerOf(key), after.ownerOf(key)) << key;
    }
}

TEST(MeshRingTest, ReplicasAreDistinctAndOwnerFirst)
{
    const HashRing ring({"a", "b", "c", "d"}, 32);
    for (const std::string &key : keys(200)) {
        const std::vector<std::string> replicas =
            ring.replicasFor(key, 3);
        ASSERT_EQ(replicas.size(), 3u);
        EXPECT_EQ(replicas.front(), ring.ownerOf(key));
        const std::set<std::string> unique(replicas.begin(),
                                           replicas.end());
        EXPECT_EQ(unique.size(), replicas.size()) << key;
    }
}

TEST(MeshRingTest, ReplicasClampToMembership)
{
    const HashRing ring({"a", "b"}, 16);
    EXPECT_EQ(ring.replicasFor("k", 5).size(), 2u);
    EXPECT_TRUE(ring.replicasFor("k", 0).empty());
}

TEST(MeshRingTest, SuccessorsExcludeSelfAndAreDistinct)
{
    const HashRing ring({"a", "b", "c", "d"}, 32);
    for (const std::string &node : ring.nodes()) {
        const std::vector<std::string> successors =
            ring.successorsOf(node, 2);
        ASSERT_EQ(successors.size(), 2u);
        std::set<std::string> unique(successors.begin(),
                                     successors.end());
        EXPECT_EQ(unique.size(), 2u);
        EXPECT_EQ(unique.count(node), 0u) << "self in successors";
    }
    EXPECT_THROW(ring.successorsOf("nope", 1), Error);
}

TEST(MeshRingTest, ValidatesConstruction)
{
    EXPECT_THROW(HashRing({}, 8), Error);
    EXPECT_THROW(HashRing({"a", "a"}, 8), Error);
    EXPECT_THROW(HashRing({"a", ""}, 8), Error);
    EXPECT_THROW(HashRing({"a"}, 0), Error);
}

} // namespace
