/**
 * @file
 * Tests for the synthetic Java method-utilization profiles.
 */

#include <gtest/gtest.h>

#include <algorithm>

#include "src/util/error.h"
#include "src/workload/method_profile.h"
#include "src/workload/workload_profile.h"

namespace {

using namespace hiermeans::workload;
using hiermeans::InvalidArgument;

TEST(MethodProfileTest, BitsAreBinaryAndShaped)
{
    const MethodProfileSynthesizer synth;
    const MethodProfile mp = synth.generate(paperSuiteProfiles());
    EXPECT_EQ(mp.bits.rows(), 13u);
    EXPECT_EQ(mp.bits.cols(), mp.methodNames.size());
    for (std::size_t w = 0; w < mp.bits.rows(); ++w) {
        for (std::size_t c = 0; c < mp.bits.cols(); ++c) {
            EXPECT_TRUE(mp.bits(w, c) == 0.0 || mp.bits(w, c) == 1.0);
        }
    }
}

TEST(MethodProfileTest, Deterministic)
{
    const MethodProfileSynthesizer synth;
    const MethodProfile a = synth.generate(paperSuiteProfiles());
    const MethodProfile b = synth.generate(paperSuiteProfiles());
    EXPECT_TRUE(a.bits.approxEqual(b.bits, 0.0));
    EXPECT_EQ(a.methodNames, b.methodNames);
}

TEST(MethodProfileTest, PrivateMethodsUsedByExactlyOneWorkload)
{
    const MethodProfileSynthesizer synth;
    const MethodProfile mp = synth.generate(paperSuiteProfiles());
    // Count columns with exactly one user; at least the sum of
    // privateMethods such columns must exist.
    std::size_t single_user = 0;
    for (std::size_t c = 0; c < mp.bits.cols(); ++c) {
        std::size_t users = 0;
        for (std::size_t w = 0; w < mp.bits.rows(); ++w)
            users += mp.bits(w, c) != 0.0 ? 1 : 0;
        if (users == 1)
            ++single_user;
    }
    std::size_t private_total = 0;
    for (const auto &p : paperSuiteProfiles())
        private_total += p.privateMethods;
    EXPECT_GE(single_user, private_total);
}

TEST(MethodProfileTest, SciMarkBitVectorsIdenticalAfterFiltering)
{
    // The mechanism behind Figure 7: once single-user (private) and
    // universal methods are dropped, the five SciMark2 kernels have
    // bit-for-bit identical characteristic vectors.
    const MethodProfileSynthesizer synth;
    const MethodProfile mp = synth.generate(paperSuiteProfiles());
    const auto kept = selectDiscriminatingMethods(mp.bits);
    ASSERT_FALSE(kept.empty());
    const auto sc = indicesOfOrigin(SuiteOrigin::SciMark2);
    for (std::size_t c : kept) {
        for (std::size_t i = 1; i < sc.size(); ++i) {
            EXPECT_EQ(mp.bits(sc[0], c), mp.bits(sc[i], c))
                << "column " << c;
        }
    }
}

TEST(MethodProfileTest, FilterDropsUniversalAndUnique)
{
    // 3 workloads x 4 methods: col0 all use (dropped), col1 only w0
    // (dropped), col2 w0+w1 (kept), col3 none (dropped: 0 users).
    hiermeans::linalg::Matrix bits(3, 4, 0.0);
    for (std::size_t w = 0; w < 3; ++w)
        bits(w, 0) = 1.0;
    bits(0, 1) = 1.0;
    bits(0, 2) = 1.0;
    bits(1, 2) = 1.0;
    EXPECT_EQ(selectDiscriminatingMethods(bits),
              (std::vector<std::size_t>{2}));
}

TEST(MethodProfileTest, MethodsUsedCountsBits)
{
    const MethodProfileSynthesizer synth;
    const MethodProfile mp = synth.generate(paperSuiteProfiles());
    for (std::size_t w = 0; w < mp.bits.rows(); ++w) {
        std::size_t manual = 0;
        for (std::size_t c = 0; c < mp.bits.cols(); ++c)
            manual += mp.bits(w, c) != 0.0 ? 1 : 0;
        EXPECT_EQ(mp.methodsUsed(w), manual);
    }
    EXPECT_THROW(mp.methodsUsed(13), InvalidArgument);
}

TEST(MethodProfileTest, UnknownLibraryTagThrows)
{
    WorkloadProfile p;
    p.name = "w";
    p.methodSeedGroup = "w";
    p.libraries = {{"no.such.library", 0.5}};
    const MethodProfileSynthesizer synth;
    EXPECT_THROW(synth.generate({p}), InvalidArgument);
}

TEST(MethodProfileTest, ExtraLibrariesRegistered)
{
    MethodProfileConfig config;
    config.extraLibraries = {{"custom.lib", "com.custom", 20}};
    const MethodProfileSynthesizer synth(config);
    WorkloadProfile p;
    p.name = "w";
    p.methodSeedGroup = "w";
    p.libraries = {{"custom.lib", 1.0}};
    p.privateMethods = 0;
    const MethodProfile mp = synth.generate({p});
    EXPECT_EQ(mp.methodsUsed(0), 20u);
    // Invalid extra library.
    MethodProfileConfig bad;
    bad.extraLibraries = {{"x", "y", 0}};
    EXPECT_THROW(MethodProfileSynthesizer{bad}, InvalidArgument);
}

TEST(MethodProfileTest, CoverageValidation)
{
    WorkloadProfile p;
    p.name = "w";
    p.methodSeedGroup = "w";
    p.libraries = {{"jdk.core", 1.5}};
    const MethodProfileSynthesizer synth;
    EXPECT_THROW(synth.generate({p}), InvalidArgument);
    EXPECT_THROW(synth.generate({}), InvalidArgument);
}

TEST(MethodProfileTest, MethodNamesLookLikeJavaMethods)
{
    const MethodProfileSynthesizer synth;
    const MethodProfile mp = synth.generate(paperSuiteProfiles());
    // Library methods carry their package prefix.
    const bool has_scimark = std::any_of(
        mp.methodNames.begin(), mp.methodNames.end(),
        [](const std::string &n) {
            return n.find("jnt.scimark2") != std::string::npos;
        });
    EXPECT_TRUE(has_scimark);
}

} // namespace
