/**
 * @file
 * Tests for the MICA-style microarchitecture-independent features.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "src/core/characterization.h"
#include "src/util/error.h"
#include "src/workload/mica_features.h"

namespace {

using namespace hiermeans::workload;
using hiermeans::InvalidArgument;

TEST(MicaFeaturesTest, PanelShapeAndNames)
{
    const MicaFeatureSynthesizer synth;
    const MicaFeatures f = synth.generate(paperSuiteProfiles());
    EXPECT_EQ(f.values.rows(), 13u);
    EXPECT_EQ(f.values.cols(), synth.featureCount());
    EXPECT_EQ(f.featureNames.size(), synth.featureCount());
    EXPECT_EQ(f.featureNames[0], "imix.load");
    EXPECT_EQ(f.featureNames.back(), "footprint.pages4k_log");
}

TEST(MicaFeaturesTest, Deterministic)
{
    const MicaFeatureSynthesizer synth;
    const MicaFeatures a = synth.generate(paperSuiteProfiles());
    const MicaFeatures b = synth.generate(paperSuiteProfiles());
    EXPECT_TRUE(a.values.approxEqual(b.values, 0.0));
}

TEST(MicaFeaturesTest, MachineIndependentByConstruction)
{
    // generate() takes no machine at all — but verify the stronger
    // pipeline property: the characterization is identical however
    // often and in whatever context it is invoked.
    const MicaFeatureSynthesizer synth;
    const auto cv1 = hiermeans::core::characterizeFromMica(
        synth.generate(paperSuiteProfiles()), paperWorkloadNames());
    const auto cv2 = hiermeans::core::characterizeFromMica(
        synth.generate(paperSuiteProfiles()), paperWorkloadNames());
    EXPECT_TRUE(cv1.features.approxEqual(cv2.features, 0.0));
}

TEST(MicaFeaturesTest, InstructionMixSumsToOne)
{
    MicaConfig config;
    config.jitterSigma = 0.0;
    const MicaFeatureSynthesizer synth(config);
    const MicaFeatures f = synth.generate(paperSuiteProfiles());
    for (std::size_t w = 0; w < f.values.rows(); ++w) {
        double mix = 0.0;
        for (std::size_t c = 0; c < 6; ++c)
            mix += f.values(w, c);
        EXPECT_NEAR(mix, 1.0, 1e-9) << "workload " << w;
    }
}

TEST(MicaFeaturesTest, HistogramsAreDistributions)
{
    MicaConfig config;
    config.jitterSigma = 0.0;
    const MicaFeatureSynthesizer synth(config);
    const MicaFeatures f = synth.generate(paperSuiteProfiles());
    // ILP histogram columns 6 .. 6+ilpBuckets-1.
    for (std::size_t w = 0; w < f.values.rows(); ++w) {
        double ilp = 0.0;
        for (std::size_t c = 6; c < 6 + config.ilpBuckets; ++c) {
            EXPECT_GE(f.values(w, c), 0.0);
            ilp += f.values(w, c);
        }
        EXPECT_NEAR(ilp, 1.0, 1e-9);
    }
}

TEST(MicaFeaturesTest, FpHeavyKernelsDifferFromControlCode)
{
    MicaConfig config;
    config.jitterSigma = 0.0;
    const MicaFeatureSynthesizer synth(config);
    const MicaFeatures f = synth.generate(paperSuiteProfiles());
    // SciMark2.FFT (index 5, fp 0.85) has far more fp arithmetic than
    // jess (index 1, fp 0.02). imix.fp is column 4.
    EXPECT_GT(f.values(5, 4), 5.0 * f.values(1, 4));
    // And jess transitions branches more (branch.transition_rate).
    const std::size_t transition_col =
        6 + config.ilpBuckets + 2 * config.strideBuckets + 1;
    EXPECT_GT(f.values(1, transition_col), f.values(5, transition_col));
}

TEST(MicaFeaturesTest, SciMarkKernelsTightCluster)
{
    const MicaFeatureSynthesizer synth;
    const MicaFeatures f = synth.generate(paperSuiteProfiles());
    const auto sc = indicesOfOrigin(SuiteOrigin::SciMark2);
    // Relative distance between SciMark2 kernels is small versus
    // distance to DaCapo.hsqldb (index 10).
    auto dist = [&](std::size_t i, std::size_t j) {
        double acc = 0.0;
        for (std::size_t c = 0; c < f.values.cols(); ++c) {
            const double d = f.values(i, c) - f.values(j, c);
            acc += d * d;
        }
        return std::sqrt(acc);
    };
    for (std::size_t i : sc) {
        for (std::size_t j : sc) {
            if (i < j) {
                EXPECT_LT(dist(i, j) * 3.0, dist(i, 10));
            }
        }
    }
}

TEST(MicaFeaturesTest, FootprintIsLogWorkingSet)
{
    MicaConfig config;
    config.jitterSigma = 0.0;
    const MicaFeatureSynthesizer synth(config);
    const MicaFeatures f = synth.generate(paperSuiteProfiles());
    const std::size_t blocks_col = f.values.cols() - 2;
    // hsqldb (320 MB) touches more blocks than SciMark2.FFT (4 MB).
    EXPECT_GT(f.values(10, blocks_col), f.values(5, blocks_col));
    // Exactly log2(ws * 2^20 / 32).
    EXPECT_NEAR(f.values(5, blocks_col),
                std::log2(4.0 * 1024.0 * 1024.0 / 32.0), 1e-9);
}

TEST(MicaFeaturesTest, Validation)
{
    MicaConfig config;
    config.ilpBuckets = 1;
    EXPECT_THROW(MicaFeatureSynthesizer{config}, InvalidArgument);
    config = MicaConfig{};
    config.jitterSigma = -0.1;
    EXPECT_THROW(MicaFeatureSynthesizer{config}, InvalidArgument);
    const MicaFeatureSynthesizer synth;
    EXPECT_THROW(synth.generate({}), InvalidArgument);
}

} // namespace
