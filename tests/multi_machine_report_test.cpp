/**
 * @file
 * Tests for the N-machine score report.
 */

#include <gtest/gtest.h>

#include "src/scoring/hierarchical_mean.h"
#include "src/scoring/score_report.h"
#include "src/util/error.h"

namespace {

using namespace hiermeans::scoring;
using hiermeans::InvalidArgument;
using hiermeans::stats::MeanKind;

MultiMachineReport
sample()
{
    const std::vector<std::vector<double>> scores = {
        {4.0, 2.0, 1.0},  // X
        {2.0, 2.0, 2.0},  // Y
        {1.0, 1.5, 4.0},  // Z
    };
    return buildMultiMachineReport(
        MeanKind::Geometric, scores, {"X", "Y", "Z"},
        {Partition::fromGroups({{0, 1}, {2}}), Partition::discrete(3)});
}

TEST(MultiMachineReportTest, ScoresMatchHierarchicalMeans)
{
    const MultiMachineReport r = sample();
    ASSERT_EQ(r.rows.size(), 2u);
    const Partition p = Partition::fromGroups({{0, 1}, {2}});
    EXPECT_NEAR(r.rows[0].scores[0],
                hierarchicalGeometricMean({4.0, 2.0, 1.0}, p), 1e-12);
    EXPECT_NEAR(r.rows[0].scores[1],
                hierarchicalGeometricMean({2.0, 2.0, 2.0}, p), 1e-12);
    ASSERT_EQ(r.plainScores.size(), 3u);
    EXPECT_NEAR(r.plainScores[1], 2.0, 1e-12);
}

TEST(MultiMachineReportTest, RankingOrdersByScore)
{
    const MultiMachineReport r = sample();
    // Row 0: X = sqrt(sqrt(8)*1) ~ 1.68, Y = 2, Z = sqrt(sqrt(1.5)*4)
    // ~ 2.21 -> Z > Y > X.
    const auto rank = r.ranking(0);
    EXPECT_EQ(rank[0], 2u);
    EXPECT_EQ(rank[1], 1u);
    EXPECT_EQ(rank[2], 0u);
    EXPECT_THROW(r.ranking(5), InvalidArgument);
}

TEST(MultiMachineReportTest, RankingStabilityDetection)
{
    const MultiMachineReport r = sample();
    // Row 1 (discrete): X GM = 2, Y = 2, Z ~ 1.82 -> X/Y lead; row 0
    // ranked Z first, so the ranking is NOT stable across k.
    EXPECT_FALSE(r.rankingStable());

    // A report where one machine dominates everywhere is stable.
    const std::vector<std::vector<double>> dominated = {
        {4.0, 4.0}, {1.0, 1.0}};
    const MultiMachineReport stable = buildMultiMachineReport(
        MeanKind::Geometric, dominated, {"fast", "slow"},
        {Partition::single(2), Partition::discrete(2)});
    EXPECT_TRUE(stable.rankingStable());
}

TEST(MultiMachineReportTest, RenderListsMachinesAndBestColumn)
{
    const MultiMachineReport r = sample();
    const std::string out = r.render();
    for (const char *label : {"X", "Y", "Z", "best", "plain"})
        EXPECT_NE(out.find(label), std::string::npos) << label;
    EXPECT_NE(out.find("2 Clusters"), std::string::npos);
}

TEST(MultiMachineReportTest, TiesBrokenByMachineOrder)
{
    const std::vector<std::vector<double>> tied = {{2.0}, {2.0}};
    const MultiMachineReport r = buildMultiMachineReport(
        MeanKind::Geometric, tied, {"first", "second"},
        {Partition::single(1)});
    EXPECT_EQ(r.ranking(0)[0], 0u);
}

TEST(MultiMachineReportTest, Validation)
{
    EXPECT_THROW(buildMultiMachineReport(MeanKind::Geometric, {{1.0}},
                                         {"only"}, {}),
                 InvalidArgument);
    EXPECT_THROW(buildMultiMachineReport(MeanKind::Geometric,
                                         {{1.0}, {1.0, 2.0}},
                                         {"a", "b"}, {}),
                 InvalidArgument);
    EXPECT_THROW(
        buildMultiMachineReport(MeanKind::Geometric, {{1.0}, {2.0}},
                                {"a", "b"},
                                {Partition::single(2)}),
        InvalidArgument);
}

} // namespace
