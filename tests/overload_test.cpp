/**
 * @file
 * Overload-behavior suite (ctest -L overload): cooperative cancel
 * tokens, the two-lane admission gate, the engine purging expired
 * work at dequeue, end-to-end deadline propagation (decremented
 * across retries and 307 redirects), pre-admission deadline shedding
 * and the graceful-drain state machine.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <unistd.h>
#include <vector>

#include "src/client/cluster_client.h"
#include "src/client/scoring_client.h"
#include "src/engine/cancel.h"
#include "src/engine/engine.h"
#include "src/server/admission.h"
#include "src/server/client.h"
#include "src/server/server.h"
#include "src/server/transport.h"
#include "src/util/file.h"

namespace {

using namespace hiermeans;
using Response = server::HttpResponseParser::Response;

// --- cancel tokens ---------------------------------------------------

TEST(CancelTokenTest, DefaultTokenNeverCancels)
{
    engine::CancelToken token;
    EXPECT_FALSE(token.valid());
    EXPECT_FALSE(token.cancelled());
    EXPECT_TRUE(token.remainingMillis() > 1e12);
}

TEST(CancelTokenTest, ExplicitCancelFlipsTheToken)
{
    engine::CancelSource source;
    engine::CancelToken token = source.token();
    EXPECT_TRUE(token.valid());
    EXPECT_FALSE(token.cancelled());
    source.cancel();
    EXPECT_TRUE(token.cancelled());
    // No deadline was armed, so this is a pure cancel, not a timeout.
    EXPECT_TRUE(token.remainingMillis() > 1e12);
}

TEST(CancelTokenTest, DeadlineExpiryCancelsAndReportsOverdue)
{
    engine::CancelSource source;
    source.setDeadline(1.0);
    engine::CancelToken token = source.token();
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    EXPECT_TRUE(token.cancelled());
    EXPECT_LE(token.remainingMillis(), 0.0);
}

TEST(CancelTokenTest, UnexpiredDeadlineReportsRemainingBudget)
{
    engine::CancelSource source;
    source.setDeadline(60000.0);
    engine::CancelToken token = source.token();
    EXPECT_FALSE(token.cancelled());
    const double remaining = token.remainingMillis();
    EXPECT_GT(remaining, 0.0);
    EXPECT_LE(remaining, 60000.0);
}

TEST(CancelTokenTest, ParentCancelSweepsChildren)
{
    engine::CancelSource drain;
    engine::CancelSource request_a(drain.token());
    engine::CancelSource request_b(drain.token());
    EXPECT_FALSE(request_a.token().cancelled());
    drain.cancel();
    EXPECT_TRUE(request_a.token().cancelled());
    EXPECT_TRUE(request_b.token().cancelled());
}

TEST(CancelTokenTest, ChildCancelLeavesParentAndSiblingAlone)
{
    engine::CancelSource drain;
    engine::CancelSource request_a(drain.token());
    engine::CancelSource request_b(drain.token());
    request_a.cancel();
    EXPECT_TRUE(request_a.token().cancelled());
    EXPECT_FALSE(drain.token().cancelled());
    EXPECT_FALSE(request_b.token().cancelled());
}

// --- two-lane admission gate -----------------------------------------

TEST(AdmissionLaneTest, BulkLaneDefaultsToHalfTheCapacity)
{
    server::AdmissionGate gate(8);
    EXPECT_EQ(gate.capacity(), 8u);
    EXPECT_EQ(gate.bulkCapacity(), 4u);
    server::AdmissionGate tiny(1);
    EXPECT_EQ(tiny.bulkCapacity(), 1u);
}

TEST(AdmissionLaneTest, BulkIsCappedBelowTheGate)
{
    server::AdmissionGate gate(4); // bulk cap = 2.
    EXPECT_TRUE(gate.tryEnter(server::Lane::Bulk));
    EXPECT_TRUE(gate.tryEnter(server::Lane::Bulk));
    EXPECT_FALSE(gate.tryEnter(server::Lane::Bulk))
        << "bulk must stop at its cap with slots still free";
    EXPECT_EQ(gate.depth(server::Lane::Bulk), 2u);
    EXPECT_EQ(gate.shedTotal(server::Lane::Bulk), 1u);
    EXPECT_EQ(gate.shedTotal(server::Lane::Interactive), 0u);
}

TEST(AdmissionLaneTest, SaturatedBulkCannotStarveInteractive)
{
    server::AdmissionGate gate(4);
    while (gate.tryEnter(server::Lane::Bulk))
        ;
    // The lane cap leaves interactive headroom: scores still admit.
    EXPECT_TRUE(gate.tryEnter(server::Lane::Interactive));
    EXPECT_TRUE(gate.tryEnter(server::Lane::Interactive));
    EXPECT_FALSE(gate.tryEnter(server::Lane::Interactive))
        << "total capacity still bounds both lanes";
    EXPECT_EQ(gate.depth(), 4u);
}

TEST(AdmissionLaneTest, InteractiveMayFillTheWholeGate)
{
    server::AdmissionGate gate(4);
    for (int i = 0; i < 4; ++i)
        EXPECT_TRUE(gate.tryEnter(server::Lane::Interactive));
    EXPECT_FALSE(gate.tryEnter(server::Lane::Interactive));
    // ... at which point bulk is locked out entirely.
    EXPECT_FALSE(gate.tryEnter(server::Lane::Bulk));
    gate.leave(server::Lane::Interactive);
    EXPECT_TRUE(gate.tryEnter(server::Lane::Bulk));
}

TEST(AdmissionLaneTest, LeaveReleasesTheRightLane)
{
    server::AdmissionGate gate(4);
    ASSERT_TRUE(gate.tryEnter(server::Lane::Bulk));
    ASSERT_TRUE(gate.tryEnter(server::Lane::Interactive));
    EXPECT_EQ(gate.depth(server::Lane::Bulk), 1u);
    EXPECT_EQ(gate.depth(server::Lane::Interactive), 1u);
    gate.leave(server::Lane::Bulk);
    EXPECT_EQ(gate.depth(server::Lane::Bulk), 0u);
    EXPECT_EQ(gate.depth(server::Lane::Interactive), 1u);
    gate.leave(server::Lane::Interactive);
    EXPECT_EQ(gate.depth(), 0u);
}

// --- engine purge ----------------------------------------------------

/** A small but non-trivial request (mirrors engine_test). */
engine::ScoreRequest
makeRequest(std::uint64_t variant = 0)
{
    const std::size_t n = 6;
    const std::size_t d = 4;
    engine::ScoreRequest request;
    request.features = linalg::Matrix(n, d);
    for (std::size_t r = 0; r < n; ++r) {
        for (std::size_t c = 0; c < d; ++c) {
            request.features(r, c) =
                static_cast<double>((r * 7 + c * 3 + variant * 11) %
                                    13) +
                0.25 * static_cast<double>(r);
        }
    }
    for (std::size_t r = 0; r < n; ++r) {
        request.workloads.push_back("w" + std::to_string(r));
        request.scoresA.push_back(1.0 + static_cast<double>(r));
        request.scoresB.push_back(
            2.0 + 0.5 * static_cast<double>((r + variant) % n));
    }
    for (std::size_t c = 0; c < d; ++c)
        request.featureNames.push_back("f" + std::to_string(c));
    request.config.kMin = 2;
    request.config.kMax = 4;
    request.config.som.rows = 4;
    request.config.som.cols = 5;
    request.config.som.steps = 200;
    request.seed = 0x5eed + variant;
    return request;
}

TEST(EnginePurgeTest, CancelledEntryIsPurgedAtDequeueWithoutRunning)
{
    engine::ScoringEngine::Config config;
    config.threads = 2;
    engine::ScoringEngine engine(config);

    engine::CancelSource source;
    source.cancel(); // cancelled before it ever reaches a worker.
    engine::ScoreRequest request = makeRequest(1);
    request.id = "purged";
    request.cancel = source.token();

    const engine::ScoreResult result =
        engine.submit(std::move(request)).get();
    EXPECT_FALSE(result.ok);
    EXPECT_TRUE(result.cancelled);
    EXPECT_FALSE(result.timedOut) << "pure cancel, not a deadline";

    const engine::MetricsSnapshot snap = engine.metrics().snapshot();
    EXPECT_EQ(snap.executions, 0u)
        << "a purged entry must never run the pipeline";
    EXPECT_GE(snap.cancellations, 1u);
}

TEST(EnginePurgeTest, ExpiredDeadlineEntryCountsAsTimeout)
{
    engine::ScoringEngine::Config config;
    config.threads = 2;
    engine::ScoringEngine engine(config);

    engine::CancelSource source;
    source.setDeadline(0.01);
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    engine::ScoreRequest request = makeRequest(2);
    request.id = "expired";
    request.cancel = source.token();

    const engine::ScoreResult result =
        engine.submit(std::move(request)).get();
    EXPECT_FALSE(result.ok);
    EXPECT_TRUE(result.timedOut)
        << "an expired deadline classifies as a timeout";
    const engine::MetricsSnapshot snap = engine.metrics().snapshot();
    EXPECT_EQ(snap.executions, 0u);
}

TEST(EnginePurgeTest, UncancelledTokenRunsNormally)
{
    engine::ScoringEngine::Config config;
    config.threads = 2;
    engine::ScoringEngine engine(config);

    engine::CancelSource source;
    source.setDeadline(60000.0);
    engine::ScoreRequest request = makeRequest(3);
    request.id = "fine";
    request.cancel = source.token();
    const engine::ScoreResult result =
        engine.submit(std::move(request)).get();
    EXPECT_TRUE(result.ok) << result.error;
    EXPECT_FALSE(result.cancelled);
}

// --- deadline propagation over the wire ------------------------------

/** Bare Router + HttpTransport scaffold around one programmable
 *  handler, for observing exactly what a client sent. */
class EchoServer
{
  public:
    explicit EchoServer(server::Router::Handler handler)
    {
        router_.add("POST", "/v1/score", std::move(handler));
        server::HttpTransport::Config config;
        config.port = 0;
        config.connectionThreads = 2;
        transport_ = std::make_unique<server::HttpTransport>(
            config, router_, metrics_);
        transport_->start();
    }

    ~EchoServer() { transport_->stop(); }

    std::uint16_t port() const { return transport_->port(); }

  private:
    server::Router router_;
    server::ServerMetrics metrics_;
    std::unique_ptr<server::HttpTransport> transport_;
};

double
headerDeadline(const server::RequestContext &ctx)
{
    // The transport already parsed it into the context.
    return ctx.hasDeadline() ? ctx.deadlineMillis : -1.0;
}

TEST(DeadlinePropagationTest, BudgetDecrementsAcrossRetries)
{
    std::vector<double> seen;
    std::atomic<int> calls{0};
    EchoServer echo([&](const server::RequestContext &ctx) {
        seen.push_back(headerDeadline(ctx));
        if (calls.fetch_add(1) == 0) {
            server::HttpResponse busy = server::errorResponse(
                server::ApiError::Overloaded, "full", ctx.traceId);
            busy.set("Retry-After", "0.05");
            return busy;
        }
        return server::okResponse("1", ctx.traceId);
    });

    client::ScoringClient::Config config;
    config.port = echo.port();
    config.deadlineMillis = 10000.0;
    config.retry.maxAttempts = 3;
    config.retry.baseMillis = 30.0;
    config.retry.capMillis = 60.0;
    client::ScoringClient client(config);

    const client::Outcome outcome = client.score("anything");
    ASSERT_TRUE(outcome.ok()) << outcome.error;
    ASSERT_EQ(seen.size(), 2u);
    EXPECT_GT(seen[0], 0.0) << "first attempt must carry the budget";
    EXPECT_LT(seen[1], seen[0])
        << "the retry must carry a smaller remaining budget "
           "(elapsed time + backoff subtracted)";
    EXPECT_LT(seen[1], 10000.0 - 25.0)
        << "at least the backoff sleep must have been subtracted";
}

TEST(DeadlinePropagationTest, SpentBudgetFailsLocallyWithoutARetry)
{
    std::atomic<int> calls{0};
    EchoServer echo([&](const server::RequestContext &ctx) {
        calls.fetch_add(1);
        server::HttpResponse busy = server::errorResponse(
            server::ApiError::Overloaded, "full", ctx.traceId);
        // Longer than the whole budget: the retry must never happen.
        busy.set("Retry-After", "1");
        return busy;
    });

    client::ScoringClient::Config config;
    config.port = echo.port();
    config.deadlineMillis = 300.0;
    config.retry.maxAttempts = 5;
    config.retry.baseMillis = 400.0;
    config.retry.capMillis = 500.0;
    client::ScoringClient client(config);

    const client::Outcome outcome = client.score("anything");
    EXPECT_FALSE(outcome.ok());
    EXPECT_LE(calls.load(), 2)
        << "the budget must stop the retry ladder early";
}

TEST(DeadlinePropagationTest, BudgetDecrementsAcrossARedirect)
{
    std::vector<double> at_owner;
    EchoServer owner([&](const server::RequestContext &ctx) {
        at_owner.push_back(headerDeadline(ctx));
        return server::okResponse("1", ctx.traceId);
    });
    EchoServer router([&](const server::RequestContext &ctx) {
        server::HttpResponse redirect;
        redirect.status = 307;
        redirect.set("Location",
                     "http://127.0.0.1:" +
                         std::to_string(owner.port()) +
                         ctx.http.target);
        return redirect;
    });

    client::ClusterClient::Config config;
    config.targets = {
        client::ClusterTarget{"127.0.0.1", router.port()},
        client::ClusterTarget{"127.0.0.1", owner.port()}};
    config.deadlineMillis = 10000.0;
    client::ClusterClient client(config);

    const client::Outcome outcome = client.score("anything");
    ASSERT_TRUE(outcome.ok()) << outcome.error;
    ASSERT_EQ(at_owner.size(), 1u);
    EXPECT_GT(at_owner[0], 0.0);
    EXPECT_LT(at_owner[0], 10000.0)
        << "the redirected hop must see a decremented budget";
}

// --- server: deadline shedding + drain -------------------------------

class OverloadServerTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        const std::string stem = "/tmp/hiermeans_overload_test_" +
                                 std::to_string(::getpid());
        scoresPath_ = stem + "_scores.csv";
        featuresPath_ = stem + "_features.csv";
        util::writeFile(scoresPath_, "workload,mA,mB\n"
                                     "w0,1.0,2.0\n"
                                     "w1,2.0,1.0\n"
                                     "w2,1.5,1.5\n"
                                     "w3,3.0,1.0\n"
                                     "w4,1.0,3.0\n"
                                     "w5,2.5,2.5\n");
        util::writeFile(featuresPath_, "workload,f0,f1,f2\n"
                                       "w0,0.1,1.0,-0.5\n"
                                       "w1,0.9,-1.0,0.5\n"
                                       "w2,0.2,0.8,-0.4\n"
                                       "w3,0.8,-0.9,0.6\n"
                                       "w4,-0.7,0.1,1.2\n"
                                       "w5,-0.6,0.2,1.1\n");
    }

    void
    TearDown() override
    {
        if (server_)
            server_->stop();
        std::remove(scoresPath_.c_str());
        std::remove(featuresPath_.c_str());
    }

    void
    startServer(const std::function<void(server::Server::Config &)>
                    &tweak = {})
    {
        server::Server::Config config;
        config.port = 0;
        config.engine.threads = 2;
        config.queueDepth = 4;
        config.connectionThreads = 8;
        config.drainDeadlineMillis = 500.0;
        if (tweak)
            tweak(config);
        server_ = std::make_unique<server::Server>(config);
        server_->start();
    }

    std::string
    line(const std::string &extra = "") const
    {
        return "scores=" + scoresPath_ + " features=" + featuresPath_ +
               " machine-a=mA machine-b=mB som-steps=150" +
               (extra.empty() ? "" : " " + extra);
    }

    server::HttpClient
    client() const
    {
        return server::HttpClient("127.0.0.1", server_->port());
    }

    std::string scoresPath_;
    std::string featuresPath_;
    std::unique_ptr<server::Server> server_;
};

TEST_F(OverloadServerTest, SpentDeadlineIsShedBeforeTheEngine)
{
    startServer();
    auto c = client();
    // A microscopic budget is gone by the time the handler runs.
    const Response shed = c.roundTrip(
        "POST", "/v1/score", line("seed=1"), "text/plain",
        {{"X-Hiermeans-Deadline", "0.0001"}});
    EXPECT_EQ(shed.status, 504) << shed.body;
    EXPECT_NE(shed.body.find("deadline_expired"), std::string::npos)
        << shed.body;
    const auto snap = server_->metrics().snapshot(0, 1);
    EXPECT_GE(snap.deadlineExpired, 1u);
    const auto engine_snap = server_->engine().metrics().snapshot();
    EXPECT_EQ(engine_snap.requests, 0u)
        << "an expired request must never reach the engine";
}

TEST_F(OverloadServerTest, ExpiredFastFailDoesNotTripTheBreaker)
{
    startServer([](server::Server::Config &config) {
        config.breaker.failureThreshold = 2;
    });
    auto c = client();
    for (int i = 0; i < 6; ++i) {
        const Response shed = c.roundTrip(
            "POST", "/v1/score", line("seed=1"), "text/plain",
            {{"X-Hiermeans-Deadline", "0.0001"}});
        ASSERT_EQ(shed.status, 504);
        ASSERT_NE(shed.body.find("deadline_expired"),
                  std::string::npos)
            << "must stay deadline_expired, not become circuit_open";
    }
    // The breaker never saw those: a healthy request still executes.
    const Response fine =
        c.roundTrip("POST", "/v1/score", line("seed=2"));
    EXPECT_EQ(fine.status, 200) << fine.body;
}

TEST_F(OverloadServerTest, GenerousDeadlineIsAdmittedAndAnswered)
{
    startServer();
    auto c = client();
    const Response answered = c.roundTrip(
        "POST", "/v1/score", line("seed=3"), "text/plain",
        {{"X-Hiermeans-Deadline", "60000"}});
    EXPECT_EQ(answered.status, 200) << answered.body;
    const auto snap = server_->metrics().snapshot(0, 1);
    EXPECT_EQ(snap.deadlineMisses, 0u);
}

TEST_F(OverloadServerTest, DrainShedsScoringAndFlipsHealth)
{
    startServer();
    auto c = client();
    ASSERT_EQ(c.roundTrip("POST", "/v1/score", line("seed=4")).status,
              200);

    server_->beginDrain();
    EXPECT_TRUE(server_->draining());

    const Response shed =
        c.roundTrip("POST", "/v1/score", line("seed=5"));
    EXPECT_EQ(shed.status, 503);
    EXPECT_NE(shed.body.find("\"draining\""), std::string::npos)
        << shed.body;
    EXPECT_EQ(shed.header("retry-after", ""), "1");

    const Response health = c.roundTrip("GET", "/healthz");
    EXPECT_EQ(health.status, 503)
        << "draining must advertise on /healthz so load balancers "
           "and peers stop routing here";
    EXPECT_EQ(health.header("x-hiermeans-health", ""), "draining");

    const auto snap = server_->metrics().snapshot(0, 1);
    EXPECT_GE(snap.drainSheds, 1u);
    EXPECT_TRUE(snap.draining);
}

TEST_F(OverloadServerTest, DrainIsOneWayAndIdempotent)
{
    startServer();
    server_->beginDrain();
    server_->beginDrain(); // second call is a no-op, not a crash.
    EXPECT_TRUE(server_->draining());
}

TEST_F(OverloadServerTest, ClusterClientFailsOverOffADrainingNode)
{
    startServer();
    // A second, healthy server to fail over to.
    auto second = std::make_unique<server::Server>([this] {
        server::Server::Config config;
        config.port = 0;
        config.engine.threads = 2;
        config.queueDepth = 4;
        config.connectionThreads = 8;
        return config;
    }());
    second->start();

    server_->beginDrain();

    client::ClusterClient::Config config;
    config.targets = {
        client::ClusterTarget{"127.0.0.1", server_->port()},
        client::ClusterTarget{"127.0.0.1", second->port()}};
    client::ClusterClient client(config);

    const client::Outcome outcome = client.score(line("seed=6"));
    EXPECT_TRUE(outcome.ok()) << outcome.error;
    EXPECT_EQ(client.currentTarget(), 1u)
        << "the draining node must be rotated away from";
    EXPECT_GE(client.stats()[0].drainRotations, 1u);
    second->stop();
}

} // namespace
