/**
 * @file
 * Tests for the embedded published data and its internal consistency.
 */

#include <gtest/gtest.h>

#include "src/stats/means.h"
#include "src/workload/paper_data.h"
#include "src/workload/workload_profile.h"

namespace {

using namespace hiermeans::workload;

TEST(PaperDataTest, Table3Shape)
{
    const auto &rows = paper::table3();
    ASSERT_EQ(rows.size(), 13u);
    EXPECT_EQ(rows.front().workload, "jvm98.201.compress");
    EXPECT_EQ(rows.back().workload, "DaCapo.xalan");
    EXPECT_DOUBLE_EQ(rows[4].speedupA, 2.57); // mtrt.
    EXPECT_DOUBLE_EQ(rows[10].speedupB, 2.31); // hsqldb.
}

TEST(PaperDataTest, Table3NamesMatchSuiteProfiles)
{
    const auto names = paperWorkloadNames();
    const auto &rows = paper::table3();
    for (std::size_t i = 0; i < rows.size(); ++i)
        EXPECT_EQ(rows[i].workload, names[i]);
}

TEST(PaperDataTest, Table3RatiosConsistent)
{
    // The printed ratio column equals A/B up to the paper's rounding
    // (the authors rounded from unrounded speedups, so allow two ulps
    // of the second decimal).
    for (const auto &row : paper::table3()) {
        EXPECT_NEAR(row.ratio, row.speedupA / row.speedupB, 0.02)
            << row.workload;
    }
}

TEST(PaperDataTest, Table3GeomeanMatchesPrintedFooter)
{
    // Independent validation of the paper's own arithmetic: the plain
    // geometric means of the columns equal the printed footer values.
    const auto a = paper::table3SpeedupsA();
    const auto b = paper::table3SpeedupsB();
    const double gm_a = hiermeans::stats::geometricMean(a);
    const double gm_b = hiermeans::stats::geometricMean(b);
    EXPECT_NEAR(gm_a, paper::kTable3GeomeanA, 0.005);
    EXPECT_NEAR(gm_b, paper::kTable3GeomeanB, 0.005);
    EXPECT_NEAR(gm_a / gm_b, paper::kTable3GeomeanRatio, 0.005);
}

TEST(PaperDataTest, HgmTablesShape)
{
    for (const auto *table : {&paper::table4(), &paper::table5(),
                              &paper::table6()}) {
        ASSERT_EQ(table->size(), 7u);
        for (std::size_t i = 0; i < table->size(); ++i) {
            EXPECT_EQ((*table)[i].clusters, i + 2);
            EXPECT_GT((*table)[i].scoreA, 0.0);
            EXPECT_NEAR((*table)[i].ratio,
                        (*table)[i].scoreA / (*table)[i].scoreB, 0.011);
        }
    }
}

TEST(PaperDataTest, Figure4aGroupsPartitionThirteenWorkloads)
{
    const auto groups = paper::figure4aFourClusterGroups();
    ASSERT_EQ(groups.size(), 4u);
    std::vector<bool> seen(13, false);
    for (const auto &g : groups) {
        for (std::size_t w : g) {
            ASSERT_LT(w, 13u);
            EXPECT_FALSE(seen[w]);
            seen[w] = true;
        }
    }
    for (bool s : seen)
        EXPECT_TRUE(s);
    // The narrated singleton is javac.
    EXPECT_EQ(groups[0], (std::vector<std::size_t>{2}));
}

} // namespace
