/**
 * @file
 * Reproduction tests that pin our implementation to quantities that are
 * pure functions of the paper's published numbers.
 *
 * The paper's Tables IV-VI depend on clusterings we can only reproduce
 * in shape (our characterization substrate is synthetic), but Table III
 * and every piece of mean arithmetic are exactly checkable.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "src/scoring/hierarchical_mean.h"
#include "src/scoring/score_report.h"
#include "src/stats/means.h"
#include "src/workload/paper_data.h"

namespace {

using namespace hiermeans::scoring;
using namespace hiermeans::workload;
using hiermeans::stats::MeanKind;

TEST(PaperReproductionTest, Table3FooterGeomeans)
{
    const double gm_a =
        hiermeans::stats::geometricMean(paper::table3SpeedupsA());
    const double gm_b =
        hiermeans::stats::geometricMean(paper::table3SpeedupsB());
    // The paper prints 2.10, 1.94, 1.08.
    EXPECT_EQ(std::round(gm_a * 100.0) / 100.0, 2.10);
    EXPECT_EQ(std::round(gm_b * 100.0) / 100.0, 1.94);
    EXPECT_EQ(std::round(gm_a / gm_b * 100.0) / 100.0, 1.08);
}

TEST(PaperReproductionTest, HgmDegeneratesToTable3FooterAtK13)
{
    // Section II: with one workload per cluster the HGM "gracefully
    // degenerates" to the plain geometric mean — i.e. Table IV/V/VI
    // extended to 13 clusters must print the Table III footer.
    const auto a = paper::table3SpeedupsA();
    const auto b = paper::table3SpeedupsB();
    const Partition discrete = Partition::discrete(13);
    EXPECT_NEAR(hierarchicalGeometricMean(a, discrete), 2.10, 0.005);
    EXPECT_NEAR(hierarchicalGeometricMean(b, discrete), 1.94, 0.005);
}

TEST(PaperReproductionTest, SciMarkSingleClusterRaisesRatio)
{
    // Collapsing the 5 SciMark2 workloads into one cluster (the
    // correction the paper advocates) raises machine A's advantage
    // over B relative to the plain GM ratio of 1.08: SciMark2 is where
    // B is competitive, so its redundancy was depressing A's score.
    const auto a = paper::table3SpeedupsA();
    const auto b = paper::table3SpeedupsB();
    const Partition p = Partition::fromGroups({
        {0}, {1}, {2}, {3}, {4}, {5, 6, 7, 8, 9}, {10}, {11}, {12}});
    const double hgm_a = hierarchicalGeometricMean(a, p);
    const double hgm_b = hierarchicalGeometricMean(b, p);
    EXPECT_GT(hgm_a / hgm_b, 1.08);
    // And both scores rise (the depressed numeric-kernel block no
    // longer outvotes the rest 5-to-13).
    EXPECT_GT(hgm_a, 2.10);
    EXPECT_GT(hgm_b, 1.94);
}

TEST(PaperReproductionTest, Figure4aNarratedPartitionScores)
{
    // The paper narrates the 4-cluster composition on machine A
    // (Figure 4(a), merging distance 4): {javac}, {jess, mtrt},
    // {chart, xalan}, rest. HGM over that partition is a pure function
    // of Table III; pin it as a regression value.
    const auto groups = paper::figure4aFourClusterGroups();
    const Partition p = Partition::fromGroups(groups);
    const auto a = paper::table3SpeedupsA();
    const auto b = paper::table3SpeedupsB();
    const double hgm_a = hierarchicalGeometricMean(a, p);
    const double hgm_b = hierarchicalGeometricMean(b, p);

    // Hand-derivable: cluster GMs on A are 3.97, sqrt(5.32*2.57),
    // sqrt(5.12*1.88), and the 8-way GM of the rest.
    const double inner_rest_a = std::pow(
        4.75 * 6.50 * 1.09 * 1.19 * 0.75 * 1.22 * 0.71 * 1.16, 1.0 / 8.0);
    const double expected_a =
        std::pow(3.97 * std::sqrt(5.32 * 2.57) *
                     std::sqrt(5.12 * 1.88) * inner_rest_a,
                 0.25);
    EXPECT_NEAR(hgm_a, expected_a, 1e-12);
    EXPECT_GT(hgm_a / hgm_b, 1.0);
}

TEST(PaperReproductionTest, PublishedHgmRatiosWithinExactBounds)
{
    // Exact invariant: ln(HGM_A / HGM_B) is a convex combination (over
    // clusters, then over members) of the per-workload ln(A_i / B_i),
    // so EVERY hierarchical-mean ratio — including each row the paper
    // publishes in Tables IV, V and VI — must lie between the minimum
    // and maximum per-workload speedup ratios of Table III.
    const auto a = paper::table3SpeedupsA();
    const auto b = paper::table3SpeedupsB();
    double lo = a[0] / b[0], hi = a[0] / b[0];
    for (std::size_t i = 1; i < a.size(); ++i) {
        lo = std::min(lo, a[i] / b[i]);
        hi = std::max(hi, a[i] / b[i]);
    }
    for (const auto *table : {&paper::table4(), &paper::table5(),
                              &paper::table6()}) {
        for (const auto &row : *table) {
            EXPECT_GT(row.ratio, lo - 0.01) << "k=" << row.clusters;
            EXPECT_LT(row.ratio, hi + 0.01) << "k=" << row.clusters;
        }
    }

    // And our own HGM over any partition respects the same bounds.
    const Partition p = Partition::fromGroups({
        {0}, {1}, {2}, {3}, {4}, {5, 6, 7, 8, 9}, {10}, {11}, {12}});
    const double ratio = hierarchicalGeometricMean(a, p) /
                         hierarchicalGeometricMean(b, p);
    EXPECT_GT(ratio, lo);
    EXPECT_LT(ratio, hi);
}

TEST(PaperReproductionTest, HamAndHhmOnPaperScores)
{
    // The paper defines HAM and HHM but evaluates only HGM; compute
    // both on the published data with the SciMark2-collapsed partition
    // and verify the mean inequality chain holds hierarchically too.
    const auto a = paper::table3SpeedupsA();
    const Partition p = Partition::fromGroups({
        {0}, {1}, {2}, {3}, {4}, {5, 6, 7, 8, 9}, {10}, {11}, {12}});
    const double ham = hierarchicalArithmeticMean(a, p);
    const double hgm = hierarchicalGeometricMean(a, p);
    const double hhm = hierarchicalHarmonicMean(a, p);
    EXPECT_LT(hhm, hgm);
    EXPECT_LT(hgm, ham);
}

TEST(PaperReproductionTest, WeightedMeanEquivalenceOnPaperData)
{
    // Section II claims hierarchical means are "more objective" than
    // the weighted-mean workaround; structurally an HGM *is* the
    // weighted GM with objective weights 1/(k*n_i). Verify on the
    // published scores.
    const auto a = paper::table3SpeedupsA();
    const Partition p = Partition::fromGroups({
        {0, 3}, {1, 4}, {2}, {5, 6, 7, 8, 9}, {10, 12}, {11}});
    EXPECT_NEAR(hierarchicalGeometricMean(a, p),
                hiermeans::stats::weightedGeometricMean(
                    a, impliedWeights(p)),
                1e-12);
}

} // namespace
