/**
 * @file
 * Tests for scoring::Partition and the Rand indices.
 */

#include <gtest/gtest.h>

#include "src/scoring/partition.h"
#include "src/util/error.h"
#include "src/util/rng.h"

namespace {

using hiermeans::InvalidArgument;
using hiermeans::scoring::adjustedRandIndex;
using hiermeans::scoring::Partition;
using hiermeans::scoring::randIndex;

TEST(PartitionTest, SingleAndDiscrete)
{
    const Partition single = Partition::single(5);
    EXPECT_EQ(single.size(), 5u);
    EXPECT_EQ(single.clusterCount(), 1u);
    EXPECT_TRUE(single.isSingle());
    EXPECT_FALSE(single.isDiscrete());

    const Partition discrete = Partition::discrete(5);
    EXPECT_EQ(discrete.clusterCount(), 5u);
    EXPECT_TRUE(discrete.isDiscrete());
    EXPECT_FALSE(discrete.isSingle());

    const Partition one = Partition::single(1);
    EXPECT_TRUE(one.isSingle());
    EXPECT_TRUE(one.isDiscrete());
}

TEST(PartitionTest, CanonicalizationMakesEquivalentLabelingsEqual)
{
    const Partition a = Partition::fromLabels({7, 7, 3, 3, 9});
    const Partition b = Partition::fromLabels({0, 0, 1, 1, 2});
    EXPECT_EQ(a, b);
    EXPECT_EQ(a.labels(), (std::vector<std::size_t>{0, 0, 1, 1, 2}));
}

TEST(PartitionTest, FromGroupsRoundTrip)
{
    const Partition p = Partition::fromGroups({{0, 2}, {1}, {3, 4}});
    EXPECT_EQ(p.clusterCount(), 3u);
    EXPECT_EQ(p.members(0), (std::vector<std::size_t>{0, 2}));
    EXPECT_EQ(p.members(1), (std::vector<std::size_t>{1}));
    EXPECT_EQ(p.members(2), (std::vector<std::size_t>{3, 4}));
    EXPECT_EQ(p.clusterSizes(), (std::vector<std::size_t>{2, 1, 2}));
}

TEST(PartitionTest, GroupsPartitionAllItems)
{
    const Partition p = Partition::fromLabels({0, 1, 0, 2, 1, 0});
    const auto groups = p.groups();
    std::size_t total = 0;
    for (const auto &g : groups)
        total += g.size();
    EXPECT_EQ(total, p.size());
}

TEST(PartitionTest, FromGroupsValidation)
{
    // Item appears twice.
    EXPECT_THROW(Partition::fromGroups({{0, 1}, {1}}), InvalidArgument);
    // Empty cluster.
    EXPECT_THROW(Partition::fromGroups({{0}, {}}), InvalidArgument);
    // Gap: item 2 missing (3 items total implies indices 0..2).
    EXPECT_THROW(Partition::fromGroups({{0, 1, 3}}), InvalidArgument);
    // Empty everything.
    EXPECT_THROW(Partition::fromGroups({}), InvalidArgument);
}

TEST(PartitionTest, LabelBoundsChecked)
{
    const Partition p = Partition::single(3);
    EXPECT_THROW(p.label(3), InvalidArgument);
    EXPECT_THROW(p.members(1), InvalidArgument);
}

TEST(PartitionTest, ToStringWithNames)
{
    const Partition p = Partition::fromGroups({{0, 1}, {2}});
    EXPECT_EQ(p.toString({"a", "b", "c"}), "{a, b} {c}");
    EXPECT_EQ(p.toString(), "{0, 1} {2}");
    EXPECT_THROW(p.toString({"a"}), InvalidArgument);
}

TEST(RandIndexTest, IdenticalPartitionsScoreOne)
{
    const Partition p = Partition::fromLabels({0, 0, 1, 2, 2});
    EXPECT_DOUBLE_EQ(randIndex(p, p), 1.0);
    EXPECT_DOUBLE_EQ(adjustedRandIndex(p, p), 1.0);
}

TEST(RandIndexTest, KnownDisagreement)
{
    // Pairs: (0,1) same in a, same in b (agree); (0,2) diff/diff
    // (agree); (1,2) diff/diff (agree) -> hand check a small case.
    const Partition a = Partition::fromLabels({0, 0, 1});
    const Partition b = Partition::fromLabels({0, 1, 1});
    // Pairs: (0,1): a same, b diff -> disagree. (0,2): a diff, b diff
    // -> agree. (1,2): a diff, b same -> disagree. RI = 1/3.
    EXPECT_NEAR(randIndex(a, b), 1.0 / 3.0, 1e-12);
}

TEST(RandIndexTest, AdjustedIsChanceCorrected)
{
    // Independent random partitions should have ARI near 0 on average;
    // here just verify ARI <= RI and ARI in [-1, 1] over random pairs.
    hiermeans::rng::Engine engine(99);
    for (int trial = 0; trial < 30; ++trial) {
        const std::size_t n = 4 + engine.below(12);
        std::vector<std::size_t> la(n), lb(n);
        for (std::size_t i = 0; i < n; ++i) {
            la[i] = engine.below(3);
            lb[i] = engine.below(3);
        }
        const Partition a = Partition::fromLabels(la);
        const Partition b = Partition::fromLabels(lb);
        const double ari = adjustedRandIndex(a, b);
        EXPECT_GE(ari, -1.0 - 1e-9);
        EXPECT_LE(ari, 1.0 + 1e-9);
    }
}

TEST(RandIndexTest, SizeMismatchThrows)
{
    EXPECT_THROW(randIndex(Partition::single(3), Partition::single(4)),
                 InvalidArgument);
    EXPECT_THROW(
        adjustedRandIndex(Partition::single(3), Partition::single(4)),
        InvalidArgument);
}

} // namespace
