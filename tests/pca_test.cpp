/**
 * @file
 * Tests for PCA.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "src/linalg/pca.h"
#include "src/util/error.h"
#include "src/util/rng.h"

namespace {

using hiermeans::InvalidArgument;
using hiermeans::linalg::Matrix;
using hiermeans::linalg::Pca;
using hiermeans::linalg::Vector;

/** Points on the line y = 2x plus tiny jitter along the normal. */
Matrix
linePoints()
{
    hiermeans::rng::Engine engine(3);
    std::vector<Vector> rows;
    for (int i = 0; i < 40; ++i) {
        const double t = engine.uniform(-5.0, 5.0);
        const double jitter = engine.normal(0.0, 0.01);
        // Direction (1,2)/sqrt5; normal (-2,1)/sqrt5.
        rows.push_back({t * 1.0 / std::sqrt(5.0) - 2.0 * jitter /
                            std::sqrt(5.0),
                        t * 2.0 / std::sqrt(5.0) + jitter /
                            std::sqrt(5.0)});
    }
    return Matrix::fromRows(rows);
}

TEST(PcaTest, FirstComponentAlignsWithDominantDirection)
{
    const Pca pca = Pca::fit(linePoints());
    // First component should be (1,2)/sqrt5 up to sign.
    const double c0 = pca.components()(0, 0);
    const double c1 = pca.components()(1, 0);
    EXPECT_NEAR(std::abs(c1 / c0), 2.0, 0.02);
    EXPECT_GT(pca.explainedVarianceRatio(0), 0.99);
}

TEST(PcaTest, ExplainedVarianceSumsToOne)
{
    const Pca pca = Pca::fit(linePoints());
    EXPECT_NEAR(pca.cumulativeExplainedVariance(pca.dimension()), 1.0,
                1e-9);
    EXPECT_LE(pca.explainedVarianceRatio(1),
              pca.explainedVarianceRatio(0));
}

TEST(PcaTest, FullProjectionReconstructsExactly)
{
    const Matrix data = linePoints();
    const Pca pca = Pca::fit(data);
    for (std::size_t r = 0; r < 5; ++r) {
        const Vector x = data.row(r);
        const Vector z = pca.project(x, pca.dimension());
        const Vector back = pca.reconstruct(z);
        for (std::size_t i = 0; i < x.size(); ++i)
            EXPECT_NEAR(back[i], x[i], 1e-9);
    }
}

TEST(PcaTest, TruncatedReconstructionErrorBounded)
{
    const Matrix data = linePoints();
    const Pca pca = Pca::fit(data);
    // 1-component reconstruction of near-1-D data is near-exact.
    double worst = 0.0;
    for (std::size_t r = 0; r < data.rows(); ++r) {
        const Vector x = data.row(r);
        const Vector back = pca.reconstruct(pca.project(x, 1));
        double err = 0.0;
        for (std::size_t i = 0; i < x.size(); ++i)
            err += (back[i] - x[i]) * (back[i] - x[i]);
        worst = std::max(worst, std::sqrt(err));
    }
    EXPECT_LT(worst, 0.05);
}

TEST(PcaTest, ProjectAllMatchesRowWise)
{
    const Matrix data = linePoints();
    const Pca pca = Pca::fit(data);
    const Matrix all = pca.projectAll(data, 2);
    for (std::size_t r = 0; r < 3; ++r) {
        const Vector single = pca.project(data.row(r), 2);
        EXPECT_NEAR(all(r, 0), single[0], 1e-12);
        EXPECT_NEAR(all(r, 1), single[1], 1e-12);
    }
}

TEST(PcaTest, Validation)
{
    EXPECT_THROW(Pca::fit(Matrix(1, 3)), InvalidArgument);
    const Pca pca = Pca::fit(linePoints());
    EXPECT_THROW(pca.project({1.0, 2.0, 3.0}, 1), InvalidArgument);
    EXPECT_THROW(pca.project({1.0, 2.0}, 0), InvalidArgument);
    EXPECT_THROW(pca.project({1.0, 2.0}, 3), InvalidArgument);
    EXPECT_THROW(pca.explainedVarianceRatio(5), InvalidArgument);
}

TEST(PcaTest, MeanIsRemoved)
{
    const Matrix data =
        Matrix::fromRows({{10.0, 20.0}, {12.0, 24.0}, {14.0, 28.0}});
    const Pca pca = Pca::fit(data);
    EXPECT_NEAR(pca.mean()[0], 12.0, 1e-12);
    EXPECT_NEAR(pca.mean()[1], 24.0, 1e-12);
    // Projection of the mean itself is the zero vector.
    const Vector z = pca.project({12.0, 24.0}, 2);
    EXPECT_NEAR(z[0], 0.0, 1e-9);
    EXPECT_NEAR(z[1], 0.0, 1e-9);
}

} // namespace
