/**
 * @file
 * Property sweeps over the full pipeline: planted cluster structures
 * of varying shape must be recovered, and structural invariants must
 * hold for every seed.
 */

#include <gtest/gtest.h>

#include <tuple>

#include "src/core/pipeline.h"
#include "src/core/recommendation.h"
#include "src/scoring/partition.h"
#include "src/util/rng.h"

namespace {

using namespace hiermeans::core;
using hiermeans::linalg::Matrix;
using hiermeans::linalg::Vector;
using hiermeans::scoring::adjustedRandIndex;
using hiermeans::scoring::Partition;
using hiermeans::stats::MeanKind;

struct Planted
{
    CharacteristicVectors vectors;
    Partition truth = Partition::single(1);
};

/** Plant @p groups well-separated clusters in @p dims dimensions. */
Planted
plant(std::uint64_t seed, std::size_t groups, std::size_t per_group,
      std::size_t dims)
{
    hiermeans::rng::Engine engine(seed);
    std::vector<Vector> rows;
    std::vector<std::size_t> labels;
    std::vector<std::string> names;

    // Random well-separated centers.
    std::vector<Vector> centers;
    for (std::size_t g = 0; g < groups; ++g) {
        Vector center(dims);
        for (std::size_t d = 0; d < dims; ++d)
            center[d] = static_cast<double>(g) * 25.0 +
                        engine.uniform(-2.0, 2.0);
        centers.push_back(std::move(center));
    }
    for (std::size_t g = 0; g < groups; ++g) {
        for (std::size_t i = 0; i < per_group; ++i) {
            Vector point = centers[g];
            for (std::size_t d = 0; d < dims; ++d)
                point[d] += engine.normal(0.0, 0.3);
            rows.push_back(std::move(point));
            labels.push_back(g);
            names.push_back("g" + std::to_string(g) + "w" +
                            std::to_string(i));
        }
    }
    Planted out;
    out.vectors.workloadNames = names;
    out.vectors.features = Matrix::fromRows(rows);
    for (std::size_t d = 0; d < dims; ++d)
        out.vectors.featureNames.push_back("f" + std::to_string(d));
    out.truth = Partition::fromLabels(labels);
    return out;
}

class PipelineProperty
    : public ::testing::TestWithParam<
          std::tuple<std::uint64_t, int /*groups*/, int /*per_group*/>>
{
  protected:
    PipelineConfig
    config() const
    {
        PipelineConfig c;
        c.som.seed = std::get<0>(GetParam()) ^ 0x50;
        c.som.steps = 3000;
        c.kMin = 2;
        c.kMax = 8;
        const auto [seed, groups, per] = GetParam();
        c.autoSizeSom(static_cast<std::size_t>(groups * per));
        return c;
    }
};

TEST_P(PipelineProperty, RecoversPlantedClustersAtTrueK)
{
    const auto [seed, groups, per] = GetParam();
    const Planted planted =
        plant(seed, static_cast<std::size_t>(groups),
              static_cast<std::size_t>(per), 4);
    const ClusterAnalysis analysis =
        analyzeClusters(planted.vectors, config());
    const Partition &cut = analysis.dendrogram.cutAtCount(
        static_cast<std::size_t>(groups));
    EXPECT_GT(adjustedRandIndex(cut, planted.truth), 0.99)
        << "groups=" << groups << " per=" << per << " seed=" << seed;
}

TEST_P(PipelineProperty, PartitionsNestAcrossTheSweep)
{
    const auto [seed, groups, per] = GetParam();
    const Planted planted =
        plant(seed, static_cast<std::size_t>(groups),
              static_cast<std::size_t>(per), 4);
    const ClusterAnalysis analysis =
        analyzeClusters(planted.vectors, config());
    for (std::size_t i = 1; i < analysis.partitions.size(); ++i) {
        const Partition &coarse = analysis.partitions[i - 1];
        const Partition &fine = analysis.partitions[i];
        for (const auto &cluster : fine.groups()) {
            const std::size_t target = coarse.label(cluster.front());
            for (std::size_t member : cluster)
                EXPECT_EQ(coarse.label(member), target);
        }
    }
}

TEST_P(PipelineProperty, DendrogramIsMonotoneAndCompleteLinkage)
{
    const auto [seed, groups, per] = GetParam();
    const Planted planted =
        plant(seed, static_cast<std::size_t>(groups),
              static_cast<std::size_t>(per), 4);
    const ClusterAnalysis analysis =
        analyzeClusters(planted.vectors, config());
    EXPECT_TRUE(analysis.dendrogram.heightsMonotone());
    EXPECT_EQ(analysis.dendrogram.leafCount(),
              planted.vectors.features.rows());
}

TEST_P(PipelineProperty, RecommendationPrefersTrueKWithSeparatedGroups)
{
    const auto [seed, groups, per] = GetParam();
    const Planted planted =
        plant(seed, static_cast<std::size_t>(groups),
              static_cast<std::size_t>(per), 4);
    const ClusterAnalysis analysis =
        analyzeClusters(planted.vectors, config());

    // Scores with per-cluster structure so ratio dampening is
    // informative: group g scores ~ (g+1) on A and ~1 on B.
    std::vector<double> a, b;
    hiermeans::rng::Engine engine(seed ^ 0x77);
    for (std::size_t i = 0; i < planted.truth.size(); ++i) {
        a.push_back(static_cast<double>(planted.truth.label(i) + 1) *
                    engine.uniform(0.95, 1.05));
        b.push_back(engine.uniform(0.95, 1.05));
    }
    const auto report = scoreAgainstClusters(
        analysis, MeanKind::Geometric, a, b);
    const auto rec = recommendClusterCount(analysis, report);
    // Silhouette (computed on the SOM grid coordinates) identifies the
    // planted count for >= 3 groups. With exactly 2 planted groups the
    // SOM stretches each blob across half the map, creating genuine
    // sub-structure in grid space, so finer k can legitimately win —
    // for that case only range sanity is required.
    if (groups >= 3) {
        EXPECT_EQ(rec.fromSilhouette, static_cast<std::size_t>(groups));
    }
    EXPECT_GE(rec.recommended, 2u);
    EXPECT_LE(rec.recommended, 8u);
    // Either way, the cut at the silhouette-preferred k must refine
    // the planted structure (never mix members of different groups).
    const Partition &cut =
        analysis.dendrogram.cutAtCount(rec.fromSilhouette);
    for (const auto &cluster : cut.groups()) {
        const std::size_t truth_label =
            planted.truth.label(cluster.front());
        for (std::size_t member : cluster)
            EXPECT_EQ(planted.truth.label(member), truth_label);
    }
}

INSTANTIATE_TEST_SUITE_P(
    PlantedShapes, PipelineProperty,
    ::testing::Combine(::testing::Values(1u, 11u, 101u),
                       ::testing::Values(2, 3, 4),
                       ::testing::Values(3, 5)));

} // namespace
