/**
 * @file
 * Tests for the end-to-end analysis pipeline.
 */

#include <gtest/gtest.h>

#include "src/core/pipeline.h"
#include "src/util/error.h"
#include "src/util/rng.h"

namespace {

using namespace hiermeans::core;
using hiermeans::InvalidArgument;
using hiermeans::linalg::Matrix;
using hiermeans::linalg::Vector;
using hiermeans::stats::MeanKind;

/** Synthetic characteristic vectors with three obvious groups. */
CharacteristicVectors
groupedVectors()
{
    hiermeans::rng::Engine engine(31);
    std::vector<Vector> rows;
    std::vector<std::string> names;
    const double centers[3] = {0.0, 15.0, 30.0};
    for (int g = 0; g < 3; ++g) {
        for (int i = 0; i < 4; ++i) {
            rows.push_back({centers[g] + engine.normal(0.0, 0.2),
                            centers[g] + engine.normal(0.0, 0.2),
                            engine.normal(0.0, 0.2)});
            names.push_back("g" + std::to_string(g) + "w" +
                            std::to_string(i));
        }
    }
    CharacteristicVectors cv;
    cv.workloadNames = names;
    cv.features = Matrix::fromRows(rows);
    for (std::size_t c = 0; c < 3; ++c)
        cv.featureNames.push_back("f" + std::to_string(c));
    return cv;
}

PipelineConfig
fastConfig()
{
    PipelineConfig config;
    config.som.rows = 7;
    config.som.cols = 7;
    config.som.steps = 2500;
    config.kMin = 2;
    config.kMax = 6;
    return config;
}

TEST(PipelineTest, ProducesConsistentArtifacts)
{
    const CharacteristicVectors cv = groupedVectors();
    const ClusterAnalysis analysis = analyzeClusters(cv, fastConfig());
    EXPECT_EQ(analysis.bmus.size(), 12u);
    EXPECT_EQ(analysis.gridPositions.rows(), 12u);
    EXPECT_EQ(analysis.gridPositions.cols(), 2u);
    EXPECT_EQ(analysis.dendrogram.leafCount(), 12u);
    ASSERT_EQ(analysis.partitions.size(), 5u);
    for (std::size_t i = 0; i < analysis.partitions.size(); ++i)
        EXPECT_EQ(analysis.partitions[i].clusterCount(), i + 2);
}

TEST(PipelineTest, ThreeGroupsRecoveredAtKEqualsThree)
{
    const CharacteristicVectors cv = groupedVectors();
    const ClusterAnalysis analysis = analyzeClusters(cv, fastConfig());
    const auto &p3 = analysis.partitions[1]; // k = 3.
    ASSERT_EQ(p3.clusterCount(), 3u);
    for (int g = 0; g < 3; ++g) {
        const std::size_t base = p3.label(static_cast<std::size_t>(g * 4));
        for (int i = 1; i < 4; ++i)
            EXPECT_EQ(p3.label(static_cast<std::size_t>(g * 4 + i)), base)
                << "group " << g;
    }
}

TEST(PipelineTest, KMaxClampedToWorkloadCount)
{
    CharacteristicVectors cv = groupedVectors();
    PipelineConfig config = fastConfig();
    config.kMax = 100;
    const ClusterAnalysis analysis = analyzeClusters(cv, config);
    EXPECT_EQ(analysis.partitions.back().clusterCount(), 12u);
}

TEST(PipelineTest, ScoreAgainstClustersMatchesReport)
{
    const CharacteristicVectors cv = groupedVectors();
    const ClusterAnalysis analysis = analyzeClusters(cv, fastConfig());
    std::vector<double> a(12), b(12);
    for (std::size_t i = 0; i < 12; ++i) {
        a[i] = 1.0 + static_cast<double>(i);
        b[i] = 2.0 + static_cast<double>(i);
    }
    const auto report = scoreAgainstClusters(
        analysis, MeanKind::Geometric, a, b);
    EXPECT_EQ(report.rows.size(), analysis.partitions.size());
    EXPECT_GT(report.plainA, 0.0);
}

TEST(PipelineTest, RendersIncludeNames)
{
    const CharacteristicVectors cv = groupedVectors();
    const ClusterAnalysis analysis = analyzeClusters(cv, fastConfig());
    const std::string map = analysis.renderMap("Map Title");
    const std::string tree = analysis.renderDendrogram("Tree Title");
    EXPECT_NE(map.find("Map Title"), std::string::npos);
    EXPECT_NE(map.find("g0w0"), std::string::npos);
    EXPECT_NE(tree.find("Tree Title"), std::string::npos);
    EXPECT_NE(tree.find("g2w3"), std::string::npos);
}

TEST(PipelineTest, Validation)
{
    CharacteristicVectors cv = groupedVectors();
    PipelineConfig config = fastConfig();
    config.kMin = 5;
    config.kMax = 2;
    EXPECT_THROW(analyzeClusters(cv, config), InvalidArgument);

    CharacteristicVectors single;
    single.workloadNames = {"only"};
    single.features = Matrix::fromRows({{1.0, 2.0}});
    EXPECT_THROW(analyzeClusters(single, fastConfig()),
                 InvalidArgument);
}

TEST(PipelineTest, DeterministicForFixedSeed)
{
    const CharacteristicVectors cv = groupedVectors();
    const ClusterAnalysis a = analyzeClusters(cv, fastConfig());
    const ClusterAnalysis b = analyzeClusters(cv, fastConfig());
    EXPECT_EQ(a.bmus, b.bmus);
    for (std::size_t i = 0; i < a.partitions.size(); ++i)
        EXPECT_EQ(a.partitions[i], b.partitions[i]);
}

} // namespace
