/**
 * @file
 * Unit tests for the Prometheus text exposition writer and the
 * lexical lint that `hmctl --check` and smoke_server.sh run against
 * the live `GET /metrics` body. The key property is the round trip:
 * every document PrometheusWriter emits must pass lintExposition.
 */

#include <gtest/gtest.h>

#include <limits>
#include <string>
#include <vector>

#include "src/obs/prometheus.h"

namespace hiermeans {
namespace obs {
namespace {

TEST(PrometheusWriterTest, CounterEmitsHeaderThenSample)
{
    PrometheusWriter writer;
    writer.header("hiermeans_server_requests_total",
                  "Requests accepted.", "counter");
    writer.counter("hiermeans_server_requests_total", {}, 42);

    EXPECT_EQ(writer.text(),
              "# HELP hiermeans_server_requests_total "
              "Requests accepted.\n"
              "# TYPE hiermeans_server_requests_total counter\n"
              "hiermeans_server_requests_total 42\n");
}

TEST(PrometheusWriterTest, LabelsRenderInDeclarationOrder)
{
    PrometheusWriter writer;
    writer.header("hiermeans_server_responses_total", "By class.",
                  "counter");
    writer.counter("hiermeans_server_responses_total",
                   {{"class", "2xx"}, {"endpoint", "score"}}, 7);
    EXPECT_NE(writer.text().find(
                  "hiermeans_server_responses_total"
                  "{class=\"2xx\",endpoint=\"score\"} 7\n"),
              std::string::npos);
}

TEST(PrometheusWriterTest, GaugeFormatsSpecialValues)
{
    PrometheusWriter writer;
    writer.header("hiermeans_test_gauge", "g", "gauge");
    writer.gauge("hiermeans_test_gauge", {{"k", "inf"}},
                 std::numeric_limits<double>::infinity());
    writer.gauge("hiermeans_test_gauge", {{"k", "frac"}}, 0.25);
    EXPECT_NE(writer.text().find("{k=\"inf\"} +Inf\n"),
              std::string::npos);
    EXPECT_NE(writer.text().find("{k=\"frac\"} 0.25\n"),
              std::string::npos);
    EXPECT_TRUE(lintExposition(writer.text()).empty());
}

TEST(PrometheusWriterTest, HistogramEmitsCumulativeBucketsSumCount)
{
    PrometheusWriter writer;
    writer.header("hiermeans_server_request_duration_ms", "Latency.",
                  "histogram");
    writer.histogram("hiermeans_server_request_duration_ms",
                     {{"endpoint", "score"}}, {1.0, 5.0}, {3, 9},
                     123.5, 10);

    const std::string &text = writer.text();
    EXPECT_NE(text.find("_bucket{endpoint=\"score\",le=\"1\"} 3\n"),
              std::string::npos);
    EXPECT_NE(text.find("_bucket{endpoint=\"score\",le=\"5\"} 9\n"),
              std::string::npos);
    EXPECT_NE(
        text.find("_bucket{endpoint=\"score\",le=\"+Inf\"} 10\n"),
        std::string::npos);
    EXPECT_NE(
        text.find("_sum{endpoint=\"score\"} 123.5\n"),
        std::string::npos);
    EXPECT_NE(text.find("_count{endpoint=\"score\"} 10\n"),
              std::string::npos);
    EXPECT_TRUE(lintExposition(text).empty());
}

TEST(PrometheusWriterTest, LabelValuesAreEscaped)
{
    EXPECT_EQ(escapeLabelValue("plain"), "plain");
    EXPECT_EQ(escapeLabelValue("a\"b"), "a\\\"b");
    EXPECT_EQ(escapeLabelValue("a\\b"), "a\\\\b");
    EXPECT_EQ(escapeLabelValue("a\nb"), "a\\nb");

    PrometheusWriter writer;
    writer.header("hiermeans_test_total", "t", "counter");
    writer.counter("hiermeans_test_total", {{"path", "a\"b\\c\nd"}},
                   1);
    EXPECT_TRUE(lintExposition(writer.text()).empty());
}

TEST(PrometheusWriterTest, MetricNameValidation)
{
    EXPECT_TRUE(validMetricName("hiermeans_engine_cache_hits_total"));
    EXPECT_TRUE(validMetricName("_leading_underscore"));
    EXPECT_TRUE(validMetricName("ns:subsystem:name"));
    EXPECT_FALSE(validMetricName(""));
    EXPECT_FALSE(validMetricName("9starts_with_digit"));
    EXPECT_FALSE(validMetricName("has-dash"));
    EXPECT_FALSE(validMetricName("has space"));
}

TEST(LintExpositionTest, RoundTripOfAMixedDocumentIsClean)
{
    PrometheusWriter writer;
    writer.header("hiermeans_build_info", "Build metadata.", "gauge");
    writer.gauge("hiermeans_build_info", {{"version", "1.3.0"}}, 1);
    writer.header("hiermeans_server_requests_total", "Requests.",
                  "counter");
    writer.counter("hiermeans_server_requests_total", {}, 0);
    writer.header("hiermeans_engine_pipeline_duration_ms",
                  "Pipeline wall time.", "histogram");
    writer.histogram("hiermeans_engine_pipeline_duration_ms", {},
                     {0.5, 1.0, 2.5}, {0, 1, 2}, 4.25, 3);

    const std::vector<std::string> problems =
        lintExposition(writer.text());
    EXPECT_TRUE(problems.empty())
        << "first problem: " << problems.front();
}

TEST(LintExpositionTest, EmptyDocumentIsRejected)
{
    EXPECT_FALSE(lintExposition("").empty());
}

TEST(LintExpositionTest, MissingTrailingNewlineIsRejected)
{
    const std::string text = "# TYPE m counter\nm 1";
    EXPECT_FALSE(lintExposition(text).empty());
}

TEST(LintExpositionTest, SampleWithoutTypeIsRejected)
{
    EXPECT_FALSE(lintExposition("orphan_metric 1\n").empty());
}

TEST(LintExpositionTest, UnknownTypeIsRejected)
{
    EXPECT_FALSE(
        lintExposition("# TYPE m thermometer\nm 1\n").empty());
}

TEST(LintExpositionTest, MalformedLabelSetIsRejected)
{
    const std::string text =
        "# TYPE m counter\nm{unterminated=\"x} 1\n";
    EXPECT_FALSE(lintExposition(text).empty());
}

TEST(LintExpositionTest, NonNumericValueIsRejected)
{
    EXPECT_FALSE(
        lintExposition("# TYPE m counter\nm banana\n").empty());
}

TEST(LintExpositionTest, HistogramMissingInfBucketIsRejected)
{
    const std::string text =
        "# TYPE h histogram\n"
        "h_bucket{le=\"1\"} 2\n"
        "h_sum 3\n"
        "h_count 2\n";
    const std::vector<std::string> problems = lintExposition(text);
    ASSERT_FALSE(problems.empty());
    EXPECT_NE(problems.front().find("+Inf"), std::string::npos);
}

TEST(LintExpositionTest, HistogramMissingSumOrCountIsRejected)
{
    const std::string text =
        "# TYPE h histogram\n"
        "h_bucket{le=\"+Inf\"} 2\n";
    const std::vector<std::string> problems = lintExposition(text);
    // Both _sum and _count are missing.
    EXPECT_EQ(problems.size(), 2u);
}

TEST(LintExpositionTest, BucketInNonHistogramFamilyIsRejected)
{
    const std::string text =
        "# TYPE g_bucket counter\n"
        "# TYPE g gauge\n"
        "g_bucket{le=\"1\"} 2\n";
    EXPECT_FALSE(lintExposition(text).empty());
}

TEST(LintExpositionTest, TimestampsAndBlankLinesAreLegal)
{
    const std::string text =
        "# free-form comment\n"
        "# TYPE m counter\n"
        "\n"
        "m{a=\"b\"} 1 1712345678901\n";
    EXPECT_TRUE(lintExposition(text).empty());
}

} // namespace
} // namespace obs
} // namespace hiermeans
