/**
 * @file
 * Tests for the cluster-count recommendation.
 */

#include <gtest/gtest.h>

#include "src/core/recommendation.h"
#include "src/util/error.h"
#include "src/util/rng.h"

namespace {

using namespace hiermeans::core;
using hiermeans::linalg::Matrix;
using hiermeans::linalg::Vector;
using hiermeans::stats::MeanKind;

/** Vectors with two very tight groups far apart. */
CharacteristicVectors
twoGroupVectors()
{
    hiermeans::rng::Engine engine(41);
    std::vector<Vector> rows;
    std::vector<std::string> names;
    for (int g = 0; g < 2; ++g) {
        for (int i = 0; i < 5; ++i) {
            rows.push_back({g * 30.0 + engine.normal(0.0, 0.1),
                            g * 30.0 + engine.normal(0.0, 0.1)});
            names.push_back("g" + std::to_string(g) + "w" +
                            std::to_string(i));
        }
    }
    CharacteristicVectors cv;
    cv.workloadNames = names;
    cv.features = Matrix::fromRows(rows);
    cv.featureNames = {"f0", "f1"};
    return cv;
}

TEST(RecommendationTest, TwoObviousGroupsRecommendK2)
{
    PipelineConfig config;
    config.som.rows = 6;
    config.som.cols = 6;
    config.som.steps = 1500;
    config.kMin = 2;
    config.kMax = 6;
    const ClusterAnalysis analysis =
        analyzeClusters(twoGroupVectors(), config);

    std::vector<double> a = {1.0, 1.1, 1.05, 0.95, 1.0,
                             3.0, 3.1, 2.9, 3.05, 3.0};
    std::vector<double> b = {1.0, 1.0, 1.0, 1.0, 1.0,
                             2.0, 2.0, 2.0, 2.0, 2.0};
    const auto report = scoreAgainstClusters(
        analysis, MeanKind::Geometric, a, b);
    const auto rec = recommendClusterCount(analysis, report);
    EXPECT_EQ(rec.fromDendrogramGap, 2u);
    EXPECT_EQ(rec.fromSilhouette, 2u);
    EXPECT_EQ(rec.recommended, 2u);
    EXPECT_NE(rec.explain().find("recommended k = 2"),
              std::string::npos);
}

TEST(RecommendationTest, RecommendationWithinSweptRange)
{
    PipelineConfig config;
    config.som.rows = 5;
    config.som.cols = 5;
    config.som.steps = 800;
    config.kMin = 2;
    config.kMax = 5;
    const ClusterAnalysis analysis =
        analyzeClusters(twoGroupVectors(), config);
    std::vector<double> scores(10, 1.0);
    for (std::size_t i = 0; i < 10; ++i)
        scores[i] = 1.0 + 0.1 * static_cast<double>(i);
    const auto report = scoreAgainstClusters(
        analysis, MeanKind::Geometric, scores, scores);
    const auto rec = recommendClusterCount(analysis, report);
    EXPECT_GE(rec.recommended, 2u);
    EXPECT_LE(rec.recommended, 5u);
    EXPECT_GE(rec.fromRatioDampening, 2u);
    EXPECT_LE(rec.fromRatioDampening, 5u);
}

TEST(RecommendationTest, MismatchedReportThrows)
{
    PipelineConfig config;
    config.som.steps = 500;
    config.som.rows = 4;
    config.som.cols = 4;
    const ClusterAnalysis analysis =
        analyzeClusters(twoGroupVectors(), config);
    hiermeans::scoring::ScoreReport report; // empty.
    EXPECT_THROW(recommendClusterCount(analysis, report),
                 hiermeans::InvalidArgument);
}

} // namespace
