/**
 * @file
 * Tests for the redundancy analysis.
 */

#include <gtest/gtest.h>

#include "src/core/redundancy.h"
#include "src/util/error.h"
#include "src/util/rng.h"

namespace {

using namespace hiermeans::core;
using hiermeans::linalg::Matrix;
using hiermeans::linalg::Vector;

/** Nine workloads: indices 0-4 identical blob, 5-8 spread out. */
CharacteristicVectors
blobAndSpread()
{
    hiermeans::rng::Engine engine(51);
    std::vector<Vector> rows;
    std::vector<std::string> names;
    for (int i = 0; i < 5; ++i) {
        rows.push_back({engine.normal(0.0, 0.05),
                        engine.normal(0.0, 0.05)});
        names.push_back("blob" + std::to_string(i));
    }
    const double spread[4][2] = {
        {20.0, 0.0}, {0.0, 20.0}, {20.0, 20.0}, {10.0, 30.0}};
    for (int i = 0; i < 4; ++i) {
        rows.push_back({spread[i][0], spread[i][1]});
        names.push_back("far" + std::to_string(i));
    }
    CharacteristicVectors cv;
    cv.workloadNames = names;
    cv.features = Matrix::fromRows(rows);
    cv.featureNames = {"x", "y"};
    return cv;
}

ClusterAnalysis
analyze()
{
    PipelineConfig config;
    config.som.rows = 7;
    config.som.cols = 7;
    config.som.steps = 2000;
    config.kMax = 8;
    return analyzeClusters(blobAndSpread(), config);
}

TEST(RedundancyTest, BlobIsCoagulatedSpreadIsNot)
{
    const ClusterAnalysis analysis = analyze();
    const RedundancyReport report = analyzeRedundancy(
        analysis, {{"blob", {0, 1, 2, 3, 4}}, {"spread", {5, 6, 7, 8}}});
    ASSERT_EQ(report.groups.size(), 2u);

    const GroupRedundancy &blob = report.groups[0];
    const GroupRedundancy &spread = report.groups[1];
    EXPECT_LT(blob.coagulation, 0.3);
    EXPECT_TRUE(blob.coagulated());
    EXPECT_TRUE(blob.appearsAsExclusiveCluster);
    EXPECT_GT(spread.coagulation, 0.5);
    EXPECT_FALSE(spread.coagulated());
    EXPECT_LT(blob.connectedAtDistance, spread.connectedAtDistance);
    EXPECT_GE(blob.maxSharedCell, 2u);
}

TEST(RedundancyTest, ConnectedFractionInUnitRange)
{
    const ClusterAnalysis analysis = analyze();
    const RedundancyReport report = analyzeRedundancy(
        analysis, {{"blob", {0, 1, 2, 3, 4}}});
    EXPECT_GE(report.groups[0].connectedAtFraction, 0.0);
    EXPECT_LE(report.groups[0].connectedAtFraction, 1.0);
}

TEST(RedundancyTest, RenderListsGroups)
{
    const ClusterAnalysis analysis = analyze();
    const RedundancyReport report = analyzeRedundancy(
        analysis, {{"blob", {0, 1, 2, 3, 4}}, {"spread", {5, 6, 7, 8}}});
    const std::string out = report.render();
    EXPECT_NE(out.find("blob"), std::string::npos);
    EXPECT_NE(out.find("spread"), std::string::npos);
    EXPECT_NE(out.find("coagulation"), std::string::npos);
}

TEST(RedundancyTest, Validation)
{
    const ClusterAnalysis analysis = analyze();
    EXPECT_THROW(analyzeRedundancy(analysis, {{"tiny", {0}}}),
                 hiermeans::InvalidArgument);
    EXPECT_THROW(analyzeRedundancy(analysis, {{"oob", {0, 99}}}),
                 hiermeans::InvalidArgument);
}

TEST(RedundancyTest, PaperOriginGroupsCoverSuite)
{
    const auto groups = paperOriginGroups();
    ASSERT_EQ(groups.size(), 3u);
    std::size_t total = 0;
    for (const auto &g : groups)
        total += g.members.size();
    EXPECT_EQ(total, 13u);
    EXPECT_EQ(groups[1].name, "SciMark2");
    EXPECT_EQ(groups[1].members.size(), 5u);
}

} // namespace
