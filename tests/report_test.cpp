/**
 * @file
 * Tests for the markdown report generator.
 */

#include <gtest/gtest.h>

#include "src/core/report.h"

namespace {

using namespace hiermeans::core;

const CaseStudyResult &
sharedResult()
{
    static const CaseStudyResult result = runCaseStudy(CaseStudyConfig{});
    return result;
}

TEST(ReportTest, ContainsAllSections)
{
    const std::string md = renderMarkdownReport(sharedResult());
    EXPECT_NE(md.find("# Hierarchical Means Case Study"),
              std::string::npos);
    EXPECT_NE(md.find("## Per-workload speedups"), std::string::npos);
    EXPECT_NE(md.find("## SAR counters, machine A"), std::string::npos);
    EXPECT_NE(md.find("## SAR counters, machine B"), std::string::npos);
    EXPECT_NE(md.find("## Java method utilization"), std::string::npos);
    EXPECT_NE(md.find("## Conclusion"), std::string::npos);
    EXPECT_NE(md.find("**Recommendation.**"), std::string::npos);
}

TEST(ReportTest, MentionsEveryWorkload)
{
    const std::string md = renderMarkdownReport(sharedResult());
    for (const auto &name : hiermeans::workload::paperWorkloadNames())
        EXPECT_NE(md.find(name), std::string::npos) << name;
}

TEST(ReportTest, OptionsSuppressSections)
{
    ReportOptions options;
    options.includeMaps = false;
    options.includeDendrograms = false;
    options.includeRedundancy = false;
    options.title = "Custom Title";
    const std::string md =
        renderMarkdownReport(sharedResult(), options);
    EXPECT_NE(md.find("# Custom Title"), std::string::npos);
    EXPECT_EQ(md.find("Workload distribution (SOM)"),
              std::string::npos);
    EXPECT_EQ(md.find("Cluster hierarchy"), std::string::npos);
    EXPECT_EQ(md.find("Redundancy by origin suite"),
              std::string::npos);
    // Scores always present.
    EXPECT_NE(md.find("Hierarchical-mean scores"), std::string::npos);
}

TEST(ReportTest, FlagsSciMarkCoagulation)
{
    const std::string md = renderMarkdownReport(sharedResult());
    EXPECT_NE(md.find("SciMark2 coagulates into a dense cluster"),
              std::string::npos);
}

} // namespace
