/**
 * Unit tests for the server resilience primitives: CircuitBreaker
 * state machine, HealthMonitor hysteresis, and the Watchdog deadline
 * scanner.
 */

#include <chrono>
#include <gtest/gtest.h>
#include <thread>

#include "src/server/resilience.h"
#include "src/server/watchdog.h"
#include "src/util/error.h"

namespace {

using namespace hiermeans;
using server::CircuitBreaker;
using server::HealthMonitor;
using server::HealthState;
using server::Watchdog;

void
sleepMillis(double millis)
{
    std::this_thread::sleep_for(
        std::chrono::duration<double, std::milli>(millis));
}

CircuitBreaker::Config
breakerConfig(std::size_t threshold, double open_millis)
{
    CircuitBreaker::Config config;
    config.failureThreshold = threshold;
    config.openMillis = open_millis;
    return config;
}

TEST(CircuitBreakerTest, StaysClosedBelowThreshold)
{
    CircuitBreaker breaker(breakerConfig(3, 1000.0));
    breaker.onFailure();
    breaker.onFailure();
    EXPECT_EQ(breaker.state(), CircuitBreaker::State::Closed);
    EXPECT_TRUE(breaker.allow());
    EXPECT_EQ(breaker.opens(), 0u);
}

TEST(CircuitBreakerTest, ConsecutiveFailuresOpenTheCircuit)
{
    CircuitBreaker breaker(breakerConfig(3, 60000.0));
    for (int i = 0; i < 3; ++i)
        breaker.onFailure();
    EXPECT_EQ(breaker.state(), CircuitBreaker::State::Open);
    EXPECT_EQ(breaker.opens(), 1u);
    EXPECT_FALSE(breaker.allow());
    EXPECT_FALSE(breaker.allow());
    EXPECT_EQ(breaker.fastFailures(), 2u);
    EXPECT_GE(breaker.retryAfterSeconds(), 1L);
}

TEST(CircuitBreakerTest, SuccessResetsTheFailureStreak)
{
    CircuitBreaker breaker(breakerConfig(3, 1000.0));
    breaker.onFailure();
    breaker.onFailure();
    breaker.onSuccess();
    breaker.onFailure();
    breaker.onFailure();
    EXPECT_EQ(breaker.state(), CircuitBreaker::State::Closed)
        << "streak must restart after a success";
}

TEST(CircuitBreakerTest, HalfOpenAdmitsExactlyOneProbe)
{
    CircuitBreaker breaker(breakerConfig(1, 30.0));
    breaker.onFailure();
    EXPECT_EQ(breaker.state(), CircuitBreaker::State::Open);
    sleepMillis(60.0);
    EXPECT_TRUE(breaker.allow()) << "window lapsed: probe admitted";
    EXPECT_EQ(breaker.state(), CircuitBreaker::State::HalfOpen);
    EXPECT_FALSE(breaker.allow()) << "only one probe at a time";
    breaker.onSuccess();
    EXPECT_EQ(breaker.state(), CircuitBreaker::State::Closed);
    EXPECT_TRUE(breaker.allow());
}

TEST(CircuitBreakerTest, FailedProbeReopensTheCircuit)
{
    CircuitBreaker breaker(breakerConfig(1, 30.0));
    breaker.onFailure();
    sleepMillis(60.0);
    ASSERT_TRUE(breaker.allow());
    breaker.onFailure();
    EXPECT_EQ(breaker.state(), CircuitBreaker::State::Open);
    EXPECT_EQ(breaker.opens(), 2u);
    EXPECT_FALSE(breaker.allow()) << "fresh open window";
}

TEST(CircuitBreakerTest, AbandonedProbeFreesTheSlot)
{
    CircuitBreaker breaker(breakerConfig(1, 30.0));
    breaker.onFailure();
    sleepMillis(60.0);
    ASSERT_TRUE(breaker.allow());
    breaker.onAbandoned(); // probe shed by the gate: outcome unknown.
    EXPECT_EQ(breaker.state(), CircuitBreaker::State::HalfOpen);
    EXPECT_TRUE(breaker.allow()) << "next request takes the probe slot";
}

TEST(CircuitBreakerTest, ZeroThresholdDisablesTheBreaker)
{
    CircuitBreaker breaker(breakerConfig(0, 1000.0));
    for (int i = 0; i < 100; ++i)
        breaker.onFailure();
    EXPECT_TRUE(breaker.allow());
    EXPECT_EQ(breaker.state(), CircuitBreaker::State::Closed);
    EXPECT_EQ(breaker.opens(), 0u);
    EXPECT_FALSE(breaker.enabled());
}

TEST(CircuitBreakerTest, RetryAfterIsZeroUnlessOpen)
{
    CircuitBreaker breaker(breakerConfig(2, 1000.0));
    EXPECT_EQ(breaker.retryAfterSeconds(), 0L);
    breaker.onFailure();
    breaker.onFailure();
    EXPECT_GE(breaker.retryAfterSeconds(), 1L);
}

HealthMonitor::Config
healthConfig()
{
    HealthMonitor::Config config;
    config.windowSize = 16;
    config.degradeRatio = 0.5;
    config.recoverRatio = 0.125;
    config.minSamples = 8;
    return config;
}

TEST(HealthMonitorTest, StartsOkAndIgnoresSparseSamples)
{
    HealthMonitor health(healthConfig());
    EXPECT_EQ(health.state(), HealthState::Ok);
    // Seven sheds — all shed, but below minSamples.
    for (int i = 0; i < 7; ++i)
        health.onShed();
    EXPECT_EQ(health.state(), HealthState::Ok)
        << "ratio untrusted below minSamples";
}

TEST(HealthMonitorTest, HighShedRatioDegrades)
{
    HealthMonitor health(healthConfig());
    for (int i = 0; i < 8; ++i) {
        health.onAdmitted();
        health.onShed();
    }
    EXPECT_EQ(health.state(), HealthState::Degraded);
}

TEST(HealthMonitorTest, RecoveryIsHysteretic)
{
    HealthMonitor health(healthConfig());
    for (int i = 0; i < 16; ++i)
        health.onShed();
    ASSERT_EQ(health.state(), HealthState::Degraded);
    // Drop the ratio to 8/16 = 0.5: above recoverRatio, still degraded.
    for (int i = 0; i < 8; ++i)
        health.onAdmitted();
    EXPECT_EQ(health.state(), HealthState::Degraded)
        << "must sink below recoverRatio before recovering";
    // Flush the window with admissions: ratio 0 <= 0.125 recovers.
    for (int i = 0; i < 16; ++i)
        health.onAdmitted();
    EXPECT_EQ(health.state(), HealthState::Ok);
}

TEST(HealthMonitorTest, StuckWorkersForceDegraded)
{
    HealthMonitor health(healthConfig());
    health.onStuckWorkers(2);
    EXPECT_EQ(health.state(), HealthState::Degraded);
    health.onStuckWorkers(0);
    EXPECT_EQ(health.state(), HealthState::Ok);
}

TEST(HealthMonitorTest, DrainingLatchesAndWins)
{
    HealthMonitor health(healthConfig());
    health.onStuckWorkers(3);
    health.setDraining();
    EXPECT_EQ(health.state(), HealthState::Draining);
    health.onStuckWorkers(0);
    for (int i = 0; i < 32; ++i)
        health.onAdmitted();
    EXPECT_EQ(health.state(), HealthState::Draining)
        << "draining is one-way";
}

TEST(HealthMonitorTest, StateNamesMatchTheHealthzContract)
{
    EXPECT_STREQ(server::healthStateName(HealthState::Ok), "ok");
    EXPECT_STREQ(server::healthStateName(HealthState::Degraded),
                 "degraded");
    EXPECT_STREQ(server::healthStateName(HealthState::Draining),
                 "draining");
}

TEST(HealthMonitorTest, InvalidConfigsAreRejected)
{
    HealthMonitor::Config config = healthConfig();
    config.windowSize = 0;
    EXPECT_THROW(HealthMonitor{config}, InvalidArgument);

    config = healthConfig();
    config.recoverRatio = config.degradeRatio;
    EXPECT_THROW(HealthMonitor{config}, InvalidArgument);
}

Watchdog::Config
watchdogConfig(double budget_millis, double grace_millis = 10.0)
{
    Watchdog::Config config;
    config.pollMillis = 5.0;
    config.defaultBudgetMillis = budget_millis;
    config.graceMillis = grace_millis;
    return config;
}

TEST(WatchdogTest, TokenExpiresPastTheDefaultBudget)
{
    Watchdog watchdog(watchdogConfig(30.0));
    Watchdog::Token token = watchdog.watch(0.0);
    EXPECT_FALSE(token.expired());
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(5);
    while (!token.expired() &&
           std::chrono::steady_clock::now() < deadline)
        sleepMillis(5.0);
    EXPECT_TRUE(token.expired());
    EXPECT_GE(watchdog.trips(), 1u);
    EXPECT_GE(watchdog.overdue(), 1u);
}

TEST(WatchdogTest, ExplicitDeadlinePlusGraceIsHonored)
{
    // Default budget is generous; the request's own 20ms deadline
    // (plus 10ms grace) is what should expire the token.
    Watchdog watchdog(watchdogConfig(60000.0));
    Watchdog::Token token = watchdog.watch(20.0);
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(5);
    while (!token.expired() &&
           std::chrono::steady_clock::now() < deadline)
        sleepMillis(5.0);
    EXPECT_TRUE(token.expired());
}

TEST(WatchdogTest, TokenReleasedInTimeNeverTrips)
{
    Watchdog watchdog(watchdogConfig(10000.0));
    {
        Watchdog::Token token = watchdog.watch(0.0);
        EXPECT_FALSE(token.expired());
    } // destructor deregisters.
    sleepMillis(30.0);
    EXPECT_EQ(watchdog.trips(), 0u);
    EXPECT_EQ(watchdog.overdue(), 0u);
}

TEST(WatchdogTest, ZeroBudgetDisablesExpiry)
{
    Watchdog watchdog(watchdogConfig(0.0));
    EXPECT_FALSE(watchdog.enabled());
    Watchdog::Token token = watchdog.watch(0.0);
    sleepMillis(60.0);
    EXPECT_FALSE(token.expired());
    EXPECT_EQ(watchdog.trips(), 0u);
}

TEST(WatchdogTest, OverdueGaugeDropsWhenTheTokenDies)
{
    Watchdog watchdog(watchdogConfig(20.0));
    {
        Watchdog::Token token = watchdog.watch(0.0);
        const auto deadline =
            std::chrono::steady_clock::now() + std::chrono::seconds(5);
        while (!token.expired() &&
               std::chrono::steady_clock::now() < deadline)
            sleepMillis(5.0);
        ASSERT_TRUE(token.expired());
        EXPECT_GE(watchdog.overdue(), 1u);
    }
    EXPECT_EQ(watchdog.overdue(), 0u);
}

TEST(WatchdogTest, MovedTokenKeepsWatching)
{
    Watchdog watchdog(watchdogConfig(20.0));
    Watchdog::Token outer;
    {
        Watchdog::Token inner = watchdog.watch(0.0);
        outer = std::move(inner);
    }
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(5);
    while (!outer.expired() &&
           std::chrono::steady_clock::now() < deadline)
        sleepMillis(5.0);
    EXPECT_TRUE(outer.expired());
}

} // namespace
