/**
 * @file
 * Tests for engine::ResultCache (LRU + byte-bound eviction, MRU
 * promotion, stats) and engine::Fingerprint (requests differing in any
 * config field, seed, data or scores must not collide; identical
 * requests must).
 */

#include <gtest/gtest.h>

#include <set>

#include "src/engine/engine.h"
#include "src/engine/fingerprint.h"
#include "src/engine/result_cache.h"
#include "src/util/error.h"

namespace hiermeans {
namespace engine {
namespace {

CachedResult
resultWithPartitionSize(std::size_t items)
{
    CachedResult result;
    scoring::ScoreReportRow row;
    row.clusterCount = 1;
    row.partition = scoring::Partition::single(items);
    row.scoreA = 1.0;
    row.scoreB = 2.0;
    row.ratio = 0.5;
    result.report.rows.push_back(std::move(row));
    result.recommendedK = 1;
    return result;
}

TEST(ResultCacheTest, MissThenHit)
{
    ResultCache cache;
    EXPECT_FALSE(cache.get(42).has_value());
    cache.put(42, resultWithPartitionSize(3));
    const auto hit = cache.get(42);
    ASSERT_TRUE(hit.has_value());
    EXPECT_EQ(hit->report.rows.size(), 1u);
    EXPECT_DOUBLE_EQ(hit->report.rows[0].ratio, 0.5);
    const auto stats = cache.stats();
    EXPECT_EQ(stats.hits, 1u);
    EXPECT_EQ(stats.misses, 1u);
    EXPECT_EQ(stats.insertions, 1u);
}

TEST(ResultCacheTest, EvictsLeastRecentlyUsedAtEntryBound)
{
    ResultCache::Config config;
    config.maxEntries = 3;
    ResultCache cache(config);
    cache.put(1, resultWithPartitionSize(2));
    cache.put(2, resultWithPartitionSize(2));
    cache.put(3, resultWithPartitionSize(2));
    cache.put(4, resultWithPartitionSize(2)); // evicts 1 (LRU).
    EXPECT_EQ(cache.size(), 3u);
    EXPECT_FALSE(cache.get(1).has_value());
    EXPECT_TRUE(cache.get(2).has_value());
    EXPECT_TRUE(cache.get(3).has_value());
    EXPECT_TRUE(cache.get(4).has_value());
    EXPECT_EQ(cache.stats().evictions, 1u);
}

TEST(ResultCacheTest, GetPromotesEntryToMostRecentlyUsed)
{
    ResultCache::Config config;
    config.maxEntries = 2;
    ResultCache cache(config);
    cache.put(1, resultWithPartitionSize(2));
    cache.put(2, resultWithPartitionSize(2));
    EXPECT_TRUE(cache.get(1).has_value()); // 1 becomes MRU.
    cache.put(3, resultWithPartitionSize(2)); // evicts 2, not 1.
    EXPECT_TRUE(cache.get(1).has_value());
    EXPECT_FALSE(cache.get(2).has_value());
    EXPECT_TRUE(cache.get(3).has_value());
}

TEST(ResultCacheTest, EnforcesByteBound)
{
    const std::size_t per_entry =
        estimateBytes(resultWithPartitionSize(1000));
    ResultCache::Config config;
    config.maxEntries = 100;
    config.maxBytes = per_entry * 2 + per_entry / 2; // fits two.
    ResultCache cache(config);
    cache.put(1, resultWithPartitionSize(1000));
    cache.put(2, resultWithPartitionSize(1000));
    EXPECT_EQ(cache.size(), 2u);
    cache.put(3, resultWithPartitionSize(1000));
    EXPECT_EQ(cache.size(), 2u); // byte bound evicted the LRU.
    EXPECT_FALSE(cache.get(1).has_value());
    EXPECT_LE(cache.byteEstimate(), config.maxBytes);
}

TEST(ResultCacheTest, OversizedResultIsNeverResident)
{
    ResultCache::Config config;
    config.maxEntries = 4;
    config.maxBytes = 512; // smaller than any real result.
    ResultCache cache(config);
    cache.put(1, resultWithPartitionSize(100000));
    EXPECT_EQ(cache.size(), 0u);
    EXPECT_FALSE(cache.get(1).has_value());
}

TEST(ResultCacheTest, OverwriteReplacesAndKeepsBoundsConsistent)
{
    ResultCache cache;
    cache.put(7, resultWithPartitionSize(10));
    const std::size_t small = cache.byteEstimate();
    cache.put(7, resultWithPartitionSize(1000));
    EXPECT_EQ(cache.size(), 1u);
    EXPECT_GT(cache.byteEstimate(), small);
    cache.clear();
    EXPECT_EQ(cache.size(), 0u);
    EXPECT_EQ(cache.byteEstimate(), 0u);
}

// --- fingerprints -------------------------------------------------------

ScoreRequest
baseRequest()
{
    ScoreRequest request;
    request.features = linalg::Matrix(4, 3);
    double value = 0.1;
    for (std::size_t r = 0; r < 4; ++r) {
        for (std::size_t c = 0; c < 3; ++c) {
            request.features(r, c) = value;
            value += 0.7;
        }
    }
    request.workloads = {"w0", "w1", "w2", "w3"};
    request.featureNames = {"f0", "f1", "f2"};
    request.scoresA = {1.0, 2.0, 3.0, 4.0};
    request.scoresB = {4.0, 3.0, 2.0, 1.0};
    request.config.kMin = 2;
    request.config.kMax = 4;
    request.seed = 0x5eed;
    return request;
}

TEST(FingerprintTest, IdenticalRequestsCollide)
{
    EXPECT_EQ(fingerprintRequest(baseRequest()),
              fingerprintRequest(baseRequest()));
}

TEST(FingerprintTest, PresentationFieldsDoNotAffectTheFingerprint)
{
    ScoreRequest relabeled = baseRequest();
    relabeled.id = "different-id";
    relabeled.labelA = "left";
    relabeled.labelB = "right";
    EXPECT_EQ(fingerprintRequest(baseRequest()),
              fingerprintRequest(relabeled));
}

TEST(FingerprintTest, EveryConfigFieldIsDiscriminated)
{
    // Each mutation must produce a distinct fingerprint — a collision
    // here would serve one configuration's report for another's.
    std::vector<ScoreRequest> variants;
    variants.push_back(baseRequest());

    ScoreRequest v = baseRequest();
    v.seed = 0xbeef;
    variants.push_back(v);

    v = baseRequest();
    v.config.kMin = 3;
    variants.push_back(v);

    v = baseRequest();
    v.config.kMax = 3;
    variants.push_back(v);

    v = baseRequest();
    v.config.linkage = cluster::Linkage::Ward;
    variants.push_back(v);

    v = baseRequest();
    v.config.som.rows += 1;
    variants.push_back(v);

    v = baseRequest();
    v.config.som.steps += 1;
    variants.push_back(v);

    v = baseRequest();
    v.config.som.alphaStart += 0.01;
    variants.push_back(v);

    v = baseRequest();
    v.kind = stats::MeanKind::Arithmetic;
    variants.push_back(v);

    v = baseRequest();
    v.scoresA[0] += 1e-9;
    variants.push_back(v);

    v = baseRequest();
    v.features(0, 0) += 1e-9;
    variants.push_back(v);

    v = baseRequest();
    v.workloads[0] = "renamed";
    variants.push_back(v);

    std::set<std::uint64_t> digests;
    for (const ScoreRequest &variant : variants)
        digests.insert(fingerprintRequest(variant));
    EXPECT_EQ(digests.size(), variants.size());
}

TEST(FingerprintTest, SeedFieldShadowsConfigSomSeed)
{
    // The request-level seed is the effective one: two requests whose
    // configs disagree but whose request seeds agree must collide.
    ScoreRequest a = baseRequest();
    a.config.som.seed = 111;
    a.seed = 42;
    ScoreRequest b = baseRequest();
    b.config.som.seed = 222;
    b.seed = 42;
    EXPECT_EQ(fingerprintRequest(a), fingerprintRequest(b));
}

TEST(FingerprintTest, LengthPrefixPreventsConcatenationCollisions)
{
    Fingerprint a;
    a.mix(std::string("ab"));
    a.mix(std::string("c"));
    Fingerprint b;
    b.mix(std::string("a"));
    b.mix(std::string("bc"));
    EXPECT_NE(a.digest(), b.digest());
}

TEST(FingerprintTest, NormalizesSignedZero)
{
    Fingerprint a;
    a.mix(0.0);
    Fingerprint b;
    b.mix(-0.0);
    EXPECT_EQ(a.digest(), b.digest());
}

} // namespace
} // namespace engine
} // namespace hiermeans
