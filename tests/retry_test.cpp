/**
 * Tests for the client retry schedule: determinism per seed, delay
 * bounds, Retry-After floors, attempt and sleep-budget exhaustion,
 * and policy validation.
 */

#include <gtest/gtest.h>
#include <vector>

#include "src/client/retry.h"
#include "src/util/error.h"

namespace {

using namespace hiermeans;
using client::RetryPolicy;
using client::RetrySchedule;

std::vector<double>
drain(RetrySchedule &schedule, double retry_after = 0.0)
{
    std::vector<double> delays;
    while (auto delay = schedule.nextDelayMillis(retry_after))
        delays.push_back(*delay);
    return delays;
}

TEST(RetryScheduleTest, SameSeedYieldsIdenticalDelays)
{
    RetryPolicy policy;
    policy.seed = 1234;
    RetrySchedule a(policy);
    RetrySchedule b(policy);
    EXPECT_EQ(drain(a), drain(b));
}

TEST(RetryScheduleTest, DifferentSeedsDiverge)
{
    RetryPolicy policy;
    policy.maxAttempts = 8;
    policy.budgetMillis = 1e9;
    policy.seed = 1;
    RetrySchedule a(policy);
    policy.seed = 2;
    RetrySchedule b(policy);
    EXPECT_NE(drain(a), drain(b));
}

TEST(RetryScheduleTest, DelaysStayWithinBaseAndCap)
{
    RetryPolicy policy;
    policy.maxAttempts = 32;
    policy.baseMillis = 10.0;
    policy.capMillis = 120.0;
    policy.budgetMillis = 1e9;
    RetrySchedule schedule(policy);
    const auto delays = drain(schedule);
    EXPECT_EQ(delays.size(), policy.maxAttempts - 1);
    for (double delay : delays) {
        EXPECT_GE(delay, policy.baseMillis);
        EXPECT_LE(delay, policy.capMillis);
    }
}

TEST(RetryScheduleTest, RetryAfterIsAFloor)
{
    RetryPolicy policy;
    policy.maxAttempts = 16;
    policy.baseMillis = 1.0;
    policy.capMillis = 50.0;
    policy.budgetMillis = 1e9;
    RetrySchedule schedule(policy);
    const auto delays = drain(schedule, 200.0);
    ASSERT_FALSE(delays.empty());
    for (double delay : delays)
        EXPECT_GE(delay, 200.0);
}

TEST(RetryScheduleTest, SingleAttemptPolicyNeverRetries)
{
    RetryPolicy policy;
    policy.maxAttempts = 1;
    RetrySchedule schedule(policy);
    EXPECT_FALSE(schedule.nextDelayMillis().has_value());
    EXPECT_EQ(schedule.retriesGranted(), 0u);
}

TEST(RetryScheduleTest, MaxAttemptsCountsTheFirstAttempt)
{
    RetryPolicy policy;
    policy.maxAttempts = 4;
    policy.budgetMillis = 1e9;
    RetrySchedule schedule(policy);
    EXPECT_EQ(drain(schedule).size(), 3u) << "4 attempts = 3 retries";
}

TEST(RetryScheduleTest, BudgetStopsRetriesEarly)
{
    RetryPolicy policy;
    policy.maxAttempts = 1000;
    policy.baseMillis = 100.0;
    policy.capMillis = 100.0; // every delay exactly 100ms
    policy.budgetMillis = 350.0;
    RetrySchedule schedule(policy);
    const auto delays = drain(schedule);
    EXPECT_EQ(delays.size(), 3u) << "4th 100ms delay would breach 350ms";
    EXPECT_DOUBLE_EQ(schedule.sleptMillis(), 300.0);
}

TEST(RetryScheduleTest, AccountingTracksGrantsAndSleep)
{
    RetryPolicy policy;
    policy.budgetMillis = 1e9;
    RetrySchedule schedule(policy);
    double total = 0.0;
    std::size_t grants = 0;
    while (auto delay = schedule.nextDelayMillis()) {
        total += *delay;
        ++grants;
        EXPECT_EQ(schedule.retriesGranted(), grants);
        EXPECT_DOUBLE_EQ(schedule.sleptMillis(), total);
    }
    EXPECT_GT(grants, 0u);
}

TEST(RetryScheduleTest, InvalidPoliciesAreRejected)
{
    RetryPolicy policy;
    policy.maxAttempts = 0;
    EXPECT_THROW(RetrySchedule{policy}, InvalidArgument);

    policy = RetryPolicy{};
    policy.baseMillis = -1.0;
    EXPECT_THROW(RetrySchedule{policy}, InvalidArgument);

    policy = RetryPolicy{};
    policy.capMillis = policy.baseMillis - 1.0;
    EXPECT_THROW(RetrySchedule{policy}, InvalidArgument);
}

} // namespace
