/**
 * @file
 * Tests for the deterministic RNG.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>

#include "src/util/error.h"
#include "src/util/rng.h"

namespace {

using hiermeans::InvalidArgument;
using hiermeans::rng::Engine;
using hiermeans::rng::permutation;
using hiermeans::rng::SplitMix64;

TEST(RngTest, SplitMix64KnownSequence)
{
    // Reference values for seed 0 from the published SplitMix64
    // algorithm.
    SplitMix64 sm(0);
    EXPECT_EQ(sm.next(), 0xe220a8397b1dcdafULL);
    EXPECT_EQ(sm.next(), 0x6e789e6aa1b965f4ULL);
    EXPECT_EQ(sm.next(), 0x06c45d188009454fULL);
}

TEST(RngTest, SameSeedSameStream)
{
    Engine a(123), b(123);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a(), b());
}

TEST(RngTest, DifferentSeedsDiverge)
{
    Engine a(1), b(2);
    int equal = 0;
    for (int i = 0; i < 64; ++i) {
        if (a() == b())
            ++equal;
    }
    EXPECT_LT(equal, 2);
}

TEST(RngTest, ReseedRestartsStream)
{
    Engine e(77);
    const auto first = e();
    e.seed(77);
    EXPECT_EQ(e(), first);
}

TEST(RngTest, UniformInUnitInterval)
{
    Engine e(5);
    for (int i = 0; i < 1000; ++i) {
        const double u = e.uniform();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
    }
}

TEST(RngTest, UniformRangeRespected)
{
    Engine e(5);
    for (int i = 0; i < 1000; ++i) {
        const double u = e.uniform(-3.0, 7.0);
        EXPECT_GE(u, -3.0);
        EXPECT_LT(u, 7.0);
    }
    EXPECT_THROW(e.uniform(1.0, 1.0), InvalidArgument);
}

TEST(RngTest, BelowCoversRangeWithoutBias)
{
    Engine e(9);
    std::vector<int> counts(10, 0);
    for (int i = 0; i < 10000; ++i)
        ++counts[e.below(10)];
    for (int c : counts) {
        EXPECT_GT(c, 800);
        EXPECT_LT(c, 1200);
    }
    EXPECT_THROW(e.below(0), InvalidArgument);
}

TEST(RngTest, RangeInclusiveEndpoints)
{
    Engine e(11);
    bool saw_lo = false, saw_hi = false;
    for (int i = 0; i < 500; ++i) {
        const auto v = e.rangeInclusive(-2, 2);
        EXPECT_GE(v, -2);
        EXPECT_LE(v, 2);
        saw_lo |= v == -2;
        saw_hi |= v == 2;
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

TEST(RngTest, NormalMomentsRoughlyCorrect)
{
    Engine e(13);
    const int n = 20000;
    double sum = 0.0, sum_sq = 0.0;
    for (int i = 0; i < n; ++i) {
        const double x = e.normal();
        sum += x;
        sum_sq += x * x;
    }
    const double mean = sum / n;
    const double var = sum_sq / n - mean * mean;
    EXPECT_NEAR(mean, 0.0, 0.05);
    EXPECT_NEAR(var, 1.0, 0.1);
}

TEST(RngTest, NormalScaling)
{
    Engine e(13);
    const double x = e.normal(10.0, 0.0);
    EXPECT_DOUBLE_EQ(x, 10.0);
    EXPECT_THROW(e.normal(0.0, -1.0), InvalidArgument);
}

TEST(RngTest, LogNormalIsPositive)
{
    Engine e(17);
    for (int i = 0; i < 1000; ++i)
        EXPECT_GT(e.logNormal(0.0, 1.0), 0.0);
}

TEST(RngTest, BernoulliExtremes)
{
    Engine e(19);
    for (int i = 0; i < 100; ++i) {
        EXPECT_FALSE(e.bernoulli(0.0));
        EXPECT_TRUE(e.bernoulli(1.0));
    }
    EXPECT_THROW(e.bernoulli(1.5), InvalidArgument);
}

TEST(RngTest, ShuffleIsPermutation)
{
    Engine e(23);
    std::vector<int> v = {1, 2, 3, 4, 5, 6, 7};
    auto sorted = v;
    e.shuffle(v);
    std::sort(v.begin(), v.end());
    EXPECT_EQ(v, sorted);
}

TEST(RngTest, PermutationCoversAllIndices)
{
    Engine e(29);
    const auto p = permutation(e, 20);
    std::set<std::size_t> seen(p.begin(), p.end());
    EXPECT_EQ(seen.size(), 20u);
    EXPECT_EQ(*seen.begin(), 0u);
    EXPECT_EQ(*seen.rbegin(), 19u);
}

TEST(RngTest, SplitProducesIndependentStreams)
{
    Engine parent(31);
    Engine child = parent.split();
    // Child and parent should not track each other.
    int equal = 0;
    for (int i = 0; i < 64; ++i) {
        if (parent() == child())
            ++equal;
    }
    EXPECT_LT(equal, 2);
}

} // namespace
