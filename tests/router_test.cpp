/** Router tests: dispatch, prefix routes, 404/405/500 envelopes. */

#include <gtest/gtest.h>

#include "src/server/json.h"
#include "src/server/router.h"
#include "src/util/error.h"

namespace {

using namespace hiermeans;
using namespace hiermeans::server;

HttpRequest
makeRequest(const std::string &method, const std::string &target)
{
    HttpRequest request;
    request.method = method;
    request.target = target;
    request.version = "HTTP/1.1";
    return request;
}

Router
makeRouter()
{
    Router router;
    router.add("GET", "/healthz", [](const RequestContext &) {
        return textResponse(200, "ok");
    });
    router.add("POST", "/v1/score", [](const RequestContext &ctx) {
        return textResponse(200, "scored:" + ctx.http.body);
    });
    router.add("GET", "/boom", [](const RequestContext &) -> HttpResponse {
        throw InternalError("handler exploded");
    });
    router.addPrefix("GET", "/v1/trace/", [](const RequestContext &ctx) {
        return textResponse(200, "trace:" + ctx.http.path());
    });
    return router;
}

HttpResponse
dispatch(const Router &router, const HttpRequest &request,
         const std::string &trace_id = "")
{
    RequestContext ctx{request, trace_id, nullptr, obs::kNoParent};
    return router.dispatch(ctx);
}

TEST(RouterTest, DispatchesToRegisteredHandler)
{
    const Router router = makeRouter();
    HttpRequest request = makeRequest("POST", "/v1/score");
    request.body = "line";
    const HttpResponse response = dispatch(router, request);
    EXPECT_EQ(response.status, 200);
    EXPECT_EQ(response.body, "scored:line");
}

TEST(RouterTest, QueryStringIgnoredForMatching)
{
    const Router router = makeRouter();
    const HttpResponse response =
        dispatch(router, makeRequest("GET", "/healthz?probe=1"));
    EXPECT_EQ(response.status, 200);
}

TEST(RouterTest, PrefixRouteMatchesParameterizedPath)
{
    const Router router = makeRouter();
    const HttpResponse response =
        dispatch(router, makeRequest("GET", "/v1/trace/abc123"));
    EXPECT_EQ(response.status, 200);
    EXPECT_EQ(response.body, "trace:/v1/trace/abc123");
}

TEST(RouterTest, UnknownPathIs404Envelope)
{
    const Router router = makeRouter();
    const HttpResponse response =
        dispatch(router, makeRequest("GET", "/nope"), "tid-404");
    EXPECT_EQ(response.status, 404);
    EXPECT_NE(response.body.find("\"ok\":false"), std::string::npos);
    EXPECT_NE(response.body.find("\"code\":\"not_found\""),
              std::string::npos);
    EXPECT_EQ(json::findString(response.body, "trace_id").value_or(""),
              "tid-404");
}

TEST(RouterTest, WrongMethodIs405WithAllow)
{
    const Router router = makeRouter();
    const HttpResponse response =
        dispatch(router, makeRequest("GET", "/v1/score"));
    EXPECT_EQ(response.status, 405);
    bool has_allow = false;
    for (const auto &[name, value] : response.headers) {
        if (name == "Allow") {
            has_allow = true;
            EXPECT_EQ(value, "POST");
        }
    }
    EXPECT_TRUE(has_allow);
    EXPECT_NE(response.body.find("\"code\":\"method_not_allowed\""),
              std::string::npos);
}

TEST(RouterTest, ThrowingHandlerIs500NotPropagated)
{
    const Router router = makeRouter();
    HttpResponse response;
    EXPECT_NO_THROW(
        response = dispatch(router, makeRequest("GET", "/boom")));
    EXPECT_EQ(response.status, 500);
    EXPECT_NE(response.body.find("handler exploded"),
              std::string::npos);
    EXPECT_NE(response.body.find("\"code\":\"internal\""),
              std::string::npos);
}

} // namespace
