/** Router tests: dispatch, 404, 405 + Allow, handler isolation. */

#include <gtest/gtest.h>

#include "src/server/router.h"
#include "src/util/error.h"

namespace {

using namespace hiermeans;
using namespace hiermeans::server;

HttpRequest
makeRequest(const std::string &method, const std::string &target)
{
    HttpRequest request;
    request.method = method;
    request.target = target;
    request.version = "HTTP/1.1";
    return request;
}

Router
makeRouter()
{
    Router router;
    router.add("GET", "/healthz", [](const HttpRequest &) {
        return textResponse(200, "ok");
    });
    router.add("POST", "/v1/score", [](const HttpRequest &request) {
        return textResponse(200, "scored:" + request.body);
    });
    router.add("GET", "/boom", [](const HttpRequest &) -> HttpResponse {
        throw InternalError("handler exploded");
    });
    return router;
}

TEST(RouterTest, DispatchesToRegisteredHandler)
{
    const Router router = makeRouter();
    HttpRequest request = makeRequest("POST", "/v1/score");
    request.body = "line";
    const HttpResponse response = router.dispatch(request);
    EXPECT_EQ(response.status, 200);
    EXPECT_EQ(response.body, "scored:line");
}

TEST(RouterTest, QueryStringIgnoredForMatching)
{
    const Router router = makeRouter();
    const HttpResponse response =
        router.dispatch(makeRequest("GET", "/healthz?probe=1"));
    EXPECT_EQ(response.status, 200);
}

TEST(RouterTest, UnknownPathIs404)
{
    const Router router = makeRouter();
    const HttpResponse response =
        router.dispatch(makeRequest("GET", "/nope"));
    EXPECT_EQ(response.status, 404);
}

TEST(RouterTest, WrongMethodIs405WithAllow)
{
    const Router router = makeRouter();
    const HttpResponse response =
        router.dispatch(makeRequest("GET", "/v1/score"));
    EXPECT_EQ(response.status, 405);
    bool has_allow = false;
    for (const auto &[name, value] : response.headers) {
        if (name == "Allow") {
            has_allow = true;
            EXPECT_EQ(value, "POST");
        }
    }
    EXPECT_TRUE(has_allow);
}

TEST(RouterTest, ThrowingHandlerIs500NotPropagated)
{
    const Router router = makeRouter();
    HttpResponse response;
    EXPECT_NO_THROW(response =
                        router.dispatch(makeRequest("GET", "/boom")));
    EXPECT_EQ(response.status, 500);
    EXPECT_NE(response.body.find("handler exploded"),
              std::string::npos);
}

} // namespace
