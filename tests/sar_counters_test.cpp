/**
 * @file
 * Tests for the synthetic SAR counter panel.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "src/util/error.h"
#include "src/workload/machine.h"
#include "src/workload/sar_counters.h"
#include "src/workload/workload_profile.h"

namespace {

using namespace hiermeans::workload;
using hiermeans::InvalidArgument;

SarConfig
smallConfig()
{
    SarConfig config;
    config.counters = 60;
    config.samplesPerRun = 15;
    config.seed = 99;
    return config;
}

TEST(SarCountersTest, PanelShape)
{
    const SarCounterSynthesizer synth(smallConfig());
    const SarPanel panel =
        synth.collect(paperSuiteProfiles(), machineA());
    EXPECT_EQ(panel.machine, "A");
    EXPECT_EQ(panel.counterNames.size(), 60u);
    ASSERT_EQ(panel.runs.size(), 13u);
    for (const auto &run : panel.runs) {
        EXPECT_EQ(run.samples.rows(), 15u);
        EXPECT_EQ(run.samples.cols(), 60u);
    }
}

TEST(SarCountersTest, DeterministicForSeed)
{
    const SarCounterSynthesizer synth(smallConfig());
    const SarPanel a = synth.collect(paperSuiteProfiles(), machineA());
    const SarPanel b = synth.collect(paperSuiteProfiles(), machineA());
    EXPECT_TRUE(a.runs[0].samples.approxEqual(b.runs[0].samples, 0.0));
    EXPECT_TRUE(a.averaged().approxEqual(b.averaged(), 0.0));
}

TEST(SarCountersTest, MachinesShareLayoutButNotValues)
{
    const SarCounterSynthesizer synth(smallConfig());
    const SarPanel a = synth.collect(paperSuiteProfiles(), machineA());
    const SarPanel b = synth.collect(paperSuiteProfiles(), machineB());
    EXPECT_EQ(a.counterNames, b.counterNames);
    EXPECT_FALSE(a.averaged().approxEqual(b.averaged(), 1e-6));
}

TEST(SarCountersTest, CounterNamesUniqueAndRealistic)
{
    const SarCounterSynthesizer synth(smallConfig());
    const auto names = synth.counterNames();
    const std::set<std::string> unique(names.begin(), names.end());
    EXPECT_EQ(unique.size(), names.size());
    EXPECT_EQ(names[0], "cpu.user_pct");
    EXPECT_EQ(names[9], "paging.pgfault_s");
}

TEST(SarCountersTest, ContainsConstantCounters)
{
    // The panel must contain constant columns for the characterization
    // stage to filter — exactly like real SAR output.
    SarConfig config = smallConfig();
    config.counters = 200;
    config.constantFraction = 0.2;
    const SarCounterSynthesizer synth(config);
    const auto averaged =
        synth.collect(paperSuiteProfiles(), machineA()).averaged();
    std::size_t constant_columns = 0;
    for (std::size_t c = 0; c < averaged.cols(); ++c) {
        bool constant = true;
        for (std::size_t w = 1; w < averaged.rows(); ++w) {
            if (std::abs(averaged(w, c) - averaged(0, c)) > 1e-12) {
                constant = false;
                break;
            }
        }
        if (constant)
            ++constant_columns;
    }
    EXPECT_GT(constant_columns, 10u);
    EXPECT_LT(constant_columns, averaged.cols() / 2);
}

TEST(SarCountersTest, SciMarkRowsAreMutuallyClose)
{
    // The core structural property: the five SciMark2 kernels must be
    // far closer to each other than to the rest of the suite.
    const SarCounterSynthesizer synth(SarConfig{});
    const auto averaged =
        synth.collect(paperSuiteProfiles(), machineA()).averaged();

    auto row_distance = [&](std::size_t i, std::size_t j) {
        double acc = 0.0;
        for (std::size_t c = 0; c < averaged.cols(); ++c) {
            // Compare in relative terms per counter.
            const double scale =
                std::max(1e-9, std::abs(averaged(i, c)) +
                                   std::abs(averaged(j, c)));
            const double d =
                (averaged(i, c) - averaged(j, c)) / scale;
            acc += d * d;
        }
        return std::sqrt(acc);
    };

    const auto sc = indicesOfOrigin(SuiteOrigin::SciMark2);
    double intra = 0.0;
    std::size_t intra_n = 0;
    for (std::size_t i : sc) {
        for (std::size_t j : sc) {
            if (i < j) {
                intra += row_distance(i, j);
                ++intra_n;
            }
        }
    }
    intra /= static_cast<double>(intra_n);

    double inter = 0.0;
    std::size_t inter_n = 0;
    for (std::size_t i : sc) {
        for (std::size_t j = 0; j < 13; ++j) {
            if (std::find(sc.begin(), sc.end(), j) == sc.end()) {
                inter += row_distance(i, j);
                ++inter_n;
            }
        }
    }
    inter /= static_cast<double>(inter_n);
    EXPECT_LT(intra * 3.0, inter);
}

TEST(SarCountersTest, ConfigValidation)
{
    SarConfig config;
    config.counters = 0;
    EXPECT_THROW(SarCounterSynthesizer{config}, InvalidArgument);
    config = SarConfig{};
    config.samplesPerRun = 0;
    EXPECT_THROW(SarCounterSynthesizer{config}, InvalidArgument);
    config = SarConfig{};
    config.constantFraction = 1.0;
    EXPECT_THROW(SarCounterSynthesizer{config}, InvalidArgument);
    config = SarConfig{};
    config.noiseSigma = -1.0;
    EXPECT_THROW(SarCounterSynthesizer{config}, InvalidArgument);

    const SarCounterSynthesizer synth{SarConfig{}};
    EXPECT_THROW(synth.collect({}, machineA()), InvalidArgument);
}

TEST(SarCountersTest, AveragedMatchesManualAverage)
{
    const SarCounterSynthesizer synth(smallConfig());
    const SarPanel panel =
        synth.collect(paperSuiteProfiles(), machineB());
    const auto averaged = panel.averaged();
    // Check one cell by hand.
    double acc = 0.0;
    for (std::size_t s = 0; s < 15; ++s)
        acc += panel.runs[2].samples(s, 7);
    EXPECT_NEAR(averaged(2, 7), acc / 15.0, 1e-12);
}

} // namespace
