/**
 * @file
 * Tests for SOM decay schedules.
 */

#include <gtest/gtest.h>

#include "src/som/schedule.h"
#include "src/util/error.h"

namespace {

using namespace hiermeans::som;
using hiermeans::InvalidArgument;

TEST(ScheduleTest, EndpointsRespected)
{
    for (DecayKind kind : {DecayKind::Linear, DecayKind::Exponential,
                           DecayKind::InverseTime}) {
        const DecaySchedule s(kind, 0.5, 0.01, 100);
        EXPECT_NEAR(s.value(0), 0.5, 1e-12) << decayKindName(kind);
        EXPECT_NEAR(s.value(99), 0.01, 1e-12) << decayKindName(kind);
        // Clamped past the end.
        EXPECT_NEAR(s.value(1000), 0.01, 1e-12);
    }
}

TEST(ScheduleTest, MonotoneNonIncreasing)
{
    for (DecayKind kind : {DecayKind::Linear, DecayKind::Exponential,
                           DecayKind::InverseTime}) {
        const DecaySchedule s(kind, 2.0, 0.1, 50);
        for (std::size_t n = 1; n < 50; ++n) {
            EXPECT_LE(s.value(n), s.value(n - 1) + 1e-12)
                << decayKindName(kind) << " at step " << n;
        }
    }
}

TEST(ScheduleTest, LinearIsLinear)
{
    const DecaySchedule s(DecayKind::Linear, 1.0, 0.0 + 0.2, 5);
    EXPECT_NEAR(s.value(2), 0.6, 1e-12); // halfway between 1.0 and 0.2.
}

TEST(ScheduleTest, ExponentialHalvesGeometrically)
{
    const DecaySchedule s(DecayKind::Exponential, 1.0, 0.25, 3);
    // Progress 0, 0.5, 1 -> values 1, 0.5, 0.25.
    EXPECT_NEAR(s.value(1), 0.5, 1e-12);
}

TEST(ScheduleTest, SingleStepScheduleIsConstant)
{
    const DecaySchedule s(DecayKind::Exponential, 0.5, 0.5, 1);
    EXPECT_NEAR(s.value(0), 0.5, 1e-12);
}

TEST(ScheduleTest, ConstantScheduleAllowed)
{
    const DecaySchedule s(DecayKind::Linear, 0.3, 0.3, 10);
    for (std::size_t n = 0; n < 10; ++n)
        EXPECT_NEAR(s.value(n), 0.3, 1e-12);
}

TEST(ScheduleTest, Validation)
{
    EXPECT_THROW(DecaySchedule(DecayKind::Linear, 0.0, 0.1, 10),
                 InvalidArgument);
    EXPECT_THROW(DecaySchedule(DecayKind::Linear, 1.0, 0.0, 10),
                 InvalidArgument);
    EXPECT_THROW(DecaySchedule(DecayKind::Linear, 1.0, 2.0, 10),
                 InvalidArgument);
    EXPECT_THROW(DecaySchedule(DecayKind::Linear, 1.0, 0.5, 0),
                 InvalidArgument);
}

TEST(ScheduleTest, DecayKindNamesRoundTrip)
{
    for (DecayKind kind : {DecayKind::Linear, DecayKind::Exponential,
                           DecayKind::InverseTime}) {
        EXPECT_EQ(parseDecayKind(decayKindName(kind)), kind);
    }
    EXPECT_EQ(parseDecayKind("exp"), DecayKind::Exponential);
    EXPECT_THROW(parseDecayKind("step"), InvalidArgument);
}

} // namespace
