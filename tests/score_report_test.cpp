/**
 * @file
 * Tests for the multi-cluster-count score report (Tables IV-VI shape).
 */

#include <gtest/gtest.h>

#include <cmath>

#include "src/scoring/hierarchical_mean.h"
#include "src/scoring/score_report.h"
#include "src/util/error.h"

namespace {

using hiermeans::InvalidArgument;
using namespace hiermeans::scoring;
using hiermeans::stats::MeanKind;

ScoreReport
sampleReport()
{
    const std::vector<double> a = {4.0, 2.0, 1.0, 8.0};
    const std::vector<double> b = {2.0, 2.0, 1.0, 4.0};
    const std::vector<Partition> partitions = {
        Partition::fromGroups({{0, 1}, {2, 3}}),
        Partition::fromGroups({{0, 1}, {2}, {3}}),
        Partition::discrete(4),
    };
    return buildScoreReport(MeanKind::Geometric, a, b, partitions);
}

TEST(ScoreReportTest, RowsMatchDirectHierarchicalMeans)
{
    const ScoreReport r = sampleReport();
    ASSERT_EQ(r.rows.size(), 3u);
    const std::vector<double> a = {4.0, 2.0, 1.0, 8.0};
    for (const auto &row : r.rows) {
        EXPECT_NEAR(row.scoreA,
                    hierarchicalGeometricMean(a, row.partition), 1e-12);
        EXPECT_NEAR(row.ratio, row.scoreA / row.scoreB, 1e-12);
    }
    EXPECT_EQ(r.rows[0].clusterCount, 2u);
    EXPECT_EQ(r.rows[2].clusterCount, 4u);
}

TEST(ScoreReportTest, PlainFooterIsPlainMean)
{
    const ScoreReport r = sampleReport();
    EXPECT_NEAR(r.plainA, std::pow(4.0 * 2.0 * 1.0 * 8.0, 0.25), 1e-12);
    EXPECT_NEAR(r.plainRatio, r.plainA / r.plainB, 1e-12);
}

TEST(ScoreReportTest, DiscreteRowEqualsPlainMean)
{
    const ScoreReport r = sampleReport();
    EXPECT_NEAR(r.rows.back().scoreA, r.plainA, 1e-12);
    EXPECT_NEAR(r.rows.back().scoreB, r.plainB, 1e-12);
}

TEST(ScoreReportTest, RenderContainsRowsAndFooter)
{
    const ScoreReport r = sampleReport();
    const std::string text = r.render("A", "B");
    EXPECT_NE(text.find("2 Clusters"), std::string::npos);
    EXPECT_NE(text.find("4 Clusters"), std::string::npos);
    EXPECT_NE(text.find("Geometric Mean"), std::string::npos);
    EXPECT_NE(text.find("ratio(=A/B)"), std::string::npos);
}

TEST(ScoreReportTest, RecommendedRowFindsDampening)
{
    ScoreReport r;
    r.kind = MeanKind::Geometric;
    const Partition p = Partition::single(2);
    // Ratios: 1.30, 1.10, 1.11, 1.25 -> first damped pair is rows 1-2.
    for (double ratio : {1.30, 1.10, 1.11, 1.25}) {
        ScoreReportRow row;
        row.partition = p;
        row.ratio = ratio;
        r.rows.push_back(row);
    }
    EXPECT_EQ(r.recommendedRow(0.02), 1u);
    // Nothing dampens at a zero tolerance: fall back to the last row.
    EXPECT_EQ(r.recommendedRow(0.0), 3u);
}

TEST(ScoreReportTest, Validation)
{
    const std::vector<double> a = {1.0, 2.0};
    EXPECT_THROW(
        buildScoreReport(MeanKind::Geometric, a, {1.0},
                         {Partition::single(2)}),
        InvalidArgument);
    EXPECT_THROW(
        buildScoreReport(MeanKind::Geometric, a, a,
                         {Partition::single(3)}),
        InvalidArgument);
    ScoreReport empty;
    EXPECT_THROW(empty.recommendedRow(), InvalidArgument);
}

TEST(ScoreReportTest, HarmonicFooterLabel)
{
    const std::vector<double> a = {1.0, 2.0};
    const ScoreReport r = buildScoreReport(MeanKind::Harmonic, a, a,
                                           {Partition::single(2)});
    EXPECT_NE(r.render("A", "B").find("Harmonic Mean"),
              std::string::npos);
}

} // namespace
