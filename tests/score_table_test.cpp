/**
 * @file
 * Tests for the score table (times -> speedups).
 */

#include <gtest/gtest.h>

#include "src/scoring/score_table.h"
#include "src/util/error.h"

namespace {

using hiermeans::DomainError;
using hiermeans::InvalidArgument;
using hiermeans::scoring::ScoreTable;
using hiermeans::stats::MeanKind;

ScoreTable
makeTable()
{
    return ScoreTable({"w0", "w1"}, {"A", "B", "reference"});
}

TEST(ScoreTableTest, IndicesByName)
{
    const ScoreTable t = makeTable();
    EXPECT_EQ(t.workloadIndex("w1"), 1u);
    EXPECT_EQ(t.machineIndex("reference"), 2u);
    EXPECT_THROW(t.workloadIndex("nope"), InvalidArgument);
    EXPECT_THROW(t.machineIndex("nope"), InvalidArgument);
}

TEST(ScoreTableTest, RunTimesAveraged)
{
    ScoreTable t = makeTable();
    t.setRunTimes(0, 0, {1.0, 2.0, 3.0});
    EXPECT_DOUBLE_EQ(t.time(0, 0), 2.0);
    EXPECT_THROW(t.setRunTimes(0, 0, {}), InvalidArgument);
    EXPECT_THROW(t.setRunTimes(0, 0, {1.0, -1.0}), DomainError);
}

TEST(ScoreTableTest, SpeedupIsRefOverMachine)
{
    ScoreTable t = makeTable();
    t.setTime(0, 0, 10.0);  // w0 on A.
    t.setTime(0, 2, 40.0);  // w0 on reference.
    EXPECT_DOUBLE_EQ(t.speedup(0, 0, 2), 4.0);
}

TEST(ScoreTableTest, UnsetCellThrows)
{
    const ScoreTable t = makeTable();
    EXPECT_THROW(t.time(0, 0), InvalidArgument);
    EXPECT_FALSE(t.complete());
}

TEST(ScoreTableTest, CompleteAfterAllCells)
{
    ScoreTable t = makeTable();
    for (std::size_t w = 0; w < 2; ++w)
        for (std::size_t m = 0; m < 3; ++m)
            t.setTime(w, m, 1.0 + static_cast<double>(w + m));
    EXPECT_TRUE(t.complete());
}

TEST(ScoreTableTest, SpeedupsVectorAndPlainScore)
{
    ScoreTable t = makeTable();
    t.setTime(0, 0, 10.0);
    t.setTime(1, 0, 5.0);
    t.setTime(0, 2, 40.0);
    t.setTime(1, 2, 45.0);
    const auto s = t.speedups(0, 2);
    ASSERT_EQ(s.size(), 2u);
    EXPECT_DOUBLE_EQ(s[0], 4.0);
    EXPECT_DOUBLE_EQ(s[1], 9.0);
    EXPECT_DOUBLE_EQ(t.plainScore(MeanKind::Geometric, 0, 2), 6.0);
    EXPECT_DOUBLE_EQ(t.plainScore(MeanKind::Arithmetic, 0, 2), 6.5);
}

TEST(ScoreTableTest, ValidationOfConstruction)
{
    EXPECT_THROW(ScoreTable({}, {"A"}), InvalidArgument);
    EXPECT_THROW(ScoreTable({"w"}, {}), InvalidArgument);
}

TEST(ScoreTableTest, OutOfRangeIndices)
{
    ScoreTable t = makeTable();
    EXPECT_THROW(t.setTime(2, 0, 1.0), InvalidArgument);
    EXPECT_THROW(t.setTime(0, 3, 1.0), InvalidArgument);
    EXPECT_THROW(t.setTime(0, 0, 0.0), DomainError);
}

} // namespace
