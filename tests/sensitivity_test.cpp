/**
 * @file
 * Tests for the redundancy-bias / robustness analysis.
 */

#include <gtest/gtest.h>

#include "src/scoring/sensitivity.h"
#include "src/util/error.h"

namespace {

using namespace hiermeans::scoring;
using hiermeans::stats::MeanKind;

TEST(InjectDuplicatesTest, AppendsCopiesInTargetCluster)
{
    const std::vector<double> scores = {1.0, 2.0, 3.0};
    const Partition base = Partition::fromGroups({{0}, {1, 2}});
    const InjectedSuite suite = injectDuplicates(scores, base, 1, 2);
    ASSERT_EQ(suite.scores.size(), 5u);
    EXPECT_DOUBLE_EQ(suite.scores[3], 2.0);
    EXPECT_DOUBLE_EQ(suite.scores[4], 2.0);
    EXPECT_EQ(suite.partition.label(3), suite.partition.label(1));
    EXPECT_EQ(suite.partition.clusterCount(), 2u);
}

TEST(InjectDuplicatesTest, ZeroCopiesIsIdentity)
{
    const std::vector<double> scores = {1.0, 2.0};
    const Partition base = Partition::discrete(2);
    const InjectedSuite suite = injectDuplicates(scores, base, 0, 0);
    EXPECT_EQ(suite.scores, scores);
    EXPECT_EQ(suite.partition, base);
}

TEST(InjectDuplicatesTest, Validation)
{
    const std::vector<double> scores = {1.0, 2.0};
    EXPECT_THROW(injectDuplicates(scores, Partition::single(3), 0, 1),
                 hiermeans::InvalidArgument);
    EXPECT_THROW(injectDuplicates(scores, Partition::single(2), 5, 1),
                 hiermeans::InvalidArgument);
}

TEST(DriftSweepTest, PlainDriftsHierarchicalDoesNot)
{
    // Duplicating the best workload: the plain GM drifts upward while
    // the hierarchical GM is invariant (copies join the target's
    // cluster, whose inner mean equals the duplicated value when the
    // target is a singleton cluster).
    const std::vector<double> scores = {1.0, 1.0, 8.0};
    const Partition base = Partition::discrete(3);
    const auto sweep =
        redundancyDriftSweep(MeanKind::Geometric, scores, base, 2, 5);
    ASSERT_EQ(sweep.size(), 6u);
    EXPECT_DOUBLE_EQ(sweep[0].plainDrift, 0.0);
    EXPECT_DOUBLE_EQ(sweep[0].hierarchicalDrift, 0.0);
    for (std::size_t i = 1; i < sweep.size(); ++i) {
        EXPECT_GT(sweep[i].plainDrift, sweep[i - 1].plainDrift);
        EXPECT_NEAR(sweep[i].hierarchicalDrift, 0.0, 1e-12);
    }
}

TEST(DriftSweepTest, WorksForAllMeanFamilies)
{
    const std::vector<double> scores = {2.0, 4.0, 6.0};
    const Partition base = Partition::discrete(3);
    for (MeanKind kind : {MeanKind::Arithmetic, MeanKind::Geometric,
                          MeanKind::Harmonic}) {
        const auto sweep =
            redundancyDriftSweep(kind, scores, base, 0, 3);
        for (const auto &r : sweep)
            EXPECT_NEAR(r.hierarchicalDrift, 0.0, 1e-12);
    }
}

TEST(GamingHeadroomTest, PositiveForPlainMeans)
{
    const std::vector<double> scores = {1.0, 1.0, 4.0};
    const double headroom =
        gamingHeadroom(MeanKind::Geometric, scores, 3);
    // GM grows from (4)^(1/3) toward 4 as copies of 4 stack up.
    EXPECT_GT(headroom, 0.3);
    EXPECT_THROW(gamingHeadroom(MeanKind::Geometric, {}, 1),
                 hiermeans::InvalidArgument);
}

TEST(GamingHeadroomTest, ZeroWhenAllScoresEqual)
{
    const std::vector<double> scores = {2.0, 2.0, 2.0};
    EXPECT_NEAR(gamingHeadroom(MeanKind::Geometric, scores, 10), 0.0,
                1e-12);
    EXPECT_NEAR(gamingHeadroom(MeanKind::Arithmetic, scores, 10), 0.0,
                1e-12);
}

TEST(GamingHeadroomTest, MonotoneInCopies)
{
    const std::vector<double> scores = {1.0, 5.0};
    double prev = 0.0;
    for (std::size_t copies = 1; copies <= 5; ++copies) {
        const double h =
            gamingHeadroom(MeanKind::Geometric, scores, copies);
        EXPECT_GT(h, prev);
        prev = h;
    }
}

} // namespace
