/**
 * The drift serving surface, end to end over loopback HTTP: the
 * /observe append path (no pipeline execution), the full lifecycle —
 * an i.i.d. stream stays `fresh` across ten re-cluster periods while
 * an injected mean shift flips the suite to `stale` within one — the
 * /v1/drift and per-suite drift endpoints, the hiermeans_drift_*
 * Prometheus family (one-hot staleness, lint-clean), warm-started
 * drift state across a daemon restart, and the periodic re-cluster
 * thread driven by Config::reclusterEverySeconds.
 */

#include <chrono>
#include <cstdio>
#include <gtest/gtest.h>
#include <memory>
#include <sstream>
#include <thread>
#include <unistd.h>

#include "src/obs/prometheus.h"
#include "src/server/client.h"
#include "src/server/json.h"
#include "src/server/server.h"
#include "src/util/file.h"

namespace {

using namespace hiermeans;
using Response = server::HttpResponseParser::Response;

class ServerDriftTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        stem_ = "/tmp/hiermeans_server_drift_test_" +
                std::to_string(::getpid());
        dataDir_ = stem_ + "_data";
        wipeDataDir();
        scoresPath_ = stem_ + "_scores.csv";
        featuresPath_ = stem_ + "_features.csv";
        util::writeFile(scoresPath_, "workload,mA,mB\n"
                                     "w0,1.0,2.0\n"
                                     "w1,2.0,1.0\n"
                                     "w2,1.5,1.5\n"
                                     "w3,3.0,1.0\n"
                                     "w4,1.0,3.0\n"
                                     "w5,2.5,2.5\n");
        util::writeFile(featuresPath_, "workload,f0,f1,f2\n"
                                       "w0,0.1,1.0,-0.5\n"
                                       "w1,0.9,-1.0,0.5\n"
                                       "w2,0.2,0.8,-0.4\n"
                                       "w3,0.8,-0.9,0.6\n"
                                       "w4,-0.7,0.1,1.2\n"
                                       "w5,-0.6,0.2,1.1\n");
        startServer();
    }

    void
    TearDown() override
    {
        if (server_ != nullptr)
            server_->stop();
        server_.reset();
        std::remove(scoresPath_.c_str());
        std::remove(featuresPath_.c_str());
        wipeDataDir();
    }

    void
    startServer(double recluster_every = 0.0)
    {
        server::Server::Config config;
        config.port = 0;
        config.engine.threads = 2;
        config.queueDepth = 4;
        config.connectionThreads = 8;
        config.store.dataDir = dataDir_;
        config.store.fsyncEvery = 1;
        config.store.snapshotEvery = 0;
        config.reclusterEverySeconds = recluster_every;
        // A small window and a fast-settling map keep the lifecycle
        // test's observation counts modest; the stream itself is
        // deterministic, so every assertion below is exact.
        config.drift.window = 16;
        config.drift.minWindow = 8;
        config.drift.som.decaySteps = 50;
        server_ = std::make_unique<server::Server>(config);
        server_->start();
    }

    void
    restartServer()
    {
        server_->stop();
        server_.reset();
        startServer();
    }

    void
    wipeDataDir()
    {
        if (!util::fileExists(dataDir_))
            return;
        for (const std::string &name : util::listDir(dataDir_))
            util::removeFile(dataDir_ + "/" + name);
        ::rmdir(dataDir_.c_str());
    }

    std::string
    line() const
    {
        return "scores=" + scoresPath_ + " features=" + featuresPath_ +
               " machine-a=mA machine-b=mB som-steps=150";
    }

    server::HttpClient
    client() const
    {
        return server::HttpClient("127.0.0.1", server_->port());
    }

    void
    registerSuite(server::HttpClient &c, const std::string &name)
    {
        ASSERT_EQ(
            c.roundTrip("POST", "/v1/suites?name=" + name, line()).status,
            200);
    }

    static Response
    observe(server::HttpClient &c, const std::string &suite,
            double ratio, int i)
    {
        std::ostringstream body;
        body << "{\"ratio\":" << server::json::number(ratio)
             << ",\"plain_ratio\":"
             << server::json::number(ratio - 0.001 * (i % 5))
             << ",\"id\":\"obs-" << i << "\"}";
        return c.roundTrip("POST", "/v1/suites/" + suite + "/observe",
                           body.str());
    }

    /**
     * The deterministic "i.i.d." stream: four well-separated levels
     * visited round-robin with a small index-keyed jitter — a
     * stationary distribution the published clustering should keep
     * describing forever.
     */
    static double
    stationaryRatio(int i)
    {
        static const double bases[4] = {1.0, 2.0, 3.0, 4.0};
        return bases[i % 4] + 0.002 * (i % 7);
    }

    std::string stem_;
    std::string dataDir_;
    std::string scoresPath_;
    std::string featuresPath_;
    std::unique_ptr<server::Server> server_;
};

TEST_F(ServerDriftTest, ObserveAppendsHistoryWithoutThePipeline)
{
    auto c = client();
    registerSuite(c, "stream");

    const Response first = observe(c, "stream", 1.25, 1);
    ASSERT_EQ(first.status, 200) << first.body;
    EXPECT_EQ(server::json::findString(first.body, "suite"), "stream");
    EXPECT_EQ(server::json::findNumber(first.body, "history"), 1.0);
    EXPECT_EQ(server::json::findNumber(first.body, "ratio"), 1.25);

    const Response second = observe(c, "stream", 1.3, 2);
    ASSERT_EQ(second.status, 200);
    EXPECT_EQ(server::json::findNumber(second.body, "history"), 2.0);

    const Response history =
        c.roundTrip("GET", "/v1/history?suite=stream");
    ASSERT_EQ(history.status, 200);
    EXPECT_EQ(server::json::findNumber(history.body, "count"), 2.0);
    EXPECT_EQ(server_->engine().metrics().snapshot().executions, 0u)
        << "observations must never run the scoring pipeline";
}

TEST_F(ServerDriftTest, ObserveValidatesItsInputs)
{
    auto c = client();
    registerSuite(c, "stream");

    // Unknown suite: typed 404.
    const Response unknown =
        c.roundTrip("POST", "/v1/suites/nope/observe", "{\"ratio\":1.0}");
    EXPECT_EQ(unknown.status, 404);
    EXPECT_NE(unknown.body.find("suite_unknown"), std::string::npos);

    // Missing / non-positive ratio: 400.
    EXPECT_EQ(c.roundTrip("POST", "/v1/suites/stream/observe",
                          "{\"id\":\"x\"}")
                  .status,
              400);
    EXPECT_EQ(c.roundTrip("POST", "/v1/suites/stream/observe",
                          "{\"ratio\":-1.0}")
                  .status,
              400);
    EXPECT_EQ(c.roundTrip("POST", "/v1/suites/stream/observe",
                          "{\"ratio\":0}")
                  .status,
              400);

    // Unknown sub-path actions are a 404, not a silent fallthrough.
    EXPECT_EQ(c.roundTrip("POST", "/v1/suites/stream/bogus", "{}")
                  .status,
              404);
    EXPECT_EQ(c.roundTrip("GET", "/v1/suites/stream/bogus").status,
              404);
}

TEST_F(ServerDriftTest, UnmonitoredRegisteredSuiteReportsDefaultFresh)
{
    auto c = client();
    registerSuite(c, "idle");
    const Response report =
        c.roundTrip("GET", "/v1/suites/idle/drift");
    ASSERT_EQ(report.status, 200) << report.body;
    EXPECT_EQ(server::json::findString(report.body, "state"), "fresh");
    EXPECT_EQ(server::json::findNumber(report.body, "ticks"), 0.0);
    EXPECT_NE(report.body.find("\"published\":false"),
              std::string::npos);

    const Response unknown = c.roundTrip("GET", "/v1/suites/nope/drift");
    EXPECT_EQ(unknown.status, 404);
    EXPECT_NE(unknown.body.find("suite_unknown"), std::string::npos);

    const Response bad_tick =
        c.roundTrip("POST", "/v1/admin/recluster?suite=nope", "");
    EXPECT_EQ(bad_tick.status, 404);
}

TEST_F(ServerDriftTest, LifecycleFreshUnderIidStaleOnMeanShift)
{
    auto c = client();
    registerSuite(c, "stream");

    // Warm-up: enough stationary observations to seed the map and
    // let the schedules reach their floors.
    int sequence = 0;
    for (; sequence < 60; ++sequence)
        ASSERT_EQ(observe(c, "stream", stationaryRatio(sequence),
                          sequence)
                      .status,
                  200);

    const Response first =
        c.roundTrip("POST", "/v1/admin/recluster?suite=stream", "");
    ASSERT_EQ(first.status, 200) << first.body;
    EXPECT_EQ(server::json::findNumber(first.body, "ticked"), 1.0);
    EXPECT_EQ(server::json::findString(first.body, "state"), "fresh");
    EXPECT_NE(first.body.find("\"published\":true"), std::string::npos)
        << "the warm-up window must publish a first clustering";

    // Ten re-cluster periods of the same stationary stream: the
    // suite must stay fresh through every one of them.
    for (int period = 0; period < 10; ++period) {
        for (int i = 0; i < 2; ++i, ++sequence)
            ASSERT_EQ(observe(c, "stream", stationaryRatio(sequence),
                              sequence)
                          .status,
                      200);
        const Response tick =
            c.roundTrip("POST", "/v1/admin/recluster?suite=stream", "");
        ASSERT_EQ(tick.status, 200);
        EXPECT_EQ(server::json::findString(tick.body, "state"), "fresh")
            << "period " << period << ": " << tick.body;
    }

    const Response fresh_report =
        c.roundTrip("GET", "/v1/suites/stream/drift");
    ASSERT_EQ(fresh_report.status, 200);
    EXPECT_EQ(server::json::findNumber(fresh_report.body, "ticks"),
              11.0);
    const auto fresh_mean =
        server::json::findNumber(fresh_report.body, "published_mean");
    ASSERT_TRUE(fresh_mean.has_value());
    EXPECT_GT(*fresh_mean, 0.0);

    // The mean shift: the stream jumps to a level the published
    // clustering has never seen. One re-cluster period later the
    // suite must already be flagged stale.
    for (int i = 0; i < 20; ++i, ++sequence)
        ASSERT_EQ(observe(c, "stream", 9.0 + 0.002 * (sequence % 7),
                          sequence)
                      .status,
                  200);
    const Response shifted =
        c.roundTrip("POST", "/v1/admin/recluster?suite=stream", "");
    ASSERT_EQ(shifted.status, 200);
    EXPECT_EQ(server::json::findString(shifted.body, "state"), "stale")
        << shifted.body;
    const auto qe_ratio =
        server::json::findNumber(shifted.body, "qe_ratio");
    ASSERT_TRUE(qe_ratio.has_value());
    EXPECT_GT(*qe_ratio, 2.5) << "the QE ratio is the shift tripwire";

    // The frozen published mean still quotes the pre-shift stream.
    const Response stale_report =
        c.roundTrip("GET", "/v1/suites/stream/drift");
    EXPECT_EQ(server::json::findNumber(stale_report.body,
                                       "published_mean"),
              fresh_mean)
        << "a drifting suite must freeze its published baseline";

    // The list endpoint sees the same machine.
    const Response list = c.roundTrip("GET", "/v1/drift");
    ASSERT_EQ(list.status, 200);
    EXPECT_EQ(server::json::findNumber(list.body, "count"), 1.0);
    EXPECT_NE(list.body.find("\"stale\""), std::string::npos);

    // Prometheus: the whole drift family, one-hot staleness, lint
    // clean.
    const Response metrics = c.roundTrip("GET", "/metrics");
    ASSERT_EQ(metrics.status, 200);
    EXPECT_NE(metrics.body.find("hiermeans_drift_suites 1"),
              std::string::npos);
    EXPECT_NE(metrics.body.find("hiermeans_drift_state{suite=\"stream\""
                                ",state=\"stale\"} 1"),
              std::string::npos)
        << metrics.body.substr(0, 3000);
    EXPECT_NE(metrics.body.find("hiermeans_drift_state{suite=\"stream\""
                                ",state=\"fresh\"} 0"),
              std::string::npos)
        << "the staleness gauge must be one-hot";
    for (const char *name : {"hiermeans_drift_churn",
                             "hiermeans_drift_stability",
                             "hiermeans_drift_qe_ratio",
                             "hiermeans_drift_published_mean",
                             "hiermeans_drift_ticks_total",
                             "hiermeans_drift_observations_total"})
        EXPECT_NE(metrics.body.find(name), std::string::npos) << name;
    for (const std::string &issue : obs::lintExposition(metrics.body))
        ADD_FAILURE() << "exposition lint: " << issue;

    // A daemon restart warm-starts the exact machine: same state,
    // same counters, bit-identical published mean.
    const auto ticks_before =
        server::json::findNumber(stale_report.body, "ticks");
    const auto observations_before =
        server::json::findNumber(stale_report.body, "observations");
    restartServer();
    auto c2 = client();
    const Response recovered =
        c2.roundTrip("GET", "/v1/suites/stream/drift");
    ASSERT_EQ(recovered.status, 200) << recovered.body;
    EXPECT_EQ(server::json::findString(recovered.body, "state"),
              "stale");
    EXPECT_EQ(server::json::findNumber(recovered.body, "ticks"),
              ticks_before);
    EXPECT_EQ(server::json::findNumber(recovered.body, "observations"),
              observations_before);
    EXPECT_EQ(server::json::findNumber(recovered.body,
                                       "published_mean"),
              fresh_mean)
        << "the recovered baseline must be bit-identical";
}

TEST_F(ServerDriftTest, ReclusterThreadTicksOnItsOwn)
{
    server_->stop();
    server_.reset();
    startServer(/*recluster_every=*/0.05);

    auto c = client();
    registerSuite(c, "auto");
    for (int i = 0; i < 12; ++i)
        ASSERT_EQ(observe(c, "auto", stationaryRatio(i), i).status, 200);

    // The background thread must tick the suite without any admin
    // call. Poll with a generous deadline; the cadence is 50ms.
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::seconds(10);
    double ticks = 0.0;
    while (std::chrono::steady_clock::now() < deadline) {
        const Response report =
            c.roundTrip("GET", "/v1/suites/auto/drift");
        ASSERT_EQ(report.status, 200);
        ticks = server::json::findNumber(report.body, "ticks")
                    .value_or(0.0);
        if (ticks >= 1.0)
            break;
        std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
    EXPECT_GE(ticks, 1.0) << "the re-cluster thread never fired";
}

TEST_F(ServerDriftTest, WithoutAStoreDriftEndpointsAnswer503)
{
    server::Server::Config config;
    config.port = 0;
    config.engine.threads = 1;
    server::Server bare(config);
    bare.start();
    server::HttpClient c("127.0.0.1", bare.port());
    for (const auto &[method, target] :
         std::vector<std::pair<std::string, std::string>>{
             {"GET", "/v1/drift"},
             {"GET", "/v1/suites/x/drift"},
             {"POST", "/v1/suites/x/observe"},
             {"POST", "/v1/admin/recluster"}}) {
        const Response response =
            c.roundTrip(method, target, "{\"ratio\":1.0}");
        EXPECT_EQ(response.status, 503) << target;
        EXPECT_NE(response.body.find("store_disabled"),
                  std::string::npos)
            << target;
    }
    // No store: the drift metric family stays out of the exposition.
    const Response metrics = c.roundTrip("GET", "/metrics");
    EXPECT_EQ(metrics.body.find("hiermeans_drift_"), std::string::npos);
    bare.stop();
}

} // namespace
