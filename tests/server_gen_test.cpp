/**
 * The generated-suite serving surface, end to end over loopback HTTP:
 * a gen-rendered manifest registers as a versioned suite (text and
 * binary bodies agree on the stored payload), `?version=` pinning is
 * idempotent for identical payloads and a typed 409 for differing
 * ones, GET /v1/suites honours the bounded `?limit=`, a registered
 * generated suite scores by `suite=<name> line=<n>` reference, the
 * generated observation schedule drives the drift monitor
 * fresh→stale exactly at its known shift, and the
 * hiermeans_gen_registrations_total family is exposed zero-preseeded
 * and lint-clean.
 */

#include <cstdio>
#include <gtest/gtest.h>
#include <memory>
#include <sstream>
#include <string>
#include <sys/stat.h>
#include <unistd.h>

#include "src/gen/manifest.h"
#include "src/gen/observe.h"
#include "src/gen/registry.h"
#include "src/obs/prometheus.h"
#include "src/server/client.h"
#include "src/server/json.h"
#include "src/server/server.h"
#include "src/util/file.h"

namespace {

using namespace hiermeans;
using Response = server::HttpResponseParser::Response;

class ServerGenTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        dataDir_ = "/tmp/hiermeans_server_gen_test_" +
                   std::to_string(::getpid()) + "_data";
        suiteDir_ = "/tmp/hiermeans_server_gen_test_" +
                    std::to_string(::getpid()) + "_suite";
        wipeDir(dataDir_);
        wipeDir(suiteDir_);
        ::mkdir(suiteDir_.c_str(), 0755);

        // A small bigdata suite keeps pipeline runs in the test fast;
        // the artifacts are written where the manifest points.
        gen::FamilyConfig config =
            gen::defaultConfig(gen::FamilyKind::BigData, 0x6E11);
        config.workloads = 12;
        config.clusters = 3;
        config.machines = 3;
        suite_ = gen::generateSuite(config);
        artifacts_ = gen::renderArtifacts(suite_, suiteDir_);
        util::writeFile(suiteDir_ + "/scores.csv", artifacts_.scoresCsv);
        util::writeFile(suiteDir_ + "/features.csv",
                        artifacts_.featuresCsv);

        startServer();
    }

    void
    TearDown() override
    {
        if (server_ != nullptr)
            server_->stop();
        server_.reset();
        wipeDir(suiteDir_);
        wipeDir(dataDir_);
    }

    void
    startServer()
    {
        server::Server::Config config;
        config.port = 0;
        config.engine.threads = 2;
        config.queueDepth = 4;
        config.connectionThreads = 8;
        config.store.dataDir = dataDir_;
        config.store.fsyncEvery = 1;
        config.store.snapshotEvery = 0;
        config.drift.window = 16;
        config.drift.minWindow = 8;
        config.drift.som.decaySteps = 50;
        server_ = std::make_unique<server::Server>(config);
        server_->start();
    }

    static void
    wipeDir(const std::string &dir)
    {
        if (!util::fileExists(dir))
            return;
        for (const std::string &name : util::listDir(dir))
            util::removeFile(dir + "/" + name);
        ::rmdir(dir.c_str());
    }

    server::HttpClient
    client() const
    {
        return server::HttpClient("127.0.0.1", server_->port());
    }

    static Response
    registerSuite(server::HttpClient &c, const std::string &target,
                  const std::string &manifest)
    {
        return c.roundTrip("POST", target, manifest);
    }

    std::string dataDir_;
    std::string suiteDir_;
    gen::GeneratedSuite suite_;
    gen::SuiteArtifacts artifacts_;
    std::unique_ptr<server::Server> server_;
};

TEST_F(ServerGenTest, GeneratedSuiteRegistersListsAndScores)
{
    auto c = client();
    const Response reg = registerSuite(
        c, "/v1/suites?name=gen.bigdata&generator=bigdata",
        artifacts_.manifestText);
    ASSERT_EQ(reg.status, 200) << reg.body;
    EXPECT_EQ(server::json::findString(reg.body, "name"), "gen.bigdata");
    EXPECT_EQ(server::json::findNumber(reg.body, "version"), 1.0);
    EXPECT_EQ(server::json::findNumber(reg.body, "lines"),
              static_cast<double>(artifacts_.manifestLines.size()));
    EXPECT_NE(reg.body.find("\"created\":true"), std::string::npos);

    const Response list = c.roundTrip("GET", "/v1/suites");
    ASSERT_EQ(list.status, 200);
    EXPECT_EQ(server::json::findNumber(list.body, "count"), 1.0);
    EXPECT_NE(list.body.find("\"name\":\"gen.bigdata\""),
              std::string::npos);
    EXPECT_NE(list.body.find("\"latest\":1"), std::string::npos);

    // A registered generated suite scores like any other: by
    // reference, expanding the stored manifest line.
    const Response scored = c.roundTrip(
        "POST", "/v1/score", "suite=gen.bigdata line=1 id=gen-smoke");
    ASSERT_EQ(scored.status, 200) << scored.body;
    EXPECT_EQ(scored.header("x-hiermeans-source", ""), "pipeline");
    const auto ratio = server::json::findNumber(scored.body, "ratio");
    ASSERT_TRUE(ratio.has_value());
    EXPECT_GT(*ratio, 0.0);
}

TEST_F(ServerGenTest, VersionPinningIsIdempotentAndImmutable)
{
    auto c = client();
    ASSERT_EQ(registerSuite(c, "/v1/suites?name=pinned",
                            artifacts_.manifestText)
                  .status,
              200);

    // Replaying the identical payload at its version is a no-op ack.
    const Response replay = registerSuite(
        c, "/v1/suites?name=pinned&version=1", artifacts_.manifestText);
    ASSERT_EQ(replay.status, 200) << replay.body;
    EXPECT_EQ(server::json::findNumber(replay.body, "version"), 1.0);
    EXPECT_NE(replay.body.find("\"created\":false"), std::string::npos);

    // A differing payload at an existing version is refused with the
    // typed conflict envelope: versions are immutable.
    const std::string mutated =
        artifacts_.manifestText + "id=extra scores=" + suiteDir_ +
        "/scores.csv features=" + suiteDir_ +
        "/features.csv machine-a=m1 machine-b=ref\n";
    const Response conflict =
        registerSuite(c, "/v1/suites?name=pinned&version=1", mutated);
    EXPECT_EQ(conflict.status, 409) << conflict.body;
    EXPECT_NE(conflict.body.find("suite_version_conflict"),
              std::string::npos);

    // Pinning past latest+1 would leave a gap: 400.
    const Response gap = registerSuite(
        c, "/v1/suites?name=pinned&version=5", artifacts_.manifestText);
    EXPECT_EQ(gap.status, 400) << gap.body;
    EXPECT_NE(gap.body.find("gap"), std::string::npos);

    // Malformed version values never reach the store.
    EXPECT_EQ(registerSuite(c, "/v1/suites?name=pinned&version=abc",
                            artifacts_.manifestText)
                  .status,
              400);

    // Pinning exactly latest+1 appends, same as the unpinned path.
    const Response next =
        registerSuite(c, "/v1/suites?name=pinned&version=2", mutated);
    ASSERT_EQ(next.status, 200) << next.body;
    EXPECT_EQ(server::json::findNumber(next.body, "version"), 2.0);
    EXPECT_NE(next.body.find("\"created\":true"), std::string::npos);
}

TEST_F(ServerGenTest, BinaryRegistrationMatchesTextPayload)
{
    auto c = client();
    ASSERT_EQ(registerSuite(c, "/v1/suites?name=twin",
                            artifacts_.manifestText)
                  .status,
              200);
    // The HMW1 frame decodes to the identical manifest text, so a
    // binary replay of version 1 is the idempotent no-op, not a 409.
    const Response binary =
        c.roundTrip("POST", "/v1/suites?name=twin&version=1",
                    artifacts_.manifestBinary, wire::kMediaType);
    ASSERT_EQ(binary.status, 200) << binary.body;
    EXPECT_EQ(server::json::findNumber(binary.body, "version"), 1.0);
    EXPECT_NE(binary.body.find("\"created\":false"), std::string::npos);
}

TEST_F(ServerGenTest, SuiteListHonoursBoundedLimit)
{
    auto c = client();
    for (const char *name : {"list.a", "list.b", "list.c"})
        ASSERT_EQ(registerSuite(c,
                                std::string("/v1/suites?name=") + name,
                                artifacts_.manifestText)
                      .status,
                  200);

    const Response all = c.roundTrip("GET", "/v1/suites");
    ASSERT_EQ(all.status, 200);
    EXPECT_EQ(server::json::findNumber(all.body, "count"), 3.0);

    // `count` reports the total even when the page is truncated.
    const Response one = c.roundTrip("GET", "/v1/suites?limit=1");
    ASSERT_EQ(one.status, 200);
    EXPECT_EQ(server::json::findNumber(one.body, "count"), 3.0);
    std::size_t names = 0;
    for (std::size_t at = one.body.find("\"name\":");
         at != std::string::npos;
         at = one.body.find("\"name\":", at + 1))
        ++names;
    EXPECT_EQ(names, 1u) << one.body;

    // Out-of-range and malformed limits are typed 400s.
    for (const char *bad : {"limit=0", "limit=abc", "limit=100000"}) {
        const Response refused =
            c.roundTrip("GET", std::string("/v1/suites?") + bad);
        EXPECT_EQ(refused.status, 400) << bad;
        EXPECT_NE(refused.body.find("bad_request"), std::string::npos)
            << bad;
    }
}

TEST_F(ServerGenTest, ObservationScheduleDrivesFreshThenStale)
{
    auto c = client();
    ASSERT_EQ(registerSuite(c, "/v1/suites?name=gen.stream",
                            artifacts_.manifestText)
                  .status,
              200);

    const gen::ObservationSchedule schedule =
        gen::generateSchedule(gen::ObserveConfig{});
    ASSERT_EQ(schedule.shiftIndex, 60u);

    auto post = [&](const wire::Observation &obs) {
        std::ostringstream body;
        body << "{\"ratio\":" << server::json::number(obs.ratio)
             << ",\"plain_ratio\":"
             << server::json::number(obs.plainRatio) << ",\"id\":\""
             << obs.id << "\"}";
        return c.roundTrip("POST", "/v1/suites/gen.stream/observe",
                           body.str());
    };

    // The stationary prefix publishes a clustering that stays fresh.
    for (std::size_t i = 0; i < schedule.shiftIndex; ++i)
        ASSERT_EQ(post(schedule.observations[i]).status, 200) << i;
    const Response fresh =
        c.roundTrip("POST", "/v1/admin/recluster?suite=gen.stream", "");
    ASSERT_EQ(fresh.status, 200) << fresh.body;
    EXPECT_EQ(server::json::findString(fresh.body, "state"), "fresh");

    // The shifted suffix must flip the suite stale within one
    // re-cluster period — the schedule's ground truth.
    for (std::size_t i = schedule.shiftIndex;
         i < schedule.observations.size(); ++i)
        ASSERT_EQ(post(schedule.observations[i]).status, 200) << i;
    const Response stale =
        c.roundTrip("POST", "/v1/admin/recluster?suite=gen.stream", "");
    ASSERT_EQ(stale.status, 200) << stale.body;
    EXPECT_EQ(server::json::findString(stale.body, "state"), "stale")
        << stale.body;
}

TEST_F(ServerGenTest, MetricsExposeEveryFamilyZeroPreseeded)
{
    auto c = client();
    const Response before = c.roundTrip("GET", "/metrics");
    ASSERT_EQ(before.status, 200);
    for (const std::string &family : gen::genMetricLabels())
        EXPECT_NE(
            before.body.find("hiermeans_gen_registrations_total{family"
                             "=\"" +
                             family + "\"} 0"),
            std::string::npos)
            << family;

    // A generator-tagged registration counts its family; an unknown
    // family lands in the bounded "other" slot. Replays (not created)
    // never double-count.
    ASSERT_EQ(registerSuite(c,
                            "/v1/suites?name=tagged&generator=bigdata",
                            artifacts_.manifestText)
                  .status,
              200);
    ASSERT_EQ(registerSuite(
                  c,
                  "/v1/suites?name=tagged&generator=bigdata&version=1",
                  artifacts_.manifestText)
                  .status,
              200);
    ASSERT_EQ(registerSuite(
                  c, "/v1/suites?name=oddball&generator=mystery",
                  artifacts_.manifestText)
                  .status,
              200);

    const Response after = c.roundTrip("GET", "/metrics");
    ASSERT_EQ(after.status, 200);
    EXPECT_NE(after.body.find("hiermeans_gen_registrations_total{family"
                              "=\"bigdata\"} 1"),
              std::string::npos)
        << after.body.substr(0, 2000);
    EXPECT_NE(after.body.find("hiermeans_gen_registrations_total{family"
                              "=\"other\"} 1"),
              std::string::npos);
    for (const std::string &issue : obs::lintExposition(after.body))
        ADD_FAILURE() << "exposition lint: " << issue;
}

} // namespace
