/**
 * Loopback integration tests for the serving layer: a real Server on
 * an ephemeral port driven through HttpClient. Covers the robustness
 * contract (400/404/405/413/503/504, keep-alive, graceful drain) and
 * the determinism guarantee: scores served over HTTP — concurrently —
 * are bit-identical to a single-threaded engine run of the same line.
 */

#include <cstdio>
#include <gtest/gtest.h>
#include <memory>
#include <thread>
#include <unistd.h>

#include "src/engine/manifest.h"
#include "src/server/client.h"
#include "src/server/json.h"
#include "src/server/server.h"
#include "src/util/file.h"
#include "src/util/str.h"

namespace {

using namespace hiermeans;
using Response = server::HttpResponseParser::Response;

class ServerIntegrationTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        const std::string stem = "/tmp/hiermeans_server_test_" +
                                 std::to_string(::getpid());
        scoresPath_ = stem + "_scores.csv";
        featuresPath_ = stem + "_features.csv";
        util::writeFile(scoresPath_, "workload,mA,mB\n"
                                     "w0,1.0,2.0\n"
                                     "w1,2.0,1.0\n"
                                     "w2,1.5,1.5\n"
                                     "w3,3.0,1.0\n"
                                     "w4,1.0,3.0\n"
                                     "w5,2.5,2.5\n");
        util::writeFile(featuresPath_, "workload,f0,f1,f2\n"
                                       "w0,0.1,1.0,-0.5\n"
                                       "w1,0.9,-1.0,0.5\n"
                                       "w2,0.2,0.8,-0.4\n"
                                       "w3,0.8,-0.9,0.6\n"
                                       "w4,-0.7,0.1,1.2\n"
                                       "w5,-0.6,0.2,1.1\n");

        server::Server::Config config;
        config.port = 0;
        config.engine.threads = 2;
        config.queueDepth = 2;
        config.connectionThreads = 6;
        config.maxBodyBytes = 4096;
        server_ = std::make_unique<server::Server>(config);
        server_->start();
    }

    void
    TearDown() override
    {
        server_->stop();
        std::remove(scoresPath_.c_str());
        std::remove(featuresPath_.c_str());
    }

    /** A valid /v1/score body with optional extra tokens. */
    std::string
    line(const std::string &extra = "") const
    {
        return "scores=" + scoresPath_ + " features=" + featuresPath_ +
               " machine-a=mA machine-b=mB som-steps=150" +
               (extra.empty() ? "" : " " + extra);
    }

    server::HttpClient
    client() const
    {
        return server::HttpClient("127.0.0.1", server_->port());
    }

    std::string scoresPath_;
    std::string featuresPath_;
    std::unique_ptr<server::Server> server_;
};

TEST_F(ServerIntegrationTest, HealthzAnswers200)
{
    auto c = client();
    const Response response = c.roundTrip("GET", "/healthz");
    EXPECT_EQ(response.status, 200);
    EXPECT_NE(response.body.find("ok"), std::string::npos);
}

TEST_F(ServerIntegrationTest, MetricsAnswers200WithCounters)
{
    auto c = client();
    ASSERT_EQ(c.roundTrip("GET", "/healthz").status, 200);
    const Response response = c.roundTrip("GET", "/metrics");
    EXPECT_EQ(response.status, 200);
    EXPECT_FALSE(response.body.empty());
    EXPECT_NE(response.body.find("connections"), std::string::npos);
}

TEST_F(ServerIntegrationTest, UnknownPathIs404WrongMethodIs405)
{
    auto c = client();
    EXPECT_EQ(c.roundTrip("GET", "/nope").status, 404);
    const Response response = c.roundTrip("GET", "/v1/score");
    EXPECT_EQ(response.status, 405);
    EXPECT_EQ(response.header("allow", ""), "POST");
}

TEST_F(ServerIntegrationTest,
       ScoreMatchesSingleThreadedEngineBitIdentically)
{
    // Reference: the same manifest line through a fresh 1-thread
    // engine, no HTTP anywhere.
    engine::CsvCache csvs;
    const auto lines = engine::parseManifest(line("seed=42"));
    engine::ScoringEngine::Config serial;
    serial.threads = 1;
    engine::ScoringEngine reference(serial);
    const engine::ScoreResult expected =
        reference
            .submit(engine::buildManifestRequest(
                lines.at(0), util::CommandLine::parse({"test"}), csvs))
            .get();
    ASSERT_TRUE(expected.ok) << expected.error;
    const std::size_t row = expected.report.recommendedRow();

    auto c = client();
    const Response response =
        c.roundTrip("POST", "/v1/score", line("seed=42"));
    ASSERT_EQ(response.status, 200) << response.body;
    EXPECT_EQ(response.header("x-hiermeans-source", ""), "pipeline");

    // %.17g round-trips doubles exactly: parse back and compare
    // bit-identically, not approximately.
    const auto ratio = server::json::findNumber(response.body, "ratio");
    const auto plain =
        server::json::findNumber(response.body, "plain_ratio");
    const auto k =
        server::json::findNumber(response.body, "recommended_k");
    ASSERT_TRUE(ratio && plain && k);
    EXPECT_EQ(*ratio, expected.report.rows[row].ratio);
    EXPECT_EQ(*plain, expected.report.plainRatio);
    EXPECT_EQ(static_cast<std::size_t>(*k), expected.recommendedK);
}

TEST_F(ServerIntegrationTest,
       ConcurrentClientsGetBitIdenticalScores)
{
    // Reference results computed serially, one per distinct seed.
    engine::CsvCache csvs;
    engine::ScoringEngine::Config serial;
    serial.threads = 1;
    engine::ScoringEngine reference(serial);
    constexpr std::size_t kDistinct = 4;
    std::vector<double> expected_ratio;
    for (std::size_t i = 0; i < kDistinct; ++i) {
        const auto lines = engine::parseManifest(
            line("seed=" + std::to_string(100 + i)));
        const engine::ScoreResult result =
            reference
                .submit(engine::buildManifestRequest(
                    lines.at(0), util::CommandLine::parse({"test"}),
                    csvs))
                .get();
        ASSERT_TRUE(result.ok) << result.error;
        expected_ratio.push_back(
            result.report.rows[result.report.recommendedRow()].ratio);
    }

    // 4 clients x 3 passes over the distinct lines, concurrently.
    std::vector<std::thread> clients;
    std::vector<std::string> failures(kDistinct);
    for (std::size_t t = 0; t < kDistinct; ++t) {
        clients.emplace_back([&, t] {
            server::HttpClient c("127.0.0.1", server_->port());
            for (std::size_t pass = 0; pass < 3; ++pass) {
                for (std::size_t i = 0; i < kDistinct; ++i) {
                    // Honor 503 backpressure: retry after a beat, as
                    // a well-behaved client would.
                    Response response;
                    for (int attempt = 0; attempt < 200; ++attempt) {
                        response = c.roundTrip(
                            "POST", "/v1/score",
                            line("seed=" + std::to_string(100 + i)));
                        if (response.status != 503)
                            break;
                        std::this_thread::sleep_for(
                            std::chrono::milliseconds(10));
                    }
                    if (response.status != 200) {
                        failures[t] = "HTTP " +
                                      std::to_string(response.status);
                        return;
                    }
                    const auto ratio = server::json::findNumber(
                        response.body, "ratio");
                    if (!ratio || *ratio != expected_ratio[i]) {
                        failures[t] = "ratio mismatch on seed " +
                                      std::to_string(100 + i);
                        return;
                    }
                }
            }
        });
    }
    for (std::thread &thread : clients)
        thread.join();
    for (const std::string &failure : failures)
        EXPECT_TRUE(failure.empty()) << failure;
}

TEST_F(ServerIntegrationTest, RepeatIsServedFromCacheWithProvenance)
{
    auto c = client();
    const Response first =
        c.roundTrip("POST", "/v1/score", line("seed=7"));
    ASSERT_EQ(first.status, 200) << first.body;
    EXPECT_EQ(first.header("x-hiermeans-source", ""), "pipeline");

    const Response second =
        c.roundTrip("POST", "/v1/score", line("seed=7"));
    ASSERT_EQ(second.status, 200);
    EXPECT_EQ(second.header("x-hiermeans-source", ""), "cache");
    // Identical payloads modulo the wall_ms timing field.
    EXPECT_EQ(server::json::findNumber(first.body, "ratio"),
              server::json::findNumber(second.body, "ratio"));
    EXPECT_EQ(server::json::findRawValue(first.body, "fingerprint"),
              server::json::findRawValue(second.body, "fingerprint"));
}

TEST_F(ServerIntegrationTest, MalformedBodyIs400WithoutEngineWork)
{
    const std::uint64_t requests_before =
        server_->engine().metrics().snapshot().requests;
    auto c = client();
    EXPECT_EQ(c.roundTrip("POST", "/v1/score", "not a manifest").status,
              400);
    EXPECT_EQ(c.roundTrip("POST", "/v1/score", "scores=/no/file.csv")
                  .status,
              400);
    EXPECT_EQ(c.roundTrip("POST", "/v1/score", line() + "\n" + line())
                  .status,
              400)
        << "two lines must be rejected by /v1/score";
    EXPECT_EQ(server_->engine().metrics().snapshot().requests,
              requests_before)
        << "malformed requests must never reach the engine";
    EXPECT_EQ(server_->metrics().snapshot(0, 1).malformed400, 3u);
}

TEST_F(ServerIntegrationTest, OversizedBodyIs413)
{
    auto c = client();
    const std::string huge(8192, 'x');
    EXPECT_EQ(c.roundTrip("POST", "/v1/score", huge).status, 413);
}

TEST_F(ServerIntegrationTest, DeadlineMapsTo504)
{
    auto c = client();
    const Response response = c.roundTrip(
        "POST", "/v1/score", line("timeout-ms=0.000001 seed=31337"));
    EXPECT_EQ(response.status, 504) << response.body;
    EXPECT_NE(response.body.find("\"timed_out\":true"),
              std::string::npos);
}

TEST_F(ServerIntegrationTest, FullAdmissionGateIs503WithRetryAfter)
{
    // Fill the gate through the test hook, so the next score request
    // is shed deterministically.
    server::AdmissionGate &gate = server_->gate();
    std::size_t held = 0;
    while (gate.tryEnter())
        ++held;
    ASSERT_EQ(held, gate.capacity());

    auto c = client();
    const Response shed =
        c.roundTrip("POST", "/v1/score", line("seed=1"));
    EXPECT_EQ(shed.status, 503);
    EXPECT_EQ(shed.header("retry-after", ""), "1");
    EXPECT_GE(gate.shedTotal(), 1u);
    // Health and metrics stay responsive while scoring is shedding.
    EXPECT_EQ(c.roundTrip("GET", "/healthz").status, 200);

    for (std::size_t i = 0; i < held; ++i)
        gate.leave();
    EXPECT_EQ(c.roundTrip("POST", "/v1/score", line("seed=1")).status,
              200);
}

TEST_F(ServerIntegrationTest, BatchAnswersOneResultPerLine)
{
    const std::string manifest = line("id=good1 seed=1") + "\n" +
                                 "# comment\n" +
                                 "scores=/no/such.csv features=" +
                                 featuresPath_ +
                                 " machine-a=mA machine-b=mB\n" +
                                 line("id=good2 seed=2") + "\n";
    auto c = client();
    const Response response =
        c.roundTrip("POST", "/v1/batch", manifest);
    ASSERT_EQ(response.status, 200) << response.body;

    std::vector<std::string> result_lines;
    for (const std::string &raw : str::split(response.body, '\n')) {
        if (!str::trim(raw).empty())
            result_lines.push_back(raw);
    }
    ASSERT_EQ(result_lines.size(), 3u);
    EXPECT_NE(result_lines[0].find("\"ok\":true"), std::string::npos);
    EXPECT_NE(result_lines[1].find("\"ok\":false"), std::string::npos)
        << "bad line must fail alone";
    EXPECT_NE(result_lines[2].find("\"ok\":true"), std::string::npos);
}

TEST_F(ServerIntegrationTest, KeepAliveServesManyRequestsOnOneSocket)
{
    auto c = client();
    for (int i = 0; i < 20; ++i)
        ASSERT_EQ(c.roundTrip("GET", "/healthz").status, 200);
    EXPECT_TRUE(c.connected());
    const auto snapshot = server_->metrics().snapshot(0, 1);
    EXPECT_EQ(snapshot.connectionsAccepted, 1u);
}

TEST_F(ServerIntegrationTest, StopDrainsInFlightRequestBeforeExit)
{
    // A slow request (big SOM step budget) sent just before stop():
    // the graceful drain must answer it, never cut the connection.
    int status = 0;
    std::string body;
    std::thread in_flight([&] {
        server::HttpClient c("127.0.0.1", server_->port());
        const Response response = c.roundTrip(
            "POST", "/v1/score", line("som-steps=20000 seed=5"));
        status = response.status;
        body = response.body;
    });
    // Give the request time to be accepted and reach the engine.
    std::this_thread::sleep_for(std::chrono::milliseconds(150));
    server_->stop();
    in_flight.join();
    EXPECT_EQ(status, 200) << body;
}

} // namespace
