/**
 * @file
 * Loopback tests for the server resilience layer: degraded-mode stale
 * serving when the gate is full, the watchdog rescuing a connection
 * from a stuck engine worker, the circuit breaker fast-failing after
 * consecutive hard failures, and the breaker-aware /healthz states.
 */

#include <chrono>
#include <cstdio>
#include <functional>
#include <gtest/gtest.h>
#include <memory>
#include <thread>
#include <unistd.h>

#include "src/server/client.h"
#include "src/server/server.h"
#include "src/util/fault.h"
#include "src/util/file.h"

namespace {

using namespace hiermeans;
using Response = server::HttpResponseParser::Response;

class ServerResilienceTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        fault::reset();
        const std::string stem = "/tmp/hiermeans_resilience_test_" +
                                 std::to_string(::getpid());
        scoresPath_ = stem + "_scores.csv";
        featuresPath_ = stem + "_features.csv";
        util::writeFile(scoresPath_, "workload,mA,mB\n"
                                     "w0,1.0,2.0\n"
                                     "w1,2.0,1.0\n"
                                     "w2,1.5,1.5\n"
                                     "w3,3.0,1.0\n"
                                     "w4,1.0,3.0\n"
                                     "w5,2.5,2.5\n");
        util::writeFile(featuresPath_, "workload,f0,f1,f2\n"
                                       "w0,0.1,1.0,-0.5\n"
                                       "w1,0.9,-1.0,0.5\n"
                                       "w2,0.2,0.8,-0.4\n"
                                       "w3,0.8,-0.9,0.6\n"
                                       "w4,-0.7,0.1,1.2\n"
                                       "w5,-0.6,0.2,1.1\n");
    }

    void
    TearDown() override
    {
        if (server_)
            server_->stop();
        fault::reset();
        std::remove(scoresPath_.c_str());
        std::remove(featuresPath_.c_str());
    }

    void
    startServer(const std::function<void(server::Server::Config &)>
                    &tweak = {})
    {
        server::Server::Config config;
        config.port = 0;
        config.engine.threads = 2;
        config.queueDepth = 2;
        config.connectionThreads = 6;
        // Small hysteresis window so a handful of sheds moves the
        // health state within one test.
        config.health.windowSize = 8;
        config.health.minSamples = 4;
        if (tweak)
            tweak(config);
        server_ = std::make_unique<server::Server>(config);
        server_->start();
    }

    std::string
    line(const std::string &extra = "") const
    {
        return "scores=" + scoresPath_ + " features=" + featuresPath_ +
               " machine-a=mA machine-b=mB som-steps=150" +
               (extra.empty() ? "" : " " + extra);
    }

    server::HttpClient
    client() const
    {
        return server::HttpClient("127.0.0.1", server_->port());
    }

    /** Occupy every admission slot via the test hook. */
    std::size_t
    fillGate()
    {
        server::AdmissionGate &gate = server_->gate();
        std::size_t held = 0;
        while (gate.tryEnter())
            ++held;
        return held;
    }

    void
    drainGate(std::size_t held)
    {
        for (std::size_t i = 0; i < held; ++i)
            server_->gate().leave();
    }

    std::string scoresPath_;
    std::string featuresPath_;
    std::unique_ptr<server::Server> server_;
};

TEST_F(ServerResilienceTest, FullGateServesStaleCachedScores)
{
    startServer();
    auto c = client();

    // Warm the cache with a fresh score.
    const Response fresh =
        c.roundTrip("POST", "/v1/score", line("seed=80 id=warm"));
    ASSERT_EQ(fresh.status, 200) << fresh.body;
    EXPECT_EQ(fresh.header("x-hiermeans-stale", ""), "");

    const std::size_t held = fillGate();
    ASSERT_GT(held, 0u);

    // Same line while saturated: degraded mode answers from the cache
    // and says so.
    const Response stale =
        c.roundTrip("POST", "/v1/score", line("seed=80 id=warm"));
    EXPECT_EQ(stale.status, 200) << stale.body;
    EXPECT_EQ(stale.header("x-hiermeans-stale", ""), "1");
    EXPECT_EQ(stale.header("x-hiermeans-source", ""), "cache");

    // An uncached line has nothing stale to fall back on: 503.
    const Response shed =
        c.roundTrip("POST", "/v1/score", line("seed=81"));
    EXPECT_EQ(shed.status, 503);
    EXPECT_EQ(shed.header("retry-after", ""), "1");

    drainGate(held);
    const auto snapshot = server_->metrics().snapshot(0, 1);
    EXPECT_GE(snapshot.staleServed, 1u);
}

TEST_F(ServerResilienceTest, StaleServingCanBeDisabled)
{
    startServer([](server::Server::Config &config) {
        config.serveStale = false;
    });
    auto c = client();
    ASSERT_EQ(c.roundTrip("POST", "/v1/score", line("seed=80")).status,
              200);
    const std::size_t held = fillGate();
    const Response shed =
        c.roundTrip("POST", "/v1/score", line("seed=80"));
    EXPECT_EQ(shed.status, 503)
        << "no-stale mode must shed even cached lines";
    drainGate(held);
}

TEST_F(ServerResilienceTest, StaleBodyMatchesTheFreshScore)
{
    startServer();
    auto c = client();
    const Response fresh =
        c.roundTrip("POST", "/v1/score", line("seed=82 id=r1"));
    ASSERT_EQ(fresh.status, 200) << fresh.body;

    const std::size_t held = fillGate();
    const Response stale =
        c.roundTrip("POST", "/v1/score", line("seed=82 id=r1"));
    ASSERT_EQ(stale.status, 200);
    drainGate(held);

    // Strip the volatile fields; everything else must be identical to
    // the fresh answer (this is the chaos harness's invariant too).
    const auto canonical = [](std::string body) {
        for (const char *key : {"\"wall_ms\":", "\"served_by\":"}) {
            const std::size_t at = body.find(key);
            if (at == std::string::npos)
                continue;
            std::size_t end = body.find(',', at);
            if (end == std::string::npos)
                end = body.find('}', at);
            body.erase(at, end - at + 1);
        }
        return body;
    };
    EXPECT_EQ(canonical(fresh.body), canonical(stale.body));
}

TEST_F(ServerResilienceTest, WatchdogRescuesAStuckWorkerWith504)
{
    startServer([](server::Server::Config &config) {
        config.watchdog.pollMillis = 10.0;
        config.watchdog.graceMillis = 50.0;
    });
    // The engine worker wedges for 3 s; the request's own deadline is
    // 100 ms. The cooperative timeout cannot fire while the pipeline
    // is stuck, so the watchdog (deadline + grace) must answer.
    fault::configure("engine.stall=always@3000");
    auto c = client();
    const Response response = c.roundTrip(
        "POST", "/v1/score", line("seed=83 timeout-ms=100"));
    EXPECT_EQ(response.status, 504) << response.body;
    EXPECT_NE(response.body.find("watchdog"), std::string::npos)
        << response.body;

    const auto snapshot = server_->metrics().snapshot(0, 1);
    EXPECT_GE(snapshot.watchdogTrips, 1u);
    EXPECT_GE(snapshot.timeouts504, 1u);

    // The rescued connection keeps serving; the wedged engine task is
    // somebody else's (abandoned) problem.
    const Response health = c.roundTrip("GET", "/healthz");
    EXPECT_EQ(health.status, 200);
    fault::reset();
}

TEST_F(ServerResilienceTest, BreakerOpensAfterConsecutiveFailures)
{
    startServer([](server::Server::Config &config) {
        config.breaker.failureThreshold = 2;
        config.breaker.openMillis = 60000.0; // stays open for the test.
    });
    auto c = client();

    // Two engine-level timeouts (distinct seeds dodge the cache) are
    // hard failures: the circuit opens.
    for (int i = 0; i < 2; ++i) {
        const Response response = c.roundTrip(
            "POST", "/v1/score",
            line("timeout-ms=0.000001 seed=" + std::to_string(90 + i)));
        ASSERT_EQ(response.status, 504) << response.body;
    }
    EXPECT_EQ(server_->breaker().state(),
              server::CircuitBreaker::State::Open);

    // Fast-fail: no engine work, 503 with a Retry-After.
    const Response fast =
        c.roundTrip("POST", "/v1/score", line("seed=95"));
    EXPECT_EQ(fast.status, 503);
    EXPECT_FALSE(fast.header("retry-after", "").empty());

    const auto snapshot = server_->metrics().snapshot(0, 1);
    EXPECT_GE(snapshot.breakerFastFail, 1u);
    EXPECT_GE(server_->breaker().opens(), 1u);
    // The /metrics body carries the breaker gauges (the Server fills
    // them in; a bare ServerMetrics snapshot cannot).
    const Response rendered = c.roundTrip("GET", "/metrics");
    ASSERT_EQ(rendered.status, 200);
    EXPECT_NE(rendered.body.find(
                  "hiermeans_server_breaker_state{state=\"open\"} 1"),
              std::string::npos);

    // An open breaker degrades /healthz even though the gate is idle.
    const Response health = c.roundTrip("GET", "/healthz");
    EXPECT_EQ(health.status, 200);
    EXPECT_NE(health.body.find("degraded"), std::string::npos);
    EXPECT_EQ(health.header("x-hiermeans-health", ""), "degraded");
}

TEST_F(ServerResilienceTest, OpenBreakerStillServesStaleScores)
{
    startServer([](server::Server::Config &config) {
        config.breaker.failureThreshold = 2;
        config.breaker.openMillis = 60000.0;
    });
    auto c = client();
    ASSERT_EQ(
        c.roundTrip("POST", "/v1/score", line("seed=85 id=keep")).status,
        200);
    for (int i = 0; i < 2; ++i) {
        ASSERT_EQ(c.roundTrip("POST", "/v1/score",
                              line("timeout-ms=0.000001 seed=" +
                                   std::to_string(96 + i)))
                      .status,
                  504);
    }
    ASSERT_EQ(server_->breaker().state(),
              server::CircuitBreaker::State::Open);

    const Response stale =
        c.roundTrip("POST", "/v1/score", line("seed=85 id=keep"));
    EXPECT_EQ(stale.status, 200) << stale.body;
    EXPECT_EQ(stale.header("x-hiermeans-stale", ""), "1");
}

TEST_F(ServerResilienceTest, RecoveredProbeClosesTheBreaker)
{
    startServer([](server::Server::Config &config) {
        config.breaker.failureThreshold = 1;
        config.breaker.openMillis = 50.0;
    });
    auto c = client();
    ASSERT_EQ(c.roundTrip("POST", "/v1/score",
                          line("timeout-ms=0.000001 seed=97"))
                  .status,
              504);
    ASSERT_EQ(server_->breaker().state(),
              server::CircuitBreaker::State::Open);

    // After the open window a healthy request is let through as the
    // half-open probe; its success closes the circuit.
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
    const Response probe =
        c.roundTrip("POST", "/v1/score", line("seed=98"));
    EXPECT_EQ(probe.status, 200) << probe.body;
    EXPECT_EQ(server_->breaker().state(),
              server::CircuitBreaker::State::Closed);
}

TEST_F(ServerResilienceTest, HealthzReportsShedDrivenDegradation)
{
    startServer();
    auto c = client();
    ASSERT_EQ(c.roundTrip("GET", "/healthz").status, 200);

    const std::size_t held = fillGate();
    // Enough shed outcomes to dominate the (small) health window.
    for (int i = 0; i < 8; ++i)
        ASSERT_EQ(c.roundTrip("POST", "/v1/score",
                              line("seed=" + std::to_string(200 + i)))
                      .status,
                  503);
    const Response degraded = c.roundTrip("GET", "/healthz");
    EXPECT_EQ(degraded.status, 200);
    EXPECT_NE(degraded.body.find("degraded"), std::string::npos);
    drainGate(held);

    // Healthy traffic flushes the window; hysteresis recovers to ok.
    for (int i = 0; i < 8; ++i)
        ASSERT_EQ(c.roundTrip("POST", "/v1/score", line("seed=80"))
                      .status,
                  200);
    const Response recovered = c.roundTrip("GET", "/healthz");
    EXPECT_EQ(recovered.status, 200);
    EXPECT_NE(recovered.body.find("ok"), std::string::npos);
}

TEST_F(ServerResilienceTest, DrainingHealthzAnswers503)
{
    startServer();
    auto c = client();
    ASSERT_EQ(c.roundTrip("GET", "/healthz").status, 200);

    server_->health().setDraining();
    const Response draining = c.roundTrip("GET", "/healthz");
    EXPECT_EQ(draining.status, 503);
    EXPECT_NE(draining.body.find("draining"), std::string::npos);
    EXPECT_EQ(draining.header("x-hiermeans-health", ""), "draining");
}

TEST_F(ServerResilienceTest, MetricsBodyCarriesResilienceCounters)
{
    startServer();
    auto c = client();
    ASSERT_EQ(c.roundTrip("POST", "/v1/score", line("seed=80")).status,
              200);
    const Response metrics = c.roundTrip("GET", "/metrics");
    ASSERT_EQ(metrics.status, 200);
    EXPECT_NE(metrics.body.find("hiermeans_server_stale_served_total"),
              std::string::npos);
    EXPECT_NE(
        metrics.body.find("hiermeans_server_watchdog_trips_total"),
        std::string::npos);
    EXPECT_NE(
        metrics.body.find("hiermeans_server_breaker_fast_fail_total"),
        std::string::npos);
    EXPECT_NE(metrics.body.find(
                  "hiermeans_server_health_state{state=\"ok\"} 1"),
              std::string::npos);
}

} // namespace
