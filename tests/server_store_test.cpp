/**
 * Loopback tests of the persistence surface of the serving layer:
 * suite registration (/v1/suites) and suite-reference score bodies,
 * the persisted score history (/v1/history), forced snapshots, the
 * store section of /metrics (lint-clean), and the warm-start
 * guarantee — a restarted daemon answers a previously-scored request
 * from cache without re-executing the pipeline.
 */

#include <cstdio>
#include <gtest/gtest.h>
#include <memory>
#include <unistd.h>

#include "src/obs/prometheus.h"
#include "src/server/client.h"
#include "src/server/json.h"
#include "src/server/server.h"
#include "src/util/file.h"

namespace {

using namespace hiermeans;
using Response = server::HttpResponseParser::Response;

class ServerStoreTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        stem_ = "/tmp/hiermeans_server_store_test_" +
                std::to_string(::getpid());
        dataDir_ = stem_ + "_data";
        wipeDataDir();
        scoresPath_ = stem_ + "_scores.csv";
        featuresPath_ = stem_ + "_features.csv";
        util::writeFile(scoresPath_, "workload,mA,mB\n"
                                     "w0,1.0,2.0\n"
                                     "w1,2.0,1.0\n"
                                     "w2,1.5,1.5\n"
                                     "w3,3.0,1.0\n"
                                     "w4,1.0,3.0\n"
                                     "w5,2.5,2.5\n");
        util::writeFile(featuresPath_, "workload,f0,f1,f2\n"
                                       "w0,0.1,1.0,-0.5\n"
                                       "w1,0.9,-1.0,0.5\n"
                                       "w2,0.2,0.8,-0.4\n"
                                       "w3,0.8,-0.9,0.6\n"
                                       "w4,-0.7,0.1,1.2\n"
                                       "w5,-0.6,0.2,1.1\n");
        startServer();
    }

    void
    TearDown() override
    {
        if (server_ != nullptr)
            server_->stop();
        server_.reset();
        std::remove(scoresPath_.c_str());
        std::remove(featuresPath_.c_str());
        wipeDataDir();
    }

    void
    startServer()
    {
        server::Server::Config config;
        config.port = 0;
        config.engine.threads = 2;
        config.queueDepth = 4;
        config.connectionThreads = 8;
        config.store.dataDir = dataDir_;
        config.store.fsyncEvery = 1;
        config.store.snapshotEvery = 0; // snapshot on stop() only.
        server_ = std::make_unique<server::Server>(config);
        server_->start();
    }

    void
    restartServer()
    {
        server_->stop();
        server_.reset();
        startServer();
    }

    void
    wipeDataDir()
    {
        if (!util::fileExists(dataDir_))
            return;
        for (const std::string &name : util::listDir(dataDir_))
            util::removeFile(dataDir_ + "/" + name);
        ::rmdir(dataDir_.c_str());
    }

    std::string
    line(const std::string &extra = "") const
    {
        return "scores=" + scoresPath_ + " features=" + featuresPath_ +
               " machine-a=mA machine-b=mB som-steps=150" +
               (extra.empty() ? "" : " " + extra);
    }

    server::HttpClient
    client() const
    {
        return server::HttpClient("127.0.0.1", server_->port());
    }

    std::string stem_;
    std::string dataDir_;
    std::string scoresPath_;
    std::string featuresPath_;
    std::unique_ptr<server::Server> server_;
};

TEST_F(ServerStoreTest, RegisterListAndResolveSuites)
{
    auto c = client();
    const Response registered = c.roundTrip(
        "POST", "/v1/suites?name=nightly", line("seed=3"));
    ASSERT_EQ(registered.status, 200) << registered.body;
    EXPECT_EQ(server::json::findNumber(registered.body, "version"), 1.0);
    EXPECT_EQ(server::json::findString(registered.body, "name"),
              "nightly");

    // A second registration bumps the version.
    const Response again = c.roundTrip(
        "POST", "/v1/suites?name=nightly", line("seed=4"));
    ASSERT_EQ(again.status, 200);
    EXPECT_EQ(server::json::findNumber(again.body, "version"), 2.0);

    const Response list = c.roundTrip("GET", "/v1/suites");
    ASSERT_EQ(list.status, 200);
    EXPECT_NE(list.body.find("\"nightly\""), std::string::npos);
    EXPECT_NE(list.body.find("\"latest\":2"), std::string::npos);
}

TEST_F(ServerStoreTest, RegisterValidatesNameAndManifest)
{
    auto c = client();
    EXPECT_EQ(c.roundTrip("POST", "/v1/suites", line()).status, 400)
        << "name is required";
    EXPECT_EQ(c.roundTrip("POST", "/v1/suites?name=bad/name", line())
                  .status,
              400);
    const Response junk =
        c.roundTrip("POST", "/v1/suites?name=ok", "not a manifest");
    EXPECT_EQ(junk.status, 400) << "manifest must parse before storing";
    EXPECT_EQ(c.roundTrip("POST", "/v1/suites?name=ok", "").status, 400);
}

TEST_F(ServerStoreTest, SuiteReferenceBodyExpandsAndRecordsHistory)
{
    auto c = client();
    ASSERT_EQ(c.roundTrip("POST", "/v1/suites?name=nightly",
                          line("seed=11 id=night-run"))
                  .status,
              200);

    const Response scored =
        c.roundTrip("POST", "/v1/score", "suite=nightly");
    ASSERT_EQ(scored.status, 200) << scored.body;
    EXPECT_EQ(scored.header("x-hiermeans-source", ""), "pipeline");

    const Response history =
        c.roundTrip("GET", "/v1/history?suite=nightly");
    ASSERT_EQ(history.status, 200) << history.body;
    EXPECT_EQ(server::json::findNumber(history.body, "count"), 1.0);
    EXPECT_NE(history.body.find("\"id\":\"night-run\""),
              std::string::npos)
        << history.body;

    // Unknown suites are a 404 with the typed error code.
    const Response unknown =
        c.roundTrip("POST", "/v1/score", "suite=nope");
    EXPECT_EQ(unknown.status, 404);
    EXPECT_NE(unknown.body.find("suite_unknown"), std::string::npos);
    EXPECT_EQ(c.roundTrip("GET", "/v1/history?suite=nope").status, 404);
}

TEST_F(ServerStoreTest, SuiteReferenceHonorsVersionLineAndOverrides)
{
    auto c = client();
    ASSERT_EQ(c.roundTrip("POST", "/v1/suites?name=multi",
                          line("seed=1 id=line-one") + "\n" +
                              line("seed=2 id=line-two") + "\n")
                  .status,
              200);

    // Two manifest lines: /v1/score needs a line= selector.
    EXPECT_EQ(c.roundTrip("POST", "/v1/score", "suite=multi").status,
              400);
    const Response second =
        c.roundTrip("POST", "/v1/score", "suite=multi line=2");
    ASSERT_EQ(second.status, 200) << second.body;
    EXPECT_NE(second.body.find("line-two"), std::string::npos);
    EXPECT_EQ(
        c.roundTrip("POST", "/v1/score", "suite=multi line=7").status,
        400);

    // Override tokens appended after the stored line win (last-wins).
    const Response overridden = c.roundTrip(
        "POST", "/v1/score", "suite=multi line=1 id=overridden");
    ASSERT_EQ(overridden.status, 200);
    EXPECT_NE(overridden.body.find("overridden"), std::string::npos);

    // An explicit @version pins the older manifest.
    ASSERT_EQ(c.roundTrip("POST", "/v1/suites?name=multi",
                          line("seed=9 id=v2-only"))
                  .status,
              200);
    const Response pinned = c.roundTrip(
        "POST", "/v1/score", "suite=multi@1 line=1");
    ASSERT_EQ(pinned.status, 200) << pinned.body;
    EXPECT_NE(pinned.body.find("line-one"), std::string::npos);
    EXPECT_EQ(
        c.roundTrip("POST", "/v1/score", "suite=multi@9").status, 404);
}

TEST_F(ServerStoreTest, BatchRunsTheWholeSuiteDocument)
{
    auto c = client();
    ASSERT_EQ(c.roundTrip("POST", "/v1/suites?name=pair",
                          line("seed=21 id=b-one") + "\n" +
                              line("seed=22 id=b-two") + "\n")
                  .status,
              200);
    const Response batch =
        c.roundTrip("POST", "/v1/batch", "suite=pair");
    ASSERT_EQ(batch.status, 200) << batch.body;
    EXPECT_NE(batch.body.find("b-one"), std::string::npos);
    EXPECT_NE(batch.body.find("b-two"), std::string::npos);

    const Response history =
        c.roundTrip("GET", "/v1/history?suite=pair");
    ASSERT_EQ(history.status, 200);
    EXPECT_EQ(server::json::findNumber(history.body, "count"), 2.0);
}

TEST_F(ServerStoreTest, AdHocScoresLandInTheUnnamedRing)
{
    auto c = client();
    ASSERT_EQ(c.roundTrip("POST", "/v1/score", line("seed=31")).status,
              200);
    const Response history = c.roundTrip("GET", "/v1/history");
    ASSERT_EQ(history.status, 200) << history.body;
    EXPECT_EQ(server::json::findNumber(history.body, "count"), 1.0);

    // Cache hits do not re-record: the same line again adds nothing.
    ASSERT_EQ(c.roundTrip("POST", "/v1/score", line("seed=31")).status,
              200);
    const Response after = c.roundTrip("GET", "/v1/history");
    EXPECT_EQ(server::json::findNumber(after.body, "count"), 1.0)
        << "only pipeline-executed scores are persisted";
}

TEST_F(ServerStoreTest, SnapshotEndpointCompactsOnDemand)
{
    auto c = client();
    ASSERT_EQ(c.roundTrip("POST", "/v1/score", line("seed=41")).status,
              200);
    const Response snapshot =
        c.roundTrip("POST", "/v1/admin/snapshot");
    ASSERT_EQ(snapshot.status, 200) << snapshot.body;
    const auto sequence =
        server::json::findNumber(snapshot.body, "sequence");
    ASSERT_TRUE(sequence.has_value());
    EXPECT_GE(*sequence, 1.0);
    EXPECT_EQ(util::fileSize(dataDir_ + "/wal.log"), 0u)
        << "the WAL is truncated once the snapshot commits";
}

TEST_F(ServerStoreTest, WarmStartServesRecoveredScoresFromCache)
{
    auto c = client();
    const Response first =
        c.roundTrip("POST", "/v1/score", line("seed=51"));
    ASSERT_EQ(first.status, 200) << first.body;
    EXPECT_EQ(first.header("x-hiermeans-source", ""), "pipeline");
    const auto ratio = server::json::findNumber(first.body, "ratio");

    restartServer();
    EXPECT_GE(server_->warmedCacheEntries(), 1u);
    EXPECT_EQ(server_->storeRecovery().outcome,
              store::RecoveryOutcome::Clean);

    auto c2 = client();
    const Response warmed =
        c2.roundTrip("POST", "/v1/score", line("seed=51"));
    ASSERT_EQ(warmed.status, 200) << warmed.body;
    EXPECT_EQ(warmed.header("x-hiermeans-source", ""), "cache")
        << "a restarted daemon must not re-execute the pipeline";
    EXPECT_EQ(server::json::findNumber(warmed.body, "ratio"), ratio)
        << "the recovered score must be bit-identical";
    EXPECT_EQ(server_->engine().metrics().snapshot().executions, 0u)
        << "the warm hit must not re-run the pipeline";
    EXPECT_EQ(server_->engine().metrics().snapshot().cacheHits, 1u);

    // The cache hit is visible in /metrics, as is the warm count.
    const Response metrics = c2.roundTrip("GET", "/metrics");
    ASSERT_EQ(metrics.status, 200);
    EXPECT_NE(metrics.body.find("hiermeans_store_warmed_cache_entries 1"),
              std::string::npos)
        << metrics.body.substr(0, 2000);
}

TEST_F(ServerStoreTest, HistorySurvivesARestart)
{
    auto c = client();
    ASSERT_EQ(c.roundTrip("POST", "/v1/suites?name=keep",
                          line("seed=61 id=kept-run"))
                  .status,
              200);
    ASSERT_EQ(c.roundTrip("POST", "/v1/score", "suite=keep").status,
              200);

    restartServer();
    auto c2 = client();
    const Response history =
        c2.roundTrip("GET", "/v1/history?suite=keep");
    ASSERT_EQ(history.status, 200) << history.body;
    EXPECT_EQ(server::json::findNumber(history.body, "count"), 1.0);
    EXPECT_NE(history.body.find("kept-run"), std::string::npos);
    const Response list = c2.roundTrip("GET", "/v1/suites");
    EXPECT_NE(list.body.find("\"keep\""), std::string::npos);
}

TEST_F(ServerStoreTest, StoreMetricsAreExposedAndLintClean)
{
    auto c = client();
    ASSERT_EQ(c.roundTrip("POST", "/v1/score", line("seed=71")).status,
              200);
    const Response metrics = c.roundTrip("GET", "/metrics");
    ASSERT_EQ(metrics.status, 200);
    for (const char *name : {"hiermeans_store_wal_records_total",
                             "hiermeans_store_wal_size_bytes",
                             "hiermeans_store_recovery_outcome",
                             "hiermeans_store_last_sequence",
                             "hiermeans_store_history_entries"})
        EXPECT_NE(metrics.body.find(name), std::string::npos) << name;
    EXPECT_NE(metrics.body.find("state=\"clean_start\"} 1"),
              std::string::npos)
        << "the recovery outcome gauge must be one-hot";
    const std::vector<std::string> issues =
        obs::lintExposition(metrics.body);
    for (const std::string &issue : issues)
        ADD_FAILURE() << "exposition lint: " << issue;
}

TEST_F(ServerStoreTest, WithoutADataDirStoreEndpointsAnswer503)
{
    server::Server::Config config;
    config.port = 0;
    config.engine.threads = 1;
    server::Server bare(config);
    bare.start();
    server::HttpClient c("127.0.0.1", bare.port());
    for (const auto &[method, target] :
         std::vector<std::pair<std::string, std::string>>{
             {"POST", "/v1/suites?name=x"},
             {"GET", "/v1/suites"},
             {"GET", "/v1/history"},
             {"POST", "/v1/admin/snapshot"}}) {
        const Response response = c.roundTrip(method, target, "a=b");
        EXPECT_EQ(response.status, 503) << target;
        EXPECT_NE(response.body.find("store_disabled"),
                  std::string::npos)
            << target;
    }
    // A suite-reference score body is equally impossible.
    const Response scored = c.roundTrip("POST", "/v1/score", "suite=x");
    EXPECT_EQ(scored.status, 503);
    EXPECT_NE(scored.body.find("store_disabled"), std::string::npos);
    // The store metric section stays out of the exposition entirely.
    const Response metrics = c.roundTrip("GET", "/metrics");
    EXPECT_EQ(metrics.body.find("hiermeans_store_"), std::string::npos);
    bare.stop();
}

} // namespace
