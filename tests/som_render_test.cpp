/**
 * @file
 * Tests for the ASCII SOM map rendering (Figures 3/5/7 equivalents).
 */

#include <gtest/gtest.h>

#include <algorithm>

#include "src/som/render.h"
#include "src/som/umatrix.h"
#include "src/util/error.h"

namespace {

using hiermeans::linalg::Matrix;
using hiermeans::linalg::Vector;
using namespace hiermeans::som;

SelfOrganizingMap
tinyMap()
{
    const Matrix data = Matrix::fromRows(
        {{0.0, 0.0}, {10.0, 10.0}, {0.0, 10.0}});
    SomConfig config;
    config.rows = 4;
    config.cols = 5;
    config.steps = 400;
    return SelfOrganizingMap::train(data, config);
}

TEST(SomRenderTest, MapContainsTitleLegendAndTags)
{
    const auto map = tinyMap();
    std::vector<Placement> placements = {
        {"alpha", 0}, {"beta", 7}, {"gamma", 19}};
    const std::string out =
        renderDistributionMap(map, placements, "My Map");
    EXPECT_NE(out.find("My Map"), std::string::npos);
    EXPECT_NE(out.find("Legend:"), std::string::npos);
    EXPECT_NE(out.find("a = alpha"), std::string::npos);
    EXPECT_NE(out.find("c = gamma"), std::string::npos);
    EXPECT_NE(out.find("[a]"), std::string::npos);
    EXPECT_NE(out.find("Dimension 1"), std::string::npos);
    EXPECT_NE(out.find("Dimension 2"), std::string::npos);
}

TEST(SomRenderTest, SharedCellShowsOccupantCount)
{
    const auto map = tinyMap();
    std::vector<Placement> placements = {
        {"one", 5}, {"two", 5}, {"three", 5}};
    const std::string out = renderDistributionMap(map, placements, "T");
    EXPECT_NE(out.find("[3]"), std::string::npos);
    EXPECT_NE(out.find("shared cell"), std::string::npos);
}

TEST(SomRenderTest, OutOfRangeUnitThrows)
{
    const auto map = tinyMap();
    std::vector<Placement> placements = {{"x", 999}};
    EXPECT_THROW(renderDistributionMap(map, placements, "T"),
                 hiermeans::InvalidArgument);
}

TEST(SomRenderTest, DataOverloadMatchesBmus)
{
    const auto map = tinyMap();
    const Matrix data =
        Matrix::fromRows({{0.0, 0.0}, {10.0, 10.0}});
    const std::string out =
        renderDistributionMap(map, data, {"p", "q"}, "T");
    EXPECT_NE(out.find("p"), std::string::npos);
    EXPECT_NE(out.find("q"), std::string::npos);
    EXPECT_THROW(renderDistributionMap(map, data, {"p"}, "T"),
                 hiermeans::InvalidArgument);
}

TEST(SomRenderTest, UMatrixRenderHasScaleFooter)
{
    const auto map = tinyMap();
    const std::string out = renderUMatrix(uMatrix(map), "U");
    EXPECT_NE(out.find("U"), std::string::npos);
    EXPECT_NE(out.find("scale:"), std::string::npos);
    // One line per row plus title and footer.
    EXPECT_EQ(std::count(out.begin(), out.end(), '\n'),
              static_cast<long>(map.topology().rows()) + 2);
}

} // namespace
