/**
 * @file
 * Tests for the self-organizing map.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include <set>

#include "src/linalg/distance.h"
#include "src/som/som.h"
#include "src/util/error.h"
#include "src/util/rng.h"

namespace {

using hiermeans::InvalidArgument;
using hiermeans::linalg::Matrix;
using hiermeans::linalg::Vector;
using namespace hiermeans::som;

/** Two well-separated Gaussian blobs in 4-D. */
Matrix
twoBlobs(std::size_t per_blob = 10, double separation = 10.0)
{
    hiermeans::rng::Engine engine(11);
    std::vector<Vector> rows;
    for (std::size_t i = 0; i < per_blob; ++i) {
        rows.push_back({engine.normal(0.0, 0.3), engine.normal(0.0, 0.3),
                        engine.normal(0.0, 0.3),
                        engine.normal(0.0, 0.3)});
    }
    for (std::size_t i = 0; i < per_blob; ++i) {
        rows.push_back({separation + engine.normal(0.0, 0.3),
                        separation + engine.normal(0.0, 0.3),
                        engine.normal(0.0, 0.3),
                        engine.normal(0.0, 0.3)});
    }
    return Matrix::fromRows(rows);
}

SomConfig
smallConfig()
{
    SomConfig config;
    config.rows = 6;
    config.cols = 6;
    config.steps = 1500;
    config.seed = 42;
    return config;
}

TEST(SomTest, TrainingIsDeterministic)
{
    const Matrix data = twoBlobs();
    const auto a = SelfOrganizingMap::train(data, smallConfig());
    const auto b = SelfOrganizingMap::train(data, smallConfig());
    EXPECT_TRUE(a.weights().approxEqual(b.weights(), 0.0));
    EXPECT_EQ(a.bmuAll(data), b.bmuAll(data));
}

TEST(SomTest, QuantizationErrorDecreasesOverTraining)
{
    const Matrix data = twoBlobs();
    SomConfig config = smallConfig();
    config.init = InitKind::Random;
    auto map = SelfOrganizingMap::initialize(data, config);
    const double before = map.quantizationError(data);
    map.trainToCompletion();
    const double after = map.quantizationError(data);
    EXPECT_LT(after, before);
    EXPECT_EQ(map.stepsDone(), config.steps);
}

TEST(SomTest, SeparatedBlobsLandOnDistantUnits)
{
    const Matrix data = twoBlobs();
    const auto map = SelfOrganizingMap::train(data, smallConfig());
    const Matrix pos = map.mapAll(data);

    // Mean within-blob grid distance must be well below the
    // between-blob distance: the map preserves the cluster structure.
    double intra = 0.0, inter = 0.0;
    std::size_t intra_n = 0, inter_n = 0;
    const std::size_t n = data.rows();
    for (std::size_t i = 0; i < n; ++i) {
        for (std::size_t j = i + 1; j < n; ++j) {
            const double dx = pos(i, 0) - pos(j, 0);
            const double dy = pos(i, 1) - pos(j, 1);
            const double d = std::sqrt(dx * dx + dy * dy);
            if ((i < n / 2) == (j < n / 2)) {
                intra += d;
                ++intra_n;
            } else {
                inter += d;
                ++inter_n;
            }
        }
    }
    intra /= static_cast<double>(intra_n);
    inter /= static_cast<double>(inter_n);
    EXPECT_LT(intra * 2.0, inter);
}

TEST(SomTest, BmuIsNearestUnit)
{
    const Matrix data = twoBlobs();
    const auto map = SelfOrganizingMap::train(data, smallConfig());
    const Vector x = data.row(3);
    const std::size_t bmu = map.bestMatchingUnit(x);
    const double bmu_dist =
        hiermeans::linalg::euclidean(x, map.weight(bmu));
    for (std::size_t u = 0; u < map.topology().unitCount(); ++u) {
        EXPECT_LE(bmu_dist,
                  hiermeans::linalg::euclidean(x, map.weight(u)) + 1e-12);
    }
}

TEST(SomTest, MapAllShapesAndRange)
{
    const Matrix data = twoBlobs();
    const auto map = SelfOrganizingMap::train(data, smallConfig());
    const Matrix pos = map.mapAll(data);
    EXPECT_EQ(pos.rows(), data.rows());
    EXPECT_EQ(pos.cols(), 2u);
    for (std::size_t r = 0; r < pos.rows(); ++r) {
        EXPECT_GE(pos(r, 0), 0.0);
        EXPECT_LT(pos(r, 0), 6.0);
        EXPECT_GE(pos(r, 1), 0.0);
        EXPECT_LT(pos(r, 1), 6.0);
    }
}

TEST(SomTest, PcaInitSpreadsWeightsAlongData)
{
    const Matrix data = twoBlobs();
    SomConfig config = smallConfig();
    config.init = InitKind::Pca;
    const auto map = SelfOrganizingMap::initialize(data, config);
    // Untrained PCA-initialized map should already separate the blobs
    // reasonably: quantization error below the data diameter.
    EXPECT_LT(map.quantizationError(data), 15.0);
    // Corner units differ (the init is not constant).
    EXPECT_FALSE(hiermeans::linalg::approxEqual(
        map.weight(0), map.weight(map.topology().unitCount() - 1),
        1e-6));
}

TEST(SomTest, TopographicErrorInUnitRange)
{
    const Matrix data = twoBlobs();
    const auto map = SelfOrganizingMap::train(data, smallConfig());
    const double te = map.topographicError(data);
    EXPECT_GE(te, 0.0);
    EXPECT_LE(te, 1.0);
}

TEST(SomTest, IdenticalInputsShareBmu)
{
    // Five identical vectors (the SciMark2 situation in Figure 7) must
    // map to one unit.
    std::vector<Vector> rows(5, Vector{1.0, 2.0, 3.0});
    rows.push_back({-5.0, 0.0, 1.0});
    rows.push_back({8.0, -2.0, 0.0});
    const Matrix data = Matrix::fromRows(rows);
    const auto map = SelfOrganizingMap::train(data, smallConfig());
    const auto bmus = map.bmuAll(data);
    const std::set<std::size_t> first_five(bmus.begin(),
                                           bmus.begin() + 5);
    EXPECT_EQ(first_five.size(), 1u);
}

TEST(SomTest, ConfigValidation)
{
    const Matrix data = twoBlobs();
    SomConfig bad = smallConfig();
    bad.steps = 0;
    EXPECT_THROW(SelfOrganizingMap::train(data, bad), InvalidArgument);
    bad = smallConfig();
    bad.alphaEnd = 2.0 * bad.alphaStart;
    EXPECT_THROW(SelfOrganizingMap::train(data, bad), InvalidArgument);
    EXPECT_THROW(SelfOrganizingMap::train(Matrix(), smallConfig()),
                 InvalidArgument);
}

TEST(SomTest, MismatchedQueryDimensionThrows)
{
    const Matrix data = twoBlobs();
    const auto map = SelfOrganizingMap::train(data, smallConfig());
    EXPECT_THROW(map.bestMatchingUnit({1.0, 2.0}), InvalidArgument);
}

} // namespace
