/**
 * @file
 * Tests for standardization and constant-column filtering.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "src/linalg/standardize.h"
#include "src/util/error.h"

namespace {

using namespace hiermeans::linalg;

TEST(StandardizeTest, ZScoresHaveZeroMeanUnitVariance)
{
    const Matrix obs =
        Matrix::fromRows({{1.0, 10.0}, {2.0, 20.0}, {3.0, 30.0}});
    const StandardizeResult r = standardizeColumns(obs);
    for (std::size_t c = 0; c < 2; ++c) {
        double mean = 0.0;
        for (std::size_t row = 0; row < 3; ++row)
            mean += r.standardized(row, c);
        EXPECT_NEAR(mean / 3.0, 0.0, 1e-12);
        double var = 0.0;
        for (std::size_t row = 0; row < 3; ++row)
            var += r.standardized(row, c) * r.standardized(row, c);
        EXPECT_NEAR(var / 2.0, 1.0, 1e-12); // n-1 denominator.
    }
}

TEST(StandardizeTest, ParamsRecorded)
{
    const Matrix obs = Matrix::fromRows({{2.0}, {4.0}});
    const StandardizeResult r = standardizeColumns(obs);
    EXPECT_NEAR(r.params.means[0], 3.0, 1e-12);
    EXPECT_NEAR(r.params.stddevs[0], std::sqrt(2.0), 1e-12);
}

TEST(StandardizeTest, ZeroVarianceColumnBecomesZero)
{
    const Matrix obs = Matrix::fromRows({{5.0, 1.0}, {5.0, 2.0}});
    const StandardizeResult r = standardizeColumns(obs);
    EXPECT_DOUBLE_EQ(r.standardized(0, 0), 0.0);
    EXPECT_DOUBLE_EQ(r.standardized(1, 0), 0.0);
}

TEST(StandardizeTest, ApplyToNewData)
{
    const Matrix train = Matrix::fromRows({{0.0}, {2.0}});
    const StandardizeResult r = standardizeColumns(train);
    const Matrix applied =
        applyStandardization(Matrix::fromRows({{4.0}}), r.params);
    // mean 1, sd sqrt(2): (4-1)/sqrt(2).
    EXPECT_NEAR(applied(0, 0), 3.0 / std::sqrt(2.0), 1e-12);
    EXPECT_THROW(applyStandardization(Matrix(1, 2), r.params),
                 hiermeans::InvalidArgument);
}

TEST(DropConstantColumnsTest, DropsExactConstants)
{
    const Matrix obs =
        Matrix::fromRows({{1.0, 7.0, 3.0}, {2.0, 7.0, 4.0}});
    const ColumnFilterResult r = dropConstantColumns(obs);
    EXPECT_EQ(r.keptColumns, (std::vector<std::size_t>{0, 2}));
    EXPECT_EQ(r.droppedColumns, (std::vector<std::size_t>{1}));
    EXPECT_EQ(r.filtered.cols(), 2u);
    EXPECT_DOUBLE_EQ(r.filtered(1, 1), 4.0);
}

TEST(DropConstantColumnsTest, ToleranceControlsNearConstants)
{
    const Matrix obs =
        Matrix::fromRows({{1.0, 1.000001}, {1.0, 1.000002}});
    EXPECT_EQ(dropConstantColumns(obs, 1e-12).keptColumns.size(), 1u);
    EXPECT_EQ(dropConstantColumns(obs, 1e-3).keptColumns.size(), 0u);
    EXPECT_THROW(dropConstantColumns(obs, -1.0),
                 hiermeans::InvalidArgument);
}

TEST(DropConstantColumnsTest, SingleRowDropsEverything)
{
    // One observation: no variance anywhere.
    const Matrix obs = Matrix::fromRows({{1.0, 2.0}});
    EXPECT_TRUE(dropConstantColumns(obs).keptColumns.empty());
}

TEST(MinMaxScaleTest, ScalesIntoUnitInterval)
{
    const Matrix obs = Matrix::fromRows({{0.0, 5.0}, {10.0, 5.0}});
    const Matrix scaled = minMaxScaleColumns(obs);
    EXPECT_DOUBLE_EQ(scaled(0, 0), 0.0);
    EXPECT_DOUBLE_EQ(scaled(1, 0), 1.0);
    // Zero-range column maps to 0.5.
    EXPECT_DOUBLE_EQ(scaled(0, 1), 0.5);
}

} // namespace
