/**
 * The durable-record codec: CRC32 framing, the canonical BinaryWriter/
 * BinaryReader encoding, and — most importantly — that every way a
 * frame can be damaged (flipped payload byte, torn header, torn
 * payload, wrong magic, unknown type) stops a FrameReader at the last
 * valid byte instead of feeding garbage downstream.
 */

#include <gtest/gtest.h>

#include "src/store/record.h"
#include "src/util/error.h"

namespace {

using namespace hiermeans;
using namespace hiermeans::store;

TEST(Crc32, MatchesTheIeeeCheckValue)
{
    // The canonical CRC-32/IEEE check value for "123456789".
    EXPECT_EQ(crc32("123456789"), 0xCBF43926u);
    EXPECT_EQ(crc32(""), 0u);
    EXPECT_NE(crc32("a"), crc32("b"));
}

TEST(BinaryCodec, RoundTripsEveryScalarAndVectorType)
{
    BinaryWriter writer;
    writer.u8(0xAB);
    writer.u32(0xDEADBEEF);
    writer.u64(0x0123456789ABCDEFull);
    writer.f64(3.14159265358979);
    writer.str("hello \xc3\xa9 world");
    writer.str("");
    writer.u64Vec({1, 2, 3});
    writer.f64Vec({-0.5, 1e300});

    BinaryReader reader(writer.bytes());
    EXPECT_EQ(reader.u8(), 0xAB);
    EXPECT_EQ(reader.u32(), 0xDEADBEEFu);
    EXPECT_EQ(reader.u64(), 0x0123456789ABCDEFull);
    EXPECT_EQ(reader.f64(), 3.14159265358979);
    EXPECT_EQ(reader.str(), "hello \xc3\xa9 world");
    EXPECT_EQ(reader.str(), "");
    EXPECT_EQ(reader.u64Vec(), (std::vector<std::uint64_t>{1, 2, 3}));
    EXPECT_EQ(reader.f64Vec(), (std::vector<double>{-0.5, 1e300}));
    EXPECT_TRUE(reader.done());
    EXPECT_NO_THROW(reader.expectDone("test payload"));
}

TEST(BinaryCodec, EncodingIsCanonical)
{
    const auto encode = [] {
        BinaryWriter writer;
        writer.u64(42);
        writer.str("suite");
        writer.f64(1.0 / 3.0);
        return writer.take();
    };
    EXPECT_EQ(encode(), encode());
}

TEST(BinaryCodec, ReadingPastTheEndThrows)
{
    BinaryWriter writer;
    writer.u32(7);
    BinaryReader reader(writer.bytes());
    EXPECT_THROW(reader.u64(), InvalidArgument);

    // A string whose length prefix overruns the buffer.
    BinaryWriter liar;
    liar.u32(1000); // claims 1000 bytes follow; none do.
    BinaryReader hungry(liar.bytes());
    EXPECT_THROW(hungry.str(), InvalidArgument);
}

TEST(BinaryCodec, ExpectDoneRejectsTrailingGarbage)
{
    BinaryWriter writer;
    writer.u8(1);
    writer.u8(2);
    BinaryReader reader(writer.bytes());
    reader.u8();
    EXPECT_FALSE(reader.done());
    EXPECT_THROW(reader.expectDone("short payload"), InvalidArgument);
}

TEST(FrameReader, RoundTripsASequenceOfRecords)
{
    std::string stream;
    stream += frameRecord(RecordType::SuiteRegistered, "alpha");
    stream += frameRecord(RecordType::ScoreRecorded, "");
    stream += frameRecord(RecordType::ConfigChanged, std::string(1000, 'x'));

    FrameReader reader(stream);
    Record record;
    ASSERT_TRUE(reader.next(record));
    EXPECT_EQ(record.type, RecordType::SuiteRegistered);
    EXPECT_EQ(record.payload, "alpha");
    ASSERT_TRUE(reader.next(record));
    EXPECT_EQ(record.type, RecordType::ScoreRecorded);
    EXPECT_EQ(record.payload, "");
    ASSERT_TRUE(reader.next(record));
    EXPECT_EQ(record.type, RecordType::ConfigChanged);
    EXPECT_EQ(record.payload.size(), 1000u);
    EXPECT_FALSE(reader.next(record));
    EXPECT_FALSE(reader.sawCorruption());
    EXPECT_EQ(reader.validBytes(), stream.size());
}

TEST(FrameReader, FrameOverheadMatchesTheLayout)
{
    EXPECT_EQ(frameRecord(RecordType::ScoreRecorded, "abc").size(),
              kFrameOverhead + 3);
}

TEST(FrameReader, StopsAtAFlippedPayloadByte)
{
    const std::string good =
        frameRecord(RecordType::SuiteRegistered, "first");
    std::string stream =
        good + frameRecord(RecordType::ScoreRecorded, "second");
    stream[good.size() + kFrameOverhead + 2] ^= 0x40; // corrupt "second".

    FrameReader reader(stream);
    Record record;
    ASSERT_TRUE(reader.next(record));
    EXPECT_EQ(record.payload, "first");
    EXPECT_FALSE(reader.next(record));
    EXPECT_TRUE(reader.sawCorruption());
    EXPECT_NE(reader.corruption().find("CRC"), std::string::npos)
        << reader.corruption();
    EXPECT_EQ(reader.validBytes(), good.size())
        << "the valid prefix must end before the corrupt frame";
}

TEST(FrameReader, StopsAtATornHeader)
{
    const std::string good =
        frameRecord(RecordType::SuiteRegistered, "kept");
    const std::string torn =
        frameRecord(RecordType::ScoreRecorded, "lost");
    // Only 6 of the 13 header bytes made it to disk.
    const std::string stream = good + torn.substr(0, 6);

    FrameReader reader(stream);
    Record record;
    ASSERT_TRUE(reader.next(record));
    EXPECT_FALSE(reader.next(record));
    EXPECT_TRUE(reader.sawCorruption());
    EXPECT_EQ(reader.validBytes(), good.size());
}

TEST(FrameReader, StopsAtATornPayload)
{
    const std::string good =
        frameRecord(RecordType::SuiteRegistered, "kept");
    const std::string torn =
        frameRecord(RecordType::ScoreRecorded, "lost payload bytes");
    // Header complete, payload cut short.
    const std::string stream = good + torn.substr(0, torn.size() - 5);

    FrameReader reader(stream);
    Record record;
    ASSERT_TRUE(reader.next(record));
    EXPECT_FALSE(reader.next(record));
    EXPECT_TRUE(reader.sawCorruption());
    EXPECT_NE(reader.corruption().find("torn"), std::string::npos)
        << reader.corruption();
    EXPECT_EQ(reader.validBytes(), good.size());
}

TEST(FrameReader, StopsAtABadMagic)
{
    std::string stream = frameRecord(RecordType::SuiteRegistered, "x");
    stream[0] = 'Z';
    FrameReader reader(stream);
    Record record;
    EXPECT_FALSE(reader.next(record));
    EXPECT_TRUE(reader.sawCorruption());
    EXPECT_NE(reader.corruption().find("magic"), std::string::npos)
        << reader.corruption();
    EXPECT_EQ(reader.validBytes(), 0u);
}

TEST(FrameReader, StopsAtAnUnknownRecordType)
{
    // A well-formed frame (valid CRC) of a type this codec version
    // does not know: a future-format record must stop replay, not
    // crash it or be silently skipped.
    EXPECT_FALSE(knownRecordType(99));
    EXPECT_TRUE(knownRecordType(
        static_cast<std::uint8_t>(RecordType::SnapshotHeader)));
    const std::string stream =
        frameRecord(static_cast<RecordType>(99), "future");
    FrameReader reader(stream);
    Record record;
    EXPECT_FALSE(reader.next(record));
    EXPECT_TRUE(reader.sawCorruption());
    EXPECT_NE(reader.corruption().find("unknown"), std::string::npos)
        << reader.corruption();
}

TEST(FrameReader, EmptyBufferIsACleanEnd)
{
    FrameReader reader("");
    Record record;
    EXPECT_FALSE(reader.next(record));
    EXPECT_FALSE(reader.sawCorruption());
    EXPECT_EQ(reader.validBytes(), 0u);
}

} // namespace
