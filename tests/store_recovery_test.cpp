/**
 * StateStore end to end: registry versioning, history-ring retention,
 * best-effort score recording under injected WAL faults, snapshot
 * compaction, and — the heart of the durability contract — crash
 * recovery. Crashes are simulated by copying the live data directory
 * aside mid-flight (no close(), no final snapshot) and opening a
 * second store on the copy; the recovered state must be bit-identical
 * to the committed pre-crash state (StateStore::encodeStateBody).
 */

#include <gtest/gtest.h>
#include <unistd.h>

#include "src/store/store.h"
#include "src/util/error.h"
#include "src/util/fault.h"
#include "src/util/file.h"

namespace {

using namespace hiermeans;
using namespace hiermeans::store;

scoring::ScoreReport
smallReport(double ratio)
{
    scoring::ScoreReport report;
    scoring::ScoreReportRow row;
    row.clusterCount = 2;
    row.partition = scoring::Partition::fromLabels({0, 1, 1});
    row.scoreA = ratio;
    row.scoreB = 1.0;
    row.ratio = ratio;
    report.rows.push_back(row);
    report.plainRatio = ratio;
    return report;
}

ScoreRecord
score(const std::string &id, std::uint64_t fingerprint, double ratio,
      const std::string &suite = "", bool with_report = true)
{
    ScoreRecord record;
    record.suite = suite;
    record.suiteVersion = suite.empty() ? 0 : 1;
    record.id = id;
    record.fingerprint = fingerprint;
    record.recommendedK = 2;
    record.ratio = ratio;
    record.plainRatio = ratio * 0.98;
    record.wallMillis = 5.0;
    if (with_report)
        record.report = smallReport(ratio);
    return record;
}

class StoreRecoveryTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        stem_ = "/tmp/hiermeans_store_test_" +
                std::to_string(::getpid());
        wipe(stem_);
        wipe(stem_ + "_crash");
    }

    void
    TearDown() override
    {
        fault::reset();
        wipe(stem_);
        wipe(stem_ + "_crash");
    }

    static void
    wipe(const std::string &dir)
    {
        if (!util::fileExists(dir))
            return;
        for (const std::string &name : util::listDir(dir))
            util::removeFile(dir + "/" + name);
        ::rmdir(dir.c_str());
    }

    /**
     * The crash simulator: copy the live data dir byte for byte —
     * including any torn WAL tail — without giving the store a chance
     * to close (which would snapshot and tidy up).
     */
    std::string
    crashCopy() const
    {
        const std::string to = stem_ + "_crash";
        wipe(to);
        util::ensureDir(to);
        for (const std::string &name : util::listDir(stem_))
            util::writeFile(to + "/" + name,
                            util::readFile(stem_ + "/" + name));
        return to;
    }

    StateStore::Config
    config(const std::string &dir, std::size_t snapshot_every = 0) const
    {
        StateStore::Config c;
        c.dataDir = dir;
        c.fsyncEvery = 1;
        c.snapshotEvery = snapshot_every;
        return c;
    }

    std::string stem_;
};

TEST_F(StoreRecoveryTest, FreshDirIsACleanStart)
{
    StateStore store(config(stem_));
    const RecoveryInfo info = store.open();
    EXPECT_EQ(info.outcome, RecoveryOutcome::CleanStart);
    EXPECT_EQ(info.lastSequence, 0u);
    EXPECT_TRUE(store.isOpen());
    EXPECT_TRUE(util::fileExists(stem_)) << "data dir created";
}

TEST_F(StoreRecoveryTest, RegistryVersionsMonotonically)
{
    StateStore store(config(stem_));
    store.open();
    EXPECT_EQ(store.registerSuite("spec", "scores=a.csv").version, 1u);
    EXPECT_EQ(store.registerSuite("spec", "scores=b.csv").version, 2u);
    EXPECT_EQ(store.registerSuite("other", "scores=c.csv").version, 1u);

    const auto newest = store.resolveSuite("spec");
    ASSERT_TRUE(newest.has_value());
    EXPECT_EQ(newest->version, 2u);
    EXPECT_EQ(newest->manifest, "scores=b.csv");
    const auto pinned = store.resolveSuite("spec", 1);
    ASSERT_TRUE(pinned.has_value());
    EXPECT_EQ(pinned->manifest, "scores=a.csv");
    EXPECT_FALSE(store.resolveSuite("spec", 9).has_value());
    EXPECT_FALSE(store.resolveSuite("nope").has_value());
    EXPECT_EQ(store.suites().size(), 2u);
}

TEST_F(StoreRecoveryTest, HistoryRingTrimsToCapacity)
{
    StateStore::Config c = config(stem_);
    c.limits.historyCapacity = 3;
    StateStore store(c);
    store.open();
    for (int i = 0; i < 5; ++i)
        ASSERT_TRUE(store.recordScore(score(
            "run-" + std::to_string(i), 0x100 + i, 1.0 + 0.1 * i)));

    const std::vector<HistoryEntry> ring = store.history("");
    ASSERT_EQ(ring.size(), 3u);
    EXPECT_EQ(ring.front().id, "run-2") << "oldest entries evicted";
    EXPECT_EQ(ring.back().id, "run-4");
    EXPECT_LT(ring.front().sequence, ring.back().sequence);
}

TEST_F(StoreRecoveryTest, RecordScoreIsBestEffortUnderWalFaults)
{
    StateStore store(config(stem_));
    store.open();
    ASSERT_TRUE(store.recordScore(score("ok", 0x1, 1.1)));
    const std::uint64_t seq = store.lastSequence();

    fault::configure("store.wal.append=once");
    EXPECT_FALSE(store.recordScore(score("dropped", 0x2, 1.2)))
        << "a WAL failure must be reported, not thrown";
    EXPECT_EQ(store.lastSequence(), seq)
        << "the failed record must not touch the state";
    EXPECT_EQ(store.metrics().walAppendFailures, 1u);
    EXPECT_TRUE(store.history("").size() == 1u);

    EXPECT_TRUE(store.recordScore(score("after", 0x3, 1.3)));
    EXPECT_EQ(store.history("").size(), 2u);
}

TEST_F(StoreRecoveryTest, RegistrationThrowsOnWalFailure)
{
    StateStore store(config(stem_));
    store.open();
    fault::configure("store.wal.append=once");
    EXPECT_THROW(store.registerSuite("spec", "scores=a.csv"), Error)
        << "an unpersisted registration must not be acknowledged";
    EXPECT_TRUE(store.suites().empty());
    fault::reset();
    EXPECT_EQ(store.registerSuite("spec", "scores=a.csv").version, 1u);
}

TEST_F(StoreRecoveryTest, CrashWithoutCloseLosesNoCommittedRecord)
{
    StateStore live(config(stem_));
    live.open();
    live.registerSuite("spec", "scores=a.csv machine-a=mA");
    for (int i = 0; i < 4; ++i)
        ASSERT_TRUE(live.recordScore(score("run-" + std::to_string(i),
                                           0x200 + i, 1.0 + 0.01 * i,
                                           "spec")));
    const std::string committed = live.encodeStateBody();

    // SIGKILL equivalent: the WAL alone must reconstruct everything.
    StateStore recovered(config(crashCopy()));
    const RecoveryInfo info = recovered.open();
    EXPECT_EQ(info.outcome, RecoveryOutcome::Clean);
    EXPECT_FALSE(info.snapshotLoaded);
    EXPECT_EQ(info.walApplied, 5u);
    EXPECT_EQ(recovered.encodeStateBody(), committed)
        << "recovered state must be bit-identical to the committed one";
    EXPECT_EQ(recovered.scoreRecords().size(), 4u)
        << "full reports survive for warm start";
}

TEST_F(StoreRecoveryTest, TornFinalRecordIsDetectedAndTruncated)
{
    StateStore live(config(stem_));
    live.open();
    ASSERT_TRUE(live.recordScore(score("committed", 0x301, 1.25)));
    const std::string committed = live.encodeStateBody();

    // The crash lands mid-append: half a frame reaches the WAL.
    fault::configure("store.wal.torn=once");
    EXPECT_FALSE(live.recordScore(score("torn", 0x302, 1.5)));
    fault::reset();

    StateStore recovered(config(crashCopy()));
    const RecoveryInfo info = recovered.open();
    EXPECT_EQ(info.outcome, RecoveryOutcome::TruncatedTail);
    EXPECT_TRUE(info.walTorn);
    EXPECT_GT(info.walBytesDiscarded, 0u);
    EXPECT_EQ(recovered.encodeStateBody(), committed)
        << "the torn record is gone, the committed prefix intact";
    EXPECT_EQ(recovered.metrics().recoveryDiscardedBytes,
              info.walBytesDiscarded);

    // The truncation is real: a third open sees a clean log.
    recovered.recordScore(score("fresh", 0x303, 1.6));
}

TEST_F(StoreRecoveryTest, GracefulCloseSnapshotsAndReopensClean)
{
    {
        StateStore store(config(stem_));
        store.open();
        store.registerSuite("spec", "scores=a.csv");
        ASSERT_TRUE(store.recordScore(score("r", 0x400, 1.3, "spec")));
        store.close();
    }
    EXPECT_EQ(listSnapshots(stem_).size(), 1u)
        << "close() must leave a final snapshot";
    EXPECT_EQ(util::fileSize(stem_ + "/wal.log"), 0u)
        << "the snapshot makes the WAL redundant";

    StateStore reopened(config(stem_));
    const RecoveryInfo info = reopened.open();
    EXPECT_EQ(info.outcome, RecoveryOutcome::Clean);
    EXPECT_TRUE(info.snapshotLoaded);
    EXPECT_EQ(info.walApplied, 0u);
    EXPECT_EQ(reopened.history("spec").size(), 1u);
    ASSERT_TRUE(reopened.resolveSuite("spec").has_value());
}

TEST_F(StoreRecoveryTest, SnapshotCadenceCompactsTheWal)
{
    StateStore store(config(stem_, /*snapshot_every=*/3));
    store.open();
    for (int i = 0; i < 7; ++i)
        ASSERT_TRUE(store.recordScore(
            score("run-" + std::to_string(i), 0x500 + i, 1.0)));

    const StoreMetrics metrics = store.metrics();
    EXPECT_EQ(metrics.snapshotsWritten, 2u) << "after records 3 and 6";
    EXPECT_EQ(listSnapshots(stem_).size(), 1u)
        << "compaction removes older generations";
    EXPECT_EQ(metrics.walRecords, 7u);
    EXPECT_LT(metrics.walSizeBytes, metrics.walBytes)
        << "the WAL was truncated at the last snapshot";
}

TEST_F(StoreRecoveryTest, SnapshotOverlapDoubleAppliesNothing)
{
    StateStore live(config(stem_));
    live.open();
    live.registerSuite("spec", "scores=a.csv");
    ASSERT_TRUE(live.recordScore(score("early", 0x600, 1.1, "spec")));
    const std::string preSnapshotWal =
        util::readFile(stem_ + "/wal.log");
    live.snapshotNow();
    ASSERT_TRUE(live.recordScore(score("late", 0x601, 1.2, "spec")));
    const std::string committed = live.encodeStateBody();

    // Crash between the snapshot rename and the WAL truncation is
    // simulated by gluing the pre-snapshot records back in front of
    // the tail: every one of them is at or below the snapshot's
    // baseline, so replay must skip them all.
    const std::string crash = crashCopy();
    util::writeFile(crash + "/wal.log",
                    preSnapshotWal +
                        util::readFile(crash + "/wal.log"));
    StateStore replayed(config(crash));
    const RecoveryInfo info = replayed.open();
    EXPECT_EQ(info.outcome, RecoveryOutcome::Clean);
    EXPECT_TRUE(info.snapshotLoaded);
    EXPECT_EQ(replayed.encodeStateBody(), committed);
    EXPECT_EQ(replayed.history("spec").size(), 2u)
        << "no duplicate history entries";
}

TEST_F(StoreRecoveryTest, CorruptSnapshotIsSkippedNeverFatal)
{
    StateStore live(config(stem_));
    live.open();
    ASSERT_TRUE(live.recordScore(score("one", 0x700, 1.0)));
    live.snapshotNow();
    ASSERT_TRUE(live.recordScore(score("two", 0x701, 1.1)));
    const std::uint64_t seq = live.lastSequence();
    live.snapshotNow(); // compaction deletes the first snapshot...

    const std::string crash = crashCopy();
    const std::string newest = snapshotFileName(seq);
    std::string damaged = util::readFile(crash + "/" + newest);
    damaged[damaged.size() - 3] ^= 0x11;
    util::writeFile(crash + "/" + newest, damaged);

    StateStore recovered(config(crash));
    const RecoveryInfo info = recovered.open();
    EXPECT_EQ(info.outcome, RecoveryOutcome::SnapshotFallback);
    EXPECT_EQ(info.snapshotsRejected, 1u);
    // Nothing older to fall back to here: recovery starts empty but
    // must still come up serving.
    EXPECT_TRUE(recovered.isOpen());
}

TEST_F(StoreRecoveryTest, ChangeConfigPersistsAcrossRecovery)
{
    StateStore live(config(stem_));
    live.open();
    live.changeConfig("history-capacity", "2");
    for (int i = 0; i < 4; ++i)
        ASSERT_TRUE(live.recordScore(
            score("run-" + std::to_string(i), 0x800 + i, 1.0)));
    EXPECT_EQ(live.history("").size(), 2u);
    EXPECT_THROW(live.changeConfig("no-such-key", "1"), Error);

    StateStore recovered(config(crashCopy()));
    recovered.open();
    EXPECT_EQ(recovered.history("").size(), 2u);
    EXPECT_EQ(recovered.encodeStateBody(), live.encodeStateBody());
}

TEST_F(StoreRecoveryTest, LatestFingerprintWinsForWarmStart)
{
    StateStore store(config(stem_));
    store.open();
    ASSERT_TRUE(store.recordScore(score("first", 0x900, 1.0)));
    ASSERT_TRUE(store.recordScore(score("again", 0x900, 1.0)));
    EXPECT_EQ(store.scoreRecords().size(), 1u)
        << "one warm-start entry per fingerprint";
    EXPECT_EQ(store.scoreRecords()[0].id, "again");
    EXPECT_EQ(store.history("").size(), 2u)
        << "history keeps both executions";
}

} // namespace
