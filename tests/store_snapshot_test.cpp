/**
 * Snapshot files: write/load round-trip, bit-identical canonical
 * encoding (snapshot -> load -> snapshot reproduces the same bytes),
 * fallback past a corrupted newest snapshot, generation cleanup, and
 * the store.snapshot.write fault point.
 */

#include <gtest/gtest.h>
#include <sys/stat.h>
#include <unistd.h>

#include "src/store/snapshot.h"
#include "src/util/error.h"
#include "src/util/fault.h"
#include "src/util/file.h"

namespace {

using namespace hiermeans;
using namespace hiermeans::store;

scoring::ScoreReport
smallReport(double ratio)
{
    scoring::ScoreReport report;
    scoring::ScoreReportRow row;
    row.clusterCount = 2;
    row.partition = scoring::Partition::fromLabels({0, 0, 1});
    row.scoreA = 2.0 * ratio;
    row.scoreB = 2.0;
    row.ratio = ratio;
    report.rows.push_back(row);
    report.plainA = 1.9 * ratio;
    report.plainB = 1.9;
    report.plainRatio = ratio * 0.97;
    return report;
}

/** A state with suites, full results and history-only entries. */
StoreState
populatedState()
{
    StoreState state;
    std::uint64_t seq = 0;
    state.apply({RecordType::SuiteRegistered,
                 encodeSuiteRegistered(
                     "alpha", {++seq, 1, "scores=a.csv machine-a=mA"})});
    state.apply({RecordType::SuiteRegistered,
                 encodeSuiteRegistered(
                     "alpha", {++seq, 2, "scores=a2.csv machine-a=mA"})});
    state.apply({RecordType::SuiteRegistered,
                 encodeSuiteRegistered(
                     "beta", {++seq, 1, "scores=b.csv machine-a=mA"})});
    for (int i = 0; i < 3; ++i) {
        ScoreRecord record;
        record.sequence = ++seq;
        record.suite = i == 2 ? "" : "alpha";
        record.suiteVersion = i == 2 ? 0 : 2;
        record.id = "run-" + std::to_string(i);
        record.fingerprint = 0x1000 + static_cast<std::uint64_t>(i);
        record.recommendedK = 2;
        record.ratio = 1.1 + 0.01 * i;
        record.plainRatio = 1.05;
        record.wallMillis = 12.5;
        if (i != 1) // run-1 stays history-only (report evicted).
            record.report = smallReport(record.ratio);
        state.apply(
            {RecordType::ScoreRecorded, encodeScoreRecorded(record)});
    }
    return state;
}

class StoreSnapshotTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        dir_ = "/tmp/hiermeans_snapshot_test_" +
               std::to_string(::getpid());
        wipe();
        util::ensureDir(dir_);
    }

    void
    TearDown() override
    {
        fault::reset();
        wipe();
    }

    void
    wipe()
    {
        if (!util::fileExists(dir_)) // stat(2): dirs count too.
            return;
        for (const std::string &name : util::listDir(dir_))
            util::removeFile(dir_ + "/" + name);
        ::rmdir(dir_.c_str());
    }

    std::string dir_;
};

TEST_F(StoreSnapshotTest, FileNamesSortChronologically)
{
    EXPECT_EQ(snapshotFileName(7), "snapshot.000000000007");
    EXPECT_LT(snapshotFileName(999), snapshotFileName(1000));
    EXPECT_LT(snapshotFileName(1), snapshotFileName(10));
}

TEST_F(StoreSnapshotTest, WriteThenLoadReproducesTheStateExactly)
{
    const StoreState original = populatedState();
    const std::string file = writeSnapshot(dir_, original);
    EXPECT_EQ(listSnapshots(dir_), std::vector<std::string>{file});

    StoreState recovered;
    const SnapshotLoad load = loadLatestSnapshot(dir_, recovered);
    ASSERT_TRUE(load.loaded);
    EXPECT_EQ(load.file, file);
    EXPECT_EQ(load.lastSequence, original.lastSequence());
    EXPECT_TRUE(load.rejected.empty());
    EXPECT_GT(load.records, 0u);

    EXPECT_EQ(recovered.lastSequence(), original.lastSequence());
    EXPECT_EQ(recovered.baseline(), original.lastSequence())
        << "an overlapping WAL tail must double-apply nothing";
    EXPECT_EQ(recovered.limits(), original.limits());
    EXPECT_EQ(recovered.encodeSnapshotBody(),
              original.encodeSnapshotBody())
        << "recovered state must be bit-identical";
    EXPECT_EQ(recovered.latestVersion("alpha"), 2u);
    EXPECT_EQ(recovered.history("alpha").size(), 2u);
    EXPECT_EQ(recovered.resultCount(), 2u); // run-1 was history-only.
}

TEST_F(StoreSnapshotTest, SnapshotLoadSnapshotIsIdempotent)
{
    const StoreState original = populatedState();
    writeSnapshot(dir_, original);
    const std::string bytes = util::readFile(
        dir_ + "/" + snapshotFileName(original.lastSequence()));

    StoreState recovered;
    ASSERT_TRUE(loadLatestSnapshot(dir_, recovered).loaded);
    const std::string again = dir_ + "_again";
    util::ensureDir(again);
    writeSnapshot(again, recovered);
    EXPECT_EQ(util::readFile(again + "/" +
                             snapshotFileName(original.lastSequence())),
              bytes)
        << "re-snapshotting a loaded state must reproduce the file";
    for (const std::string &name : util::listDir(again))
        util::removeFile(again + "/" + name);
    ::rmdir(again.c_str());
}

TEST_F(StoreSnapshotTest, LoadFallsBackPastACorruptNewestSnapshot)
{
    StoreState older = populatedState();
    writeSnapshot(dir_, older);

    // A newer snapshot that gets damaged on disk.
    StoreState newer = populatedState();
    ScoreRecord extra;
    extra.sequence = newer.nextSequence();
    extra.id = "newest";
    extra.fingerprint = 0x9999;
    extra.ratio = 1.5;
    extra.report = smallReport(1.5);
    newer.apply({RecordType::ScoreRecorded, encodeScoreRecorded(extra)});
    const std::string newest = writeSnapshot(dir_, newer);
    std::string damaged = util::readFile(dir_ + "/" + newest);
    damaged[damaged.size() / 2] ^= 0x5A;
    util::writeFile(dir_ + "/" + newest, damaged);

    StoreState recovered;
    const SnapshotLoad load = loadLatestSnapshot(dir_, recovered);
    ASSERT_TRUE(load.loaded);
    EXPECT_EQ(load.lastSequence, older.lastSequence());
    ASSERT_EQ(load.rejected.size(), 1u);
    EXPECT_EQ(load.rejected[0], newest);
    EXPECT_EQ(recovered.encodeSnapshotBody(),
              older.encodeSnapshotBody());
}

TEST_F(StoreSnapshotTest, LoadOnAnEmptyDirDoesNothing)
{
    StoreState state;
    const SnapshotLoad load = loadLatestSnapshot(dir_, state);
    EXPECT_FALSE(load.loaded);
    EXPECT_EQ(state.lastSequence(), 0u);
}

TEST_F(StoreSnapshotTest, ANonSnapshotFileInTheHeaderSlotIsRejected)
{
    util::writeFile(dir_ + "/" + snapshotFileName(5), "not a snapshot");
    StoreState state;
    const SnapshotLoad load = loadLatestSnapshot(dir_, state);
    EXPECT_FALSE(load.loaded);
    ASSERT_EQ(load.rejected.size(), 1u);
    EXPECT_EQ(state.lastSequence(), 0u);
}

TEST_F(StoreSnapshotTest, RemoveOldSnapshotsKeepsOnlyTheNewest)
{
    StoreState state = populatedState();
    writeSnapshot(dir_, state);
    const std::string older = snapshotFileName(state.lastSequence());

    ScoreRecord extra;
    extra.sequence = state.nextSequence();
    extra.id = "later";
    extra.fingerprint = 0xAAAA;
    extra.report = smallReport(1.2);
    state.apply({RecordType::ScoreRecorded, encodeScoreRecorded(extra)});
    const std::string newest = writeSnapshot(dir_, state);

    ASSERT_EQ(listSnapshots(dir_).size(), 2u);
    EXPECT_EQ(removeOldSnapshots(dir_, newest), 1u);
    EXPECT_EQ(listSnapshots(dir_), std::vector<std::string>{newest});
    EXPECT_NE(newest, older);
}

TEST_F(StoreSnapshotTest, WriteFaultThrowsAndLeavesNoFile)
{
    const StoreState state = populatedState();
    fault::configure("store.snapshot.write=once");
    EXPECT_THROW(writeSnapshot(dir_, state), Error);
    EXPECT_TRUE(listSnapshots(dir_).empty())
        << "a failed snapshot must not leave a partial file";
    // Disarmed, the same write succeeds.
    fault::reset();
    EXPECT_EQ(writeSnapshot(dir_, state),
              snapshotFileName(state.lastSequence()));
}

} // namespace
