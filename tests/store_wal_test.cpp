/**
 * WalWriter / replayWal: append-then-replay fidelity, the fsync
 * cadence, torn-tail detection + truncation, and the deterministic
 * fault points (store.wal.append, store.wal.torn, store.wal.fsync)
 * that the crash-recovery suite and chaos harness lean on.
 */

#include <cstdio>
#include <gtest/gtest.h>
#include <unistd.h>
#include <vector>

#include "src/store/wal.h"
#include "src/util/error.h"
#include "src/util/fault.h"
#include "src/util/file.h"

namespace {

using namespace hiermeans;
using namespace hiermeans::store;

class StoreWalTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        path_ = "/tmp/hiermeans_wal_test_" +
                std::to_string(::getpid()) + ".log";
        std::remove(path_.c_str());
    }

    void
    TearDown() override
    {
        fault::reset();
        std::remove(path_.c_str());
    }

    /** Replay into (type, payload) pairs. */
    std::pair<ReplayResult, std::vector<Record>>
    replay() const
    {
        std::vector<Record> records;
        const ReplayResult result = replayWal(
            path_, [&](const Record &r) { records.push_back(r); });
        return {result, records};
    }

    std::string path_;
};

TEST_F(StoreWalTest, MissingFileIsAnEmptyLog)
{
    const auto [result, records] = replay();
    EXPECT_EQ(result.records, 0u);
    EXPECT_EQ(result.totalBytes, 0u);
    EXPECT_FALSE(result.torn);
    EXPECT_TRUE(records.empty());
}

TEST_F(StoreWalTest, AppendedRecordsReplayInOrder)
{
    {
        WalWriter writer(path_, {});
        writer.append(RecordType::SuiteRegistered, "one");
        writer.append(RecordType::ScoreRecorded, "two");
        writer.append(RecordType::ConfigChanged, "three");
        EXPECT_EQ(writer.counters().records, 3u);
        EXPECT_EQ(writer.sizeBytes(), util::fileSize(path_));
    }
    const auto [result, records] = replay();
    EXPECT_FALSE(result.torn);
    ASSERT_EQ(records.size(), 3u);
    EXPECT_EQ(records[0].payload, "one");
    EXPECT_EQ(records[1].payload, "two");
    EXPECT_EQ(records[2].type, RecordType::ConfigChanged);
    EXPECT_EQ(result.validBytes, result.totalBytes);
}

TEST_F(StoreWalTest, ReopeningAppendsAfterExistingRecords)
{
    {
        WalWriter writer(path_, {});
        writer.append(RecordType::SuiteRegistered, "first run");
    }
    {
        WalWriter writer(path_, {});
        EXPECT_GT(writer.sizeBytes(), 0u) << "offset picked up on open";
        writer.append(RecordType::SuiteRegistered, "second run");
    }
    const auto [result, records] = replay();
    ASSERT_EQ(records.size(), 2u);
    EXPECT_EQ(records[1].payload, "second run");
    EXPECT_FALSE(result.torn);
}

TEST_F(StoreWalTest, FsyncCadenceIsHonored)
{
    {
        WalWriter every(path_, {.fsyncEvery = 1});
        for (int i = 0; i < 4; ++i)
            every.append(RecordType::ScoreRecorded, "r");
        EXPECT_EQ(every.counters().fsyncs, 4u);
    }
    std::remove(path_.c_str());
    {
        WalWriter third(path_, {.fsyncEvery = 3});
        for (int i = 0; i < 7; ++i)
            third.append(RecordType::ScoreRecorded, "r");
        EXPECT_EQ(third.counters().fsyncs, 2u); // after #3 and #6.
    }
    std::remove(path_.c_str());
    {
        WalWriter never(path_, {.fsyncEvery = 0});
        for (int i = 0; i < 5; ++i)
            never.append(RecordType::ScoreRecorded, "r");
        EXPECT_EQ(never.counters().fsyncs, 0u);
    }
}

TEST_F(StoreWalTest, AppendFaultFailsCleanlyAndRecovers)
{
    WalWriter writer(path_, {});
    writer.append(RecordType::SuiteRegistered, "committed");
    const std::uint64_t before = writer.sizeBytes();

    fault::configure("store.wal.append=once");
    EXPECT_THROW(writer.append(RecordType::ScoreRecorded, "doomed"),
                 InvalidArgument);
    EXPECT_EQ(writer.counters().appendFailures, 1u);
    EXPECT_EQ(writer.sizeBytes(), before)
        << "a failed append must not advance the offset";
    EXPECT_EQ(util::fileSize(path_), before);

    // The trigger was `once`: the next append goes through.
    writer.append(RecordType::ScoreRecorded, "after");
    const auto [result, records] = replay();
    EXPECT_FALSE(result.torn);
    ASSERT_EQ(records.size(), 2u);
    EXPECT_EQ(records[0].payload, "committed");
    EXPECT_EQ(records[1].payload, "after");
}

TEST_F(StoreWalTest, TornFaultLeavesATornTailTheWriterSelfHeals)
{
    WalWriter writer(path_, {});
    writer.append(RecordType::SuiteRegistered, "committed");
    const std::uint64_t good = writer.sizeBytes();

    // The simulated crash: half a frame reaches the file, the append
    // throws, and the garbage stays on disk.
    fault::configure("store.wal.torn=once");
    EXPECT_THROW(writer.append(RecordType::ScoreRecorded,
                               "torn away mid-write"),
                 InvalidArgument);
    EXPECT_GT(util::fileSize(path_), good) << "torn bytes left behind";
    {
        const auto [result, records] = replay();
        EXPECT_TRUE(result.torn);
        EXPECT_EQ(result.validBytes, good);
        ASSERT_EQ(records.size(), 1u);
    }

    // The next append truncates the torn tail before writing.
    writer.append(RecordType::ScoreRecorded, "healed");
    const auto [result, records] = replay();
    EXPECT_FALSE(result.torn);
    ASSERT_EQ(records.size(), 2u);
    EXPECT_EQ(records[1].payload, "healed");
}

TEST_F(StoreWalTest, FsyncFaultThrowsButTheFrameStaysDecodable)
{
    WalWriter writer(path_, {.fsyncEvery = 1});
    fault::configure("store.wal.fsync=once");
    EXPECT_THROW(writer.append(RecordType::ScoreRecorded, "r"),
                 InvalidArgument);
    // The frame was fully written before the fsync failed: durability
    // is in doubt (the caller treats the append as failed) but the
    // file is not torn, and later appends land after it cleanly.
    EXPECT_EQ(writer.counters().fsyncs, 0u);
    writer.append(RecordType::ScoreRecorded, "r2");
    const auto [result, records] = replay();
    EXPECT_FALSE(result.torn);
    ASSERT_EQ(records.size(), 2u);
}

TEST_F(StoreWalTest, TruncateWalTailCutsExternallyTornBytes)
{
    {
        WalWriter writer(path_, {});
        writer.append(RecordType::SuiteRegistered, "keep me");
    }
    // Crash damage from outside the writer: raw garbage at the tail.
    const std::string intact = util::readFile(path_);
    util::writeFile(path_, intact + "\x13garbage-not-a-frame");

    auto [torn, tornRecords] = replay();
    EXPECT_TRUE(torn.torn);
    EXPECT_EQ(torn.validBytes, intact.size());
    ASSERT_EQ(tornRecords.size(), 1u);

    truncateWalTail(path_, torn.validBytes);
    const auto [clean, records] = replay();
    EXPECT_FALSE(clean.torn);
    EXPECT_EQ(clean.totalBytes, intact.size());
    ASSERT_EQ(records.size(), 1u);
    EXPECT_EQ(records[0].payload, "keep me");
}

TEST_F(StoreWalTest, ResetDiscardsEverything)
{
    WalWriter writer(path_, {});
    writer.append(RecordType::ScoreRecorded, "soon gone");
    writer.reset();
    EXPECT_EQ(writer.sizeBytes(), 0u);
    EXPECT_EQ(util::fileSize(path_), 0u);
    writer.append(RecordType::ScoreRecorded, "fresh");
    const auto [result, records] = replay();
    ASSERT_EQ(records.size(), 1u);
    EXPECT_EQ(records[0].payload, "fresh");
    EXPECT_FALSE(result.torn);
}

} // namespace
