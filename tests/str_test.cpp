/**
 * @file
 * Tests for the string helpers.
 */

#include <gtest/gtest.h>

#include "src/util/error.h"
#include "src/util/str.h"

namespace {

using namespace hiermeans::str;

TEST(StrTest, FixedFormatsDecimals)
{
    EXPECT_EQ(fixed(1.23456, 2), "1.23");
    EXPECT_EQ(fixed(1.0, 0), "1");
    EXPECT_EQ(fixed(-2.5, 1), "-2.5");
    EXPECT_EQ(fixed(0.005, 2), "0.01"); // rounds half away per printf.
    EXPECT_THROW(fixed(1.0, -1), hiermeans::InvalidArgument);
}

TEST(StrTest, FixedWidthPads)
{
    EXPECT_EQ(fixedWidth(1.5, 2, 8), "    1.50");
    EXPECT_EQ(fixedWidth(123.456, 1, 4), "123.5");
}

TEST(StrTest, Padding)
{
    EXPECT_EQ(padLeft("ab", 5), "   ab");
    EXPECT_EQ(padRight("ab", 5), "ab   ");
    EXPECT_EQ(padLeft("abcdef", 3), "abcdef");
    EXPECT_EQ(center("ab", 6), "  ab  ");
    EXPECT_EQ(center("ab", 5), " ab  ");
}

TEST(StrTest, SplitKeepsEmptyFields)
{
    EXPECT_EQ(split("a,b,c", ','),
              (std::vector<std::string>{"a", "b", "c"}));
    EXPECT_EQ(split(",a,", ','),
              (std::vector<std::string>{"", "a", ""}));
    EXPECT_EQ(split("", ','), (std::vector<std::string>{""}));
}

TEST(StrTest, JoinRoundTripsSplit)
{
    const std::vector<std::string> parts = {"x", "y", "z"};
    EXPECT_EQ(join(parts, ","), "x,y,z");
    EXPECT_EQ(split(join(parts, ","), ','), parts);
    EXPECT_EQ(join({}, ","), "");
}

TEST(StrTest, Trim)
{
    EXPECT_EQ(trim("  hello \t\n"), "hello");
    EXPECT_EQ(trim("hello"), "hello");
    EXPECT_EQ(trim("   "), "");
    EXPECT_EQ(trim(""), "");
}

TEST(StrTest, ToLower)
{
    EXPECT_EQ(toLower("HeLLo123"), "hello123");
    EXPECT_EQ(toLower(""), "");
}

TEST(StrTest, StartsWith)
{
    EXPECT_TRUE(startsWith("--flag", "--"));
    EXPECT_FALSE(startsWith("-x", "--"));
    EXPECT_TRUE(startsWith("abc", ""));
    EXPECT_FALSE(startsWith("", "a"));
}

TEST(StrTest, Repeat)
{
    EXPECT_EQ(repeat('-', 4), "----");
    EXPECT_EQ(repeat('x', 0), "");
}

} // namespace
