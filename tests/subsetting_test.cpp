/**
 * @file
 * Tests for benchmark suite subsetting.
 */

#include <gtest/gtest.h>

#include "src/core/subsetting.h"
#include "src/util/error.h"

namespace {

using namespace hiermeans::core;
using hiermeans::InvalidArgument;
using hiermeans::linalg::Matrix;
using hiermeans::scoring::Partition;
using hiermeans::stats::MeanKind;

// Positions: cluster {0,1,2} around origin with 1 central, cluster
// {3,4} far away.
Matrix
positions()
{
    return Matrix::fromRows({{0.0, 0.0},
                             {1.0, 0.0},
                             {0.5, 0.0},   // medoid of {0,1,2}.
                             {10.0, 10.0}, // medoid of {3,4} (tie-break
                             {10.0, 11.0}  //  first by order).
    });
}

const Partition kPartition = Partition::fromGroups({{0, 1, 2}, {3, 4}});

TEST(SubsettingTest, MedoidPicksCentralMember)
{
    const std::vector<double> scores = {1.0, 2.0, 3.0, 4.0, 5.0};
    const SuiteSubset subset = subsetSuite(kPartition, positions(),
                                           scores,
                                           RepresentativeRule::Medoid);
    ASSERT_EQ(subset.representatives.size(), 2u);
    EXPECT_EQ(subset.representatives[0], 2u); // the central point.
    // {3,4}: both have equal total distance; ties keep the first.
    EXPECT_EQ(subset.representatives[1], 3u);
}

TEST(SubsettingTest, ScoreCentralPicksNearInnerMean)
{
    // Cluster {0,1,2} scores {1, 8, 3}: GM ~ 2.88 -> member 2 (3.0).
    const std::vector<double> scores = {1.0, 8.0, 3.0, 4.0, 4.1};
    const SuiteSubset subset = subsetSuite(
        kPartition, positions(), scores,
        RepresentativeRule::ScoreCentral);
    EXPECT_EQ(subset.representatives[0], 2u);
    EXPECT_EQ(subset.representatives[1], 3u); // |4.0 - gm(4,4.1)| least.
}

TEST(SubsettingTest, OneRepresentativePerCluster)
{
    const std::vector<double> scores(5, 1.0);
    const SuiteSubset subset =
        subsetSuite(kPartition, positions(), scores);
    EXPECT_EQ(subset.representatives.size(),
              kPartition.clusterCount());
    // Each representative belongs to its own cluster.
    for (std::size_t c = 0; c < subset.representatives.size(); ++c)
        EXPECT_EQ(kPartition.label(subset.representatives[c]), c);
}

TEST(SubsettingTest, NamesResolve)
{
    const std::vector<double> scores(5, 1.0);
    const SuiteSubset subset =
        subsetSuite(kPartition, positions(), scores);
    const auto names =
        subset.names({"a", "b", "c", "d", "e"});
    ASSERT_EQ(names.size(), 2u);
    EXPECT_EQ(names[0], "c");
}

TEST(SubsettingTest, FidelityExactWhenClustersHomogeneous)
{
    // All cluster members share a score: the subset mean equals both
    // the hierarchical and... (clusters vote once either way).
    const std::vector<double> scores = {2.0, 2.0, 2.0, 8.0, 8.0};
    const SuiteSubset subset =
        subsetSuite(kPartition, positions(), scores);
    const SubsetFidelity f =
        evaluateSubset(subset, MeanKind::Geometric, scores);
    EXPECT_NEAR(f.subsetMean, f.fullHierarchicalMean, 1e-12);
    EXPECT_NEAR(f.errorVsHierarchical, 0.0, 1e-12);
    // The plain mean differs: 2 appears three times.
    EXPECT_GT(f.errorVsPlain, 0.05);
}

TEST(SubsettingTest, SubsetTracksHierarchicalBetterThanPlain)
{
    // Heterogeneous clusters: subset mean should still sit nearer the
    // hierarchical mean than the plain mean does, because both weigh
    // clusters equally.
    const std::vector<double> scores = {1.8, 2.0, 2.2, 7.5, 8.5};
    const SuiteSubset subset = subsetSuite(
        kPartition, positions(), scores,
        RepresentativeRule::ScoreCentral);
    const SubsetFidelity f =
        evaluateSubset(subset, MeanKind::Geometric, scores);
    EXPECT_LT(f.errorVsHierarchical, f.errorVsPlain);
}

TEST(SubsettingTest, Validation)
{
    const std::vector<double> scores(5, 1.0);
    EXPECT_THROW(subsetSuite(kPartition, Matrix(3, 2), scores),
                 InvalidArgument);
    EXPECT_THROW(subsetSuite(kPartition, positions(), {1.0}),
                 InvalidArgument);
    SuiteSubset bogus;
    bogus.partition = kPartition;
    bogus.representatives = {0, 3};
    EXPECT_THROW(evaluateSubset(bogus, MeanKind::Geometric, {1.0}),
                 InvalidArgument);
    EXPECT_THROW(bogus.names({"a"}), InvalidArgument);
}

} // namespace
