/**
 * @file
 * Tests for benchmark suite composition and run orchestration.
 */

#include <gtest/gtest.h>

#include "src/stats/means.h"
#include "src/util/error.h"
#include "src/workload/paper_data.h"
#include "src/workload/suite.h"

namespace {

using namespace hiermeans::workload;
using hiermeans::InvalidArgument;
using hiermeans::stats::MeanKind;

TEST(SuiteTest, PaperSuiteComposition)
{
    const BenchmarkSuite suite = BenchmarkSuite::paperSuite();
    EXPECT_EQ(suite.profiles().size(), 13u);
    EXPECT_EQ(suite.machines().size(), 3u);
    EXPECT_EQ(suite.referenceIndex(), 2u);
    EXPECT_EQ(suite.workloadNames()[0], "jvm98.201.compress");
}

TEST(SuiteTest, RunProducesCompleteTable)
{
    const BenchmarkSuite suite = BenchmarkSuite::paperSuite();
    RunConfig config;
    config.runsPerWorkload = 3;
    const auto table = suite.run(config);
    EXPECT_TRUE(table.complete());
    EXPECT_EQ(table.workloadCount(), 13u);
    EXPECT_EQ(table.machineCount(), 3u);
}

TEST(SuiteTest, SimulatedSpeedupsMatchTable3)
{
    // With calibrated work and averaged runs, measured speedups land
    // within a percent of the published Table III values.
    const BenchmarkSuite suite = BenchmarkSuite::paperSuite();
    const auto table = suite.run(RunConfig{});
    const std::size_t a = table.machineIndex("A");
    const std::size_t b = table.machineIndex("B");
    const std::size_t ref = table.machineIndex("reference");
    const auto &t3 = paper::table3();
    for (std::size_t w = 0; w < 13; ++w) {
        EXPECT_NEAR(table.speedup(w, a, ref), t3[w].speedupA,
                    0.02 * t3[w].speedupA)
            << t3[w].workload;
        EXPECT_NEAR(table.speedup(w, b, ref), t3[w].speedupB,
                    0.02 * t3[w].speedupB)
            << t3[w].workload;
    }
}

TEST(SuiteTest, SimulatedGeomeanMatchesPaper)
{
    const BenchmarkSuite suite = BenchmarkSuite::paperSuite();
    const auto table = suite.run(RunConfig{});
    const std::size_t ref = table.machineIndex("reference");
    const double gm_a = table.plainScore(
        MeanKind::Geometric, table.machineIndex("A"), ref);
    const double gm_b = table.plainScore(
        MeanKind::Geometric, table.machineIndex("B"), ref);
    EXPECT_NEAR(gm_a, paper::kTable3GeomeanA, 0.02);
    EXPECT_NEAR(gm_b, paper::kTable3GeomeanB, 0.02);
    EXPECT_NEAR(gm_a / gm_b, paper::kTable3GeomeanRatio, 0.01);
}

TEST(SuiteTest, RunsAreSeedDeterministic)
{
    const BenchmarkSuite suite = BenchmarkSuite::paperSuite();
    RunConfig config;
    config.runsPerWorkload = 2;
    config.seed = 7;
    const auto t1 = suite.run(config);
    const auto t2 = suite.run(config);
    for (std::size_t w = 0; w < 13; ++w)
        for (std::size_t m = 0; m < 3; ++m)
            EXPECT_DOUBLE_EQ(t1.time(w, m), t2.time(w, m));
    config.seed = 8;
    const auto t3 = suite.run(config);
    EXPECT_NE(t1.time(0, 0), t3.time(0, 0));
}

TEST(SuiteTest, FromProfilesDerivesWork)
{
    std::vector<WorkloadProfile> profiles(2);
    profiles[0].name = "w0";
    profiles[0].workUnits = 50.0;
    profiles[1].name = "w1";
    profiles[1].workUnits = 100.0;
    const BenchmarkSuite suite = BenchmarkSuite::fromProfiles(
        profiles, paperMachines());
    EXPECT_EQ(suite.work().size(), 2u);
    EXPECT_GT(suite.work()[1].cpu, suite.work()[0].cpu);
    EXPECT_TRUE(suite.run(RunConfig{}).complete());
}

TEST(SuiteTest, RequiresExactlyOneReference)
{
    std::vector<WorkloadProfile> profiles(1);
    profiles[0].name = "w";
    profiles[0].workUnits = 1.0;
    // No reference machine.
    EXPECT_THROW(BenchmarkSuite::fromProfiles(
                     profiles, {machineA(), machineB()}),
                 InvalidArgument);
    // Two reference machines.
    EXPECT_THROW(BenchmarkSuite::fromProfiles(
                     profiles,
                     {referenceMachine(), referenceMachine()}),
                 InvalidArgument);
}

TEST(SuiteTest, ConstructionValidation)
{
    EXPECT_THROW(BenchmarkSuite({}, {}, paperMachines()),
                 InvalidArgument);
    std::vector<WorkloadProfile> profiles(1);
    profiles[0].name = "w";
    // Work size mismatch.
    EXPECT_THROW(BenchmarkSuite(profiles, {}, paperMachines()),
                 InvalidArgument);
}

} // namespace
