/**
 * @file
 * Tests for the text table renderer.
 */

#include <gtest/gtest.h>

#include <algorithm>

#include "src/util/text_table.h"

namespace {

using hiermeans::util::TextTable;

TEST(TextTableTest, RendersHeaderAndRows)
{
    TextTable t({"name", "value"});
    t.addRow({"alpha", "1"});
    t.addRow({"b", "22"});
    const std::string out = t.render();
    EXPECT_EQ(out,
              "name   value\n"
              "------------\n"
              "alpha      1\n"
              "b         22\n");
}

TEST(TextTableTest, FirstColumnLeftRestRightByDefault)
{
    TextTable t({"w", "x"});
    t.addRow({"aa", "1"});
    const std::string out = t.render();
    EXPECT_NE(out.find("aa  1"), std::string::npos);
}

TEST(TextTableTest, ExplicitAlignments)
{
    TextTable t({"a", "b"});
    t.setAlignments({TextTable::Align::Right, TextTable::Align::Left});
    t.addRow({"x", "y"});
    // Column widths are 1, so alignment is invisible here; widen.
    t.addRow({"long", "val"});
    const std::string out = t.render();
    EXPECT_NE(out.find("   x  y"), std::string::npos);
}

TEST(TextTableTest, SeparatorSpansWidth)
{
    TextTable t({"col"});
    t.addRow({"a"});
    t.addSeparator();
    t.addRow({"b"});
    const std::string out = t.render();
    // Header rule + explicit separator.
    EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 5);
}

TEST(TextTableTest, ShortRowsArePadded)
{
    TextTable t({"a", "b", "c"});
    t.addRow({"only"});
    EXPECT_NO_THROW(t.render());
    EXPECT_EQ(t.rowCount(), 1u);
}

TEST(TextTableTest, RowsWiderThanHeaderExtendTable)
{
    TextTable t({"a"});
    t.addRow({"x", "extra"});
    const std::string out = t.render();
    EXPECT_NE(out.find("extra"), std::string::npos);
}

TEST(TextTableTest, EmptyTableRendersNothing)
{
    TextTable t;
    EXPECT_EQ(t.render(), "");
}

TEST(TextTableTest, NoTrailingWhitespace)
{
    TextTable t({"name", "v"});
    t.addRow({"a", "1"});
    t.addRow({"long-name", "2"});
    const std::string out = t.render();
    std::size_t pos = 0;
    while ((pos = out.find(" \n", pos)) != std::string::npos)
        FAIL() << "trailing whitespace at " << pos;
}

TEST(TextTableTest, HeaderlessTableHasNoRule)
{
    TextTable t;
    t.addRow({"a", "b"});
    EXPECT_EQ(t.render(), "a  b\n");
}

} // namespace
