/**
 * @file
 * Tests for engine::ThreadPool: result delivery, FIFO start order,
 * exception propagation through futures, and clean shutdown while the
 * queue is still loaded.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <set>
#include <stdexcept>
#include <thread>
#include <vector>

#include "src/engine/thread_pool.h"
#include "src/util/error.h"

namespace hiermeans {
namespace engine {
namespace {

TEST(ThreadPoolTest, RejectsZeroThreads)
{
    EXPECT_THROW(ThreadPool(0), InvalidArgument);
}

TEST(ThreadPoolTest, ReturnsTaskResultsThroughFutures)
{
    ThreadPool pool(4);
    std::vector<std::future<int>> futures;
    for (int i = 0; i < 100; ++i)
        futures.push_back(pool.submit([i]() { return i * i; }));
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(futures[static_cast<std::size_t>(i)].get(), i * i);
}

TEST(ThreadPoolTest, SingleWorkerRunsTasksInSubmissionOrder)
{
    ThreadPool pool(1);
    std::mutex mutex;
    std::vector<int> order;
    std::vector<std::future<void>> futures;
    for (int i = 0; i < 50; ++i) {
        futures.push_back(pool.submit([i, &mutex, &order]() {
            std::lock_guard<std::mutex> lock(mutex);
            order.push_back(i);
        }));
    }
    for (auto &future : futures)
        future.get();
    for (int i = 0; i < 50; ++i)
        EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(ThreadPoolTest, PropagatesExceptionsWithoutKillingWorkers)
{
    ThreadPool pool(2);
    auto bad = pool.submit(
        []() -> int { throw std::runtime_error("task boom"); });
    EXPECT_THROW(
        {
            try {
                bad.get();
            } catch (const std::runtime_error &e) {
                EXPECT_STREQ(e.what(), "task boom");
                throw;
            }
        },
        std::runtime_error);

    // The worker that ran the throwing task must still be alive.
    auto good = pool.submit([]() { return 7; });
    EXPECT_EQ(good.get(), 7);
}

TEST(ThreadPoolTest, ShutdownDrainsQueuedTasksUnderLoad)
{
    std::atomic<int> executed{0};
    std::vector<std::future<void>> futures;
    {
        ThreadPool pool(2);
        for (int i = 0; i < 64; ++i) {
            futures.push_back(pool.submit([&executed]() {
                std::this_thread::sleep_for(
                    std::chrono::milliseconds(1));
                ++executed;
            }));
        }
        pool.shutdown();
        EXPECT_EQ(pool.pendingTasks(), 0u);
    }
    // Every accepted task ran; no future was abandoned.
    EXPECT_EQ(executed.load(), 64);
    for (auto &future : futures) {
        EXPECT_EQ(future.wait_for(std::chrono::seconds(0)),
                  std::future_status::ready);
    }
}

TEST(ThreadPoolTest, SubmitAfterShutdownThrows)
{
    ThreadPool pool(1);
    pool.shutdown();
    EXPECT_THROW(pool.submit([]() { return 1; }), InvalidArgument);
}

TEST(ThreadPoolTest, DestructorJoinsWithoutExplicitShutdown)
{
    std::atomic<int> executed{0};
    {
        ThreadPool pool(3);
        for (int i = 0; i < 20; ++i)
            pool.submit([&executed]() { ++executed; });
    }
    EXPECT_EQ(executed.load(), 20);
}

TEST(ThreadPoolTest, RunsTasksConcurrentlyAcrossWorkers)
{
    ThreadPool pool(4);
    std::mutex mutex;
    std::condition_variable all_started;
    int started = 0;

    // Four tasks that only finish once all four have started: passes
    // iff the pool really runs them on distinct threads.
    std::vector<std::future<std::thread::id>> futures;
    for (int i = 0; i < 4; ++i) {
        futures.push_back(pool.submit([&]() {
            std::unique_lock<std::mutex> lock(mutex);
            ++started;
            all_started.notify_all();
            all_started.wait(lock, [&]() { return started == 4; });
            return std::this_thread::get_id();
        }));
    }
    std::set<std::thread::id> distinct;
    for (auto &future : futures)
        distinct.insert(future.get());
    EXPECT_EQ(distinct.size(), 4u);
}

} // namespace
} // namespace engine
} // namespace hiermeans
