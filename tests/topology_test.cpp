/**
 * @file
 * Tests for the SOM grid topology.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "src/som/topology.h"
#include "src/util/error.h"

namespace {

using namespace hiermeans::som;
using hiermeans::InvalidArgument;

TEST(TopologyTest, IndexCellRoundTrip)
{
    const GridTopology topo(3, 4);
    EXPECT_EQ(topo.unitCount(), 12u);
    for (std::size_t u = 0; u < topo.unitCount(); ++u) {
        const GridCell c = topo.cell(u);
        EXPECT_EQ(topo.unitIndex(c.row, c.col), u);
    }
    EXPECT_THROW(topo.cell(12), InvalidArgument);
    EXPECT_THROW(topo.unitIndex(3, 0), InvalidArgument);
    EXPECT_THROW(GridTopology(0, 4), InvalidArgument);
}

TEST(TopologyTest, RectangularLocations)
{
    const GridTopology topo(2, 3);
    const GridPoint p = topo.location(topo.unitIndex(1, 2));
    EXPECT_DOUBLE_EQ(p.x, 2.0);
    EXPECT_DOUBLE_EQ(p.y, 1.0);
}

TEST(TopologyTest, RectangularDistances)
{
    const GridTopology topo(4, 4);
    const std::size_t a = topo.unitIndex(0, 0);
    const std::size_t b = topo.unitIndex(3, 4 - 1);
    EXPECT_DOUBLE_EQ(topo.gridDistance(a, a), 0.0);
    EXPECT_NEAR(topo.gridDistance(a, b), std::sqrt(9.0 + 9.0), 1e-12);
    EXPECT_NEAR(topo.gridDistanceSquared(a, b), 18.0, 1e-12);
}

TEST(TopologyTest, RectangularNeighbors)
{
    const GridTopology topo(3, 3);
    const std::size_t center = topo.unitIndex(1, 1);
    EXPECT_TRUE(topo.areNeighbors(center, topo.unitIndex(0, 1)));
    EXPECT_TRUE(topo.areNeighbors(center, topo.unitIndex(1, 0)));
    EXPECT_TRUE(topo.areNeighbors(center, topo.unitIndex(1, 2)));
    EXPECT_TRUE(topo.areNeighbors(center, topo.unitIndex(2, 1)));
    // Diagonal is not a lattice neighbor on a rectangular grid.
    EXPECT_FALSE(topo.areNeighbors(center, topo.unitIndex(0, 0)));
    EXPECT_FALSE(topo.areNeighbors(center, center));
}

TEST(TopologyTest, HexagonalRowOffsets)
{
    const GridTopology topo(3, 3, GridKind::Hexagonal);
    const GridPoint even = topo.location(topo.unitIndex(0, 1));
    const GridPoint odd = topo.location(topo.unitIndex(1, 1));
    EXPECT_DOUBLE_EQ(even.x, 1.0);
    EXPECT_DOUBLE_EQ(odd.x, 1.5);
    EXPECT_NEAR(odd.y, std::sqrt(3.0) / 2.0, 1e-12);
}

TEST(TopologyTest, HexagonalNeighborsEquidistant)
{
    const GridTopology topo(4, 4, GridKind::Hexagonal);
    // Unit (1,1) on a hex grid has six neighbors at distance 1:
    // (1,0), (1,2), (0,1), (0,2), (2,1), (2,2).
    const std::size_t u = topo.unitIndex(1, 1);
    const std::size_t expected_neighbors[] = {
        topo.unitIndex(1, 0), topo.unitIndex(1, 2), topo.unitIndex(0, 1),
        topo.unitIndex(0, 2), topo.unitIndex(2, 1), topo.unitIndex(2, 2)};
    for (std::size_t v : expected_neighbors) {
        EXPECT_NEAR(topo.gridDistance(u, v), 1.0, 1e-9);
        EXPECT_TRUE(topo.areNeighbors(u, v));
    }
}

TEST(TopologyTest, GridKindNamesRoundTrip)
{
    EXPECT_EQ(parseGridKind(gridKindName(GridKind::Rectangular)),
              GridKind::Rectangular);
    EXPECT_EQ(parseGridKind("hex"), GridKind::Hexagonal);
    EXPECT_THROW(parseGridKind("toroidal"), InvalidArgument);
}

} // namespace
