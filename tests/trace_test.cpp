/**
 * @file
 * Unit tests for the obs tracing layer: trace IDs, span recording,
 * the thread-local context, the process-wide Tracer rings (recent +
 * slow sampler) and the rendered span tree.
 */

#include <gtest/gtest.h>

#include <chrono>
#include <thread>
#include <vector>

#include "src/obs/trace.h"
#include "src/util/cli.h"

namespace hiermeans {
namespace obs {
namespace {

/** Every test runs against a disarmed, empty Tracer. */
class TraceTest : public ::testing::Test
{
  protected:
    void SetUp() override { Tracer::instance().reset(); }
    void TearDown() override { Tracer::instance().reset(); }

    static Tracer::Config armedConfig()
    {
        Tracer::Config config;
        config.enabled = true;
        return config;
    }
};

TEST_F(TraceTest, GeneratedIdsAreSixteenHexAndDistinct)
{
    const std::string a = generateTraceId();
    const std::string b = generateTraceId();
    EXPECT_EQ(a.size(), 16u);
    EXPECT_EQ(b.size(), 16u);
    EXPECT_NE(a, b);
    for (char c : a) {
        const bool hex =
            (c >= '0' && c <= '9') || (c >= 'a' && c <= 'f');
        EXPECT_TRUE(hex) << "non-hex digit in trace ID: " << a;
    }
    EXPECT_TRUE(validTraceId(a));
}

TEST_F(TraceTest, ValidTraceIdAcceptsTheDocumentedAlphabet)
{
    EXPECT_TRUE(validTraceId("a"));
    EXPECT_TRUE(validTraceId("Az0.9_-x"));
    EXPECT_TRUE(validTraceId(std::string(64, 'f')));

    EXPECT_FALSE(validTraceId(""));
    EXPECT_FALSE(validTraceId(std::string(65, 'f')));
    EXPECT_FALSE(validTraceId("has space"));
    EXPECT_FALSE(validTraceId("semi;colon"));
    EXPECT_FALSE(validTraceId("new\nline"));
    EXPECT_FALSE(validTraceId("slash/"));
}

TEST_F(TraceTest, SpansRecordParentLinksAndDurations)
{
    Trace trace("t1");
    const std::size_t root = trace.begin("server.request");
    const std::size_t child = trace.begin("engine.execute", root);
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
    trace.end(child);
    trace.end(root);

    const std::vector<Span> spans = trace.spans();
    ASSERT_EQ(spans.size(), 2u);
    EXPECT_EQ(spans[0].name, "server.request");
    EXPECT_EQ(spans[0].parent, kNoParent);
    EXPECT_EQ(spans[1].name, "engine.execute");
    EXPECT_EQ(spans[1].parent, root);
    EXPECT_GE(spans[0].endNanos, spans[0].startNanos);
    EXPECT_GT(trace.rootMillis(), 0.0);
    // The child cannot outlast its parent here.
    EXPECT_LE(spans[1].durationMillis(), spans[0].durationMillis());
}

TEST_F(TraceTest, RootMillisIsZeroWhileTheRootIsOpen)
{
    Trace trace("t2");
    EXPECT_EQ(trace.rootMillis(), 0.0);
    const std::size_t root = trace.begin("server.request");
    EXPECT_EQ(trace.rootMillis(), 0.0); // still open.
    trace.end(root);
    EXPECT_GE(trace.rootMillis(), 0.0);
}

TEST_F(TraceTest, EndingAnOutOfRangeSpanIsHarmless)
{
    Trace trace("t3");
    trace.end(7); // no such span; must not crash or record.
    EXPECT_TRUE(trace.spans().empty());
}

TEST_F(TraceTest, DisarmedScopedSpanRecordsNothing)
{
    EXPECT_FALSE(tracingEnabled());
    auto trace = std::make_shared<Trace>("t4");
    ScopedTraceContext context(trace.get(), kNoParent);
    {
        ScopedSpan span("admission");
        EXPECT_EQ(span.index(), kNoParent);
    }
    EXPECT_TRUE(trace->spans().empty());
}

TEST_F(TraceTest, ScopedSpanNestsThroughTheThreadLocalContext)
{
    Tracer::instance().configure(armedConfig());
    auto trace = Tracer::instance().start("t5");
    const std::size_t root = trace->begin("server.request");
    {
        ScopedTraceContext context(trace.get(), root);
        ScopedSpan outer("engine.execute");
        EXPECT_EQ(currentSpan(), outer.index());
        {
            ScopedSpan inner("pipeline.score");
            EXPECT_EQ(currentSpan(), inner.index());
        }
        EXPECT_EQ(currentSpan(), outer.index());
    }
    trace->end(root);

    const std::vector<Span> spans = trace->spans();
    ASSERT_EQ(spans.size(), 3u);
    EXPECT_EQ(spans[1].parent, root);          // engine.execute
    EXPECT_EQ(spans[2].parent, spans.size() - 2); // pipeline.score
    EXPECT_EQ(spans[2].name, "pipeline.score");
}

TEST_F(TraceTest, ScopedSpanCloseIsIdempotent)
{
    Tracer::instance().configure(armedConfig());
    auto trace = Tracer::instance().start("t6");
    ScopedTraceContext context(trace.get(), kNoParent);

    ScopedSpan span("admission");
    const std::size_t index = span.index();
    ASSERT_NE(index, kNoParent);
    span.close();
    const std::uint64_t endNanos = trace->spans()[index].endNanos;
    EXPECT_NE(endNanos, 0u);
    EXPECT_EQ(currentSpan(), kNoParent); // context restored early.

    std::this_thread::sleep_for(std::chrono::milliseconds(1));
    span.close(); // second close must not move the end time.
    EXPECT_EQ(trace->spans()[index].endNanos, endNanos);
}

TEST_F(TraceTest, ContextTransfersAcrossThreads)
{
    Tracer::instance().configure(armedConfig());
    auto trace = Tracer::instance().start("t7");
    const std::size_t root = trace->begin("server.request");

    std::thread worker([&] {
        ScopedTraceContext context(trace.get(), root);
        ScopedSpan span("engine.execute");
    });
    worker.join();
    trace->end(root);

    EXPECT_EQ(currentTrace(), nullptr); // this thread never enrolled.
    const std::vector<Span> spans = trace->spans();
    ASSERT_EQ(spans.size(), 2u);
    EXPECT_EQ(spans[1].name, "engine.execute");
    EXPECT_EQ(spans[1].parent, root);
}

TEST_F(TraceTest, RecentRingEvictsOldestBeyondKeep)
{
    Tracer::Config config = armedConfig();
    config.keepRecent = 3;
    Tracer::instance().configure(config);
    Tracer &tracer = Tracer::instance();

    for (int i = 0; i < 5; ++i) {
        auto trace = tracer.start("trace-" + std::to_string(i));
        const std::size_t root = trace->begin("server.request");
        trace->end(root);
        tracer.finish(trace);
    }

    EXPECT_EQ(tracer.finishedTotal(), 5u);
    const std::vector<std::string> ids = tracer.recentIds();
    ASSERT_EQ(ids.size(), 3u);
    EXPECT_EQ(ids[0], "trace-4"); // newest first.
    EXPECT_EQ(ids[2], "trace-2");
    EXPECT_EQ(tracer.find("trace-0"), nullptr);
    ASSERT_NE(tracer.find("trace-4"), nullptr);
    EXPECT_EQ(tracer.find("trace-4")->id(), "trace-4");
}

TEST_F(TraceTest, SlowSamplerKeepsTracesBeyondTheThreshold)
{
    Tracer::Config config = armedConfig();
    config.slowMillis = 0.0; // anything with a closed root is "slow".
    config.keepRecent = 1;   // recent ring evicts almost instantly.
    Tracer::instance().configure(config);
    Tracer &tracer = Tracer::instance();

    auto slow = tracer.start("the-slow-one");
    const std::size_t root = slow->begin("server.request");
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
    slow->end(root);
    tracer.finish(slow);

    // Push it out of the recent ring; the sampler must still hold it.
    auto fresh = tracer.start("fresh");
    const std::size_t freshRoot = fresh->begin("server.request");
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
    fresh->end(freshRoot);
    tracer.finish(fresh);

    EXPECT_GE(tracer.slowTotal(), 1u);
    ASSERT_NE(tracer.find("the-slow-one"), nullptr);
    const std::vector<std::string> slowIds = tracer.slowIds();
    ASSERT_FALSE(slowIds.empty());
    EXPECT_EQ(slowIds[0], "fresh"); // newest first here too.
}

TEST_F(TraceTest, FastTracesSkipTheSlowSampler)
{
    Tracer::Config config = armedConfig();
    config.slowMillis = 1e9; // nothing qualifies.
    Tracer::instance().configure(config);
    Tracer &tracer = Tracer::instance();

    auto trace = tracer.start("quick");
    const std::size_t root = trace->begin("server.request");
    trace->end(root);
    tracer.finish(trace);

    EXPECT_EQ(tracer.slowTotal(), 0u);
    EXPECT_TRUE(tracer.slowIds().empty());
}

TEST_F(TraceTest, ResetDisarmsAndClearsBothRings)
{
    Tracer::instance().configure(armedConfig());
    EXPECT_TRUE(tracingEnabled());
    auto trace = Tracer::instance().start("gone");
    const std::size_t root = trace->begin("server.request");
    trace->end(root);
    Tracer::instance().finish(trace);

    Tracer::instance().reset();
    EXPECT_FALSE(tracingEnabled());
    EXPECT_EQ(Tracer::instance().find("gone"), nullptr);
    EXPECT_EQ(Tracer::instance().finishedTotal(), 0u);
}

TEST_F(TraceTest, TraceConfigFromCommandLineOverridesBase)
{
    const auto cl = util::CommandLine::parse(
        {"tool", "--trace", "--trace-slow-ms=12.5", "--trace-keep=9",
         "--trace-keep-slow=3"});
    const Tracer::Config config = traceConfigFromCommandLine(cl);
    EXPECT_TRUE(config.enabled);
    EXPECT_DOUBLE_EQ(config.slowMillis, 12.5);
    EXPECT_EQ(config.keepRecent, 9u);
    EXPECT_EQ(config.keepSlow, 3u);

    // No flags: the base passes through untouched.
    const auto empty = util::CommandLine::parse({"tool"});
    Tracer::Config base;
    base.slowMillis = 77.0;
    const Tracer::Config kept = traceConfigFromCommandLine(empty, base);
    EXPECT_FALSE(kept.enabled);
    EXPECT_DOUBLE_EQ(kept.slowMillis, 77.0);

    // --trace=false disarms explicitly.
    const auto off =
        util::CommandLine::parse({"tool", "--trace=false"});
    Tracer::Config armed;
    armed.enabled = true;
    EXPECT_FALSE(traceConfigFromCommandLine(off, armed).enabled);
}

TEST_F(TraceTest, RenderSpanTreeIndentsChildrenAndMarksOpenSpans)
{
    Trace trace("deadbeefcafef00d");
    const std::size_t root = trace.begin("server.request");
    const std::size_t engine = trace.begin("engine.execute", root);
    trace.begin("pipeline.som_train", engine); // left open.
    trace.end(engine);
    trace.end(root);

    const std::string tree =
        renderSpanTree(trace.id(), trace.spans());
    EXPECT_NE(tree.find("trace deadbeefcafef00d"), std::string::npos);
    EXPECT_NE(tree.find("total"), std::string::npos);
    EXPECT_NE(tree.find("server.request"), std::string::npos);
    EXPECT_NE(tree.find("\n  engine.execute"), std::string::npos);
    EXPECT_NE(tree.find("\n    pipeline.som_train"),
              std::string::npos);
    EXPECT_NE(tree.find("(open)"), std::string::npos);
}

} // namespace
} // namespace obs
} // namespace hiermeans
