/**
 * @file
 * Tests for the U-matrix.
 */

#include <gtest/gtest.h>

#include <algorithm>

#include "src/som/umatrix.h"
#include "src/util/rng.h"

namespace {

using hiermeans::linalg::Matrix;
using hiermeans::linalg::Vector;
using namespace hiermeans::som;

Matrix
blobData()
{
    hiermeans::rng::Engine engine(5);
    std::vector<Vector> rows;
    for (int i = 0; i < 8; ++i)
        rows.push_back({engine.normal(0.0, 0.2),
                        engine.normal(0.0, 0.2)});
    for (int i = 0; i < 8; ++i)
        rows.push_back({engine.normal(8.0, 0.2),
                        engine.normal(8.0, 0.2)});
    return Matrix::fromRows(rows);
}

TEST(UMatrixTest, ShapeMatchesTopology)
{
    SomConfig config;
    config.rows = 5;
    config.cols = 7;
    config.steps = 800;
    const auto map = SelfOrganizingMap::train(blobData(), config);
    const Matrix u = uMatrix(map);
    EXPECT_EQ(u.rows(), 5u);
    EXPECT_EQ(u.cols(), 7u);
}

TEST(UMatrixTest, NonNegativeEverywhere)
{
    SomConfig config;
    config.rows = 4;
    config.cols = 4;
    config.steps = 500;
    const auto map = SelfOrganizingMap::train(blobData(), config);
    const Matrix u = uMatrix(map);
    for (std::size_t r = 0; r < u.rows(); ++r)
        for (std::size_t c = 0; c < u.cols(); ++c)
            EXPECT_GE(u(r, c), 0.0);
}

TEST(UMatrixTest, RidgeSeparatesTwoBlobs)
{
    // With two blobs, the maximum U-matrix value (the ridge between
    // clusters) must clearly exceed the minimum (inside a plateau).
    SomConfig config;
    config.rows = 6;
    config.cols = 6;
    config.steps = 2000;
    config.seed = 3;
    const auto map = SelfOrganizingMap::train(blobData(), config);
    const Matrix u = uMatrix(map);
    double lo = u(0, 0), hi = u(0, 0);
    for (std::size_t r = 0; r < u.rows(); ++r) {
        for (std::size_t c = 0; c < u.cols(); ++c) {
            lo = std::min(lo, u(r, c));
            hi = std::max(hi, u(r, c));
        }
    }
    EXPECT_GT(hi, 3.0 * std::max(lo, 1e-9));
}

TEST(UMatrixTest, UniformWeightsGiveZeroUMatrix)
{
    // A map trained on identical inputs converges to identical
    // weights: neighbor distances approach zero.
    std::vector<Vector> rows(6, Vector{2.0, 2.0});
    SomConfig config;
    config.rows = 3;
    config.cols = 3;
    config.steps = 3000;
    config.init = InitKind::Random;
    const auto map =
        SelfOrganizingMap::train(Matrix::fromRows(rows), config);
    const Matrix u = uMatrix(map);
    for (std::size_t r = 0; r < u.rows(); ++r)
        for (std::size_t c = 0; c < u.cols(); ++c)
            EXPECT_LT(u(r, c), 0.2);
}

} // namespace
