/**
 * @file
 * Tests for cluster validity indices.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "src/cluster/agglomerative.h"
#include "src/cluster/validity.h"
#include "src/util/error.h"
#include "src/util/rng.h"

namespace {

using namespace hiermeans::cluster;
using hiermeans::InvalidArgument;
using hiermeans::linalg::Matrix;
using hiermeans::linalg::Vector;
using hiermeans::scoring::Partition;

Matrix
twoBlobs()
{
    hiermeans::rng::Engine engine(77);
    std::vector<Vector> rows;
    for (int i = 0; i < 6; ++i)
        rows.push_back({engine.normal(0.0, 0.2),
                        engine.normal(0.0, 0.2)});
    for (int i = 0; i < 6; ++i)
        rows.push_back({engine.normal(10.0, 0.2),
                        engine.normal(10.0, 0.2)});
    return Matrix::fromRows(rows);
}

Partition
truePartition()
{
    return Partition::fromLabels(
        {0, 0, 0, 0, 0, 0, 1, 1, 1, 1, 1, 1});
}

Partition
scrambledPartition()
{
    return Partition::fromLabels(
        {0, 1, 0, 1, 0, 1, 0, 1, 0, 1, 0, 1});
}

TEST(SilhouetteTest, TruePartitionBeatsScrambled)
{
    const Matrix points = twoBlobs();
    const double good = silhouette(points, truePartition());
    const double bad = silhouette(points, scrambledPartition());
    EXPECT_GT(good, 0.9);
    EXPECT_LT(bad, 0.1);
    EXPECT_GT(good, bad);
}

TEST(SilhouetteTest, RangeAndValidation)
{
    const Matrix points = twoBlobs();
    const double s = silhouette(points, truePartition());
    EXPECT_GE(s, -1.0);
    EXPECT_LE(s, 1.0);
    EXPECT_THROW(silhouette(points, Partition::single(12)),
                 InvalidArgument);
    EXPECT_THROW(silhouette(points, Partition::single(3)),
                 InvalidArgument);
}

TEST(SilhouetteTest, SingletonsContributeZero)
{
    const Matrix points =
        Matrix::fromRows({{0.0}, {0.1}, {10.0}});
    const Partition p = Partition::fromGroups({{0, 1}, {2}});
    // Two near-perfect members + one zero singleton -> about 2/3.
    const double s = silhouette(points, p);
    EXPECT_NEAR(s, 2.0 / 3.0, 0.05);
}

TEST(DaviesBouldinTest, LowerForTruePartition)
{
    const Matrix points = twoBlobs();
    const double good = daviesBouldin(points, truePartition());
    const double bad = daviesBouldin(points, scrambledPartition());
    EXPECT_LT(good, bad);
    EXPECT_LT(good, 0.2);
    EXPECT_THROW(daviesBouldin(points, Partition::single(12)),
                 InvalidArgument);
}

TEST(CopheneticTest, HighForWellStructuredData)
{
    const Matrix points = twoBlobs();
    const Dendrogram d = agglomerate(points, Linkage::Complete);
    const double c = copheneticCorrelation(points, d);
    EXPECT_GT(c, 0.9);
    EXPECT_LE(c, 1.0 + 1e-9);
}

TEST(CopheneticTest, Validation)
{
    const Matrix points = twoBlobs();
    const Dendrogram d = agglomerate(points);
    const Matrix other = Matrix::fromRows({{1.0}, {2.0}});
    EXPECT_THROW(copheneticCorrelation(other, d), InvalidArgument);
}

TEST(WithinClusterSSTest, ZeroForDiscretePartition)
{
    const Matrix points = twoBlobs();
    EXPECT_NEAR(withinClusterSS(points,
                                Partition::discrete(points.rows())),
                0.0, 1e-12);
}

TEST(WithinClusterSSTest, DecreasesWithFinerPartitions)
{
    const Matrix points = twoBlobs();
    const double one = withinClusterSS(points, Partition::single(12));
    const double two = withinClusterSS(points, truePartition());
    EXPECT_LT(two, one);
    EXPECT_GT(one, 0.0);
}

TEST(WithinClusterSSTest, HandComputed)
{
    const Matrix points = Matrix::fromRows({{0.0}, {2.0}});
    // One cluster: centroid 1, SS = 1 + 1 = 2.
    EXPECT_NEAR(withinClusterSS(points, Partition::single(2)), 2.0,
                1e-12);
}

} // namespace
