/**
 * @file
 * Tests for vector operations.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "src/linalg/vector.h"
#include "src/util/error.h"

namespace {

using namespace hiermeans::linalg;
using hiermeans::InvalidArgument;

TEST(VectorTest, AddSub)
{
    const Vector a = {1.0, 2.0, 3.0};
    const Vector b = {10.0, 20.0, 30.0};
    EXPECT_EQ(add(a, b), (Vector{11.0, 22.0, 33.0}));
    EXPECT_EQ(sub(b, a), (Vector{9.0, 18.0, 27.0}));
    EXPECT_THROW(add(a, {1.0}), InvalidArgument);
}

TEST(VectorTest, ScaleAndAxpy)
{
    const Vector a = {1.0, -2.0};
    EXPECT_EQ(scale(a, 3.0), (Vector{3.0, -6.0}));
    Vector y = {1.0, 1.0};
    axpy(2.0, a, y);
    EXPECT_EQ(y, (Vector{3.0, -3.0}));
    Vector too_short = {1.0};
    EXPECT_THROW(axpy(1.0, a, too_short), InvalidArgument);
}

TEST(VectorTest, DotAndNorm)
{
    EXPECT_DOUBLE_EQ(dot({1.0, 2.0}, {3.0, 4.0}), 11.0);
    EXPECT_DOUBLE_EQ(norm({3.0, 4.0}), 5.0);
    EXPECT_DOUBLE_EQ(norm({}), 0.0);
}

TEST(VectorTest, SumAndMean)
{
    EXPECT_DOUBLE_EQ(sum({1.0, 2.0, 3.0}), 6.0);
    EXPECT_DOUBLE_EQ(mean({1.0, 2.0, 3.0}), 2.0);
    EXPECT_DOUBLE_EQ(sum({}), 0.0);
    EXPECT_THROW(mean({}), InvalidArgument);
}

TEST(VectorTest, Fill)
{
    Vector v(3, 0.0);
    fill(v, 7.5);
    EXPECT_EQ(v, (Vector{7.5, 7.5, 7.5}));
}

TEST(VectorTest, ApproxEqual)
{
    EXPECT_TRUE(approxEqual({1.0, 2.0}, {1.0 + 1e-10, 2.0}, 1e-9));
    EXPECT_FALSE(approxEqual({1.0, 2.0}, {1.1, 2.0}, 1e-9));
    EXPECT_FALSE(approxEqual({1.0}, {1.0, 2.0}, 1e-9));
}

} // namespace
