/**
 * The version constant every CLI prints must agree with the CMake
 * project version — a release bump that touches only one of the two
 * ships tools that disagree about what they are.
 */

#include <gtest/gtest.h>
#include <string>

#include "src/util/version.h"

#ifndef HM_CMAKE_VERSION
#error "version_test needs HM_CMAKE_VERSION from tests/CMakeLists.txt"
#endif

namespace {

using namespace hiermeans;

TEST(VersionTest, HeaderMatchesCMakeProjectVersion)
{
    EXPECT_EQ(std::string(util::kVersion), HM_CMAKE_VERSION);
}

TEST(VersionTest, BannerStringEmbedsTheVersion)
{
    EXPECT_EQ(std::string(util::kVersionString),
              "hiermeans " + std::string(util::kVersion));
}

TEST(VersionTest, LooksLikeSemanticVersion)
{
    const std::string version = util::kVersion;
    int dots = 0;
    for (char c : version) {
        if (c == '.')
            ++dots;
        else
            EXPECT_TRUE(c >= '0' && c <= '9') << version;
    }
    EXPECT_EQ(dots, 2) << version;
}

} // namespace
