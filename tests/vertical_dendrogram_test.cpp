/**
 * @file
 * Tests for the vertical (paper-style) dendrogram rendering.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>

#include "src/cluster/agglomerative.h"
#include "src/cluster/render.h"
#include "src/util/error.h"
#include "src/util/str.h"

namespace {

using namespace hiermeans::cluster;
using hiermeans::InvalidArgument;
using hiermeans::linalg::Matrix;

Dendrogram
sample()
{
    std::vector<Merge> merges = {
        {0, 1, 1.0, 2}, {2, 3, 2.0, 2}, {4, 5, 5.0, 4}};
    return Dendrogram(4, std::move(merges));
}

const std::vector<std::string> kNames = {"aa", "bb", "cc", "dd"};

std::vector<std::string>
lines(const std::string &text)
{
    std::vector<std::string> out;
    std::istringstream iss(text);
    std::string line;
    while (std::getline(iss, line))
        out.push_back(line);
    return out;
}

TEST(VerticalDendrogramTest, ContainsTitleScaleAndLabels)
{
    const std::string out =
        renderVerticalDendrogram(sample(), kNames, "My Tree", 12);
    EXPECT_NE(out.find("My Tree"), std::string::npos);
    EXPECT_NE(out.find("merging distance"), std::string::npos);
    // Top scale value equals the root height.
    EXPECT_NE(out.find("5.00"), std::string::npos);
    EXPECT_NE(out.find("0.00"), std::string::npos);
    // Vertical labels: first characters of every name on one line.
    bool found_initials = false;
    for (const auto &line : lines(out)) {
        std::size_t count = 0;
        for (char c : line)
            count += (c == 'a' || c == 'b' || c == 'c' || c == 'd');
        if (count == 4)
            found_initials = true;
    }
    EXPECT_TRUE(found_initials);
}

TEST(VerticalDendrogramTest, BracketCountMatchesMerges)
{
    const std::string out =
        renderVerticalDendrogram(sample(), kNames, "T", 12);
    // Each merge draws exactly two '+' corners.
    const auto plus = std::count(out.begin(), out.end(), '+');
    // 3 merges * 2 corners + 1 baseline corner of the axis.
    EXPECT_EQ(plus, 3 * 2 + 1);
}

TEST(VerticalDendrogramTest, HigherMergesAppearOnEarlierRows)
{
    const std::string out =
        renderVerticalDendrogram(sample(), kNames, "T", 16);
    const auto all = lines(out);
    // Find the row index of the root bracket (spanning widest range)
    // and of the lowest bracket: the root must come first.
    std::size_t first_bracket = all.size(), last_bracket = 0;
    for (std::size_t i = 0; i < all.size(); ++i) {
        if (all[i].find('+') != std::string::npos &&
            all[i].find("--") != std::string::npos) {
            first_bracket = std::min(first_bracket, i);
            last_bracket = std::max(last_bracket, i);
        }
    }
    EXPECT_LT(first_bracket, last_bracket);
}

TEST(VerticalDendrogramTest, ZeroHeightMergesRenderAtBaseline)
{
    std::vector<Merge> merges = {
        {0, 1, 0.0, 2}, {2, 3, 0.0, 2}, {4, 5, 3.0, 4}};
    const Dendrogram d(4, std::move(merges));
    EXPECT_NO_THROW(renderVerticalDendrogram(d, kNames, "T", 10));
}

TEST(VerticalDendrogramTest, LeafOrderKeepsClustersContiguous)
{
    // Points forming two clear pairs: the leaf order must keep each
    // pair adjacent (no bracket crossings).
    const Matrix points =
        Matrix::fromRows({{0.0}, {10.0}, {0.3}, {10.4}});
    const Dendrogram d = agglomerate(points);
    const std::string out = renderVerticalDendrogram(
        d, {"p0", "p1", "p2", "p3"}, "T", 10);
    // Under each column the vertical labels spell p0 p2 p1 p3 or
    // p1 p3 p0 p2 etc.; verify by reading the digit row.
    std::string digit_row;
    for (const auto &line : lines(out)) {
        // Label rows carry no axis characters; scale rows do.
        if (line.find('|') != std::string::npos ||
            line.find('+') != std::string::npos ||
            line.find('.') != std::string::npos) {
            continue;
        }
        std::size_t digits = 0;
        for (char c : line)
            digits += (c >= '0' && c <= '9');
        if (digits == 4) {
            digit_row = line;
            break;
        }
    }
    ASSERT_FALSE(digit_row.empty());
    std::string order;
    for (char c : digit_row) {
        if (c >= '0' && c <= '9')
            order += c;
    }
    // 0 must be adjacent to 2, and 1 adjacent to 3.
    const auto pos = [&](char c) { return order.find(c); };
    EXPECT_EQ(std::abs(static_cast<int>(pos('0')) -
                       static_cast<int>(pos('2'))),
              1);
    EXPECT_EQ(std::abs(static_cast<int>(pos('1')) -
                       static_cast<int>(pos('3'))),
              1);
}

TEST(VerticalDendrogramTest, Validation)
{
    EXPECT_THROW(renderVerticalDendrogram(sample(), {"x"}, "T", 10),
                 InvalidArgument);
    EXPECT_THROW(renderVerticalDendrogram(sample(), kNames, "T", 3),
                 InvalidArgument);
}

TEST(VerticalDendrogramTest, SingleLeaf)
{
    const Dendrogram d(1, {});
    EXPECT_NO_THROW(renderVerticalDendrogram(d, {"only"}, "T", 8));
}

} // namespace
