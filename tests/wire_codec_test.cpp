/**
 * The binary wire codec in isolation: framing round-trips for every
 * message type, the BatchView zero-copy guarantee, the negotiation
 * helpers, the JSON pivot's bit-identity, and every decode error
 * path — both programmatically corrupted frames and the checked-in
 * corpus under tests/data/wire (truncated tail, bad CRC, oversized
 * length prefix, wrong wire version, unknown type, bad magic).
 */

#include <gtest/gtest.h>
#include <string>
#include <vector>

#include "src/server/wire_json.h"
#include "src/store/record.h"
#include "src/util/error.h"
#include "src/util/file.h"
#include "src/wire/wire.h"

namespace {

using namespace hiermeans;

/** Expect an InvalidArgument whose message contains @p needle. */
void
expectDecodeError(const std::string &body, const std::string &needle)
{
    try {
        wire::Frame frame;
        wire::decodeFrame(body, frame);
        FAIL() << "decode accepted a frame that should fail: "
               << needle;
    } catch (const Error &e) {
        EXPECT_NE(std::string(e.what()).find(needle),
                  std::string::npos)
            << "got: " << e.what();
    }
}

/** Rewrite the stored CRC to match the (possibly patched) version,
 *  type and payload bytes — isolates non-CRC decode checks. */
void
restampCrc(std::string &frame)
{
    const std::uint32_t crc =
        store::crc32(std::string_view(frame).substr(12));
    for (int i = 0; i < 4; ++i)
        frame[8 + i] = static_cast<char>((crc >> (8 * i)) & 0xFF);
}

wire::ScoreDocument
sampleDocument()
{
    wire::ScoreDocument doc;
    doc.id = "suiteX";
    doc.servedBy = "pipeline";
    doc.fingerprint = 0xDEADBEEFCAFEF00Dull;
    doc.recommendedK = 3;
    doc.ratio = 1.25;
    doc.plainRatio = 1.125;
    doc.wallMillis = 17.5;
    for (std::uint32_t k = 1; k <= 3; ++k)
        doc.rows.push_back({k, 1.0 + k, 2.0 - 0.25 * k,
                            0.5 + 0.125 * k});
    return doc;
}

TEST(WireCodec, ScoreRequestRoundTrips)
{
    const std::string line =
        "scores=s.csv features=f.csv machine-a=mA machine-b=mB";
    const std::string body = wire::encodeScoreRequest(line);
    EXPECT_EQ(body.substr(0, 4), "HMW1");
    EXPECT_EQ(wire::decodeScoreRequest(body), line);
}

TEST(WireCodec, BatchManifestRoundTripsAndViewsAreZeroCopy)
{
    const std::vector<std::string> lines = {
        "scores=s.csv features=f.csv machine-a=mA machine-b=mB",
        "# a comment line survives verbatim",
        "",
        "scores=s.csv features=f.csv machine-a=mA machine-b=mB k=4"};
    const std::string body = wire::encodeBatchManifest(lines);
    wire::BatchView view(body);
    ASSERT_EQ(view.rowCount(), lines.size());
    for (std::size_t i = 0; i < lines.size(); ++i) {
        EXPECT_EQ(view.rows()[i], lines[i]);
        if (!lines[i].empty()) {
            // Zero-copy: every row aliases the frame buffer.
            EXPECT_GE(view.rows()[i].data(), body.data());
            EXPECT_LE(view.rows()[i].data() + view.rows()[i].size(),
                      body.data() + body.size());
        }
    }
    EXPECT_EQ(view.manifestText(), lines[0] + "\n" + lines[1] +
                                       "\n\n" + lines[3] + "\n");
}

TEST(WireCodec, ScoreReportRoundTrips)
{
    const wire::ScoreDocument doc = sampleDocument();
    const wire::ScoreDocument back =
        wire::decodeScoreReport(wire::encodeScoreReport(doc));
    EXPECT_EQ(back.id, doc.id);
    EXPECT_EQ(back.servedBy, doc.servedBy);
    EXPECT_EQ(back.fingerprint, doc.fingerprint);
    EXPECT_EQ(back.recommendedK, doc.recommendedK);
    EXPECT_EQ(back.ratio, doc.ratio);
    EXPECT_EQ(back.plainRatio, doc.plainRatio);
    EXPECT_EQ(back.wallMillis, doc.wallMillis);
    ASSERT_EQ(back.rows.size(), doc.rows.size());
    for (std::size_t i = 0; i < doc.rows.size(); ++i) {
        EXPECT_EQ(back.rows[i].k, doc.rows[i].k);
        EXPECT_EQ(back.rows[i].scoreA, doc.rows[i].scoreA);
        EXPECT_EQ(back.rows[i].scoreB, doc.rows[i].scoreB);
        EXPECT_EQ(back.rows[i].ratio, doc.rows[i].ratio);
    }
}

TEST(WireCodec, BatchItemStreamRoundTripsInOrder)
{
    wire::BatchItem ok;
    ok.line = 1;
    ok.ok = true;
    ok.doc = sampleDocument();
    wire::BatchItem failed;
    failed.line = 2;
    failed.errorCode = "timeout";
    failed.error = "scoring timed out after 10ms";
    failed.timedOut = true;
    const std::string stream =
        wire::encodeBatchItem(ok) + wire::encodeBatchItem(failed);

    wire::FrameReader reader(stream);
    wire::Frame frame;
    ASSERT_TRUE(reader.next(frame));
    const wire::BatchItem first = wire::decodeBatchItem(frame);
    EXPECT_EQ(first.line, 1u);
    EXPECT_TRUE(first.ok);
    EXPECT_EQ(first.doc.id, ok.doc.id);
    ASSERT_TRUE(reader.next(frame));
    const wire::BatchItem second = wire::decodeBatchItem(frame);
    EXPECT_EQ(second.line, 2u);
    EXPECT_FALSE(second.ok);
    EXPECT_EQ(second.errorCode, "timeout");
    EXPECT_EQ(second.error, failed.error);
    EXPECT_TRUE(second.timedOut);
    EXPECT_FALSE(reader.next(frame));
    EXPECT_FALSE(reader.sawCorruption());
    EXPECT_EQ(reader.validBytes(), stream.size());
}

TEST(WireCodec, FrameReaderStopsAtTornTailKeepingValidPrefix)
{
    wire::BatchItem item;
    item.line = 1;
    item.errorCode = "scoring_failed";
    item.error = "x";
    const std::string whole = wire::encodeBatchItem(item);
    const std::string torn =
        whole + whole.substr(0, whole.size() - 5);
    wire::FrameReader reader(torn);
    wire::Frame frame;
    EXPECT_TRUE(reader.next(frame));
    EXPECT_FALSE(reader.next(frame));
    EXPECT_TRUE(reader.sawCorruption());
    EXPECT_EQ(reader.validBytes(), whole.size());
    EXPECT_NE(reader.corruption().find("torn"), std::string::npos);
}

TEST(WireCodec, ObservationRoundTripsWithAndWithoutPlain)
{
    wire::Observation full;
    full.ratio = 1.25;
    full.hasPlain = true;
    full.plainRatio = 1.5;
    full.id = "nightly";
    const wire::Observation back =
        wire::decodeObservation(wire::encodeObservation(full));
    EXPECT_EQ(back.ratio, full.ratio);
    EXPECT_TRUE(back.hasPlain);
    EXPECT_EQ(back.plainRatio, full.plainRatio);
    EXPECT_EQ(back.id, full.id);

    wire::Observation bare;
    bare.ratio = 2.0;
    const wire::Observation bareBack =
        wire::decodeObservation(wire::encodeObservation(bare));
    EXPECT_EQ(bareBack.ratio, 2.0);
    EXPECT_FALSE(bareBack.hasPlain);
    EXPECT_TRUE(bareBack.id.empty());
}

TEST(WireCodec, TypeConfusionIsRejected)
{
    const std::string observe =
        wire::encodeObservation(wire::Observation{1.0, false, 0.0, ""});
    EXPECT_THROW(wire::decodeScoreRequest(observe), Error);
    EXPECT_THROW((void)wire::BatchView(observe), Error);
    EXPECT_THROW(wire::decodeScoreReport(observe), Error);
}

// --- malformed frames, built programmatically -------------------------

TEST(WireCodec, TruncatedFramesAreTorn)
{
    const std::string body = wire::encodeScoreRequest("a line");
    expectDecodeError(body.substr(0, 6), "torn frame header");
    expectDecodeError(body.substr(0, body.size() - 2),
                      "torn frame payload");
}

TEST(WireCodec, BadCrcIsRejected)
{
    std::string body = wire::encodeScoreRequest("a line");
    body[wire::kFrameOverhead + 2] ^= 0x01;
    expectDecodeError(body, "CRC mismatch");
}

TEST(WireCodec, OversizedLengthPrefixIsRejectedBeforeAllocation)
{
    std::string body = wire::encodeScoreRequest("a line");
    body[4] = '\xFF';
    body[5] = '\xFF';
    body[6] = '\xFF';
    body[7] = '\x7F';
    expectDecodeError(body, "oversized length prefix");
}

TEST(WireCodec, WrongWireVersionIsRefusedWithStableError)
{
    std::string body = wire::encodeScoreRequest("a line");
    body[12] = 9;
    restampCrc(body);
    expectDecodeError(body, "unsupported wire version 9");
}

TEST(WireCodec, UnknownMessageTypeIsRefused)
{
    std::string body = wire::encodeScoreRequest("a line");
    body[13] = static_cast<char>(200);
    restampCrc(body);
    expectDecodeError(body, "unknown message type 200");
}

TEST(WireCodec, BadMagicAndTrailingGarbageAreRejected)
{
    std::string body = wire::encodeScoreRequest("a line");
    std::string magic = body;
    magic[0] = 'X';
    expectDecodeError(magic, "bad frame magic");
    EXPECT_THROW(wire::decodeSingleFrame(body + "junk"), Error);
}

// --- malformed frames, from the checked-in corpus ---------------------

TEST(WireCodec, CorpusFramesFailExactlyAsLabeled)
{
    const std::string dir = HM_WIRE_CORPUS_DIR;
    const std::string valid =
        util::readFile(dir + "/valid_score_request.bin");
    EXPECT_FALSE(wire::decodeScoreRequest(valid).empty());
    const struct
    {
        const char *file;
        const char *needle;
    } cases[] = {
        {"truncated.bin", "torn frame payload"},
        {"bad_crc.bin", "CRC mismatch"},
        {"bad_version.bin", "unsupported wire version 9"},
        {"unknown_type.bin", "unknown message type 200"},
        {"oversized_length.bin", "oversized length prefix"},
        {"bad_magic.bin", "bad frame magic"},
    };
    for (const auto &c : cases) {
        SCOPED_TRACE(c.file);
        expectDecodeError(util::readFile(dir + "/" + c.file),
                          c.needle);
    }
}

// --- negotiation helpers ----------------------------------------------

TEST(WireNegotiation, MediaTypeStripsParametersAndCase)
{
    EXPECT_EQ(wire::mediaType("Application/JSON; charset=utf-8"),
              "application/json");
    EXPECT_EQ(wire::mediaType("  text/plain  "), "text/plain");
    EXPECT_TRUE(wire::isWireMediaType(
        "application/x-hiermeans-wire; q=1.0"));
    EXPECT_FALSE(wire::isWireMediaType("application/json"));
}

TEST(WireNegotiation, AcceptSelectsBinaryOnlyWhenNamedExplicitly)
{
    EXPECT_EQ(wire::negotiateAccept("").format,
              wire::ResponseFormat::Json);
    EXPECT_EQ(wire::negotiateAccept("*/*").format,
              wire::ResponseFormat::Json);
    EXPECT_EQ(wire::negotiateAccept("application/json").format,
              wire::ResponseFormat::Json);
    EXPECT_EQ(
        wire::negotiateAccept("application/x-hiermeans-wire").format,
        wire::ResponseFormat::Binary);
    const wire::Negotiated both = wire::negotiateAccept(
        "application/x-hiermeans-wire, application/json");
    EXPECT_TRUE(both.acceptable);
    EXPECT_EQ(both.format, wire::ResponseFormat::Binary);
    EXPECT_EQ(wire::negotiateAccept(wire::acceptBoth()).format,
              wire::ResponseFormat::Binary);
}

TEST(WireNegotiation, UnservableAcceptIsNotAcceptable)
{
    const wire::Negotiated refused =
        wire::negotiateAccept("application/xml");
    EXPECT_FALSE(refused.acceptable);
    EXPECT_TRUE(wire::negotiateAccept("text/*").acceptable);
    EXPECT_TRUE(
        wire::negotiateAccept("application/x-ndjson").acceptable);
}

// --- the JSON pivot ---------------------------------------------------

TEST(WireJson, ScoreDocumentJsonRoundTripsBitIdentically)
{
    const wire::ScoreDocument doc = sampleDocument();
    const std::string json = server::scoreDocumentJson(doc);
    const std::string again = server::scoreDocumentJson(
        server::scoreDocumentFromJson(json));
    EXPECT_EQ(json, again);
}

TEST(WireJson, BinaryAndJsonPathsRenderTheSameDocument)
{
    // The server's two response paths: render the document as JSON,
    // or frame it and have the client decode + render. Both must be
    // byte-identical.
    const wire::ScoreDocument doc = sampleDocument();
    const std::string direct = server::scoreDocumentJson(doc);
    const std::string viaWire = server::scoreDocumentJson(
        wire::decodeScoreReport(wire::encodeScoreReport(doc)));
    EXPECT_EQ(direct, viaWire);
}

TEST(WireJson, ObservationJsonIsAFixedPoint)
{
    wire::Observation obs;
    obs.ratio = 1.25;
    obs.hasPlain = true;
    obs.plainRatio = 1.5;
    obs.id = "smoke";
    const std::string json = server::observationJson(obs);
    wire::Observation back;
    ASSERT_TRUE(server::observationFromJson(json, back));
    EXPECT_EQ(server::observationJson(back), json);
}

} // namespace
