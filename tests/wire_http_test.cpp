/**
 * The negotiated wire format end to end over loopback HTTP: a real
 * Server (durable store + drift armed, so every list endpoint is
 * live) driven both raw and through ScoringClient. Covers the
 * JSON-vs-binary bit-identity of score documents on /v1/score and
 * /v1/batch, the 415/406 negotiation failures with their stable
 * envelope codes, malformed binary bodies, binary observe intake,
 * the client's binary-by-default + sticky JSON fallback (via the
 * server.wire.reject fault point), and the shared `?limit=` bound
 * on /v1/traces, /v1/history and /v1/drift.
 */

#include <cstdio>
#include <gtest/gtest.h>
#include <memory>
#include <sstream>
#include <string>
#include <unistd.h>
#include <vector>

#include "src/client/scoring_client.h"
#include "src/server/client.h"
#include "src/server/json.h"
#include "src/server/server.h"
#include "src/server/wire_json.h"
#include "src/util/fault.h"
#include "src/util/file.h"
#include "src/util/str.h"
#include "src/wire/wire.h"

namespace {

using namespace hiermeans;
using Response = server::HttpResponseParser::Response;
using Headers = server::HttpClient::Headers;

/** The `data` value of a /v1 envelope (object form). */
std::string
envelopeData(const std::string &body)
{
    const std::size_t at = body.find("\"data\":");
    const std::size_t end = body.find(",\"error\":", at);
    if (at == std::string::npos || end == std::string::npos)
        return "";
    return body.substr(at + 7, end - (at + 7));
}

/** Blank the per-request fields (timing, cache attribution) so two
 *  independently-served documents can be compared bit-for-bit. */
wire::ScoreDocument
deterministic(wire::ScoreDocument doc)
{
    doc.servedBy.clear();
    doc.wallMillis = 0.0;
    return doc;
}

class WireHttpTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        stem_ = "/tmp/hiermeans_wire_http_" +
                std::to_string(::getpid());
        dataDir_ = stem_ + "_data";
        wipeDataDir();
        scoresPath_ = stem_ + "_scores.csv";
        featuresPath_ = stem_ + "_features.csv";
        util::writeFile(scoresPath_, "workload,mA,mB\n"
                                     "w0,1.0,2.0\n"
                                     "w1,2.0,1.0\n"
                                     "w2,1.5,1.5\n"
                                     "w3,3.0,1.0\n"
                                     "w4,1.0,3.0\n"
                                     "w5,2.5,2.5\n");
        util::writeFile(featuresPath_, "workload,f0,f1,f2\n"
                                       "w0,0.1,1.0,-0.5\n"
                                       "w1,0.9,-1.0,0.5\n"
                                       "w2,0.2,0.8,-0.4\n"
                                       "w3,0.8,-0.9,0.6\n"
                                       "w4,-0.7,0.1,1.2\n"
                                       "w5,-0.6,0.2,1.1\n");

        server::Server::Config config;
        config.port = 0;
        config.engine.threads = 2;
        config.queueDepth = 4;
        config.connectionThreads = 8;
        config.store.dataDir = dataDir_;
        config.store.fsyncEvery = 1;
        server_ = std::make_unique<server::Server>(config);
        server_->start();
    }

    void
    TearDown() override
    {
        fault::reset();
        if (server_ != nullptr)
            server_->stop();
        server_.reset();
        std::remove(scoresPath_.c_str());
        std::remove(featuresPath_.c_str());
        wipeDataDir();
    }

    void
    wipeDataDir()
    {
        if (!util::fileExists(dataDir_))
            return;
        for (const std::string &name : util::listDir(dataDir_))
            util::removeFile(dataDir_ + "/" + name);
        ::rmdir(dataDir_.c_str());
    }

    std::string
    line(const std::string &extra = "") const
    {
        return "scores=" + scoresPath_ + " features=" + featuresPath_ +
               " machine-a=mA machine-b=mB som-steps=150 seed=7" +
               (extra.empty() ? "" : " " + extra);
    }

    server::HttpClient
    client() const
    {
        return server::HttpClient("127.0.0.1", server_->port());
    }

    client::ScoringClient
    scoringClient(bool binary = true) const
    {
        client::ScoringClient::Config config;
        config.host = "127.0.0.1";
        config.port = server_->port();
        config.binaryWire = binary;
        return client::ScoringClient(config);
    }

    std::string stem_;
    std::string dataDir_;
    std::string scoresPath_;
    std::string featuresPath_;
    std::unique_ptr<server::Server> server_;
};

TEST_F(WireHttpTest, BinaryScoreMatchesJsonScoreBitIdentically)
{
    auto c = client();
    const Response viaJson =
        c.roundTrip("POST", "/v1/score", line(), "text/plain");
    ASSERT_EQ(viaJson.status, 200) << viaJson.body;
    const std::string jsonData = envelopeData(viaJson.body);
    ASSERT_FALSE(jsonData.empty());

    const Response viaWire = c.roundTrip(
        "POST", "/v1/score", wire::encodeScoreRequest(line()),
        wire::kMediaType, {{"Accept", wire::acceptBoth()}});
    ASSERT_EQ(viaWire.status, 200);
    EXPECT_TRUE(wire::isWireMediaType(
        viaWire.header("content-type", "")));
    EXPECT_FALSE(viaWire.header("x-hiermeans-source", "").empty());

    const wire::ScoreDocument doc =
        wire::decodeScoreReport(viaWire.body);
    EXPECT_EQ(server::scoreDocumentJson(
                  deterministic(server::scoreDocumentFromJson(jsonData))),
              server::scoreDocumentJson(deterministic(doc)));
}

TEST_F(WireHttpTest, BinaryBatchStreamMatchesNdjsonLineForLine)
{
    // The middle line parses (key=value) but fails to build — a
    // per-line error, not a whole-document 400.
    const std::vector<std::string> manifest = {
        line(),
        "scores=/no/such.csv features=/no/such.csv "
        "machine-a=mA machine-b=mB",
        line("k=4")};
    const std::string text =
        str::join(manifest, "\n") + "\n";

    auto c = client();
    const Response viaJson = c.roundTrip("POST", "/v1/batch", text,
                                         "text/plain");
    ASSERT_EQ(viaJson.status, 200) << viaJson.body;
    EXPECT_EQ(viaJson.header("content-type", ""),
              "application/x-ndjson");
    std::vector<std::string> ndjson;
    for (const std::string &row : str::split(viaJson.body, '\n'))
        if (!row.empty())
            ndjson.push_back(row);
    ASSERT_EQ(ndjson.size(), manifest.size());

    const Response viaWire = c.roundTrip(
        "POST", "/v1/batch",
        wire::encodeBatchManifest(manifest), wire::kMediaType,
        {{"Accept", wire::acceptBoth()}});
    ASSERT_EQ(viaWire.status, 200);
    EXPECT_TRUE(wire::isWireMediaType(
        viaWire.header("content-type", "")));

    wire::FrameReader reader(viaWire.body);
    wire::Frame frame;
    std::vector<wire::BatchItem> items;
    while (reader.next(frame))
        items.push_back(wire::decodeBatchItem(frame));
    EXPECT_FALSE(reader.sawCorruption()) << reader.corruption();
    ASSERT_EQ(items.size(), manifest.size());

    for (std::size_t i = 0; i < items.size(); ++i) {
        SCOPED_TRACE("line " + std::to_string(i + 1));
        EXPECT_EQ(items[i].line, i + 1);
        if (items[i].ok) {
            EXPECT_NE(ndjson[i].find("\"ok\":true"),
                      std::string::npos);
            // The NDJSON line's data carries an extra leading
            // `line` field; the parser ignores it.
            const wire::ScoreDocument fromJson =
                server::scoreDocumentFromJson(
                    envelopeData(ndjson[i]));
            EXPECT_EQ(
                server::scoreDocumentJson(deterministic(fromJson)),
                server::scoreDocumentJson(deterministic(items[i].doc)));
        } else {
            EXPECT_EQ(items[i].errorCode, "invalid_manifest");
            EXPECT_NE(ndjson[i].find("invalid_manifest"),
                      std::string::npos);
        }
    }
}

TEST_F(WireHttpTest, BinaryObserveMatchesJsonObserve)
{
    auto c = client();
    ASSERT_EQ(c.roundTrip("POST", "/v1/suites?name=wiresuite", line())
                  .status,
              200);

    wire::Observation obs;
    obs.ratio = 1.25;
    obs.hasPlain = true;
    obs.plainRatio = 1.5;
    obs.id = "wire-obs";
    const Response viaWire = c.roundTrip(
        "POST", "/v1/suites/wiresuite/observe",
        wire::encodeObservation(obs), wire::kMediaType);
    ASSERT_EQ(viaWire.status, 200) << viaWire.body;
    EXPECT_EQ(server::json::findNumber(viaWire.body, "ratio"), 1.25);

    const Response viaJson = c.roundTrip(
        "POST", "/v1/suites/wiresuite/observe",
        server::observationJson(obs), "application/json");
    ASSERT_EQ(viaJson.status, 200) << viaJson.body;
    // Same intake either way: identical normalized ratios, and the
    // history ring deepened by exactly one entry per intake.
    EXPECT_EQ(server::json::findNumber(viaWire.body, "plain_ratio"),
              server::json::findNumber(viaJson.body, "plain_ratio"));
    EXPECT_EQ(server::json::findNumber(viaWire.body, "history"), 1.0);
    EXPECT_EQ(server::json::findNumber(viaJson.body, "history"), 2.0);
}

TEST_F(WireHttpTest, UnsupportedContentTypeIs415WithStableCode)
{
    auto c = client();
    const Response refused = c.roundTrip("POST", "/v1/score", line(),
                                         "application/xml");
    EXPECT_EQ(refused.status, 415);
    EXPECT_NE(refused.body.find("unsupported_media_type"),
              std::string::npos);
    // The refusal names what it would have accepted.
    EXPECT_NE(refused.body.find(wire::kMediaType),
              std::string::npos);
}

TEST_F(WireHttpTest, UnacceptableAcceptIs406WithStableCode)
{
    auto c = client();
    const Response refused =
        c.roundTrip("POST", "/v1/score", line(), "text/plain",
                    {{"Accept", "application/xml"}});
    EXPECT_EQ(refused.status, 406);
    EXPECT_NE(refused.body.find("not_acceptable"), std::string::npos);
    // Error envelopes are always JSON, even on negotiation failures.
    EXPECT_NE(refused.body.find("\"ok\":false"), std::string::npos);
}

TEST_F(WireHttpTest, MalformedBinaryBodiesAreBadRequests)
{
    auto c = client();
    const std::string valid = wire::encodeScoreRequest(line());
    const struct
    {
        const char *what;
        std::string body;
    } cases[] = {
        {"torn tail", valid.substr(0, valid.size() - 3)},
        {"bad magic", "XXXX" + valid.substr(4)},
        {"wrong frame type",
         wire::encodeObservation(wire::Observation{1.0, false, 0.0,
                                                   ""})},
    };
    for (const auto &broken : cases) {
        SCOPED_TRACE(broken.what);
        const Response refused = c.roundTrip(
            "POST", "/v1/score", broken.body, wire::kMediaType);
        EXPECT_EQ(refused.status, 400);
        EXPECT_NE(refused.body.find("bad_request"),
                  std::string::npos);
    }
    std::string corrupt = valid;
    corrupt[wire::kFrameOverhead] ^= 0x10;
    const Response refused = c.roundTrip("POST", "/v1/score", corrupt,
                                         wire::kMediaType);
    EXPECT_EQ(refused.status, 400);
    EXPECT_NE(refused.body.find("CRC"), std::string::npos);
}

TEST_F(WireHttpTest, ScoringClientSpeaksBinaryByDefault)
{
    auto binary = scoringClient();
    const client::Outcome viaWire = binary.score(line(), "t-wire");
    ASSERT_TRUE(viaWire.ok()) << viaWire.error;
    EXPECT_TRUE(viaWire.wireBinary);
    EXPECT_GT(viaWire.responseBodyBytes, 0u);

    auto json = scoringClient(false);
    const client::Outcome viaJson = json.score(line(), "t-json");
    ASSERT_TRUE(viaJson.ok());
    EXPECT_FALSE(viaJson.wireBinary);

    // The client re-renders binary answers into the canonical
    // envelope: both outcomes carry the same document.
    const auto normalize = [](const client::Outcome &outcome) {
        return server::scoreDocumentJson(
            deterministic(server::scoreDocumentFromJson(
                envelopeData(outcome.response.body))));
    };
    EXPECT_EQ(normalize(viaWire), normalize(viaJson));
}

TEST_F(WireHttpTest, ScoringClientFallsBackToJsonStickilyOn415)
{
    auto c = scoringClient();
    fault::configure("server.wire.reject=always");
    const client::Outcome first = c.score(line(), "t-fallback");
    ASSERT_TRUE(first.ok()) << first.error;
    EXPECT_FALSE(first.wireBinary);
    EXPECT_TRUE(c.jsonFallback());

    // Sticky: once downgraded, later requests lead with JSON even
    // after the server stops refusing.
    fault::reset();
    const client::Outcome second = c.score(line(), "t-sticky");
    ASSERT_TRUE(second.ok());
    EXPECT_FALSE(second.wireBinary);
}

TEST_F(WireHttpTest, SharedListLimitBoundIsEnforcedEverywhere)
{
    auto c = client();
    // Arm the list endpoints with real content.
    ASSERT_EQ(c.roundTrip("POST", "/v1/score", line(), "text/plain")
                  .status,
              200);
    for (const char *target :
         {"/v1/traces?limit=0", "/v1/traces?limit=abc",
          "/v1/history?limit=1001", "/v1/history?limit=-3",
          "/v1/drift?limit=99999999999"}) {
        SCOPED_TRACE(target);
        const Response refused = c.roundTrip("GET", target);
        EXPECT_EQ(refused.status, 400);
        EXPECT_NE(refused.body.find("bad_request"),
                  std::string::npos);
        // The bound itself is named in the error.
        EXPECT_NE(refused.body.find("[1, 1000]"), std::string::npos);
    }
    for (const char *target :
         {"/v1/traces?limit=1", "/v1/history?limit=1000",
          "/v1/drift?limit=5", "/v1/traces", "/v1/history"}) {
        SCOPED_TRACE(target);
        EXPECT_EQ(c.roundTrip("GET", target).status, 200);
    }
    // /v1/history honors the cap: ask for one entry after two scores.
    ASSERT_EQ(
        c.roundTrip("POST", "/v1/score", line("k=4"), "text/plain")
            .status,
        200);
    const Response capped =
        c.roundTrip("GET", "/v1/history?limit=1");
    ASSERT_EQ(capped.status, 200);
    EXPECT_EQ(server::json::findNumber(capped.body, "count"), 1.0);
}

TEST_F(WireHttpTest, MetricsExposeWireFamilies)
{
    auto c = client();
    ASSERT_EQ(c.roundTrip("POST", "/v1/score",
                          wire::encodeScoreRequest(line()),
                          wire::kMediaType,
                          {{"Accept", wire::acceptBoth()}})
                  .status,
              200);
    ASSERT_EQ(c.roundTrip("POST", "/v1/score", line(), "text/plain")
                  .status,
              200);
    const Response metrics = c.roundTrip("GET", "/metrics");
    ASSERT_EQ(metrics.status, 200);
    EXPECT_NE(metrics.body.find(
                  "hiermeans_wire_requests_total{format=\"json\"}"),
              std::string::npos);
    EXPECT_NE(metrics.body.find(
                  "hiermeans_wire_requests_total{format=\"binary\"}"),
              std::string::npos);
    EXPECT_NE(metrics.body.find(
                  "hiermeans_wire_supported{version=\"1\"} 1"),
              std::string::npos);
}

} // namespace
