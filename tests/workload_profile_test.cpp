/**
 * @file
 * Tests for the Table I workload profiles.
 */

#include <gtest/gtest.h>

#include "src/workload/workload_profile.h"

namespace {

using namespace hiermeans::workload;

TEST(WorkloadProfileTest, ThirteenWorkloadsInPaperOrder)
{
    const auto &suite = paperSuiteProfiles();
    ASSERT_EQ(suite.size(), 13u);
    EXPECT_EQ(suite[0].name, "jvm98.201.compress");
    EXPECT_EQ(suite[4].name, "jvm98.227.mtrt");
    EXPECT_EQ(suite[5].name, "SciMark2.FFT");
    EXPECT_EQ(suite[9].name, "SciMark2.Sparse");
    EXPECT_EQ(suite[10].name, "DaCapo.hsqldb");
    EXPECT_EQ(suite[12].name, "DaCapo.xalan");
}

TEST(WorkloadProfileTest, OriginCounts)
{
    EXPECT_EQ(indicesOfOrigin(SuiteOrigin::SpecJvm98).size(), 5u);
    EXPECT_EQ(indicesOfOrigin(SuiteOrigin::SciMark2).size(), 5u);
    EXPECT_EQ(indicesOfOrigin(SuiteOrigin::DaCapo).size(), 3u);
    EXPECT_EQ(indicesOfOrigin(SuiteOrigin::SciMark2),
              (std::vector<std::size_t>{5, 6, 7, 8, 9}));
}

TEST(WorkloadProfileTest, NamesMatchProfiles)
{
    const auto names = paperWorkloadNames();
    const auto &suite = paperSuiteProfiles();
    ASSERT_EQ(names.size(), suite.size());
    for (std::size_t i = 0; i < names.size(); ++i)
        EXPECT_EQ(names[i], suite[i].name);
}

TEST(WorkloadProfileTest, LatentValuesAreIntensities)
{
    for (const auto &profile : paperSuiteProfiles()) {
        for (double v : profile.latent) {
            EXPECT_GE(v, 0.0) << profile.name;
            EXPECT_LE(v, 1.0) << profile.name;
        }
    }
}

TEST(WorkloadProfileTest, SciMarkKernelsAreNearIdentical)
{
    // The latent design encodes the paper's core observation: the five
    // SciMark2 kernels differ by tiny deltas only.
    const auto &suite = paperSuiteProfiles();
    const auto sc = indicesOfOrigin(SuiteOrigin::SciMark2);
    for (std::size_t i : sc) {
        for (std::size_t j : sc) {
            for (std::size_t axis = 0; axis < kLatentAxes; ++axis) {
                EXPECT_NEAR(suite[i].latent[axis], suite[j].latent[axis],
                            0.05)
                    << suite[i].name << " vs " << suite[j].name;
            }
        }
    }
}

TEST(WorkloadProfileTest, SciMarkSharesMethodSeedGroup)
{
    const auto &suite = paperSuiteProfiles();
    for (std::size_t i : indicesOfOrigin(SuiteOrigin::SciMark2))
        EXPECT_EQ(suite[i].methodSeedGroup, "scimark.kernel");
    // Everyone else uses a private group.
    for (std::size_t i : indicesOfOrigin(SuiteOrigin::SpecJvm98))
        EXPECT_EQ(suite[i].methodSeedGroup, suite[i].name);
}

TEST(WorkloadProfileTest, EveryWorkloadUsesJdkCore)
{
    for (const auto &profile : paperSuiteProfiles()) {
        bool has_core = false;
        for (const auto &lib : profile.libraries) {
            if (lib.tag == "jdk.core")
                has_core = true;
            EXPECT_GT(lib.coverage, 0.0);
            EXPECT_LE(lib.coverage, 1.0);
        }
        EXPECT_TRUE(has_core) << profile.name;
    }
}

TEST(WorkloadProfileTest, OriginNames)
{
    EXPECT_STREQ(suiteOriginName(SuiteOrigin::SpecJvm98), "SPECjvm98");
    EXPECT_STREQ(suiteOriginName(SuiteOrigin::SciMark2), "SciMark2");
    EXPECT_STREQ(suiteOriginName(SuiteOrigin::DaCapo), "DaCapo");
}

} // namespace
