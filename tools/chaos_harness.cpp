/**
 * @file
 * chaos_harness — deterministic chaos testing of the serving stack.
 *
 * Drives an in-process server::Server under seeded fault schedules
 * (util/fault.h) and checks the robustness contract end to end:
 *
 *   (a) the process never crashes — faults surface as error responses
 *       or closed connections, never as termination;
 *   (b) no client is ever left hanging: every request either gets a
 *       response or a promptly-detectable connection failure (a client
 *       read timeout counts as a violation), and on the server side
 *       every counted request was answered
 *       (requests == responses_2xx + 4xx + 5xx);
 *   (c) every 200 body is bit-identical to the fault-free baseline for
 *       the same manifest line (volatile fields `wall_ms` and
 *       `served_by` stripped) — faults may fail requests, but they may
 *       never corrupt a success;
 *   (d) kill-and-recover: each schedule's server mounts a durable
 *       store (WAL + snapshots) on a scratch data dir, with store
 *       faults in the schedule; after the run a fresh fault-free
 *       StateStore recovers the dir and its canonical state image
 *       must be bit-identical to what the live server had committed;
 *   (e) mesh leader kill: a 2-node loopback mesh (replicas=2) takes a
 *       stream of suite writes, the shard leader dies mid-stream, and
 *       the surviving node must hold every acknowledged write exactly
 *       once — replication acks only after the follower is durable,
 *       so a leader kill may lose nothing and duplicate nothing.
 *
 * Determinism: the fault schedules are derived from --seed, request
 * counts are fixed (not duration-based), and the report contains only
 * deterministic fields — so two runs with the same flags must print
 * bit-identical reports. tools/smoke_chaos.sh diffs exactly that.
 *
 * Usage:
 *   chaos_harness [--seed=1] [--clients=4] [--requests=25]
 *                 [--schedules=3] [--json-only]
 *
 * Prints one JSON report line; exits 0 iff every invariant held.
 */

#include <cerrno>
#include <cstdio>
#include <iostream>
#include <memory>
#include <thread>
#include <unistd.h>
#include <vector>

#include "src/hiermeans.h"

namespace {

using namespace hiermeans;

void
printUsage()
{
    std::cout <<
        "chaos_harness (" << util::kVersionString << "): deterministic\n"
        "chaos testing of the serving stack\n"
        "\n"
        "optional flags:\n"
        "  --seed=N       master seed for the fault schedules (default 1)\n"
        "  --clients=N    concurrent clients per schedule (default 4)\n"
        "  --requests=N   requests per client per schedule (default 25)\n"
        "  --schedules=N  distinct fault schedules to run (default 3)\n"
        "  --json-only    print only the JSON report line\n";
}

/** Remove one `"key":value` field (and its comma) from a JSON body. */
std::string
stripField(std::string body, const std::string &key)
{
    const std::string needle = "\"" + key + "\":";
    const std::size_t pos = body.find(needle);
    if (pos == std::string::npos)
        return body;
    std::size_t end = pos + needle.size();
    if (end < body.size() && body[end] == '"') {
        end = body.find('"', end + 1);
        end = (end == std::string::npos) ? body.size() : end + 1;
    } else {
        while (end < body.size() && body[end] != ',' && body[end] != '}')
            ++end;
    }
    std::size_t start = pos;
    if (start > 0 && body[start - 1] == ',')
        --start;
    else if (end < body.size() && body[end] == ',')
        ++end;
    body.erase(start, end - start);
    return body;
}

/** A 200 body with the volatile fields removed. */
std::string
canonicalBody(const std::string &body)
{
    return stripField(
        stripField(stripField(body, "wall_ms"), "served_by"),
        "trace_id");
}

/** One seeded fault schedule, derived deterministically from the
 *  master seed and the schedule index. */
std::string
makeSchedule(std::uint64_t seed, std::size_t index)
{
    rng::Engine rng(seed ^ (0x9e3779b97f4a7c15ULL * (index + 1)));
    std::vector<std::string> fragments;
    // Some network noise is always on; the heavier faults are drawn.
    fragments.push_back("net.write.short=p:" +
                        str::fixed(0.05 + 0.15 * rng.uniform(), 3));
    fragments.push_back("net.read.eintr=p:" +
                        str::fixed(0.05 + 0.10 * rng.uniform(), 3));
    if (rng.bernoulli(0.5))
        fragments.push_back("server.response.write=every:" +
                            std::to_string(7 + rng.below(20)));
    if (rng.bernoulli(0.5))
        fragments.push_back("net.write.fail=every:" +
                            std::to_string(13 + rng.below(30)));
    if (rng.bernoulli(0.4))
        fragments.push_back("net.read.reset=nth:" +
                            std::to_string(3 + rng.below(40)));
    if (rng.bernoulli(0.4))
        fragments.push_back("net.accept=p:" +
                            str::fixed(0.10 * rng.uniform(), 3));
    if (rng.bernoulli(0.5))
        fragments.push_back("engine.task=every:" +
                            std::to_string(4 + rng.below(10)));
    if (rng.bernoulli(0.5))
        fragments.push_back("engine.cache.put=p:" +
                            str::fixed(0.30 * rng.uniform(), 3));
    if (rng.bernoulli(0.35))
        fragments.push_back("engine.stall=nth:" +
                            std::to_string(1 + rng.below(5)) + "@2500");
    if (rng.bernoulli(0.3))
        fragments.push_back("file.read=p:" +
                            str::fixed(0.05 * rng.uniform(), 3));
    // Store faults: appends that fail, a torn final frame, snapshot
    // writes that abort. `store.wal.fsync` is deliberately absent —
    // it fires after the frame is durable, so the disk would hold a
    // record the live state lacks and (d) would flag a false loss.
    // The append path sees only a handful of hits per schedule (one
    // per distinct score plus snapshot cadence), so these triggers
    // are tuned hot or they would never fire.
    if (rng.bernoulli(0.4))
        fragments.push_back("store.wal.append=p:" +
                            str::fixed(0.25 + 0.35 * rng.uniform(), 3));
    if (rng.bernoulli(0.4))
        fragments.push_back("store.wal.torn=nth:" +
                            std::to_string(1 + rng.below(4)));
    if (rng.bernoulli(0.35))
        fragments.push_back("store.snapshot.write=p:" +
                            str::fixed(0.30 + 0.40 * rng.uniform(), 3));
    std::string spec;
    for (const std::string &fragment : fragments) {
        if (!spec.empty())
            spec += ",";
        spec += fragment;
    }
    return spec;
}

/** Fixture files + distinct manifest lines shared by every schedule. */
struct Workbench
{
    std::string scoresPath;
    std::string featuresPath;
    std::vector<std::string> lines;

    Workbench()
    {
        const std::string stem = "/tmp/hiermeans_chaos_" +
                                 std::to_string(::getpid());
        scoresPath = stem + "_scores.csv";
        featuresPath = stem + "_features.csv";
        util::writeFile(scoresPath, "workload,mA,mB\n"
                                    "w0,1.0,2.0\n"
                                    "w1,2.0,1.0\n"
                                    "w2,1.5,1.5\n"
                                    "w3,3.0,1.0\n"
                                    "w4,1.0,3.0\n"
                                    "w5,2.5,2.5\n");
        util::writeFile(featuresPath, "workload,f0,f1,f2\n"
                                      "w0,0.1,1.0,-0.5\n"
                                      "w1,0.9,-1.0,0.5\n"
                                      "w2,0.2,0.8,-0.4\n"
                                      "w3,0.8,-0.9,0.6\n"
                                      "w4,-0.7,0.1,1.2\n"
                                      "w5,-0.6,0.2,1.1\n");
        for (int i = 0; i < 3; ++i) {
            lines.push_back("scores=" + scoresPath +
                            " features=" + featuresPath +
                            " machine-a=mA machine-b=mB som-steps=150" +
                            " id=chaos" + std::to_string(i) +
                            " seed=" + std::to_string(101 + i));
        }
    }

    ~Workbench()
    {
        std::remove(scoresPath.c_str());
        std::remove(featuresPath.c_str());
    }
};

/** Delete every file in @p path (descending into replica_<leader>
 *  mirror subdirectories), then the directory itself. */
void
wipeDir(const std::string &path)
{
    if (!util::fileExists(path))
        return;
    for (const std::string &name : util::listDir(path)) {
        const std::string entry = path + "/" + name;
        if (::rmdir(entry.c_str()) == 0)
            continue;
        if (errno == ENOTEMPTY || errno == EEXIST) {
            for (const std::string &inner : util::listDir(entry))
                util::removeFile(entry + "/" + inner);
            ::rmdir(entry.c_str());
        } else {
            util::removeFile(entry);
        }
    }
    ::rmdir(path.c_str());
}

server::Server::Config
chaosServerConfig(const std::string &data_dir = "")
{
    server::Server::Config config;
    config.port = 0;
    config.engine.threads = 2;
    config.queueDepth = 2;
    config.connectionThreads = 8;
    config.breaker.failureThreshold = 4;
    config.breaker.openMillis = 300.0;
    config.watchdog.defaultBudgetMillis = 1500.0;
    config.watchdog.graceMillis = 100.0;
    if (!data_dir.empty()) {
        config.store.dataDir = data_dir;
        config.store.fsyncEvery = 1;
        // A tiny cadence keeps snapshots churning mid-schedule, so
        // store faults hit compaction as well as the append path.
        config.store.snapshotEvery = 2;
    }
    return config;
}

client::ScoringClient::Config
chaosClientConfig(std::uint16_t port, std::uint64_t seed)
{
    client::ScoringClient::Config config;
    config.port = port;
    config.readTimeoutMillis = 10000; // expiry = an unanswered client.
    config.retry.maxAttempts = 8;
    config.retry.baseMillis = 10.0;
    config.retry.capMillis = 250.0;
    config.retry.budgetMillis = 8000.0;
    config.retry.seed = seed;
    // A timeout must be *reported*, not papered over by a retry: the
    // whole point of the harness is catching hangs.
    config.retry.retryTimeout = false;
    return config;
}

/** Fault-free pass: the canonical 200 body per manifest line. */
std::vector<std::string>
recordBaseline(const Workbench &bench)
{
    fault::reset();
    server::Server server(chaosServerConfig());
    server.start();
    client::ScoringClient probe(chaosClientConfig(server.port(), 1));
    std::vector<std::string> baseline;
    for (const std::string &line : bench.lines) {
        const client::Outcome outcome = probe.score(line);
        HM_REQUIRE(outcome.ok(), "chaos baseline request failed: "
                                     << (outcome.haveResponse
                                             ? outcome.response.body
                                             : outcome.error));
        baseline.push_back(canonicalBody(outcome.response.body));
    }
    server.stop();
    return baseline;
}

struct ScheduleOutcome
{
    std::string spec;
    std::uint64_t requests = 0;
    std::uint64_t mismatches = 0;
    std::uint64_t unanswered = 0;
    bool serverInvariantOk = false;
    bool storeInvariantOk = false;
    std::string recovery; ///< recovery outcome of the post-run reopen.
};

ScheduleOutcome
runSchedule(const Workbench &bench,
            const std::vector<std::string> &baseline, std::uint64_t seed,
            std::size_t index, std::size_t clients,
            std::size_t requests_per_client, bool verbose)
{
    ScheduleOutcome outcome;
    outcome.spec = makeSchedule(seed, index);
    outcome.requests =
        static_cast<std::uint64_t>(clients) * requests_per_client;

    const std::string data_dir = "/tmp/hiermeans_chaos_" +
                                 std::to_string(::getpid()) + "_s" +
                                 std::to_string(index);
    wipeDir(data_dir);
    server::Server server(chaosServerConfig(data_dir));
    server.start();

    // Arm faults only once the server is up, so startup is clean.
    fault::configure(outcome.spec, seed ^ (index + 1));

    std::vector<std::uint64_t> mismatches(clients, 0);
    std::vector<std::uint64_t> unanswered(clients, 0);
    std::vector<std::thread> threads;
    threads.reserve(clients);
    for (std::size_t c = 0; c < clients; ++c) {
        threads.emplace_back([&, c] {
            client::ScoringClient prober(chaosClientConfig(
                server.port(), seed + 1000 * (index + 1) + c));
            for (std::size_t r = 0; r < requests_per_client; ++r) {
                const std::size_t which =
                    (c + r) % bench.lines.size();
                const client::Outcome result =
                    prober.score(bench.lines[which]);
                if (!result.haveResponse) {
                    if (result.failure == client::FailureClass::TimedOut)
                        ++unanswered[c];
                    // Other connection failures are detectable (the
                    // client was not left hanging) — acceptable chaos.
                    continue;
                }
                if (result.status == 200 &&
                    canonicalBody(result.response.body) !=
                        baseline[which])
                    ++mismatches[c];
            }
        });
    }
    for (std::thread &thread : threads)
        thread.join();

    // What the live server committed, captured before shutdown. The
    // final-snapshot attempt in stop() runs with faults still armed
    // and may fail; recovery must reproduce this image regardless.
    const std::string committed = server.store()->encodeStateBody();

    // The drain runs with faults still armed — chaos the exit too.
    server.stop();

    const server::ServerMetricsSnapshot snap =
        server.metrics().snapshot(0, 0);
    outcome.serverInvariantOk =
        snap.requests ==
        snap.responses2xx + snap.responses4xx + snap.responses5xx;

    for (std::size_t c = 0; c < clients; ++c) {
        outcome.mismatches += mismatches[c];
        outcome.unanswered += unanswered[c];
    }

    // Kill-and-recover: reopen the data dir with faults disarmed and
    // demand the recovered image match the committed one bit for bit.
    const std::vector<fault::PointReport> fault_report = fault::report();
    fault::reset();
    {
        store::StateStore::Config cfg;
        cfg.dataDir = data_dir;
        cfg.fsyncEvery = 1;
        cfg.snapshotEvery = 0;
        store::StateStore recovered(cfg);
        const store::RecoveryInfo info = recovered.open();
        outcome.recovery = store::recoveryOutcomeName(info.outcome);
        outcome.storeInvariantOk =
            recovered.encodeStateBody() == committed;
    }
    wipeDir(data_dir);

    if (verbose) {
        std::cout << "schedule " << index << ": " << outcome.spec
                  << "\n  requests=" << outcome.requests
                  << " 2xx=" << snap.responses2xx
                  << " 4xx=" << snap.responses4xx
                  << " 5xx=" << snap.responses5xx
                  << " stale=" << snap.staleServed
                  << " watchdog=" << snap.watchdogTrips
                  << " mismatches=" << outcome.mismatches
                  << " unanswered=" << outcome.unanswered << "\n";
        std::cout << "  store: recovery=" << outcome.recovery
                  << " invariant="
                  << (outcome.storeInvariantOk ? "ok" : "VIOLATED")
                  << "\n";
        for (const fault::PointReport &point : fault_report) {
            std::cout << "  fault " << point.point << " ("
                      << point.trigger << "): " << point.fires << "/"
                      << point.hits << " fired\n";
        }
    }
    return outcome;
}

struct MeshOutcome
{
    std::uint64_t writes = 0;
    std::uint64_t lost = 0;
    std::uint64_t duplicated = 0;
    bool ok = false;
};

/**
 * Invariant (e): a 2-node mesh takes suite writes through a failover
 * client; the shard leader is stopped after half of them; every write
 * that was acknowledged must be served by the survivor exactly once.
 * Fault-free and fully sequenced, so the outcome is deterministic.
 */
MeshOutcome
runMeshLeaderKill(const Workbench &bench, bool verbose)
{
    fault::reset();
    MeshOutcome outcome;
    const std::string stem = "/tmp/hiermeans_chaos_" +
                             std::to_string(::getpid()) + "_mesh";
    const auto base = static_cast<std::uint16_t>(
        23000 + (::getpid() * 17) % 20000);
    const char *ids[2] = {"a", "b"};
    std::string dirs[2];
    std::string meshText;
    meshText = "replicas = 2\nvnodes = 32\n";
    for (int i = 0; i < 2; ++i) {
        dirs[i] = stem + "_" + ids[i];
        wipeDir(dirs[i]);
        meshText += std::string("node ") + ids[i] + " 127.0.0.1:" +
                    std::to_string(base + i) + "\n";
    }

    std::unique_ptr<mesh::MeshRuntime> runtimes[2];
    std::unique_ptr<server::Server> servers[2];
    for (int i = 0; i < 2; ++i) {
        mesh::MeshRuntime::Config mesh_config;
        mesh_config.mesh = mesh::parseMeshConfig(
            std::string("self = ") + ids[i] + "\n" + meshText);
        mesh_config.dataDir = dirs[i];
        mesh_config.tickMillis = 100;
        runtimes[i] =
            std::make_unique<mesh::MeshRuntime>(mesh_config);
        server::Server::Config config = chaosServerConfig(dirs[i]);
        config.port = static_cast<std::uint16_t>(base + i);
        config.store.snapshotEvery = 0;
        config.cluster = runtimes[i].get();
        servers[i] = std::make_unique<server::Server>(config);
        servers[i]->start();
        runtimes[i]->start(servers[i]->store());
    }

    // Both nodes must see each other healthy before routing is
    // exercised (the very first probe can beat the peer's listener).
    const auto converged = [&](int node) {
        server::HttpClient probe("127.0.0.1",
                                 static_cast<std::uint16_t>(
                                     base + node));
        probe.setReadTimeoutMillis(2000);
        const auto seen = probe.roundTrip("GET", "/v1/cluster");
        return seen.status == 200 &&
               seen.body.find("\"health\":\"down\"") ==
                   std::string::npos &&
               seen.body.find("\"health\":\"unknown\"") ==
                   std::string::npos;
    };
    for (int i = 0; i < 100 && !(converged(0) && converged(1)); ++i)
        std::this_thread::sleep_for(std::chrono::milliseconds(50));

    client::ClusterClient::Config client_config;
    for (int i = 0; i < 2; ++i)
        client_config.targets.push_back(client::ClusterTarget{
            "127.0.0.1", static_cast<std::uint16_t>(base + i)});
    client_config.readTimeoutMillis = 10000;
    client_config.retry.maxAttempts = 4;
    client_config.retry.baseMillis = 10.0;
    client_config.retry.capMillis = 100.0;
    client::ClusterClient client(client_config);

    HM_REQUIRE(client
                   .request("POST", "/v1/suites?name=chaosmesh",
                            bench.lines[0])
                   .ok(),
               "mesh suite registration failed");

    const std::uint64_t total = 20;
    std::uint64_t acked = 0;
    const auto write = [&](std::uint64_t i) {
        const client::Outcome result = client.score(
            "suite=chaosmesh id=mesh-" + std::to_string(i) +
            " seed=" + std::to_string(300 + i));
        if (result.ok())
            ++acked;
        return result.ok();
    };
    for (std::uint64_t i = 0; i < total / 2; ++i)
        HM_REQUIRE(write(i), "pre-kill mesh write " << i << " failed");

    // Drop the shard leader; replication acked each write durably on
    // the follower before the 200, so nothing acknowledged may vanish.
    const std::string owner =
        runtimes[0]->ring().ownerOf("chaosmesh");
    const int ownerIndex = owner == "a" ? 0 : 1;
    const int survivor = 1 - ownerIndex;
    servers[ownerIndex]->stop();
    runtimes[ownerIndex]->stop();
    // Wait until the survivor has marked the leader down, so the
    // post-kill writes route deterministically to the promoted node.
    for (int i = 0; i < 100; ++i) {
        server::HttpClient probe("127.0.0.1",
                                 static_cast<std::uint16_t>(
                                     base + survivor));
        probe.setReadTimeoutMillis(2000);
        if (probe.roundTrip("GET", "/v1/cluster")
                .body.find("\"health\":\"down\"") !=
            std::string::npos)
            break;
        std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }
    for (std::uint64_t i = total / 2; i < total; ++i)
        HM_REQUIRE(write(i), "post-kill mesh write " << i << " failed");

    client::ClusterClient::Config survivor_config;
    survivor_config.targets = {client::ClusterTarget{
        "127.0.0.1", static_cast<std::uint16_t>(base + survivor)}};
    survivor_config.readTimeoutMillis = 10000;
    client::ClusterClient reader(survivor_config);
    const client::Outcome history =
        reader.request("GET", "/v1/history?suite=chaosmesh");
    HM_REQUIRE(history.ok(), "mesh history read failed");
    const std::string &body = history.response.body;
    for (std::uint64_t i = 0; i < total; ++i) {
        const std::string needle =
            "\"id\":\"mesh-" + std::to_string(i) + "\"";
        const std::size_t first = body.find(needle);
        if (first == std::string::npos)
            ++outcome.lost;
        else if (body.find(needle, first + 1) != std::string::npos)
            ++outcome.duplicated;
    }
    outcome.writes = acked;
    outcome.ok = acked == total && outcome.lost == 0 &&
                 outcome.duplicated == 0;

    servers[survivor]->stop();
    runtimes[survivor]->stop();
    for (int i = 0; i < 2; ++i)
        wipeDir(dirs[i]);
    if (verbose)
        std::cout << "mesh leader kill: owner=" << owner
                  << " acked=" << acked << " lost=" << outcome.lost
                  << " duplicated=" << outcome.duplicated
                  << " invariant=" << (outcome.ok ? "ok" : "VIOLATED")
                  << "\n";
    return outcome;
}

int
run(const util::CommandLine &cl)
{
    const auto seed = static_cast<std::uint64_t>(cl.getInt("seed", 1));
    const auto clients =
        static_cast<std::size_t>(cl.getInt("clients", 4));
    const auto requests =
        static_cast<std::size_t>(cl.getInt("requests", 25));
    const auto schedules =
        static_cast<std::size_t>(cl.getInt("schedules", 3));
    const bool json_only = cl.getBool("json-only", false);
    HM_REQUIRE(clients >= 1, "--clients must be >= 1");
    HM_REQUIRE(requests >= 1, "--requests must be >= 1");
    HM_REQUIRE(schedules >= 1, "--schedules must be >= 1");

    Workbench bench;
    const std::vector<std::string> baseline = recordBaseline(bench);
    if (!json_only)
        std::cout << "baseline recorded: " << baseline.size()
                  << " canonical bodies\n";

    std::vector<ScheduleOutcome> outcomes;
    for (std::size_t s = 0; s < schedules; ++s)
        outcomes.push_back(runSchedule(bench, baseline, seed, s,
                                       clients, requests, !json_only));
    const MeshOutcome mesh = runMeshLeaderKill(bench, !json_only);

    bool pass = mesh.ok;
    std::string schedules_json = "[";
    for (std::size_t s = 0; s < outcomes.size(); ++s) {
        const ScheduleOutcome &o = outcomes[s];
        if (o.mismatches != 0 || o.unanswered != 0 ||
            !o.serverInvariantOk || !o.storeInvariantOk)
            pass = false;
        if (s > 0)
            schedules_json += ",";
        schedules_json +=
            "{\"spec\":" + server::json::quote(o.spec) +
            ",\"requests\":" + std::to_string(o.requests) +
            ",\"mismatches\":" + std::to_string(o.mismatches) +
            ",\"unanswered\":" + std::to_string(o.unanswered) +
            ",\"server_invariant_ok\":" +
            (o.serverInvariantOk ? "true" : "false") +
            ",\"store_invariant_ok\":" +
            (o.storeInvariantOk ? "true" : "false") + "}";
        // `recovery` stays out of the JSON: the outcome name depends
        // on where in the request interleaving the torn/snapshot
        // faults landed, and the report must diff clean across runs.
    }
    schedules_json += "]";

    // Deterministic by construction: same flags => identical report.
    // (Reaching this line at all is the "no crash" invariant.)
    std::printf("{\"seed\":%llu,\"clients\":%llu,"
                "\"requests_per_client\":%llu,\"schedules\":%s,"
                "\"mesh\":{\"writes\":%llu,\"lost\":%llu,"
                "\"duplicated\":%llu,\"invariant_ok\":%s},"
                "\"crashes\":0,\"verdict\":\"%s\"}\n",
                static_cast<unsigned long long>(seed),
                static_cast<unsigned long long>(clients),
                static_cast<unsigned long long>(requests),
                schedules_json.c_str(),
                static_cast<unsigned long long>(mesh.writes),
                static_cast<unsigned long long>(mesh.lost),
                static_cast<unsigned long long>(mesh.duplicated),
                mesh.ok ? "true" : "false", pass ? "pass" : "fail");
    std::fflush(stdout);
    return pass ? 0 : 1;
}

} // namespace

int
main(int argc, char **argv)
{
    try {
        const auto cl = util::CommandLine::parse(argc, argv);
        if (cl.has("help")) {
            printUsage();
            return 0;
        }
        return run(cl);
    } catch (const hiermeans::Error &e) {
        std::cerr << "chaos_harness: " << e.what() << "\n";
        return 1;
    }
}
