/**
 * @file
 * hmbatch — batch front-end for the concurrent scoring engine.
 *
 * Reads a manifest with one scoring request per line, executes every
 * request concurrently through engine::ScoringEngine (thread pool +
 * content-addressed result cache + in-flight dedupe), and prints one
 * consolidated report plus an engine metrics summary. A bad line (a
 * missing CSV, a typo'd machine, degenerate features) fails only that
 * request; the rest of the batch completes.
 *
 * Usage:
 *   hmbatch --manifest=FILE [--threads=4] [--repeat=1]
 *           [--cache-entries=256] [--cache-mb=64]
 *           [--mean=gm] [--kmin=2] [--kmax=8] [--linkage=complete]
 *           [--seed=N] [--timeout-ms=0] [--out=FILE] [--quiet]
 *
 * Manifest format: one request per line of whitespace-separated
 * key=value tokens (`#` starts a comment, blank lines are skipped):
 *
 *   scores=data/scores.csv features=data/features.csv \
 *       machine-a=machineX machine-b=machineY
 *
 * Per-line keys: scores, features, machine-a, machine-b (required);
 * id, mean, kmin, kmax, linkage, seed, som-rows, som-cols, som-steps,
 * timeout-ms (optional — tool-level flags provide the defaults).
 */

#include <iostream>
#include <map>
#include <optional>

#include "src/hiermeans.h"

namespace {

using namespace hiermeans;

void
printUsage()
{
    std::cout <<
        "hmbatch: run a manifest of scoring requests through the\n"
        "concurrent scoring engine\n"
        "\n"
        "required flags:\n"
        "  --manifest=FILE    one request per line (key=value tokens;\n"
        "                     keys: scores features machine-a machine-b\n"
        "                     [id mean kmin kmax linkage seed som-rows\n"
        "                     som-cols som-steps timeout-ms])\n"
        "\n"
        "optional flags:\n"
        "  --threads=N        engine worker threads (default 4)\n"
        "  --repeat=N         run the whole manifest N times; repeats\n"
        "                     are served from the result cache\n"
        "  --cache-entries=N  result cache entry bound (default 256)\n"
        "  --cache-mb=N       result cache byte bound (default 64)\n"
        "  --mean/--kmin/--kmax/--linkage/--seed/--timeout-ms\n"
        "                     defaults for lines that omit the key\n"
        "  --out=FILE         also write the consolidated report there\n"
        "  --quiet            print only the consolidated report\n";
}

/** One manifest line, parsed but not yet turned into a request. */
struct ManifestLine
{
    std::size_t lineNumber = 0;
    util::CommandLine flags = util::CommandLine::parse({"line"});
};

std::vector<ManifestLine>
parseManifest(const std::string &text)
{
    std::vector<ManifestLine> lines;
    std::size_t line_number = 0;
    for (const std::string &raw : str::split(text, '\n')) {
        ++line_number;
        const std::string line = str::trim(raw);
        if (line.empty() || line.front() == '#')
            continue;
        std::vector<std::string> argv = {"manifest"};
        for (const std::string &token : str::splitWhitespace(line)) {
            HM_REQUIRE(token.find('=') != std::string::npos,
                       "manifest line " << line_number << ": token `"
                                        << token
                                        << "` is not key=value");
            argv.push_back("--" + token);
        }
        lines.push_back(
            ManifestLine{line_number, util::CommandLine::parse(argv)});
    }
    return lines;
}

/** Parsed-CSV cache so N lines sharing files parse them once. */
struct CsvCache
{
    std::map<std::string, core::ScoresCsv> scores;
    std::map<std::string, core::FeaturesCsv> features;

    const core::ScoresCsv &
    scoresFor(const std::string &path)
    {
        auto it = scores.find(path);
        if (it == scores.end()) {
            it = scores
                     .emplace(path, core::parseScoresCsv(
                                        util::readFile(path)))
                     .first;
        }
        return it->second;
    }

    const core::FeaturesCsv &
    featuresFor(const std::string &path)
    {
        auto it = features.find(path);
        if (it == features.end()) {
            it = features
                     .emplace(path, core::parseFeaturesCsv(
                                        util::readFile(path)))
                     .first;
        }
        return it->second;
    }
};

/**
 * Build the engine request for one manifest line; throws on bad input
 * (caught by the caller and reported as that line's failure).
 */
engine::ScoreRequest
buildRequest(const ManifestLine &line, const util::CommandLine &cl,
             CsvCache &csvs)
{
    const util::CommandLine &flags = line.flags;
    const std::string scores_path = flags.getString("scores", "");
    const std::string features_path = flags.getString("features", "");
    const std::string machine_a = flags.getString("machine-a", "");
    const std::string machine_b = flags.getString("machine-b", "");
    HM_REQUIRE(!scores_path.empty() && !features_path.empty() &&
                   !machine_a.empty() && !machine_b.empty(),
               "manifest line "
                   << line.lineNumber
                   << ": scores=, features=, machine-a= and machine-b= "
                      "are required");

    const core::ScoresCsv &scores = csvs.scoresFor(scores_path);
    const core::FeaturesCsv &features = csvs.featuresFor(features_path);
    core::requireAlignedWorkloads(scores, features);

    // Per-line keys override the tool-level defaults.
    const auto flag_int = [&](const char *name, std::int64_t fallback) {
        return flags.has(name) ? flags.getInt(name, fallback)
                               : cl.getInt(name, fallback);
    };
    const auto flag_str = [&](const char *name,
                              const std::string &fallback) {
        return flags.has(name) ? flags.getString(name, fallback)
                               : cl.getString(name, fallback);
    };

    engine::ScoreRequest request;
    request.id = flags.getString(
        "id", "line" + std::to_string(line.lineNumber));
    request.features = features.values;
    request.workloads = features.workloads;
    request.featureNames = features.features;
    request.scoresA = scores.machineScores(machine_a);
    request.scoresB = scores.machineScores(machine_b);
    request.labelA = machine_a;
    request.labelB = machine_b;
    request.kind = stats::parseMeanKind(flag_str("mean", "gm"));

    request.config.kMin =
        static_cast<std::size_t>(flag_int("kmin", 2));
    request.config.kMax =
        static_cast<std::size_t>(flag_int("kmax", 8));
    request.config.linkage =
        cluster::parseLinkage(flag_str("linkage", "complete"));
    request.config.autoSizeSom(features.workloads.size());
    if (flags.has("som-rows")) {
        request.config.som.rows =
            static_cast<std::size_t>(flags.getInt("som-rows", 8));
    }
    if (flags.has("som-cols")) {
        request.config.som.cols =
            static_cast<std::size_t>(flags.getInt("som-cols", 10));
    }
    request.config.som.steps =
        static_cast<std::size_t>(flag_int("som-steps", 4000));
    request.seed =
        static_cast<std::uint64_t>(flag_int("seed", 0x5eed));
    request.timeoutMillis = static_cast<double>(
        flags.has("timeout-ms") ? flags.getDouble("timeout-ms", 0.0)
                                : cl.getDouble("timeout-ms", 0.0));
    return request;
}

int
run(const util::CommandLine &cl)
{
    const std::string manifest_path = cl.getString("manifest", "");
    if (manifest_path.empty()) {
        printUsage();
        return 2;
    }
    const auto threads =
        static_cast<std::size_t>(cl.getInt("threads", 4));
    const auto repeat = static_cast<std::size_t>(cl.getInt("repeat", 1));
    HM_REQUIRE(repeat >= 1, "--repeat must be >= 1");
    const bool quiet = cl.getBool("quiet", false);

    const std::vector<ManifestLine> lines =
        parseManifest(util::readFile(manifest_path));
    HM_REQUIRE(!lines.empty(),
               "manifest `" << manifest_path << "` has no requests");

    engine::ScoringEngine::Config engine_config;
    engine_config.threads = threads;
    engine_config.cache.maxEntries =
        static_cast<std::size_t>(cl.getInt("cache-entries", 256));
    engine_config.cache.maxBytes =
        static_cast<std::size_t>(cl.getInt("cache-mb", 64)) * 1024 *
        1024;
    engine::ScoringEngine engine(engine_config);

    // Build requests up front; a bad line becomes a failed result
    // without touching the engine (failure isolation starts here).
    CsvCache csvs;
    std::vector<std::optional<engine::ScoreRequest>> requests;
    std::vector<engine::ScoreResult> line_errors(lines.size());
    for (std::size_t i = 0; i < lines.size(); ++i) {
        try {
            requests.push_back(buildRequest(lines[i], cl, csvs));
        } catch (const Error &e) {
            requests.push_back(std::nullopt);
            line_errors[i].id =
                "line" + std::to_string(lines[i].lineNumber);
            line_errors[i].error = e.what();
        }
    }

    util::TextTable table({"request", "machines", "status", "served by",
                           "k*", "ratio@k*", "plain ratio", "ms"});
    std::size_t ok_count = 0;
    std::size_t fail_count = 0;

    for (std::size_t pass = 0; pass < repeat; ++pass) {
        // Submit the full manifest, then gather in manifest order.
        std::vector<std::optional<std::future<engine::ScoreResult>>>
            futures;
        std::vector<std::string> machines;
        for (const auto &request : requests) {
            if (request) {
                machines.push_back(request->labelA + "/" +
                                   request->labelB);
                futures.push_back(engine.submit(*request));
            } else {
                machines.push_back("-");
                futures.push_back(std::nullopt);
            }
        }

        for (std::size_t i = 0; i < futures.size(); ++i) {
            const engine::ScoreResult result =
                futures[i] ? futures[i]->get() : line_errors[i];
            const bool ok = result.ok;
            ok ? ++ok_count : ++fail_count;

            std::string served_by = "pipeline";
            if (result.cacheHit)
                served_by = "cache";
            else if (result.deduped)
                served_by = "dedupe";

            table.addRow(
                {result.id, machines[i], ok ? "ok" : "FAILED",
                 ok ? served_by : "-",
                 ok ? std::to_string(result.recommendedK) : "-",
                 ok ? str::fixed(
                          result.report
                              .rows[result.report.recommendedRow()]
                              .ratio,
                          2)
                    : "-",
                 ok ? str::fixed(result.report.plainRatio, 2) : "-",
                 str::fixed(result.wallMillis, 1)});
            if (!ok && !quiet) {
                std::cerr << "hmbatch: " << result.id << " failed: "
                          << result.error << "\n";
            }
        }
        if (pass + 1 < repeat)
            table.addSeparator();
    }

    const std::string consolidated = table.render();
    std::cout << consolidated;
    std::cout << "\n" << ok_count << " ok, " << fail_count
              << " failed, " << threads << " threads, " << repeat
              << " pass(es)\n";
    if (!quiet) {
        std::cout << "\nengine metrics:\n"
                  << engine.metrics().render();
    }

    const std::string out_path = cl.getString("out", "");
    if (!out_path.empty()) {
        util::writeFile(out_path, consolidated);
        std::cout << "report written to " << out_path << "\n";
    }
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    try {
        const auto cl = util::CommandLine::parse(argc, argv);
        if (cl.has("help")) {
            printUsage();
            return 0;
        }
        return run(cl);
    } catch (const hiermeans::Error &e) {
        std::cerr << "hmbatch: " << e.what() << "\n";
        return 1;
    }
}
