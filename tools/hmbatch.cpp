/**
 * @file
 * hmbatch — batch front-end for the concurrent scoring engine.
 *
 * Reads a manifest with one scoring request per line, executes every
 * request concurrently through engine::ScoringEngine (thread pool +
 * content-addressed result cache + in-flight dedupe), and prints one
 * consolidated report plus an engine metrics summary. A bad line (a
 * missing CSV, a typo'd machine, degenerate features) fails only that
 * request; the rest of the batch completes.
 *
 * Usage:
 *   hmbatch --manifest=FILE [--threads=4] [--repeat=1]
 *           [--cache-entries=256] [--cache-mb=64]
 *           [--mean=gm] [--kmin=2] [--kmax=8] [--linkage=complete]
 *           [--seed=N] [--timeout-ms=0] [--out=FILE] [--quiet]
 *
 * Manifest format: one request per line of whitespace-separated
 * key=value tokens (`#` starts a comment, blank lines are skipped):
 *
 *   scores=data/scores.csv features=data/features.csv \
 *       machine-a=machineX machine-b=machineY
 *
 * Per-line keys: scores, features, machine-a, machine-b (required);
 * id, mean, kmin, kmax, linkage, seed, som-rows, som-cols, som-steps,
 * timeout-ms (optional — tool-level flags provide the defaults).
 */

#include <iostream>
#include <optional>

#include "src/hiermeans.h"

namespace {

using namespace hiermeans;

util::FlagSet
flagSpec()
{
    util::FlagSet flags("hmbatch",
                        "run a manifest of scoring requests through "
                        "the concurrent\nscoring engine");
    flags.section("required flags")
        .flag("manifest", "FILE",
              "one request per line (key=value tokens;\n"
              "keys: scores features machine-a machine-b\n"
              "[id mean kmin kmax linkage seed som-rows\n"
              "som-cols som-steps timeout-ms])");
    flags.section("optional flags")
        .flag("threads", "N", "engine worker threads (default 4)")
        .flag("repeat", "N",
              "run the whole manifest N times; repeats are\n"
              "served from the result cache")
        .flag("cache-entries", "N",
              "result cache entry bound (default 256)")
        .flag("cache-mb", "N", "result cache byte bound (default 64)")
        .flag("mean", "gm|am|hm", "default for lines omitting the key")
        .flag("kmin", "N", "default for lines omitting the key")
        .flag("kmax", "N", "default for lines omitting the key")
        .flag("linkage", "NAME", "default for lines omitting the key")
        .flag("seed", "N", "default for lines omitting the key")
        .flag("timeout-ms", "N", "default for lines omitting the key")
        .flag("out", "FILE",
              "also write the consolidated report there")
        .flag("quiet", "", "print only the consolidated report");
    flags.tracing().standard();
    return flags;
}

int
run(const util::CommandLine &cl)
{
    const std::string manifest_path = cl.getString("manifest", "");
    if (manifest_path.empty()) {
        std::cerr << flagSpec().usage();
        return 2;
    }
    obs::Tracer::instance().configure(
        obs::traceConfigFromCommandLine(cl));
    const auto threads =
        static_cast<std::size_t>(cl.getInt("threads", 4));
    const auto repeat = static_cast<std::size_t>(cl.getInt("repeat", 1));
    HM_REQUIRE(repeat >= 1, "--repeat must be >= 1");
    const bool quiet = cl.getBool("quiet", false);

    const std::vector<engine::ManifestLine> lines =
        engine::parseManifest(util::readFile(manifest_path));
    HM_REQUIRE(!lines.empty(),
               "manifest `" << manifest_path << "` has no requests");

    engine::ScoringEngine::Config engine_config;
    engine_config.threads = threads;
    engine_config.cache.maxEntries =
        static_cast<std::size_t>(cl.getInt("cache-entries", 256));
    engine_config.cache.maxBytes =
        static_cast<std::size_t>(cl.getInt("cache-mb", 64)) * 1024 *
        1024;
    engine::ScoringEngine engine(engine_config);

    // Build requests up front; a bad line becomes a failed result
    // without touching the engine (failure isolation starts here).
    engine::CsvCache csvs;
    std::vector<std::optional<engine::ScoreRequest>> requests;
    std::vector<engine::ScoreResult> line_errors(lines.size());
    for (std::size_t i = 0; i < lines.size(); ++i) {
        try {
            requests.push_back(
                engine::buildManifestRequest(lines[i], cl, csvs));
        } catch (const Error &e) {
            requests.push_back(std::nullopt);
            line_errors[i].id =
                "line" + std::to_string(lines[i].lineNumber);
            line_errors[i].error = e.what();
        }
    }

    util::TextTable table({"request", "machines", "status", "served by",
                           "k*", "ratio@k*", "plain ratio", "ms"});
    std::size_t ok_count = 0;
    std::size_t fail_count = 0;

    for (std::size_t pass = 0; pass < repeat; ++pass) {
        // Submit the full manifest, then gather in manifest order.
        std::vector<std::optional<std::future<engine::ScoreResult>>>
            futures;
        std::vector<std::string> machines;
        for (const auto &request : requests) {
            if (request) {
                machines.push_back(request->labelA + "/" +
                                   request->labelB);
                futures.push_back(engine.submit(*request));
            } else {
                machines.push_back("-");
                futures.push_back(std::nullopt);
            }
        }

        for (std::size_t i = 0; i < futures.size(); ++i) {
            const engine::ScoreResult result =
                futures[i] ? futures[i]->get() : line_errors[i];
            const bool ok = result.ok;
            ok ? ++ok_count : ++fail_count;

            std::string served_by = "pipeline";
            if (result.cacheHit)
                served_by = "cache";
            else if (result.deduped)
                served_by = "dedupe";

            table.addRow(
                {result.id, machines[i], ok ? "ok" : "FAILED",
                 ok ? served_by : "-",
                 ok ? std::to_string(result.recommendedK) : "-",
                 ok ? str::fixed(
                          result.report
                              .rows[result.report.recommendedRow()]
                              .ratio,
                          2)
                    : "-",
                 ok ? str::fixed(result.report.plainRatio, 2) : "-",
                 str::fixed(result.wallMillis, 1)});
            if (!ok && !quiet) {
                std::cerr << "hmbatch: " << result.id << " failed: "
                          << result.error << "\n";
            }
        }
        if (pass + 1 < repeat)
            table.addSeparator();
    }

    const std::string consolidated = table.render();
    std::cout << consolidated;
    std::cout << "\n" << ok_count << " ok, " << fail_count
              << " failed, " << threads << " threads, " << repeat
              << " pass(es)\n";
    if (!quiet) {
        std::cout << "\nengine metrics:\n"
                  << engine.metrics().render();
    }

    const std::string out_path = cl.getString("out", "");
    if (!out_path.empty()) {
        util::writeFile(out_path, consolidated);
        std::cout << "report written to " << out_path << "\n";
    }
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    try {
        const auto cl = util::CommandLine::parse(argc, argv);
        if (flagSpec().handleStandard(cl, std::cout))
            return 0;
        return run(cl);
    } catch (const hiermeans::Error &e) {
        std::cerr << "hmbatch: " << e.what() << "\n";
        return 1;
    }
}
