/**
 * @file
 * hmconvert — convert /v1 payloads between their JSON/text form and
 * the negotiated binary wire format (src/wire/wire.h).
 *
 * The offline companion to the content negotiation the server does
 * per request: anything a client could POST or receive in either
 * format can be flipped on the command line, which makes the binary
 * format inspectable (`hmconvert < response.bin`) and scriptable
 * (`hmconvert --kind=manifest < suite.txt | curl --data-binary @-`).
 *
 * Direction defaults to auto-detection: input starting with the
 * frame magic "HMW1" is decoded to JSON/text, anything else is
 * encoded to binary. `--to=binary|json` forces a direction (and
 * makes a mis-detected input a hard error instead of a surprise).
 *
 * When encoding, `--kind` says what the payload is:
 *   score      one manifest line        -> ScoreRequest frame
 *   manifest   manifest text            -> BatchManifest frame
 *   report     score document JSON      -> ScoreReport frame
 *   observe    observe-intake JSON      -> ObserveIntake frame
 * When decoding, the frame's own type byte picks the output shape
 * (`--kind` is ignored), and a BatchItem stream — the binary batch
 * response — decodes to one JSON line per item.
 *
 * Round-trips are bit-identical for newline-terminated inputs:
 * `hmconvert --kind=report < doc.json | hmconvert` reproduces
 * doc.json byte for byte (the wire suite asserts this).
 *
 * Usage:
 *   hmconvert [--kind=score|manifest|report|observe] [--to=binary|json]
 *             [--in=FILE] [--out=FILE]
 */

#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "src/hiermeans.h"

namespace {

using namespace hiermeans;

util::FlagSet
flagSpec()
{
    util::FlagSet flags(
        "hmconvert",
        "convert /v1 payloads between JSON and the binary wire format");
    flags.section("conversion flags")
        .flag("kind", "K",
              "payload kind when encoding to binary:\n"
              "score | manifest | report | observe\n"
              "(default manifest; ignored when decoding —\n"
              "the frame's type byte decides)")
        .flag("to", "FMT",
              "binary | json | auto (default auto:\n"
              "input starting with the frame magic is\n"
              "decoded, anything else is encoded)")
        .flag("in", "FILE", "input file (default stdin)")
        .flag("out", "FILE", "output file (default stdout)")
        .standard();
    return flags;
}

std::string
readInput(const util::CommandLine &cl)
{
    const std::string path = cl.getString("in", "");
    if (!path.empty())
        return util::readFile(path);
    std::ostringstream buffer;
    buffer << std::cin.rdbuf();
    return buffer.str();
}

void
writeOutput(const util::CommandLine &cl, const std::string &data)
{
    const std::string path = cl.getString("out", "");
    if (!path.empty()) {
        util::writeFile(path, data);
        return;
    }
    std::cout.write(data.data(),
                    static_cast<std::streamsize>(data.size()));
}

/** Manifest text as logical lines, dropping the final-newline
 *  artifact so text -> frame -> text round-trips bit-identically. */
std::vector<std::string>
manifestLines(const std::string &text)
{
    std::vector<std::string> lines = str::split(text, '\n');
    if (!lines.empty() && lines.back().empty())
        lines.pop_back();
    return lines;
}

/** Strip one trailing newline (the score round-trip's counterpart of
 *  the '\n' appended when decoding). */
std::string
chompLine(const std::string &text)
{
    std::string line = text;
    if (!line.empty() && line.back() == '\n')
        line.pop_back();
    if (!line.empty() && line.back() == '\r')
        line.pop_back();
    return line;
}

std::string
encodeToBinary(const std::string &kind, const std::string &input)
{
    if (kind == "score")
        return wire::encodeScoreRequest(chompLine(input));
    if (kind == "manifest")
        return wire::encodeBatchManifest(manifestLines(input));
    if (kind == "report")
        return wire::encodeScoreReport(
            server::scoreDocumentFromJson(input));
    if (kind == "observe") {
        wire::Observation obs;
        HM_REQUIRE(server::observationFromJson(input, obs),
                   "observe input needs a numeric `ratio` field");
        return wire::encodeObservation(obs);
    }
    HM_REQUIRE(false, "--kind must be score, manifest, report or "
                      "observe, got `"
                          << kind << "`");
    return ""; // unreachable
}

/** One decoded BatchItem as its NDJSON line (the JSON batch
 *  response's per-line shape, minus the envelope). */
std::string
batchItemJson(const wire::BatchItem &item)
{
    std::ostringstream line;
    line << "{\"line\":" << item.line;
    if (item.ok) {
        // Splice the document's fields after "line": drop the
        // document object's opening brace.
        line << "," << server::scoreDocumentJson(item.doc).substr(1);
    } else {
        line << ",\"code\":" << server::json::quote(item.errorCode)
             << ",\"error\":" << server::json::quote(item.error)
             << ",\"timed_out\":" << (item.timedOut ? "true" : "false")
             << "}";
    }
    return line.str();
}

std::string
decodeToText(const std::string &input)
{
    wire::Frame first;
    wire::decodeFrame(input, first);
    if (first.type == wire::MessageType::BatchItem) {
        // A batch response stream: one frame per line, in order.
        wire::FrameReader reader(input);
        std::ostringstream out;
        wire::Frame frame;
        while (reader.next(frame)) {
            HM_REQUIRE(frame.type == wire::MessageType::BatchItem,
                       "mixed frame types in batch stream");
            out << batchItemJson(wire::decodeBatchItem(frame)) << "\n";
        }
        HM_REQUIRE(!reader.sawCorruption(),
                   "batch stream: " << reader.corruption());
        return out.str();
    }
    switch (first.type) {
    case wire::MessageType::ScoreRequest:
        return wire::decodeScoreRequest(input) + "\n";
    case wire::MessageType::BatchManifest:
        return wire::BatchView(input).manifestText();
    case wire::MessageType::ScoreReport:
        return server::scoreDocumentJson(
                   wire::decodeScoreReport(input)) +
               "\n";
    case wire::MessageType::ObserveIntake:
        return server::observationJson(wire::decodeObservation(input)) +
               "\n";
    default:
        HM_REQUIRE(false, "unconvertible frame type");
    }
    return ""; // unreachable
}

int
run(const util::CommandLine &cl)
{
    const std::string input = readInput(cl);
    std::string to = cl.getString("to", "auto");
    HM_REQUIRE(to == "auto" || to == "binary" || to == "json",
               "--to must be binary, json or auto, got `" << to
                                                          << "`");
    if (to == "auto")
        to = input.rfind("HMW1", 0) == 0 ? "json" : "binary";
    if (to == "binary")
        writeOutput(cl,
                    encodeToBinary(cl.getString("kind", "manifest"),
                                   input));
    else
        writeOutput(cl, decodeToText(input));
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    try {
        const auto cl = util::CommandLine::parse(argc, argv);
        if (flagSpec().handleStandard(cl, std::cout))
            return 0;
        return run(cl);
    } catch (const hiermeans::Error &e) {
        std::cerr << "hmconvert: " << e.what() << "\n";
        return 1;
    }
}
