/**
 * @file
 * hmctl — command-line probe for a running hmserved daemon.
 *
 * The operational companion to hmload: where hmload stresses, hmctl
 * asks. It wraps client::ClusterClient, so probes ride the same retry
 * policy and failure taxonomy as real clients — and against a mesh
 * node, probes for suites owned elsewhere follow the 307 redirect to
 * the owner. Its exit code makes the health state scriptable:
 *
 *   0  server answered and is healthy (ok)
 *   2  server answered but is degraded
 *   3  server is draining (graceful shutdown in progress)
 *   1  unreachable / retries exhausted / unexpected answer
 *
 * Usage:
 *   hmctl --port=N [--host=127.0.0.1] [--health] [--metrics]
 *         [--check] [--cluster] [--score=LINE] [--trace=ID] [--traces]
 *         [--register=NAME --manifest=FILE] [--history[=SUITE]]
 *         [--snapshot] [--drift[=SUITE]] [--recluster[=SUITE]]
 *         [--observe=SUITE --ratio=R [--plain-ratio=R] [--id=NAME]]
 *         [--timeout-ms=2000] [--retries=2] [--retry-base-ms=50]
 *         [--retry-cap-ms=2000] [--retry-budget-ms=10000] [--seed=N]
 *         [--json-only]
 *
 * The store probes (--register, --history, --snapshot) need a daemon
 * started with --data-dir; without one they answer 503 store_disabled.
 * `--history=SUITE` pretty-prints the persisted score-history ring as
 * a table; omitting the suite shows the ad-hoc (unregistered) ring.
 *
 * Default probe is --health. Output is one JSON line:
 *   {"probe":"health","ok":true,"status":200,"health":"ok",
 *    "attempts":1,"backoff_ms":0,"stale":false,"failure":"none"}
 */

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <iostream>
#include <map>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "src/hiermeans.h"

namespace {

using namespace hiermeans;

util::FlagSet
flagSpec()
{
    util::FlagSet flags("hmctl",
                        "probe for a running hmserved daemon");
    flags.section("required flags").flag("port", "N", "hmserved port");
    flags.section("probes (default --health)")
        .flag("health", "",
              "GET /healthz; exit 0 ok, 2 degraded,\n"
              "3 draining, 1 unreachable")
        .flag("metrics", "", "GET /metrics; print the metrics body")
        .flag("check", "",
              "GET /metrics and lint the Prometheus exposition\n"
              "format, wire-version advertisement and the\n"
              "generator-family registration counters; on a\n"
              "store daemon also cross-check that every\n"
              "drift-tracked suite is still registered; on a\n"
              "mesh daemon also lint the /v1/cluster payload,\n"
              "per-shard health and `wire` advertisement;\n"
              "exit 0 clean, 1 with issues listed")
        .flag("cluster", "",
              "GET /v1/cluster; pretty-print membership,\n"
              "per-node health and replication offsets\n"
              "(mesh daemons only); exit 0 all nodes ok,\n"
              "2 with nodes down, 1 unreachable/not a mesh")
        .flag("score", "LINE", "POST one manifest line to /v1/score")
        .flag("trace", "ID",
              "GET /v1/trace/<ID>; print the span tree (the\n"
              "daemon must run with --trace)")
        .flag("traces", "", "GET /v1/traces; list stored trace IDs")
        .flag("register", "NAME",
              "POST the --manifest file to /v1/suites as the\n"
              "next version of suite NAME")
        .flag("manifest", "FILE",
              "manifest file for --register (required with it)")
        .flag("history", "SUITE",
              "GET /v1/history?suite=SUITE and pretty-print\n"
              "the score-history ring (no SUITE: ad-hoc ring)")
        .flag("snapshot", "",
              "POST /v1/admin/snapshot; force a snapshot +\n"
              "WAL compaction")
        .flag("drain", "",
              "POST /v1/admin/drain: begin graceful shutdown,\n"
              "then watch until the daemon exits; exit 0 when\n"
              "it drained inside its deadline, 2 when the\n"
              "drain deadline was exceeded, 1 unreachable")
        .flag("drift", "SUITE",
              "GET /v1/suites/<SUITE>/drift (no SUITE: every\n"
              "tracked suite via /v1/drift) and pretty-print\n"
              "the staleness table; exit 0 all fresh,\n"
              "2 when any probed suite is stale")
        .flag("recluster", "SUITE",
              "POST /v1/admin/recluster[?suite=SUITE]; force\n"
              "a drift tick and print the resulting table")
        .flag("observe", "SUITE",
              "POST one observation to\n"
              "/v1/suites/<SUITE>/observe; feeds the drift\n"
              "monitor without running the pipeline\n"
              "(requires --ratio)")
        .flag("ratio", "R", "observed ratio for --observe")
        .flag("plain-ratio", "R",
              "plain-mean ratio for --observe\n"
              "(default: the --ratio value)")
        .flag("id", "NAME", "observation id for --observe");
    flags.section("optional flags")
        .flag("host", "NAME", "server host (default 127.0.0.1)")
        .flag("timeout-ms", "N",
              "per-attempt response deadline\n"
              "(default 2000; 0 = wait forever)")
        .flag("retries", "N",
              "extra attempts on retryable failures (default 2)")
        .flag("retry-base-ms", "N",
              "backoff draw lower bound (default 50)")
        .flag("retry-cap-ms", "N",
              "backoff draw upper bound (default 2000)")
        .flag("retry-budget-ms", "N",
              "total backoff sleep (default 10000)")
        .flag("seed", "N", "backoff jitter seed (default 1)")
        .flag("json-only", "",
              "suppress non-JSON output (--metrics body,\n"
              "--score response body, span trees)");
    flags.standard();
    return flags;
}

/**
 * Split the flat JSON objects out of a `"key":[...]` array of a
 * server envelope. Brace-depth scan, string-aware; good enough for
 * the server's own output (the array elements are flat objects).
 */
std::vector<std::string>
arrayObjects(const std::string &body, const std::string &key)
{
    std::vector<std::string> entries;
    const std::string marker = "\"" + key + "\":[";
    const std::size_t at = body.find(marker);
    if (at == std::string::npos)
        return entries;
    std::size_t i = at + marker.size();
    std::size_t start = 0;
    int depth = 0;
    bool in_string = false;
    for (; i < body.size(); ++i) {
        const char c = body[i];
        if (in_string) {
            if (c == '\\')
                ++i;
            else if (c == '"')
                in_string = false;
            continue;
        }
        if (c == '"') {
            in_string = true;
        } else if (c == '{') {
            if (depth++ == 0)
                start = i;
        } else if (c == '}') {
            if (--depth == 0)
                entries.push_back(body.substr(start, i - start + 1));
        } else if (c == ']' && depth == 0) {
            break;
        }
    }
    return entries;
}


/** Render one /v1/history envelope as a column-aligned table. */
std::string
renderHistoryTable(const std::string &body)
{
    util::TextTable table({"seq", "id", "ver", "k", "ratio", "plain",
                           "wall_ms", "fingerprint"});
    const auto integer = [](const std::optional<double> &value) {
        return value ? std::to_string(
                           static_cast<long long>(*value))
                     : std::string("-");
    };
    const auto real = [](const std::optional<double> &value) {
        if (!value)
            return std::string("-");
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%.4g", *value);
        return std::string(buf);
    };
    for (const std::string &entry : arrayObjects(body, "entries")) {
        table.addRow({
            integer(server::json::findNumber(entry, "sequence")),
            server::json::findString(entry, "id").value_or("-"),
            integer(server::json::findNumber(entry, "suite_version")),
            integer(server::json::findNumber(entry, "recommended_k")),
            real(server::json::findNumber(entry, "ratio")),
            real(server::json::findNumber(entry, "plain_ratio")),
            real(server::json::findNumber(entry, "wall_ms")),
            server::json::findString(entry, "fingerprint")
                .value_or("-"),
        });
    }
    return table.render();
}


/** Render drift report objects as a column-aligned table. */
std::string
renderDriftTable(const std::vector<std::string> &reports)
{
    util::TextTable table({"suite", "state", "mean", "churn",
                           "stability", "qe_ratio", "window", "ticks",
                           "obs"});
    const auto integer = [](const std::optional<double> &value) {
        return value ? std::to_string(static_cast<long long>(*value))
                     : std::string("-");
    };
    const auto real = [](const std::optional<double> &value) {
        if (!value)
            return std::string("-");
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%.4g", *value);
        return std::string(buf);
    };
    for (const std::string &report : reports) {
        table.addRow({
            server::json::findString(report, "suite").value_or("-"),
            server::json::findString(report, "state").value_or("-"),
            real(server::json::findNumber(report, "published_mean")),
            real(server::json::findNumber(report, "churn")),
            real(server::json::findNumber(report, "stability")),
            real(server::json::findNumber(report, "qe_ratio")),
            integer(server::json::findNumber(report, "window")),
            integer(server::json::findNumber(report, "ticks")),
            integer(server::json::findNumber(report, "observations")),
        });
    }
    return table.render();
}


/**
 * Lint the hiermeans_drift_* family of a /metrics body: every suite's
 * staleness gauge must be one-hot over fresh|drifting|stale, and each
 * suite carrying a state must also expose the churn / stability /
 * qe_ratio gauges. A body without the family (drift off) is clean.
 */
std::vector<std::string>
lintDriftExposition(const std::string &body)
{
    std::vector<std::string> issues;
    // suite -> sum of the three hiermeans_drift_state series.
    std::map<std::string, double> one_hot;
    std::istringstream in(body);
    std::string line;
    while (std::getline(in, line)) {
        if (line.rfind("hiermeans_drift_state{", 0) != 0)
            continue;
        const std::size_t suite_at = line.find("suite=\"");
        const std::size_t value_at = line.rfind('}');
        if (suite_at == std::string::npos ||
            value_at == std::string::npos) {
            issues.push_back("drift: malformed series: " + line);
            continue;
        }
        const std::size_t name_start = suite_at + 7;
        const std::size_t name_end = line.find('"', name_start);
        const std::string suite =
            line.substr(name_start, name_end - name_start);
        try {
            one_hot[suite] += std::stod(line.substr(value_at + 1));
        } catch (const std::exception &) {
            issues.push_back("drift: non-numeric value: " + line);
        }
    }
    for (const auto &[suite, sum] : one_hot) {
        if (sum != 1.0)
            issues.push_back("drift: suite `" + suite +
                             "` staleness gauge is not one-hot (sum=" +
                             server::json::number(sum) + ")");
        for (const char *gauge :
             {"hiermeans_drift_churn", "hiermeans_drift_stability",
              "hiermeans_drift_qe_ratio"}) {
            const std::string series =
                std::string(gauge) + "{suite=\"" + suite + "\"}";
            if (body.find(series) == std::string::npos)
                issues.push_back("drift: suite `" + suite +
                                 "` missing " + gauge);
        }
    }
    return issues;
}


/**
 * Lint the wire-format family of a /metrics body: the
 * hiermeans_wire_requests_total counter must carry both format
 * labels (json and binary), and hiermeans_wire_supported must
 * advertise the wire version this build's clients lead with —
 * the signal an operator checks before rolling binary-default
 * clients against a node.
 */
std::vector<std::string>
lintWireExposition(const std::string &body)
{
    std::vector<std::string> issues;
    for (const char *series :
         {"hiermeans_wire_requests_total{format=\"json\"}",
          "hiermeans_wire_requests_total{format=\"binary\"}"}) {
        if (body.find(series) == std::string::npos)
            issues.push_back(std::string("wire: missing series ") +
                             series);
    }
    const std::string version =
        std::to_string(static_cast<unsigned>(wire::kWireVersion));
    if (body.find("hiermeans_wire_supported{version=\"" + version +
                  "\"}") == std::string::npos)
        issues.push_back(
            "wire: exposition does not advertise wire version " +
            version);
    return issues;
}


/**
 * Lint the generator family of a /metrics body: the per-family
 * registration counter must be pre-seeded for the whole bounded label
 * set (the four family names plus "other") — a missing series means
 * dashboards silently read "no registrations" as "no metric" — and a
 * store-enabled daemon must expose the hiermeans_store_suites gauge
 * the registration counters are read against.
 */
std::vector<std::string>
lintGenExposition(const std::string &body)
{
    std::vector<std::string> issues;
    for (const std::string &family : gen::genMetricLabels()) {
        const std::string series =
            "hiermeans_gen_registrations_total{family=\"" + family +
            "\"}";
        if (body.find(series) == std::string::npos)
            issues.push_back("gen: missing series " + series);
    }
    if (body.find("hiermeans_store_") != std::string::npos &&
        body.find("hiermeans_store_suites") == std::string::npos)
        issues.push_back(
            "gen: store daemon without hiermeans_store_suites gauge");
    return issues;
}


/**
 * Lint a /v1/cluster payload: required top-level fields, a plausible
 * membership list, per-node required fields, per-shard health, and
 * the wire-format advertisement clients use to pick an encoding.
 * A down node is an issue — the mesh serves, but degraded.
 */
std::vector<std::string>
lintClusterPayload(const std::string &body)
{
    std::vector<std::string> issues;
    if (!server::json::findString(body, "self"))
        issues.push_back("cluster: missing `self`");
    const auto replicas = server::json::findNumber(body, "replicas");
    if (!replicas)
        issues.push_back("cluster: missing `replicas`");
    if (!server::json::findNumber(body, "vnodes"))
        issues.push_back("cluster: missing `vnodes`");
    if (!server::json::findNumber(body, "store_sequence"))
        issues.push_back("cluster: missing `store_sequence`");
    // The negotiation advertisement: a node that does not list the
    // version our clients speak forces the JSON fallback lap.
    const std::size_t wire_at = body.find("\"wire\":{");
    if (wire_at == std::string::npos) {
        issues.push_back("cluster: missing `wire` advertisement");
    } else {
        const std::size_t wire_end = body.find('}', wire_at);
        const std::string advert = body.substr(
            wire_at, wire_end == std::string::npos
                         ? std::string::npos
                         : wire_end - wire_at + 1);
        const std::string version = std::to_string(
            static_cast<unsigned>(wire::kWireVersion));
        if (advert.find("\"version\":" + version) ==
            std::string::npos)
            issues.push_back(
                "cluster: `wire` does not advertise version " +
                version);
        for (const char *format : {"\"json\"", "\"binary\""}) {
            if (advert.find(format) == std::string::npos)
                issues.push_back(
                    std::string("cluster: `wire` missing format ") +
                    format);
        }
    }
    const std::vector<std::string> nodes = arrayObjects(body, "nodes");
    if (nodes.empty()) {
        issues.push_back("cluster: empty `nodes` membership");
        return issues;
    }
    if (replicas &&
        (*replicas < 1.0 ||
         *replicas > static_cast<double>(nodes.size())))
        issues.push_back("cluster: `replicas` outside 1..nodes");
    for (const std::string &node : nodes) {
        const auto id = server::json::findString(node, "id");
        if (!id) {
            issues.push_back("cluster: node without `id`");
            continue;
        }
        if (!server::json::findString(node, "host") ||
            !server::json::findNumber(node, "port"))
            issues.push_back("cluster: node `" + *id +
                             "` missing host/port");
        const auto health = server::json::findString(node, "health");
        if (!health)
            issues.push_back("cluster: node `" + *id +
                             "` missing `health`");
        else if (*health == "down")
            issues.push_back("cluster: node `" + *id + "` is down");
        else if (*health != "ok" && *health != "unknown")
            issues.push_back("cluster: node `" + *id +
                             "` has unrecognized health `" + *health +
                             "`");
    }
    return issues;
}


/** Render a /v1/cluster envelope as a membership table. */
std::string
renderClusterTable(const std::string &body)
{
    util::TextTable table({"id", "addr", "health", "role", "acked"});
    for (const std::string &node : arrayObjects(body, "nodes")) {
        const bool self = node.find("\"self\":true") != std::string::npos;
        const bool follower =
            node.find("\"follower\":true") != std::string::npos;
        const auto port = server::json::findNumber(node, "port");
        const auto acked = server::json::findNumber(node, "acked");
        table.addRow({
            server::json::findString(node, "id").value_or("-"),
            server::json::findString(node, "host").value_or("-") + ":" +
                (port ? std::to_string(
                            static_cast<long long>(*port))
                      : "-"),
            server::json::findString(node, "health").value_or("-"),
            self ? "self" : (follower ? "follower" : "peer"),
            acked ? std::to_string(static_cast<long long>(*acked))
                  : "-",
        });
    }
    std::string rendered = table.render();
    for (const std::string &follow : arrayObjects(body, "follows")) {
        const auto sequence =
            server::json::findNumber(follow, "sequence");
        rendered +=
            "follows " +
            server::json::findString(follow, "leader").value_or("-") +
            " at sequence " +
            (sequence
                 ? std::to_string(static_cast<long long>(*sequence))
                 : "-") +
            "\n";
    }
    return rendered;
}


/** One JSON summary line for any probe outcome. */
void
printSummary(const char *probe, const client::Outcome &outcome,
             const std::string &health)
{
    std::printf(
        "{\"probe\":\"%s\",\"ok\":%s,\"status\":%d,\"health\":%s,"
        "\"attempts\":%llu,\"backoff_ms\":%s,\"stale\":%s,"
        "\"failure\":\"%s\"}\n",
        probe, outcome.ok() ? "true" : "false", outcome.status,
        health.empty() ? "null" : server::json::quote(health).c_str(),
        static_cast<unsigned long long>(outcome.attempts),
        server::json::number(outcome.backoffMillis).c_str(),
        outcome.stale ? "true" : "false",
        client::failureClassName(outcome.failure));
    std::fflush(stdout);
}

int
run(const util::CommandLine &cl)
{
    if (!cl.has("port")) {
        std::cerr << flagSpec().usage();
        return 2;
    }

    // ClusterClient with one target: against a mesh node, a probe for
    // a suite owned elsewhere transparently follows the 307 to the
    // owner instead of dumping the redirect on the operator.
    client::ClusterClient::Config config;
    config.targets = {client::ClusterTarget{
        cl.getString("host", "127.0.0.1"),
        static_cast<std::uint16_t>(cl.getInt("port", 0))}};
    config.readTimeoutMillis =
        static_cast<int>(cl.getInt("timeout-ms", 2000));
    config.retry.maxAttempts =
        1 + static_cast<std::size_t>(cl.getInt("retries", 2));
    config.retry.baseMillis = cl.getDouble("retry-base-ms", 50.0);
    config.retry.capMillis = cl.getDouble("retry-cap-ms", 2000.0);
    config.retry.budgetMillis = cl.getDouble("retry-budget-ms", 10000.0);
    config.retry.seed = static_cast<std::uint64_t>(cl.getInt("seed", 1));
    const bool json_only = cl.getBool("json-only", false);

    client::ClusterClient client(config);

    if (cl.has("metrics")) {
        const client::Outcome outcome =
            client.request("GET", "/metrics");
        if (outcome.haveResponse && !json_only)
            std::cout << outcome.response.body;
        printSummary("metrics", outcome, "");
        if (!outcome.haveResponse) {
            std::cerr << "hmctl: " << outcome.error << "\n";
            return 1;
        }
        return outcome.ok() ? 0 : 1;
    }

    if (cl.has("check")) {
        const client::Outcome outcome =
            client.request("GET", "/metrics");
        printSummary("check", outcome, "");
        if (!outcome.haveResponse) {
            std::cerr << "hmctl: " << outcome.error << "\n";
            return 1;
        }
        std::vector<std::string> issues;
        for (const std::string &issue :
             obs::lintExposition(outcome.response.body))
            issues.push_back("exposition: " + issue);
        for (const std::string &issue :
             lintDriftExposition(outcome.response.body))
            issues.push_back(issue);
        for (const std::string &issue :
             lintWireExposition(outcome.response.body))
            issues.push_back(issue);
        for (const std::string &issue :
             lintGenExposition(outcome.response.body))
            issues.push_back(issue);
        // Registry cross-check: every suite the drift monitor tracks
        // must still be registered — a monitor outliving its suite
        // serves staleness for ghosts. Both endpoints answer 503
        // without a store (and /v1/drift is absent pre-drift builds);
        // skip unless both answer 200.
        const client::Outcome drift = client.request("GET", "/v1/drift");
        const client::Outcome suites =
            client.request("GET", "/v1/suites");
        if (drift.haveResponse && drift.status == 200 &&
            suites.haveResponse && suites.status == 200) {
            std::vector<std::string> registered;
            for (const std::string &entry :
                 arrayObjects(suites.response.body, "suites")) {
                if (const auto name =
                        server::json::findString(entry, "name"))
                    registered.push_back(*name);
            }
            for (const std::string &report :
                 arrayObjects(drift.response.body, "suites")) {
                const auto name =
                    server::json::findString(report, "suite");
                if (name && std::find(registered.begin(),
                                      registered.end(),
                                      *name) == registered.end())
                    issues.push_back("registry: drift-tracked suite `" +
                                     *name + "` is not registered");
            }
        }
        // A mesh daemon exposes /v1/cluster; lint its payload and the
        // per-shard health too. 404 means single-node: nothing to do.
        const client::Outcome membership =
            client.request("GET", "/v1/cluster");
        bool meshed = false;
        if (membership.haveResponse && membership.status == 200) {
            meshed = true;
            for (const std::string &issue :
                 lintClusterPayload(membership.response.body))
                issues.push_back(issue);
        } else if (membership.haveResponse &&
                   membership.status != 404) {
            issues.push_back("cluster: /v1/cluster answered " +
                             std::to_string(membership.status));
        }
        if (issues.empty()) {
            if (!json_only)
                std::cout << (meshed
                                  ? "exposition format + cluster: clean\n"
                                  : "exposition format: clean\n");
            return outcome.ok() ? 0 : 1;
        }
        for (const std::string &issue : issues)
            std::cerr << "hmctl: " << issue << "\n";
        return 1;
    }

    if (cl.has("cluster")) {
        const client::Outcome outcome =
            client.request("GET", "/v1/cluster");
        printSummary("cluster", outcome, "");
        if (!outcome.haveResponse) {
            std::cerr << "hmctl: " << outcome.error << "\n";
            return 1;
        }
        if (!outcome.ok()) {
            std::cerr << "hmctl: /v1/cluster answered "
                      << outcome.status
                      << (outcome.status == 404
                              ? " (not a mesh daemon?)"
                              : "")
                      << "\n";
            return 1;
        }
        if (!json_only)
            std::cout << renderClusterTable(outcome.response.body);
        bool down = false;
        for (const std::string &node :
             arrayObjects(outcome.response.body, "nodes"))
            down = down || server::json::findString(node, "health")
                                   .value_or("") == "down";
        return down ? 2 : 0;
    }

    if (cl.has("score")) {
        // `--score=LINE --trace=ID` posts under that trace ID, ready
        // for a follow-up `hmctl --trace=ID` span-tree fetch.
        const client::Outcome outcome = client.score(
            cl.getString("score", ""), cl.getString("trace", ""));
        if (outcome.haveResponse && !json_only)
            std::cout << outcome.response.body << "\n";
        printSummary("score", outcome, "");
        if (!outcome.haveResponse) {
            std::cerr << "hmctl: " << outcome.error << "\n";
            return 1;
        }
        return outcome.ok() ? 0 : 1;
    }

    if (cl.has("trace")) {
        const std::string id = cl.getString("trace", "");
        const client::Outcome outcome =
            client.request("GET", "/v1/trace/" + id);
        printSummary("trace", outcome, "");
        if (!outcome.haveResponse) {
            std::cerr << "hmctl: " << outcome.error << "\n";
            return 1;
        }
        if (!outcome.ok()) {
            const auto message = server::json::findString(
                outcome.response.body, "message");
            std::cerr << "hmctl: "
                      << message.value_or(outcome.response.body)
                      << "\n";
            return 1;
        }
        if (!json_only) {
            // The envelope carries the rendered tree; print it rather
            // than re-deriving it from the span list.
            const auto tree = server::json::findString(
                outcome.response.body, "tree");
            if (tree)
                std::cout << *tree;
            else
                std::cout << outcome.response.body << "\n";
        }
        return 0;
    }

    if (cl.has("traces")) {
        const client::Outcome outcome =
            client.request("GET", "/v1/traces");
        printSummary("traces", outcome, "");
        if (!outcome.haveResponse) {
            std::cerr << "hmctl: " << outcome.error << "\n";
            return 1;
        }
        if (!json_only)
            std::cout << outcome.response.body;
        return outcome.ok() ? 0 : 1;
    }

    if (cl.has("register")) {
        if (!cl.has("manifest")) {
            std::cerr << "hmctl: --register needs --manifest=FILE\n";
            return 1;
        }
        const std::string name = cl.getString("register", "");
        const std::string manifest =
            util::readFile(cl.getString("manifest", ""));
        const client::Outcome outcome = client.request(
            "POST", "/v1/suites?name=" + name, manifest);
        if (outcome.haveResponse && !json_only)
            std::cout << outcome.response.body << "\n";
        printSummary("register", outcome, "");
        if (!outcome.haveResponse) {
            std::cerr << "hmctl: " << outcome.error << "\n";
            return 1;
        }
        return outcome.ok() ? 0 : 1;
    }

    if (cl.has("history")) {
        const std::string suite = cl.getString("history", "");
        const std::string target =
            suite.empty() ? "/v1/history" : "/v1/history?suite=" + suite;
        const client::Outcome outcome = client.request("GET", target);
        printSummary("history", outcome, "");
        if (!outcome.haveResponse) {
            std::cerr << "hmctl: " << outcome.error << "\n";
            return 1;
        }
        if (!outcome.ok()) {
            const auto message = server::json::findString(
                outcome.response.body, "message");
            std::cerr << "hmctl: "
                      << message.value_or(outcome.response.body)
                      << "\n";
            return 1;
        }
        if (!json_only)
            std::cout << renderHistoryTable(outcome.response.body);
        return 0;
    }

    if (cl.has("observe")) {
        if (!cl.has("ratio")) {
            std::cerr << "hmctl: --observe needs --ratio=R\n";
            return 1;
        }
        const std::string suite = cl.getString("observe", "");
        std::string body =
            "{\"ratio\":" +
            server::json::number(cl.getDouble("ratio", 0.0));
        if (cl.has("plain-ratio"))
            body += ",\"plain_ratio\":" +
                    server::json::number(
                        cl.getDouble("plain-ratio", 0.0));
        if (cl.has("id"))
            body += ",\"id\":" +
                    server::json::quote(cl.getString("id", ""));
        body += "}";
        const client::Outcome outcome = client.request(
            "POST", "/v1/suites/" + suite + "/observe", body);
        if (outcome.haveResponse && !json_only)
            std::cout << outcome.response.body << "\n";
        printSummary("observe", outcome, "");
        if (!outcome.haveResponse) {
            std::cerr << "hmctl: " << outcome.error << "\n";
            return 1;
        }
        if (!outcome.ok()) {
            const auto message = server::json::findString(
                outcome.response.body, "message");
            std::cerr << "hmctl: "
                      << message.value_or(outcome.response.body)
                      << "\n";
            return 1;
        }
        return 0;
    }

    if (cl.has("drift") || cl.has("recluster")) {
        const bool force = cl.has("recluster");
        const std::string suite =
            cl.getString(force ? "recluster" : "drift", "");
        std::string target;
        if (force)
            target = suite.empty()
                         ? "/v1/admin/recluster"
                         : "/v1/admin/recluster?suite=" + suite;
        else
            target = suite.empty() ? "/v1/drift"
                                   : "/v1/suites/" + suite + "/drift";
        const client::Outcome outcome =
            client.request(force ? "POST" : "GET", target);
        printSummary(force ? "recluster" : "drift", outcome, "");
        if (!outcome.haveResponse) {
            std::cerr << "hmctl: " << outcome.error << "\n";
            return 1;
        }
        if (!outcome.ok()) {
            const auto message = server::json::findString(
                outcome.response.body, "message");
            std::cerr << "hmctl: "
                      << message.value_or(outcome.response.body)
                      << "\n";
            return 1;
        }
        // A single-suite probe answers the report object itself; the
        // list endpoints answer {"suites":[...]}.
        std::vector<std::string> reports =
            arrayObjects(outcome.response.body, "suites");
        if (reports.empty() && !suite.empty() && !force)
            reports = {outcome.response.body};
        if (!json_only)
            std::cout << renderDriftTable(reports);
        bool stale = false;
        for (const std::string &report : reports)
            stale = stale || server::json::findString(report, "state")
                                     .value_or("") == "stale";
        return stale ? 2 : 0;
    }

    if (cl.has("snapshot")) {
        const client::Outcome outcome =
            client.request("POST", "/v1/admin/snapshot");
        printSummary("snapshot", outcome, "");
        if (!outcome.haveResponse) {
            std::cerr << "hmctl: " << outcome.error << "\n";
            return 1;
        }
        if (!outcome.ok()) {
            const auto message = server::json::findString(
                outcome.response.body, "message");
            std::cerr << "hmctl: "
                      << message.value_or(outcome.response.body)
                      << "\n";
            return 1;
        }
        if (!json_only) {
            const auto sequence = server::json::findNumber(
                outcome.response.body, "sequence");
            std::cout << "snapshot committed at sequence "
                      << (sequence ? static_cast<long long>(*sequence)
                                   : -1)
                      << "\n";
        }
        return 0;
    }

    if (cl.has("drain")) {
        const client::Outcome outcome =
            client.request("POST", "/v1/admin/drain");
        printSummary("drain", outcome, "");
        if (!outcome.haveResponse) {
            std::cerr << "hmctl: " << outcome.error << "\n";
            return 1;
        }
        if (!outcome.ok()) {
            std::cerr << "hmctl: /v1/admin/drain answered "
                      << outcome.status << "\n";
            return 1;
        }
        const double advertised =
            server::json::findNumber(outcome.response.body,
                                     "drain_deadline_ms")
                .value_or(5000.0);
        // Watch the daemon leave: poll /healthz with a one-shot,
        // no-retry client until the connect is refused. Give it the
        // advertised deadline plus slack for snapshot + exit.
        const double grace_ms = advertised + 5000.0;
        client::ScoringClient::Config probe_config;
        probe_config.host = cl.getString("host", "127.0.0.1");
        probe_config.port =
            static_cast<std::uint16_t>(cl.getInt("port", 0));
        probe_config.readTimeoutMillis = 1000;
        probe_config.retry.maxAttempts = 1;
        const auto started = std::chrono::steady_clock::now();
        for (;;) {
            client::ScoringClient probe(probe_config);
            const client::Outcome alive = probe.health();
            const double waited =
                std::chrono::duration<double, std::milli>(
                    std::chrono::steady_clock::now() - started)
                    .count();
            if (!alive.haveResponse &&
                alive.failure == client::FailureClass::ConnectRefused) {
                if (!json_only)
                    std::cout << "drained and exited after "
                              << static_cast<long>(waited) << " ms\n";
                return 0;
            }
            if (waited > grace_ms) {
                std::cerr << "hmctl: drain deadline exceeded ("
                          << static_cast<long>(waited)
                          << " ms and still serving)\n";
                return 2;
            }
            std::this_thread::sleep_for(
                std::chrono::milliseconds(100));
        }
    }

    // Default: the health probe. A draining server answers 503 with
    // the state in the body/header, so "haveResponse + 503" is still
    // a successful probe — of a server on its way out.
    const client::Outcome outcome = client.health();
    if (!outcome.haveResponse) {
        printSummary("health", outcome, "");
        std::cerr << "hmctl: " << outcome.error << "\n";
        return 1;
    }
    static const std::string kEmpty;
    std::string health =
        outcome.response.header("x-hiermeans-health", kEmpty);
    if (health.empty())
        health = str::trim(outcome.response.body);
    printSummary("health", outcome, health);
    if (health == "ok")
        return 0;
    if (health == "degraded")
        return 2;
    if (health == "draining")
        return 3;
    return 1;
}

} // namespace

int
main(int argc, char **argv)
{
    try {
        const auto cl = util::CommandLine::parse(argc, argv);
        if (flagSpec().handleStandard(cl, std::cout))
            return 0;
        return run(cl);
    } catch (const hiermeans::Error &e) {
        std::cerr << "hmctl: " << e.what() << "\n";
        return 1;
    }
}
