/**
 * @file
 * hmctl — command-line probe for a running hmserved daemon.
 *
 * The operational companion to hmload: where hmload stresses, hmctl
 * asks. It wraps client::ScoringClient, so probes ride the same retry
 * policy and failure taxonomy as real clients, and its exit code makes
 * the health state scriptable:
 *
 *   0  server answered and is healthy (ok)
 *   2  server answered but is degraded
 *   3  server is draining (graceful shutdown in progress)
 *   1  unreachable / retries exhausted / unexpected answer
 *
 * Usage:
 *   hmctl --port=N [--host=127.0.0.1] [--health] [--metrics]
 *         [--score=LINE] [--timeout-ms=2000] [--retries=2]
 *         [--retry-base-ms=50] [--retry-cap-ms=2000]
 *         [--retry-budget-ms=10000] [--seed=N] [--json-only]
 *
 * Default probe is --health. Output is one JSON line:
 *   {"probe":"health","ok":true,"status":200,"health":"ok",
 *    "attempts":1,"backoff_ms":0,"stale":false,"failure":"none"}
 */

#include <cstdio>
#include <iostream>

#include "src/hiermeans.h"

namespace {

using namespace hiermeans;

void
printUsage()
{
    std::cout <<
        "hmctl (" << util::kVersionString << "): probe for a running\n"
        "hmserved daemon\n"
        "\n"
        "required flags:\n"
        "  --port=N           hmserved port\n"
        "\n"
        "probes (default --health):\n"
        "  --health           GET /healthz; exit 0 ok, 2 degraded,\n"
        "                     3 draining, 1 unreachable\n"
        "  --metrics          GET /metrics; print the metrics body\n"
        "  --score=LINE       POST one manifest line to /v1/score\n"
        "\n"
        "optional flags:\n"
        "  --host=NAME        server host (default 127.0.0.1)\n"
        "  --timeout-ms=N     per-attempt response deadline\n"
        "                     (default 2000; 0 = wait forever)\n"
        "  --retries=N        extra attempts on retryable failures\n"
        "                     (default 2)\n"
        "  --retry-base-ms=N  backoff draw lower bound (default 50)\n"
        "  --retry-cap-ms=N   backoff draw upper bound (default 2000)\n"
        "  --retry-budget-ms=N  total backoff sleep (default 10000)\n"
        "  --seed=N           backoff jitter seed (default 1)\n"
        "  --json-only        suppress non-JSON output (--metrics body,\n"
        "                     --score response body)\n";
}

/** One JSON summary line for any probe outcome. */
void
printSummary(const char *probe, const client::Outcome &outcome,
             const std::string &health)
{
    std::printf(
        "{\"probe\":\"%s\",\"ok\":%s,\"status\":%d,\"health\":%s,"
        "\"attempts\":%llu,\"backoff_ms\":%s,\"stale\":%s,"
        "\"failure\":\"%s\"}\n",
        probe, outcome.ok() ? "true" : "false", outcome.status,
        health.empty() ? "null" : server::json::quote(health).c_str(),
        static_cast<unsigned long long>(outcome.attempts),
        server::json::number(outcome.backoffMillis).c_str(),
        outcome.stale ? "true" : "false",
        client::failureClassName(outcome.failure));
    std::fflush(stdout);
}

int
run(const util::CommandLine &cl)
{
    if (!cl.has("port")) {
        printUsage();
        return 2;
    }

    client::ScoringClient::Config config;
    config.host = cl.getString("host", "127.0.0.1");
    config.port = static_cast<std::uint16_t>(cl.getInt("port", 0));
    config.readTimeoutMillis =
        static_cast<int>(cl.getInt("timeout-ms", 2000));
    config.retry.maxAttempts =
        1 + static_cast<std::size_t>(cl.getInt("retries", 2));
    config.retry.baseMillis = cl.getDouble("retry-base-ms", 50.0);
    config.retry.capMillis = cl.getDouble("retry-cap-ms", 2000.0);
    config.retry.budgetMillis = cl.getDouble("retry-budget-ms", 10000.0);
    config.retry.seed = static_cast<std::uint64_t>(cl.getInt("seed", 1));
    const bool json_only = cl.getBool("json-only", false);

    client::ScoringClient client(config);

    if (cl.has("metrics")) {
        const client::Outcome outcome = client.metrics();
        if (outcome.haveResponse && !json_only)
            std::cout << outcome.response.body;
        printSummary("metrics", outcome, "");
        if (!outcome.haveResponse) {
            std::cerr << "hmctl: " << outcome.error << "\n";
            return 1;
        }
        return outcome.ok() ? 0 : 1;
    }

    if (cl.has("score")) {
        const client::Outcome outcome =
            client.score(cl.getString("score", ""));
        if (outcome.haveResponse && !json_only)
            std::cout << outcome.response.body << "\n";
        printSummary("score", outcome, "");
        if (!outcome.haveResponse) {
            std::cerr << "hmctl: " << outcome.error << "\n";
            return 1;
        }
        return outcome.ok() ? 0 : 1;
    }

    // Default: the health probe. A draining server answers 503 with
    // the state in the body/header, so "haveResponse + 503" is still
    // a successful probe — of a server on its way out.
    const client::Outcome outcome = client.health();
    if (!outcome.haveResponse) {
        printSummary("health", outcome, "");
        std::cerr << "hmctl: " << outcome.error << "\n";
        return 1;
    }
    static const std::string kEmpty;
    std::string health =
        outcome.response.header("x-hiermeans-health", kEmpty);
    if (health.empty())
        health = str::trim(outcome.response.body);
    printSummary("health", outcome, health);
    if (health == "ok")
        return 0;
    if (health == "degraded")
        return 2;
    if (health == "draining")
        return 3;
    return 1;
}

} // namespace

int
main(int argc, char **argv)
{
    try {
        const auto cl = util::CommandLine::parse(argc, argv);
        if (cl.has("help")) {
            printUsage();
            return 0;
        }
        return run(cl);
    } catch (const hiermeans::Error &e) {
        std::cerr << "hmctl: " << e.what() << "\n";
        return 1;
    }
}
