/**
 * @file
 * hmctl — command-line probe for a running hmserved daemon.
 *
 * The operational companion to hmload: where hmload stresses, hmctl
 * asks. It wraps client::ScoringClient, so probes ride the same retry
 * policy and failure taxonomy as real clients, and its exit code makes
 * the health state scriptable:
 *
 *   0  server answered and is healthy (ok)
 *   2  server answered but is degraded
 *   3  server is draining (graceful shutdown in progress)
 *   1  unreachable / retries exhausted / unexpected answer
 *
 * Usage:
 *   hmctl --port=N [--host=127.0.0.1] [--health] [--metrics]
 *         [--check] [--score=LINE] [--trace=ID] [--traces]
 *         [--timeout-ms=2000] [--retries=2] [--retry-base-ms=50]
 *         [--retry-cap-ms=2000] [--retry-budget-ms=10000] [--seed=N]
 *         [--json-only]
 *
 * Default probe is --health. Output is one JSON line:
 *   {"probe":"health","ok":true,"status":200,"health":"ok",
 *    "attempts":1,"backoff_ms":0,"stale":false,"failure":"none"}
 */

#include <cstdio>
#include <iostream>
#include <vector>

#include "src/hiermeans.h"

namespace {

using namespace hiermeans;

util::FlagSet
flagSpec()
{
    util::FlagSet flags("hmctl",
                        "probe for a running hmserved daemon");
    flags.section("required flags").flag("port", "N", "hmserved port");
    flags.section("probes (default --health)")
        .flag("health", "",
              "GET /healthz; exit 0 ok, 2 degraded,\n"
              "3 draining, 1 unreachable")
        .flag("metrics", "", "GET /metrics; print the metrics body")
        .flag("check", "",
              "GET /metrics and lint the Prometheus exposition\n"
              "format; exit 0 clean, 1 with issues listed")
        .flag("score", "LINE", "POST one manifest line to /v1/score")
        .flag("trace", "ID",
              "GET /v1/trace/<ID>; print the span tree (the\n"
              "daemon must run with --trace)")
        .flag("traces", "", "GET /v1/traces; list stored trace IDs");
    flags.section("optional flags")
        .flag("host", "NAME", "server host (default 127.0.0.1)")
        .flag("timeout-ms", "N",
              "per-attempt response deadline\n"
              "(default 2000; 0 = wait forever)")
        .flag("retries", "N",
              "extra attempts on retryable failures (default 2)")
        .flag("retry-base-ms", "N",
              "backoff draw lower bound (default 50)")
        .flag("retry-cap-ms", "N",
              "backoff draw upper bound (default 2000)")
        .flag("retry-budget-ms", "N",
              "total backoff sleep (default 10000)")
        .flag("seed", "N", "backoff jitter seed (default 1)")
        .flag("json-only", "",
              "suppress non-JSON output (--metrics body,\n"
              "--score response body, span trees)");
    flags.standard();
    return flags;
}

/** One JSON summary line for any probe outcome. */
void
printSummary(const char *probe, const client::Outcome &outcome,
             const std::string &health)
{
    std::printf(
        "{\"probe\":\"%s\",\"ok\":%s,\"status\":%d,\"health\":%s,"
        "\"attempts\":%llu,\"backoff_ms\":%s,\"stale\":%s,"
        "\"failure\":\"%s\"}\n",
        probe, outcome.ok() ? "true" : "false", outcome.status,
        health.empty() ? "null" : server::json::quote(health).c_str(),
        static_cast<unsigned long long>(outcome.attempts),
        server::json::number(outcome.backoffMillis).c_str(),
        outcome.stale ? "true" : "false",
        client::failureClassName(outcome.failure));
    std::fflush(stdout);
}

int
run(const util::CommandLine &cl)
{
    if (!cl.has("port")) {
        std::cerr << flagSpec().usage();
        return 2;
    }

    client::ScoringClient::Config config;
    config.host = cl.getString("host", "127.0.0.1");
    config.port = static_cast<std::uint16_t>(cl.getInt("port", 0));
    config.readTimeoutMillis =
        static_cast<int>(cl.getInt("timeout-ms", 2000));
    config.retry.maxAttempts =
        1 + static_cast<std::size_t>(cl.getInt("retries", 2));
    config.retry.baseMillis = cl.getDouble("retry-base-ms", 50.0);
    config.retry.capMillis = cl.getDouble("retry-cap-ms", 2000.0);
    config.retry.budgetMillis = cl.getDouble("retry-budget-ms", 10000.0);
    config.retry.seed = static_cast<std::uint64_t>(cl.getInt("seed", 1));
    const bool json_only = cl.getBool("json-only", false);

    client::ScoringClient client(config);

    if (cl.has("metrics")) {
        const client::Outcome outcome = client.metrics();
        if (outcome.haveResponse && !json_only)
            std::cout << outcome.response.body;
        printSummary("metrics", outcome, "");
        if (!outcome.haveResponse) {
            std::cerr << "hmctl: " << outcome.error << "\n";
            return 1;
        }
        return outcome.ok() ? 0 : 1;
    }

    if (cl.has("check")) {
        const client::Outcome outcome = client.metrics();
        printSummary("check", outcome, "");
        if (!outcome.haveResponse) {
            std::cerr << "hmctl: " << outcome.error << "\n";
            return 1;
        }
        const std::vector<std::string> issues =
            obs::lintExposition(outcome.response.body);
        if (issues.empty()) {
            if (!json_only)
                std::cout << "exposition format: clean\n";
            return outcome.ok() ? 0 : 1;
        }
        for (const std::string &issue : issues)
            std::cerr << "hmctl: exposition: " << issue << "\n";
        return 1;
    }

    if (cl.has("score")) {
        // `--score=LINE --trace=ID` posts under that trace ID, ready
        // for a follow-up `hmctl --trace=ID` span-tree fetch.
        const client::Outcome outcome = client.score(
            cl.getString("score", ""), cl.getString("trace", ""));
        if (outcome.haveResponse && !json_only)
            std::cout << outcome.response.body << "\n";
        printSummary("score", outcome, "");
        if (!outcome.haveResponse) {
            std::cerr << "hmctl: " << outcome.error << "\n";
            return 1;
        }
        return outcome.ok() ? 0 : 1;
    }

    if (cl.has("trace")) {
        const std::string id = cl.getString("trace", "");
        const client::Outcome outcome =
            client.request("GET", "/v1/trace/" + id);
        printSummary("trace", outcome, "");
        if (!outcome.haveResponse) {
            std::cerr << "hmctl: " << outcome.error << "\n";
            return 1;
        }
        if (!outcome.ok()) {
            const auto message = server::json::findString(
                outcome.response.body, "message");
            std::cerr << "hmctl: "
                      << message.value_or(outcome.response.body)
                      << "\n";
            return 1;
        }
        if (!json_only) {
            // The envelope carries the rendered tree; print it rather
            // than re-deriving it from the span list.
            const auto tree = server::json::findString(
                outcome.response.body, "tree");
            if (tree)
                std::cout << *tree;
            else
                std::cout << outcome.response.body << "\n";
        }
        return 0;
    }

    if (cl.has("traces")) {
        const client::Outcome outcome =
            client.request("GET", "/v1/traces");
        printSummary("traces", outcome, "");
        if (!outcome.haveResponse) {
            std::cerr << "hmctl: " << outcome.error << "\n";
            return 1;
        }
        if (!json_only)
            std::cout << outcome.response.body;
        return outcome.ok() ? 0 : 1;
    }

    // Default: the health probe. A draining server answers 503 with
    // the state in the body/header, so "haveResponse + 503" is still
    // a successful probe — of a server on its way out.
    const client::Outcome outcome = client.health();
    if (!outcome.haveResponse) {
        printSummary("health", outcome, "");
        std::cerr << "hmctl: " << outcome.error << "\n";
        return 1;
    }
    static const std::string kEmpty;
    std::string health =
        outcome.response.header("x-hiermeans-health", kEmpty);
    if (health.empty())
        health = str::trim(outcome.response.body);
    printSummary("health", outcome, health);
    if (health == "ok")
        return 0;
    if (health == "degraded")
        return 2;
    if (health == "draining")
        return 3;
    return 1;
}

} // namespace

int
main(int argc, char **argv)
{
    try {
        const auto cl = util::CommandLine::parse(argc, argv);
        if (flagSpec().handleStandard(cl, std::cout))
            return 0;
        return run(cl);
    } catch (const hiermeans::Error &e) {
        std::cerr << "hmctl: " << e.what() << "\n";
        return 1;
    }
}
