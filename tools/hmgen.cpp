/**
 * @file
 * hmgen — synthesize workload-family suites (src/gen) and wire them
 * into the serving stack.
 *
 * A generated suite is a pure function of (family, seed, shape): the
 * same flags always reproduce the same artifacts byte for byte, so a
 * generated suite is as reproducible a benchmark input as a checked-in
 * CSV — with the planted cluster structure (truth.csv) that a real
 * suite can never supply.
 *
 * Three modes:
 *
 *  - Artifact rendering (`--out=DIR`): write the full artifact set —
 *    scores.csv, features.csv, truth.csv, manifest.txt, manifest.json
 *    and manifest.hmw1 (the HMW1 BatchManifest frame) — into DIR. The
 *    manifest's scores=/features= paths point at `--data-dir` (default
 *    DIR), so the manifest is servable as soon as it is written.
 *    Without --out the manifest alone goes to stdout in the shape
 *    `--format` picks (text | json | binary).
 *
 *  - Registration (`--register --port=N`): POST the manifest to
 *    /v1/suites as a versioned suite registration, tagged with
 *    `generator=<family>` so the daemon's per-family counter
 *    (hiermeans_gen_registrations_total) attributes it.
 *    `--suite-version=N`
 *    pins the version (replays are idempotent, conflicting payloads
 *    are refused 409); `--wire=binary` posts the HMW1 frame instead
 *    of manifest text — both register the identical payload.
 *
 *  - Observation streaming (`--observe-stream`): emit the family's
 *    deterministic drift schedule — `--stationary` ticks of the base
 *    ratios, then `--shifted` ticks at `--shift-target` — as NDJSON
 *    on stdout, or POST each tick to /v1/suites/<name>/observe when
 *    `--port` is given. The shift index is printed to stderr so
 *    drivers know where detection should fire.
 *
 * Usage:
 *   hmgen --list
 *   hmgen --family=NAME [--seed=N] [--workloads=N] [--clusters=N]
 *         [--machines=N] [--name=SUITE] [--out=DIR] [--data-dir=DIR]
 *         [--format=text|json|binary]
 *   hmgen --family=NAME --register --port=N [--host=127.0.0.1]
 *         [--suite-version=N] [--wire=text|binary] [--data-dir=DIR]
 *   hmgen --family=NAME --observe-stream [--port=N]
 *         [--stationary=N] [--shifted=N] [--shift-target=R]
 */

#include <iostream>
#include <string>
#include <vector>

#include "src/hiermeans.h"

namespace {

using namespace hiermeans;

util::FlagSet
flagSpec()
{
    util::FlagSet flags(
        "hmgen",
        "synthesize workload-family suites with planted ground truth");
    flags.section("generation flags")
        .flag("list", "", "print the family names and exit")
        .flag("family", "NAME",
              "workload family to generate (see --list)")
        .flag("seed", "N", "generator seed (default 28177)")
        .flag("workloads", "N",
              "workload count (default: the family preset)")
        .flag("clusters", "N",
              "planted cluster count (default: the family preset)")
        .flag("machines", "N",
              "machine count incl. the reference (default:\n"
              "the family preset)")
        .flag("name", "SUITE",
              "suite name (default gen.<family>)");
    flags.section("output flags")
        .flag("out", "DIR",
              "write scores.csv, features.csv, truth.csv,\n"
              "manifest.txt, manifest.json and manifest.hmw1\n"
              "into DIR (created if missing); without --out\n"
              "the manifest goes to stdout")
        .flag("data-dir", "DIR",
              "directory prefix baked into the manifest's\n"
              "scores=/features= paths (default: --out, else `.`)")
        .flag("format", "FMT",
              "stdout manifest shape without --out:\n"
              "text | json | binary (default text)");
    flags.section("registration flags")
        .flag("register", "",
              "POST the manifest to /v1/suites?name=...&\n"
              "generator=<family> on --host:--port")
        .flag("port", "N", "hmserved port (--register / streaming)")
        .flag("host", "NAME", "server host (default 127.0.0.1)")
        .flag("suite-version", "N",
              "pin the registered version (replaying an\n"
              "identical payload is a no-op; a differing one\n"
              "is refused 409; default: append the next)")
        .flag("wire", "FMT",
              "registration body: text (manifest text,\n"
              "default) or binary (one HMW1 frame)");
    flags.section("observation flags")
        .flag("observe-stream", "",
              "emit the family's drift schedule as NDJSON, or\n"
              "POST each observation to\n"
              "/v1/suites/<name>/observe when --port is given")
        .flag("stationary", "N",
              "pre-shift observation count (default 60)")
        .flag("shifted", "N",
              "post-shift observation count (default 24)")
        .flag("shift-target", "R",
              "shifted-regime mean ratio (default 9.0)");
    flags.standard();
    return flags;
}

/** Build the FamilyConfig the flags describe. */
gen::FamilyConfig
configFromFlags(const util::CommandLine &cl)
{
    const std::string family = cl.getString("family", "");
    HM_REQUIRE(!family.empty(),
               "--family is required (try --list for the names)");
    const auto seed =
        static_cast<std::uint64_t>(cl.getInt("seed", 0x6E11));
    gen::FamilyConfig config =
        gen::defaultConfig(gen::familyFromName(family), seed);
    if (cl.has("workloads"))
        config.workloads =
            static_cast<std::size_t>(cl.getInt("workloads", 0));
    if (cl.has("clusters"))
        config.clusters =
            static_cast<std::size_t>(cl.getInt("clusters", 0));
    if (cl.has("machines"))
        config.machines =
            static_cast<std::size_t>(cl.getInt("machines", 0));
    if (cl.has("name"))
        config.name = cl.getString("name", "");
    return config;
}

int
observeStream(const util::CommandLine &cl, const std::string &suite)
{
    gen::ObserveConfig config;
    config.stationary =
        static_cast<std::size_t>(cl.getInt("stationary", 60));
    config.shifted = static_cast<std::size_t>(cl.getInt("shifted", 24));
    config.shiftTarget = cl.getDouble("shift-target", 9.0);
    const gen::ObservationSchedule schedule =
        gen::generateSchedule(config);
    std::cerr << "hmgen: " << schedule.observations.size()
              << " observations, shift at index " << schedule.shiftIndex
              << "\n";
    if (!cl.has("port")) {
        for (const wire::Observation &obs : schedule.observations)
            std::cout << server::observationJson(obs) << "\n";
        return 0;
    }
    server::HttpClient client(
        cl.getString("host", "127.0.0.1"),
        static_cast<std::uint16_t>(cl.getInt("port", 0)));
    const std::string target = "/v1/suites/" + suite + "/observe";
    for (std::size_t i = 0; i < schedule.observations.size(); ++i) {
        const auto response = client.roundTrip(
            "POST", target,
            server::observationJson(schedule.observations[i]));
        HM_REQUIRE(response.status == 200,
                   "observation " << i << ": " << target << " answered "
                                  << response.status << ": "
                                  << response.body);
    }
    std::cout << "hmgen: streamed " << schedule.observations.size()
              << " observations to " << suite << "\n";
    return 0;
}

int
registerSuite(const util::CommandLine &cl,
              const gen::GeneratedSuite &suite,
              const gen::SuiteArtifacts &artifacts)
{
    HM_REQUIRE(cl.has("port"), "--register needs --port=N");
    const std::string wire_format = cl.getString("wire", "text");
    HM_REQUIRE(wire_format == "text" || wire_format == "binary",
               "--wire must be text or binary, got `" << wire_format
                                                      << "`");
    std::string target = "/v1/suites?name=" + suite.name +
                         "&generator=" +
                         gen::familyName(suite.config.kind);
    const long version = cl.getInt("suite-version", 0);
    if (version > 0)
        target += "&version=" + std::to_string(version);
    server::HttpClient client(
        cl.getString("host", "127.0.0.1"),
        static_cast<std::uint16_t>(cl.getInt("port", 0)));
    const auto response =
        wire_format == "binary"
            ? client.roundTrip("POST", target, artifacts.manifestBinary,
                               wire::kMediaType)
            : client.roundTrip("POST", target, artifacts.manifestText);
    std::cout << response.body;
    if (response.status != 200) {
        std::cerr << "hmgen: registration answered " << response.status
                  << "\n";
        return 1;
    }
    return 0;
}

int
run(const util::CommandLine &cl)
{
    if (cl.getBool("list", false)) {
        for (const std::string &name : gen::familyNames())
            std::cout << name << "\n";
        return 0;
    }

    const gen::FamilyConfig config = configFromFlags(cl);
    const gen::GeneratedSuite suite = gen::generateSuite(config);

    if (cl.getBool("observe-stream", false))
        return observeStream(cl, suite.name);

    const std::string out_dir = cl.getString("out", "");
    const std::string data_dir =
        cl.getString("data-dir", out_dir.empty() ? "." : out_dir);
    const gen::SuiteArtifacts artifacts =
        gen::renderArtifacts(suite, data_dir);

    if (!out_dir.empty()) {
        util::ensureDir(out_dir);
        util::writeFile(out_dir + "/scores.csv", artifacts.scoresCsv);
        util::writeFile(out_dir + "/features.csv",
                        artifacts.featuresCsv);
        util::writeFile(out_dir + "/truth.csv", artifacts.truthCsv);
        util::writeFile(out_dir + "/manifest.txt",
                        artifacts.manifestText);
        util::writeFile(out_dir + "/manifest.json",
                        artifacts.manifestJson);
        util::writeFile(out_dir + "/manifest.hmw1",
                        artifacts.manifestBinary);
        std::cerr << "hmgen: wrote " << suite.name << " ("
                  << config.workloads << " workloads, "
                  << config.clusters << " clusters, " << config.machines
                  << " machines) to " << out_dir << "\n";
    }

    if (cl.getBool("register", false))
        return registerSuite(cl, suite, artifacts);

    if (out_dir.empty()) {
        const std::string format = cl.getString("format", "text");
        if (format == "text")
            std::cout << artifacts.manifestText;
        else if (format == "json")
            std::cout << artifacts.manifestJson;
        else if (format == "binary")
            std::cout.write(artifacts.manifestBinary.data(),
                            static_cast<std::streamsize>(
                                artifacts.manifestBinary.size()));
        else
            HM_REQUIRE(false, "--format must be text, json or binary, "
                              "got `"
                                  << format << "`");
    }
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    try {
        const auto cl = util::CommandLine::parse(argc, argv);
        if (flagSpec().handleStandard(cl, std::cout))
            return 0;
        return run(cl);
    } catch (const hiermeans::Error &e) {
        std::cerr << "hmgen: " << e.what() << "\n";
        return 1;
    }
}
