/**
 * @file
 * hmload — closed-loop load generator for the hmserved scoring daemon.
 *
 * Spawns N worker threads, each holding one keep-alive connection, and
 * drives `POST /v1/score` with the lines of a manifest (round-robin,
 * offset per worker) for a fixed duration. Closed loop: every worker
 * waits for its response before sending the next request, so offered
 * load adapts to what the server sustains.
 *
 * Workers run on client::ClusterClient over client::ScoringClient, so
 * connection-level failures are attributed to distinct classes
 * (refused / reset / timed out / other) instead of one opaque counter,
 * degraded-mode responses are tallied as `stale_served`, and optional
 * retries (off by default — a closed loop should see errors, not paper
 * over them) follow the shared RetryPolicy.
 *
 * Against a mesh, `--targets=host:port,host:port,...` makes every
 * worker fail over across the listed nodes (rotating on transport
 * failures and `mesh_unreachable` answers, following 307 redirects),
 * and the report gains a per-target breakdown: which node answered,
 * which node ate which failure class, how many failovers helped.
 *
 * Reports one machine-readable JSON line:
 *   {"rps":..,"requests":..,"http_2xx":..,"http_4xx":..,"http_5xx":..,
 *    "stale_served":..,"connect_errors":..,"connect_refused":..,
 *    "conn_reset":..,"timeouts":..,"net_other":..,"bad_response":..,
 *    "deadline_expired":..,"shed":..,"drain_sheds":..,
 *    "server_expired":..,"cancelled":..,"deadline_misses":..,
 *    "deadline_miss_rate":..,"retries":..,"backoff_ms":..,
 *    "p50_ms":..,"p95_ms":..,"p99_ms":..,"p99_9_ms":..,
 *    "max_ms":..,"duration_s":..,"concurrency":..,"slow_traces":[..]}
 *
 * With --trace every request carries a generated X-Hiermeans-Trace ID;
 * the IDs of the slowest percentile are reported (slow_traces), ready
 * for `hmctl --trace=ID` against a daemon started with --trace.
 *
 * Usage:
 *   hmload --port=N [--host=127.0.0.1] [--targets=HOST:PORT,...]
 *          [--concurrency=2]
 *          [--duration-s=3] [--manifest=FILE] [--suite=NAME]
 *          [--timeout-ms=0]
 *          [--retries=0] [--retry-base-ms=50] [--retry-cap-ms=2000]
 *          [--retry-budget-ms=10000] [--seed=N] [--wire=binary|json]
 *          [--json-only]
 *
 * --wire picks the /v1/score request format: `binary` (default) posts
 * negotiated application/x-hiermeans-wire frames, `json` the classic
 * text path; the report's `wire_format` and `*_bytes_per_request`
 * fields make the two directly comparable.
 *
 * Without --manifest a GET /healthz mix is used, which exercises the
 * server path without needing data files.
 */

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <iostream>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

#include "src/hiermeans.h"

namespace {

using namespace hiermeans;

util::FlagSet
flagSpec()
{
    util::FlagSet flags(
        "hmload",
        "closed-loop load generator for the hmserved scoring daemon");
    flags.section("required flags").flag("port", "N", "hmserved port");
    flags.section("optional flags")
        .flag("host", "NAME", "server host (default 127.0.0.1)")
        .flag("concurrency", "N", "worker connections (default 2)")
        .flag("duration-s", "N", "seconds to run (default 3)")
        .flag("manifest", "FILE",
              "request mix: each line is POSTed to /v1/score\n"
              "(default: GET /healthz probes)")
        .flag("suite", "NAME",
              "request mix from a registered suite: one\n"
              "`suite=NAME line=K` body per manifest line of\n"
              "its latest version (fetched from /v1/suites;\n"
              "mutually exclusive with --manifest)")
        .flag("timeout-ms", "N",
              "per-attempt response deadline; expiries count\n"
              "as timeouts (default 0: wait forever)")
        .flag("deadline-ms", "N",
              "end-to-end budget per request, sent as\n"
              "X-Hiermeans-Deadline and spanning retries and\n"
              "failover; answers landing after it count as\n"
              "deadline misses (default 0: none)")
        .flag("retries", "N",
              "extra attempts per request on retryable\n"
              "failures (default 0: report every error)")
        .flag("retry-base-ms", "N",
              "backoff draw lower bound (default 50)")
        .flag("retry-cap-ms", "N",
              "backoff draw upper bound (default 2000)")
        .flag("retry-budget-ms", "N",
              "total backoff sleep per request (default 10000)")
        .flag("seed", "N", "backoff jitter seed (default 1)")
        .flag("wire", "FMT",
              "score request format: `binary` (the negotiated\n"
              "wire frames, default) or `json` (the text paths);\n"
              "binary falls back to json on a 415")
        .flag("json-only", "", "print only the JSON result line");
    flags.section("mesh flags")
        .flag("targets", "LIST",
              "comma-separated host:port list: fail over\n"
              "across these nodes (overrides --host/--port)\n"
              "and report per-target breakdowns");
    flags.section("tracing flags")
        .flag("trace", "",
              "send a generated X-Hiermeans-Trace ID with every\n"
              "request and report the slowest percentile's IDs\n"
              "(retrieve span trees with hmctl --trace=ID)");
    flags.standard();
    return flags;
}

/**
 * Build the `suite=NAME line=K` request mix for a registered suite:
 * ask GET /v1/suites for the registry, find @p suite's entry, and emit
 * one body per manifest line of its latest version. Throws when the
 * suite is unknown or the endpoint is unavailable (no store).
 */
std::vector<std::string>
suiteMix(const std::string &host, std::uint16_t port,
         const std::string &suite)
{
    server::HttpClient probe(host, port);
    const auto response = probe.roundTrip("GET", "/v1/suites");
    HM_REQUIRE(response.status == 200, "GET /v1/suites answered "
                                           << response.status << ": "
                                           << response.body);
    const std::string needle = "\"name\":" + server::json::quote(suite);
    const std::size_t at = response.body.find(needle);
    HM_REQUIRE(at != std::string::npos,
               "no registered suite `" << suite << "`");
    // The suite's entry runs to its matching close brace; its last
    // versions element is the latest, so the last "lines" value
    // inside the entry is the line count to spread load across.
    const std::size_t open = response.body.rfind('{', at);
    std::size_t end = open;
    int depth = 0;
    for (std::size_t i = open; i < response.body.size(); ++i) {
        if (response.body[i] == '{') {
            ++depth;
        } else if (response.body[i] == '}' && --depth == 0) {
            end = i;
            break;
        }
    }
    const std::string entry = response.body.substr(open, end - open + 1);
    const std::size_t lines_at = entry.rfind("\"lines\":");
    HM_REQUIRE(lines_at != std::string::npos,
               "suite `" << suite << "` entry carries no line count");
    const auto lines =
        server::json::findNumber(entry.substr(lines_at), "lines");
    HM_REQUIRE(lines && *lines >= 1.0,
               "suite `" << suite << "` has no manifest lines");
    std::vector<std::string> mix;
    for (std::size_t k = 1; k <= static_cast<std::size_t>(*lines); ++k)
        mix.push_back("suite=" + suite + " line=" + std::to_string(k));
    return mix;
}

/** Shared tallies across workers. */
struct Tally
{
    std::atomic<std::uint64_t> requests{0};
    std::atomic<std::uint64_t> http2xx{0};
    std::atomic<std::uint64_t> http4xx{0};
    std::atomic<std::uint64_t> http5xx{0};
    std::atomic<std::uint64_t> staleServed{0};
    std::atomic<std::uint64_t> connectRefused{0};
    std::atomic<std::uint64_t> connReset{0};
    std::atomic<std::uint64_t> timeouts{0};
    std::atomic<std::uint64_t> netOther{0};
    std::atomic<std::uint64_t> badResponse{0};
    std::atomic<std::uint64_t> deadlineExpired{0};
    std::atomic<std::uint64_t> shed{0};        ///< 503 overloaded.
    std::atomic<std::uint64_t> drainSheds{0};  ///< 503 draining.
    std::atomic<std::uint64_t> serverExpired{0}; ///< 504 deadline_expired.
    std::atomic<std::uint64_t> cancelled{0};   ///< 503 after admission.
    std::atomic<std::uint64_t> deadlineMisses{0}; ///< late answers.
    std::atomic<std::uint64_t> retries{0};
    std::atomic<std::uint64_t> backoffMicros{0};
    std::atomic<std::uint64_t> requestBytes{0};  ///< bodies sent.
    std::atomic<std::uint64_t> responseBytes{0}; ///< bodies received.
    engine::LatencyHistogram latency;

    /** (latency ms, trace ID) per answered request under --trace. */
    std::mutex tracedMutex;
    std::vector<std::pair<double, std::string>> traced;

    /** Per-target tallies, index-aligned with the target list. */
    std::mutex targetMutex;
    std::vector<client::TargetStats> targets;
    std::uint64_t failovers = 0;
};

void
worker(const client::ClusterClient::Config &config,
       const std::vector<std::string> &mix, std::size_t offset,
       std::chrono::steady_clock::time_point deadline, bool trace,
       double deadline_ms, Tally &tally)
{
    client::ClusterClient client(config);
    std::size_t next = offset;
    while (std::chrono::steady_clock::now() < deadline) {
        const auto start = std::chrono::steady_clock::now();
        std::string trace_id;
        if (trace)
            trace_id = obs::generateTraceId();
        client::Outcome outcome;
        if (mix.empty()) {
            outcome = client.health();
        } else {
            outcome = client.score(mix[next % mix.size()], trace_id);
            ++next;
        }
        tally.retries += outcome.attempts - 1;
        tally.backoffMicros += static_cast<std::uint64_t>(
            outcome.backoffMillis * 1000.0);

        if (!outcome.haveResponse) {
            switch (outcome.failure) {
            case client::FailureClass::ConnectRefused:
                ++tally.connectRefused;
                break;
            case client::FailureClass::ConnectionReset:
                ++tally.connReset;
                break;
            case client::FailureClass::TimedOut:
                ++tally.timeouts;
                break;
            case client::FailureClass::BadResponse:
                ++tally.badResponse;
                break;
            case client::FailureClass::DeadlineExpired:
                ++tally.deadlineExpired;
                break;
            default:
                ++tally.netOther;
                break;
            }
            // Back off briefly so a down server doesn't spin the loop.
            std::this_thread::sleep_for(std::chrono::milliseconds(50));
            continue;
        }
        const std::chrono::duration<double, std::milli> elapsed =
            std::chrono::steady_clock::now() - start;
        ++tally.requests;
        tally.requestBytes += outcome.requestBodyBytes;
        tally.responseBytes += outcome.responseBodyBytes;
        tally.latency.record(elapsed.count());
        if (deadline_ms > 0.0 && elapsed.count() > deadline_ms)
            ++tally.deadlineMisses;
        switch (outcome.apiError) {
        case server::ApiError::Overloaded:
        case server::ApiError::CircuitOpen:
            ++tally.shed;
            break;
        case server::ApiError::Draining:
            // Pre-admission drain refusals and post-admission
            // cancellations share the code; both mean "go elsewhere".
            ++tally.drainSheds;
            ++tally.cancelled;
            break;
        case server::ApiError::DeadlineExpired:
            ++tally.serverExpired;
            break;
        default:
            break;
        }
        if (trace && !outcome.traceId.empty()) {
            std::lock_guard<std::mutex> lock(tally.tracedMutex);
            tally.traced.emplace_back(elapsed.count(),
                                      outcome.traceId);
        }
        if (outcome.stale)
            ++tally.staleServed;
        if (outcome.status >= 200 && outcome.status < 300)
            ++tally.http2xx;
        else if (outcome.status >= 400 && outcome.status < 500)
            ++tally.http4xx;
        else if (outcome.status >= 500)
            ++tally.http5xx;
    }

    // Fold this worker's per-target attribution into the shared tally.
    std::lock_guard<std::mutex> lock(tally.targetMutex);
    const std::vector<client::TargetStats> &stats = client.stats();
    for (std::size_t i = 0; i < stats.size(); ++i) {
        client::TargetStats &into = tally.targets[i];
        into.attempts += stats[i].attempts;
        into.http2xx += stats[i].http2xx;
        into.http4xx += stats[i].http4xx;
        into.http5xx += stats[i].http5xx;
        into.redirectsFollowed += stats[i].redirectsFollowed;
        into.meshUnreachable += stats[i].meshUnreachable;
        for (std::size_t c = 0; c < into.byFailure.size(); ++c)
            into.byFailure[c] += stats[i].byFailure[c];
    }
    tally.failovers += client.failovers();
}

int
run(const util::CommandLine &cl)
{
    if (!cl.has("port") && !cl.has("targets")) {
        std::cerr << flagSpec().usage();
        return 2;
    }
    const auto port = static_cast<std::uint16_t>(cl.getInt("port", 0));
    const std::string host = cl.getString("host", "127.0.0.1");
    const auto concurrency =
        static_cast<std::size_t>(cl.getInt("concurrency", 2));
    HM_REQUIRE(concurrency >= 1, "--concurrency must be >= 1");
    const double duration_s = cl.getDouble("duration-s", 3.0);
    HM_REQUIRE(duration_s > 0.0, "--duration-s must be > 0");
    const bool json_only = cl.getBool("json-only", false);
    const bool trace = cl.getBool("trace", false);
    const double deadline_ms = cl.getDouble("deadline-ms", 0.0);

    client::ClusterClient::Config client_config;
    const std::string targets_spec = cl.getString("targets", "");
    if (!targets_spec.empty())
        client_config.targets = client::parseTargets(targets_spec);
    else
        client_config.targets = {client::ClusterTarget{host, port}};
    client_config.readTimeoutMillis =
        static_cast<int>(cl.getInt("timeout-ms", 0));
    client_config.deadlineMillis = deadline_ms;
    client_config.retry.maxAttempts =
        1 + static_cast<std::size_t>(cl.getInt("retries", 0));
    client_config.retry.baseMillis = cl.getDouble("retry-base-ms", 50.0);
    client_config.retry.capMillis = cl.getDouble("retry-cap-ms", 2000.0);
    client_config.retry.budgetMillis =
        cl.getDouble("retry-budget-ms", 10000.0);
    client_config.retry.seed =
        static_cast<std::uint64_t>(cl.getInt("seed", 1));
    const std::string wire_format = cl.getString("wire", "binary");
    HM_REQUIRE(wire_format == "binary" || wire_format == "json",
               "--wire must be `binary` or `json`, got `"
                   << wire_format << "`");
    client_config.binaryWire = wire_format == "binary";

    // The request mix: every non-comment manifest line becomes one
    // /v1/score body, replayed round-robin.
    std::vector<std::string> mix;
    const std::string manifest_path = cl.getString("manifest", "");
    const std::string suite = cl.getString("suite", "");
    HM_REQUIRE(manifest_path.empty() || suite.empty(),
               "--manifest and --suite are mutually exclusive");
    if (!manifest_path.empty()) {
        for (const std::string &raw :
             str::split(util::readFile(manifest_path), '\n')) {
            const std::string line = str::trim(raw);
            if (!line.empty() && line.front() != '#')
                mix.push_back(line);
        }
        HM_REQUIRE(!mix.empty(), "manifest `" << manifest_path
                                              << "` has no requests");
    } else if (!suite.empty()) {
        // Reference bodies: the server expands the stored manifest
        // line, so the mix stresses the registry path as well.
        const client::ClusterTarget &target =
            client_config.targets.front();
        mix = suiteMix(target.host, target.port, suite);
    }

    if (!json_only) {
        std::string where = client_config.targets.front().label();
        for (std::size_t i = 1; i < client_config.targets.size(); ++i)
            where += "," + client_config.targets[i].label();
        std::cout << "hmload: " << concurrency << " worker(s), "
                  << duration_s << "s against " << where << " ("
                  << (mix.empty() ? "GET /healthz"
                                  : std::to_string(mix.size()) +
                                        "-line score mix")
                  << ")\n";
    }

    Tally tally;
    tally.targets.resize(client_config.targets.size());
    const auto start = std::chrono::steady_clock::now();
    const auto deadline =
        start + std::chrono::duration_cast<
                    std::chrono::steady_clock::duration>(
                    std::chrono::duration<double>(duration_s));
    std::vector<std::thread> threads;
    threads.reserve(concurrency);
    for (std::size_t i = 0; i < concurrency; ++i) {
        // Decorrelate each worker's jitter stream.
        client::ClusterClient::Config worker_config = client_config;
        worker_config.retry.seed += i;
        threads.emplace_back([&, worker_config, i] {
            worker(worker_config, mix, i, deadline, trace, deadline_ms,
                   tally);
        });
    }
    for (std::thread &thread : threads)
        thread.join();
    const std::chrono::duration<double> elapsed =
        std::chrono::steady_clock::now() - start;

    const auto requests = tally.requests.load();
    const std::uint64_t connect_errors =
        tally.connectRefused.load() + tally.connReset.load() +
        tally.timeouts.load() + tally.netOther.load();
    const double rps =
        elapsed.count() > 0.0
            ? static_cast<double>(requests) / elapsed.count()
            : 0.0;

    // The slowest percentile's trace IDs (at least 1, at most 10):
    // the requests worth pulling span trees for.
    std::string slow_traces = "[";
    if (!tally.traced.empty()) {
        std::sort(tally.traced.begin(), tally.traced.end(),
                  [](const auto &a, const auto &b) {
                      return a.first > b.first;
                  });
        std::size_t keep = tally.traced.size() / 100;
        keep = std::min<std::size_t>(std::max<std::size_t>(keep, 1), 10);
        for (std::size_t i = 0; i < keep; ++i) {
            if (i > 0)
                slow_traces += ",";
            slow_traces +=
                "{\"ms\":" +
                server::json::number(tally.traced[i].first) +
                ",\"trace_id\":" +
                server::json::quote(tally.traced[i].second) + "}";
        }
        if (!json_only) {
            std::cout << "slowest traced requests (hmctl --trace=ID "
                         "--port=N to inspect):\n";
            for (std::size_t i = 0; i < keep; ++i) {
                std::printf("  %9.3f ms  %s\n", tally.traced[i].first,
                            tally.traced[i].second.c_str());
            }
        }
    }
    slow_traces += "]";

    // Per-target attribution: which node answered what, which node
    // ate which failure class, whether failing over helped.
    std::string targets_json = "[";
    for (std::size_t i = 0; i < tally.targets.size(); ++i) {
        const client::TargetStats &stats = tally.targets[i];
        if (i > 0)
            targets_json += ",";
        targets_json +=
            "{\"target\":" +
            server::json::quote(client_config.targets[i].label()) +
            ",\"attempts\":" + std::to_string(stats.attempts) +
            ",\"http_2xx\":" + std::to_string(stats.http2xx) +
            ",\"http_4xx\":" + std::to_string(stats.http4xx) +
            ",\"http_5xx\":" + std::to_string(stats.http5xx) +
            ",\"redirects_followed\":" +
            std::to_string(stats.redirectsFollowed) +
            ",\"mesh_unreachable\":" +
            std::to_string(stats.meshUnreachable);
        for (std::size_t c = 1; c < stats.byFailure.size(); ++c) {
            std::string key =
                client::failureClassName(
                    static_cast<client::FailureClass>(c));
            for (char &ch : key)
                if (ch == '-')
                    ch = '_';
            targets_json +=
                ",\"" + key + "\":" + std::to_string(stats.byFailure[c]);
        }
        targets_json += "}";
    }
    targets_json += "]";
    if (!json_only && tally.targets.size() > 1) {
        std::cout << "per-target breakdown (failovers that helped: "
                  << tally.failovers << "):\n";
        for (std::size_t i = 0; i < tally.targets.size(); ++i) {
            const client::TargetStats &stats = tally.targets[i];
            std::printf("  %-21s attempts=%llu 2xx=%llu 4xx=%llu "
                        "5xx=%llu redirected=%llu unreachable=%llu",
                        client_config.targets[i].label().c_str(),
                        static_cast<unsigned long long>(stats.attempts),
                        static_cast<unsigned long long>(stats.http2xx),
                        static_cast<unsigned long long>(stats.http4xx),
                        static_cast<unsigned long long>(stats.http5xx),
                        static_cast<unsigned long long>(
                            stats.redirectsFollowed),
                        static_cast<unsigned long long>(
                            stats.meshUnreachable));
            for (std::size_t c = 1; c < stats.byFailure.size(); ++c) {
                if (stats.byFailure[c] == 0)
                    continue;
                std::printf(" %s=%llu",
                            client::failureClassName(
                                static_cast<client::FailureClass>(c)),
                            static_cast<unsigned long long>(
                                stats.byFailure[c]));
            }
            std::printf("\n");
        }
    }

    std::printf(
        "{\"rps\":%s,\"requests\":%llu,\"http_2xx\":%llu,"
        "\"http_4xx\":%llu,\"http_5xx\":%llu,\"stale_served\":%llu,"
        "\"connect_errors\":%llu,\"connect_refused\":%llu,"
        "\"conn_reset\":%llu,\"timeouts\":%llu,\"net_other\":%llu,"
        "\"bad_response\":%llu,\"deadline_expired\":%llu,"
        "\"shed\":%llu,\"drain_sheds\":%llu,"
        "\"server_expired\":%llu,\"cancelled\":%llu,"
        "\"deadline_misses\":%llu,\"deadline_miss_rate\":%s,"
        "\"retries\":%llu,\"backoff_ms\":%s,"
        "\"p50_ms\":%s,\"p95_ms\":%s,\"p99_ms\":%s,"
        "\"p99_9_ms\":%s,\"max_ms\":%s,"
        "\"duration_s\":%s,\"concurrency\":%llu,"
        "\"wire_format\":\"%s\","
        "\"request_bytes_per_request\":%s,"
        "\"response_bytes_per_request\":%s,"
        "\"failovers\":%llu,\"targets\":%s,"
        "\"slow_traces\":%s}\n",
        server::json::number(rps).c_str(),
        static_cast<unsigned long long>(requests),
        static_cast<unsigned long long>(tally.http2xx.load()),
        static_cast<unsigned long long>(tally.http4xx.load()),
        static_cast<unsigned long long>(tally.http5xx.load()),
        static_cast<unsigned long long>(tally.staleServed.load()),
        static_cast<unsigned long long>(connect_errors),
        static_cast<unsigned long long>(tally.connectRefused.load()),
        static_cast<unsigned long long>(tally.connReset.load()),
        static_cast<unsigned long long>(tally.timeouts.load()),
        static_cast<unsigned long long>(tally.netOther.load()),
        static_cast<unsigned long long>(tally.badResponse.load()),
        static_cast<unsigned long long>(tally.deadlineExpired.load()),
        static_cast<unsigned long long>(tally.shed.load()),
        static_cast<unsigned long long>(tally.drainSheds.load()),
        static_cast<unsigned long long>(tally.serverExpired.load()),
        static_cast<unsigned long long>(tally.cancelled.load()),
        static_cast<unsigned long long>(tally.deadlineMisses.load()),
        server::json::number(
            requests > 0 ? static_cast<double>(
                               tally.deadlineMisses.load()) /
                               static_cast<double>(requests)
                         : 0.0)
            .c_str(),
        static_cast<unsigned long long>(tally.retries.load()),
        server::json::number(
            static_cast<double>(tally.backoffMicros.load()) / 1000.0)
            .c_str(),
        server::json::number(tally.latency.percentile(50.0)).c_str(),
        server::json::number(tally.latency.percentile(95.0)).c_str(),
        server::json::number(tally.latency.percentile(99.0)).c_str(),
        server::json::number(tally.latency.percentile(99.9)).c_str(),
        server::json::number(tally.latency.max()).c_str(),
        server::json::number(elapsed.count()).c_str(),
        static_cast<unsigned long long>(concurrency),
        wire_format.c_str(),
        server::json::number(
            requests > 0
                ? static_cast<double>(tally.requestBytes.load()) /
                      static_cast<double>(requests)
                : 0.0)
            .c_str(),
        server::json::number(
            requests > 0
                ? static_cast<double>(tally.responseBytes.load()) /
                      static_cast<double>(requests)
                : 0.0)
            .c_str(),
        static_cast<unsigned long long>(tally.failovers),
        targets_json.c_str(), slow_traces.c_str());
    std::fflush(stdout);

    // A run that never completed a request is a failed run: the server
    // was unreachable for the whole window.
    return requests > 0 ? 0 : 1;
}

} // namespace

int
main(int argc, char **argv)
{
    try {
        const auto cl = util::CommandLine::parse(argc, argv);
        if (flagSpec().handleStandard(cl, std::cout))
            return 0;
        return run(cl);
    } catch (const hiermeans::Error &e) {
        std::cerr << "hmload: " << e.what() << "\n";
        return 1;
    }
}
