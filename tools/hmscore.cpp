/**
 * @file
 * hmscore — hierarchical-means scoring for user benchmark data.
 *
 * Reads per-workload scores and characteristic vectors from CSV files,
 * runs the SOM + hierarchical-clustering pipeline, and prints the
 * hierarchical-mean score table, the SOM map, the dendrogram and the
 * cluster-count recommendation. Results can be exported back to CSV.
 *
 * Usage:
 *   hmscore --scores=scores.csv --features=features.csv \
 *           --machine-a=X --machine-b=Y \
 *           [--mean=gm|am|hm] [--kmin=2] [--kmax=8] [--linkage=complete]
 *           [--som-rows=8] [--som-cols=10] [--som-steps=4000]
 *           [--seed=N] [--out-csv=report.csv] [--quiet]
 *           [--all-machines] [--influence] [--threads=N]
 *
 * With --all-machines the A/B comparison is replaced by an N-machine
 * hierarchical-mean table over every machine column in scores.csv;
 * --influence appends the leave-one-out influence of each workload.
 *
 * CSV formats (header row required, workload name first):
 *   scores.csv:   workload,X,Y,...    positive scores per machine
 *   features.csv: workload,f1,f2,...  raw characteristic values
 */

#include <fstream>
#include <iostream>
#include <memory>

#include "src/hiermeans.h"

namespace {

using namespace hiermeans;
using util::readFile;

util::FlagSet
flagSpec()
{
    util::FlagSet flags(
        "hmscore", "score a benchmark suite with hierarchical means");
    flags.section("required flags")
        .flag("scores", "FILE",
              "CSV: workload,<machine>,... (positive)")
        .flag("features", "FILE", "CSV: workload,<feature>,...")
        .flag("machine-a", "NAME", "first machine column to compare")
        .flag("machine-b", "NAME",
              "second machine column to compare\n"
              "(or --all-machines to compare every column at once)");
    flags.section("optional flags")
        .flag("mean", "gm|am|hm", "mean family (default gm)")
        .flag("kmin", "N", "cluster-count sweep start (default 2)")
        .flag("kmax", "N", "cluster-count sweep end (default 8)")
        .flag("linkage", "NAME",
              "single|complete|average|weighted|ward")
        .flag("som-rows", "N", "SOM rows (default: auto-sized)")
        .flag("som-cols", "N", "SOM columns (default: auto-sized)")
        .flag("som-steps", "N", "SOM training steps (default 4000)")
        .flag("seed", "N", "RNG seed (default 0x5eed)")
        .flag("out-csv", "FILE", "also write the report as CSV")
        .flag("all-machines", "", "N-machine table instead of A/B")
        .flag("influence", "", "leave-one-out workload influence")
        .flag("partition", "FILE",
              "score against a fixed reference cluster\n"
              "distribution (workload,cluster CSV) instead of\n"
              "clustering; --features is then optional")
        .flag("out-partition", "F",
              "save the recommended partition as the\n"
              "reference cluster distribution")
        .flag("threads", "N",
              "compute the k-sweep / --all-machines scoring on\n"
              "N engine worker threads (default 1 = serial;\n"
              "results identical)")
        .flag("quiet", "", "print only the score table");
    flags.tracing().standard();
    return flags;
}

/**
 * A/B k-sweep, serially or fanned out over an engine thread pool when
 * --threads > 1 (bit-identical results either way).
 */
scoring::ScoreReport
buildAbReport(std::size_t threads, stats::MeanKind kind,
              const core::ClusterAnalysis &analysis,
              const std::vector<double> &scores_a,
              const std::vector<double> &scores_b)
{
    if (threads <= 1)
        return core::scoreAgainstClusters(analysis, kind, scores_a,
                                          scores_b);
    engine::ThreadPool pool(threads);
    return engine::buildScoreReportParallel(pool, kind, scores_a,
                                            scores_b,
                                            analysis.partitions);
}

/** N-machine counterpart of buildAbReport. */
scoring::MultiMachineReport
buildAllMachinesReport(
    std::size_t threads, stats::MeanKind kind,
    const std::vector<std::vector<double>> &machine_scores,
    const std::vector<std::string> &machine_labels,
    const core::ClusterAnalysis &analysis)
{
    if (threads <= 1) {
        return scoring::buildMultiMachineReport(kind, machine_scores,
                                                machine_labels,
                                                analysis.partitions);
    }
    engine::ThreadPool pool(threads);
    return engine::buildMultiMachineReportParallel(
        pool, kind, machine_scores, machine_labels,
        analysis.partitions);
}

int
run(const util::CommandLine &cl)
{
    const std::string scores_path = cl.getString("scores", "");
    const std::string features_path = cl.getString("features", "");
    const std::string machine_a = cl.getString("machine-a", "");
    const std::string machine_b = cl.getString("machine-b", "");
    const std::string partition_path = cl.getString("partition", "");
    const bool all_machines = cl.getBool("all-machines", false);
    if (scores_path.empty() ||
        (features_path.empty() && partition_path.empty()) ||
        (!all_machines && (machine_a.empty() || machine_b.empty()))) {
        std::cerr << flagSpec().usage();
        return 2;
    }

    const core::ScoresCsv scores =
        core::parseScoresCsv(readFile(scores_path));

    // Reference-partition mode: the committee's published clusters
    // replace the whole characterization/clustering pipeline.
    if (!partition_path.empty()) {
        const scoring::Partition reference = core::parsePartitionCsv(
            readFile(partition_path), scores.workloads);
        const stats::MeanKind kind =
            stats::parseMeanKind(cl.getString("mean", "gm"));
        std::cout << "reference cluster distribution ("
                  << reference.clusterCount() << " clusters):\n  "
                  << reference.toString(scores.workloads) << "\n\n";
        if (all_machines) {
            std::vector<std::vector<double>> machine_scores;
            for (const std::string &machine : scores.machines)
                machine_scores.push_back(
                    scores.machineScores(machine));
            const scoring::MultiMachineReport report =
                scoring::buildMultiMachineReport(
                    kind, machine_scores, scores.machines,
                    {reference});
            std::cout << report.render();
        } else {
            const scoring::ScoreReport report =
                scoring::buildScoreReport(
                    kind, scores.machineScores(machine_a),
                    scores.machineScores(machine_b), {reference});
            std::cout << report.render(machine_a, machine_b);
        }
        return 0;
    }

    const core::FeaturesCsv features =
        core::parseFeaturesCsv(readFile(features_path));
    core::requireAlignedWorkloads(scores, features);

    // In A/B mode, resolve the two columns up front so typos fail fast.
    const std::vector<double> scores_a =
        all_machines ? std::vector<double>{}
                     : scores.machineScores(machine_a);
    const std::vector<double> scores_b =
        all_machines ? std::vector<double>{}
                     : scores.machineScores(machine_b);

    core::PipelineConfig config;
    config.kMin = static_cast<std::size_t>(cl.getInt("kmin", 2));
    config.kMax = static_cast<std::size_t>(cl.getInt("kmax", 8));
    config.linkage =
        cluster::parseLinkage(cl.getString("linkage", "complete"));
    config.autoSizeSom(scores.workloads.size());
    if (cl.has("som-rows")) {
        config.som.rows =
            static_cast<std::size_t>(cl.getInt("som-rows", 8));
    }
    if (cl.has("som-cols")) {
        config.som.cols =
            static_cast<std::size_t>(cl.getInt("som-cols", 10));
    }
    config.som.steps =
        static_cast<std::size_t>(cl.getInt("som-steps", 4000));
    config.som.seed =
        static_cast<std::uint64_t>(cl.getInt("seed", 0x5eed));
    const stats::MeanKind kind =
        stats::parseMeanKind(cl.getString("mean", "gm"));
    const auto threads =
        static_cast<std::size_t>(cl.getInt("threads", 1));
    HM_REQUIRE(threads >= 1, "--threads must be >= 1");

    // With --trace armed, the pipeline stages below record spans into
    // a local trace whose tree is printed after the report.
    obs::Tracer::instance().configure(
        obs::traceConfigFromCommandLine(cl));
    std::shared_ptr<obs::Trace> trace;
    std::size_t trace_root = obs::kNoParent;
    if (obs::tracingEnabled()) {
        trace = obs::Tracer::instance().start(obs::generateTraceId());
        trace_root = trace->begin("hmscore.run");
    }
    obs::ScopedTraceContext trace_context(trace.get(), trace_root);

    const core::CharacteristicVectors vectors = core::characterizeRaw(
        features.values, features.workloads, features.features);
    const core::ClusterAnalysis analysis =
        core::analyzeClusters(vectors, config);

    const bool quiet = cl.getBool("quiet", false);
    if (!quiet) {
        std::cout << analysis.renderMap("Workload distribution") << "\n";
        std::cout << cluster::renderVerticalDendrogram(
                         analysis.dendrogram, features.workloads,
                         "Cluster hierarchy")
                  << "\n";
    }

    scoring::Partition recommended_partition =
        scoring::Partition::single(scores.workloads.size());
    if (all_machines) {
        std::vector<std::vector<double>> machine_scores;
        for (const std::string &machine : scores.machines)
            machine_scores.push_back(scores.machineScores(machine));
        const scoring::MultiMachineReport report =
            buildAllMachinesReport(threads, kind, machine_scores,
                                   scores.machines, analysis);
        std::cout << report.render() << "\n";
        std::cout << (report.rankingStable()
                          ? "machine ranking is stable across every "
                            "cluster count.\n"
                          : "machine ranking CHANGES with the cluster "
                            "count - inspect before publishing a "
                            "single number.\n");
        recommended_partition = analysis.partitions.front();
    } else {
        const scoring::ScoreReport report = buildAbReport(
            threads, kind, analysis, scores_a, scores_b);
        const auto recommendation =
            core::recommendClusterCount(analysis, report);
        std::cout << report.render(machine_a, machine_b) << "\n";
        std::cout << recommendation.explain() << "\n";
        recommended_partition = analysis.dendrogram.cutAtCount(
            recommendation.recommended);
        std::cout << "partition at recommended k:\n  "
                  << recommended_partition.toString(features.workloads)
                  << "\n";

        const std::string out_csv = cl.getString("out-csv", "");
        if (!out_csv.empty()) {
            std::ofstream out(out_csv, std::ios::binary);
            HM_REQUIRE(out.good(), "cannot write `" << out_csv << "`");
            out << core::scoreReportToCsv(report, machine_a, machine_b);
            std::cout << "report written to " << out_csv << "\n";
        }
    }

    const std::string out_partition = cl.getString("out-partition", "");
    if (!out_partition.empty()) {
        std::ofstream out(out_partition, std::ios::binary);
        HM_REQUIRE(out.good(), "cannot write `" << out_partition
                                                << "`");
        out << core::partitionToCsv(recommended_partition,
                                    scores.workloads);
        std::cout << "reference cluster distribution written to "
                  << out_partition << "\n";
    }

    if (cl.getBool("influence", false)) {
        const std::vector<double> &basis =
            all_machines ? scores.machineScores(scores.machines.front())
                         : scores_a;
        const auto influences = scoring::leaveOneOutInfluence(
            kind, basis, recommended_partition);
        std::cout << "\nleave-one-out influence ("
                  << (all_machines ? scores.machines.front() : machine_a)
                  << ", plain vs hierarchical):\n";
        util::TextTable table({"workload", "plain %", "hierarchical %"});
        for (const auto &inf : influences) {
            table.addRow(
                {features.workloads[inf.workload],
                 str::fixed(100.0 * inf.plainInfluence, 2),
                 str::fixed(100.0 * inf.hierarchicalInfluence, 2)});
        }
        std::cout << table.render();
    }

    if (trace) {
        trace->end(trace_root);
        std::cout << "\n"
                  << obs::renderSpanTree(trace->id(), trace->spans());
        obs::Tracer::instance().finish(std::move(trace));
    }
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    try {
        const auto cl = util::CommandLine::parse(argc, argv);
        if (flagSpec().handleStandard(cl, std::cout))
            return 0;
        return run(cl);
    } catch (const hiermeans::Error &e) {
        std::cerr << "hmscore: " << e.what() << "\n";
        return 1;
    }
}
