/**
 * @file
 * hmserved — HTTP scoring daemon over the concurrent scoring engine.
 *
 * Binds a POSIX listener, serves the manifest-line scoring API
 * (`POST /v1/score`, `POST /v1/batch`, `GET /metrics`, `GET /healthz`)
 * and runs until SIGINT/SIGTERM, at which point it stops accepting,
 * drains in-flight requests and prints a final metrics summary.
 *
 * Usage:
 *   hmserved [--port=8377] [--threads=4] [--queue-depth=8]
 *            [--cache-entries=256] [--cache-mb=64] [--max-body-kb=256]
 *            [--timeout-ms=0] [--breaker-failures=8]
 *            [--breaker-open-ms=2000] [--watchdog-budget-ms=30000]
 *            [--watchdog-grace-ms=250] [--degrade-ratio=0.5]
 *            [--no-stale] [--quiet] [--trace] [--trace-slow-ms=250]
 *            [--trace-keep=64] [--trace-keep-slow=16] [--faults=SPEC]
 *            [--fault-seed=N] [--data-dir=DIR] [--fsync-every=1]
 *            [--snapshot-every=256] [--history-capacity=256]
 *            [--recluster-every=SECONDS] [--drift-window=64]
 *            [--drift-min-window=8] [--drift-calm-ticks=2]
 *
 * Drift: with a store mounted, every suite's score history feeds an
 * online SOM; `--recluster-every` re-clusters each suite's window on
 * that cadence and classifies it fresh|drifting|stale (see
 * GET /v1/suites/<name>/drift and the hiermeans_drift_* metrics).
 *
 * Persistence: `--data-dir=DIR` mounts the durable store (WAL +
 * snapshots). On boot the store recovers — newest valid snapshot plus
 * WAL tail, torn final record truncated — the result cache is
 * warm-started from the recovered score records, and a `store
 * recovered` line is printed. Suites registered via POST /v1/suites
 * and every executed score survive restarts; graceful shutdown takes
 * a final snapshot.
 *
 * `--port=0` picks an ephemeral port; the chosen port is printed (and
 * flushed) as `listening on port N` so scripts can scrape it.
 *
 * Fault injection (chaos testing): `--faults` takes the spec grammar of
 * util/fault.h (e.g. `net.write.short=p:0.1,engine.task=nth:7`), or set
 * HIERMEANS_FAULTS / HIERMEANS_FAULT_SEED in the environment.
 */

#include <csignal>
#include <iostream>

#include "src/hiermeans.h"

namespace {

using namespace hiermeans;

util::FlagSet
flagSpec()
{
    util::FlagSet flags("hmserved",
                        "HTTP scoring daemon over the concurrent "
                        "scoring engine");
    flags.section("serving flags")
        .flag("port", "N", "TCP port (default 8377; 0 = ephemeral)")
        .flag("threads", "N", "engine worker threads (default 4)")
        .flag("queue-depth", "N",
              "admission queue bound; beyond it requests\n"
              "are shed with 503 (default 8)")
        .flag("cache-entries", "N",
              "result cache entry bound (default 256)")
        .flag("cache-mb", "N", "result cache byte bound (default 64)")
        .flag("max-body-kb", "N",
              "request body limit, 413 beyond (default 256)")
        .flag("timeout-ms", "DUR",
              "default per-request deadline when the manifest\n"
              "line has no timeout-ms; accepts duration\n"
              "suffixes (250ms, 2s, 1m; default 0: no deadline)")
        .flag("bulk-queue-depth", "N",
              "admission slots the bulk lane (/v1/batch,\n"
              "observe) may hold; interactive /v1/score owns\n"
              "the rest (default 0: half of --queue-depth)")
        .flag("quiet", "", "suppress the final metrics summary");
    flags.section("resilience flags")
        .flag("breaker-failures", "N",
              "consecutive 5xx that open the /v1/score\n"
              "circuit (default 8; 0 disables)")
        .flag("breaker-open-ms", "N",
              "open window before a half-open probe (default 2000)")
        .flag("watchdog-budget-ms", "N",
              "hard budget for requests without their own\n"
              "deadline (default 30000; 0 disables the watchdog)")
        .flag("watchdog-grace-ms", "N",
              "slack beyond a request's own deadline before\n"
              "the watchdog answers 504 (default 250)")
        .flag("degrade-ratio", "X",
              "shed fraction of recent requests that flips\n"
              "/healthz to degraded (default 0.5)")
        .flag("no-stale", "",
              "never serve stale cached scores when shedding\n"
              "(default: serve them with X-Hiermeans-Stale: 1)")
        .flag("default-deadline", "DUR",
              "deadline budget assumed for requests that\n"
              "carry no X-Hiermeans-Deadline (e.g. 2s;\n"
              "default 0: none)")
        .flag("drain-deadline", "DUR",
              "how long SIGTERM waits for in-flight work\n"
              "before cancelling it (e.g. 5s, 1m;\n"
              "default 5s)");
    flags.section("persistence flags")
        .flag("data-dir", "DIR",
              "mount the durable store (WAL + snapshots) here;\n"
              "unset = no persistence")
        .flag("fsync-every", "N",
              "fsync the WAL every Nth record (default 1:\n"
              "every record; 0 = never, rely on the page cache)")
        .flag("snapshot-every", "N",
              "snapshot + compact the WAL every Nth record\n"
              "(default 256; 0 = only on shutdown/request)")
        .flag("history-capacity", "N",
              "score-history entries kept per suite ring\n"
              "(default 256)");
    flags.section("drift flags")
        .flag("recluster-every", "SECONDS",
              "re-cluster every suite's history window and\n"
              "re-score drift on this cadence (default 0:\n"
              "only on POST /v1/admin/recluster)")
        .flag("drift-window", "N",
              "newest history entries re-clustered per tick\n"
              "(default 64)")
        .flag("drift-min-window", "N",
              "observations required before the first\n"
              "clustering is published (default 8)")
        .flag("drift-calm-ticks", "N",
              "consecutive calm ticks per staleness\n"
              "step-down (default 2)");
    flags.section("mesh flags")
        .flag("mesh-config", "FILE",
              "join the cluster described by FILE (see\n"
              "src/mesh/config.h for the grammar); requires\n"
              "--data-dir")
        .flag("mesh-rpc-timeout-ms", "N",
              "peer RPC read timeout: replication ships,\n"
              "forwards and health probes (default 5000)")
        .flag("mesh-tick-ms", "N",
              "health-probe + follower-catch-up cadence\n"
              "(default 500)");
    flags.tracing().standard().epilogue(
        "endpoints:\n"
        "  POST /v1/score      body = one manifest line -> envelope\n"
        "  POST /v1/batch      body = manifest -> one envelope per line\n"
        "  GET  /v1/trace/<id> span tree of a traced request\n"
        "  GET  /v1/traces     recent + slow-sampled trace IDs\n"
        "  POST /v1/suites?name=X  register a named manifest version\n"
        "  GET  /v1/suites     registered suites + versions\n"
        "  GET  /v1/history?suite=X  persisted score history\n"
        "  POST /v1/suites/<name>/observe  append one observation\n"
        "  GET  /v1/suites/<name>/drift    suite drift report\n"
        "  GET  /v1/drift      every tracked suite's drift state\n"
        "  POST /v1/admin/recluster[?suite=X]  force a drift tick\n"
        "  POST /v1/admin/snapshot  force snapshot + compaction\n"
        "  POST /v1/admin/drain    begin graceful drain + exit\n"
        "  GET  /metrics       Prometheus text exposition\n"
        "  GET  /healthz       liveness probe\n");
    return flags;
}


int
run(const util::CommandLine &cl)
{
    server::Server::Config config;
    config.port = static_cast<std::uint16_t>(cl.getInt("port", 8377));
    config.engine.threads =
        static_cast<std::size_t>(cl.getInt("threads", 4));
    config.queueDepth =
        static_cast<std::size_t>(cl.getInt("queue-depth", 8));
    config.engine.cache.maxEntries =
        static_cast<std::size_t>(cl.getInt("cache-entries", 256));
    config.engine.cache.maxBytes =
        static_cast<std::size_t>(cl.getInt("cache-mb", 64)) * 1024 *
        1024;
    config.maxBodyBytes =
        static_cast<std::size_t>(cl.getInt("max-body-kb", 256)) * 1024;
    config.defaultTimeoutMillis = cl.getDurationMillis("timeout-ms", 0.0);
    config.bulkQueueDepth =
        static_cast<std::size_t>(cl.getInt("bulk-queue-depth", 0));
    config.defaultDeadlineMillis =
        cl.getDurationMillis("default-deadline", 0.0);
    config.drainDeadlineMillis =
        cl.getDurationMillis("drain-deadline", 5000.0);
    config.breaker.failureThreshold =
        static_cast<std::size_t>(cl.getInt("breaker-failures", 8));
    config.breaker.openMillis =
        cl.getDurationMillis("breaker-open-ms", 2000.0);
    config.watchdog.defaultBudgetMillis =
        cl.getDurationMillis("watchdog-budget-ms", 30000.0);
    config.watchdog.graceMillis =
        cl.getDurationMillis("watchdog-grace-ms", 250.0);
    config.health.degradeRatio = cl.getDouble("degrade-ratio", 0.5);
    config.health.recoverRatio = config.health.degradeRatio / 4.0;
    config.serveStale = !cl.getBool("no-stale", false);
    config.store.dataDir = cl.getString("data-dir", "");
    config.store.fsyncEvery =
        static_cast<std::size_t>(cl.getInt("fsync-every", 1));
    config.store.snapshotEvery =
        static_cast<std::size_t>(cl.getInt("snapshot-every", 256));
    config.store.limits.historyCapacity =
        static_cast<std::size_t>(cl.getInt("history-capacity", 256));
    config.reclusterEverySeconds = cl.getDouble("recluster-every", 0.0);
    config.drift.window =
        static_cast<std::size_t>(cl.getInt("drift-window", 64));
    config.drift.minWindow =
        static_cast<std::size_t>(cl.getInt("drift-min-window", 8));
    config.drift.thresholds.calmTicks =
        static_cast<std::uint32_t>(cl.getInt("drift-calm-ticks", 2));
    // Connection workers must outnumber the admission queue or the
    // gate can never fill; keep a few extra for the cheap endpoints.
    config.connectionThreads = config.queueDepth + 8;

    obs::Tracer::instance().configure(
        obs::traceConfigFromCommandLine(cl));

    util::installShutdownSignals({SIGINT, SIGTERM});

    // Cluster mode: the mesh runtime must outlive the server (the
    // server holds a ClusterHooks pointer into it).
    std::unique_ptr<mesh::MeshRuntime> runtime;
    const std::string mesh_path = cl.getString("mesh-config", "");
    if (!mesh_path.empty()) {
        if (config.store.dataDir.empty())
            throw InvalidArgument(
                "--mesh-config requires --data-dir (replication "
                "mirrors live under it)");
        mesh::MeshRuntime::Config mesh_config;
        mesh_config.mesh = mesh::loadMeshConfig(mesh_path);
        mesh_config.dataDir = config.store.dataDir;
        mesh_config.rpcTimeoutMillis =
            static_cast<int>(cl.getInt("mesh-rpc-timeout-ms", 5000));
        mesh_config.tickMillis =
            static_cast<int>(cl.getInt("mesh-tick-ms", 500));
        // The advertised port must be the one we actually bind.
        const mesh::MeshNode &self = mesh_config.mesh.self();
        if (cl.getString("port", "").empty())
            config.port = self.port;
        else if (config.port != self.port)
            throw InvalidArgument(
                "--port disagrees with this node's mesh entry (" +
                std::to_string(self.port) + ")");
        runtime = std::make_unique<mesh::MeshRuntime>(mesh_config);
        config.cluster = runtime.get();
    }

    server::Server server(config);
    server.start();
    if (runtime != nullptr) {
        runtime->setDriftSummary(
            [&server] { return server.driftSummaryJson(); });
        runtime->setSelfHealth([&server]() -> std::string {
            return server.draining() ? "draining" : "ok";
        });
        runtime->start(server.store());
        std::cout << "mesh: node `" << runtime->meshConfig().selfId
                  << "` of " << runtime->meshConfig().nodes.size()
                  << " (replicas=" << runtime->meshConfig().replicas
                  << ", ring points=" << runtime->ring().points()
                  << ")" << std::endl;
    }
    if (server.store() != nullptr) {
        const store::RecoveryInfo &recovery = server.storeRecovery();
        std::cout << "store recovered: outcome="
                  << store::recoveryOutcomeName(recovery.outcome)
                  << " seq=" << recovery.lastSequence
                  << " snapshot_records=" << recovery.snapshotRecords
                  << " wal_applied=" << recovery.walApplied
                  << " discarded_bytes=" << recovery.walBytesDiscarded
                  << " cache_warmed=" << server.warmedCacheEntries()
                  << std::endl;
    }
    std::cout << "listening on port " << server.port() << std::endl;

    while (!util::shutdownRequested())
        util::waitForShutdown(500);

    std::cout << "shutdown requested, draining in-flight requests\n";
    server.stop();
    if (runtime != nullptr)
        runtime->stop();

    if (!cl.getBool("quiet", false))
        std::cout << "final metrics:\n" << server.renderMetrics();
    else
        std::cout << "final metrics: suppressed (--quiet)\n";
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    try {
        const auto cl = util::CommandLine::parse(argc, argv);
        if (flagSpec().handleStandard(cl, std::cout))
            return 0;
        return run(cl);
    } catch (const hiermeans::Error &e) {
        std::cerr << "hmserved: " << e.what() << "\n";
        return 1;
    }
}
