/**
 * @file
 * hmserved — HTTP scoring daemon over the concurrent scoring engine.
 *
 * Binds a POSIX listener, serves the manifest-line scoring API
 * (`POST /v1/score`, `POST /v1/batch`, `GET /metrics`, `GET /healthz`)
 * and runs until SIGINT/SIGTERM, at which point it stops accepting,
 * drains in-flight requests and prints a final metrics summary.
 *
 * Usage:
 *   hmserved [--port=8377] [--threads=4] [--queue-depth=8]
 *            [--cache-entries=256] [--cache-mb=64] [--max-body-kb=256]
 *            [--timeout-ms=0] [--quiet]
 *
 * `--port=0` picks an ephemeral port; the chosen port is printed (and
 * flushed) as `listening on port N` so scripts can scrape it.
 */

#include <csignal>
#include <iostream>

#include "src/hiermeans.h"

namespace {

using namespace hiermeans;

void
printUsage()
{
    std::cout <<
        "hmserved (" << util::kVersionString << "): HTTP scoring\n"
        "daemon over the concurrent scoring engine\n"
        "\n"
        "optional flags:\n"
        "  --port=N           TCP port (default 8377; 0 = ephemeral)\n"
        "  --threads=N        engine worker threads (default 4)\n"
        "  --queue-depth=N    admission queue bound; beyond it requests\n"
        "                     are shed with 503 (default 8)\n"
        "  --cache-entries=N  result cache entry bound (default 256)\n"
        "  --cache-mb=N       result cache byte bound (default 64)\n"
        "  --max-body-kb=N    request body limit, 413 beyond (default 256)\n"
        "  --timeout-ms=N     default per-request deadline when the\n"
        "                     manifest line has no timeout-ms (default 0:\n"
        "                     no deadline)\n"
        "  --quiet            suppress the final metrics summary\n"
        "\n"
        "endpoints:\n"
        "  POST /v1/score     body = one manifest line -> score report\n"
        "  POST /v1/batch     body = manifest -> one result per line\n"
        "  GET  /metrics      server + engine counters\n"
        "  GET  /healthz      liveness probe\n";
}

int
run(const util::CommandLine &cl)
{
    server::Server::Config config;
    config.port = static_cast<std::uint16_t>(cl.getInt("port", 8377));
    config.engine.threads =
        static_cast<std::size_t>(cl.getInt("threads", 4));
    config.queueDepth =
        static_cast<std::size_t>(cl.getInt("queue-depth", 8));
    config.engine.cache.maxEntries =
        static_cast<std::size_t>(cl.getInt("cache-entries", 256));
    config.engine.cache.maxBytes =
        static_cast<std::size_t>(cl.getInt("cache-mb", 64)) * 1024 *
        1024;
    config.maxBodyBytes =
        static_cast<std::size_t>(cl.getInt("max-body-kb", 256)) * 1024;
    config.defaultTimeoutMillis = cl.getDouble("timeout-ms", 0.0);
    // Connection workers must outnumber the admission queue or the
    // gate can never fill; keep a few extra for the cheap endpoints.
    config.connectionThreads = config.queueDepth + 8;

    util::installShutdownSignals({SIGINT, SIGTERM});

    server::Server server(config);
    server.start();
    std::cout << "listening on port " << server.port() << std::endl;

    while (!util::shutdownRequested())
        util::waitForShutdown(500);

    std::cout << "shutdown requested, draining in-flight requests\n";
    server.stop();

    if (!cl.getBool("quiet", false))
        std::cout << "final metrics:\n" << server.renderMetrics();
    else
        std::cout << "final metrics: suppressed (--quiet)\n";
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    try {
        const auto cl = util::CommandLine::parse(argc, argv);
        if (cl.has("help")) {
            printUsage();
            return 0;
        }
        return run(cl);
    } catch (const hiermeans::Error &e) {
        std::cerr << "hmserved: " << e.what() << "\n";
        return 1;
    }
}
