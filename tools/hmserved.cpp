/**
 * @file
 * hmserved — HTTP scoring daemon over the concurrent scoring engine.
 *
 * Binds a POSIX listener, serves the manifest-line scoring API
 * (`POST /v1/score`, `POST /v1/batch`, `GET /metrics`, `GET /healthz`)
 * and runs until SIGINT/SIGTERM, at which point it stops accepting,
 * drains in-flight requests and prints a final metrics summary.
 *
 * Usage:
 *   hmserved [--port=8377] [--threads=4] [--queue-depth=8]
 *            [--cache-entries=256] [--cache-mb=64] [--max-body-kb=256]
 *            [--timeout-ms=0] [--breaker-failures=8]
 *            [--breaker-open-ms=2000] [--watchdog-budget-ms=30000]
 *            [--watchdog-grace-ms=250] [--degrade-ratio=0.5]
 *            [--no-stale] [--faults=SPEC] [--fault-seed=N] [--quiet]
 *
 * `--port=0` picks an ephemeral port; the chosen port is printed (and
 * flushed) as `listening on port N` so scripts can scrape it.
 *
 * Fault injection (chaos testing): `--faults` takes the spec grammar of
 * util/fault.h (e.g. `net.write.short=p:0.1,engine.task=nth:7`), or set
 * HIERMEANS_FAULTS / HIERMEANS_FAULT_SEED in the environment.
 */

#include <csignal>
#include <iostream>

#include "src/hiermeans.h"

namespace {

using namespace hiermeans;

void
printUsage()
{
    std::cout <<
        "hmserved (" << util::kVersionString << "): HTTP scoring\n"
        "daemon over the concurrent scoring engine\n"
        "\n"
        "optional flags:\n"
        "  --port=N           TCP port (default 8377; 0 = ephemeral)\n"
        "  --threads=N        engine worker threads (default 4)\n"
        "  --queue-depth=N    admission queue bound; beyond it requests\n"
        "                     are shed with 503 (default 8)\n"
        "  --cache-entries=N  result cache entry bound (default 256)\n"
        "  --cache-mb=N       result cache byte bound (default 64)\n"
        "  --max-body-kb=N    request body limit, 413 beyond (default 256)\n"
        "  --timeout-ms=N     default per-request deadline when the\n"
        "                     manifest line has no timeout-ms (default 0:\n"
        "                     no deadline)\n"
        "\n"
        "resilience flags:\n"
        "  --breaker-failures=N   consecutive 5xx that open the /v1/score\n"
        "                         circuit (default 8; 0 disables)\n"
        "  --breaker-open-ms=N    open window before a half-open probe\n"
        "                         (default 2000)\n"
        "  --watchdog-budget-ms=N hard budget for requests without their\n"
        "                         own deadline (default 30000; 0 disables\n"
        "                         the watchdog)\n"
        "  --watchdog-grace-ms=N  slack beyond a request's own deadline\n"
        "                         before the watchdog answers 504\n"
        "                         (default 250)\n"
        "  --degrade-ratio=X      shed fraction of recent requests that\n"
        "                         flips /healthz to degraded (default 0.5)\n"
        "  --no-stale             never serve stale cached scores when\n"
        "                         shedding (default: serve them with\n"
        "                         X-Hiermeans-Stale: 1)\n"
        "\n"
        "chaos flags:\n"
        "  --faults=SPEC      deterministic fault spec, e.g.\n"
        "                     net.write.short=p:0.1,engine.task=nth:7\n"
        "  --fault-seed=N     seed for probabilistic fault triggers\n"
        "  --quiet            suppress the final metrics summary\n"
        "\n"
        "endpoints:\n"
        "  POST /v1/score     body = one manifest line -> score report\n"
        "  POST /v1/batch     body = manifest -> one result per line\n"
        "  GET  /metrics      server + engine counters\n"
        "  GET  /healthz      liveness probe\n";
}

int
run(const util::CommandLine &cl)
{
    server::Server::Config config;
    config.port = static_cast<std::uint16_t>(cl.getInt("port", 8377));
    config.engine.threads =
        static_cast<std::size_t>(cl.getInt("threads", 4));
    config.queueDepth =
        static_cast<std::size_t>(cl.getInt("queue-depth", 8));
    config.engine.cache.maxEntries =
        static_cast<std::size_t>(cl.getInt("cache-entries", 256));
    config.engine.cache.maxBytes =
        static_cast<std::size_t>(cl.getInt("cache-mb", 64)) * 1024 *
        1024;
    config.maxBodyBytes =
        static_cast<std::size_t>(cl.getInt("max-body-kb", 256)) * 1024;
    config.defaultTimeoutMillis = cl.getDouble("timeout-ms", 0.0);
    config.breaker.failureThreshold =
        static_cast<std::size_t>(cl.getInt("breaker-failures", 8));
    config.breaker.openMillis = cl.getDouble("breaker-open-ms", 2000.0);
    config.watchdog.defaultBudgetMillis =
        cl.getDouble("watchdog-budget-ms", 30000.0);
    config.watchdog.graceMillis = cl.getDouble("watchdog-grace-ms", 250.0);
    config.health.degradeRatio = cl.getDouble("degrade-ratio", 0.5);
    config.health.recoverRatio = config.health.degradeRatio / 4.0;
    config.serveStale = !cl.getBool("no-stale", false);
    // Connection workers must outnumber the admission queue or the
    // gate can never fill; keep a few extra for the cheap endpoints.
    config.connectionThreads = config.queueDepth + 8;

    // Env first, CLI second: --faults overrides HIERMEANS_FAULTS.
    fault::configureFromEnv();
    if (cl.has("faults"))
        fault::configure(cl.getString("faults", ""),
                         static_cast<std::uint64_t>(
                             cl.getInt("fault-seed", 0)));

    util::installShutdownSignals({SIGINT, SIGTERM});

    server::Server server(config);
    server.start();
    std::cout << "listening on port " << server.port() << std::endl;

    while (!util::shutdownRequested())
        util::waitForShutdown(500);

    std::cout << "shutdown requested, draining in-flight requests\n";
    server.stop();

    if (!cl.getBool("quiet", false))
        std::cout << "final metrics:\n" << server.renderMetrics();
    else
        std::cout << "final metrics: suppressed (--quiet)\n";
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    try {
        const auto cl = util::CommandLine::parse(argc, argv);
        if (cl.has("help")) {
            printUsage();
            return 0;
        }
        return run(cl);
    } catch (const hiermeans::Error &e) {
        std::cerr << "hmserved: " << e.what() << "\n";
        return 1;
    }
}
