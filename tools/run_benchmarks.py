#!/usr/bin/env python3
"""One-command perf benches: rebuild Release, pin CPUs, repeat-median.

Rebuilds the project into a dedicated Release build tree, pins every
benchmark process to a fixed CPU set (so background noise and frequency
migration don't smear the numbers), runs each bench several times, and
writes one ``BENCH_<name>.json`` file per bench with the median and the
raw runs — the perf trajectory files that future PRs diff against.

Benches:
  score_pipeline    hmscore end-to-end wall time on the example data
  batch_throughput  hmbatch documents/second over the example manifest
  serve_rps         hmserved + hmload requests/second and latency
  mesh_failover     2-node mesh under hmload with multi-target failover
  overload_shed     goodput at 1x/2x/4x capacity with deadlines
  wire_format       JSON vs negotiated-binary /v1/score (latency and
                    bytes per request, via hmload --wire)
  gen_families      per-family generated suites (hmgen): registration
                    round trip, hmload --suite score throughput and
                    drift-detection wall time

Before overwriting, the committed baselines in ``--out-dir`` are read
and a regression table is printed comparing each fresh median to its
baseline (sign-aware: ``direction`` names which way is better). With
``--max-regress=PCT`` any bench regressing by more than PCT percent
fails the run — the CI guard-rail; without it the table is a report.

Usage:
  tools/run_benchmarks.py [--repeats=5] [--duration-s=3]
                          [--build-dir=build-bench] [--skip-build]
                          [--out-dir=.] [--only=NAME[,NAME...]]
                          [--max-regress=PCT]

Standard library only; no third-party packages.
"""

import argparse
import json
import os
import shutil
import signal
import socket
import statistics
import subprocess
import sys
import tempfile
import time

ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
MANIFEST = os.path.join("examples", "data", "manifest.txt")
SCORES = os.path.join("examples", "data", "scores.csv")
FEATURES = os.path.join("examples", "data", "features.csv")


def log(message):
    print("run_benchmarks: %s" % message, flush=True)


def pinned_cpus():
    """The CPU set every bench process is pinned to: up to 4 of the
    CPUs this process may run on (all of them on small machines)."""
    try:
        available = sorted(os.sched_getaffinity(0))
    except AttributeError:  # non-Linux fallback: no pinning
        return None
    return available[: min(4, len(available))]


def run(cmd, cpus, **kwargs):
    """subprocess.run with CPU affinity applied to the child."""
    preexec = None
    if cpus is not None:
        def preexec():
            os.sched_setaffinity(0, cpus)
    return subprocess.run(cmd, preexec_fn=preexec, **kwargs)


def popen(cmd, cpus, **kwargs):
    preexec = None
    if cpus is not None:
        def preexec():
            os.sched_setaffinity(0, cpus)
    return subprocess.Popen(cmd, preexec_fn=preexec, **kwargs)


def git_revision():
    try:
        out = subprocess.run(
            ["git", "-C", ROOT, "rev-parse", "--short", "HEAD"],
            capture_output=True, text=True, check=True)
        return out.stdout.strip()
    except (subprocess.CalledProcessError, FileNotFoundError):
        return "unknown"


def build_release(build_dir, cpus):
    log("configuring Release build in %s" % build_dir)
    run(["cmake", "-B", build_dir, "-S", ROOT,
         "-DCMAKE_BUILD_TYPE=Release"],
        None, check=True, cwd=ROOT,
        stdout=subprocess.DEVNULL)
    jobs = str(len(cpus) if cpus else os.cpu_count() or 2)
    log("building (j%s)" % jobs)
    run(["cmake", "--build", build_dir, "-j", jobs, "--target",
         "hmscore", "hmbatch", "hmserved", "hmload", "hmctl", "hmgen"],
        None, check=True, cwd=ROOT, stdout=subprocess.DEVNULL)


def free_port():
    with socket.socket() as probe:
        probe.bind(("127.0.0.1", 0))
        return probe.getsockname()[1]


def wait_http_ok(tool, port, deadline_s=10.0):
    """Poll hmctl until the daemon on ``port`` answers healthy."""
    end = time.monotonic() + deadline_s
    while time.monotonic() < end:
        probe = subprocess.run(
            [tool, "--port=%d" % port, "--json-only"],
            capture_output=True, cwd=ROOT)
        if probe.returncode == 0:
            return
        time.sleep(0.1)
    raise RuntimeError("daemon on port %d never became healthy" % port)


def stop(proc):
    if proc.poll() is None:
        proc.send_signal(signal.SIGTERM)
        try:
            proc.wait(timeout=10)
        except subprocess.TimeoutExpired:
            proc.kill()
            proc.wait()


def bench_score_pipeline(tools, cpus, args):
    """hmscore wall seconds, full SOM + clustering pipeline."""
    runs = []
    cmd = [tools["hmscore"], "--scores=" + SCORES,
           "--features=" + FEATURES, "--machine-a=machineX",
           "--machine-b=machineY",
           "--som-steps=4000", "--seed=7", "--quiet"]
    for _ in range(args.repeats):
        started = time.monotonic()
        run(cmd, cpus, check=True, cwd=ROOT,
            stdout=subprocess.DEVNULL)
        runs.append(time.monotonic() - started)
    return {"unit": "seconds", "direction": "down", "runs": runs}


def bench_batch_throughput(tools, cpus, args):
    """hmbatch documents/second over the example manifest."""
    lines = 0
    with open(os.path.join(ROOT, MANIFEST)) as manifest:
        for text in manifest:
            text = text.strip()
            if text and not text.startswith("#"):
                lines += 1
    repeat = 10
    runs = []
    cmd = [tools["hmbatch"], "--manifest=" + MANIFEST,
           "--threads=%d" % (len(cpus) if cpus else 2),
           "--repeat=%d" % repeat]
    for _ in range(args.repeats):
        started = time.monotonic()
        run(cmd, cpus, check=True, cwd=ROOT,
            stdout=subprocess.DEVNULL)
        elapsed = time.monotonic() - started
        runs.append(lines * repeat / elapsed)
    return {"unit": "docs_per_second", "direction": "up", "runs": runs}


def load_report(tools, cpus, args, port=None, targets=None):
    """One hmload run; returns its parsed JSON report."""
    cmd = [tools["hmload"], "--manifest=" + MANIFEST,
           "--concurrency=2", "--duration-s=%d" % args.duration_s,
           "--timeout-ms=10000", "--json-only"]
    if targets is not None:
        cmd.append("--targets=" + targets)
    else:
        cmd.append("--port=%d" % port)
    out = run(cmd, cpus, check=True, cwd=ROOT, capture_output=True,
              text=True)
    return json.loads(out.stdout.splitlines()[-1])


def bench_serve_rps(tools, cpus, args):
    """Single hmserved node: requests/second plus latency tails."""
    runs, extras = [], []
    for _ in range(args.repeats):
        port = free_port()
        server = popen([tools["hmserved"], "--port=%d" % port,
                        "--threads=2", "--queue-depth=8"],
                       cpus, cwd=ROOT, stdout=subprocess.DEVNULL,
                       stderr=subprocess.DEVNULL)
        try:
            wait_http_ok(tools["hmctl"], port)
            report = load_report(tools, cpus, args, port=port)
        finally:
            stop(server)
        runs.append(report["rps"])
        extras.append({"p50_ms": report["p50_ms"],
                       "p95_ms": report["p95_ms"],
                       "p99_ms": report["p99_ms"]})
    return {"unit": "requests_per_second", "direction": "up",
            "runs": runs, "latency": extras}


def bench_mesh_failover(tools, cpus, args):
    """2-node mesh driven through hmload's multi-target failover."""
    runs, extras = [], []
    for _ in range(args.repeats):
        ports = [free_port(), free_port()]
        scratch = tempfile.mkdtemp(prefix="hiermeans_bench_mesh_")
        members = "".join("node %s 127.0.0.1:%d\n" % (node, port)
                          for node, port in zip("ab", ports))
        servers = []
        try:
            for node, port in zip("ab", ports):
                conf = os.path.join(scratch, "mesh_%s.conf" % node)
                data = os.path.join(scratch, "data_%s" % node)
                os.mkdir(data)
                with open(conf, "w") as out:
                    out.write("self = %s\nreplicas = 2\n%s"
                              % (node, members))
                servers.append(popen(
                    [tools["hmserved"], "--mesh-config=" + conf,
                     "--data-dir=" + data, "--threads=2",
                     "--queue-depth=8", "--mesh-tick-ms=100"],
                    cpus, cwd=ROOT, stdout=subprocess.DEVNULL,
                    stderr=subprocess.DEVNULL))
            for port in ports:
                wait_http_ok(tools["hmctl"], port)
            targets = ",".join("127.0.0.1:%d" % port
                               for port in ports)
            report = load_report(tools, cpus, args, targets=targets)
        finally:
            for server in servers:
                stop(server)
            shutil.rmtree(scratch, ignore_errors=True)
        runs.append(report["rps"])
        extras.append({"p95_ms": report["p95_ms"],
                       "failovers": report["failovers"]})
    return {"unit": "requests_per_second", "direction": "up",
            "runs": runs, "detail": extras}


def bench_overload_shed(tools, cpus, args):
    """Goodput under deadline-aware shedding at 1x/2x/4x capacity.

    One small hmserved (2 engine threads, queue depth 4) is driven by
    closed-loop hmload at concurrency equal to, twice and four times
    the admission capacity, every request carrying a 10 s end-to-end
    deadline. The reported number is goodput (2xx per second) at 4x:
    with deadline-aware shedding it should stay within ~10% of the 1x
    capacity instead of collapsing under queueing, and no admitted
    request should be answered past its deadline (deadline_misses).
    """
    depth = 4
    runs, detail = [], []
    for _ in range(args.repeats):
        port = free_port()
        server = popen([tools["hmserved"], "--port=%d" % port,
                        "--threads=2", "--queue-depth=%d" % depth,
                        "--timeout-ms=10000"],
                       cpus, cwd=ROOT, stdout=subprocess.DEVNULL,
                       stderr=subprocess.DEVNULL)
        levels = {}
        try:
            wait_http_ok(tools["hmctl"], port)
            for mult in (1, 2, 4):
                cmd = [tools["hmload"], "--manifest=" + MANIFEST,
                       "--port=%d" % port,
                       "--concurrency=%d" % (depth * mult),
                       "--duration-s=%d" % args.duration_s,
                       "--deadline-ms=10000", "--timeout-ms=12000",
                       "--json-only"]
                out = run(cmd, cpus, check=True, cwd=ROOT,
                          capture_output=True, text=True)
                report = json.loads(out.stdout.splitlines()[-1])
                goodput = (report["http_2xx"] / report["duration_s"]
                           if report["duration_s"] > 0 else 0.0)
                levels["%dx" % mult] = {
                    "goodput_rps": goodput,
                    "p99_ms": report["p99_ms"],
                    "p99_9_ms": report.get("p99_9_ms", 0.0),
                    "shed": report.get("shed", 0),
                    "server_expired": report.get("server_expired", 0),
                    "deadline_misses": report.get(
                        "deadline_misses", 0),
                }
        finally:
            stop(server)
        runs.append(levels["4x"]["goodput_rps"])
        detail.append(levels)
    return {"unit": "goodput_rps", "direction": "up", "runs": runs,
            "detail": detail}


def bench_wire_format(tools, cpus, args):
    """JSON vs negotiated-binary scoring through hmload --wire.

    One hmserved node is driven twice per repeat with identical load —
    once forcing JSON (``--wire=json``) and once leading with binary
    frames (``--wire=binary``, the client default). The reported
    number is the binary arm's requests/second; ``detail`` keeps both
    arms' latency percentiles and bytes moved per request, which is
    where the binary format's advantage is deterministic.
    """
    runs, detail = [], []
    for _ in range(args.repeats):
        port = free_port()
        server = popen([tools["hmserved"], "--port=%d" % port,
                        "--threads=2", "--queue-depth=8"],
                       cpus, cwd=ROOT, stdout=subprocess.DEVNULL,
                       stderr=subprocess.DEVNULL)
        arms = {}
        try:
            wait_http_ok(tools["hmctl"], port)
            for wire in ("json", "binary"):
                cmd = [tools["hmload"], "--manifest=" + MANIFEST,
                       "--port=%d" % port, "--concurrency=2",
                       "--duration-s=%d" % args.duration_s,
                       "--timeout-ms=10000", "--wire=" + wire,
                       "--json-only"]
                out = run(cmd, cpus, check=True, cwd=ROOT,
                          capture_output=True, text=True)
                report = json.loads(out.stdout.splitlines()[-1])
                arms[wire] = {
                    "rps": report["rps"],
                    "p50_ms": report["p50_ms"],
                    "p95_ms": report["p95_ms"],
                    "p99_ms": report["p99_ms"],
                    "bytes_per_request":
                        report.get("request_bytes_per_request", 0.0)
                        + report.get("response_bytes_per_request",
                                     0.0),
                }
        finally:
            stop(server)
        runs.append(arms["binary"]["rps"])
        detail.append(arms)
    return {"unit": "binary_rps", "direction": "up", "runs": runs,
            "detail": detail}


def bench_gen_families(tools, cpus, args):
    """Per-family generated-suite serving with hmgen.

    Every workload family gets its own hmserved node (durable store,
    16-observation drift window) serving a freshly generated suite.
    Three numbers per family: the versioned-registration round trip,
    hmload ``--suite`` score throughput, and the wall time for the
    family's shifted observation schedule to drive the drift monitor
    stale (stream + recluster + verdict). The reported number is the
    mean score throughput across families.
    """
    families = ("bigdata", "spec-int-historical",
                "correlated-cluster", "heavy-tail")
    runs, detail = [], []
    for _ in range(args.repeats):
        per_family = {}
        for family in families:
            port = free_port()
            scratch = tempfile.mkdtemp(prefix="hiermeans_bench_gen_")
            suite = "bench." + family.replace("-", "_")
            data = os.path.join(scratch, "data")
            os.mkdir(data)
            server = popen([tools["hmserved"], "--port=%d" % port,
                            "--threads=2", "--queue-depth=8",
                            "--data-dir=" + data,
                            "--drift-window=16",
                            "--drift-min-window=8"],
                           cpus, cwd=ROOT, stdout=subprocess.DEVNULL,
                           stderr=subprocess.DEVNULL)
            try:
                run([tools["hmgen"], "--family=" + family,
                     "--name=" + suite, "--out=" + scratch,
                     "--data-dir=" + scratch],
                    cpus, check=True, cwd=ROOT,
                    stdout=subprocess.DEVNULL,
                    stderr=subprocess.DEVNULL)
                wait_http_ok(tools["hmctl"], port)
                started = time.monotonic()
                run([tools["hmgen"], "--family=" + family,
                     "--name=" + suite, "--data-dir=" + scratch,
                     "--register", "--port=%d" % port,
                     "--suite-version=1"],
                    cpus, check=True, cwd=ROOT,
                    stdout=subprocess.DEVNULL,
                    stderr=subprocess.DEVNULL)
                register_ms = (time.monotonic() - started) * 1000.0
                out = run([tools["hmload"], "--port=%d" % port,
                           "--suite=" + suite, "--concurrency=2",
                           "--duration-s=%d" % args.duration_s,
                           "--timeout-ms=10000", "--json-only"],
                          cpus, check=True, cwd=ROOT,
                          capture_output=True, text=True)
                report = json.loads(out.stdout.splitlines()[-1])
                # Baseline the monitor on the stationary prefix, then
                # time the shifted suffix through to the stale verdict.
                run([tools["hmgen"], "--family=" + family,
                     "--name=" + suite, "--observe-stream",
                     "--shifted=0", "--port=%d" % port],
                    cpus, check=True, cwd=ROOT,
                    stdout=subprocess.DEVNULL,
                    stderr=subprocess.DEVNULL)
                run([tools["hmctl"], "--port=%d" % port,
                     "--recluster=" + suite, "--json-only"],
                    cpus, cwd=ROOT, stdout=subprocess.DEVNULL)
                started = time.monotonic()
                run([tools["hmgen"], "--family=" + family,
                     "--name=" + suite, "--observe-stream",
                     "--stationary=0", "--port=%d" % port],
                    cpus, check=True, cwd=ROOT,
                    stdout=subprocess.DEVNULL,
                    stderr=subprocess.DEVNULL)
                run([tools["hmctl"], "--port=%d" % port,
                     "--recluster=" + suite, "--json-only"],
                    cpus, cwd=ROOT, stdout=subprocess.DEVNULL)
                verdict = run([tools["hmctl"], "--port=%d" % port,
                               "--drift=" + suite, "--json-only"],
                              cpus, cwd=ROOT,
                              stdout=subprocess.DEVNULL)
                detect_ms = (time.monotonic() - started) * 1000.0
                per_family[family] = {
                    "register_ms": register_ms,
                    "score_rps": report["rps"],
                    "p95_ms": report["p95_ms"],
                    "detect_ms": detect_ms,
                    "stale": verdict.returncode == 2,
                }
            finally:
                stop(server)
                shutil.rmtree(scratch, ignore_errors=True)
        detail.append(per_family)
        runs.append(statistics.fmean(
            entry["score_rps"] for entry in per_family.values()))
    return {"unit": "mean_suite_rps", "direction": "up", "runs": runs,
            "detail": detail}


BENCHES = {
    "score_pipeline": bench_score_pipeline,
    "batch_throughput": bench_batch_throughput,
    "serve_rps": bench_serve_rps,
    "mesh_failover": bench_mesh_failover,
    "overload_shed": bench_overload_shed,
    "wire_format": bench_wire_format,
    "gen_families": bench_gen_families,
}


def load_baselines(out_dir, names):
    """The committed BENCH_*.json medians, before we overwrite them."""
    baselines = {}
    for name in names:
        path = os.path.join(out_dir, "BENCH_%s.json" % name)
        try:
            with open(path) as stream:
                doc = json.load(stream)
            baselines[name] = {"median": float(doc["median"]),
                               "unit": doc.get("unit", ""),
                               "direction": doc.get("direction", "up"),
                               "revision": doc.get("meta", {}).get(
                                   "git_revision", "?")}
        except (OSError, ValueError, KeyError, TypeError):
            continue  # no baseline yet: the bench reports as new.
    return baselines


def regression_percent(baseline, result):
    """Signed regression: positive = worse, in percent of baseline.

    ``direction`` "up" means bigger is better (throughput), "down"
    means smaller is better (wall time); the sign flip makes the
    table read the same way for both.
    """
    base = baseline["median"]
    if base == 0:
        return 0.0
    change = (result["median"] - base) / base * 100.0
    return -change if result["direction"] == "up" else change


def print_regression_table(baselines, results, max_regress):
    """The trajectory diff; returns the benches over the threshold."""
    rows = []
    regressed = []
    for name, result in sorted(results.items()):
        baseline = baselines.get(name)
        if baseline is None:
            rows.append((name, "-", "%.4f" % result["median"],
                         "-", "new baseline"))
            continue
        regress = regression_percent(baseline, result)
        if max_regress is not None and regress > max_regress:
            verdict = "REGRESSED"
            regressed.append(name)
        elif regress > 0:
            verdict = "worse"
        else:
            verdict = "better"
        rows.append((name, "%.4f" % baseline["median"],
                     "%.4f" % result["median"],
                     "%+.1f%%" % regress,
                     "%s vs %s" % (verdict, baseline["revision"])))
    header = ("bench", "baseline", "fresh", "regress", "verdict")
    widths = [max(len(str(row[i])) for row in rows + [header])
              for i in range(len(header))]
    for row in [header] + rows:
        print("  ".join(str(cell).ljust(width)
                        for cell, width in zip(row, widths)).rstrip())
    return regressed


def main():
    parser = argparse.ArgumentParser(
        description="rebuild Release, pin CPUs, repeat-median benches")
    parser.add_argument("--repeats", type=int, default=5,
                        help="runs per bench; the median is reported")
    parser.add_argument("--duration-s", type=int, default=3,
                        help="seconds per hmload measurement")
    parser.add_argument("--build-dir", default="build-bench",
                        help="Release build tree (default build-bench)")
    parser.add_argument("--skip-build", action="store_true",
                        help="reuse existing binaries in --build-dir")
    parser.add_argument("--out-dir", default=".",
                        help="where BENCH_*.json files land")
    parser.add_argument("--only",
                        help="comma-separated bench names to run")
    parser.add_argument("--max-regress", type=float, default=None,
                        metavar="PCT",
                        help="fail when any bench regresses more than "
                             "PCT percent vs its committed baseline")
    args = parser.parse_args()

    selected = list(BENCHES)
    if args.only:
        selected = [name.strip() for name in args.only.split(",")]
        unknown = [name for name in selected if name not in BENCHES]
        if unknown:
            parser.error("unknown benches: %s (have: %s)"
                         % (", ".join(unknown), ", ".join(BENCHES)))

    cpus = pinned_cpus()
    log("CPU pin set: %s" % (cpus if cpus else "unavailable"))

    build_dir = os.path.join(ROOT, args.build_dir)
    if not args.skip_build:
        build_release(build_dir, cpus)
    tools = {name: os.path.join(build_dir, "tools", name)
             for name in ("hmscore", "hmbatch", "hmserved", "hmload",
                          "hmctl", "hmgen")}
    for name, path in tools.items():
        if not os.path.exists(path):
            log("missing binary %s — run without --skip-build" % path)
            return 1

    meta = {
        "git_revision": git_revision(),
        "build_type": "Release",
        "cpu_affinity": cpus,
        "repeats": args.repeats,
        "recorded_at": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
    }
    os.makedirs(args.out_dir, exist_ok=True)
    baselines = load_baselines(args.out_dir, selected)
    failures = 0
    results = {}
    for name in selected:
        log("bench %s (%d runs)" % (name, args.repeats))
        try:
            result = BENCHES[name](tools, cpus, args)
        except Exception as error:  # keep the other benches running
            log("bench %s FAILED: %s" % (name, error))
            failures += 1
            continue
        result["name"] = name
        result["median"] = statistics.median(result["runs"])
        result["meta"] = meta
        results[name] = result
        out_path = os.path.join(args.out_dir,
                                "BENCH_%s.json" % name)
        with open(out_path, "w") as out:
            json.dump(result, out, indent=2, sort_keys=True)
            out.write("\n")
        log("  median %.4f %s -> %s"
            % (result["median"], result["unit"], out_path))
    if results:
        print()
        regressed = print_regression_table(baselines, results,
                                           args.max_regress)
        if regressed:
            log("regressions over %.1f%%: %s"
                % (args.max_regress, ", ".join(regressed)))
            return 1
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
