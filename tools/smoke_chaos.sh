#!/bin/sh
# Chaos smoke test, wired as a ctest (label `chaos`):
#   smoke_chaos.sh <chaos_harness> <hmserved> <hmload> <hmctl>
#
# 1. Runs the chaos harness under three fixed seeds, TWICE each, and
#    diffs the two JSON reports: same seed => bit-identical report
#    (the determinism contract of util/fault.h), verdict `pass`.
# 2. Starts a real hmserved with a fault schedule injected via
#    --faults, probes it with hmctl and hmload, and asserts a clean
#    SIGTERM drain — faults may fail requests, never the process.
#
# Invoked with no arguments, the script instead configures a dedicated
# ASan+UBSan build (-DHIERMEANS_SANITIZE=address,undefined) under
# build-chaos-asan/ and runs the same checks against those binaries;
# that is the CI-grade memory-safety pass over the fault paths.
set -eu

if [ $# -eq 0 ]; then
    echo "smoke_chaos: no binaries given; building ASan+UBSan variants"
    ROOT=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
    BUILD="$ROOT/build-chaos-asan"
    cmake -B "$BUILD" -S "$ROOT" \
        -DHIERMEANS_SANITIZE=address,undefined >/dev/null
    cmake --build "$BUILD" -j \
        --target chaos_harness hmserved hmload hmctl >/dev/null
    exec "$0" "$BUILD/tools/chaos_harness" "$BUILD/tools/hmserved" \
        "$BUILD/tools/hmload" "$BUILD/tools/hmctl"
fi

CHAOS=${1:?usage: smoke_chaos.sh <chaos_harness> <hmserved> <hmload> <hmctl>}
HMSERVED=${2:?usage: smoke_chaos.sh <chaos_harness> <hmserved> <hmload> <hmctl>}
HMLOAD=${3:?usage: smoke_chaos.sh <chaos_harness> <hmserved> <hmload> <hmctl>}
HMCTL=${4:?usage: smoke_chaos.sh <chaos_harness> <hmserved> <hmload> <hmctl>}
MANIFEST=examples/data/manifest.txt

LOG=$(mktemp)
RUN_A=$(mktemp)
RUN_B=$(mktemp)
SERVER_PID=
trap 'kill "$SERVER_PID" 2>/dev/null || true;
      rm -f "$LOG" "$RUN_A" "$RUN_B"' EXIT

# --- 1. fixed seeds, twice each: reproducible pass reports ----------
for SEED in 1 7 20260807; do
    echo "smoke_chaos: seed $SEED run 1"
    "$CHAOS" --seed="$SEED" --clients=3 --requests=10 --schedules=2 \
        --json-only >"$RUN_A"
    echo "smoke_chaos: seed $SEED run 2"
    "$CHAOS" --seed="$SEED" --clients=3 --requests=10 --schedules=2 \
        --json-only >"$RUN_B"
    if ! diff "$RUN_A" "$RUN_B" >/dev/null; then
        echo "smoke_chaos: seed $SEED reports differ between runs" >&2
        diff "$RUN_A" "$RUN_B" >&2 || true
        exit 1
    fi
    grep -q '"verdict":"pass"' "$RUN_A" || {
        echo "smoke_chaos: seed $SEED did not pass" >&2
        cat "$RUN_A" >&2
        exit 1
    }
    echo "smoke_chaos: seed $SEED reproducible and passing"
done

# --- 2. a real daemon under injected faults -------------------------
"$HMSERVED" --port=0 --threads=2 --queue-depth=4 \
    --faults='net.write.short=p:0.1,engine.cache.put=p:0.2' \
    --fault-seed=42 >"$LOG" 2>&1 &
SERVER_PID=$!

PORT=
i=0
while [ $i -lt 50 ]; do
    PORT=$(sed -n 's/^listening on port \([0-9]*\)$/\1/p' "$LOG")
    [ -n "$PORT" ] && break
    kill -0 "$SERVER_PID" 2>/dev/null || {
        echo "smoke_chaos: hmserved died during startup" >&2
        cat "$LOG" >&2
        exit 1
    }
    sleep 0.1
    i=$((i + 1))
done
[ -n "$PORT" ] || { echo "smoke_chaos: no port line" >&2; exit 1; }
echo "smoke_chaos: faulty hmserved pid $SERVER_PID on port $PORT"

"$HMCTL" --port="$PORT" --json-only
"$HMLOAD" --port="$PORT" --concurrency=2 --duration-s=2 \
    --manifest="$MANIFEST" --retries=3 --timeout-ms=10000 --json-only
"$HMCTL" --port="$PORT" --metrics --json-only >/dev/null

kill -TERM "$SERVER_PID"
STATUS=0
wait "$SERVER_PID" || STATUS=$?
SERVER_PID=
if [ "$STATUS" -ne 0 ]; then
    echo "smoke_chaos: hmserved exited $STATUS after SIGTERM" >&2
    cat "$LOG" >&2
    exit 1
fi
grep -q "final metrics" "$LOG" || {
    echo "smoke_chaos: no final metrics summary in log" >&2
    cat "$LOG" >&2
    exit 1
}
echo "smoke_chaos: clean drain under injected faults confirmed"
