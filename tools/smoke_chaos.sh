#!/bin/sh
# Chaos smoke test, wired as a ctest (label `chaos`):
#   smoke_chaos.sh <chaos_harness> <hmserved> <hmload> <hmctl>
#
# 1. Runs the chaos harness under three fixed seeds, TWICE each, and
#    diffs the two JSON reports: same seed => bit-identical report
#    (the determinism contract of util/fault.h), verdict `pass`.
# 2. Starts a real hmserved with a fault schedule injected via
#    --faults, probes it with hmctl and hmload, and asserts a clean
#    SIGTERM drain — faults may fail requests, never the process.
# 3. Starts hmserved with a durable store (--data-dir --fsync-every=1),
#    commits scores, SIGKILLs the daemon under live hmload traffic,
#    restarts it on the same data dir, and asserts recovery: every
#    committed score present in /v1/history exactly once (no loss, no
#    duplicates) and a previously-scored request answered from the
#    warm cache without re-executing the pipeline.
# 4. Brings up a 2-node mesh (replicas=2), registers a suite on each
#    shard, SIGKILLs one shard's leader while hmload drives both
#    targets, and asserts the survivor: client failover stays 200,
#    the dead shard's acknowledged score is served from the promoted
#    mirror exactly once and recomputes bit-identically, and writes
#    keep flowing.
# 5. SIGTERMs a durable hmserved while hmload is driving it and
#    asserts the graceful drain: exit 0 inside the drain deadline,
#    every acknowledged score recovered exactly once from the final
#    snapshot, nothing duplicated.
#
# Invoked with no arguments, the script instead configures a dedicated
# ASan+UBSan build (-DHIERMEANS_SANITIZE=address,undefined) under
# build-chaos-asan/ and runs the same checks against those binaries;
# that is the CI-grade memory-safety pass over the fault paths.
set -eu

if [ $# -eq 0 ]; then
    echo "smoke_chaos: no binaries given; building ASan+UBSan variants"
    ROOT=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
    BUILD="$ROOT/build-chaos-asan"
    cmake -B "$BUILD" -S "$ROOT" \
        -DHIERMEANS_SANITIZE=address,undefined >/dev/null
    cmake --build "$BUILD" -j \
        --target chaos_harness hmserved hmload hmctl >/dev/null
    exec "$0" "$BUILD/tools/chaos_harness" "$BUILD/tools/hmserved" \
        "$BUILD/tools/hmload" "$BUILD/tools/hmctl"
fi

CHAOS=${1:?usage: smoke_chaos.sh <chaos_harness> <hmserved> <hmload> <hmctl>}
HMSERVED=${2:?usage: smoke_chaos.sh <chaos_harness> <hmserved> <hmload> <hmctl>}
HMLOAD=${3:?usage: smoke_chaos.sh <chaos_harness> <hmserved> <hmload> <hmctl>}
HMCTL=${4:?usage: smoke_chaos.sh <chaos_harness> <hmserved> <hmload> <hmctl>}
MANIFEST=examples/data/manifest.txt

LOG=$(mktemp)
RUN_A=$(mktemp)
RUN_B=$(mktemp)
DATA=$(mktemp -d)
MESH_DIR=$(mktemp -d)
SERVER_PID=
MESH_PID_A=
MESH_PID_B=
DRAIN_DATA=
trap 'kill -9 "$SERVER_PID" "$MESH_PID_A" "$MESH_PID_B" 2>/dev/null || true;
      rm -f "$LOG" "$RUN_A" "$RUN_B";
      rm -rf "$DATA" "$MESH_DIR" "$DRAIN_DATA"' EXIT

# Scrape the flushed "listening on port N" line from $LOG (up to ~5s);
# sets $PORT or exits.
wait_port() {
    PORT=
    i=0
    while [ $i -lt 50 ]; do
        PORT=$(sed -n 's/^listening on port \([0-9]*\)$/\1/p' "$LOG")
        [ -n "$PORT" ] && break
        kill -0 "$SERVER_PID" 2>/dev/null || {
            echo "smoke_chaos: hmserved died during startup" >&2
            cat "$LOG" >&2
            exit 1
        }
        sleep 0.1
        i=$((i + 1))
    done
    [ -n "$PORT" ] || { echo "smoke_chaos: no port line" >&2; exit 1; }
}

# --- 1. fixed seeds, twice each: reproducible pass reports ----------
for SEED in 1 7 20260807; do
    echo "smoke_chaos: seed $SEED run 1"
    "$CHAOS" --seed="$SEED" --clients=3 --requests=10 --schedules=2 \
        --json-only >"$RUN_A"
    echo "smoke_chaos: seed $SEED run 2"
    "$CHAOS" --seed="$SEED" --clients=3 --requests=10 --schedules=2 \
        --json-only >"$RUN_B"
    if ! diff "$RUN_A" "$RUN_B" >/dev/null; then
        echo "smoke_chaos: seed $SEED reports differ between runs" >&2
        diff "$RUN_A" "$RUN_B" >&2 || true
        exit 1
    fi
    grep -q '"verdict":"pass"' "$RUN_A" || {
        echo "smoke_chaos: seed $SEED did not pass" >&2
        cat "$RUN_A" >&2
        exit 1
    }
    echo "smoke_chaos: seed $SEED reproducible and passing"
done

# --- 2. a real daemon under injected faults -------------------------
"$HMSERVED" --port=0 --threads=2 --queue-depth=4 \
    --faults='net.write.short=p:0.1,engine.cache.put=p:0.2' \
    --fault-seed=42 >"$LOG" 2>&1 &
SERVER_PID=$!
wait_port
echo "smoke_chaos: faulty hmserved pid $SERVER_PID on port $PORT"

"$HMCTL" --port="$PORT" --json-only
"$HMLOAD" --port="$PORT" --concurrency=2 --duration-s=2 \
    --manifest="$MANIFEST" --retries=3 --timeout-ms=10000 --json-only
"$HMCTL" --port="$PORT" --metrics --json-only >/dev/null

kill -TERM "$SERVER_PID"
STATUS=0
wait "$SERVER_PID" || STATUS=$?
SERVER_PID=
if [ "$STATUS" -ne 0 ]; then
    echo "smoke_chaos: hmserved exited $STATUS after SIGTERM" >&2
    cat "$LOG" >&2
    exit 1
fi
grep -q "final metrics" "$LOG" || {
    echo "smoke_chaos: no final metrics summary in log" >&2
    cat "$LOG" >&2
    exit 1
}
echo "smoke_chaos: clean drain under injected faults confirmed"

# --- 3. SIGKILL under load, then recover from the durable store -----
: >"$LOG"
"$HMSERVED" --port=0 --threads=2 --queue-depth=4 \
    --data-dir="$DATA" --fsync-every=1 >"$LOG" 2>&1 &
SERVER_PID=$!
wait_port
echo "smoke_chaos: durable hmserved pid $SERVER_PID on port $PORT"

# Commit five distinct scores; --fsync-every=1 means each one is
# durable on disk before its 200 comes back.
LINE=$(grep -v '^#' "$MANIFEST" | grep -v '^[[:space:]]*$' | head -1)
i=1
while [ $i -le 5 ]; do
    "$HMCTL" --port="$PORT" \
        --score="$LINE seed=$((7700 + i)) id=kill-$i" --json-only
    i=$((i + 1))
done

# Kill -9 mid-traffic: the load generator may lose in-flight requests
# (hence || true), but nothing already answered may be lost.
"$HMLOAD" --port="$PORT" --concurrency=2 --duration-s=5 \
    --manifest="$MANIFEST" --json-only >/dev/null 2>&1 &
LOAD_PID=$!
sleep 1
kill -9 "$SERVER_PID"
wait "$SERVER_PID" 2>/dev/null || true
wait "$LOAD_PID" 2>/dev/null || true
echo "smoke_chaos: SIGKILL delivered under load"

: >"$LOG"
"$HMSERVED" --port=0 --threads=2 --queue-depth=4 \
    --data-dir="$DATA" --fsync-every=1 >"$LOG" 2>&1 &
SERVER_PID=$!
wait_port
grep -q "store recovered: outcome=" "$LOG" || {
    echo "smoke_chaos: no store recovery line after restart" >&2
    cat "$LOG" >&2
    exit 1
}
echo "smoke_chaos: restarted on port $PORT," \
    "$(sed -n 's/^store recovered: \(.*\)$/\1/p' "$LOG")"

# Every committed score is in the recovered history exactly once.
HISTORY=$("$HMCTL" --port="$PORT" --history)
i=1
while [ $i -le 5 ]; do
    COUNT=$(echo "$HISTORY" | grep -c "kill-$i[^0-9]" || true)
    if [ "$COUNT" -ne 1 ]; then
        echo "smoke_chaos: score kill-$i appears $COUNT times" \
            "in recovered history (want exactly 1)" >&2
        echo "$HISTORY" >&2
        exit 1
    fi
    i=$((i + 1))
done
echo "smoke_chaos: all 5 committed scores recovered exactly once"

# A previously-scored request must come back from the warm cache.
BODY=$("$HMCTL" --port="$PORT" --score="$LINE seed=7701 id=kill-1")
echo "$BODY" | grep -q '"served_by":"cache"' || {
    echo "smoke_chaos: recovered score not served from warm cache:" >&2
    echo "$BODY" >&2
    exit 1
}
# The one-hot outcome gauge must show a recovery that lost nothing
# committed: clean, or truncated_tail (a torn not-yet-acknowledged
# final frame is the one thing SIGKILL is allowed to leave behind).
"$HMCTL" --port="$PORT" --metrics | grep -Eq \
    '^hiermeans_store_recovery_outcome\{state="(clean|truncated_tail)"\} 1$' || {
    echo "smoke_chaos: recovery outcome gauge reports a lossy start" >&2
    "$HMCTL" --port="$PORT" --metrics | grep recovery_outcome >&2 || true
    exit 1
}
echo "smoke_chaos: warm cache answered a pre-kill request"

kill -TERM "$SERVER_PID"
STATUS=0
wait "$SERVER_PID" || STATUS=$?
SERVER_PID=
[ "$STATUS" -eq 0 ] || {
    echo "smoke_chaos: recovered hmserved exited $STATUS" >&2
    cat "$LOG" >&2
    exit 1
}
echo "smoke_chaos: kill-and-recover invariants confirmed"

# --- 4. two-shard mesh: SIGKILL a shard leader under load -----------
# Two nodes, replicas=2: each mirrors the other's store. `shard-alpha`
# hashes to node a and `shard-beta` to node b on the (deterministic)
# id ring, so killing node a is a leader kill for shard-alpha — the
# surviving node must answer with every acknowledged score exactly
# once, bit-identical, and keep taking writes.
PORT_A=$((21000 + $$ % 10000))
PORT_B=$((PORT_A + 1))
for NODE in a b; do
    {
        echo "self = $NODE"
        echo "replicas = 2"
        echo "node a 127.0.0.1:$PORT_A"
        echo "node b 127.0.0.1:$PORT_B"
    } >"$MESH_DIR/mesh_$NODE.conf"
    mkdir -p "$MESH_DIR/data_$NODE"
done
"$HMSERVED" --mesh-config="$MESH_DIR/mesh_a.conf" \
    --data-dir="$MESH_DIR/data_a" --fsync-every=1 --threads=2 \
    --queue-depth=4 --mesh-tick-ms=100 >"$MESH_DIR/a.log" 2>&1 &
MESH_PID_A=$!
"$HMSERVED" --mesh-config="$MESH_DIR/mesh_b.conf" \
    --data-dir="$MESH_DIR/data_b" --fsync-every=1 --threads=2 \
    --queue-depth=4 --mesh-tick-ms=100 >"$MESH_DIR/b.log" 2>&1 &
MESH_PID_B=$!

# Both nodes up and each seeing the other healthy (--cluster exits 2
# while any peer is still marked down).
i=0
while [ $i -lt 50 ]; do
    if "$HMCTL" --port="$PORT_A" --cluster --json-only \
            >/dev/null 2>&1 &&
        "$HMCTL" --port="$PORT_B" --cluster --json-only \
            >/dev/null 2>&1; then
        break
    fi
    sleep 0.2
    i=$((i + 1))
done
[ $i -lt 50 ] || {
    echo "smoke_chaos: mesh never converged" >&2
    cat "$MESH_DIR/a.log" "$MESH_DIR/b.log" >&2
    exit 1
}
echo "smoke_chaos: 2-node mesh up on ports $PORT_A/$PORT_B"

# Register both suites through node b: shard-alpha is misrouted and
# must be forwarded to its owner a.
"$HMCTL" --port="$PORT_B" --register=shard-alpha \
    --manifest="$MANIFEST" --json-only
"$HMCTL" --port="$PORT_B" --register=shard-beta \
    --manifest="$MANIFEST" --json-only
PRE_ALPHA=$("$HMCTL" --port="$PORT_B" \
    --score="suite=shard-alpha line=1 seed=9901 id=pre-alpha")
"$HMCTL" --port="$PORT_B" \
    --score="suite=shard-beta line=1 seed=9902 id=pre-beta" \
    --json-only
ALPHA_RATIO=$(echo "$PRE_ALPHA" | grep -o '"ratio":[0-9.eE+-]*' |
    head -1)
[ -n "$ALPHA_RATIO" ] || {
    echo "smoke_chaos: no ratio in pre-kill score:" >&2
    echo "$PRE_ALPHA" >&2
    exit 1
}
# Let the follower ack the shipped WAL tail before the kill.
sleep 1

# SIGKILL the shard-alpha leader while hmload drives both targets;
# the client must fail over to the survivor and keep getting 200s.
"$HMLOAD" --targets="127.0.0.1:$PORT_A,127.0.0.1:$PORT_B" \
    --concurrency=2 --duration-s=4 --manifest="$MANIFEST" \
    --retries=3 --timeout-ms=10000 --json-only >"$RUN_A" 2>&1 &
LOAD_PID=$!
sleep 1
kill -9 "$MESH_PID_A"
wait "$MESH_PID_A" 2>/dev/null || true
MESH_PID_A=
STATUS=0
wait "$LOAD_PID" || STATUS=$?
if [ "$STATUS" -ne 0 ]; then
    echo "smoke_chaos: hmload failed over the dead leader ($STATUS)" >&2
    cat "$RUN_A" >&2
    exit 1
fi
# First http_2xx in the report is the top-level aggregate (the
# per-target breakdown comes later in the same line).
TWOXX=$(grep -o '"http_2xx":[0-9]*' "$RUN_A" | head -1 | cut -d: -f2)
[ -n "$TWOXX" ] && [ "$TWOXX" -gt 0 ] || {
    echo "smoke_chaos: hmload saw no successes during failover" >&2
    cat "$RUN_A" >&2
    exit 1
}
echo "smoke_chaos: leader SIGKILLed, hmload failover clean"

# The survivor serves shard-alpha from its promoted mirror: the
# acknowledged score exactly once, and a recompute of the same line
# must reproduce the identical ratio.
ALPHA_HISTORY=$("$HMCTL" --port="$PORT_B" --history=shard-alpha)
COUNT=$(echo "$ALPHA_HISTORY" | grep -c "pre-alpha" || true)
[ "$COUNT" -eq 1 ] || {
    echo "smoke_chaos: pre-alpha appears $COUNT times after" \
        "promotion (want exactly 1)" >&2
    echo "$ALPHA_HISTORY" >&2
    exit 1
}
POST_ALPHA=$("$HMCTL" --port="$PORT_B" \
    --score="suite=shard-alpha line=1 seed=9901 id=post-alpha")
echo "$POST_ALPHA" | grep -qF "$ALPHA_RATIO" || {
    echo "smoke_chaos: post-promotion score diverged from the" \
        "acknowledged $ALPHA_RATIO:" >&2
    echo "$POST_ALPHA" >&2
    exit 1
}
"$HMCTL" --port="$PORT_B" --history=shard-beta | grep -q "pre-beta" || {
    echo "smoke_chaos: shard-beta history lost its score" >&2
    exit 1
}
kill -TERM "$MESH_PID_B"
STATUS=0
wait "$MESH_PID_B" || STATUS=$?
MESH_PID_B=
[ "$STATUS" -eq 0 ] || {
    echo "smoke_chaos: surviving mesh node exited $STATUS" >&2
    cat "$MESH_DIR/b.log" >&2
    exit 1
}
echo "smoke_chaos: shard leader kill lost nothing, duplicated nothing"

# --- 5. SIGTERM graceful drain under live load ----------------------
# A drain must lose zero admitted requests: every score the daemon
# acknowledged with a 200 before (or during) the drain is in the
# recovered history exactly once, the process exits 0 inside its
# drain deadline, and the final snapshot it flushed recovers clean.
: >"$LOG"
DRAIN_DATA=$(mktemp -d)
"$HMSERVED" --port=0 --threads=2 --queue-depth=4 \
    --data-dir="$DRAIN_DATA" --fsync-every=1 --drain-deadline=10s \
    >"$LOG" 2>&1 &
SERVER_PID=$!
wait_port
echo "smoke_chaos: drain-stage hmserved pid $SERVER_PID on port $PORT"

# Live background traffic for the drain to contend with.
"$HMLOAD" --port="$PORT" --concurrency=2 --duration-s=6 \
    --manifest="$MANIFEST" --deadline-ms=8000 --json-only \
    >"$RUN_A" 2>&1 &
LOAD_PID=$!
sleep 1

# Acknowledged writes that must survive the drain.
i=1
while [ $i -le 5 ]; do
    "$HMCTL" --port="$PORT" \
        --score="$LINE seed=$((8800 + i)) id=drain-$i" --json-only
    i=$((i + 1))
done

kill -TERM "$SERVER_PID"
DRAIN_START=$(date +%s)
STATUS=0
wait "$SERVER_PID" || STATUS=$?
DRAIN_SECS=$(($(date +%s) - DRAIN_START))
SERVER_PID=
wait "$LOAD_PID" 2>/dev/null || true
if [ "$STATUS" -ne 0 ]; then
    echo "smoke_chaos: drain exited $STATUS (want 0)" >&2
    cat "$LOG" >&2
    exit 1
fi
if [ "$DRAIN_SECS" -gt 15 ]; then
    echo "smoke_chaos: drain took ${DRAIN_SECS}s, past its deadline" >&2
    exit 1
fi
grep -q "draining in-flight requests" "$LOG" || {
    echo "smoke_chaos: no drain-start line in log" >&2
    cat "$LOG" >&2
    exit 1
}
grep -q "final metrics" "$LOG" || {
    echo "smoke_chaos: no final metrics after drain" >&2
    cat "$LOG" >&2
    exit 1
}
grep -Eq "health state +draining" "$LOG" || {
    echo "smoke_chaos: final metrics never flipped to draining" >&2
    cat "$LOG" >&2
    exit 1
}
echo "smoke_chaos: SIGTERM drain under load exited 0 in ${DRAIN_SECS}s"

# Restart on the drained store: the final snapshot must recover with
# nothing lost and nothing duplicated.
: >"$LOG"
"$HMSERVED" --port=0 --threads=2 --queue-depth=4 \
    --data-dir="$DRAIN_DATA" --fsync-every=1 >"$LOG" 2>&1 &
SERVER_PID=$!
wait_port
grep -Eq "store recovered: outcome=(clean|truncated_tail)" "$LOG" || {
    echo "smoke_chaos: drained store did not recover clean" >&2
    cat "$LOG" >&2
    exit 1
}
HISTORY=$("$HMCTL" --port="$PORT" --history)
i=1
while [ $i -le 5 ]; do
    COUNT=$(echo "$HISTORY" | grep -c "drain-$i[^0-9]" || true)
    if [ "$COUNT" -ne 1 ]; then
        echo "smoke_chaos: admitted score drain-$i appears $COUNT" \
            "times after the drain (want exactly 1)" >&2
        echo "$HISTORY" >&2
        exit 1
    fi
    i=$((i + 1))
done
kill -TERM "$SERVER_PID"
wait "$SERVER_PID" 2>/dev/null || true
SERVER_PID=
rm -rf "$DRAIN_DATA"
echo "smoke_chaos: graceful drain lost nothing, duplicated nothing"
