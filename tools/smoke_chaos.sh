#!/bin/sh
# Chaos smoke test, wired as a ctest (label `chaos`):
#   smoke_chaos.sh <chaos_harness> <hmserved> <hmload> <hmctl>
#
# 1. Runs the chaos harness under three fixed seeds, TWICE each, and
#    diffs the two JSON reports: same seed => bit-identical report
#    (the determinism contract of util/fault.h), verdict `pass`.
# 2. Starts a real hmserved with a fault schedule injected via
#    --faults, probes it with hmctl and hmload, and asserts a clean
#    SIGTERM drain — faults may fail requests, never the process.
# 3. Starts hmserved with a durable store (--data-dir --fsync-every=1),
#    commits scores, SIGKILLs the daemon under live hmload traffic,
#    restarts it on the same data dir, and asserts recovery: every
#    committed score present in /v1/history exactly once (no loss, no
#    duplicates) and a previously-scored request answered from the
#    warm cache without re-executing the pipeline.
#
# Invoked with no arguments, the script instead configures a dedicated
# ASan+UBSan build (-DHIERMEANS_SANITIZE=address,undefined) under
# build-chaos-asan/ and runs the same checks against those binaries;
# that is the CI-grade memory-safety pass over the fault paths.
set -eu

if [ $# -eq 0 ]; then
    echo "smoke_chaos: no binaries given; building ASan+UBSan variants"
    ROOT=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
    BUILD="$ROOT/build-chaos-asan"
    cmake -B "$BUILD" -S "$ROOT" \
        -DHIERMEANS_SANITIZE=address,undefined >/dev/null
    cmake --build "$BUILD" -j \
        --target chaos_harness hmserved hmload hmctl >/dev/null
    exec "$0" "$BUILD/tools/chaos_harness" "$BUILD/tools/hmserved" \
        "$BUILD/tools/hmload" "$BUILD/tools/hmctl"
fi

CHAOS=${1:?usage: smoke_chaos.sh <chaos_harness> <hmserved> <hmload> <hmctl>}
HMSERVED=${2:?usage: smoke_chaos.sh <chaos_harness> <hmserved> <hmload> <hmctl>}
HMLOAD=${3:?usage: smoke_chaos.sh <chaos_harness> <hmserved> <hmload> <hmctl>}
HMCTL=${4:?usage: smoke_chaos.sh <chaos_harness> <hmserved> <hmload> <hmctl>}
MANIFEST=examples/data/manifest.txt

LOG=$(mktemp)
RUN_A=$(mktemp)
RUN_B=$(mktemp)
DATA=$(mktemp -d)
SERVER_PID=
trap 'kill -9 "$SERVER_PID" 2>/dev/null || true;
      rm -f "$LOG" "$RUN_A" "$RUN_B"; rm -rf "$DATA"' EXIT

# Scrape the flushed "listening on port N" line from $LOG (up to ~5s);
# sets $PORT or exits.
wait_port() {
    PORT=
    i=0
    while [ $i -lt 50 ]; do
        PORT=$(sed -n 's/^listening on port \([0-9]*\)$/\1/p' "$LOG")
        [ -n "$PORT" ] && break
        kill -0 "$SERVER_PID" 2>/dev/null || {
            echo "smoke_chaos: hmserved died during startup" >&2
            cat "$LOG" >&2
            exit 1
        }
        sleep 0.1
        i=$((i + 1))
    done
    [ -n "$PORT" ] || { echo "smoke_chaos: no port line" >&2; exit 1; }
}

# --- 1. fixed seeds, twice each: reproducible pass reports ----------
for SEED in 1 7 20260807; do
    echo "smoke_chaos: seed $SEED run 1"
    "$CHAOS" --seed="$SEED" --clients=3 --requests=10 --schedules=2 \
        --json-only >"$RUN_A"
    echo "smoke_chaos: seed $SEED run 2"
    "$CHAOS" --seed="$SEED" --clients=3 --requests=10 --schedules=2 \
        --json-only >"$RUN_B"
    if ! diff "$RUN_A" "$RUN_B" >/dev/null; then
        echo "smoke_chaos: seed $SEED reports differ between runs" >&2
        diff "$RUN_A" "$RUN_B" >&2 || true
        exit 1
    fi
    grep -q '"verdict":"pass"' "$RUN_A" || {
        echo "smoke_chaos: seed $SEED did not pass" >&2
        cat "$RUN_A" >&2
        exit 1
    }
    echo "smoke_chaos: seed $SEED reproducible and passing"
done

# --- 2. a real daemon under injected faults -------------------------
"$HMSERVED" --port=0 --threads=2 --queue-depth=4 \
    --faults='net.write.short=p:0.1,engine.cache.put=p:0.2' \
    --fault-seed=42 >"$LOG" 2>&1 &
SERVER_PID=$!
wait_port
echo "smoke_chaos: faulty hmserved pid $SERVER_PID on port $PORT"

"$HMCTL" --port="$PORT" --json-only
"$HMLOAD" --port="$PORT" --concurrency=2 --duration-s=2 \
    --manifest="$MANIFEST" --retries=3 --timeout-ms=10000 --json-only
"$HMCTL" --port="$PORT" --metrics --json-only >/dev/null

kill -TERM "$SERVER_PID"
STATUS=0
wait "$SERVER_PID" || STATUS=$?
SERVER_PID=
if [ "$STATUS" -ne 0 ]; then
    echo "smoke_chaos: hmserved exited $STATUS after SIGTERM" >&2
    cat "$LOG" >&2
    exit 1
fi
grep -q "final metrics" "$LOG" || {
    echo "smoke_chaos: no final metrics summary in log" >&2
    cat "$LOG" >&2
    exit 1
}
echo "smoke_chaos: clean drain under injected faults confirmed"

# --- 3. SIGKILL under load, then recover from the durable store -----
: >"$LOG"
"$HMSERVED" --port=0 --threads=2 --queue-depth=4 \
    --data-dir="$DATA" --fsync-every=1 >"$LOG" 2>&1 &
SERVER_PID=$!
wait_port
echo "smoke_chaos: durable hmserved pid $SERVER_PID on port $PORT"

# Commit five distinct scores; --fsync-every=1 means each one is
# durable on disk before its 200 comes back.
LINE=$(grep -v '^#' "$MANIFEST" | grep -v '^[[:space:]]*$' | head -1)
i=1
while [ $i -le 5 ]; do
    "$HMCTL" --port="$PORT" \
        --score="$LINE seed=$((7700 + i)) id=kill-$i" --json-only
    i=$((i + 1))
done

# Kill -9 mid-traffic: the load generator may lose in-flight requests
# (hence || true), but nothing already answered may be lost.
"$HMLOAD" --port="$PORT" --concurrency=2 --duration-s=5 \
    --manifest="$MANIFEST" --json-only >/dev/null 2>&1 &
LOAD_PID=$!
sleep 1
kill -9 "$SERVER_PID"
wait "$SERVER_PID" 2>/dev/null || true
wait "$LOAD_PID" 2>/dev/null || true
echo "smoke_chaos: SIGKILL delivered under load"

: >"$LOG"
"$HMSERVED" --port=0 --threads=2 --queue-depth=4 \
    --data-dir="$DATA" --fsync-every=1 >"$LOG" 2>&1 &
SERVER_PID=$!
wait_port
grep -q "store recovered: outcome=" "$LOG" || {
    echo "smoke_chaos: no store recovery line after restart" >&2
    cat "$LOG" >&2
    exit 1
}
echo "smoke_chaos: restarted on port $PORT," \
    "$(sed -n 's/^store recovered: \(.*\)$/\1/p' "$LOG")"

# Every committed score is in the recovered history exactly once.
HISTORY=$("$HMCTL" --port="$PORT" --history)
i=1
while [ $i -le 5 ]; do
    COUNT=$(echo "$HISTORY" | grep -c "kill-$i[^0-9]" || true)
    if [ "$COUNT" -ne 1 ]; then
        echo "smoke_chaos: score kill-$i appears $COUNT times" \
            "in recovered history (want exactly 1)" >&2
        echo "$HISTORY" >&2
        exit 1
    fi
    i=$((i + 1))
done
echo "smoke_chaos: all 5 committed scores recovered exactly once"

# A previously-scored request must come back from the warm cache.
BODY=$("$HMCTL" --port="$PORT" --score="$LINE seed=7701 id=kill-1")
echo "$BODY" | grep -q '"served_by":"cache"' || {
    echo "smoke_chaos: recovered score not served from warm cache:" >&2
    echo "$BODY" >&2
    exit 1
}
# The one-hot outcome gauge must show a recovery that lost nothing
# committed: clean, or truncated_tail (a torn not-yet-acknowledged
# final frame is the one thing SIGKILL is allowed to leave behind).
"$HMCTL" --port="$PORT" --metrics | grep -Eq \
    '^hiermeans_store_recovery_outcome\{state="(clean|truncated_tail)"\} 1$' || {
    echo "smoke_chaos: recovery outcome gauge reports a lossy start" >&2
    "$HMCTL" --port="$PORT" --metrics | grep recovery_outcome >&2 || true
    exit 1
}
echo "smoke_chaos: warm cache answered a pre-kill request"

kill -TERM "$SERVER_PID"
STATUS=0
wait "$SERVER_PID" || STATUS=$?
SERVER_PID=
[ "$STATUS" -eq 0 ] || {
    echo "smoke_chaos: recovered hmserved exited $STATUS" >&2
    cat "$LOG" >&2
    exit 1
}
echo "smoke_chaos: kill-and-recover invariants confirmed"
