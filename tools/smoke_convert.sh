#!/bin/sh
# hmconvert round-trip smoke, wired as a ctest (label `wire`):
#   smoke_convert.sh <hmconvert> <manifest.txt>
#
# 1. manifest text -> BatchManifest frame -> text must be
#    bit-identical (the codec's round-trip contract, exercised
#    through the CLI and its auto-detection).
# 2. A single manifest line -> ScoreRequest frame -> line likewise.
# 3. An observe-intake JSON body -> ObserveIntake frame -> JSON
#    reproduces the canonical rendering on a second lap (the first
#    lap normalizes field order/number formatting; after that the
#    form is a fixed point).
# 4. The binary artifacts really are framed: they start with the
#    "HMW1" magic and a truncated frame is rejected with exit 1.
set -eu

HMCONVERT=$1
MANIFEST=$2

WORK=$(mktemp -d "${TMPDIR:-/tmp}/hmconvert_smoke.XXXXXX")
trap 'rm -rf "$WORK"' EXIT INT TERM

fail() {
    echo "smoke_convert: FAIL: $1" >&2
    exit 1
}

# --- 1. manifest round-trip -----------------------------------------
"$HMCONVERT" --kind=manifest --in="$MANIFEST" \
    --out="$WORK/manifest.bin"
"$HMCONVERT" --in="$WORK/manifest.bin" --out="$WORK/manifest.txt"
cmp -s "$MANIFEST" "$WORK/manifest.txt" ||
    fail "manifest round-trip is not bit-identical"

# --- 2. score-line round-trip ---------------------------------------
head -n 1 "$MANIFEST" > "$WORK/line.txt"
"$HMCONVERT" --kind=score --in="$WORK/line.txt" --out="$WORK/line.bin"
"$HMCONVERT" --in="$WORK/line.bin" --out="$WORK/line.rt"
cmp -s "$WORK/line.txt" "$WORK/line.rt" ||
    fail "score-line round-trip is not bit-identical"

# --- 3. observe fixed point -----------------------------------------
printf '{"ratio":1.25,"plain_ratio":1.5,"id":"smoke"}\n' \
    > "$WORK/observe.json"
"$HMCONVERT" --kind=observe --in="$WORK/observe.json" \
    --out="$WORK/observe.bin"
"$HMCONVERT" --in="$WORK/observe.bin" --out="$WORK/observe1.json"
"$HMCONVERT" --kind=observe --in="$WORK/observe1.json" \
    --out="$WORK/observe2.bin"
"$HMCONVERT" --in="$WORK/observe2.bin" --out="$WORK/observe2.json"
cmp -s "$WORK/observe1.json" "$WORK/observe2.json" ||
    fail "observe rendering is not a fixed point"

# --- 4. framing sanity ----------------------------------------------
MAGIC=$(head -c 4 "$WORK/manifest.bin")
[ "$MAGIC" = "HMW1" ] || fail "binary output lacks the HMW1 magic"
head -c 10 "$WORK/manifest.bin" > "$WORK/torn.bin"
if "$HMCONVERT" --in="$WORK/torn.bin" --out="$WORK/torn.out" \
    2> /dev/null; then
    fail "truncated frame was accepted"
fi

echo "smoke_convert: PASS"
