#!/bin/sh
# Loopback smoke test for the synthetic-suite generator, wired as a
# ctest:
#   smoke_gen.sh <hmgen> <hmconvert> <hmserved> <hmload> <hmctl>
#
# Determinism first: every family renders its artifact set twice and
# the two runs must be byte-identical, and the HMW1 manifest frame
# must decode (through hmconvert) back to the exact manifest text.
# Then the serving round trip: hmserved comes up with a durable
# store, hmgen registers a generated suite (version-pinned replay is
# idempotent; a conflicting payload is refused 409), hmload drives
# the suite by `suite=NAME line=K` reference, `hmctl --check` lints
# the exposition including the per-family registration counters, and
# the generated observation schedule walks the drift monitor from
# `fresh` to `stale` at its known shift.
set -eu

HMGEN=${1:?usage: smoke_gen.sh <hmgen> <hmconvert> <hmserved> <hmload> <hmctl>}
HMCONVERT=${2:?usage: smoke_gen.sh <hmgen> <hmconvert> <hmserved> <hmload> <hmctl>}
HMSERVED=${3:?usage: smoke_gen.sh <hmgen> <hmconvert> <hmserved> <hmload> <hmctl>}
HMLOAD=${4:?usage: smoke_gen.sh <hmgen> <hmconvert> <hmserved> <hmload> <hmctl>}
HMCTL=${5:?usage: smoke_gen.sh <hmgen> <hmconvert> <hmserved> <hmload> <hmctl>}

LOG=$(mktemp)
DATA=$(mktemp -d)
GEN=$(mktemp -d)
trap 'kill "$SERVER_PID" 2>/dev/null || true;
      rm -f "$LOG"; rm -rf "$DATA" "$GEN"' EXIT
SERVER_PID=

# --list must name the four families.
FAMILIES=$("$HMGEN" --list)
for family in bigdata spec-int-historical correlated-cluster heavy-tail; do
    echo "$FAMILIES" | grep -qx "$family" || {
        echo "smoke_gen: --list misses family $family" >&2
        exit 1
    }
done

# Same seed -> bit-identical artifacts, for every family; and the
# binary manifest must decode back to the text manifest exactly.
for family in $FAMILIES; do
    "$HMGEN" --family="$family" --out="$GEN/a" --data-dir=data 2>/dev/null
    "$HMGEN" --family="$family" --out="$GEN/b" --data-dir=data 2>/dev/null
    for artifact in scores.csv features.csv truth.csv manifest.txt \
        manifest.json manifest.hmw1; do
        cmp -s "$GEN/a/$artifact" "$GEN/b/$artifact" || {
            echo "smoke_gen: $family $artifact differs across runs" >&2
            exit 1
        }
    done
    "$HMCONVERT" --in="$GEN/a/manifest.hmw1" --out="$GEN/a/decoded.txt"
    cmp -s "$GEN/a/manifest.txt" "$GEN/a/decoded.txt" || {
        echo "smoke_gen: $family binary manifest decode mismatch" >&2
        exit 1
    }
    rm -rf "$GEN/a" "$GEN/b"
done
echo "smoke_gen: all families deterministic, binary manifests agree"

# A different seed must produce different scores.
"$HMGEN" --family=bigdata --seed=1 --out="$GEN/s1" --data-dir=data \
    2>/dev/null
"$HMGEN" --family=bigdata --seed=2 --out="$GEN/s2" --data-dir=data \
    2>/dev/null
cmp -s "$GEN/s1/scores.csv" "$GEN/s2/scores.csv" && {
    echo "smoke_gen: different seeds produced identical scores" >&2
    exit 1
}
echo "smoke_gen: seeds decorrelate"

# Serving round trip: a small suite whose manifest points at the
# rendered CSVs.
"$HMGEN" --family=bigdata --workloads=12 --clusters=3 --machines=3 \
    --name=gensmoke --out="$GEN/suite" --data-dir="$GEN/suite" \
    2>/dev/null

"$HMSERVED" --port=0 --threads=2 --queue-depth=4 \
    --data-dir="$DATA" \
    --drift-window=16 --drift-min-window=8 >"$LOG" 2>&1 &
SERVER_PID=$!
PORT=
i=0
while [ $i -lt 50 ]; do
    PORT=$(sed -n 's/^listening on port \([0-9]*\)$/\1/p' "$LOG")
    [ -n "$PORT" ] && break
    kill -0 "$SERVER_PID" 2>/dev/null || {
        echo "smoke_gen: hmserved died during startup" >&2
        cat "$LOG" >&2
        exit 1
    }
    sleep 0.1
    i=$((i + 1))
done
[ -n "$PORT" ] || { echo "smoke_gen: no port line" >&2; exit 1; }
echo "smoke_gen: hmserved pid $SERVER_PID on port $PORT"

# Register at version 1, twice: the replay must be the idempotent
# no-op, not a new version.
"$HMGEN" --family=bigdata --workloads=12 --clusters=3 --machines=3 \
    --name=gensmoke --data-dir="$GEN/suite" \
    --register --port="$PORT" --suite-version=1 | grep -q '"created":true' || {
    echo "smoke_gen: first registration not created" >&2
    exit 1
}
"$HMGEN" --family=bigdata --workloads=12 --clusters=3 --machines=3 \
    --name=gensmoke --data-dir="$GEN/suite" \
    --register --port="$PORT" --suite-version=1 | grep -q '"created":false' || {
    echo "smoke_gen: version-pinned replay was not idempotent" >&2
    exit 1
}
# A different payload at the same version must be refused 409.
STATUS=0
"$HMGEN" --family=bigdata --workloads=12 --clusters=3 --machines=3 \
    --name=gensmoke --seed=777 --data-dir="$GEN/suite" \
    --register --port="$PORT" --suite-version=1 >"$GEN/conflict.json" \
    2>/dev/null || STATUS=$?
[ "$STATUS" -ne 0 ] || {
    echo "smoke_gen: conflicting re-registration was accepted" >&2
    exit 1
}
grep -q "suite_version_conflict" "$GEN/conflict.json" || {
    echo "smoke_gen: conflict answer misses the typed code:" >&2
    cat "$GEN/conflict.json" >&2
    exit 1
}
echo "smoke_gen: versioned registration (idempotent replay, 409 on" \
    "conflict)"

# Drive the registered suite by reference; hmload exits non-zero if
# no request ever completed.
"$HMLOAD" --port="$PORT" --concurrency=2 --duration-s=1 \
    --suite=gensmoke --json-only
echo "smoke_gen: hmload --suite mix served"

# The exposition lint now also covers the per-family registration
# counters and the drift/registry cross-check.
"$HMCTL" --port="$PORT" --check --json-only
METRICS=$("$HMCTL" --port="$PORT" --metrics)
echo "$METRICS" | grep -q \
    'hiermeans_gen_registrations_total{family="bigdata"} 1' || {
    echo "smoke_gen: bigdata registration not counted:" >&2
    echo "$METRICS" | grep "^hiermeans_gen_" >&2
    exit 1
}
echo "smoke_gen: exposition clean, registration counted"

# The generated observation schedule: stationary prefix stays fresh,
# the shifted suffix flips the suite stale within one tick.
"$HMGEN" --family=bigdata --name=gensmoke --observe-stream \
    --shifted=0 --port="$PORT"
"$HMCTL" --port="$PORT" --recluster=gensmoke |
    awk '$1 == "gensmoke" { print $2 }' | grep -qx fresh || {
    echo "smoke_gen: stationary schedule did not publish fresh" >&2
    exit 1
}
"$HMGEN" --family=bigdata --name=gensmoke --observe-stream \
    --stationary=0 --shifted=24 --port="$PORT"
STATUS=0
"$HMCTL" --port="$PORT" --recluster=gensmoke --json-only || STATUS=$?
STATUS=0
"$HMCTL" --port="$PORT" --drift=gensmoke --json-only || STATUS=$?
[ "$STATUS" -eq 2 ] || {
    echo "smoke_gen: shifted schedule left exit $STATUS, wanted 2" >&2
    "$HMCTL" --port="$PORT" --drift=gensmoke >&2 || true
    exit 1
}
echo "smoke_gen: observation schedule drove fresh -> stale"

kill -TERM "$SERVER_PID"
STATUS=0
wait "$SERVER_PID" || STATUS=$?
[ "$STATUS" -eq 0 ] || {
    echo "smoke_gen: hmserved exited $STATUS after SIGTERM" >&2
    cat "$LOG" >&2
    exit 1
}
echo "smoke_gen: clean drain confirmed"
