#!/bin/sh
# Loopback smoke test for the serving layer, wired as a ctest:
#   smoke_server.sh <hmserved> <hmload> <hmctl>
#
# Starts hmserved (tracing armed, durable store mounted) on an
# ephemeral port, probes /healthz and /v1/score through hmload (in
# JSON and again over the negotiated binary wire codec),
# validates the /metrics Prometheus exposition with `hmctl --check`,
# scores one request under a known trace ID and asserts its span tree
# is retrievable via `hmctl --trace`, registers a suite and scores it
# by reference (`hmctl --register` / `suite=` / `--history`), walks a
# second suite through the drift lifecycle (stationary stream stays
# `fresh`, a mild mean shift demotes it to `drifting`, a large one to
# `stale`, with the one-hot hiermeans_drift_state gauge following),
# then sends SIGTERM and asserts a clean drain: exit status 0 and the
# final metrics summary in the log. Run from the repo root so the
# manifest's repo-relative CSV paths resolve.
set -eu

HMSERVED=${1:?usage: smoke_server.sh <hmserved> <hmload> <hmctl>}
HMLOAD=${2:?usage: smoke_server.sh <hmserved> <hmload> <hmctl>}
HMCTL=${3:?usage: smoke_server.sh <hmserved> <hmload> <hmctl>}
MANIFEST=examples/data/manifest.txt

LOG=$(mktemp)
DATA=$(mktemp -d)
trap 'kill "$SERVER_PID" 2>/dev/null || true;
      rm -f "$LOG"; rm -rf "$DATA"' EXIT

# --trace-slow-ms=0 sends every finished trace through the slow
# sampler too, so a heavy hmload run cannot evict the one trace ID
# this script fetches back.
"$HMSERVED" --port=0 --threads=2 --queue-depth=4 \
    --trace --trace-slow-ms=0 --trace-keep=256 \
    --data-dir="$DATA" \
    --drift-window=16 --drift-min-window=8 >"$LOG" 2>&1 &
SERVER_PID=$!

# Wait for the flushed "listening on port N" line (up to ~5s).
PORT=
i=0
while [ $i -lt 50 ]; do
    PORT=$(sed -n 's/^listening on port \([0-9]*\)$/\1/p' "$LOG")
    [ -n "$PORT" ] && break
    kill -0 "$SERVER_PID" 2>/dev/null || {
        echo "smoke_server: hmserved died during startup" >&2
        cat "$LOG" >&2
        exit 1
    }
    sleep 0.1
    i=$((i + 1))
done
[ -n "$PORT" ] || { echo "smoke_server: no port line" >&2; exit 1; }
echo "smoke_server: hmserved pid $SERVER_PID on port $PORT"

# /healthz probes, then a real scoring mix with trace propagation;
# hmload exits non-zero if no request ever completed.
"$HMLOAD" --port="$PORT" --concurrency=1 --duration-s=1 --json-only
"$HMLOAD" --port="$PORT" --concurrency=2 --duration-s=2 \
    --manifest="$MANIFEST" --trace --json-only

# The same mix over the negotiated binary codec; the report must tag
# the format so a silent JSON fallback cannot pass as a binary run.
WIRE_REPORT=$("$HMLOAD" --port="$PORT" --concurrency=2 --duration-s=1 \
    --manifest="$MANIFEST" --wire=binary --json-only | tail -1)
echo "$WIRE_REPORT" | grep -q '"wire_format":"binary"' || {
    echo "smoke_server: binary wire report missing format tag:" >&2
    echo "$WIRE_REPORT" >&2
    exit 1
}
echo "smoke_server: binary wire mix served"

# The /metrics body must be valid Prometheus text exposition.
"$HMCTL" --port="$PORT" --check --json-only
echo "smoke_server: /metrics exposition is clean"

# Score one request under a known trace ID, then fetch its span tree
# and assert the interesting stages are all present. The distinct
# seed dodges the result cache warmed by the hmload run above — a
# cache hit would (correctly) skip the engine/pipeline spans.
TRACE_ID=smoketrace0001
LINE="$(grep -v '^#' "$MANIFEST" | grep -v '^[[:space:]]*$' | head -1) seed=987654321"
"$HMCTL" --port="$PORT" --score="$LINE" --trace="$TRACE_ID" --json-only
# Not --json-only: the rendered span tree only prints in human mode.
TREE=$("$HMCTL" --port="$PORT" --trace="$TRACE_ID")
for span in server.request admission engine.queue engine.execute \
    pipeline.characterize pipeline.som_train pipeline.cluster \
    pipeline.score; do
    echo "$TREE" | grep -q "$span" || {
        echo "smoke_server: span $span missing from trace tree:" >&2
        echo "$TREE" >&2
        exit 1
    }
done
echo "smoke_server: trace $TRACE_ID retrieved with full span tree"

# Durable store round trip: register the example manifest as a named
# suite, score it by reference (line 1 of the stored document), and
# read the run back from the suite's history ring. The seed override
# forces a cache miss — cache hits correctly record no new history.
"$HMCTL" --port="$PORT" --register=smokesuite --manifest="$MANIFEST" \
    --json-only
"$HMCTL" --port="$PORT" \
    --score="suite=smokesuite line=1 id=suite-run-1 seed=424242" \
    --json-only
SUITE_HISTORY=$("$HMCTL" --port="$PORT" --history=smokesuite)
echo "$SUITE_HISTORY" | grep -q "suite-run-1" || {
    echo "smoke_server: suite-run-1 missing from suite history:" >&2
    echo "$SUITE_HISTORY" >&2
    exit 1
}
# The ad-hoc ring (no suite= token) holds the earlier direct score
# made under $TRACE_ID (the manifest's first line, id=gm-default).
"$HMCTL" --port="$PORT" --history | grep -q "gm-default" || {
    echo "smoke_server: ad-hoc history misses the traced score" >&2
    "$HMCTL" --port="$PORT" --history >&2 || true
    exit 1
}
echo "smoke_server: suite registered, scored by reference," \
    "history retrieved"

# Drift round trip: a dedicated suite fed through the observation
# intake (no pipeline). The stream visits four well-separated levels
# round-robin with a small deterministic jitter; `--recluster` forces
# drift ticks. Stationary traffic must stay `fresh`, a mild mean
# shift (QE ratio in the drifting band) must demote to `drifting`,
# and a large one must jump to `stale` — with `hmctl --drift` exit
# code 2 and the one-hot Prometheus staleness gauge following along.
observe_level() { # $1=mean shift, $2=count, $3=id tag
    awk -v d="$1" -v n="$2" 'BEGIN {
        for (i = 0; i < n; i++)
            printf "%.4f\n", (i % 4) + 1 + d + 0.05 * (i % 5);
    }' | {
        j=0
        while read -r ratio; do
            "$HMCTL" --port="$PORT" --observe=driftsuite \
                --ratio="$ratio" --id="$3-$j" --json-only >/dev/null
            j=$((j + 1))
        done
    }
}
drift_state() { # state column of the forced-tick drift table
    "$HMCTL" --port="$PORT" --recluster=driftsuite |
        awk '$1 == "driftsuite" { print $2 }'
}
expect_gauge() { # $1=state expected to be the hot one
    METRICS=$("$HMCTL" --port="$PORT" --metrics)
    echo "$METRICS" | grep -q \
        "hiermeans_drift_state{suite=\"driftsuite\",state=\"$1\"} 1" || {
        echo "smoke_server: staleness gauge not one-hot on $1:" >&2
        echo "$METRICS" | grep "^hiermeans_drift_" >&2
        exit 1
    }
}

"$HMCTL" --port="$PORT" --register=driftsuite --manifest="$MANIFEST" \
    --json-only
observe_level 0 24 warm
STATE=$(drift_state)
[ "$STATE" = "fresh" ] || {
    echo "smoke_server: warm-up published $STATE, wanted fresh" >&2
    exit 1
}
observe_level 0 8 hold
STATE=$(drift_state)
[ "$STATE" = "fresh" ] || {
    echo "smoke_server: stationary stream drifted to $STATE" >&2
    exit 1
}
expect_gauge fresh

observe_level 0.9 16 mild
STATE=$(drift_state)
[ "$STATE" = "drifting" ] || {
    echo "smoke_server: mild shift gave $STATE, wanted drifting" >&2
    exit 1
}
expect_gauge drifting

observe_level 8 16 shift
STATE=$(drift_state)
[ "$STATE" = "stale" ] || {
    echo "smoke_server: mean shift gave $STATE, wanted stale" >&2
    exit 1
}
expect_gauge stale
STATUS=0
"$HMCTL" --port="$PORT" --drift=driftsuite --json-only || STATUS=$?
[ "$STATUS" -eq 2 ] || {
    echo "smoke_server: --drift on a stale suite exited $STATUS" >&2
    exit 1
}
echo "smoke_server: drift lifecycle fresh -> drifting -> stale" \
    "confirmed, gauge one-hot throughout"

# Graceful shutdown: SIGTERM must drain and exit 0.
kill -TERM "$SERVER_PID"
STATUS=0
wait "$SERVER_PID" || STATUS=$?
if [ "$STATUS" -ne 0 ]; then
    echo "smoke_server: hmserved exited $STATUS after SIGTERM" >&2
    cat "$LOG" >&2
    exit 1
fi
grep -q "final metrics" "$LOG" || {
    echo "smoke_server: no final metrics summary in log" >&2
    cat "$LOG" >&2
    exit 1
}
echo "smoke_server: clean drain confirmed"
