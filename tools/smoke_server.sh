#!/bin/sh
# Loopback smoke test for the serving layer, wired as a ctest:
#   smoke_server.sh <hmserved> <hmload>
#
# Starts hmserved on an ephemeral port, probes /healthz and /v1/score
# through hmload, then sends SIGTERM and asserts a clean drain: exit
# status 0 and the final metrics summary in the log. Run from the repo
# root so the manifest's repo-relative CSV paths resolve.
set -eu

HMSERVED=${1:?usage: smoke_server.sh <hmserved> <hmload>}
HMLOAD=${2:?usage: smoke_server.sh <hmserved> <hmload>}
MANIFEST=examples/data/manifest.txt

LOG=$(mktemp)
trap 'kill "$SERVER_PID" 2>/dev/null || true; rm -f "$LOG"' EXIT

"$HMSERVED" --port=0 --threads=2 --queue-depth=4 >"$LOG" 2>&1 &
SERVER_PID=$!

# Wait for the flushed "listening on port N" line (up to ~5s).
PORT=
i=0
while [ $i -lt 50 ]; do
    PORT=$(sed -n 's/^listening on port \([0-9]*\)$/\1/p' "$LOG")
    [ -n "$PORT" ] && break
    kill -0 "$SERVER_PID" 2>/dev/null || {
        echo "smoke_server: hmserved died during startup" >&2
        cat "$LOG" >&2
        exit 1
    }
    sleep 0.1
    i=$((i + 1))
done
[ -n "$PORT" ] || { echo "smoke_server: no port line" >&2; exit 1; }
echo "smoke_server: hmserved pid $SERVER_PID on port $PORT"

# /healthz probes, then a real scoring mix; hmload exits non-zero if
# no request ever completed.
"$HMLOAD" --port="$PORT" --concurrency=1 --duration-s=1 --json-only
"$HMLOAD" --port="$PORT" --concurrency=2 --duration-s=2 \
    --manifest="$MANIFEST" --json-only

# Graceful shutdown: SIGTERM must drain and exit 0.
kill -TERM "$SERVER_PID"
STATUS=0
wait "$SERVER_PID" || STATUS=$?
if [ "$STATUS" -ne 0 ]; then
    echo "smoke_server: hmserved exited $STATUS after SIGTERM" >&2
    cat "$LOG" >&2
    exit 1
fi
grep -q "final metrics" "$LOG" || {
    echo "smoke_server: no final metrics summary in log" >&2
    cat "$LOG" >&2
    exit 1
}
echo "smoke_server: clean drain confirmed"
